/**
 * @file fig06_amr_levels.cpp
 * Reproduces Fig. 6: FOM versus #AMR Levels (mesh 128^3, block 16)
 * plus the §IV-C anchors: execution-time growth and kernel-time
 * fraction versus level on a 1 GPU - 1 Rank system, and the
 * communicated-cell growth at MeshBlockSize 8.
 */
#include "bench_util.hpp"

int
main()
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Fig 6", "FOM vs #AMR Levels (mesh 128^3, B16)");

    const std::vector<int> rank_candidates = {1, 4, 8, 12};
    Table table("FOM (zone-cycles/sec) vs #AMR Levels");
    table.setHeader({"levels", "CPU 96R", "1 GPU 1R", "4 GPUs 4R",
                     "8 GPUs 8R", "1 GPU BestR"});

    std::vector<ExperimentResult> gpu1;
    for (int levels = 1; levels <= 4; ++levels) {
        auto spec = workload(128, 16, levels, 6);
        const auto cpu = run(spec, PlatformConfig::cpu(96));
        const auto g1 = run(spec, PlatformConfig::gpu(1, 1));
        const auto g4 = run(spec, PlatformConfig::gpu(4, 4));
        const auto g8 = run(spec, PlatformConfig::gpu(8, 8));
        int r1 = 0;
        const auto b1 =
            Experiment::bestRank(spec, 1, rank_candidates, &r1);
        table.addRow({std::to_string(levels), fomCell(cpu), fomCell(g1),
                      fomCell(g4), fomCell(g8),
                      fomCell(b1) + " (R" + std::to_string(r1) + ")"});
        gpu1.push_back(g1);
    }
    expect(table, "CPU nearly flat with levels; GPU drops markedly");
    table.print(std::cout);

    Table anchors("\nSec IV-C anchors (GPU 1R, B16)");
    anchors.setHeader({"levels", "exec time vs L1", "kernel fraction",
                       "paper kernel fraction"});
    const char* paper_frac[] = {"31.2%", "23.4%", "17.9%", "-"};
    for (int l = 0; l < 4; ++l) {
        anchors.addRow(
            {std::to_string(l + 1),
             formatRatio(gpu1[l].report.totalTime /
                         gpu1[0].report.totalTime),
             formatPercent(1.0 - gpu1[l].serialFraction()),
             paper_frac[l]});
    }
    anchors.addNote("paper: exec time x2.1 at L2, x6.0 at L3");
    anchors.print(std::cout);

    // Communicated-cell growth at the smallest experimented block (B8).
    Table comm("\nSec IV-C comm growth (mesh 128, B8)");
    comm.setHeader(
        {"levels", "comm cells vs L1", "cell updates vs L1", "paper"});
    std::vector<ExperimentResult> b8;
    for (int levels : {1, 2, 3})
        b8.push_back(run(workload(128, 8, levels, 5),
                         PlatformConfig::gpu(1, 1)));
    const char* paper_comm[] = {"1.0x / 1.0x", "1.4x / 1.2x",
                                "2.7x / 2.0x"};
    for (int l = 0; l < 3; ++l) {
        comm.addRow(
            {std::to_string(l + 1),
             formatRatio(static_cast<double>(b8[l].commCells) /
                         static_cast<double>(b8[0].commCells)),
             formatRatio(static_cast<double>(b8[l].cellUpdates) /
                         static_cast<double>(b8[0].cellUpdates)),
             paper_comm[l]});
    }
    comm.print(std::cout);
    return 0;
}
