/**
 * @file fig08_gpu_rank_scaling.cpp
 * Reproduces Fig. 8: the effect of ranks-per-GPU on single-GPU FOM,
 * normalized to the CPU 96-rank configuration, across five AMR
 * configurations — including the OOM marker at 16 ranks for the
 * smallest blocks.
 */
#include "bench_util.hpp"

int
main()
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Fig 8", "GPU rank scaling, FOM normalized to CPU 96R");

    struct Config
    {
        int mesh, block, levels, cycles;
    };
    const std::vector<Config> configs = {{128, 32, 3, 6},
                                         {128, 16, 3, 6},
                                         {128, 8, 3, 5},
                                         {128, 8, 2, 5},
                                         {128, 8, 1, 5}};
    const std::vector<int> rank_counts = {1, 2, 4, 8, 12, 16};

    Table table("FOM normalized to CPU 96R");
    std::vector<std::string> header = {"mesh,block,levels", "CPU 96R"};
    for (int r : rank_counts)
        header.push_back("GPU " + std::to_string(r) + "R");
    table.setHeader(header);

    for (const auto& c : configs) {
        auto spec = workload(c.mesh, c.block, c.levels, c.cycles);
        const auto cpu = run(spec, PlatformConfig::cpu(96));
        std::vector<std::string> row = {
            std::to_string(c.mesh) + ", " + std::to_string(c.block) +
                ", " + std::to_string(c.levels),
            "1.00"};
        for (int r : rank_counts) {
            const auto gpu = run(spec, PlatformConfig::gpu(1, r));
            row.push_back(gpu.oom() ? "OOM"
                                    : formatFixed(
                                          gpu.fom() / cpu.fom(), 2));
        }
        table.addRow(row);
    }
    expect(table, "best single-GPU performance near 12 ranks/GPU; "
                  "beyond that collectives erode it; 16R OOMs at "
                  "(128, 8, 3)");
    table.print(std::cout);
    return 0;
}
