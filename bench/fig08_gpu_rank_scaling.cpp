/**
 * @file fig08_gpu_rank_scaling.cpp
 * Reproduces Fig. 8: the effect of ranks-per-GPU on single-GPU FOM,
 * normalized to the CPU 96-rank configuration, across five AMR
 * configurations — including the OOM marker at 16 ranks for the
 * smallest blocks.
 *
 * `--measured` replaces the modeled table with real rank-sharded
 * execution: a 1/2/4 in-process rank sweep of concurrent per-rank
 * drivers, measured zone-cycles/s normalized to the 1-rank run, with
 * the communication counters that explain the scaling. `--json <path>`
 * emits the measured points.
 */
#include <cstdlib>

#include "bench_util.hpp"

namespace {

int
runMeasured(int mesh, int block, const std::string& json_path)
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Fig 8 (measured)",
           "In-process rank sweep, measured zone-cycles/s");

    JsonReport report("fig08_rank_scaling_measured");
    Table table("Measured FOM vs rank count, " + std::to_string(mesh) +
                "^3 mesh, B" + std::to_string(block) + ", L2, burgers");
    table.setHeader({"ranks", "zone-cyc/s", "vs 1R", "remote msgs",
                     "remote MB", "wire cells/cycle"});

    double base_fom = 0.0;
    for (int ranks : {1, 2, 4}) {
        ExperimentSpec spec;
        spec.meshSize = mesh;
        spec.blockSize = block;
        spec.amrLevels = 2;
        spec.ncycles = 6;
        spec.numeric = true;
        spec.numRanks = ranks;
        const ExperimentResult result = Experiment(spec).run();
        if (ranks == 1)
            base_fom = result.measuredFom();
        const double cycles =
            result.history.empty()
                ? 1.0
                : static_cast<double>(result.history.size());
        table.addRow(
            {std::to_string(ranks), formatSci(result.measuredFom(), 2),
             base_fom > 0 ? formatRatio(result.measuredFom() / base_fom)
                          : "1.00x",
             std::to_string(result.traffic.remoteMessages),
             formatFixed(result.traffic.remoteBytes / 1.0e6, 2),
             formatFixed(static_cast<double>(result.commCells) / cycles,
                         0)});
        report.add("measured_fig08",
                   {{"ranks", std::to_string(ranks)},
                    {"mesh", std::to_string(mesh)},
                    {"block", std::to_string(block)}},
                   result.wallSeconds);
    }
    table.addNote("single shared-memory node: cross-rank traffic pays "
                  "mailbox serialization, not a network, so this is "
                  "the lower bound of the modeled multi-node cost");
    table.print(std::cout);
    report.write(json_path);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace vibe;
    using namespace vibe::bench;
    const std::string json_path = extractJsonPath(argc, argv);
    if (extractFlag(argc, argv, "--measured")) {
        const int mesh = argc > 1 ? std::atoi(argv[1]) : 16;
        const int block = argc > 2 ? std::atoi(argv[2]) : 8;
        return runMeasured(mesh, block, json_path);
    }
    banner("Fig 8", "GPU rank scaling, FOM normalized to CPU 96R");

    struct Config
    {
        int mesh, block, levels, cycles;
    };
    const std::vector<Config> configs = {{128, 32, 3, 6},
                                         {128, 16, 3, 6},
                                         {128, 8, 3, 5},
                                         {128, 8, 2, 5},
                                         {128, 8, 1, 5}};
    const std::vector<int> rank_counts = {1, 2, 4, 8, 12, 16};

    Table table("FOM normalized to CPU 96R");
    std::vector<std::string> header = {"mesh,block,levels", "CPU 96R"};
    for (int r : rank_counts)
        header.push_back("GPU " + std::to_string(r) + "R");
    table.setHeader(header);

    for (const auto& c : configs) {
        auto spec = workload(c.mesh, c.block, c.levels, c.cycles);
        const auto cpu = run(spec, PlatformConfig::cpu(96));
        std::vector<std::string> row = {
            std::to_string(c.mesh) + ", " + std::to_string(c.block) +
                ", " + std::to_string(c.levels),
            "1.00"};
        for (int r : rank_counts) {
            const auto gpu = run(spec, PlatformConfig::gpu(1, r));
            row.push_back(gpu.oom() ? "OOM"
                                    : formatFixed(
                                          gpu.fom() / cpu.fom(), 2));
        }
        table.addRow(row);
    }
    expect(table, "best single-GPU performance near 12 ranks/GPU; "
                  "beyond that collectives erode it; 16R OOMs at "
                  "(128, 8, 3)");
    table.print(std::cout);
    return 0;
}
