/**
 * @file fig09_serial_kernel_breakdown.cpp
 * Reproduces Fig. 9: total execution time split into serial and kernel
 * time for GPU 1R/6R/8R and CPU 16R at mesh 128^3, block 8, 3 levels.
 */
#include "bench_util.hpp"

int
main()
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Fig 9", "Serial vs kernel breakdown (128^3, B8, L3)");

    Table table("Execution time breakdown (paper-length run)");
    table.setHeader({"config", "serial (s)", "kernel (s)", "total (s)",
                     "paper total"});
    const char* paper[] = {"~2782 s (serial 2659)", "-", "-", "-"};
    int idx = 0;
    for (const PlatformConfig& platform :
         {PlatformConfig::gpu(1, 1), PlatformConfig::gpu(1, 6),
          PlatformConfig::gpu(1, 8), PlatformConfig::cpu(16)}) {
        auto result = run(workload(128, 8, 3, 5), platform);
        const double scale = result.paperScale();
        table.addRow({platform.label(),
                      formatFixed(result.report.serialTime * scale, 0),
                      formatFixed(result.report.kernelTime * scale, 0),
                      formatFixed(result.report.totalTime * scale, 0),
                      paper[idx++]});
    }
    expect(table, "GPU 1R spends ~2659 s of ~2782 s outside Kokkos "
                  "kernels; more ranks cut the serial share sharply");
    table.print(std::cout);
    return 0;
}
