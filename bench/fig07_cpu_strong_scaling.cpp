/**
 * @file fig07_cpu_strong_scaling.cpp
 * Reproduces Fig. 7: CPU strong scaling of total/kernel/serial time
 * (mesh 128^3, block 8, 3 levels) from 4 to 96 cores. Each rank count
 * re-runs the instrumented workload so the remote/local message split
 * and load balance are real.
 */
#include "bench_util.hpp"

int
main()
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Fig 7", "CPU strong scaling (mesh 128^3, B8, L3)");

    Table table("Time breakdown vs core count (paper-length run)");
    table.setHeader(
        {"cores", "total (s)", "kernel (s)", "serial (s)", "FOM"});
    double serial48 = 0, serial96 = 0;
    for (int cores : {4, 8, 16, 32, 48, 64, 72, 96}) {
        auto result =
            run(workload(128, 8, 3, 5), PlatformConfig::cpu(cores));
        const double scale = result.paperScale();
        table.addRow({std::to_string(cores),
                      formatFixed(result.report.totalTime * scale, 1),
                      formatFixed(result.report.kernelTime * scale, 1),
                      formatFixed(result.report.serialTime * scale, 1),
                      formatSci(result.fom(), 2)});
        if (cores == 48)
            serial48 = result.report.serialTime;
        if (cores == 96)
            serial96 = result.report.serialTime;
    }
    expect(table, "near-ideal total scaling 4->48 cores; kernel time "
                  "scales to 96; serial time plateaus past ~64 cores");
    table.print(std::cout);

    Table plateau("\nSerial plateau check");
    plateau.setHeader({"quantity", "value"});
    plateau.addRow({"serial(96) / serial(48)",
                    formatRatio(serial96 / serial48)});
    plateau.addNote("paper: serial time flattens (ratio ~1) due to "
                    "irreducible replicated work + collectives");
    plateau.print(std::cout);
    return 0;
}
