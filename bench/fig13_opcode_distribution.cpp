/**
 * @file fig13_opcode_distribution.cpp
 * Reproduces Fig. 13: the MICA-style CPU instruction opcode
 * distribution for Total / Serial / Kernel portions at MeshBlockSize
 * 32 and 16 (mesh 128^3, 3 levels, 16 ranks).
 */
#include "bench_util.hpp"
#include "perfmodel/opcode_model.hpp"

int
main()
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Fig 13", "CPU opcode distribution (128^3, L3, 16R)");

    OpcodeModel model;
    for (int block : {32, 16}) {
        auto result =
            run(workload(128, block, 3, 6), PlatformConfig::cpu(16));
        const auto kernel =
            model.kernelCountsFromProfiler(result.profiler);
        const auto serial =
            model.serialCountsFromProfiler(result.profiler);
        const auto total = OpcodeModel::combine(kernel, serial);

        Table table("MeshBlock " + std::to_string(block) +
                    ": instruction distribution (%)");
        table.setHeader(
            {"portion", "LD/ST", "VEC", "FP", "INT", "REG", "CTRL",
             "OTHER", "instructions"});
        auto emit = [&](const char* name, const OpcodeCounts& c) {
            table.addRow({name, formatPercent(c.mix.ldst, 0),
                          formatPercent(c.mix.vec, 0),
                          formatPercent(c.mix.fp, 0),
                          formatPercent(c.mix.intg, 0),
                          formatPercent(c.mix.reg, 0),
                          formatPercent(c.mix.ctrl, 0),
                          formatPercent(c.mix.other, 0),
                          formatSci(c.instructions, 1)});
        };
        emit("Total", total);
        emit("Serial", serial);
        emit("Kernel", kernel);
        table.print(std::cout);

        std::cout << "  kernel share of total instructions: "
                  << formatPercent(kernel.instructions /
                                   total.instructions)
                  << " (paper: >99%)\n\n";
    }
    std::cout << "paper: vector ops dominate Total/Kernel (63% at B32 "
                 "-> 52% at B16); LD/ST is 39-41% of Serial.\n";
    return 0;
}
