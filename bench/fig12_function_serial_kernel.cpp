/**
 * @file fig12_function_serial_kernel.cpp
 * Reproduces Fig. 12: serial vs kernel decomposition of the five key
 * functions (SetBounds, SendBoundBufs, CalculateFluxes,
 * WeightedSumData, FillDerived) across the same configurations.
 */
#include "bench_util.hpp"

int
main()
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Fig 12", "Per-function serial/kernel split (128^3, B8, L3)");

    const std::vector<PlatformConfig> configs = {
        PlatformConfig::gpu(1, 1), PlatformConfig::gpu(1, 6),
        PlatformConfig::gpu(1, 8), PlatformConfig::cpu(16),
        PlatformConfig::cpu(48),   PlatformConfig::cpu(96)};
    const std::vector<std::string> functions = {
        "SetBounds", "SendBoundBufs", "CalculateFluxes",
        "WeightedSumData", "FillDerived"};

    std::vector<ExperimentResult> results;
    for (const auto& platform : configs)
        results.push_back(run(workload(128, 8, 3, 5), platform));

    for (const auto& fn : functions) {
        Table table(fn + " (seconds, paper-length run)");
        std::vector<std::string> header = {"component"};
        for (const auto& platform : configs)
            header.push_back(platform.label());
        table.setHeader(header);
        std::vector<std::string> kernel_row = {"kernel"};
        std::vector<std::string> serial_row = {"serial"};
        for (const auto& result : results) {
            const double scale = result.paperScale();
            auto it = result.report.phases.find(fn);
            const double k =
                it == result.report.phases.end() ? 0 : it->second.kernel;
            const double s =
                it == result.report.phases.end() ? 0 : it->second.serial;
            kernel_row.push_back(formatFixed(k * scale, 1));
            serial_row.push_back(formatFixed(s * scale, 1));
        }
        table.addRow(kernel_row);
        table.addRow(serial_row);
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "paper: GPU 1R shows a large serial-over-kernel gap "
                 "in every function; CPU splits are balanced and "
                 "shrink with rank count.\n";
    return 0;
}
