/**
 * @file bench_util.hpp
 * Shared helpers for the figure-reproduction harnesses: experiment
 * shorthands, normalized-series printing, and paper-vs-measured
 * annotations. Every binary in bench/ regenerates one table or figure
 * of the paper and prints the same rows/series the paper reports.
 */
#pragma once

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "util/table.hpp"

namespace vibe::bench {

/**
 * Extract a boolean `--<name>` flag from argv, removing it so benches
 * keep their positional-argument parsing. Returns true when present.
 */
inline bool
extractFlag(int& argc, char** argv, const char* name)
{
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], name) != 0)
            continue;
        for (int rest = a + 1; rest < argc; ++rest)
            argv[rest - 1] = argv[rest];
        --argc;
        return true;
    }
    return false;
}

/**
 * Extract a `--json <path>` argument pair from argv, removing both
 * entries so benches keep their positional-argument parsing. Returns
 * the path, or "" when the flag is absent. When present, pass the
 * path to JsonReport::write after measuring.
 */
inline std::string
extractJsonPath(int& argc, char** argv)
{
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--json") != 0)
            continue;
        if (a + 1 >= argc) {
            std::cerr << "--json requires a path argument\n";
            std::exit(2);
        }
        const std::string path = argv[a + 1];
        for (int rest = a + 2; rest < argc; ++rest)
            argv[rest - 2] = argv[rest];
        argc -= 2;
        return path;
    }
    return "";
}

/**
 * Machine-readable result sink for BENCH_*.json trajectory tracking:
 * one entry per measured configuration, serialized as
 *
 *   {"bench": "<name>",
 *    "results": [{"name": "...",
 *                 "config": {"block": "8", "threads": "4"},
 *                 "median_seconds": 1.23e-03}, ...]}
 *
 * Config keys/values are strings on purpose — they label the point,
 * they are not re-parsed by the tracker.
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

    /** Record one measured configuration (median wall seconds). */
    void add(const std::string& name,
             std::vector<std::pair<std::string, std::string>> config,
             double median_seconds)
    {
        entries_.push_back(
            {name, std::move(config), median_seconds});
    }

    /** Serialize all entries. */
    std::string str() const
    {
        std::ostringstream out;
        out << "{\"bench\": \"" << escape(bench_)
            << "\", \"results\": [";
        for (std::size_t e = 0; e < entries_.size(); ++e) {
            const Entry& entry = entries_[e];
            out << (e > 0 ? ", " : "") << "{\"name\": \""
                << escape(entry.name) << "\", \"config\": {";
            for (std::size_t c = 0; c < entry.config.size(); ++c)
                out << (c > 0 ? ", " : "") << "\""
                    << escape(entry.config[c].first) << "\": \""
                    << escape(entry.config[c].second) << "\"";
            out << "}, \"median_seconds\": ";
            out.precision(9);
            out << entry.medianSeconds << "}";
        }
        out << "]}\n";
        return out.str();
    }

    /** Write to `path` unless it is empty (flag absent). */
    void write(const std::string& path) const
    {
        if (path.empty())
            return;
        std::ofstream out(path);
        if (!out) {
            std::cerr << "cannot write JSON results to '" << path
                      << "'\n";
            std::exit(2);
        }
        out << str();
        std::cout << "\nwrote " << entries_.size()
                  << " result(s) to " << path << "\n";
    }

  private:
    struct Entry
    {
        std::string name;
        std::vector<std::pair<std::string, std::string>> config;
        double medianSeconds = 0;
    };

    static std::string escape(const std::string& s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            out.push_back(c);
        }
        return out;
    }

    std::string bench_;
    std::vector<Entry> entries_;
};

/** Workload shorthand: (mesh, block, levels) with a cycle budget. */
inline ExperimentSpec
workload(int mesh, int block, int levels, int ncycles)
{
    ExperimentSpec spec;
    spec.meshSize = mesh;
    spec.blockSize = block;
    spec.amrLevels = levels;
    spec.ncycles = ncycles;
    spec.numeric = false;
    return spec;
}

/** Run one spec under one platform. */
inline ExperimentResult
run(ExperimentSpec spec, const PlatformConfig& platform)
{
    spec.platform = platform;
    return Experiment(spec).run();
}

/** "1.23e+07" or "OOM" for a FOM cell. */
inline std::string
fomCell(const ExperimentResult& result)
{
    return result.oom() ? "OOM" : formatSci(result.fom(), 2);
}

/** Banner printed at the top of every bench binary. */
inline void
banner(const std::string& id, const std::string& what)
{
    std::cout << "\n################################################\n"
              << "# " << id << ": " << what << "\n"
              << "# (modeled H100/Sapphire-Rapids platforms; see\n"
              << "#  DESIGN.md for the substitution methodology)\n"
              << "################################################\n\n";
}

/** Paper-vs-measured footnote helper. */
inline void
expect(Table& table, const std::string& note)
{
    table.addNote("paper: " + note);
}

} // namespace vibe::bench
