/**
 * @file bench_util.hpp
 * Shared helpers for the figure-reproduction harnesses: experiment
 * shorthands, normalized-series printing, and paper-vs-measured
 * annotations. Every binary in bench/ regenerates one table or figure
 * of the paper and prints the same rows/series the paper reports.
 */
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/table.hpp"

namespace vibe::bench {

/** Workload shorthand: (mesh, block, levels) with a cycle budget. */
inline ExperimentSpec
workload(int mesh, int block, int levels, int ncycles)
{
    ExperimentSpec spec;
    spec.meshSize = mesh;
    spec.blockSize = block;
    spec.amrLevels = levels;
    spec.ncycles = ncycles;
    spec.numeric = false;
    return spec;
}

/** Run one spec under one platform. */
inline ExperimentResult
run(ExperimentSpec spec, const PlatformConfig& platform)
{
    spec.platform = platform;
    return Experiment(spec).run();
}

/** "1.23e+07" or "OOM" for a FOM cell. */
inline std::string
fomCell(const ExperimentResult& result)
{
    return result.oom() ? "OOM" : formatSci(result.fom(), 2);
}

/** Banner printed at the top of every bench binary. */
inline void
banner(const std::string& id, const std::string& what)
{
    std::cout << "\n################################################\n"
              << "# " << id << ": " << what << "\n"
              << "# (modeled H100/Sapphire-Rapids platforms; see\n"
              << "#  DESIGN.md for the substitution methodology)\n"
              << "################################################\n\n";
}

/** Paper-vs-measured footnote helper. */
inline void
expect(Table& table, const std::string& note)
{
    table.addNote("paper: " + note);
}

} // namespace vibe::bench
