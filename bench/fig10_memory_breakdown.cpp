/**
 * @file fig10_memory_breakdown.cpp
 * Reproduces Fig. 10: memory usage split into Kokkos-managed mesh data
 * and MPI communication buffers + Open MPI driver, for GPU 6/8/12R
 * (device memory) and CPU 12/16/48/96R (node memory), at mesh 128^3,
 * block 8, 3 levels — including the §IV-E anchor (12 ranks -> 75.5 GB
 * near the HBM capacity).
 */
#include "bench_util.hpp"

int
main()
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Fig 10", "Memory breakdown (128^3, B8, L3)");

    Table table("Memory usage by source (per device/node)");
    table.setHeader({"config", "Kokkos (GB)", "MPI buf+driver (GB)",
                     "total (GB)", "capacity", "OOM"});
    for (const PlatformConfig& platform :
         {PlatformConfig::gpu(1, 6), PlatformConfig::gpu(1, 8),
          PlatformConfig::gpu(1, 12), PlatformConfig::cpu(12),
          PlatformConfig::cpu(16), PlatformConfig::cpu(48),
          PlatformConfig::cpu(96)}) {
        auto result = run(workload(128, 8, 3, 5), platform);
        const auto& memory = result.report.memory;
        table.addRow({platform.label(), formatFixed(memory.kokkosGB, 1),
                      formatFixed(memory.mpiGB, 1),
                      formatFixed(memory.totalGB, 1),
                      formatFixed(memory.capacityGB, 0),
                      memory.oom ? "yes" : "no"});
    }
    expect(table, "GPU 12R reaches 75.5 GB (near the 80 GB HBM); "
                  "Kokkos term ~constant, MPI term grows with ranks "
                  "(ompi#12849 IPC leak included)");
    table.print(std::cout);

    Table wall("\nOOM wall (GPU ranks sweep)");
    wall.setHeader({"ranks/GPU", "total (GB)", "OOM"});
    for (int r : {4, 8, 12, 14, 16}) {
        auto result =
            run(workload(128, 8, 3, 5), PlatformConfig::gpu(1, r));
        wall.addRow({std::to_string(r),
                     formatFixed(result.report.memory.totalGB, 1),
                     result.oom() ? "yes" : "no"});
    }
    expect(wall, "scaling past ~12 ranks/GPU hits the 80 GB wall "
                 "(the Fig. 8 'X' marker)");
    wall.print(std::cout);
    return 0;
}
