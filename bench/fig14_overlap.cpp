/**
 * @file fig14_overlap.cpp
 * Communication/computation overlap of the asynchronous task-graph
 * timestep (paper §II-C/§II-D). Each RK stage is a per-block task
 * graph in which boundary pack/poll/unpack tasks interleave with
 * interior flux, divergence and update tasks; on a ThreadPoolSpace
 * the polling receive tasks run while other blocks compute, hiding
 * exchange time the strictly-phased seed driver exposed.
 *
 * Metric: per thread count T, the driver reports wall seconds of the
 * stage graphs plus the per-category sums of task time. With overlap,
 *   comm + compute > wall,
 * and the surplus is task time hidden behind other tasks:
 *   hidden   = clamp(comm + compute - wall, 0, comm)
 *   overlap  = hidden / comm    (fraction of exchange hidden)
 *   conc     = (comm + compute) / wall    (mean task concurrency)
 * At T = 1 the executor degrades to the serial scan, so hidden ~ 0;
 * the paper's async direction predicts hidden > 0 from T = 2 up.
 *
 * Threaded and serial runs are bitwise state-identical (see
 * tests/test_exec_spaces.cpp), so the sweep isolates scheduling alone.
 *
 * Usage: fig14_overlap [mesh] [cycles]   (defaults 32, 4)
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <thread>

#include "bench_util.hpp"
#include "driver/evolution_driver.hpp"
#include "pkg/burgers_package.hpp"
#include "driver/tagger.hpp"

namespace {

struct OverlapPoint
{
    double wall = 0;
    double comm = 0;
    double compute = 0;
    double totalSeconds = 0;
    std::int64_t zoneCycles = 0;
    double msgsPerCycle = 0;
    double boundaryMBPerCycle = 0;
};

OverlapPoint
runOverlap(int mesh_nx, int block_nx, int cycles, int threads,
           bool fused)
{
    using namespace vibe;
    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker,
                    makeExecutionSpace(threads));
    auto registry = makeBurgersRegistry(4);

    MeshConfig mesh_config;
    mesh_config.nx1 = mesh_config.nx2 = mesh_config.nx3 = mesh_nx;
    mesh_config.blockNx1 = mesh_config.blockNx2 = mesh_config.blockNx3 =
        block_nx;
    mesh_config.amrLevels = 2;
    mesh_config.numThreads = threads;
    mesh_config.fusedBoundaries = fused;
    Mesh mesh(mesh_config, registry, ctx);
    RankWorld world(2);

    BurgersConfig burgers_config;
    burgers_config.numScalars = 4;
    burgers_config.refineTol = 0.05;
    burgers_config.derefineTol = 0.015;
    BurgersPackage package(burgers_config);
    GradientTagger tagger(package);

    DriverConfig driver_config;
    driver_config.ncycles = cycles;
    EvolutionDriver driver(mesh, package, world, tagger, driver_config);

    const auto start = std::chrono::steady_clock::now();
    driver.initialize();
    driver.run();

    OverlapPoint point;
    point.totalSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    point.wall = driver.taskWallSeconds();
    point.comm = driver.taskCommSeconds();
    point.compute = driver.taskComputeSeconds();
    point.zoneCycles = driver.zoneCycles();
    const auto& history = driver.history();
    if (!history.empty()) {
        std::uint64_t msgs = 0;
        double bytes = 0;
        for (const auto& c : history) {
            msgs += c.boundaryMessages;
            bytes += c.boundaryBytes;
        }
        point.msgsPerCycle = static_cast<double>(msgs) /
                             static_cast<double>(history.size());
        point.boundaryMBPerCycle =
            bytes / 1.0e6 / static_cast<double>(history.size());
    }
    return point;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace vibe;
    using namespace vibe::bench;

    const int mesh = argc > 1 ? std::atoi(argv[1]) : 32;
    const int cycles = argc > 2 ? std::atoi(argv[2]) : 4;

    banner("Fig 14",
           "Exchange/compute overlap of the task-graph timestep "
           "(numeric, mesh " +
               std::to_string(mesh) + "^3, B8, L2)");
    std::cout << "hardware concurrency: "
              << std::thread::hardware_concurrency() << "\n\n";

    Table table("Task-graph overlap vs exec/num_threads");
    table.setHeader({"threads", "stage wall (s)", "comm (s)",
                     "compute (s)", "hidden (s)", "overlap",
                     "task conc"});
    for (int threads : {1, 2, 4, 8}) {
        const OverlapPoint p = runOverlap(mesh, 8, cycles, threads,
                                          vibe::envFusedBoundaries());
        const double hidden = std::clamp(
            p.comm + p.compute - p.wall, 0.0, p.comm);
        const double overlap = p.comm > 0 ? hidden / p.comm : 0.0;
        const double conc =
            p.wall > 0 ? (p.comm + p.compute) / p.wall : 1.0;
        table.addRow({std::to_string(threads), formatFixed(p.wall, 3),
                      formatFixed(p.comm, 3),
                      formatFixed(p.compute, 3), formatFixed(hidden, 3),
                      formatPercent(overlap), formatRatio(conc)});
    }
    table.addNote("hidden = comm + compute - wall; the serial scan "
                  "(T=1) overlaps nothing by construction");
    table.addNote("threaded and serial runs produce bitwise-identical "
                  "mesh state; only scheduling changes");
    expect(table,
           "overlap > 0% from 2 threads up: boundary polling tasks "
           "run while interior blocks compute");
    table.print(std::cout);

    // Per-face vs fused boundary path, side by side per block size.
    // The per-face graph polls each face channel as its own task; the
    // fused graph polls one coalesced message per adjacent rank pair
    // and phase, so its message count no longer scales with the face
    // count — the byte volume is identical by construction.
    Table fusedTable("\nBoundary path: per-face vs fused "
                     "BoundaryPlan (4 threads)");
    fusedTable.setHeader({"block", "path", "bnd msgs/cyc",
                          "bnd MB/cyc", "stage wall (s)", "comm (s)",
                          "overlap"});
    for (int block : {8, 16, 32}) {
        // Periodic meshes need >= 2 blocks per dimension.
        if (2 * block > mesh || mesh % block != 0)
            continue;
        for (const bool fused : {false, true}) {
            const OverlapPoint p =
                runOverlap(mesh, block, cycles, 4, fused);
            const double hidden = std::clamp(
                p.comm + p.compute - p.wall, 0.0, p.comm);
            const double overlap = p.comm > 0 ? hidden / p.comm : 0.0;
            fusedTable.addRow(
                {std::to_string(block), fused ? "fused" : "per-face",
                 formatFixed(p.msgsPerCycle, 1),
                 formatFixed(p.boundaryMBPerCycle, 3),
                 formatFixed(p.wall, 3), formatFixed(p.comm, 3),
                 formatPercent(overlap)});
        }
    }
    fusedTable.addNote("fused sends one coalesced message per rank "
                       "pair and phase; bytes/cycle match per-face "
                       "exactly");
    expect(fusedTable,
           "fused msgs/cyc is O(rank pairs), per-face msgs/cyc is "
           "O(faces); the gap widens as blocks shrink");
    fusedTable.print(std::cout);
    return 0;
}
