/**
 * @file lb_imbalance.cpp
 * Measured-cost load balancing on a workload with real per-block cost
 * imbalance: the stiff reaction package advects a hotspot whose cells
 * iterate the equilibrium solve to convergence while floor cells pay
 * 1-2 iterations (the bench deck steepens stiffness to 6.5, ~1600
 * iterations across the blob plateau), so blocks covering the feature
 * cost several times their neighbors — invisible to the uniform
 * (cells-per-block) cost model.
 *
 * The bench runs the identical workload under `lb_cost = uniform` and
 * `lb_cost = measured` (EMA-smoothed per-task wall clocks, with the
 * hysteresis trigger bounding steady-state migrations) and reports
 * measured zone-cycles/s, idle fraction, the late-run max/mean
 * rank-cost imbalance, and how many blocks actually moved. Mesh state
 * is bitwise identical between the two modes
 * (tests/test_load_balance_cost.cpp); the difference is pure wall
 * clock.
 *
 * Default: a quick 2-rank smoke (CI). `--measured` runs the full
 * 2/4-rank sweep on a larger mesh; `--json <path>` emits the points
 * for trajectory tracking.
 */
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace vibe;
using namespace vibe::bench;

/** Migration/decision tallies folded out of the cycle history. */
struct LbTallies
{
    int totalMoves = 0;  ///< Blocks re-homed over the whole run.
    int lateMoves = 0;   ///< Re-homed in the second half (steady state).
    int skips = 0;       ///< Proposals rejected by hysteresis.
    double lateImbalance = 0; ///< Mean max/mean imbalance, second half.
};

/**
 * Idle share of the team's capacity over the task-graph windows:
 * 1 - busy / (max-rank wall x ranks x threads). Unlike the in-graph
 * idle fraction this charges the early finishers' wait for the
 * straggler (they spin in the next collective, outside their own
 * graphs) — the signal cost-based balancing actually moves.
 */
double
stragglerIdle(const ExperimentResult& result)
{
    double wall = 0;
    double busy = 0;
    for (const CycleStats& c : result.history) {
        wall += c.taskWallSeconds;
        busy += c.busySeconds;
    }
    const double capacity = wall * result.spec.numRanks *
                            result.spec.numThreads;
    return capacity > 0 ? 1.0 - busy / capacity : 0.0;
}

LbTallies
tally(const std::vector<CycleStats>& history)
{
    LbTallies t;
    const std::size_t half = history.size() / 2;
    std::size_t late_samples = 0;
    for (std::size_t c = 0; c < history.size(); ++c) {
        t.totalMoves += history[c].movedBlocks;
        if (history[c].lbDecision == 2)
            ++t.skips;
        if (c >= half) {
            t.lateMoves += history[c].movedBlocks;
            if (history[c].lbImbalance > 0) {
                t.lateImbalance += history[c].lbImbalance;
                ++late_samples;
            }
        }
    }
    if (late_samples > 0)
        t.lateImbalance /= static_cast<double>(late_samples);
    return t;
}

ExperimentResult
runPoint(int mesh, int ncycles, int ranks, const std::string& cost,
         double trigger)
{
    ExperimentSpec spec;
    spec.meshSize = mesh;
    spec.blockSize = 8;
    // Uniform mesh, deliberately: with AMR the refinement clusters
    // blocks around the hotspot, so cells-per-block partitioning is
    // accidentally half-decent (refinement is itself a cost proxy).
    // On a uniform mesh the cell count is flat and the stiff-source
    // imbalance is invisible to the uniform model — the isolated
    // signal this bench exists to measure.
    spec.amrLevels = 1;
    spec.ncycles = ncycles;
    spec.numeric = true;
    spec.package = "reaction";
    spec.numRanks = ranks;
    spec.numThreads = 1;
    spec.lbCost = cost;
    spec.lbImbalanceTrigger = trigger;
    // Steepen the equilibrium map well past the package default
    // (stiffness 3 ~ 100 iterations at the blob plateau): at 6.5 the
    // plateau burns ~1600 iterations per cell while floor cells still
    // pay 1-2, making the stiff source the first-order share of step
    // time and the hot-octant imbalance several tens of percent — the
    // regime measured-cost balancing exists for. (6.8 no longer
    // contracts at the peak; the iteration cap bounds cells a limiter
    // overshoot pushes past it.)
    spec.packageParams = {{"reaction", "stiffness", "6.5"},
                          {"reaction", "max_iters", "2000"}};
    return Experiment(spec).run();
}

int
runBench(int mesh, int ncycles, const std::vector<int>& rank_points,
         int reps, const std::string& json_path)
{
    banner("LB imbalance",
           "Measured-cost load balancing vs uniform on the stiff "
           "reaction hotspot");

    // Below the genuine rebalance signal, above the jitter floor: on
    // this workload picking up the initially unbalanced hot octant
    // projects a max/mean improvement of several tenths, while the
    // EMA-damped timer wobble proposes marginal (<0.1) reshuffles
    // every few cycles. 0.2 adopts the former and rejects the latter.
    const double trigger = 0.2;

    JsonReport report("lb_imbalance");
    Table table("Reaction hotspot, " + std::to_string(mesh) +
                "^3 uniform mesh, B8, " + std::to_string(ncycles) +
                " cycles, hysteresis trigger " +
                formatFixed(trigger, 2));
    table.setHeader({"ranks", "lb_cost", "zone-cyc/s", "vs uniform",
                     "strag idle %", "late imb", "moved", "late moved",
                     "lb skips", "migrated KB"});

    // Rank threads run concurrently: a point that oversubscribes the
    // physical cores measures scheduler timeslicing, not balance (the
    // per-task clocks feeding the cost model get preemption noise and
    // the straggler structure is destroyed). Skip those points loudly
    // rather than report garbage.
    const unsigned cores = std::thread::hardware_concurrency();
    for (int ranks : rank_points) {
        if (cores > 0 && static_cast<unsigned>(ranks) > cores) {
            table.addNote("skipped " + std::to_string(ranks) +
                          "-rank points: only " + std::to_string(cores) +
                          " hardware threads (oversubscribed ranks "
                          "measure preemption, not balance)");
            continue;
        }
        // Wall clock is the measurement and the machine's speed drifts
        // on minute scales, so interleave the modes rep by rep — each
        // pair samples the same machine epoch — and keep each mode's
        // best (the rep least perturbed by scheduler noise; mesh state
        // is identical across reps, only the wall varies).
        const std::vector<std::string> costs{"uniform", "measured"};
        std::vector<ExperimentResult> best(costs.size());
        for (int rep = 0; rep < reps; ++rep)
            for (std::size_t m = 0; m < costs.size(); ++m) {
                ExperimentResult result =
                    runPoint(mesh, ncycles, ranks, costs[m], trigger);
                if (rep == 0 ||
                    result.wallSeconds < best[m].wallSeconds)
                    best[m] = std::move(result);
            }
        double uniform_fom = 0.0;
        for (std::size_t m = 0; m < costs.size(); ++m) {
            const std::string& cost = costs[m];
            const ExperimentResult& result = best[m];
            const LbTallies t = tally(result.history);
            if (cost == "uniform")
                uniform_fom = result.measuredFom();
            table.addRow(
                {std::to_string(ranks), cost,
                 formatSci(result.measuredFom(), 2),
                 cost == "measured" && uniform_fom > 0
                     ? formatRatio(result.measuredFom() / uniform_fom)
                     : "1.00x",
                 formatFixed(100.0 * stragglerIdle(result), 1),
                 formatFixed(t.lateImbalance, 2),
                 std::to_string(t.totalMoves),
                 std::to_string(t.lateMoves), std::to_string(t.skips),
                 formatFixed(result.migratedStorageBytes / 1.0e3, 1)});
            const std::vector<std::pair<std::string, std::string>> cfg{
                {"ranks", std::to_string(ranks)},
                {"lb_cost", cost},
                {"mesh", std::to_string(mesh)}};
            report.add("lb_wall_seconds", cfg, result.wallSeconds);
            report.add("lb_straggler_idle_fraction", cfg,
                       stragglerIdle(result));
            report.add("lb_graph_idle_fraction", cfg,
                       result.idle.idleFraction());
            report.add("lb_late_imbalance", cfg, t.lateImbalance);
            report.add("lb_late_moved_blocks", cfg,
                       static_cast<double>(t.lateMoves));
        }
    }
    table.addNote("state is bitwise identical across cost modes "
                  "(tests/test_load_balance_cost.cpp); measured should "
                  "win FOM and straggler idle once per-block cost "
                  "contrast exceeds the partition granularity");
    table.addNote("'late moved' bounds steady-state migration churn: "
                  "the hysteresis trigger rejects repartitions whose "
                  "projected max/mean improvement is below " +
                  formatFixed(trigger, 2));
    table.print(std::cout);

    report.write(json_path);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    const std::string json_path = extractJsonPath(argc, argv);
    const bool measured = extractFlag(argc, argv, "--measured");
    if (measured) {
        // Full sweep: enough blocks (64 base + refinement) and cycles
        // for the EMA to settle and the hotspot to cross partitions.
        const int mesh = argc > 1 ? std::atoi(argv[1]) : 32;
        const int cycles = argc > 2 ? std::atoi(argv[2]) : 16;
        return runBench(mesh, cycles, {2, 4}, /*reps=*/5, json_path);
    }
    // CI smoke: one 2-rank point on a small mesh, single rep.
    return runBench(16, 6, {2}, /*reps=*/1, json_path);
}
