/**
 * @file table3_gpu_microarch.cpp
 * Reproduces Table III: per-kernel GPU microarchitecture statistics
 * (duration per cycle, SM utilization, occupancy, warp utilization,
 * bandwidth utilization, arithmetic intensity) for the ten
 * most-time-consuming kernels at MeshBlockSize 32 and 16.
 */
#include "bench_util.hpp"

int
main()
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Table III", "GPU microarchitecture analysis (128^3, L3)");

    // The paper's kernel order.
    const std::vector<std::pair<std::string, std::string>> kernels = {
        {"CalculateFluxes", "94.9/32.3 SM, 24.1/24.2 occ, 4.3/3.4 AI"},
        {"FirstDerivative", "2.5/2.2 SM, 52.3/52.5 occ"},
        {"MassHistory", "5.6/4.0 SM, 24.2/24.1 occ"},
        {"WeightedSumData", "69.1/54.5 SM, 92.7/94.2 occ"},
        {"SendBoundBufs", "5.5/11.3 SM, 95.7/97.9 occ"},
        {"SetBounds", "12.4/14.3 SM, 51.5/50.4 occ"},
        {"FluxDivergence", "48.5/41.6 SM, 94.5/97.5 occ"},
        {"EstTimeMesh", "3.7/2.9 SM, 24.2/24.1 occ"},
        {"ProlongRestrictLoop", "24.8/29.7 SM, 54.9/66.3 occ"},
        {"CalculateDerived", "39.2/46.8 SM, 36.9/41.9 occ"}};

    for (int block : {32, 16}) {
        auto result =
            run(workload(128, block, 3, 6), PlatformConfig::gpu(1, 1));
        const double cycles =
            static_cast<double>(result.history.size());

        Table table("B" + std::to_string(block) +
                    ": per-kernel statistics (single cycle)");
        table.setHeader({"kernel", "duration (ms)", "SM util", "occ",
                         "warp util", "BW util", "AI (flop/B)"});
        double weighted_sm = 0, weighted_occ = 0, weighted_warp = 0,
               weighted_bw = 0, total_duration = 0, total_flops = 0,
               total_bytes = 0;
        for (const auto& [name, paper_note] : kernels) {
            auto it = result.report.kernels.find(name);
            if (it == result.report.kernels.end())
                continue;
            const auto& t = it->second;
            const double per_cycle_ms = t.duration / cycles * 1e3;
            table.addRow({name, formatFixed(per_cycle_ms, 2),
                          formatPercent(t.smUtil),
                          formatPercent(t.occupancy),
                          formatPercent(t.warpUtil),
                          formatPercent(t.bwUtil),
                          formatFixed(t.arithIntensity, 1)});
            weighted_sm += t.duration * t.smUtil;
            weighted_occ += t.duration * t.occupancy;
            weighted_warp += t.duration * t.warpUtil;
            weighted_bw += t.duration * t.bwUtil;
            total_duration += t.duration;
            const auto stats = result.profiler.kernelByName(name);
            total_flops += stats.flops;
            total_bytes += stats.bytes;
        }
        table.addRow(
            {"Total (weighted)",
             formatFixed(total_duration / cycles * 1e3, 2),
             formatPercent(weighted_sm / total_duration),
             formatPercent(weighted_occ / total_duration),
             formatPercent(weighted_warp / total_duration),
             formatPercent(weighted_bw / total_duration),
             formatFixed(total_flops / total_bytes, 1)});
        expect(table,
               "B32 totals: 329 ms, 23.4% SM, 45.0% occ, 95.3% warp, "
               "18.1% BW, 5.0 AI; B16: 257 ms, 19.1% SM, 44.2% occ, "
               "76.3% warp, 13.2% BW, 5.4 AI");
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "paper per-kernel anchors:\n";
    for (const auto& [name, note] : kernels)
        std::cout << "  " << name << ": " << note << "\n";
    return 0;
}
