/**
 * @file sec5_multinode.cpp
 * Reproduces the Section V multi-node discussion: two-node vs
 * one-node scaling ratios for CPU and GPU platforms, the block-size
 * performance drop across two nodes, and the AMR-level drop at mesh
 * 256^3 — all with one rank per GPU / one rank per core, as in the
 * paper.
 */
#include "bench_util.hpp"

int
main()
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Sec V", "Multi-node scaling (2 nodes vs 1)");

    auto scaling = [&](int mesh, int block, int levels, int cycles) {
        auto spec = workload(mesh, block, levels, cycles);
        const auto cpu1 = run(spec, PlatformConfig::cpu(96, 1));
        const auto cpu2 = run(spec, PlatformConfig::cpu(192, 2));
        const auto gpu1 = run(spec, PlatformConfig::gpu(8, 8, 1));
        const auto gpu2 = run(spec, PlatformConfig::gpu(16, 16, 2));
        return std::array<double, 4>{cpu1.fom(), cpu2.fom(), gpu1.fom(),
                                     gpu2.fom()};
    };

    Table table("Two-node/one-node FOM ratio");
    table.setHeader({"config (mesh, block, levels)", "CPU 2N/1N",
                     "GPU 2N/1N", "paper (CPU / GPU)"});
    {
        const auto s = scaling(128, 8, 3, 5);
        table.addRow({"128, 8, 3", formatRatio(s[1] / s[0]),
                      formatRatio(s[3] / s[2]), "1.63x / 1.51x"});
    }
    {
        const auto s = scaling(128, 16, 3, 6);
        table.addRow({"128, 16, 3", formatRatio(s[1] / s[0]),
                      formatRatio(s[3] / s[2]), "1.85x / 0.95x"});
    }
    expect(table, "CPUs scale across nodes; GPUs scale weakly or "
                  "regress at larger blocks");
    table.print(std::cout);

    // Block-size drop across two nodes (B32 -> B8).
    Table drop("\nB32 -> B8 performance drop across two nodes");
    drop.setHeader({"mesh", "CPU drop", "GPU drop", "paper"});
    for (int mesh : {128, 256}) {
        const int cyc8 = mesh == 256 ? 3 : 5;
        auto b32 = workload(mesh, 32, 3, 6);
        auto b8 = workload(mesh, 8, 3, cyc8);
        const auto cpu32 = run(b32, PlatformConfig::cpu(192, 2));
        const auto cpu8 = run(b8, PlatformConfig::cpu(192, 2));
        const auto gpu32 = run(b32, PlatformConfig::gpu(16, 16, 2));
        const auto gpu8 = run(b8, PlatformConfig::gpu(16, 16, 2));
        drop.addRow({std::to_string(mesh) + "^3",
                     formatRatio(cpu32.fom() / cpu8.fom()),
                     formatRatio(gpu32.fom() / gpu8.fom()),
                     mesh == 128 ? "5.88x / 90.77x"
                                 : "5.73x / 207.83x"});
    }
    expect(drop, "the small-block penalty is far more severe for GPUs "
                 "and grows with mesh size");
    drop.print(std::cout);

    // AMR-level drop at mesh 256, B16: L1 -> L3.
    Table levels("\nL1 -> L3 drop at mesh 256^3, B16 (two nodes)");
    levels.setHeader({"platform", "FOM(L1)/FOM(L3)", "paper"});
    auto l1 = workload(256, 16, 1, 4);
    auto l3 = workload(256, 16, 3, 4);
    const auto cpu_l1 = run(l1, PlatformConfig::cpu(192, 2));
    const auto cpu_l3 = run(l3, PlatformConfig::cpu(192, 2));
    const auto gpu_l1 = run(l1, PlatformConfig::gpu(16, 16, 2));
    const auto gpu_l3 = run(l3, PlatformConfig::gpu(16, 16, 2));
    levels.addRow({"CPU x2N", formatRatio(cpu_l1.fom() / cpu_l3.fom()),
                   "1.22x"});
    levels.addRow({"GPU x2N", formatRatio(gpu_l1.fom() / gpu_l3.fom()),
                   "3.92x"});
    levels.print(std::cout);
    return 0;
}
