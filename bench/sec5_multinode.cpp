/**
 * @file sec5_multinode.cpp
 * Reproduces the Section V multi-node discussion: two-node vs
 * one-node scaling ratios for CPU and GPU platforms, the block-size
 * performance drop across two nodes, and the AMR-level drop at mesh
 * 256^3 — all with one rank per GPU / one rank per core, as in the
 * paper.
 *
 * `--measured` switches from the modeled tables to real rank-sharded
 * execution: 1/2/4 in-process ranks, each a concurrent driver over its
 * own block shard coupled only through RankWorld, reporting measured
 * zone-cycles/s plus the traffic counters (remote messages/bytes,
 * collectives, migrated block storage). `--json <path>` emits the
 * measured points for trajectory tracking.
 */
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"

namespace {

int
runMeasured(int mesh, int block, const std::string& json_path)
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Sec V (measured)",
           "In-process rank sharding: concurrent per-rank drivers");

    JsonReport report("sec5_multinode_measured");
    Table table("Measured rank scaling, " + std::to_string(mesh) +
                "^3 mesh, B" + std::to_string(block) + ", L2, burgers");
    table.setHeader({"ranks", "threads/rank", "zone-cyc/s", "speedup",
                     "remote msgs", "remote MB", "allreduces",
                     "migrated KB", "bnd msgs/cyc", "bnd MB/cyc",
                     "idle %", "idle s/rank"});

    double base_fom = 0.0;
    for (int ranks : {1, 2, 4}) {
        for (int threads : {1, 2}) {
            ExperimentSpec spec;
            spec.meshSize = mesh;
            spec.blockSize = block;
            spec.amrLevels = 2;
            spec.ncycles = 6;
            spec.numeric = true;
            spec.numRanks = ranks;
            spec.numThreads = threads;
            const ExperimentResult result = Experiment(spec).run();
            if (ranks == 1 && threads == 1)
                base_fom = result.measuredFom();
            // Per-rank idle attribution (src/obs/attribution.hpp):
            // a rank idling far above its peers is starved, one with
            // none is the straggler the balancer should split.
            std::string idle_per_rank;
            for (double idle : result.idle.rankIdleSeconds) {
                if (!idle_per_rank.empty())
                    idle_per_rank += "|";
                idle_per_rank += formatFixed(idle, 2);
            }
            table.addRow(
                {std::to_string(ranks), std::to_string(threads),
                 formatSci(result.measuredFom(), 2),
                 base_fom > 0
                     ? formatRatio(result.measuredFom() / base_fom)
                     : "1.00x",
                 std::to_string(result.traffic.remoteMessages),
                 formatFixed(result.traffic.remoteBytes / 1.0e6, 2),
                 std::to_string(result.traffic.allReduces),
                 formatFixed(result.migratedStorageBytes / 1.0e3, 1),
                 formatFixed(result.messagesPerCycle(), 1),
                 formatFixed(result.boundaryBytesPerCycle() / 1.0e6, 3),
                 formatFixed(100.0 * result.idle.idleFraction(), 1),
                 idle_per_rank});
            const std::vector<std::pair<std::string, std::string>> cfg{
                {"ranks", std::to_string(ranks)},
                {"threads", std::to_string(threads)},
                {"mesh", std::to_string(mesh)},
                {"block", std::to_string(block)}};
            report.add("measured_rank_scaling", cfg,
                       result.wallSeconds);
            report.add("measured_idle_fraction", cfg,
                       result.idle.idleFraction());
            report.add("measured_critical_path_seconds", cfg,
                       result.idle.criticalPathSeconds);
            for (std::size_t r = 0;
                 r < result.idle.rankIdleSeconds.size(); ++r) {
                auto rank_cfg = cfg;
                rank_cfg.push_back({"rank", std::to_string(r)});
                report.add("measured_rank_idle_seconds", rank_cfg,
                           result.idle.rankIdleSeconds[r]);
            }
        }
    }
    table.addNote("N-rank state is bitwise identical to 1-rank "
                  "(tests/test_rank_shard.cpp); differences are pure "
                  "execution.");
    table.print(std::cout);

    // Per-face vs fused boundary coalescing at increasing block size.
    // The fused BoundaryPlan path carries identical bytes in
    // O(adjacent rank pairs) messages per phase instead of O(faces);
    // smaller blocks mean more faces, so the message-count win grows
    // as the block size shrinks.
    Table coal("\nBoundary coalescing: per-face vs fused (" +
               std::to_string(mesh) + "^3 mesh, 2 ranks, L2)");
    coal.setHeader({"block", "path", "bnd msgs/cyc", "bnd MB/cyc",
                    "zone-cyc/s", "fused/per-face"});
    for (int coal_block : {8, 16, 32}) {
        // Periodic meshes need >= 2 blocks per dimension.
        if (2 * coal_block > mesh || mesh % coal_block != 0)
            continue;
        double per_face_fom = 0.0;
        for (const bool fused : {false, true}) {
            ExperimentSpec spec;
            spec.meshSize = mesh;
            spec.blockSize = coal_block;
            spec.amrLevels = 2;
            spec.ncycles = 4;
            spec.numeric = true;
            spec.numRanks = 2;
            spec.numThreads = 1;
            spec.fusedBoundaries = fused;
            const ExperimentResult result = Experiment(spec).run();
            if (!fused)
                per_face_fom = result.measuredFom();
            coal.addRow(
                {std::to_string(coal_block),
                 fused ? "fused" : "per-face",
                 formatFixed(result.messagesPerCycle(), 1),
                 formatFixed(result.boundaryBytesPerCycle() / 1.0e6, 3),
                 formatSci(result.measuredFom(), 2),
                 fused && per_face_fom > 0
                     ? formatRatio(result.measuredFom() / per_face_fom)
                     : "-"});
            const std::vector<std::pair<std::string, std::string>> cfg{
                {"block", std::to_string(coal_block)},
                {"path", fused ? "fused" : "per_face"},
                {"mesh", std::to_string(mesh)}};
            report.add("boundary_messages_per_cycle", cfg,
                       result.messagesPerCycle());
            report.add("boundary_bytes_per_cycle", cfg,
                       result.boundaryBytesPerCycle());
        }
    }
    coal.addNote("both paths are bitwise state-identical "
                 "(tests/test_boundary_plan.cpp); fused coalesces "
                 "each rank pair's boundary into one message/phase");
    coal.print(std::cout);

    // Checkpoint overhead: async (double-buffered off-thread drain)
    // vs sync (encode+disk on the critical path), against a
    // no-checkpoint baseline, at two snapshot cadences — every cycle
    // (a deliberate stress) and every 8 cycles (a production-like
    // interval, where the amortized async cost must stay small).
    const std::string ckpt_path = "BENCH_ckpt.bin";
    Table ckpt("\nCheckpoint overhead: async vs sync at snapshot "
               "intervals 1 and 16 (" +
               std::to_string(mesh) + "^3 mesh, B" +
               std::to_string(block) + ", L2)");
    ckpt.setHeader({"ranks", "mode", "every", "wall s", "overhead",
                    "crit %", "capture s", "drain s", "snapshots"});
    for (int ranks : {1, 2}) {
        double base_wall = 0.0;
        for (const auto& [mode, every] :
             std::vector<std::pair<std::string, int>>{{"off", 0},
                                                      {"async", 1},
                                                      {"sync", 1},
                                                      {"async", 16},
                                                      {"sync", 16}}) {
            ExperimentSpec spec;
            spec.meshSize = mesh;
            spec.blockSize = block;
            spec.amrLevels = 2;
            spec.ncycles = 16;
            spec.numeric = true;
            spec.numRanks = ranks;
            spec.numThreads = 1;
            if (mode != "off") {
                spec.checkpointEvery = every;
                spec.checkpointPath = ckpt_path;
                spec.checkpointAsync = mode == "async";
            }
            const ExperimentResult result = Experiment(spec).run();
            if (mode == "off") {
                base_wall = result.wallSeconds;
                ckpt.addRow({std::to_string(ranks), mode, "-",
                             formatFixed(result.wallSeconds, 3), "-",
                             "-", "-", "-", "0"});
                continue;
            }
            const double overhead_pct =
                base_wall > 0 ? 100.0 *
                                    (result.wallSeconds - base_wall) /
                                    base_wall
                              : 0.0;
            // Machine noise swamps a wall-clock difference at small
            // overheads, so also report the deterministic in-run
            // number: capture time (the only critical-path cost in
            // async mode; in sync mode it includes the in-line
            // encode+disk) as a fraction of the run.
            const double crit_pct =
                result.wallSeconds > 0
                    ? 100.0 * result.checkpointCaptureSeconds /
                          result.wallSeconds
                    : 0.0;
            ckpt.addRow(
                {std::to_string(ranks), mode, std::to_string(every),
                 formatFixed(result.wallSeconds, 3),
                 formatFixed(overhead_pct, 1) + "%",
                 formatFixed(crit_pct, 1) + "%",
                 formatFixed(result.checkpointCaptureSeconds, 3),
                 formatFixed(result.checkpointDrainSeconds, 3),
                 std::to_string(result.checkpointsWritten)});
            const std::vector<std::pair<std::string, std::string>> cfg{
                {"ranks", std::to_string(ranks)},
                {"mode", mode},
                {"every", std::to_string(every)},
                {"mesh", std::to_string(mesh)}};
            report.add("checkpoint_overhead_pct", cfg, overhead_pct);
            report.add("checkpoint_critical_path_pct", cfg, crit_pct);
            report.add("checkpoint_capture_seconds", cfg,
                       result.checkpointCaptureSeconds);
            report.add("checkpoint_drain_seconds", cfg,
                       result.checkpointDrainSeconds);
        }
    }
    ckpt.addNote("async deposits the snapshot into a double buffer "
                 "and drains off-thread (only the capture gather is "
                 "on the critical path); sync pays encode+disk "
                 "in-line at every snapshot");
    ckpt.print(std::cout);

    // Supervised recovery: rank 1 dies at cycle 4; the experiment
    // restarts from the last durable checkpoint and finishes.
    Table rec("\nFault recovery: rank death at cycle 4, "
              "restart from the cycle-4 checkpoint");
    rec.setHeader({"ranks", "restarts", "recovery s", "snapshots",
                   "final blocks"});
    {
        ExperimentSpec spec;
        spec.meshSize = mesh;
        spec.blockSize = block;
        spec.amrLevels = 2;
        spec.ncycles = 6;
        spec.numeric = true;
        spec.numRanks = 2;
        spec.numThreads = 1;
        spec.checkpointEvery = 2;
        spec.checkpointPath = ckpt_path;
        spec.maxRestarts = 1;
        spec.failRank = 1;
        spec.failCycle = 4;
        const ExperimentResult result = Experiment(spec).run();
        rec.addRow({"2", std::to_string(result.restarts),
                    formatFixed(result.recoverySeconds, 3),
                    std::to_string(result.checkpointsWritten),
                    std::to_string(result.finalBlocks)});
        const std::vector<std::pair<std::string, std::string>> cfg{
            {"ranks", "2"}, {"mesh", std::to_string(mesh)}};
        report.add("recovery_seconds", cfg, result.recoverySeconds);
        report.add("restarts", cfg,
                   static_cast<double>(result.restarts));
    }
    rec.addNote("continuation is bitwise identical to the "
                "uninterrupted run (tests/test_checkpoint.cpp)");
    rec.print(std::cout);
    std::remove(ckpt_path.c_str());

    // Measured-cost load balancing on the stiff reaction workload,
    // where per-block cost varies several-fold while the uniform model
    // sees identical blocks. bench/lb_imbalance is the full study;
    // this is the one-glance summary at 2 ranks.
    Table lb("\nLoad-balance cost model: uniform vs measured "
             "(reaction hotspot, " +
             std::to_string(mesh) + "^3 uniform mesh, B8, 2 ranks)");
    lb.setHeader({"lb_cost", "zone-cyc/s", "vs uniform",
                  "strag idle %", "moved blocks"});
    {
        double uniform_fom = 0.0;
        for (const std::string cost : {"uniform", "measured"}) {
            ExperimentSpec spec;
            spec.meshSize = mesh;
            spec.blockSize = 8;
            // Same deck as bench/lb_imbalance: uniform mesh (AMR
            // refinement is itself a cost proxy that would mask the
            // signal) and a steepened equilibrium map so the stiff
            // source is a first-order share of step time.
            spec.amrLevels = 1;
            spec.ncycles = 8;
            spec.numeric = true;
            spec.package = "reaction";
            spec.numRanks = 2;
            spec.numThreads = 1;
            spec.lbCost = cost;
            spec.lbImbalanceTrigger = 0.2;
            spec.packageParams = {{"reaction", "stiffness", "6.5"},
                                  {"reaction", "max_iters", "2000"}};
            const ExperimentResult result = Experiment(spec).run();
            if (cost == "uniform")
                uniform_fom = result.measuredFom();
            int moved = 0;
            double graph_wall = 0;
            double busy = 0;
            for (const CycleStats& c : result.history) {
                moved += c.movedBlocks;
                graph_wall += c.taskWallSeconds;
                busy += c.busySeconds;
            }
            // Straggler idle: busy vs the team capacity over the
            // slowest rank's graph windows (bench/lb_imbalance has
            // the full definition and study).
            const double capacity = graph_wall * 2;
            const double strag_idle =
                capacity > 0 ? 1.0 - busy / capacity : 0.0;
            lb.addRow({cost, formatSci(result.measuredFom(), 2),
                       cost == "measured" && uniform_fom > 0
                           ? formatRatio(result.measuredFom() /
                                         uniform_fom)
                           : "1.00x",
                       formatFixed(100.0 * strag_idle, 1),
                       std::to_string(moved)});
            const std::vector<std::pair<std::string, std::string>> cfg{
                {"lb_cost", cost}, {"mesh", std::to_string(mesh)}};
            report.add("lb_cost_wall_seconds", cfg,
                       result.wallSeconds);
            report.add("lb_cost_idle_fraction", cfg,
                       result.idle.idleFraction());
        }
    }
    lb.addNote("state is bitwise identical across cost modes "
               "(tests/test_load_balance_cost.cpp)");
    lb.print(std::cout);

    report.write(json_path);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace vibe;
    using namespace vibe::bench;
    const std::string json_path = extractJsonPath(argc, argv);
    const bool measured = extractFlag(argc, argv, "--measured");
    if (measured) {
        const int mesh = argc > 1 ? std::atoi(argv[1]) : 16;
        const int block = argc > 2 ? std::atoi(argv[2]) : 8;
        return runMeasured(mesh, block, json_path);
    }
    banner("Sec V", "Multi-node scaling (2 nodes vs 1)");

    auto scaling = [&](int mesh, int block, int levels, int cycles) {
        auto spec = workload(mesh, block, levels, cycles);
        const auto cpu1 = run(spec, PlatformConfig::cpu(96, 1));
        const auto cpu2 = run(spec, PlatformConfig::cpu(192, 2));
        const auto gpu1 = run(spec, PlatformConfig::gpu(8, 8, 1));
        const auto gpu2 = run(spec, PlatformConfig::gpu(16, 16, 2));
        return std::array<double, 4>{cpu1.fom(), cpu2.fom(), gpu1.fom(),
                                     gpu2.fom()};
    };

    Table table("Two-node/one-node FOM ratio");
    table.setHeader({"config (mesh, block, levels)", "CPU 2N/1N",
                     "GPU 2N/1N", "paper (CPU / GPU)"});
    {
        const auto s = scaling(128, 8, 3, 5);
        table.addRow({"128, 8, 3", formatRatio(s[1] / s[0]),
                      formatRatio(s[3] / s[2]), "1.63x / 1.51x"});
    }
    {
        const auto s = scaling(128, 16, 3, 6);
        table.addRow({"128, 16, 3", formatRatio(s[1] / s[0]),
                      formatRatio(s[3] / s[2]), "1.85x / 0.95x"});
    }
    expect(table, "CPUs scale across nodes; GPUs scale weakly or "
                  "regress at larger blocks");
    table.print(std::cout);

    // Block-size drop across two nodes (B32 -> B8).
    Table drop("\nB32 -> B8 performance drop across two nodes");
    drop.setHeader({"mesh", "CPU drop", "GPU drop", "paper"});
    for (int mesh : {128, 256}) {
        const int cyc8 = mesh == 256 ? 3 : 5;
        auto b32 = workload(mesh, 32, 3, 6);
        auto b8 = workload(mesh, 8, 3, cyc8);
        const auto cpu32 = run(b32, PlatformConfig::cpu(192, 2));
        const auto cpu8 = run(b8, PlatformConfig::cpu(192, 2));
        const auto gpu32 = run(b32, PlatformConfig::gpu(16, 16, 2));
        const auto gpu8 = run(b8, PlatformConfig::gpu(16, 16, 2));
        drop.addRow({std::to_string(mesh) + "^3",
                     formatRatio(cpu32.fom() / cpu8.fom()),
                     formatRatio(gpu32.fom() / gpu8.fom()),
                     mesh == 128 ? "5.88x / 90.77x"
                                 : "5.73x / 207.83x"});
    }
    expect(drop, "the small-block penalty is far more severe for GPUs "
                 "and grows with mesh size");
    drop.print(std::cout);

    // AMR-level drop at mesh 256, B16: L1 -> L3.
    Table levels("\nL1 -> L3 drop at mesh 256^3, B16 (two nodes)");
    levels.setHeader({"platform", "FOM(L1)/FOM(L3)", "paper"});
    auto l1 = workload(256, 16, 1, 4);
    auto l3 = workload(256, 16, 3, 4);
    const auto cpu_l1 = run(l1, PlatformConfig::cpu(192, 2));
    const auto cpu_l3 = run(l3, PlatformConfig::cpu(192, 2));
    const auto gpu_l1 = run(l1, PlatformConfig::gpu(16, 16, 2));
    const auto gpu_l3 = run(l3, PlatformConfig::gpu(16, 16, 2));
    levels.addRow({"CPU x2N", formatRatio(cpu_l1.fom() / cpu_l3.fom()),
                   "1.22x"});
    levels.addRow({"GPU x2N", formatRatio(gpu_l1.fom() / gpu_l3.fom()),
                   "3.92x"});
    levels.print(std::cout);
    return 0;
}
