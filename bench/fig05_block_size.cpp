/**
 * @file fig05_block_size.cpp
 * Reproduces Fig. 5: FOM versus MeshBlockSize (mesh 128^3, 3 AMR
 * levels) for the GPU/CPU configurations, with OOM markers, plus the
 * §IV-B text anchors: comm-cell and cell-update growth from B32->B16,
 * the communication-to-computation ratio blowup, and the single-GPU
 * end-to-end times.
 */
#include "bench_util.hpp"

int
main()
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Fig 5", "FOM vs MeshBlockSize (mesh 128^3, L3)");

    const std::vector<int> blocks = {64, 32, 16, 8, 4};
    const std::vector<int> rank_candidates = {1, 4, 8, 12};

    Table table("FOM (zone-cycle/sec) vs MeshBlockSize");
    table.setHeader({"block", "CPU 96R", "1 GPU 1R", "4 GPUs 4R",
                     "8 GPUs 8R", "1 GPU BestR"});

    std::vector<ExperimentResult> gpu1;
    for (int block : blocks) {
        const int cycles = block <= 4 ? 2 : block <= 8 ? 4 : 6;
        auto spec = workload(128, block, 3, cycles);
        const auto cpu = run(spec, PlatformConfig::cpu(96));
        const auto g1 = run(spec, PlatformConfig::gpu(1, 1));
        const auto g4 = run(spec, PlatformConfig::gpu(4, 4));
        const auto g8 = run(spec, PlatformConfig::gpu(8, 8));
        int r1 = 0;
        const auto b1 =
            Experiment::bestRank(spec, 1, rank_candidates, &r1);
        table.addRow({std::to_string(block) + "^3", fomCell(cpu),
                      fomCell(g1), fomCell(g4), fomCell(g8),
                      fomCell(b1) + " (R" + std::to_string(r1) + ")"});
        gpu1.push_back(g1);
    }
    expect(table, "both platforms decline as blocks shrink, the GPU "
                  "far more steeply; GPUs OOM at the smallest blocks");
    table.print(std::cout);

    // §IV-B anchors (B32 -> B16 -> B8; indices 1, 2, 3 in `blocks`).
    const auto& b32 = gpu1[1];
    const auto& b16 = gpu1[2];
    const auto& b8 = gpu1[3];
    auto per_cycle = [](const ExperimentResult& r, double v) {
        return v / static_cast<double>(r.history.size());
    };

    Table anchors("\nSec IV-B anchors (GPU 1R, per-cycle quantities)");
    anchors.setHeader({"quantity", "measured", "paper"});
    anchors.addRow(
        {"comm cells B32->B16",
         formatRatio(
             per_cycle(b16, static_cast<double>(b16.commCells)) /
             per_cycle(b32, static_cast<double>(b32.commCells))),
         "2.1x"});
    anchors.addRow(
        {"cell updates B32->B16 (decrease)",
         formatRatio(
             per_cycle(b32, static_cast<double>(b32.cellUpdates)) /
             per_cycle(b16, static_cast<double>(b16.cellUpdates))),
         "5.0x"});
    const double ratio32 = static_cast<double>(b32.commCells) /
                           static_cast<double>(b32.cellUpdates);
    const double ratio16 = static_cast<double>(b16.commCells) /
                           static_cast<double>(b16.cellUpdates);
    anchors.addRow({"comm/compute ratio growth",
                    formatRatio(ratio16 / ratio32), "10.9x"});
    anchors.print(std::cout);

    Table e2e("\n1 GPU - 1 Rank end-to-end time (paper-length run)");
    e2e.setHeader({"block", "modeled E2E", "paper"});
    e2e.addRow({"32",
                formatSeconds(b32.report.totalTime * b32.paperScale()),
                "97.63 s"});
    e2e.addRow({"16",
                formatSeconds(b16.report.totalTime * b16.paperScale()),
                "257.21 s"});
    e2e.addRow({"8",
                formatSeconds(b8.report.totalTime * b8.paperScale()),
                "3023 s"});
    e2e.addNote("modeled totals scaled to the assumed ~400-cycle "
                "production run (see calibration.hpp)");
    e2e.print(std::cout);
    return 0;
}
