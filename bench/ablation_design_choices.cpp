/**
 * @file ablation_design_choices.cpp
 * Ablation benches for the design choices the paper calls out:
 *  - boundary-key randomization in InitializeBufferCache (§VIII-A);
 *  - restriction-on-send vs sending fine-resolution data (§II-C);
 *  - string-based variable lookup cost (§VIII-A);
 *  - kernel-launch overhead sensitivity of small-block GPU runs.
 */
#include "bench_util.hpp"
#include "perfmodel/serial_model.hpp"

int
main()
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Ablations", "design choices called out in the paper");

    // --- Boundary-key randomization (§VIII-A) ---
    {
        Table table("InitializeBufferCache key randomization");
        table.setHeader(
            {"variant", "buffer-cache serial items", "GPU 1R total"});
        for (bool randomize : {true, false}) {
            auto spec = workload(64, 8, 3, 6);
            spec.randomizeBufferKeys = randomize;
            spec.platform = PlatformConfig::gpu(1, 1);
            auto result = Experiment(spec).run();
            const double items =
                result.profiler.serialByCategory("buffer_cache_keys");
            table.addRow({randomize ? "sort + randomize (Parthenon)"
                                    : "sort only",
                          formatSig(items, 4),
                          formatSeconds(result.report.totalTime)});
        }
        table.addNote("randomization may help load balance but adds "
                      "serial overhead (§VIII-A tradeoff); both "
                      "variants produce identical channel sets "
                      "(asserted in tests)");
        table.print(std::cout);
    }

    // --- Restriction-on-send (§II-C) ---
    {
        auto spec = workload(64, 8, 3, 6);
        spec.platform = PlatformConfig::gpu(1, 1);
        auto result = Experiment(spec).run();
        // Fine->coarse channels carry restricted (coarse) cells; the
        // unrestricted alternative would ship 2^3 x as many.
        double restricted = 0, faces_total = 0;
        for (const auto& s : result.history) {
            faces_total += static_cast<double>(s.wireFaces);
            (void)s;
        }
        restricted = static_cast<double>(result.commCells);
        Table table("\nRestriction before fine->coarse sends");
        table.setHeader({"quantity", "value"});
        table.addRow({"ghost cells on wire (restricted)",
                      formatSig(restricted, 4)});
        table.addRow({"flux-correction faces (restricted)",
                      formatSig(faces_total, 4)});
        table.addNote("restricting on send cuts each fine->coarse "
                      "buffer by 8x in 3-D, the §II-C data-volume "
                      "optimization");
        table.print(std::cout);
    }

    // --- String-based variable lookup (§VIII-A) ---
    {
        auto spec = workload(64, 8, 3, 6);
        spec.platform = PlatformConfig::gpu(1, 1);
        auto result = Experiment(spec).run();
        const double lookups =
            result.profiler.serialByCategory("string_lookup");
        SerialModel serial{Calibration{}};
        const double cost_1r = serial.evaluate("string_lookup", lookups,
                                               PlatformConfig::gpu(1, 1));
        Table table("\nString-based variable lookup (§VIII-A)");
        table.setHeader({"quantity", "value"});
        table.addRow({"GetVariablesByFlag string scans",
                      formatSig(lookups, 4)});
        table.addRow({"modeled cost at 1 rank",
                      formatSeconds(cost_1r)});
        table.addRow({"integer-indexing alternative", "~0 (compile-time"
                      " offsets; our hot loops already use them)"});
        table.print(std::cout);
    }

    // --- Launch-overhead sensitivity ---
    {
        Table table("\nKernel-launch overhead sensitivity (B8 GPU 1R)");
        table.setHeader(
            {"launch overhead", "kernel time (s)", "FOM"});
        auto spec = workload(64, 8, 3, 6);
        auto result = Experiment(spec).run(); // workload artifacts
        for (double overhead_us : {2.0, 6.0, 12.0}) {
            Calibration cal;
            cal.gpu.launchOverhead = overhead_us * 1e-6;
            ExecutionModel model(cal);
            RunArtifacts artifacts;
            artifacts.profiler = &result.profiler;
            artifacts.ncycles =
                static_cast<std::int64_t>(result.history.size());
            artifacts.zoneCycles = result.zoneCycles;
            artifacts.kokkosBytes = result.kokkosBytes;
            const auto report =
                model.evaluate(artifacts, PlatformConfig::gpu(1, 1));
            table.addRow({formatFixed(overhead_us, 0) + " us",
                          formatSeconds(report.kernelTime),
                          formatSci(report.fom, 2)});
        }
        table.addNote("small blocks multiply launches; per-launch "
                      "overhead directly erodes small-block GPU FOM");
        table.print(std::cout);
    }
    return 0;
}
