/**
 * @file micro_kernels.cpp
 * google-benchmark microbenchmarks of the numerical and structural
 * hot paths: WENO5/PLM reconstruction, the HLL solver, RK2 weighted
 * sums, ghost pack/unpack, Morton keys, tree neighbor walks and
 * buffer-cache rebuilds.
 */
#include <benchmark/benchmark.h>

#include "comm/boundary_buffers.hpp"
#include "comm/ghost_exchange.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "mesh/mesh.hpp"
#include "pkg/burgers_package.hpp"
#include "solver/reconstruct.hpp"
#include "solver/riemann.hpp"
#include "solver/rk2.hpp"

namespace {

using namespace vibe;

void
BM_Weno5Face(benchmark::State& state)
{
    double a = 1.0, b = 1.1, c = 1.3, d = 1.2, e = 0.9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(weno5Face(a, b, c, d, e));
        a += 1e-9; // defeat constant folding
    }
}
BENCHMARK(BM_Weno5Face);

void
BM_PlmFace(benchmark::State& state)
{
    double a = 1.0, b = 1.1, c = 1.3;
    for (auto _ : state) {
        benchmark::DoNotOptimize(plmFace(a, b, c));
        a += 1e-9;
    }
}
BENCHMARK(BM_PlmFace);

void
BM_HllFlux(benchmark::State& state)
{
    const int ncomp = static_cast<int>(state.range(0));
    std::vector<double> ul(ncomp, 0.5), ur(ncomp, -0.2), f(ncomp);
    for (auto _ : state) {
        hllFlux(ul.data(), ur.data(), 0, ncomp, f.data());
        benchmark::DoNotOptimize(f.data());
        ul[0] += 1e-9;
    }
    state.SetItemsProcessed(state.iterations() * ncomp);
}
BENCHMARK(BM_HllFlux)->Arg(4)->Arg(11);

void
BM_MortonKey(benchmark::State& state)
{
    LogicalLocation loc{3, 5, 2, 7};
    for (auto _ : state) {
        benchmark::DoNotOptimize(loc.mortonKey(6));
        loc.lx1 = (loc.lx1 + 1) & 0x3f;
    }
}
BENCHMARK(BM_MortonKey);

/** One full CalculateFluxes sweep over a block (per block size). */
void
BM_CalculateFluxesBlock(benchmark::State& state)
{
    const int block = static_cast<int>(state.range(0));
    KernelProfiler profiler;
    MemoryTracker tracker;
    auto registry = makeBurgersRegistry(8);
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = block;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = block;
    config.amrLevels = 1;
    Mesh mesh(config, registry, ctx);
    BurgersPackage package{BurgersConfig{}};
    package.initialize(mesh, InitialCondition::Sine);
    for (auto _ : state)
        package.calculateFluxes(mesh);
    state.SetItemsProcessed(state.iterations() * block * block * block);
}
BENCHMARK(BM_CalculateFluxesBlock)->Arg(8)->Arg(16)->Arg(32);

void
BM_Rk2Stage(benchmark::State& state)
{
    KernelProfiler profiler;
    MemoryTracker tracker;
    auto registry = makeBurgersRegistry(8);
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 32;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 16;
    config.amrLevels = 1;
    Mesh mesh(config, registry, ctx);
    saveState(mesh);
    for (auto _ : state)
        stage1Update(mesh, 1e-3);
    state.SetItemsProcessed(state.iterations() * 32 * 32 * 32);
}
BENCHMARK(BM_Rk2Stage);

void
BM_GhostExchange(benchmark::State& state)
{
    const int block = static_cast<int>(state.range(0));
    KernelProfiler profiler;
    MemoryTracker tracker;
    auto registry = makeBurgersRegistry(8);
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 32;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = block;
    config.amrLevels = 1;
    Mesh mesh(config, registry, ctx);
    RankWorld world(1);
    BoundaryBufferCache cache(mesh, false);
    GhostExchange exchange(mesh, world, cache);
    BurgersPackage package{BurgersConfig{}};
    package.initialize(mesh, InitialCondition::Sine);
    for (auto _ : state)
        exchange.exchangeBounds();
    state.SetItemsProcessed(state.iterations() *
                            cache.totalWireCells());
}
BENCHMARK(BM_GhostExchange)->Arg(8)->Arg(16);

void
BM_BufferCacheRebuild(benchmark::State& state)
{
    KernelProfiler profiler;
    MemoryTracker tracker;
    auto registry = makeBurgersRegistry(8);
    ExecContext ctx(ExecMode::Count, &profiler, &tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 64;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 1;
    Mesh mesh(config, registry, ctx);
    BoundaryBufferCache cache(mesh, true);
    for (auto _ : state)
        cache.rebuild();
    state.SetItemsProcessed(state.iterations() * cache.bounds().size());
}
BENCHMARK(BM_BufferCacheRebuild);

void
BM_TreeNeighborWalk(benchmark::State& state)
{
    TreeConfig config;
    config.nbx1 = config.nbx2 = config.nbx3 = 8;
    config.maxLevel = 2;
    BlockTree tree(config);
    tree.refine({0, 0, 0, 0});
    const auto leaves = tree.leavesZOrder();
    for (auto _ : state)
        for (const auto& loc : leaves)
            benchmark::DoNotOptimize(tree.neighbors(loc));
    state.SetItemsProcessed(state.iterations() * leaves.size());
}
BENCHMARK(BM_TreeNeighborWalk);

} // namespace

BENCHMARK_MAIN();
