/**
 * @file sec8b_memory_opt.cpp
 * Reproduces §VIII-B: the auxiliary-variable memory model before and
 * after restructuring the Kokkos kernels, both as the paper's closed
 * forms (8.858 GB -> 0.138 GB for the worked example) and as a live
 * ablation of the instrumented allocator, plus the extra ranks the
 * savings buy under the OOM model.
 */
#include "bench_util.hpp"
#include "perfmodel/memory_model.hpp"

int
main()
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Sec VIII-B", "Auxiliary-memory optimization model");

    // The paper's worked example.
    Table closed("Closed-form model (nx1=8, ng=4, num_scalar=8)");
    closed.setHeader({"layout", "bytes (GB)", "paper"});
    const double before =
        MemoryModel::auxBytesUnoptimized(4096, 8, 4, 8);
    const double after =
        MemoryModel::auxBytesOptimized(1024, 8, 4, 8, 2);
    closed.addRow({"per-MeshBlock 3-D buffers (4096 blocks)",
                   formatFixed(before / 1e9, 3), "8.858 GB"});
    closed.addRow({"per-ThreadBlock 2-D slabs (1024 blocks)",
                   formatFixed(after / 1e9, 3), "0.138 GB"});
    closed.addRow({"reduction", formatRatio(before / after, 1), "~64x"});
    closed.print(std::cout);

    // Live ablation: the instrumented allocator under both layouts.
    Table live("\nLive allocator ablation (mesh 128^3, B8, L3)");
    live.setHeader({"layout", "Kokkos bytes", "recon share",
                    "GPU 12R total (GB)", "OOM ranks/GPU"});
    for (bool optimized : {false, true}) {
        auto spec = workload(128, 8, 3, 5);
        spec.optimizeAuxMemory = optimized;
        spec.platform = PlatformConfig::gpu(1, 12);
        auto result = Experiment(spec).run();
        // First rank count that OOMs under the memory model.
        int oom_ranks = -1;
        for (int r : {12, 14, 16, 20, 24, 32}) {
            auto probe = spec;
            probe.platform = PlatformConfig::gpu(1, r);
            if (Experiment(probe).run().oom()) {
                oom_ranks = r;
                break;
            }
        }
        const double recon_share =
            optimized ? 0.0
                      : MemoryModel::auxBytesUnoptimized(
                            static_cast<double>(result.finalBlocks), 8,
                            4, 8) /
                            static_cast<double>(result.kokkosBytes);
        live.addRow({optimized ? "optimized (§VIII-B)" : "baseline",
                     formatBytes(static_cast<double>(result.kokkosBytes)),
                     formatPercent(recon_share),
                     formatFixed(result.report.memory.totalGB, 1),
                     oom_ranks < 0 ? ">32" : std::to_string(oom_ranks)});
    }
    expect(live, "the restructuring frees GBs of device memory, "
                 "enabling more ranks per GPU before OOM");
    live.print(std::cout);
    return 0;
}
