/**
 * @file fig04_mesh_size.cpp
 * Reproduces Fig. 4: FOM (zone-cycles/sec) versus mesh size under
 * static scaling (MeshBlockSize 16, 3 AMR levels) for 1/4/8 GPUs with
 * matched and best rank counts, and the 96-core CPU — including the
 * OOM markers. Also prints the §IV-A growth factors (mesh 64 -> 128).
 */
#include "bench_util.hpp"

int
main()
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Fig 4", "FOM vs mesh size (B16, L3, static scaling)");

    const std::vector<int> meshes = {64, 96, 128, 160, 192, 256};
    const std::vector<int> rank_candidates = {1, 4, 8, 12};

    Table table("FOM (zone-cycle/sec) vs mesh size");
    table.setHeader({"mesh", "CPU 96R", "1 GPU 1R", "4 GPUs 4R",
                     "8 GPUs 8R", "1 GPU BestR", "4 GPUs BestR",
                     "8 GPUs BestR"});

    ExperimentResult m64_gpu, m128_gpu;
    for (int mesh : meshes) {
        const int cycles = mesh >= 192 ? 4 : 6;
        auto spec = workload(mesh, 16, 3, cycles);
        const auto cpu = run(spec, PlatformConfig::cpu(96));
        const auto g1 = run(spec, PlatformConfig::gpu(1, 1));
        const auto g4 = run(spec, PlatformConfig::gpu(4, 4));
        const auto g8 = run(spec, PlatformConfig::gpu(8, 8));
        int r1 = 0, r4 = 0, r8 = 0;
        const auto b1 = Experiment::bestRank(spec, 1, rank_candidates,
                                             &r1);
        const auto b4 = Experiment::bestRank(spec, 4, rank_candidates,
                                             &r4);
        const auto b8 = Experiment::bestRank(spec, 8, rank_candidates,
                                             &r8);
        table.addRow({std::to_string(mesh) + "^3", fomCell(cpu),
                      fomCell(g1), fomCell(g4), fomCell(g8),
                      fomCell(b1) + " (R" + std::to_string(r1) + ")",
                      fomCell(b4) + " (R" + std::to_string(r4) + ")",
                      fomCell(b8) + " (R" + std::to_string(r8) + ")"});
        if (mesh == 64)
            m64_gpu = g1;
        if (mesh == 128)
            m128_gpu = g1;
    }
    expect(table, "GPU FOM degrades with mesh size; single-GPU runs "
                  "OOM at 192^3+; CPU peaks near 128^3");
    table.print(std::cout);

    // §IV-A growth factors, mesh 64 -> 128.
    Table growth("\nSec IV-A growth factors (mesh 64 -> 128, GPU 1R)");
    growth.setHeader({"quantity", "measured growth", "paper"});
    auto ratio = [](double a, double b) { return b / a; };
    growth.addRow(
        {"communicated cells",
         formatRatio(ratio(static_cast<double>(m64_gpu.commCells),
                           static_cast<double>(m128_gpu.commCells))),
         "5.9x"});
    growth.addRow(
        {"cell updates",
         formatRatio(ratio(static_cast<double>(m64_gpu.cellUpdates),
                           static_cast<double>(m128_gpu.cellUpdates))),
         "4.5x"});
    growth.addRow({"serial time",
                   formatRatio(ratio(m64_gpu.report.serialTime,
                                     m128_gpu.report.serialTime)),
                   "5.4x"});
    growth.addRow({"GPU kernel time",
                   formatRatio(ratio(m64_gpu.report.kernelTime,
                                     m128_gpu.report.kernelTime)),
                   "2.8x"});
    growth.print(std::cout);
    return 0;
}
