/**
 * @file fig01_motivation.cpp
 * Reproduces Fig. 1: the effect of MeshBlockSize (32 vs 16) on
 * (a) processed cells, (b) end-to-end time of an H100 GPU vs the
 * 96-core Sapphire Rapids CPU, and (c) end-to-end GPU SM utilization.
 */
#include "bench_util.hpp"

int
main()
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Fig 1", "MeshBlockSize motivation (mesh 128^3, 3 levels)");

    const int cycles = 6;
    auto b32 = workload(128, 32, 3, cycles);
    auto b16 = workload(128, 16, 3, cycles);

    const auto cpu32 = run(b32, PlatformConfig::cpu(96));
    const auto cpu16 = run(b16, PlatformConfig::cpu(96));
    const auto gpu32 = run(b32, PlatformConfig::gpu(1, 1));
    const auto gpu16 = run(b16, PlatformConfig::gpu(1, 1));

    Table a("Fig 1(a): processed cells, normalized to B32");
    a.setHeader({"MeshBlockSize", "#processed cells", "norm. to B32"});
    a.addRow({"32", std::to_string(gpu32.zoneCycles), "1.00"});
    a.addRow({"16", std::to_string(gpu16.zoneCycles),
              formatFixed(static_cast<double>(gpu16.zoneCycles) /
                              gpu32.zoneCycles,
                          2)});
    expect(a, "B16 processes ~1/2.9 of the B32 cells");
    a.print(std::cout);

    Table b("\nFig 1(b): E2E time normalized to CPU @ B32");
    b.setHeader({"MeshBlockSize", "CPU 96R", "GPU 1R"});
    const double norm = cpu32.report.totalTime;
    b.addRow({"32", formatFixed(cpu32.report.totalTime / norm, 2),
              formatFixed(gpu32.report.totalTime / norm, 2)});
    b.addRow({"16", formatFixed(cpu16.report.totalTime / norm, 2),
              formatFixed(gpu16.report.totalTime / norm, 2)});
    expect(b, "at B16 the GPU matches or lags the 96-core CPU");
    b.print(std::cout);

    Table c("\nFig 1(c): GPU end-to-end SM utilization");
    c.setHeader({"MeshBlockSize", "E2E SM util"});
    c.addRow({"32", formatPercent(gpu32.report.e2eSmUtil)});
    c.addRow({"16", formatPercent(gpu16.report.e2eSmUtil)});
    expect(c, "22.7% at B32 -> 4.1% at B16");
    c.print(std::cout);
    return 0;
}
