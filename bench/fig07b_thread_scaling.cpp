/**
 * @file fig07b_thread_scaling.cpp
 * Companion to Fig. 7: intra-node thread scaling of the *numeric*
 * solver on the Fig. 7 workload (mesh 128^3, block 8, 3 levels). Where
 * fig07 models rank scaling under the platform model, this harness
 * measures real wall-clock of the WENO5/HLL/RK2 kernels dispatched on
 * a ThreadPoolSpace at exec/num_threads = 1, 2, 4, 8 and reports
 * speedup and parallel efficiency. Threaded runs produce bit-identical
 * mesh state to serial runs (see tests/test_exec_spaces.cpp), so this
 * sweep isolates execution-backend cost alone.
 *
 * Usage: fig07b_thread_scaling [mesh] [cycles]   (defaults 64, 2)
 *
 * The default downscales the mesh to 64^3 (same B8/L3 block structure
 * and per-block kernel shape) so the four-run sweep finishes in
 * minutes; pass `128 5` for the paper-fidelity sweep — a numeric
 * 128^3 L3 mesh holds tens of GB of block data and runs for tens of
 * minutes per backend.
 */
#include <chrono>
#include <cstdlib>
#include <thread>

#include "bench_util.hpp"

int
main(int argc, char** argv)
{
    using namespace vibe;
    using namespace vibe::bench;

    const int mesh = argc > 1 ? std::atoi(argv[1]) : 64;
    const int cycles = argc > 2 ? std::atoi(argv[2]) : 2;

    banner("Fig 7b",
           "ThreadPoolSpace strong scaling (numeric, mesh " +
               std::to_string(mesh) + "^3, B8, L3)");
    std::cout << "hardware concurrency: "
              << std::thread::hardware_concurrency()
              << " (speedup saturates at the physical core count)\n\n";

    Table table("Wall-clock vs exec/num_threads");
    table.setHeader({"threads", "wall (s)", "speedup", "efficiency",
                     "zone-cycles/s"});
    double serial_seconds = 0;
    for (int threads : {1, 2, 4, 8}) {
        ExperimentSpec spec = workload(mesh, 8, 3, cycles);
        spec.numeric = true;
        spec.numThreads = threads;
        spec.platform = PlatformConfig::cpu(4);

        const auto start = std::chrono::steady_clock::now();
        const ExperimentResult result = Experiment(spec).run();
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (threads == 1)
            serial_seconds = seconds;

        const double speedup = serial_seconds / seconds;
        table.addRow({std::to_string(threads), formatFixed(seconds, 2),
                      formatRatio(speedup),
                      formatPercent(speedup / threads),
                      formatSci(static_cast<double>(result.zoneCycles) /
                                    seconds,
                                2)});
    }
    table.addNote("threaded and serial runs are state-identical; only "
                  "wall-clock changes");
    expect(table, "kernel-dominated cycles scale near-linearly to the "
                  "core count; >1.5x at 4 threads on >=4 cores");
    table.print(std::cout);
    return 0;
}
