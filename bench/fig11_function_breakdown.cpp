/**
 * @file fig11_function_breakdown.cpp
 * Reproduces Fig. 11: the percentage of execution time in each
 * timestep-loop function, across GPU 1/6/8R and CPU 16/48/96R (mesh
 * 128^3, block 8, 3 levels), with the absolute totals above each bar.
 */
#include <map>

#include "bench_util.hpp"

int
main()
{
    using namespace vibe;
    using namespace vibe::bench;
    banner("Fig 11", "Per-function time breakdown (128^3, B8, L3)");

    const std::vector<PlatformConfig> configs = {
        PlatformConfig::gpu(1, 1), PlatformConfig::gpu(1, 6),
        PlatformConfig::gpu(1, 8), PlatformConfig::cpu(16),
        PlatformConfig::cpu(48),   PlatformConfig::cpu(96)};

    // Fig. 3 / Fig. 11 function inventory, in the paper's stack order.
    const std::vector<std::string> functions = {
        "UpdateMeshBlockTree", "Redistr.AndRef.MeshBlocks",
        "Refinement::Tag",     "StartReceiveBoundBufs",
        "FluxDivergence",      "FillDerived",
        "SetBounds",           "SendBoundBufs",
        "WeightedSumData",     "CalculateFluxes",
        "ReceiveBoundBufs",    "EstimateTimestep",
        "Initialise",          "other"};

    std::vector<ExperimentResult> results;
    for (const auto& platform : configs)
        results.push_back(run(workload(128, 8, 3, 5), platform));

    Table table("Share of execution time per function (%)");
    std::vector<std::string> header = {"function"};
    for (const auto& platform : configs)
        header.push_back(platform.label());
    table.setHeader(header);

    for (const auto& fn : functions) {
        std::vector<std::string> row = {fn};
        for (const auto& result : results) {
            const double share =
                result.report.phaseTotal(fn) / result.report.totalTime;
            row.push_back(formatPercent(share));
        }
        table.addRow(row);
    }
    std::vector<std::string> totals = {"TOTAL (paper-length, s)"};
    for (const auto& result : results)
        totals.push_back(formatFixed(
            result.report.totalTime * result.paperScale(), 0));
    table.addRow(totals);
    expect(table, "totals 2935/959/597/1114/400/325 s; GPU low-rank "
                  "runs dominated by Redistr.AndRef.MeshBlocks, "
                  "SendBoundBufs and SetBounds; CPU runs dominated by "
                  "CalculateFluxes/WeightedSumData at low ranks");
    table.print(std::cout);
    return 0;
}
