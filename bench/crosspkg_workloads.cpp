/**
 * @file crosspkg_workloads.cpp
 * First cross-workload comparison: the same AMR engine — ghost
 * exchange, flux correction, mid-run remesh, memory pool, per-block
 * task graphs and fused MeshBlockPack launches — driven by two
 * physics packages through the PackageRegistry seam.
 *
 * Burgers (the VIBE workload: 3 + num_scalars components, WENO5 + HLL)
 * is arithmetic-heavy per cell; linear advection (1 component, WENO5 +
 * exact upwind flux) is framework-overhead-heavy: with ~4x fewer
 * components and a trivial Riemann solution, launch dispatch, exchange
 * and remesh costs make up a much larger share of its cycle. Comparing
 * zone-cycles/s across the two therefore brackets the engine's
 * behavior across the compute-bound <-> framework-bound spectrum the
 * paper's figures sweep with block size.
 *
 * Both packages run numeric under the analytic moving-shell tagger
 * (data-independent, so both PDEs see the *identical* sequence of
 * refine/derefine events — the fairest controlled comparison, with
 * remesh, prolongation and restriction costs inside the measurement);
 * mass drift is printed as a cross-check that flux correction and
 * conservative restriction hold for each PDE through that churn.
 *
 * Usage: crosspkg_workloads [mesh] [ncycles] [--json <path>]
 *        (defaults 16, 6; `crosspkg_workloads 16 4` is the CI smoke
 *        run)
 */
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "comm/rank_world.hpp"
#include "driver/evolution_driver.hpp"
#include "driver/tagger.hpp"
#include "exec/execution_space.hpp"
#include "pkg/package_registry.hpp"

namespace {

struct RunResult
{
    double wallMs = 0;
    double zoneCyclesPerSec = 0;
    double massDriftRel = 0;
    std::size_t finalBlocks = 0;
    std::int64_t remeshEvents = 0;
};

RunResult
runWorkload(const std::string& package_name, int mesh_nx, int ncycles,
            int threads, bool pack_interior)
{
    using namespace vibe;
    using clock = std::chrono::steady_clock;

    ExecContext ctx(ExecMode::Execute, nullptr, nullptr,
                    makeExecutionSpace(threads));
    // Package-specific knobs travel through the same deck interface a
    // file would use.
    ParameterInput pin;
    pin.set("burgers", "num_scalars", "4");
    pin.set("burgers", "ic", "gaussian_blob");
    auto package =
        PackageRegistry::instance().create(package_name, pin);
    VariableRegistry registry = package->buildRegistry();

    MeshConfig mesh_config;
    mesh_config.nx1 = mesh_config.nx2 = mesh_config.nx3 = mesh_nx;
    mesh_config.blockNx1 = mesh_config.blockNx2 = mesh_config.blockNx3 =
        8;
    mesh_config.amrLevels = 2;
    mesh_config.numThreads = threads;
    mesh_config.packInterior = pack_interior;
    Mesh mesh(mesh_config, registry, ctx);
    RankWorld world(2);

    // Off-center fast shell (the pack-equivalence workload): refines
    // AND derefines within a few cycles regardless of the PDE, so the
    // remesh costs are part of every measured cycle.
    SphericalWaveTagger::Params wave;
    wave.cx = wave.cy = wave.cz = 0.28;
    wave.rMin = 0.08;
    wave.rMax = 0.35;
    wave.speed = 40.0;
    SphericalWaveTagger tagger(wave);
    DriverConfig driver_config;
    driver_config.ncycles = ncycles;
    driver_config.derefineGap = 2;
    EvolutionDriver driver(mesh, *package, world, tagger,
                           driver_config);
    driver.initialize();

    const auto start = clock::now();
    driver.run();
    const double wall_seconds =
        std::chrono::duration<double>(clock::now() - start).count();

    RunResult out;
    out.wallMs = wall_seconds * 1e3;
    out.zoneCyclesPerSec =
        wall_seconds > 0
            ? static_cast<double>(driver.zoneCycles()) / wall_seconds
            : 0.0;
    const auto& history = driver.history();
    if (!history.empty() && history.front().mass != 0.0)
        out.massDriftRel =
            std::fabs(history.back().mass - history.front().mass) /
            std::fabs(history.front().mass);
    for (const auto& stats : history)
        out.remeshEvents += stats.refined + stats.derefined;
    out.finalBlocks = mesh.numBlocks();
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace vibe;
    using namespace vibe::bench;

    const std::string json_path = extractJsonPath(argc, argv);
    JsonReport report("crosspkg_workloads");

    const int mesh_nx = argc > 1 ? std::atoi(argv[1]) : 16;
    const int ncycles = argc > 2 ? std::atoi(argv[2]) : 6;

    banner("Cross-package",
           "Burgers vs linear advection through the package seam "
           "(numeric AMR runs)");

    Table table("Same engine, two PDEs: measured throughput");
    table.setHeader({"package", "threads", "packed", "wall (ms)",
                     "zone-cyc/s", "blocks", "remesh", "|mass drift|"});
    for (const std::string& package_name : {"burgers", "advection"}) {
        for (int threads : {1, 4}) {
            for (bool packed : {false, true}) {
                const RunResult r = runWorkload(
                    package_name, mesh_nx, ncycles, threads, packed);
                table.addRow(
                    {package_name, std::to_string(threads),
                     packed ? "yes" : "no", formatFixed(r.wallMs, 1),
                     formatSci(r.zoneCyclesPerSec, 2),
                     std::to_string(r.finalBlocks),
                     std::to_string(r.remeshEvents),
                     formatSci(r.massDriftRel, 1)});
                report.add(
                    package_name + "_t" + std::to_string(threads) +
                        (packed ? "_packed" : "_per_block"),
                    {{"package", package_name},
                     {"mesh", std::to_string(mesh_nx)},
                     {"ncycles", std::to_string(ncycles)},
                     {"threads", std::to_string(threads)},
                     {"packed", packed ? "true" : "false"}},
                    r.wallMs / 1e3);
            }
        }
    }
    table.addNote("advection moves ~4x fewer bytes and ~30x fewer "
                  "flux flops per cell, so framework overheads "
                  "(launches, exchange, remesh) dominate its cycle");
    table.addNote("identical remesh sequence for both PDEs (analytic "
                  "tagger), so the ratio is a controlled workload "
                  "comparison");
    table.addNote("mass drift at round-off for both PDEs: flux "
                  "correction + conservative restriction are "
                  "package-agnostic");
    table.print(std::cout);

    report.write(json_path);
    return 0;
}
