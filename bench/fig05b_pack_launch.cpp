/**
 * @file fig05b_pack_launch.cpp
 * Fig. 5 companion: per-block versus MeshBlockPack-fused kernel
 * launches across the MeshBlockSize sweep that drives the paper's
 * small-block collapse.
 *
 * The paper's block-size sweep (fig05) shows FOM collapsing as blocks
 * shrink because fixed per-block costs — kernel launch overhead above
 * all — stop amortizing. Parthenon's MeshBlockPack answer (Grete et
 * al. 2022) batches all blocks into one launch over the packed
 * (block, k, j, i) domain. This harness measures exactly that delta:
 * the same interior sweep (WENO5 reconstruction + HLL fluxes, flux
 * divergence, RK stage update) driven one-launch-per-block versus one
 * fused launch per phase, at 1/4/8 threads.
 *
 * Per-block and packed sweeps are bitwise identical in output (see
 * tests/test_block_pack.cpp), so the ratio isolates dispatch cost:
 * per-launch thread-pool synchronization and the lost load balance
 * when a block's row count divides poorly across workers. Expect the
 * packed speedup to grow as blocks shrink and to vanish at B64 (one
 * block = one launch either way) — the pack is precisely a
 * small-block-regime fix.
 *
 * Usage: fig05b_pack_launch [max_block] [reps_scale] [--json <path>]
 *        (defaults 64, 1; `fig05b_pack_launch 16` is the CI smoke
 *        run; --json emits machine-readable results for BENCH_*.json
 *        trajectory tracking)
 */
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "driver/tagger.hpp"
#include "exec/execution_space.hpp"
#include "mesh/block_pack.hpp"
#include "pkg/burgers_package.hpp"
#include "solver/rk2.hpp"

namespace {

struct SweepPoint
{
    int block = 8;
    int mesh = 32;
    int reps = 2;
};

struct Timing
{
    double perBlockMs = 0;
    double packedMs = 0;
    std::size_t nblocks = 0;
};

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

Timing
runPoint(const SweepPoint& point, int threads)
{
    using namespace vibe;
    ExecContext ctx(ExecMode::Execute, nullptr, nullptr,
                    makeExecutionSpace(threads));
    auto registry = makeBurgersRegistry(1);

    MeshConfig mesh_config;
    mesh_config.nx1 = mesh_config.nx2 = mesh_config.nx3 = point.mesh;
    mesh_config.blockNx1 = mesh_config.blockNx2 = mesh_config.blockNx3 =
        point.block;
    // PLM needs two ghost layers, not WENO5's four: with ng=4 an 8^3
    // block is ~60% ghosts and the padding inflates every array sweep,
    // diluting the per-launch cost this harness isolates.
    mesh_config.numGhost = 2;
    mesh_config.amrLevels = 1;
    // Non-periodic: this harness times interior kernels only, so no
    // exchange runs and a single-block mesh (B = mesh) is legal.
    mesh_config.periodic = false;
    mesh_config.numThreads = threads;
    Mesh mesh(mesh_config, registry, ctx);

    BurgersConfig burgers_config;
    burgers_config.numScalars = 1;
    // PLM keeps the per-cell arithmetic light so the measurement
    // isolates launch dispatch rather than reconstruction flops (the
    // overhead this harness characterizes is per *launch*, not per
    // cell — WENO5 only dilutes it).
    burgers_config.recon = ReconMethod::Plm;
    BurgersPackage package(burgers_config);
    package.initialize(mesh, InitialCondition::Ripple);

    MeshBlockPack pack;
    pack.rebuild(mesh);
    RankWorld world(1);

    // One RK stage's full interior phase set (the kernels the packed
    // driver fuses): state save, reconstruction + fluxes, divergence,
    // weighted-sum update, derived fill, CFL min-reduction.
    const double dt = 1e-4;
    auto per_block_sweep = [&] {
        saveState(mesh);
        package.calculateFluxes(mesh);
        package.fluxDivergence(mesh);
        stage1Update(mesh, dt);
        package.fillDerived(mesh);
        package.estimateTimestep(mesh, world, dt);
    };
    auto packed_sweep = [&] {
        saveStatePack(mesh, pack);
        package.calculateFluxesPack(mesh, pack);
        package.fluxDivergencePack(mesh, pack);
        stageUpdatePack(mesh, pack, 1, dt);
        package.fillDerivedPack(mesh, pack);
        package.estimateTimestepPack(mesh, pack, world, dt);
    };

    Timing timing;
    timing.nblocks = mesh.numBlocks();

    per_block_sweep(); // warm-up (page faults, pool spin-up)
    auto start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < point.reps; ++rep)
        per_block_sweep();
    timing.perBlockMs = msSince(start) / point.reps;

    packed_sweep(); // warm-up
    start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < point.reps; ++rep)
        packed_sweep();
    timing.packedMs = msSince(start) / point.reps;
    return timing;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace vibe;
    using namespace vibe::bench;

    const std::string json_path = extractJsonPath(argc, argv);
    JsonReport report("fig05b_pack_launch");

    const int max_block = argc > 1 ? std::atoi(argv[1]) : 64;
    const int reps_scale = argc > 2 ? std::atoi(argv[2]) : 1;

    banner("Fig 5b",
           "Per-block vs MeshBlockPack-fused launches over the "
           "MeshBlockSize sweep (numeric)");
    std::cout << "hardware concurrency: "
              << std::thread::hardware_concurrency() << "\n\n";

    // Mesh sizes chosen so the small-block rows exercise many blocks
    // while the sweep stays inside a laptop/CI memory budget.
    const std::vector<SweepPoint> sweep = {
        {8, 32, 4 * reps_scale},
        {16, 32, 4 * reps_scale},
        {32, 64, 2 * reps_scale},
        {64, 64, 1 * reps_scale},
    };

    Table table("Interior sweep wall time: per-block vs packed launches");
    table.setHeader({"block", "#blocks", "threads", "per-block (ms)",
                     "packed (ms)", "speedup"});
    double b8_t4_speedup = 0;
    for (const SweepPoint& point : sweep) {
        if (point.block > max_block)
            continue;
        for (int threads : {1, 4, 8}) {
            const Timing t = runPoint(point, threads);
            const double speedup =
                t.packedMs > 0 ? t.perBlockMs / t.packedMs : 0.0;
            if (point.block == 8 && threads == 4)
                b8_t4_speedup = speedup;
            table.addRow({std::to_string(point.block) + "^3",
                          std::to_string(t.nblocks),
                          std::to_string(threads),
                          formatFixed(t.perBlockMs, 3),
                          formatFixed(t.packedMs, 3),
                          formatRatio(speedup)});
            const std::vector<std::pair<std::string, std::string>>
                config = {{"block", std::to_string(point.block)},
                          {"threads", std::to_string(threads)},
                          {"nblocks", std::to_string(t.nblocks)}};
            const std::string tag = "b" + std::to_string(point.block) +
                                    "_t" + std::to_string(threads);
            report.add(tag + "_per_block", config,
                       t.perBlockMs / 1e3);
            report.add(tag + "_packed", config, t.packedMs / 1e3);
        }
    }
    table.addNote("same arithmetic, bitwise-identical output; the "
                  "ratio isolates launch dispatch + load balance");
    table.addNote("per-block launches pay one pool synchronization "
                  "per block per pass; packed pays one per phase");
    expect(table,
           "packed speedup grows as blocks shrink (>= 1.3x at 8^3 "
           "with 4 threads) and vanishes at one block per mesh");
    table.print(std::cout);

    if (b8_t4_speedup > 0 && b8_t4_speedup < 1.3)
        std::cout << "\nWARNING: packed speedup at 8^3/4T below the "
                     "1.3x acceptance bar ("
                  << formatRatio(b8_t4_speedup) << ")\n";
    report.write(json_path);
    return 0;
}
