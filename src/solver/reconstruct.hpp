/**
 * @file reconstruct.hpp
 * Face-value reconstruction: fifth-order WENO (Jiang-Shu) and
 * slope-limited piecewise-linear (PLM), the two options Parthenon-VIBE
 * exposes (paper §II-G).
 *
 * Conventions: face `i` separates cells `i-1` and `i`. The "left" state
 * at a face is reconstructed from the upwind-left stencil, the "right"
 * state from the mirrored stencil.
 */
#pragma once

#include <string>

#include "util/array4.hpp"

namespace vibe {

/** Reconstruction scheme selector. */
enum class ReconMethod { Weno5, Plm };

/** Deck-name -> scheme ("weno5" | "plm"); fatal on anything else. */
ReconMethod reconMethodFromName(const std::string& name);

/**
 * WENO5 value at the *right* face (x_{i+1/2}) of the center cell, from
 * the 5-cell stencil (m2, m1, c, p1, p2) = cells i-2 .. i+2.
 *
 * Classic Jiang-Shu weights with epsilon = 1e-6. To obtain the state on
 * the other side of a face, call with the stencil reversed.
 */
double weno5Face(double m2, double m1, double c, double p1, double p2);

/**
 * PLM value at the right face of the center cell using a minmod-limited
 * slope over (m1, c, p1).
 */
double plmFace(double m1, double c, double p1);

/** Approximate flops of one weno5Face evaluation (cost model input). */
inline constexpr double kWeno5Flops = 62.0;
/** Approximate flops of one plmFace evaluation. */
inline constexpr double kPlmFlops = 8.0;

/**
 * Reconstruct one (n, k, j) row of left/right face states at faces
 * [fis, fie] in the direction with unit offsets (di, dj, dk). The
 * single definition of the stencil math shared by every package's
 * per-block and pack launch bodies — the paths cannot diverge
 * numerically.
 */
inline void
reconRow(const RealArray4& cons, RealArray4& rl, RealArray4& rr,
         ReconMethod recon, int n, int k, int j, int fis, int fie,
         int di, int dj, int dk)
{
    for (int i = fis; i <= fie; ++i) {
        auto c = [&](int shift) {
            return cons(n, k + shift * dk, j + shift * dj,
                        i + shift * di);
        };
        double left, right;
        if (recon == ReconMethod::Weno5) {
            left = weno5Face(c(-3), c(-2), c(-1), c(0), c(1));
            right = weno5Face(c(2), c(1), c(0), c(-1), c(-2));
        } else {
            left = plmFace(c(-2), c(-1), c(0));
            right = plmFace(c(1), c(0), c(-1));
        }
        rl(n, k, j, i) = left;
        rr(n, k, j, i) = right;
    }
}

} // namespace vibe
