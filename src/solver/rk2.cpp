#include "solver/rk2.hpp"

#include "exec/par_for.hpp"
#include "mesh/block_pack.hpp"

namespace vibe {

namespace {

/** Per-block implementation: u <- wa*u0 + wb*u + wc*dt*dudt. */
void
weightedSumBlock(Mesh& mesh, MeshBlock& block, double wa, double wb,
                 double wc, double dt)
{
    const ExecContext& ctx = mesh.ctx();
    const BlockShape s = mesh.config().blockShape();
    const int ncomp = mesh.registry().ncompConserved();
    // Per cell: ncomp fused multiply-adds over three registers.
    const KernelCosts costs{ncomp * 5.0, ncomp * 4.0 * sizeof(double)};

    recordSerialAt(ctx, "WeightedSumData", block.rank(), "string_lookup",
                   static_cast<double>(mesh.registry().all().size()));
    RealArray4& cons = block.cons();
    RealArray4& cons0 = block.cons0();
    RealArray4& dudt = block.dudt();
    parForAt(ctx, "WeightedSumData", block.rank(), "WeightedSumData",
             costs, s.ks(), s.ke(), s.js(), s.je(), s.is(), s.ie(),
             [&](int k, int j, int i) {
                 for (int n = 0; n < ncomp; ++n)
                     cons(n, k, j, i) = wa * cons0(n, k, j, i) +
                                        wb * cons(n, k, j, i) +
                                        wc * dt * dudt(n, k, j, i);
             });
}

/** Whole-mesh form: one weighted sum per block. */
void
weightedSum(Mesh& mesh, double wa, double wb, double wc, double dt)
{
    for (MeshBlock* block : mesh.ownedBlocks())
        weightedSumBlock(mesh, *block, wa, wb, wc, dt);
}

/** Fused-pack form: one launch over the packed cell domain. */
void
weightedSumPack(Mesh& mesh, MeshBlockPack& pack, double wa, double wb,
                double wc, double dt)
{
    const ExecContext& ctx = mesh.ctx();
    const BlockShape s = mesh.config().blockShape();
    const int ncomp = mesh.registry().ncompConserved();
    const KernelCosts costs{ncomp * 5.0, ncomp * 4.0 * sizeof(double)};
    const int nb = pack.numBlocks();

    const double lookups =
        static_cast<double>(mesh.registry().all().size());
    for (int b = 0; b < nb; ++b)
        recordSerialAt(ctx, "WeightedSumData", pack.ranks()[b],
                       "string_lookup", lookups);
    parForPack(ctx, "WeightedSumData", "WeightedSumData", costs,
               pack.ranks(), nb, 0, 0, s.ks(), s.ke(), s.js(), s.je(),
               s.is(), s.ie(), [&](int, int b, int, int k, int j) {
                   BlockPackView& v = pack.view(b);
                   RealArray4& cons = *v.cons;
                   const RealArray4& cons0 = *v.cons0;
                   const RealArray4& dudt = *v.dudt;
                   for (int i = s.is(); i <= s.ie(); ++i)
                       for (int n = 0; n < ncomp; ++n)
                           cons(n, k, j, i) = wa * cons0(n, k, j, i) +
                                              wb * cons(n, k, j, i) +
                                              wc * dt * dudt(n, k, j, i);
               });
}

} // namespace

void
saveState(Mesh& mesh)
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "WeightedSumData");
    const BlockShape s = mesh.config().blockShape();
    const int ncomp = mesh.registry().ncompConserved();
    const KernelCosts costs{0.0, ncomp * 2.0 * sizeof(double)};

    for (MeshBlock* block : mesh.ownedBlocks()) {
        ctx.setCurrentRank(block->rank());
        RealArray4& cons = block->cons();
        RealArray4& cons0 = block->cons0();
        parFor(ctx, "WeightedSumData", costs, s.ks(), s.ke(), s.js(),
               s.je(), s.is(), s.ie(), [&](int k, int j, int i) {
                   for (int n = 0; n < ncomp; ++n)
                       cons0(n, k, j, i) = cons(n, k, j, i);
               });
    }
}

void
stage1Update(Mesh& mesh, double dt)
{
    weightedSum(mesh, 1.0, 0.0, 1.0, dt);
}

void
stage2Update(Mesh& mesh, double dt)
{
    weightedSum(mesh, 0.5, 0.5, 0.5, dt);
}

void
stageUpdateBlock(Mesh& mesh, MeshBlock& block, int stage, double dt)
{
    if (stage == 1)
        weightedSumBlock(mesh, block, 1.0, 0.0, 1.0, dt);
    else
        weightedSumBlock(mesh, block, 0.5, 0.5, 0.5, dt);
}

void
saveStatePack(Mesh& mesh, MeshBlockPack& pack)
{
    const ExecContext& ctx = mesh.ctx();
    const BlockShape s = mesh.config().blockShape();
    const int ncomp = mesh.registry().ncompConserved();
    const KernelCosts costs{0.0, ncomp * 2.0 * sizeof(double)};

    parForPack(ctx, "WeightedSumData", "WeightedSumData", costs,
               pack.ranks(), pack.numBlocks(), 0, 0, s.ks(), s.ke(),
               s.js(), s.je(), s.is(), s.ie(),
               [&](int, int b, int, int k, int j) {
                   BlockPackView& v = pack.view(b);
                   const RealArray4& cons = *v.cons;
                   RealArray4& cons0 = *v.cons0;
                   for (int i = s.is(); i <= s.ie(); ++i)
                       for (int n = 0; n < ncomp; ++n)
                           cons0(n, k, j, i) = cons(n, k, j, i);
               });
}

void
stageUpdatePack(Mesh& mesh, MeshBlockPack& pack, int stage, double dt)
{
    if (stage == 1)
        weightedSumPack(mesh, pack, 1.0, 0.0, 1.0, dt);
    else
        weightedSumPack(mesh, pack, 0.5, 0.5, 0.5, dt);
}

} // namespace vibe
