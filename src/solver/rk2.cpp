#include "solver/rk2.hpp"

#include "exec/par_for.hpp"

namespace vibe {

namespace {

/** Per-block implementation: u <- wa*u0 + wb*u + wc*dt*dudt. */
void
weightedSumBlock(Mesh& mesh, MeshBlock& block, double wa, double wb,
                 double wc, double dt)
{
    const ExecContext& ctx = mesh.ctx();
    const BlockShape s = mesh.config().blockShape();
    const int ncomp = mesh.registry().ncompConserved();
    // Per cell: ncomp fused multiply-adds over three registers.
    const KernelCosts costs{ncomp * 5.0, ncomp * 4.0 * sizeof(double)};

    recordSerialAt(ctx, "WeightedSumData", block.rank(), "string_lookup",
                   static_cast<double>(mesh.registry().all().size()));
    RealArray4& cons = block.cons();
    RealArray4& cons0 = block.cons0();
    RealArray4& dudt = block.dudt();
    parForAt(ctx, "WeightedSumData", block.rank(), "WeightedSumData",
             costs, s.ks(), s.ke(), s.js(), s.je(), s.is(), s.ie(),
             [&](int k, int j, int i) {
                 for (int n = 0; n < ncomp; ++n)
                     cons(n, k, j, i) = wa * cons0(n, k, j, i) +
                                        wb * cons(n, k, j, i) +
                                        wc * dt * dudt(n, k, j, i);
             });
}

/** Whole-mesh form: one weighted sum per block. */
void
weightedSum(Mesh& mesh, double wa, double wb, double wc, double dt)
{
    for (const auto& block : mesh.blocks())
        weightedSumBlock(mesh, *block, wa, wb, wc, dt);
}

} // namespace

void
saveState(Mesh& mesh)
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "WeightedSumData");
    const BlockShape s = mesh.config().blockShape();
    const int ncomp = mesh.registry().ncompConserved();
    const KernelCosts costs{0.0, ncomp * 2.0 * sizeof(double)};

    for (const auto& block : mesh.blocks()) {
        ctx.setCurrentRank(block->rank());
        RealArray4& cons = block->cons();
        RealArray4& cons0 = block->cons0();
        parFor(ctx, "WeightedSumData", costs, s.ks(), s.ke(), s.js(),
               s.je(), s.is(), s.ie(), [&](int k, int j, int i) {
                   for (int n = 0; n < ncomp; ++n)
                       cons0(n, k, j, i) = cons(n, k, j, i);
               });
    }
}

void
stage1Update(Mesh& mesh, double dt)
{
    weightedSum(mesh, 1.0, 0.0, 1.0, dt);
}

void
stage2Update(Mesh& mesh, double dt)
{
    weightedSum(mesh, 0.5, 0.5, 0.5, dt);
}

void
stageUpdateBlock(Mesh& mesh, MeshBlock& block, int stage, double dt)
{
    if (stage == 1)
        weightedSumBlock(mesh, block, 1.0, 0.0, 1.0, dt);
    else
        weightedSumBlock(mesh, block, 0.5, 0.5, 0.5, dt);
}

} // namespace vibe
