/**
 * @file riemann.hpp
 * HLL Riemann solver for the vector inviscid Burgers system (paper
 * §II-G).
 *
 * State layout: components 0..2 are the velocity vector u; components
 * 3.. are passive scalars q. Physical flux in direction d:
 *   F_d(u_m) = 0.5 * u_d * u_m     (m = 0..2)
 *   F_d(q_s) = q_s * u_d.
 */
#pragma once

#include <algorithm>

namespace vibe {

/** Physical Burgers flux of component m in the direction whose
 *  velocity component is `vel`. */
inline double
burgersFlux(double vel, double value, bool is_velocity)
{
    return is_velocity ? 0.5 * vel * value : vel * value;
}

/**
 * HLL flux across one face.
 *
 * @param ul,ur   Left/right states (ncomp entries each).
 * @param dvel    Index of the face-normal velocity component (0..2).
 * @param ncomp   Total components (3 velocities + scalars).
 * @param flux    Output (ncomp entries).
 *
 * Wave-speed bounds follow the Burgers characteristic u_d:
 * S_L = min(u_dL, u_dR, 0), S_R = max(u_dL, u_dR, 0); the solver
 * reduces to pure upwinding when both speeds share a sign.
 */
inline void
hllFlux(const double* ul, const double* ur, int dvel, int ncomp,
        double* flux)
{
    const double vl = ul[dvel];
    const double vr = ur[dvel];
    const double sl = std::min({vl, vr, 0.0});
    const double sr = std::max({vl, vr, 0.0});
    const double denom = sr - sl;

    for (int m = 0; m < ncomp; ++m) {
        const bool is_vel = m < 3;
        const double fl = burgersFlux(vl, ul[m], is_vel);
        const double fr = burgersFlux(vr, ur[m], is_vel);
        if (denom <= 0.0) {
            // Both speeds zero: stagnant interface.
            flux[m] = 0.5 * (fl + fr);
        } else {
            flux[m] =
                (sr * fl - sl * fr + sl * sr * (ur[m] - ul[m])) / denom;
        }
    }
}

/** Approximate flops of one hllFlux call per component. */
inline constexpr double kHllFlopsPerComp = 11.0;

} // namespace vibe
