/**
 * @file burgers.hpp
 * The Parthenon-VIBE physics package (paper §II-G): the 3-D vector
 * inviscid Burgers equation with passive scalars and the derived
 * kinetic-energy-like quantity
 *
 *   du/dt + div(0.5 u u) = 0,
 *   dq_i/dt + div(q_i u) = 0,
 *   d = 0.5 q_0 u.u,
 *
 * discretized with a Godunov finite-volume scheme: WENO5 or PLM
 * reconstruction, HLL fluxes and (driver-side) RK2 time integration.
 */
#pragma once

#include <string>

#include "comm/rank_world.hpp"
#include "mesh/mesh.hpp"
#include "solver/reconstruct.hpp"
#include "util/parameter_input.hpp"

namespace vibe {

class MeshBlockPack;

/** Physics/numerics parameters for the Burgers package. */
struct BurgersConfig
{
    int numScalars = 8;     ///< Passive scalars (paper §VIII-B example).
    double cfl = 0.4;       ///< CFL safety factor.
    ReconMethod recon = ReconMethod::Weno5;
    /** Refine when the in-block index-space gradient exceeds this. */
    double refineTol = 0.08;
    /** Derefine when the gradient falls below this. */
    double derefineTol = 0.02;

    static BurgersConfig fromParams(const ParameterInput& pin);
};

/** Initial conditions offered by the package. */
enum class InitialCondition
{
    GaussianBlob, ///< Compact velocity/scalar pulse (forms shocks).
    Sine,         ///< Smooth periodic field (convergence studies).
    Ripple,       ///< Expanding spherical ripple (the §II-C analogy).
};

InitialCondition initialConditionFromName(const std::string& name);

/**
 * Stateless operator collection over a Mesh. All per-cycle mutable
 * state lives in the MeshBlocks; the package holds configuration only.
 */
class BurgersPackage
{
  public:
    explicit BurgersPackage(const BurgersConfig& config)
        : config_(config)
    {
    }

    const BurgersConfig& config() const { return config_; }

    /** Set initial conditions on every block (numeric mode only). */
    void initialize(Mesh& mesh, InitialCondition ic) const;

    /** Set initial conditions on one block. */
    void initializeBlock(const ExecContext& ctx, MeshBlock& block,
                         InitialCondition ic) const;

    /**
     * WENO5/PLM reconstruction + HLL fluxes on every block
     * (kernel "CalculateFluxes").
     */
    void calculateFluxes(Mesh& mesh) const;

    /**
     * Reconstruction + fluxes for one block (task-graph node). Reads
     * only the block's own data, so distinct blocks may run
     * concurrently — unless the mesh shares reconstruction scratch
     * (optimizeAuxMemory), in which case the driver serializes these
     * tasks.
     */
    void calculateFluxesBlock(Mesh& mesh, MeshBlock& block) const;

    /**
     * Fused-pack reconstruction + fluxes: one hierarchical launch over
     * the packed (block, n, k, j) face domain per direction instead of
     * one launch per block. Bitwise identical to the per-block path on
     * every backend. With the §VIII-B shared recon scratch the fused
     * launch would race across blocks, so it falls back to the serial
     * per-block loop (matching the graph driver's serialization).
     */
    void calculateFluxesPack(Mesh& mesh, MeshBlockPack& pack) const;

    /** dudt = -div(flux) on every block (kernel "FluxDivergence"). */
    void fluxDivergence(Mesh& mesh) const;

    /** Flux divergence for one block (task-graph node). */
    void fluxDivergenceBlock(Mesh& mesh, MeshBlock& block) const;

    /** Fused-pack flux divergence over all blocks (one launch). */
    void fluxDivergencePack(Mesh& mesh, MeshBlockPack& pack) const;

    /** d = 0.5 q0 u.u (kernel "CalculateDerived"). */
    void fillDerived(Mesh& mesh) const;

    /** Fused-pack derived fill over all blocks (one launch). */
    void fillDerivedPack(Mesh& mesh, MeshBlockPack& pack) const;

    /**
     * CFL timestep: local min reduction (kernel "EstTimeMesh") followed
     * by a rank AllReduce. In counting mode returns `fallback_dt`.
     */
    double estimateTimestep(Mesh& mesh, RankWorld& world,
                            double fallback_dt) const;

    /**
     * Fused-pack CFL timestep: one chunk-ordered min reduction over
     * the packed cell domain (exact under any chunking, so the dt is
     * bit-identical to the per-block reduction sequence).
     */
    double estimateTimestepPack(Mesh& mesh, MeshBlockPack& pack,
                                RankWorld& world,
                                double fallback_dt) const;

    /**
     * History reduction: total q0 mass (kernel "MassHistory") plus an
     * AllReduce; the per-cycle history output VIBE performs.
     */
    double massHistory(Mesh& mesh, RankWorld& world) const;

    /**
     * Gradient-based refinement criterion for one block (kernel
     * "FirstDerivative"): the maximum index-space velocity jump.
     * Numeric mode only.
     */
    RefinementFlag tagBlock(const MeshBlock& block,
                            const ExecContext& ctx) const;

  private:
    BurgersConfig config_;
};

} // namespace vibe
