#include "solver/reconstruct.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace vibe {

ReconMethod
reconMethodFromName(const std::string& name)
{
    if (name == "weno5")
        return ReconMethod::Weno5;
    if (name == "plm")
        return ReconMethod::Plm;
    fatal("unknown reconstruction '", name, "'");
}

double
weno5Face(double m2, double m1, double c, double p1, double p2)
{
    // Jiang & Shu (1996): three candidate stencils, smoothness
    // indicators beta_k, ideal weights (1/10, 6/10, 3/10).
    constexpr double eps = 1e-6;
    constexpr double thirteen_twelfths = 13.0 / 12.0;

    const double b0 = thirteen_twelfths * (m2 - 2 * m1 + c) *
                          (m2 - 2 * m1 + c) +
                      0.25 * (m2 - 4 * m1 + 3 * c) * (m2 - 4 * m1 + 3 * c);
    const double b1 = thirteen_twelfths * (m1 - 2 * c + p1) *
                          (m1 - 2 * c + p1) +
                      0.25 * (m1 - p1) * (m1 - p1);
    const double b2 = thirteen_twelfths * (c - 2 * p1 + p2) *
                          (c - 2 * p1 + p2) +
                      0.25 * (3 * c - 4 * p1 + p2) * (3 * c - 4 * p1 + p2);

    const double a0 = 0.1 / ((eps + b0) * (eps + b0));
    const double a1 = 0.6 / ((eps + b1) * (eps + b1));
    const double a2 = 0.3 / ((eps + b2) * (eps + b2));
    const double inv_sum = 1.0 / (a0 + a1 + a2);

    const double s0 = (2 * m2 - 7 * m1 + 11 * c) / 6.0;
    const double s1 = (-m1 + 5 * c + 2 * p1) / 6.0;
    const double s2 = (2 * c + 5 * p1 - p2) / 6.0;

    return (a0 * s0 + a1 * s1 + a2 * s2) * inv_sum;
}

double
plmFace(double m1, double c, double p1)
{
    const double dp = p1 - c;
    const double dm = c - m1;
    double slope = 0.0;
    if (dp * dm > 0.0)
        slope = std::fabs(dp) < std::fabs(dm) ? dp : dm;
    return c + 0.5 * slope;
}

} // namespace vibe
