/**
 * @file rk2.hpp
 * Second-order Runge-Kutta (Heun) stages over a Mesh.
 *
 * Parthenon's integrator expresses both the start-of-step copy and the
 * stage updates as weighted sums of registers; all three appear on the
 * GPU as the "WeightedSumData" kernel (paper Table III), and the
 * enclosing phase in the Fig. 11 breakdown carries the same name.
 *
 *   stage 1:  u  <- u0 + dt * L(u0)
 *   stage 2:  u  <- 1/2 u0 + 1/2 u + 1/2 dt * L(u)
 */
#pragma once

#include "mesh/mesh.hpp"

namespace vibe {

/** Copy the current state into the step-start register (u0 <- u). */
void saveState(Mesh& mesh);

/** First RK2 stage: u <- u0 + dt * dudt. */
void stage1Update(Mesh& mesh, double dt);

/** Second RK2 stage: u <- 0.5 u0 + 0.5 u + 0.5 dt * dudt. */
void stage2Update(Mesh& mesh, double dt);

/**
 * RK2 stage update (1 or 2) for one block — the task-graph node form.
 * Touches only the block's own registers, so distinct blocks may run
 * concurrently.
 */
void stageUpdateBlock(Mesh& mesh, MeshBlock& block, int stage,
                      double dt);

class MeshBlockPack;

/** Fused-pack u0 <- u copy over all blocks (one launch). */
void saveStatePack(Mesh& mesh, MeshBlockPack& pack);

/** Fused-pack RK2 stage update over all blocks (one launch). */
void stageUpdatePack(Mesh& mesh, MeshBlockPack& pack, int stage,
                     double dt);

} // namespace vibe
