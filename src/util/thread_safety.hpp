/**
 * @file thread_safety.hpp
 * Capability-annotated synchronization primitives.
 *
 * The concurrent core (RankWorld mailboxes and rendezvous collectives,
 * the task-graph executor, the thread-pool launch slot, instrumentation
 * merge paths) encodes its lock discipline in Clang Thread Safety
 * Analysis annotations: shared members are declared `VIBE_GUARDED_BY`
 * their mutex, functions that expect a lock held say `VIBE_REQUIRES`,
 * and the wrappers below carry the acquire/release contracts. Under
 * `clang++ -Wthread-safety` (the CI `thread-safety` job builds with
 * `-Werror`) a lock-discipline violation is a build failure; under GCC
 * or MSVC every macro expands to nothing and `Mutex`/`CondVar`/
 * `LockGuard`/`UniqueLock` are zero-cost veneers over their std
 * counterparts.
 *
 * Annotation style rules (enforced by convention, checked by clang):
 *
 * - Condition-variable waits are written as explicit predicate loops
 *   (`while (!ready_) cv_.wait(lock);`), never with the predicate
 *   overload: the analysis treats a predicate lambda as a separate
 *   unannotated function and would warn on every guarded member it
 *   reads.
 * - A `UniqueLock` may be manually `unlock()`ed/`lock()`ed mid-scope
 *   (the task executor does this around task bodies); the analysis
 *   tracks those transitions through the annotated methods.
 * - Members read on hot paths without their mutex (owner-thread fast
 *   paths, quiescent-point reads) must either be atomics or live
 *   outside any capability — the annotations express the locked
 *   discipline, not the epoch-based one; the sanitizer matrix covers
 *   the latter.
 */
#pragma once

#include <condition_variable>
#include <mutex>

// --- Clang Thread Safety Analysis attribute macros -----------------------
//
// The standard macro set from the clang documentation, prefixed VIBE_ to
// keep the global namespace clean. No-ops when the attributes are
// unsupported.

#if defined(__clang__) && (!defined(SWIG))
#define VIBE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VIBE_THREAD_ANNOTATION(x) // no-op
#endif

#define VIBE_CAPABILITY(x) VIBE_THREAD_ANNOTATION(capability(x))
#define VIBE_SCOPED_CAPABILITY VIBE_THREAD_ANNOTATION(scoped_lockable)
#define VIBE_GUARDED_BY(x) VIBE_THREAD_ANNOTATION(guarded_by(x))
#define VIBE_PT_GUARDED_BY(x) VIBE_THREAD_ANNOTATION(pt_guarded_by(x))
#define VIBE_ACQUIRED_BEFORE(...)                                         \
    VIBE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define VIBE_ACQUIRED_AFTER(...)                                          \
    VIBE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define VIBE_REQUIRES(...)                                                \
    VIBE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define VIBE_REQUIRES_SHARED(...)                                         \
    VIBE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define VIBE_ACQUIRE(...)                                                 \
    VIBE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VIBE_ACQUIRE_SHARED(...)                                          \
    VIBE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define VIBE_RELEASE(...)                                                 \
    VIBE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define VIBE_RELEASE_SHARED(...)                                          \
    VIBE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define VIBE_TRY_ACQUIRE(...)                                             \
    VIBE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define VIBE_EXCLUDES(...)                                                \
    VIBE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define VIBE_ASSERT_CAPABILITY(x)                                         \
    VIBE_THREAD_ANNOTATION(assert_capability(x))
#define VIBE_RETURN_CAPABILITY(x)                                         \
    VIBE_THREAD_ANNOTATION(lock_returned(x))
#define VIBE_NO_THREAD_SAFETY_ANALYSIS                                    \
    VIBE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vibe {

/** std::mutex declared as a thread-safety capability. */
class VIBE_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() VIBE_ACQUIRE() { mutex_.lock(); }
    void unlock() VIBE_RELEASE() { mutex_.unlock(); }
    bool try_lock() VIBE_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

    /** Underlying mutex, for CondVar and std interop. */
    std::mutex& native() { return mutex_; }

  private:
    std::mutex mutex_;
};

/** std::lock_guard over Mutex, visible to the analysis. */
class VIBE_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex& mutex) VIBE_ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }
    ~LockGuard() VIBE_RELEASE() { mutex_.unlock(); }

    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

  private:
    Mutex& mutex_;
};

/**
 * std::unique_lock over Mutex: a scoped capability that additionally
 * supports CondVar waits and manual unlock()/lock() transitions. Always
 * constructed locked; must be locked again before destruction if
 * manually unlocked (the analysis enforces balanced transitions, and
 * the destructor releases unconditionally).
 */
class VIBE_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex& mutex) VIBE_ACQUIRE(mutex)
        : lock_(mutex.native())
    {
    }
    ~UniqueLock() VIBE_RELEASE() = default;

    UniqueLock(const UniqueLock&) = delete;
    UniqueLock& operator=(const UniqueLock&) = delete;

    void unlock() VIBE_RELEASE() { lock_.unlock(); }
    void lock() VIBE_ACQUIRE() { lock_.lock(); }

    /** Underlying lock handle (CondVar::wait plumbing). */
    std::unique_lock<std::mutex>& native() { return lock_; }

  private:
    std::unique_lock<std::mutex> lock_;
};

/**
 * Condition variable paired with Mutex/UniqueLock.
 *
 * wait() atomically releases and reacquires the lock, so from the
 * analysis' point of view the capability is held across the call —
 * exactly the guarantee guarded-member reads in a predicate loop need.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void wait(UniqueLock& lock) { cv_.wait(lock.native()); }

    template <typename Rep, typename Period>
    std::cv_status wait_for(UniqueLock& lock,
                            const std::chrono::duration<Rep, Period>& d)
    {
        return cv_.wait_for(lock.native(), d);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace vibe
