/**
 * @file table.hpp
 * ASCII table emitter used by the benchmark harness to print the rows and
 * series of every paper figure/table in a uniform, diffable format.
 */
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vibe {

/** Column-aligned ASCII table with an optional title and footnotes. */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Set the header row. Must be called before adding rows. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Append a footnote line printed under the table. */
    void addNote(std::string note);

    /** Render the table to `os`. */
    void print(std::ostream& os) const;

    /** Render the table as comma-separated values (no title/notes). */
    void printCsv(std::ostream& os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> notes_;
};

/** Format a double with `digits` significant digits. */
std::string formatSig(double value, int digits = 3);

/** Format a double in fixed notation with `decimals` decimal places. */
std::string formatFixed(double value, int decimals = 2);

/** Format a double in scientific notation, e.g. "2.9e+07". */
std::string formatSci(double value, int decimals = 2);

/** Format a byte count with binary units, e.g. "75.5 GB". */
std::string formatBytes(double bytes);

/** Format a duration in seconds with adaptive units, e.g. "257.2 s". */
std::string formatSeconds(double seconds);

/** Format a ratio as a multiplier, e.g. "2.9x". */
std::string formatRatio(double ratio, int decimals = 2);

/** Format a fraction in [0,1] as a percentage, e.g. "22.7%". */
std::string formatPercent(double fraction, int decimals = 1);

} // namespace vibe
