/**
 * @file array4.hpp
 * Owning dense 4-D array (variable, k, j, i) used for MeshBlock data.
 *
 * Mirrors the layout Parthenon/Kokkos use for cell-centered variables:
 * the innermost (`i`) index is contiguous, matching the vectorization
 * and coalescing assumptions of the performance model. A lightweight
 * non-owning 3-D slice is provided for per-variable access.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hpp"

namespace vibe {

/** Non-owning 3-D view into one variable of an Array4. */
template <typename T>
class Slice3
{
  public:
    Slice3(T* data, int nk, int nj, int ni)
        : data_(data), nk_(nk), nj_(nj), ni_(ni)
    {
    }

    T& operator()(int k, int j, int i)
    {
        return data_[(static_cast<std::size_t>(k) * nj_ + j) * ni_ + i];
    }
    const T& operator()(int k, int j, int i) const
    {
        return data_[(static_cast<std::size_t>(k) * nj_ + j) * ni_ + i];
    }

    int nk() const { return nk_; }
    int nj() const { return nj_; }
    int ni() const { return ni_; }
    T* data() { return data_; }
    const T* data() const { return data_; }
    std::size_t size() const
    {
        return static_cast<std::size_t>(nk_) * nj_ * ni_;
    }

  private:
    T* data_;
    int nk_, nj_, ni_;
};

/**
 * Owning contiguous 4-D array indexed (n, k, j, i).
 *
 * `n` is the variable/component index; (k, j, i) are cell indices
 * including ghosts. Storage is zero-initialized by the sizing
 * constructor; the storage-adopting constructor initializes at most
 * once (zeroing is a single `assign` pass over already-reserved
 * memory, never construct-then-fill), which is what lets a memory
 * pool recycle buffers without redundant clearing.
 */
template <typename T>
class Array4
{
  public:
    Array4() : nn_(0), nk_(0), nj_(0), ni_(0) {}

    Array4(int nn, int nk, int nj, int ni)
        : nn_(nn), nk_(nk), nj_(nj), ni_(ni),
          data_(static_cast<std::size_t>(nn) * nk * nj * ni, T{})
    {
        require(nn >= 0 && nk >= 0 && nj >= 0 && ni >= 0,
                "Array4 dimensions must be non-negative");
    }

    /**
     * Adopt (possibly recycled) backing storage instead of allocating.
     *
     * With `zero_init` the contents are cleared in one pass; without
     * it, recycled contents are kept as-is — callers use this for
     * buffers every cell of which is written before it is read
     * (fluxes, reconstruction scratch, dudt), skipping the clear
     * entirely on a pool hit. The vector is resized to the exact
     * element count; a pool-fresh vector arrives with reserved
     * capacity and zero size, so even the fresh path initializes
     * each element exactly once.
     */
    Array4(int nn, int nk, int nj, int ni, std::vector<T>&& storage,
           bool zero_init)
        : nn_(nn), nk_(nk), nj_(nj), ni_(ni), data_(std::move(storage))
    {
        require(nn >= 0 && nk >= 0 && nj >= 0 && ni >= 0,
                "Array4 dimensions must be non-negative");
        const std::size_t need =
            static_cast<std::size_t>(nn) * nk * nj * ni;
        if (zero_init)
            data_.assign(need, T{});
        else
            data_.resize(need);
    }

    /**
     * Move the backing storage out (e.g. back into a pool), leaving
     * the array empty with zero extents. The returned vector keeps its
     * size/capacity so a later adopter can skip reallocation.
     */
    std::vector<T> releaseStorage()
    {
        nn_ = nk_ = nj_ = ni_ = 0;
        return std::move(data_);
    }

    T& operator()(int n, int k, int j, int i)
    {
        return data_[index(n, k, j, i)];
    }
    const T& operator()(int n, int k, int j, int i) const
    {
        return data_[index(n, k, j, i)];
    }

    /** 3-D view of variable `n`. */
    Slice3<T> slice(int n)
    {
        return Slice3<T>(data_.data() + index(n, 0, 0, 0), nk_, nj_, ni_);
    }
    Slice3<const T> slice(int n) const
    {
        return Slice3<const T>(data_.data() + index(n, 0, 0, 0), nk_, nj_,
                               ni_);
    }

    int nvar() const { return nn_; }
    int nk() const { return nk_; }
    int nj() const { return nj_; }
    int ni() const { return ni_; }
    std::size_t size() const { return data_.size(); }
    std::size_t sizeBytes() const { return data_.size() * sizeof(T); }
    bool empty() const { return data_.empty(); }

    T* data() { return data_.data(); }
    const T* data() const { return data_.data(); }

    void fill(T value) { data_.assign(data_.size(), value); }

  private:
    std::size_t index(int n, int k, int j, int i) const
    {
        return ((static_cast<std::size_t>(n) * nk_ + k) * nj_ + j) * ni_ + i;
    }

    int nn_, nk_, nj_, ni_;
    std::vector<T> data_;
};

using RealArray4 = Array4<double>;

} // namespace vibe
