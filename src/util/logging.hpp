/**
 * @file logging.hpp
 * Error and status reporting utilities.
 *
 * Follows the gem5 convention: `fatal` for user errors that prevent the
 * simulation from continuing (bad configuration, invalid arguments),
 * `panic` for internal invariant violations (library bugs), `warn` for
 * suspicious-but-survivable conditions, and `inform` for status messages.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace vibe {

/** Exception carrying a user-facing configuration/usage error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/** Exception carrying an internal invariant violation (a library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

/** Concatenate a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Report an unrecoverable user error.
 *
 * Throws FatalError so tests can assert on misconfiguration handling; the
 * top-level drivers catch it, print the message and exit(1).
 */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    throw FatalError(detail::concat(std::forward<Args>(args)...));
}

/**
 * Report an internal invariant violation that should never happen
 * regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    throw PanicError(detail::concat(std::forward<Args>(args)...));
}

/** Print a warning to stderr. Never stops execution. */
template <typename... Args>
void
warn(Args&&... args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
}

/** Print an informational status message to stderr. */
template <typename... Args>
void
inform(Args&&... args)
{
    std::fprintf(stderr, "info: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
}

/**
 * Require a condition; panic with a message if it does not hold.
 *
 * Used for cheap always-on invariant checks at module boundaries (the
 * expensive ones live in tests).
 */
template <typename... Args>
void
require(bool condition, Args&&... args)
{
    if (!condition)
        panic(std::forward<Args>(args)...);
}

} // namespace vibe
