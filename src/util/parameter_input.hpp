/**
 * @file parameter_input.hpp
 * Athena/Parthenon-style input deck: `<block>` sections with
 * `key = value  # comment` lines.
 *
 * Example:
 * @code
 * <parthenon/mesh>
 * nx1 = 128        # cells in x
 * <parthenon/meshblock>
 * nx1 = 16
 * @endcode
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace vibe {

/** Parsed input deck with typed, defaulted accessors. */
class ParameterInput
{
  public:
    ParameterInput() = default;

    /**
     * Parse deck text; later duplicate keys override earlier ones.
     * Unknown knobs inside recognized blocks (mesh, meshblock, amr,
     * exec, driver, comm, job, and the package blocks) are fatal with
     * the offending block/knob named — a typo must not silently
     * select the default. Unrecognized block names pass through.
     */
    static ParameterInput fromString(const std::string& text);

    /** Parse a deck file on disk. Fatal if unreadable. */
    static ParameterInput fromFile(const std::string& path);

    /** Set (or override) a value programmatically. */
    void set(const std::string& block, const std::string& key,
             const std::string& value);

    bool has(const std::string& block, const std::string& key) const;

    /** Typed getters: fatal if present but unparseable. */
    int getInt(const std::string& block, const std::string& key,
               int default_value) const;
    /** 64-bit variant for cycle-valued knobs that can exceed int. */
    std::int64_t getInt64(const std::string& block, const std::string& key,
                          std::int64_t default_value) const;
    double getReal(const std::string& block, const std::string& key,
                   double default_value) const;
    bool getBool(const std::string& block, const std::string& key,
                 bool default_value) const;
    std::string getString(const std::string& block, const std::string& key,
                          const std::string& default_value) const;

    /** Required variants: fatal if the key is missing. */
    int requireInt(const std::string& block, const std::string& key) const;
    double requireReal(const std::string& block,
                       const std::string& key) const;

    const std::map<std::string, std::string>& raw() const { return values_; }

  private:
    static std::string makeKey(const std::string& block,
                               const std::string& key);
    const std::string* find(const std::string& block,
                            const std::string& key) const;

    std::map<std::string, std::string> values_;
};

} // namespace vibe
