/**
 * @file random.hpp
 * Deterministic pseudo-random number generation.
 *
 * A small xoshiro256** implementation is used instead of <random> engines
 * so results are identical across standard libraries; reproducibility of
 * the boundary-key randomization (paper §VIII-A) and of the workload
 * generators matters for the regression tests.
 */
#pragma once

#include <cstdint>

namespace vibe {

/** xoshiro256** by Blackman & Vigna (public domain reference algorithm). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit sample. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    uniformInt(std::uint64_t n)
    {
        // Lemire's nearly-divisionless bounded sampling.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        std::uint64_t l = static_cast<std::uint64_t>(m);
        if (l < n) {
            const std::uint64_t t = (0 - n) % n;
            while (l < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * n;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace vibe
