/**
 * @file stats.hpp
 * Streaming statistics accumulators and named counter sets.
 *
 * The characterization harness accumulates per-phase work counts (cells
 * updated, cells communicated, messages, bytes, ...) through these types;
 * the performance model consumes them.
 */
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vibe {

/** Welford-style streaming summary of a scalar sample set. */
class Summary
{
  public:
    void add(double x);

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    /** Sample variance (n - 1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const { return std::sqrt(variance()); }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * A named set of monotonically growing counters.
 *
 * Lookup is by string for convenience at configuration time; hot paths
 * should cache the returned reference (mirrors the paper's observation
 * about string-based variable lookup cost, which we both *model* in the
 * perf module and *avoid* in our own hot loops).
 */
class CounterSet
{
  public:
    /** Add `delta` to counter `name`, creating it at zero if absent. */
    void add(const std::string& name, double delta);

    /** Value of `name`, or 0 if it was never touched. */
    double value(const std::string& name) const;

    /** True if the counter exists. */
    bool has(const std::string& name) const;

    /** Reset every counter to zero (names are retained). */
    void reset();

    /** Merge another counter set into this one (summing values). */
    void merge(const CounterSet& other);

    const std::map<std::string, double>& all() const { return counters_; }

  private:
    std::map<std::string, double> counters_;
};

/** Fixed-width histogram over [lo, hi) with out-of-range clamping. */
class Histogram
{
  public:
    Histogram(double lo, double hi, int bins);

    void add(double x);

    int bins() const { return static_cast<int>(counts_.size()); }
    std::uint64_t binCount(int b) const { return counts_.at(b); }
    std::uint64_t total() const { return total_; }
    double binLow(int b) const { return lo_ + b * width_; }
    double binHigh(int b) const { return lo_ + (b + 1) * width_; }

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace vibe
