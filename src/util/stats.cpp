#include "util/stats.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace vibe {

void
Summary::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        min_ = max_ = x;
        mean_ = x;
        m2_ = 0.0;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
    }
}

double
Summary::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

void
CounterSet::add(const std::string& name, double delta)
{
    counters_[name] += delta;
}

double
CounterSet::value(const std::string& name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
}

bool
CounterSet::has(const std::string& name) const
{
    return counters_.count(name) != 0;
}

void
CounterSet::reset()
{
    for (auto& [name, value] : counters_)
        value = 0.0;
}

void
CounterSet::merge(const CounterSet& other)
{
    for (const auto& [name, value] : other.all())
        counters_[name] += value;
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / bins), counts_(bins, 0)
{
    require(bins > 0 && hi > lo, "Histogram requires bins > 0 and hi > lo");
}

void
Histogram::add(double x)
{
    int b = static_cast<int>((x - lo_) / width_);
    b = std::clamp(b, 0, bins() - 1);
    ++counts_[b];
    ++total_;
}

} // namespace vibe
