#include "util/parameter_input.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

#include "util/logging.hpp"

namespace vibe {

namespace {

std::string
trim(const std::string& s)
{
    auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
    auto b = std::find_if_not(s.begin(), s.end(), is_space);
    auto e = std::find_if_not(s.rbegin(), s.rend(), is_space).base();
    return b < e ? std::string(b, e) : std::string();
}

/**
 * Knobs each recognized deck block accepts. A typo inside one of
 * these blocks (`<exec> pack_interor = true`) is fatal at parse time
 * instead of silently selecting the default; unrecognized block names
 * pass through untouched so applications can carry their own
 * sections. Keep in sync with the fromParams readers (MeshConfig,
 * DriverConfig, package configs) and documented in the README.
 */
const std::map<std::string, std::set<std::string>>&
knownKnobs()
{
    static const std::map<std::string, std::set<std::string>> table = {
        {"mesh",
         {"ndim", "nx1", "nx2", "nx3", "num_ghost", "periodic", "x1min",
          "x1max", "optimize_aux_memory", "use_memory_pool"}},
        {"meshblock", {"nx1", "nx2", "nx3"}},
        {"amr",
         {"num_levels", "derefine_gap", "refine_every", "lb_every",
          "lb_cost", "lb_imbalance_trigger"}},
        {"exec",
         {"num_threads", "pack_interior", "num_ranks",
          "fused_boundaries", "fail_rank", "fail_cycle"}},
        {"driver",
         {"ncycles", "tlim", "fixed_dt", "checkpoint_every",
          "checkpoint_path", "checkpoint_async"}},
        {"comm", {"randomize_buffer_keys"}},
        {"job", {"package"}},
        {"obs", {"trace", "metrics"}},
        {"burgers",
         {"num_scalars", "cfl", "recon", "refine_tol", "derefine_tol",
          "ic"}},
        {"advection",
         {"vx", "vy", "vz", "cfl", "recon", "refine_tol",
          "derefine_tol", "ic"}},
        {"reaction",
         {"vx", "vy", "vz", "cfl", "recon", "refine_tol",
          "derefine_tol", "rate", "stiffness", "stiff_tol",
          "max_iters"}},
    };
    return table;
}

} // namespace

ParameterInput
ParameterInput::fromString(const std::string& text)
{
    ParameterInput pin;
    std::istringstream in(text);
    std::string line;
    std::string block;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '<') {
            if (line.back() != '>')
                fatal("input deck line ", lineno, ": malformed block header '",
                      line, "'");
            block = trim(line.substr(1, line.size() - 2));
            if (block.empty())
                fatal("input deck line ", lineno, ": empty block name");
            continue;
        }
        auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("input deck line ", lineno, ": expected 'key = value', got '",
                  line, "'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal("input deck line ", lineno, ": empty key");
        if (auto known = knownKnobs().find(block);
            known != knownKnobs().end() && !known->second.count(key)) {
            std::ostringstream valid;
            for (const auto& knob : known->second)
                valid << (valid.tellp() > 0 ? ", " : "") << knob;
            fatal("input deck line ", lineno, ": unknown parameter '",
                  key, "' in block <", block, "> (known knobs: ",
                  valid.str(), ")");
        }
        pin.set(block, key, value);
    }
    return pin;
}

ParameterInput
ParameterInput::fromFile(const std::string& path)
{
    // vibe-lint: allow(io-isolation) reading the user's input deck is
    // this function's whole purpose; it runs once at startup, far from
    // any hot path, and src/io is for simulation-state I/O.
    std::ifstream in(path);
    if (!in)
        fatal("cannot open input deck '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromString(buf.str());
}

void
ParameterInput::set(const std::string& block, const std::string& key,
                    const std::string& value)
{
    values_[makeKey(block, key)] = value;
}

bool
ParameterInput::has(const std::string& block, const std::string& key) const
{
    return find(block, key) != nullptr;
}

int
ParameterInput::getInt(const std::string& block, const std::string& key,
                       int default_value) const
{
    const std::string* v = find(block, key);
    if (!v)
        return default_value;
    try {
        std::size_t pos = 0;
        int result = std::stoi(*v, &pos);
        if (pos != v->size())
            throw std::invalid_argument("trailing characters");
        return result;
    } catch (const std::exception&) {
        fatal("parameter ", block, "/", key, " = '", *v,
              "' is not an integer");
    }
}

std::int64_t
ParameterInput::getInt64(const std::string& block, const std::string& key,
                         std::int64_t default_value) const
{
    const std::string* v = find(block, key);
    if (!v)
        return default_value;
    try {
        std::size_t pos = 0;
        std::int64_t result = std::stoll(*v, &pos);
        if (pos != v->size())
            throw std::invalid_argument("trailing characters");
        return result;
    } catch (const std::exception&) {
        fatal("parameter ", block, "/", key, " = '", *v,
              "' is not an integer");
    }
}

double
ParameterInput::getReal(const std::string& block, const std::string& key,
                        double default_value) const
{
    const std::string* v = find(block, key);
    if (!v)
        return default_value;
    try {
        std::size_t pos = 0;
        double result = std::stod(*v, &pos);
        if (pos != v->size())
            throw std::invalid_argument("trailing characters");
        return result;
    } catch (const std::exception&) {
        fatal("parameter ", block, "/", key, " = '", *v, "' is not a real");
    }
}

bool
ParameterInput::getBool(const std::string& block, const std::string& key,
                        bool default_value) const
{
    const std::string* v = find(block, key);
    if (!v)
        return default_value;
    std::string lower = *v;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "true" || lower == "1" || lower == "yes" || lower == "on")
        return true;
    if (lower == "false" || lower == "0" || lower == "no" || lower == "off")
        return false;
    fatal("parameter ", block, "/", key, " = '", *v, "' is not a boolean");
}

std::string
ParameterInput::getString(const std::string& block, const std::string& key,
                          const std::string& default_value) const
{
    const std::string* v = find(block, key);
    return v ? *v : default_value;
}

int
ParameterInput::requireInt(const std::string& block,
                           const std::string& key) const
{
    if (!has(block, key))
        fatal("required parameter ", block, "/", key, " is missing");
    return getInt(block, key, 0);
}

double
ParameterInput::requireReal(const std::string& block,
                            const std::string& key) const
{
    if (!has(block, key))
        fatal("required parameter ", block, "/", key, " is missing");
    return getReal(block, key, 0.0);
}

std::string
ParameterInput::makeKey(const std::string& block, const std::string& key)
{
    return block + "/" + key;
}

const std::string*
ParameterInput::find(const std::string& block, const std::string& key) const
{
    auto it = values_.find(makeKey(block, key));
    return it == values_.end() ? nullptr : &it->second;
}

} // namespace vibe
