#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/logging.hpp"

namespace vibe {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> header)
{
    require(rows_.empty(), "Table header must be set before rows are added");
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    require(header_.empty() || row.size() == header_.size(),
            "Table row width ", row.size(), " does not match header width ",
            header_.size());
    rows_.push_back(std::move(row));
}

void
Table::addNote(std::string note)
{
    notes_.push_back(std::move(note));
}

void
Table::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    };
    widen(header_);
    for (const auto& row : rows_)
        widen(row);

    auto emit = [&](const std::vector<std::string>& row) {
        os << "| ";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& cell = c < row.size() ? row[c] : std::string();
            os << cell << std::string(widths[c] - cell.size(), ' ');
            os << (c + 1 < widths.size() ? " | " : " |\n");
        }
    };

    std::size_t total = 4;
    for (std::size_t w : widths)
        total += w + 3;

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        os << std::string(total - 3, '-') << "\n";
    }
    for (const auto& row : rows_)
        emit(row);
    for (const auto& note : notes_)
        os << "  * " << note << "\n";
}

void
Table::printCsv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 < row.size() ? "," : "");
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto& row : rows_)
        emit(row);
}

std::string
formatSig(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
    return buf;
}

std::string
formatFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatSci(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", decimals, value);
    return buf;
}

std::string
formatBytes(double bytes)
{
    static const char* units[] = {"B", "KB", "MB", "GB", "TB"};
    int u = 0;
    while (bytes >= 1024.0 && u < 4) {
        bytes /= 1024.0;
        ++u;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, units[u]);
    return buf;
}

std::string
formatSeconds(double seconds)
{
    char buf[64];
    if (seconds >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
    else if (seconds >= 1e-3)
        std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
    return buf;
}

std::string
formatRatio(double ratio, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", decimals, ratio);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

} // namespace vibe
