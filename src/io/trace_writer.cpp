/**
 * @file trace_writer.cpp
 * Chrome trace-event JSON serialization.
 */
#include "io/trace_writer.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "util/logging.hpp"

namespace vibe {

namespace {

void
appendEscaped(std::ostream& out, std::string_view text)
{
    for (char c : text) {
        switch (c) {
        case '"':
            out << "\\\"";
            break;
        case '\\':
            out << "\\\\";
            break;
        case '\n':
            out << "\\n";
            break;
        case '\t':
            out << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
                    << "0123456789abcdef"[c & 0xf];
            else
                out << c;
        }
    }
}

void
appendNumber(std::ostream& out, double value)
{
    if (!std::isfinite(value)) {
        out << "0";
        return;
    }
    std::ostringstream tmp;
    tmp.precision(15);
    tmp << value;
    out << tmp.str();
}

/** Shared event prelude: name, pid (rank), tid, ts. */
void
appendCommon(std::ostream& out, const TraceEvent& event)
{
    out << "{\"name\":\"";
    appendEscaped(out, event.nameView());
    out << "\",\"pid\":" << event.rank << ",\"tid\":" << event.tid
        << ",\"ts\":";
    appendNumber(out, event.tsUs);
}

void
appendMetadata(std::ostream& out, const char* kind, int pid, int tid,
               const std::string& label, bool& first)
{
    if (!first)
        out << ",\n";
    first = false;
    out << "{\"name\":\"" << kind << "\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"args\":{\"name\":\"";
    appendEscaped(out, label);
    out << "\"}}";
}

} // namespace

std::string
chromeTraceJson(const std::vector<TraceEvent>& events)
{
    // Collect the row structure first: every rank gets a process row,
    // every (rank, thread) pair a thread row, so an empty timeline
    // region still renders as an (idle) labeled track.
    std::set<int> ranks;
    std::set<std::pair<int, int>> rank_threads;
    for (const TraceEvent& event : events) {
        ranks.insert(event.rank);
        rank_threads.insert({event.rank, event.tid});
    }

    std::ostringstream out;
    out << "{\"traceEvents\":[\n";
    bool first = true;
    for (int rank : ranks)
        appendMetadata(out, "process_name", rank, 0,
                       "rank " + std::to_string(rank), first);
    for (const auto& [rank, tid] : rank_threads)
        appendMetadata(out, "thread_name", rank, tid,
                       "thread " + std::to_string(tid), first);

    for (const TraceEvent& event : events) {
        if (!first)
            out << ",\n";
        first = false;
        switch (event.kind) {
        case TraceEvent::Kind::Span:
            appendCommon(out, event);
            out << ",\"ph\":\"X\",\"dur\":";
            appendNumber(out, event.durUs);
            out << ",\"cat\":\"" << traceCatName(event.cat)
                << "\",\"args\":{\"cycle\":" << event.cycle;
            if (event.gid >= 0)
                out << ",\"gid\":" << event.gid;
            if (event.phaseView().size() > 0) {
                out << ",\"phase\":\"";
                appendEscaped(out, event.phaseView());
                out << "\"";
            }
            if (event.flags & TraceEvent::kPollRetry)
                out << ",\"poll_retry\":true";
            out << "}}";
            break;
        case TraceEvent::Kind::Instant:
            appendCommon(out, event);
            out << ",\"ph\":\"i\",\"s\":\"t\",\"cat\":\""
                << traceCatName(event.cat)
                << "\",\"args\":{\"cycle\":" << event.cycle;
            if (event.gid >= 0)
                out << ",\"gid\":" << event.gid;
            if (event.value != 0) {
                out << ",\"value\":";
                appendNumber(out, event.value);
            }
            out << "}}";
            break;
        case TraceEvent::Kind::Counter:
            appendCommon(out, event);
            out << ",\"ph\":\"C\",\"args\":{\"value\":";
            appendNumber(out, event.value);
            out << "}}";
            break;
        }
    }
    out << "\n]}\n";
    return out.str();
}

void
writeChromeTrace(const std::string& path,
                 const std::vector<TraceEvent>& events)
{
    std::ofstream out(path, std::ios::trunc);
    require(out.good(), "cannot open trace output '", path, "'");
    out << chromeTraceJson(events);
    out.flush();
    require(out.good(), "failed writing trace output '", path, "'");
}

} // namespace vibe
