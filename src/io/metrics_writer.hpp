/**
 * @file metrics_writer.hpp
 * JSONL metrics output: one self-describing JSON object per line —
 * a "cycle" record per evolution cycle (the heartbeat) and a single
 * "footer" record with run-level facts and build/config identity.
 *
 * Lives under src/io/ so the io-isolation invariant holds; producers
 * fill a MetricsRegistry (src/obs/) and never see the stream. The
 * driver writes eagerly (line-buffered with a flush per record) so a
 * killed run still leaves every completed cycle on disk — the same
 * motivation as the checkpoint writer's durability discipline.
 */
#pragma once

#include <fstream>
#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace vibe {

class MetricsWriter
{
  public:
    /** Open (truncate) the JSONL destination; fatal on failure. */
    explicit MetricsWriter(std::string path);

    /** Emit one `{"type":"cycle", ...}` heartbeat record. */
    void writeCycle(const MetricsRegistry& metrics);

    /**
     * Emit the `{"type":"footer", ...}` run record: string-valued
     * identity fields (git describe, package, ...) plus numeric run
     * totals. Call once, last.
     */
    void writeFooter(const std::map<std::string, std::string>& identity,
                     const MetricsRegistry& totals);

    /** Records written so far (cycle + footer). */
    std::int64_t records() const { return records_; }

    const std::string& path() const { return path_; }

  private:
    void writeRecord(const char* type,
                     const std::map<std::string, std::string>* strings,
                     const MetricsRegistry& values);

    std::string path_;
    std::ofstream out_;
    std::int64_t records_ = 0;
};

} // namespace vibe
