/**
 * @file checkpoint_writer.hpp
 * Durable checkpoint output, synchronous or asynchronous.
 *
 * Async mode keeps the snapshot write off the critical path: the
 * caller deposits a captured CheckpointImage and returns; a drain
 * thread encodes it and writes it to disk while the next cycle runs.
 * The deposit slot is a double buffer — one snapshot draining, at most
 * one queued — so a writer that falls behind backpressures the driver
 * instead of accumulating unbounded snapshots in memory.
 *
 * Durability: every snapshot is written to `<path>.tmp` and renamed
 * into place, so `<path>` always holds a complete, CRC-valid
 * checkpoint (the previous one until the rename lands) even if the
 * process dies mid-write — which is exactly when recovery needs it.
 */
#pragma once

#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <thread>

#include "io/checkpoint.hpp"
#include "util/thread_safety.hpp"

namespace vibe {

/** Writes checkpoint images to one durable file, async or sync. */
class CheckpointWriter
{
  public:
    /**
     * @param path  Destination file; each write replaces it atomically.
     * @param async Drain snapshots on a background thread (double
     *        buffered) instead of writing inline.
     */
    explicit CheckpointWriter(std::string path, bool async = true);

    /** Drains pending work (errors from it are swallowed with a warn). */
    ~CheckpointWriter();

    CheckpointWriter(const CheckpointWriter&) = delete;
    CheckpointWriter& operator=(const CheckpointWriter&) = delete;

    const std::string& path() const { return path_; }
    bool async() const { return async_; }

    /**
     * Accept a snapshot. Sync mode writes it before returning. Async
     * mode deposits it for the drain thread, blocking only while a
     * previously deposited snapshot is still waiting to be picked up.
     * Rethrows any error the drain thread hit on an earlier snapshot.
     */
    void write(CheckpointImage image);

    /**
     * Block until every accepted snapshot is durably on disk and stop
     * the drain thread. Rethrows the first drain error, if any.
     * Idempotent; called by the destructor (which cannot rethrow).
     */
    void finish();

    /** Snapshots durably written so far. */
    std::int64_t snapshots() const;
    /** Wall seconds spent encoding + writing (off-thread when async). */
    double drainSeconds() const;
    /** Total bytes written across all snapshots. */
    std::int64_t bytesWritten() const;

  private:
    void drainLoop();
    /** Encode + write + rename one snapshot; updates the stats. */
    void writeOne(const CheckpointImage& image);

    std::string path_;
    bool async_;

    mutable Mutex mutex_;
    CondVar cv_;
    std::optional<CheckpointImage> pending_ VIBE_GUARDED_BY(mutex_);
    bool stop_ VIBE_GUARDED_BY(mutex_) = false;
    std::exception_ptr drain_error_ VIBE_GUARDED_BY(mutex_);
    std::int64_t snapshots_ VIBE_GUARDED_BY(mutex_) = 0;
    double drain_seconds_ VIBE_GUARDED_BY(mutex_) = 0;
    std::int64_t bytes_written_ VIBE_GUARDED_BY(mutex_) = 0;

    // vibe-lint: allow(raw-thread) the drain thread is a private I/O
    // worker, not compute — routing disk writes through the execution
    // space would serialize them back onto the critical path this
    // writer exists to avoid.
    std::thread drain_thread_;
};

} // namespace vibe
