/**
 * @file metrics_writer.cpp
 * JSONL heartbeat/footer serialization.
 */
#include "io/metrics_writer.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "util/logging.hpp"

namespace vibe {

namespace {

void
appendEscaped(std::ostream& out, const std::string& text)
{
    for (char c : text) {
        switch (c) {
        case '"':
            out << "\\\"";
            break;
        case '\\':
            out << "\\\\";
            break;
        case '\n':
            out << "\\n";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out << ' ';
            else
                out << c;
        }
    }
}

void
appendNumber(std::ostream& out, double value)
{
    if (!std::isfinite(value)) {
        out << "null";
        return;
    }
    std::ostringstream tmp;
    tmp.precision(15);
    tmp << value;
    out << tmp.str();
}

} // namespace

MetricsWriter::MetricsWriter(std::string path)
    : path_(std::move(path)), out_(path_, std::ios::trunc)
{
    require(out_.good(), "cannot open metrics output '", path_, "'");
}

void
MetricsWriter::writeCycle(const MetricsRegistry& metrics)
{
    writeRecord("cycle", nullptr, metrics);
}

void
MetricsWriter::writeFooter(
    const std::map<std::string, std::string>& identity,
    const MetricsRegistry& totals)
{
    writeRecord("footer", &identity, totals);
}

void
MetricsWriter::writeRecord(
    const char* type,
    const std::map<std::string, std::string>* strings,
    const MetricsRegistry& values)
{
    out_ << "{\"type\":\"" << type << "\"";
    if (strings) {
        for (const auto& [key, value] : *strings) {
            out_ << ",\"";
            appendEscaped(out_, key);
            out_ << "\":\"";
            appendEscaped(out_, value);
            out_ << "\"";
        }
    }
    for (const auto& [key, value] : values.values()) {
        out_ << ",\"";
        appendEscaped(out_, key);
        out_ << "\":";
        appendNumber(out_, value);
    }
    out_ << "}\n";
    out_.flush();
    require(out_.good(), "failed writing metrics output '", path_, "'");
    ++records_;
}

} // namespace vibe
