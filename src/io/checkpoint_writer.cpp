/**
 * @file checkpoint_writer.cpp
 * Sync and async (double-buffered drain thread) checkpoint output.
 */
#include "io/checkpoint_writer.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <utility>

#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace vibe {

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

CheckpointWriter::CheckpointWriter(std::string path, bool async)
    : path_(std::move(path)), async_(async)
{
    require(!path_.empty(), "CheckpointWriter needs a non-empty path");
    if (async_)
        // vibe-lint: allow(raw-thread) private I/O drain worker; see
        // the member declaration for rationale.
        drain_thread_ = std::thread([this] { drainLoop(); });
}

CheckpointWriter::~CheckpointWriter()
{
    try {
        finish();
    } catch (const std::exception& e) {
        warn("checkpoint writer '", path_,
             "' failed during teardown: ", e.what());
    } catch (...) {
        warn("checkpoint writer '", path_,
             "' failed during teardown with a non-std exception");
    }
}

void
CheckpointWriter::write(CheckpointImage image)
{
    if (!async_) {
        writeOne(image);
        return;
    }
    UniqueLock lock(mutex_);
    if (drain_error_)
        std::rethrow_exception(std::exchange(drain_error_, nullptr));
    // Double buffer: one snapshot draining (inside drainLoop), at most
    // one deposited here. Wait only if the previous deposit has not
    // been picked up yet.
    while (pending_ && !stop_)
        cv_.wait(lock);
    require(!stop_, "checkpoint writer '", path_,
            "' received a snapshot after finish()");
    pending_ = std::move(image);
    cv_.notify_all();
}

void
CheckpointWriter::finish()
{
    if (async_ && drain_thread_.joinable()) {
        {
            LockGuard lock(mutex_);
            stop_ = true;
            cv_.notify_all();
        }
        drain_thread_.join();
    }
    LockGuard lock(mutex_);
    if (drain_error_)
        std::rethrow_exception(std::exchange(drain_error_, nullptr));
}

std::int64_t
CheckpointWriter::snapshots() const
{
    LockGuard lock(mutex_);
    return snapshots_;
}

double
CheckpointWriter::drainSeconds() const
{
    LockGuard lock(mutex_);
    return drain_seconds_;
}

std::int64_t
CheckpointWriter::bytesWritten() const
{
    LockGuard lock(mutex_);
    return bytes_written_;
}

void
CheckpointWriter::drainLoop()
{
    for (;;) {
        CheckpointImage image;
        {
            UniqueLock lock(mutex_);
            while (!pending_ && !stop_)
                cv_.wait(lock);
            if (!pending_ && stop_)
                return;
            image = std::move(*pending_);
            pending_.reset();
            cv_.notify_all(); // Free the deposit slot.
            if (drain_error_)
                continue; // Poisoned: drop snapshots, keep draining.
        }
        try {
            writeOne(image);
        } catch (...) {
            LockGuard lock(mutex_);
            if (!drain_error_)
                drain_error_ = std::current_exception();
        }
    }
}

void
CheckpointWriter::writeOne(const CheckpointImage& image)
{
    // In async mode this span lands on the drain thread's own trace
    // row — the timeline shows the encode+disk work running alongside
    // the driver's next cycles, which is the point of the async drain.
    TraceSpan span("CheckpointDrain", TraceCat::Io, 0, image.cycle);
    const double start = nowSeconds();
    const std::vector<std::uint8_t> bytes = encodeCheckpoint(image);
    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("checkpoint '", tmp,
                  "' cannot be opened for writing");
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out)
            fatal("checkpoint '", tmp, "' failed mid-write");
    }
    // Atomic replace: `path_` always holds a complete checkpoint.
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        fatal("checkpoint rename '", tmp, "' -> '", path_, "' failed");
    const double elapsed = nowSeconds() - start;
    LockGuard lock(mutex_);
    ++snapshots_;
    drain_seconds_ += elapsed;
    bytes_written_ += static_cast<std::int64_t>(bytes.size());
}

} // namespace vibe
