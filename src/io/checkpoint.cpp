/**
 * @file checkpoint.cpp
 * Checkpoint capture, encode/decode and validated file reading.
 */
#include "io/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <type_traits>

#include "io/crc32.hpp"
#include "comm/rank_world.hpp"
#include "mesh/mesh.hpp"
#include "util/logging.hpp"

namespace vibe {

namespace {

constexpr char kMagic[8] = {'V', 'I', 'B', 'E', 'C', 'K', 'P', 'T'};
constexpr std::size_t kPreambleSize =
    sizeof(kMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t) +
    sizeof(std::uint32_t);

/** Appends POD values to a growing byte buffer. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

    template <typename T>
    void put(T value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const std::size_t at = out_.size();
        out_.resize(at + sizeof(T));
        std::memcpy(out_.data() + at, &value, sizeof(T));
    }

    void putBytes(const void* data, std::size_t size)
    {
        const std::size_t at = out_.size();
        out_.resize(at + size);
        std::memcpy(out_.data() + at, data, size);
    }

  private:
    std::vector<std::uint8_t>& out_;
};

/** Reads POD values from a byte range, fataling on truncation. */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t* data, std::size_t size,
               const std::string& origin)
        : data_(data), size_(size), origin_(origin)
    {
    }

    template <typename T>
    T get(const char* what)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        need(sizeof(T), what);
        T value;
        std::memcpy(&value, data_ + at_, sizeof(T));
        at_ += sizeof(T);
        return value;
    }

    void getBytes(void* dst, std::size_t size, const char* what)
    {
        need(size, what);
        std::memcpy(dst, data_ + at_, size);
        at_ += size;
    }

    std::size_t remaining() const { return size_ - at_; }

  private:
    void need(std::size_t size, const char* what)
    {
        if (at_ + size > size_)
            fatal("checkpoint '", origin_, "' is truncated: reading ",
                  what, " needs ", size, " bytes at offset ", at_,
                  " but only ", size_ - at_, " of ", size_,
                  " payload bytes remain");
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t at_ = 0;
    std::string origin_;
};

std::string
hexU32(std::uint32_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

/** Printable rendering of (possibly binary) magic bytes. */
std::string
renderMagic(const char* bytes, std::size_t size)
{
    std::string out;
    for (std::size_t i = 0; i < size; ++i) {
        const unsigned char c = static_cast<unsigned char>(bytes[i]);
        if (c >= 0x20 && c < 0x7f) {
            out.push_back(static_cast<char>(c));
        } else {
            static const char* digits = "0123456789abcdef";
            out += "\\x";
            out.push_back(digits[c >> 4]);
            out.push_back(digits[c & 0xf]);
        }
    }
    return out;
}

} // namespace

CheckpointImage
captureCheckpoint(const Mesh& mesh, RankWorld& world,
                  const std::string& package_name, std::int64_t cycle,
                  double time)
{
    const MeshConfig& config = mesh.config();
    const VariableRegistry& registry = mesh.registry();

    CheckpointImage image;
    image.ndim = config.ndim;
    image.nx1 = config.nx1;
    image.nx2 = config.nx2;
    image.nx3 = config.nx3;
    image.blockNx1 = config.blockNx1;
    image.blockNx2 = config.blockNx2;
    image.blockNx3 = config.blockNx3;
    image.numGhost = config.numGhost;
    image.amrLevels = config.amrLevels;
    image.ncompConserved = registry.ncompConserved();
    image.ncompDerived = registry.ncompDerived();
    image.package = package_name;
    image.cycle = cycle;
    image.time = time;

    // Tree structure and block metadata are replicated on every rank;
    // walking all blocks here reads no Shadow storage.
    image.blocks.resize(mesh.numBlocks());
    for (std::size_t gid = 0; gid < mesh.numBlocks(); ++gid) {
        const MeshBlock& block = mesh.block(static_cast<int>(gid));
        image.blocks[gid].loc = block.loc();
        image.blocks[gid].createdCycle = block.createdCycle();
    }

    // State lives only on the owning rank. Each rank frames its owned
    // blocks as [gid, count, cost, state...] in gid order and the
    // frames are all-gathered; rank-order concatenation keeps every
    // frame intact, so scattering them back by gid rebuilds the
    // identical image on every participant regardless of the
    // decomposition. The cost estimate travels here (not in the
    // replicated metadata walk above) because only the owner's copy is
    // guaranteed current — replicas sync at cost gathers, not every
    // cycle. On a classic (modeled) world the gather returns the local
    // frames unchanged and ownedBlocks() is every block — same result,
    // no rendezvous.
    std::vector<double> local;
    for (const MeshBlock* block : mesh.ownedBlocks()) {
        require(block->hasData(), "checkpoint capture: owned block ",
                block->loc().str(), " has no materialized storage");
        const std::vector<double> state = block->serializeState();
        local.push_back(static_cast<double>(block->gid()));
        local.push_back(static_cast<double>(state.size()));
        local.push_back(block->cost());
        local.insert(local.end(), state.begin(), state.end());
    }
    const double bytes = static_cast<double>(local.size()) *
                         static_cast<double>(sizeof(double));
    const std::vector<double> gathered = world.allGatherVec<double>(
        mesh.collectiveRank(), std::move(local), bytes,
        CollAccount::Gather);

    std::size_t at = 0;
    std::size_t filled = 0;
    while (at < gathered.size()) {
        require(at + 3 <= gathered.size(),
                "checkpoint capture: malformed gathered shard frame");
        const auto gid = static_cast<std::size_t>(gathered[at]);
        const auto count = static_cast<std::size_t>(gathered[at + 1]);
        const double cost = gathered[at + 2];
        at += 3;
        require(gid < image.blocks.size(),
                "checkpoint capture: gathered gid ", gid,
                " out of range (", image.blocks.size(), " blocks)");
        require(at + count <= gathered.size(),
                "checkpoint capture: gathered frame for gid ", gid,
                " overruns the buffer");
        require(image.blocks[gid].state.empty(),
                "checkpoint capture: duplicate state for gid ", gid);
        image.blocks[gid].cost = cost;
        image.blocks[gid].state.assign(gathered.begin() + at,
                                       gathered.begin() + at + count);
        at += count;
        ++filled;
    }
    require(filled == image.blocks.size(),
            "checkpoint capture: gathered state for ", filled, " of ",
            image.blocks.size(), " blocks");
    return image;
}

std::vector<std::uint8_t>
encodeCheckpoint(const CheckpointImage& image)
{
    std::vector<std::uint8_t> payload;
    {
        ByteWriter w(payload);
        w.put<std::int32_t>(image.ndim);
        w.put<std::int32_t>(image.nx1);
        w.put<std::int32_t>(image.nx2);
        w.put<std::int32_t>(image.nx3);
        w.put<std::int32_t>(image.blockNx1);
        w.put<std::int32_t>(image.blockNx2);
        w.put<std::int32_t>(image.blockNx3);
        w.put<std::int32_t>(image.numGhost);
        w.put<std::int32_t>(image.amrLevels);
        w.put<std::int32_t>(image.ncompConserved);
        w.put<std::int32_t>(image.ncompDerived);
        w.put<std::uint32_t>(
            static_cast<std::uint32_t>(image.package.size()));
        w.putBytes(image.package.data(), image.package.size());
        w.put<std::int64_t>(image.cycle);
        w.put<double>(image.time);
        w.put<std::uint64_t>(
            static_cast<std::uint64_t>(image.blocks.size()));
        for (const CheckpointBlockRecord& record : image.blocks) {
            w.put<std::int32_t>(record.loc.level);
            w.put<std::int64_t>(record.loc.lx1);
            w.put<std::int64_t>(record.loc.lx2);
            w.put<std::int64_t>(record.loc.lx3);
            w.put<std::int64_t>(record.createdCycle);
            w.put<double>(record.cost);
            w.put<std::uint64_t>(
                static_cast<std::uint64_t>(record.state.size()));
            w.putBytes(record.state.data(),
                       record.state.size() * sizeof(double));
        }
    }

    std::vector<std::uint8_t> out;
    out.reserve(kPreambleSize + payload.size());
    ByteWriter w(out);
    w.putBytes(kMagic, sizeof(kMagic));
    w.put<std::uint32_t>(kCheckpointVersion);
    w.put<std::uint64_t>(static_cast<std::uint64_t>(payload.size()));
    w.put<std::uint32_t>(io::crc32(payload.data(), payload.size()));
    w.putBytes(payload.data(), payload.size());
    return out;
}

CheckpointImage
decodeCheckpoint(const std::vector<std::uint8_t>& bytes,
                 const std::string& origin)
{
    if (bytes.size() < kPreambleSize)
        fatal("checkpoint '", origin, "' is truncated: ", bytes.size(),
              " bytes, but the preamble alone (magic + version + size "
              "+ crc) needs ",
              kPreambleSize);

    char magic[sizeof(kMagic)];
    std::memcpy(magic, bytes.data(), sizeof(kMagic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fatal("checkpoint '", origin, "' has bad magic: expected \"",
              renderMagic(kMagic, sizeof(kMagic)), "\", found \"",
              renderMagic(magic, sizeof(kMagic)),
              "\" — not a VIBE checkpoint file");

    std::uint32_t version;
    std::uint64_t payload_size;
    std::uint32_t stored_crc;
    std::size_t at = sizeof(kMagic);
    std::memcpy(&version, bytes.data() + at, sizeof(version));
    at += sizeof(version);
    std::memcpy(&payload_size, bytes.data() + at, sizeof(payload_size));
    at += sizeof(payload_size);
    std::memcpy(&stored_crc, bytes.data() + at, sizeof(stored_crc));
    at += sizeof(stored_crc);

    if (version != kCheckpointVersion)
        fatal("checkpoint '", origin,
              "' has unsupported version: expected ", kCheckpointVersion,
              ", found ", version,
              " — rewrite the checkpoint with this build");

    if (bytes.size() - at != payload_size)
        fatal("checkpoint '", origin,
              "' is truncated: header declares a ", payload_size,
              "-byte payload but ", bytes.size() - at,
              " bytes follow the preamble");

    const std::uint32_t actual_crc =
        io::crc32(bytes.data() + at, payload_size);
    if (actual_crc != stored_crc)
        fatal("checkpoint '", origin,
              "' is corrupt: payload crc32 mismatch, expected ",
              hexU32(stored_crc), ", found ", hexU32(actual_crc));

    ByteReader r(bytes.data() + at, payload_size, origin);
    CheckpointImage image;
    image.ndim = r.get<std::int32_t>("ndim");
    image.nx1 = r.get<std::int32_t>("nx1");
    image.nx2 = r.get<std::int32_t>("nx2");
    image.nx3 = r.get<std::int32_t>("nx3");
    image.blockNx1 = r.get<std::int32_t>("blockNx1");
    image.blockNx2 = r.get<std::int32_t>("blockNx2");
    image.blockNx3 = r.get<std::int32_t>("blockNx3");
    image.numGhost = r.get<std::int32_t>("numGhost");
    image.amrLevels = r.get<std::int32_t>("amrLevels");
    image.ncompConserved = r.get<std::int32_t>("ncompConserved");
    image.ncompDerived = r.get<std::int32_t>("ncompDerived");
    const auto package_len = r.get<std::uint32_t>("package name length");
    image.package.resize(package_len);
    r.getBytes(image.package.data(), package_len, "package name");
    image.cycle = r.get<std::int64_t>("cycle");
    image.time = r.get<double>("time");
    const auto nblocks = r.get<std::uint64_t>("block count");
    image.blocks.resize(nblocks);
    for (std::uint64_t gid = 0; gid < nblocks; ++gid) {
        CheckpointBlockRecord& record = image.blocks[gid];
        record.loc.level = r.get<std::int32_t>("block level");
        record.loc.lx1 = r.get<std::int64_t>("block lx1");
        record.loc.lx2 = r.get<std::int64_t>("block lx2");
        record.loc.lx3 = r.get<std::int64_t>("block lx3");
        record.createdCycle = r.get<std::int64_t>("block createdCycle");
        record.cost = r.get<double>("block cost");
        const auto count = r.get<std::uint64_t>("block state count");
        record.state.resize(count);
        r.getBytes(record.state.data(), count * sizeof(double),
                   "block state");
    }
    if (r.remaining() != 0)
        fatal("checkpoint '", origin, "' is corrupt: ", r.remaining(),
              " trailing payload bytes after the last block record");
    return image;
}

CheckpointImage
CheckpointReader::read(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("checkpoint '", path, "' cannot be opened for reading");
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        fatal("checkpoint '", path, "' failed mid-read");
    return decodeCheckpoint(bytes, path);
}

} // namespace vibe
