/**
 * @file crc32.hpp
 * CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) over a byte
 * range. Checkpoint files carry the payload CRC in their header so a
 * truncated or bit-flipped snapshot is rejected with a precise error
 * instead of deserializing garbage into block storage.
 */
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace vibe {
namespace io {

namespace detail {

inline const std::array<std::uint32_t, 256>&
crc32Table()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace detail

/** CRC-32 of `size` bytes at `data`. */
inline std::uint32_t
crc32(const void* data, std::size_t size)
{
    const auto& table = detail::crc32Table();
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

} // namespace io
} // namespace vibe
