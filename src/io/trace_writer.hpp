/**
 * @file trace_writer.hpp
 * Chrome trace-event JSON export for the obs TraceRecorder.
 *
 * Lives under src/io/ (not src/obs/) so the io-isolation invariant
 * holds: this is the only layer that may open files. The recorder
 * collects; this writer serializes.
 */
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace vibe {

/**
 * Write a drained event stream as Chrome trace-event JSON
 * (`{"traceEvents": [...]}`), loadable by Perfetto and
 * chrome://tracing. Rows: one process per simulated rank
 * (pid = rank, named "rank N"), one thread row per recording pool
 * thread (tid as assigned by the recorder). Span events become "X"
 * (complete) events with cat/phase/cycle/gid/flags in args; instants
 * become thread-scoped "i" events; counters become "C" events.
 *
 * Fatal if the file cannot be written.
 */
void writeChromeTrace(const std::string& path,
                      const std::vector<TraceEvent>& events);

/** The serialized JSON text (for tests; writeChromeTrace emits it). */
std::string chromeTraceJson(const std::vector<TraceEvent>& events);

} // namespace vibe
