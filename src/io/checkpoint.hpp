/**
 * @file checkpoint.hpp
 * Versioned binary checkpoints of the full experiment state.
 *
 * A checkpoint captures everything a bitwise-identical continuation
 * needs: the block-tree leaf set (logical locations in Z/gid order),
 * cycle and time, per-block creation cycles, and every block's
 * conserved + derived arrays (ghosts included) via the same
 * MeshBlock::serializeState payload block migration uses. Scratch
 * (cons0/dudt/flux/recon) is rebuilt every stage and never travels;
 * dt is re-estimated at the top of every cycle; the taggers are
 * stateless given (time, cycle) — so the image is closed under restart
 * and RNG-free at checkpoint boundaries.
 *
 * Rank ownership is deliberately NOT captured: restore re-shards the
 * blocks through the PR-5 ownership/materialize/migration path, which
 * is what lets a snapshot written at R ranks resume at any rank or
 * thread count. Per-rank shard sections are gathered through the
 * RankWorld collectives in gid order, so the encoded bytes are
 * identical regardless of the writer's num_ranks/num_threads.
 *
 * On-disk layout (native endianness; single-platform format):
 *
 *   [ magic "VIBECKPT" (8) ][ version u32 ][ payload size u64 ]
 *   [ payload crc32 u32 ][ payload... ]
 *
 * The CRC covers the payload only, so any flipped byte is reported as
 * a checksum mismatch naming the expected and found values, while a
 * damaged preamble is reported as a magic/version/truncation error —
 * each naming the file.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/logical_location.hpp"
#include "util/logging.hpp"

namespace vibe {

class Mesh;
class RankWorld;

/**
 * Deterministic restore failure: the checkpoint image cannot be applied
 * to this run's configuration (package/mesh/block-shape/variable
 * mismatch, inconsistent tree, ...). Retrying the attempt with the same
 * image fails identically, so the supervised recovery loop rethrows
 * these immediately instead of burning the restart budget on them.
 */
class RestoreError : public FatalError
{
  public:
    using FatalError::FatalError;
};

/** fatal() variant for restore validation: throws RestoreError. */
template <typename... Args>
[[noreturn]] void
restoreFatal(Args&&... args)
{
    throw RestoreError(detail::concat(std::forward<Args>(args)...));
}

/** One block's slice of a checkpoint, in gid (Z-order) position. */
struct CheckpointBlockRecord
{
    LogicalLocation loc;
    std::int64_t createdCycle = 0;
    /**
     * Load-balance cost estimate (format v2+). Travels in the owner's
     * gathered frame — replicas may hold estimates that are stale
     * between cost gathers, and only the owner's is current — so a
     * restored run resumes with warm measured costs instead of
     * re-learning them. 0 in images written before v2; restore keeps
     * the block's default then.
     */
    double cost = 0;
    /** MeshBlock::serializeState payload (cons + derived, ghosts). */
    std::vector<double> state;
};

/** Decoded (or to-be-encoded) checkpoint contents. */
struct CheckpointImage
{
    // Mesh/package identity, validated against the restoring run.
    int ndim = 3;
    int nx1 = 0, nx2 = 0, nx3 = 0;
    int blockNx1 = 0, blockNx2 = 0, blockNx3 = 0;
    int numGhost = 0;
    int amrLevels = 0;
    int ncompConserved = 0;
    int ncompDerived = 0;
    std::string package;

    std::int64_t cycle = 0;
    double time = 0;

    /** Blocks in gid order (the tree's Z-order after renumbering). */
    std::vector<CheckpointBlockRecord> blocks;
};

/**
 * Checkpoint file format version this build writes and accepts.
 * v2 added the per-block load-balance cost to each block record.
 */
inline constexpr std::uint32_t kCheckpointVersion = 2;

/**
 * Capture the current experiment state as a collective: every rank
 * serializes its owned blocks, the shards are all-gathered through
 * `world`, and each participant assembles the identical gid-ordered
 * image. On a classic (non-sharded) mesh the gather is a pass-through
 * and the image is built from the local blocks directly — the encoded
 * bytes match a sharded capture of the same state exactly.
 */
CheckpointImage captureCheckpoint(const Mesh& mesh, RankWorld& world,
                                  const std::string& package_name,
                                  std::int64_t cycle, double time);

/** Encode an image into the on-disk byte layout (preamble + payload). */
std::vector<std::uint8_t> encodeCheckpoint(const CheckpointImage& image);

/**
 * Decode checkpoint bytes, validating magic, version, size and CRC.
 * `origin` names the source (file path) in every error message.
 * Throws FatalError with an actionable message on any mismatch.
 */
CheckpointImage decodeCheckpoint(const std::vector<std::uint8_t>& bytes,
                                 const std::string& origin);

/** Reads and validates checkpoint files. */
class CheckpointReader
{
  public:
    /**
     * Read and decode `path`. Rejects missing, truncated, corrupt and
     * version-mismatched files with errors naming the file, the
     * expected/found magic and version, and the expected/found CRC.
     */
    static CheckpointImage read(const std::string& path);
};

} // namespace vibe
