#include "comm/ghost_exchange.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "exec/par_for.hpp"
#include "mesh/prolong_restrict.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace vibe {

namespace {

int
rangeStart(const Region3& r, int d)
{
    return d == 0 ? r.i.lo : d == 1 ? r.j.lo : r.k.lo;
}

int
rangeCount(const Region3& r, int d)
{
    return d == 0 ? r.i.count() : d == 1 ? r.j.count() : r.k.count();
}

} // namespace

GhostExchange::GhostExchange(Mesh& mesh, RankWorld& world,
                             BoundaryBufferCache& cache)
    : mesh_(&mesh), world_(&world), cache_(&cache),
      plan_(mesh, cache, world)
{
    const MeshConfig& config = mesh.config();
    if (mesh.ctx().executing() && config.amrLevels > 1) {
        const BlockShape shape = config.blockShape();
        const int min_nx = std::min(
            {shape.nx1, shape.ndim >= 2 ? shape.nx2 : shape.nx1,
             shape.ndim >= 3 ? shape.nx3 : shape.nx1});
        if (min_nx < 2 * shape.ng)
            fatal("numeric AMR runs require MeshBlockSize >= 2*num_ghost "
                  "(got ",
                  min_nx, " < ", 2 * shape.ng,
                  "); use counting mode for smaller blocks");
        if (shape.ng % 2 != 0)
            fatal("AMR requires an even ghost count, got ", shape.ng);
    }
}

void
GhostExchange::exchangeBounds()
{
    // Monolithic (non-graph) path: initialization and direct tests.
    // In-cycle exchanges run as task graphs and get per-task spans.
    TraceSpan span("ExchangeBounds", TraceCat::Comm,
                   mesh_->collectiveRank());
    if (fused()) {
        // Monolithic callers (driver initialization, direct tests) are
        // serial points, so the lazy rebuild may happen right here.
        plan_.ensureBuilt();
        startReceiveBoundBufsFused();
        sendBoundBufsFused();
        receiveBoundBufsFused();
        setBoundsFused();
        return;
    }
    startReceiveBoundBufs();
    sendBoundBufs();
    receiveBoundBufs();
    setBounds();
}

void
GhostExchange::discardStaleDeliveries()
{
    // Classic single-driver world: any pending delivery at the top of
    // a cycle is stale garbage from an aborted cycle. With concurrent
    // rank drivers this sweep would be wrong: a neighbor rank may
    // legitimately run up to one stage ahead, and its early sends
    // queue in FIFO order until this rank's matching receive — exactly
    // MPI's eager-message semantics. The aborted cycle may have run
    // either boundary path, so both message formats are swept: every
    // per-face channel id, and every rank pair's coalesced ids
    // (constructed directly — the plan may be stale or unbuilt here).
    std::size_t stale = 0;
    for (const auto& ch : cache_->bounds())
        stale += world_->discardPending(ch.id);
    for (const auto& ch : cache_->flux())
        stale += world_->discardPending(ch.id);
    const int nranks = world_->nranks();
    for (int src = 0; src < nranks; ++src)
        for (int dst = 0; dst < nranks; ++dst) {
            stale += world_->discardPending(coalescedChannelId(
                src, dst, ChannelKind::CoalescedBounds));
            stale += world_->discardPending(coalescedChannelId(
                src, dst, ChannelKind::CoalescedFlux));
        }
    if (stale > 0)
        warn("ghost exchange discarded ", stale,
             " stale buffers left by an aborted cycle");
}

void
GhostExchange::startReceiveBoundBufs()
{
    // Per-cycle state reset lives here, at the top of the cycle, so an
    // exchange that threw mid-cycle cannot leak wire counts, pending
    // receives, or stale mailbox deliveries into the next one.
    last_wire_cells_.store(0);
    last_messages_.store(0);
    last_send_bytes_.store(0);
    if (!world_->concurrent())
        discardStaleDeliveries();
    const std::size_t expected =
        mesh_->sharded()
            ? cache_->recvChannelCountFor(mesh_->shardRank())
            : cache_->bounds().size();
    pending_receives_.store(expected);
    // Buffer preparation is pure serial host work: one item per
    // expected buffer.
    recordSerialAt(mesh_->ctx(), "StartReceiveBoundBufs",
                   mesh_->collectiveRank(), "recv_buf_prepare",
                   static_cast<double>(expected));
}

void
GhostExchange::sendBoundBufs()
{
    // Iterate senders in block order so kernel launches batch per block
    // as Parthenon's packing kernels do. A sharded replica sends only
    // from its owned shard; peers send their own.
    for (MeshBlock* block : mesh_->ownedBlocks())
        sendBlockBounds(*block);
}

void
GhostExchange::sendBlockBounds(const MeshBlock& block)
{
    const ExecContext& ctx = mesh_->ctx();
    const auto& channels = cache_->sendIndex(block.gid());
    if (channels.empty())
        return;
    double packed_values = 0;
    double innermost = 0;
    std::int64_t wire_cells = 0;
    for (int idx : channels) {
        const BoundsChannel& ch = cache_->bounds()[idx];
        packAndSend(ch);
        packed_values += static_cast<double>(ch.wireCells()) *
                         mesh_->registry().ncompConserved();
        innermost +=
            rangeCount(ch.levelDiff == 1 ? ch.recv : ch.send, 0);
        wire_cells += ch.wireCells();
    }
    last_wire_cells_.fetch_add(wire_cells);
    // One batched pack kernel per block: copies + (for fine->coarse)
    // the restriction arithmetic, both GPU-offloaded (§II-D).
    recordKernelAt(ctx, "SendBoundBufs", block.rank(), "SendBoundBufs",
                   packed_values, {1.0, 2.0 * sizeof(double)},
                   innermost / static_cast<double>(channels.size()));
    // Per-buffer metadata management is serial host work.
    recordSerialAt(ctx, "SendBoundBufs", block.rank(),
                   "bound_buf_metadata",
                   static_cast<double>(channels.size()));
}

std::size_t
GhostExchange::boundsPayloadCount(const BoundsChannel& ch) const
{
    return static_cast<std::size_t>(ch.wireCells()) *
           mesh_->registry().ncompConserved();
}

std::size_t
GhostExchange::fluxPayloadCount(const FluxChannel& ch) const
{
    return static_cast<std::size_t>(ch.wireFaces()) *
           mesh_->registry().ncompConserved();
}

void
GhostExchange::packBoundsChannel(const BoundsChannel& ch,
                                 double* out) const
{
    require(ch.sender->hasData(), "pack from a storage-less block ",
            ch.sender->loc().str(),
            " (sender not owned by this rank?)");
    const int ncomp = mesh_->registry().ncompConserved();
    const BlockShape shape = mesh_->config().blockShape();
    const int ndim = shape.ndim;
    const RealArray4& cons = ch.sender->cons();
    std::size_t idx = 0;
    if (ch.levelDiff == 1) {
        // Restrict on send: iterate the receiver's coarse target
        // region; average the covering fine cells.
        const int lo[3] = {shape.is(), shape.js(), shape.ks()};
        const double inv = 1.0 / (1 << ndim);
        for (int n = 0; n < ncomp; ++n)
            for (int K = ch.recv.k.lo; K <= ch.recv.k.hi; ++K)
                for (int J = ch.recv.j.lo; J <= ch.recv.j.hi; ++J)
                    for (int I = ch.recv.i.lo; I <= ch.recv.i.hi;
                         ++I) {
                        const int fi =
                            lo[0] + 2 * (I - lo[0]) - ch.base2[0];
                        const int fj =
                            ndim >= 2
                                ? lo[1] + 2 * (J - lo[1]) - ch.base2[1]
                                : 0;
                        const int fk =
                            ndim >= 3
                                ? lo[2] + 2 * (K - lo[2]) - ch.base2[2]
                                : 0;
                        double sum = 0.0;
                        for (int dk = 0; dk <= (ndim >= 3 ? 1 : 0);
                             ++dk)
                            for (int dj = 0; dj <= (ndim >= 2 ? 1 : 0);
                                 ++dj)
                                for (int di = 0; di <= 1; ++di)
                                    sum += cons(n, fk + dk, fj + dj,
                                                fi + di);
                        out[idx++] = sum * inv;
                    }
    } else {
        // Same level or coarse slab: straight copy of the send box.
        for (int n = 0; n < ncomp; ++n)
            for (int k = ch.send.k.lo; k <= ch.send.k.hi; ++k)
                for (int j = ch.send.j.lo; j <= ch.send.j.hi; ++j)
                    for (int i = ch.send.i.lo; i <= ch.send.i.hi; ++i)
                        out[idx++] = cons(n, k, j, i);
    }
}

void
GhostExchange::countSend(double bytes)
{
    last_messages_.fetch_add(1);
    last_send_bytes_.fetch_add(static_cast<std::int64_t>(bytes));
}

void
GhostExchange::packAndSend(const BoundsChannel& ch)
{
    const ExecContext& ctx = mesh_->ctx();
    const double bytes =
        static_cast<double>(boundsPayloadCount(ch)) * sizeof(double);

    std::vector<double> payload;
    if (ctx.executing()) {
        payload.resize(boundsPayloadCount(ch));
        packBoundsChannel(ch, payload.data());
    }
    const bool remote = ch.sender->rank() != ch.receiver->rank();
    recordSerialAt(ctx, "SendBoundBufs", ch.sender->rank(),
                   remote ? "msg_remote" : "msg_local", 1.0);
    recordSerialAt(ctx, "SendBoundBufs", ch.sender->rank(),
                   remote ? "msg_remote_bytes" : "msg_local_bytes",
                   bytes);
    countSend(bytes);
    world_->isend(ch.id, ch.sender->rank(), ch.receiver->rank(),
                  std::move(payload), bytes);
}

void
GhostExchange::receiveBoundBufs()
{
    if (mesh_->sharded()) {
        // Sharded replica: only this rank's inbound channels are ours
        // to consume, and remote senders run on their own threads, so
        // poll until every expected buffer arrived (the real code's
        // Iprobe progress loop) instead of asserting instant delivery.
        const int rank = mesh_->shardRank();
        // vibe-lint: allow(obs-isolation) peer-wait deadline bounding
        // the Iprobe progress loop, not timing instrumentation.
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration<double>(kPeerWaitSeconds);
        std::size_t expected = 0;
        for (const auto& ch : cache_->bounds()) {
            if (ch.receiver->rank() != rank)
                continue;
            ++expected;
            while (!world_->iprobe(ch.id)) {
                require(!world_->failed(),
                        "ghost exchange aborted: a peer rank failed");
                require(std::chrono::steady_clock::now() < deadline,
                        "ghost exchange timed out waiting for buffer "
                        "into ",
                        ch.receiver->loc().str(), " on rank ", rank);
                std::this_thread::yield();
            }
        }
        recordSerialAt(mesh_->ctx(), "ReceiveBoundBufs", rank,
                       "recv_poll", static_cast<double>(expected));
        return;
    }
    // Poll until every expected buffer is present, as the real code
    // nudges MPI progress with Iprobe. In the simulated world delivery
    // is immediate, so one probe per channel suffices; the counters
    // still capture the per-buffer polling cost.
    std::uint64_t outstanding = 0;
    for (const auto& ch : cache_->bounds())
        if (!world_->iprobe(ch.id))
            ++outstanding;
    require(outstanding == 0,
            "ghost exchange lost messages: ", outstanding,
            " buffers missing");
    recordSerialAt(mesh_->ctx(), "ReceiveBoundBufs", 0, "recv_poll",
                   static_cast<double>(cache_->bounds().size()));
}

bool
GhostExchange::pollBlockBounds(const MeshBlock& block)
{
    const auto& channels = cache_->recvIndex(block.gid());
    for (int idx : channels)
        if (!world_->iprobe(cache_->bounds()[idx].id))
            return false;
    // Record the polling cost once, when the block's buffers are all
    // present; per-block totals sum to the monolithic recv_poll count.
    if (!channels.empty())
        recordSerialAt(mesh_->ctx(), "ReceiveBoundBufs", block.rank(),
                       "recv_poll",
                       static_cast<double>(channels.size()));
    return true;
}

void
GhostExchange::setBounds()
{
    for (MeshBlock* block : mesh_->ownedBlocks())
        setBlockBounds(*block);
}

void
GhostExchange::setBlockBounds(MeshBlock& block)
{
    const ExecContext& ctx = mesh_->ctx();
    const auto& channels = cache_->recvIndex(block.gid());
    if (channels.empty())
        return;
    double written_values = 0;
    double innermost = 0;
    for (int idx : channels) {
        const BoundsChannel& ch = cache_->bounds()[idx];
        auto msg = world_->receive(ch.id);
        require(msg.has_value(), "missing buffer for channel into ",
                ch.receiver->loc().str());
        // No direct cross-rank memory access on the step path: when the
        // sending block's owner is another rank, the data MUST have
        // traveled through the mailbox (real payload in numeric mode),
        // and on a sharded replica the sender is a storage-less Shadow,
        // making a direct read structurally impossible.
        require(msg->src == ch.sender->rank() &&
                    msg->dst == block.rank(),
                "bounds message rank mismatch: channel ",
                ch.sender->loc().str(), " -> ", ch.receiver->loc().str(),
                " carried ", msg->src, " -> ", msg->dst, ", expected ",
                ch.sender->rank(), " -> ", block.rank());
        require(ch.sender->rank() == block.rank() ||
                    !mesh_->ctx().executing() || !msg->payload.empty(),
                "cross-rank unpack into ", block.loc().str(),
                " without a mailbox payload");
        require(!mesh_->sharded() ||
                    ch.sender->rank() == mesh_->shardRank() ||
                    !ch.sender->hasData(),
                "non-owned sender ", ch.sender->loc().str(),
                " holds data on rank ", mesh_->shardRank());
        unpack(ch, *msg);
        written_values += static_cast<double>(ch.recv.cells()) *
                          mesh_->registry().ncompConserved();
        innermost += ch.recv.i.count();
    }
    // One batched unpack kernel per block; prolongation of coarse
    // slabs happens inside (GPU-offloaded).
    recordKernelAt(ctx, "SetBounds", block.rank(), "SetBounds",
                   written_values, {1.0, 2.0 * sizeof(double)},
                   innermost / static_cast<double>(channels.size()));
    recordSerialAt(ctx, "SetBounds", block.rank(), "bound_buf_metadata",
                   static_cast<double>(channels.size()));
    pending_receives_.fetch_sub(channels.size());
}

void
GhostExchange::unpack(const BoundsChannel& ch, const Message& msg)
{
    if (!mesh_->ctx().executing())
        return;
    unpackBoundsChannel(ch, msg.payload.data(), msg.payload.size());
}

void
GhostExchange::unpackBoundsChannel(const BoundsChannel& ch,
                                   const double* payload,
                                   std::size_t count) const
{
    const int ncomp = mesh_->registry().ncompConserved();
    const BlockShape shape = mesh_->config().blockShape();
    const int ndim = shape.ndim;
    RealArray4& cons = ch.receiver->cons();

    if (ch.levelDiff >= 0) {
        // Same level or pre-restricted: straight copy into recv box.
        // One size check up front, then unchecked indexing in the
        // per-cell loop (matching the slab branch below).
        require(count ==
                    static_cast<std::size_t>(ch.recv.cells()) * ncomp,
                "bounds payload size mismatch");
        std::size_t idx = 0;
        for (int n = 0; n < ncomp; ++n)
            for (int k = ch.recv.k.lo; k <= ch.recv.k.hi; ++k)
                for (int j = ch.recv.j.lo; j <= ch.recv.j.hi; ++j)
                    for (int i = ch.recv.i.lo; i <= ch.recv.i.hi; ++i)
                        cons(n, k, j, i) = payload[idx++];
        return;
    }

    // Coarse slab -> fine ghosts: slope-limited prolongation. Slope
    // neighbors come from the slab where available; where the missing
    // neighbor lies on the *receiver's* side of the interface (the
    // innermost ghost layer), it is restricted on the fly from the
    // receiver's own fine interior — the role of Parthenon's
    // receiver-side coarse buffer. Elsewhere the slope clamps to zero.
    const int lo[3] = {shape.is(), shape.js(), shape.ks()};
    const int nx[3] = {shape.nx1, ndim >= 2 ? shape.nx2 : 1,
                       ndim >= 3 ? shape.nx3 : 1};
    const int slab_lo[3] = {rangeStart(ch.send, 0), rangeStart(ch.send, 1),
                            rangeStart(ch.send, 2)};
    const int sc[3] = {rangeCount(ch.send, 0), rangeCount(ch.send, 1),
                       rangeCount(ch.send, 2)};
    const std::size_t slab_stride_n =
        static_cast<std::size_t>(sc[2]) * sc[1] * sc[0];
    require(count == slab_stride_n * ncomp,
            "slab payload size mismatch");
    auto slab_at = [&](int n, int ck, int cj, int ci) {
        return payload[(static_cast<std::size_t>(n) * sc[2] + ck) *
                           sc[1] * sc[0] +
                       static_cast<std::size_t>(cj) * sc[0] + ci];
    };

    // Coarse value at sender-local interior-relative index c_rel[3];
    // returns false if unobtainable from slab or receiver restriction.
    auto coarse_at = [&](int n, const int c_rel[3], double* out) {
        int s_idx[3];
        bool in_slab = true;
        for (int d = 0; d < 3; ++d) {
            s_idx[d] = c_rel[d] + lo[d] - slab_lo[d];
            if (s_idx[d] < 0 || s_idx[d] >= sc[d])
                in_slab = false;
        }
        if (in_slab) {
            *out = slab_at(n, s_idx[2], s_idx[1], s_idx[0]);
            return true;
        }
        // Restrict from the receiver's own interior if the coarse cell
        // maps entirely inside it.
        int f0[3] = {0, 0, 0};
        for (int d = 0; d < ndim; ++d) {
            f0[d] = ch.base[d] + 2 * c_rel[d];
            if (f0[d] < 0 || f0[d] + 1 >= nx[d])
                return false;
        }
        double sum = 0.0;
        for (int dk = 0; dk <= (ndim >= 3 ? 1 : 0); ++dk)
            for (int dj = 0; dj <= (ndim >= 2 ? 1 : 0); ++dj)
                for (int di = 0; di <= 1; ++di)
                    sum += cons(n, lo[2] * (ndim >= 3) + f0[2] + dk,
                                lo[1] * (ndim >= 2) + f0[1] + dj,
                                lo[0] + f0[0] + di);
        *out = sum / (1 << ndim);
        return true;
    };

    for (int n = 0; n < ncomp; ++n) {
        for (int k = ch.recv.k.lo; k <= ch.recv.k.hi; ++k)
            for (int j = ch.recv.j.lo; j <= ch.recv.j.hi; ++j)
                for (int i = ch.recv.i.lo; i <= ch.recv.i.hi; ++i) {
                    const int fidx[3] = {i, j, k};
                    int c_rel[3] = {0, 0, 0}; // interior-relative coarse
                    int p[3] = {0, 0, 0};     // fine parity in cell
                    for (int d = 0; d < ndim; ++d) {
                        const int t = fidx[d] - lo[d] - ch.base[d];
                        require(t >= 0, "negative alignment offset");
                        c_rel[d] = t >> 1;
                        p[d] = t & 1;
                    }
                    double center;
                    require(coarse_at(n, c_rel, &center),
                            "ghost prolongation center missing");
                    double value = center;
                    for (int d = 0; d < ndim; ++d) {
                        int cm[3] = {c_rel[0], c_rel[1], c_rel[2]};
                        int cp[3] = {c_rel[0], c_rel[1], c_rel[2]};
                        cm[d] -= 1;
                        cp[d] += 1;
                        double vm, vp;
                        double slope = 0.0;
                        if (coarse_at(n, cm, &vm) &&
                            coarse_at(n, cp, &vp))
                            slope = minmod(vp - center, center - vm);
                        value += (p[d] == 1 ? 0.25 : -0.25) * slope;
                    }
                    cons(n, k, j, i) = value;
                }
    }
}

void
GhostExchange::exchangeFluxCorrections()
{
    TraceSpan span("ExchangeFluxCorrections", TraceCat::Comm,
                   mesh_->collectiveRank());
    if (fused()) {
        // Serial point for monolithic callers; see exchangeBounds().
        plan_.ensureBuilt();
        sendFluxCorrectionsFused();
        receiveFluxCorrectionsFused();
        setFluxCorrectionsFused();
        return;
    }
    for (MeshBlock* block : mesh_->ownedBlocks())
        sendBlockFluxCorrections(*block);
    for (MeshBlock* block : mesh_->ownedBlocks())
        setBlockFluxCorrections(*block);
}

void
GhostExchange::sendBlockFluxCorrections(const MeshBlock& block)
{
    const auto& channels = cache_->fluxSendIndex(block.gid());
    if (channels.empty())
        return;
    for (int idx : channels)
        packAndSendFlux(cache_->flux()[idx]);
    recordSerialAt(mesh_->ctx(), "SendBoundBufs", block.rank(),
                   "bound_buf_metadata",
                   static_cast<double>(channels.size()));
}

bool
GhostExchange::pollBlockFluxCorrections(const MeshBlock& block)
{
    for (int idx : cache_->fluxRecvIndex(block.gid()))
        if (!world_->iprobe(cache_->flux()[idx].id))
            return false;
    return true;
}

void
GhostExchange::setBlockFluxCorrections(MeshBlock& block)
{
    for (int idx : cache_->fluxRecvIndex(block.gid())) {
        const FluxChannel& ch = cache_->flux()[idx];
        auto msg = world_->receive(ch.id);
        require(msg.has_value(), "missing flux-correction buffer");
        require(msg->src == ch.sender->rank() &&
                    msg->dst == block.rank(),
                "flux message rank mismatch into ", block.loc().str());
        require(ch.sender->rank() == block.rank() ||
                    !mesh_->ctx().executing() || !msg->payload.empty(),
                "cross-rank flux unpack into ", block.loc().str(),
                " without a mailbox payload");
        unpackFlux(ch, *msg);
    }
}

void
GhostExchange::packFluxChannel(const FluxChannel& ch, double* out) const
{
    require(ch.sender->hasData(), "flux pack from a storage-less block ",
            ch.sender->loc().str());
    const int ncomp = mesh_->registry().ncompConserved();
    const BlockShape shape = mesh_->config().blockShape();
    const int ndim = shape.ndim;
    const RealArray4& flux = ch.sender->flux(ch.dir);
    const int lo[3] = {shape.is(), shape.js(), shape.ks()};
    const int nfine = 1 << (ndim - 1);
    const double inv = 1.0 / nfine;
    std::size_t idx = 0;
    for (int n = 0; n < ncomp; ++n)
        for (int K = ch.recvFaces.k.lo; K <= ch.recvFaces.k.hi; ++K)
            for (int J = ch.recvFaces.j.lo; J <= ch.recvFaces.j.hi; ++J)
                for (int I = ch.recvFaces.i.lo; I <= ch.recvFaces.i.hi;
                     ++I) {
                    const int cidx[3] = {I, J, K};
                    int f[3];
                    for (int d = 0; d < 3; ++d) {
                        if (d == ch.dir) {
                            f[d] = ch.sendFaceIdx;
                        } else if (d < ndim) {
                            f[d] = lo[d] + 2 * (cidx[d] - lo[d]) -
                                   ch.base2[d];
                        } else {
                            f[d] = 0;
                        }
                    }
                    double sum = 0.0;
                    for (int dk = 0;
                         dk <= (ndim >= 3 && ch.dir != 2 ? 1 : 0); ++dk)
                        for (int dj = 0;
                             dj <= (ndim >= 2 && ch.dir != 1 ? 1 : 0);
                             ++dj)
                            for (int di = 0; di <= (ch.dir != 0 ? 1 : 0);
                                 ++di)
                                sum += flux(n, f[2] + dk, f[1] + dj,
                                            f[0] + di);
                    out[idx++] = sum * inv;
                }
}

void
GhostExchange::packAndSendFlux(const FluxChannel& ch)
{
    const ExecContext& ctx = mesh_->ctx();
    const int ncomp = mesh_->registry().ncompConserved();
    const double faces = static_cast<double>(ch.wireFaces());
    const double bytes = faces * ncomp * sizeof(double);

    std::vector<double> payload;
    if (ctx.executing()) {
        payload.resize(fluxPayloadCount(ch));
        packFluxChannel(ch, payload.data());
    }
    // Restriction arithmetic is GPU work inside the pack kernel; the
    // launch is accounted identically in counting mode.
    recordKernelAt(ctx, "SendBoundBufs", ch.sender->rank(),
                   "SendBoundBufs", faces * ncomp,
                   {1.0, 2.0 * sizeof(double)},
                   static_cast<double>(ch.recvFaces.i.count()));
    const bool remote = ch.sender->rank() != ch.receiver->rank();
    recordSerialAt(ctx, "SendBoundBufs", ch.sender->rank(),
                   remote ? "msg_remote" : "msg_local", 1.0);
    recordSerialAt(ctx, "SendBoundBufs", ch.sender->rank(),
                   remote ? "msg_remote_bytes" : "msg_local_bytes",
                   bytes);
    countSend(bytes);
    world_->isend(ch.id, ch.sender->rank(), ch.receiver->rank(),
                  std::move(payload), bytes);
}

void
GhostExchange::unpackFluxChannel(const FluxChannel& ch,
                                 const double* payload,
                                 std::size_t count) const
{
    const int ncomp = mesh_->registry().ncompConserved();
    // One size check up front, then unchecked indexing in the per-face
    // loop — the same hoist the bounds-unpack path received.
    require(count == static_cast<std::size_t>(ch.wireFaces()) * ncomp,
            "flux-correction payload size mismatch");
    RealArray4& flux = ch.receiver->flux(ch.dir);
    std::size_t idx = 0;
    for (int n = 0; n < ncomp; ++n)
        for (int K = ch.recvFaces.k.lo; K <= ch.recvFaces.k.hi; ++K)
            for (int J = ch.recvFaces.j.lo; J <= ch.recvFaces.j.hi; ++J)
                for (int I = ch.recvFaces.i.lo; I <= ch.recvFaces.i.hi;
                     ++I)
                    flux(n, K, J, I) = payload[idx++];
}

void
GhostExchange::unpackFlux(const FluxChannel& ch, const Message& msg)
{
    const ExecContext& ctx = mesh_->ctx();
    const int ncomp = mesh_->registry().ncompConserved();
    recordKernelAt(ctx, "SetBounds", ch.receiver->rank(), "SetBounds",
                   static_cast<double>(ch.wireFaces()) * ncomp,
                   {0.0, 2.0 * sizeof(double)},
                   static_cast<double>(ch.recvFaces.i.count()));
    if (!ctx.executing())
        return;
    unpackFluxChannel(ch, msg.payload.data(), msg.payload.size());
}

void
GhostExchange::applyPhysicalBoundaries()
{
    for (MeshBlock* block : mesh_->ownedBlocks())
        applyPhysicalBoundariesBlock(*block);
}

void
GhostExchange::applyPhysicalBoundariesBlock(MeshBlock& block)
{
    const ExecContext& ctx = mesh_->ctx();
    if (mesh_->config().periodic || !ctx.executing())
        return;
    const BlockShape shape = mesh_->config().blockShape();
    const int ncomp = mesh_->registry().ncompConserved();
    const BlockTree& tree = mesh_->tree();

    // Outflow (zero-gradient): clamp every ghost index to the
    // interior for directions without a neighbor.
    const auto& loc = block.loc();
    auto at_boundary = [&](int d, int side) {
        LogicalLocation probe = loc;
        std::int64_t* lx = d == 0   ? &probe.lx1
                           : d == 1 ? &probe.lx2
                                    : &probe.lx3;
        *lx += side;
        return !tree.validIndex(probe);
    };
    RealArray4& cons = block.cons();
    const int is = shape.is(), ie = shape.ie();
    const int js = shape.js(), je = shape.je();
    const int ks = shape.ks(), ke = shape.ke();
    auto clamp_fill = [&](int kl, int ku, int jl, int ju, int il,
                          int iu) {
        for (int n = 0; n < ncomp; ++n)
            for (int k = kl; k <= ku; ++k)
                for (int j = jl; j <= ju; ++j)
                    for (int i = il; i <= iu; ++i)
                        cons(n, k, j, i) =
                            cons(n, std::clamp(k, ks, ke),
                                 std::clamp(j, js, je),
                                 std::clamp(i, is, ie));
    };
    const int nk = shape.nk(), nj = shape.nj(), ni = shape.ni();
    if (at_boundary(0, -1))
        clamp_fill(0, nk - 1, 0, nj - 1, 0, is - 1);
    if (at_boundary(0, +1))
        clamp_fill(0, nk - 1, 0, nj - 1, ie + 1, ni - 1);
    if (shape.ndim >= 2 && at_boundary(1, -1))
        clamp_fill(0, nk - 1, 0, js - 1, 0, ni - 1);
    if (shape.ndim >= 2 && at_boundary(1, +1))
        clamp_fill(0, nk - 1, je + 1, nj - 1, 0, ni - 1);
    if (shape.ndim >= 3 && at_boundary(2, -1))
        clamp_fill(0, ks - 1, 0, nj - 1, 0, ni - 1);
    if (shape.ndim >= 3 && at_boundary(2, +1))
        clamp_fill(ke + 1, nk - 1, 0, nj - 1, 0, ni - 1);
}

// ---------------------------------------------------------------------
// Fused BoundaryPlan path (<exec> fused_boundaries).
//
// Every function below requires a current plan: the driver's graph
// builders (and the monolithic exchange entry points) call
// plan_.ensureBuilt() at a serial point first, and the accessors
// themselves panic on a stale generation. ensureBuilt() is NEVER
// called from in here — a rebuild racing a fused launch would be a
// data race on the plan tables.
// ---------------------------------------------------------------------

std::vector<int>
GhostExchange::fusedSendIds(PlanPhase phase) const
{
    if (mesh_->sharded())
        return plan_.sendIds(phase, mesh_->shardRank());
    // A classic mesh steps every block, so it plays all ranks' parts.
    std::vector<int> ids(plan_.messages(phase).size());
    for (std::size_t m = 0; m < ids.size(); ++m)
        ids[m] = static_cast<int>(m);
    return ids;
}

std::vector<int>
GhostExchange::fusedRecvIds(PlanPhase phase) const
{
    if (mesh_->sharded())
        return plan_.recvIds(phase, mesh_->shardRank());
    std::vector<int> ids(plan_.messages(phase).size());
    for (std::size_t m = 0; m < ids.size(); ++m)
        ids[m] = static_cast<int>(m);
    return ids;
}

void
GhostExchange::startReceiveBoundBufsFused()
{
    // Same per-cycle reset contract as startReceiveBoundBufs().
    last_wire_cells_.store(0);
    last_messages_.store(0);
    last_send_bytes_.store(0);
    if (!world_->concurrent())
        discardStaleDeliveries();
    const std::vector<int> inbound = fusedRecvIds(PlanPhase::Bounds);
    pending_receives_.store(inbound.size());
    // One coalesced buffer to prepare per inbound rank pair — this is
    // the point of the plan: O(ranks) bookkeeping, not O(faces).
    recordSerialAt(mesh_->ctx(), "StartReceiveBoundBufs",
                   mesh_->collectiveRank(), "recv_buf_prepare",
                   static_cast<double>(inbound.size()));
}

void
GhostExchange::sendFusedPhase(PlanPhase phase)
{
    const ExecContext& ctx = mesh_->ctx();
    const bool bounds = phase == PlanPhase::Bounds;
    const auto& msgs = plan_.messages(phase);
    const std::vector<int> ids = fusedSendIds(phase);
    if (ids.empty())
        return;

    // One row per plan entry; each row writes its disjoint payload
    // slice, so the single launch below is race-free by construction.
    struct Row
    {
        int channel;
        double* out;
    };
    std::size_t nentries = 0;
    for (int id : ids)
        nentries += msgs[static_cast<std::size_t>(id)].entries.size();
    std::vector<std::vector<double>> payloads(ids.size());
    std::vector<Row> rows;
    std::vector<int> ranks;
    std::vector<double> items;
    ranks.reserve(nentries);
    items.reserve(nentries);
    if (ctx.executing())
        rows.reserve(nentries);
    double innermost = 0;
    for (std::size_t s = 0; s < ids.size(); ++s) {
        const PlanMessage& m = msgs[static_cast<std::size_t>(ids[s])];
        if (ctx.executing())
            payloads[s].resize(m.doubles);
        for (const PlanEntry& e : m.entries) {
            ranks.push_back(m.src);
            items.push_back(static_cast<double>(e.count));
            if (bounds) {
                const BoundsChannel& ch = cache_->bounds()[e.channel];
                innermost += rangeCount(
                    ch.levelDiff == 1 ? ch.recv : ch.send, 0);
            } else {
                innermost += cache_->flux()[e.channel].recvFaces.i.count();
            }
            if (ctx.executing())
                rows.push_back({e.channel, payloads[s].data() + e.offset});
        }
    }

    // ONE fused launch packs (and restricts) every outbound channel of
    // the phase — the per-face path pays one launch per block.
    parForExecRows(
        ctx, 0, static_cast<int>(rows.size()) - 1, 0, 0,
        [&](int, int row, int) {
            const Row& r = rows[static_cast<std::size_t>(row)];
            if (bounds)
                packBoundsChannel(cache_->bounds()[r.channel], r.out);
            else
                packFluxChannel(cache_->flux()[r.channel], r.out);
        });
    recordPackKernelItems(
        ctx, "SendBoundBufs", "SendBoundBufs", {1.0, 2.0 * sizeof(double)},
        ranks.data(), items.data(), static_cast<int>(ranks.size()),
        innermost / static_cast<double>(ranks.size()));

    for (std::size_t s = 0; s < ids.size(); ++s) {
        const PlanMessage& m = msgs[static_cast<std::size_t>(ids[s])];
        const bool remote = m.src != m.dst;
        recordSerialAt(ctx, "SendBoundBufs", m.src,
                       remote ? "msg_remote" : "msg_local", 1.0);
        recordSerialAt(ctx, "SendBoundBufs", m.src,
                       remote ? "msg_remote_bytes" : "msg_local_bytes",
                       m.bytes);
        // Directory bookkeeping is one item per entry, but it is paid
        // once per rank pair, not once per block.
        recordSerialAt(ctx, "SendBoundBufs", m.src, "bound_buf_metadata",
                       static_cast<double>(m.entries.size()));
        if (bounds)
            last_wire_cells_.fetch_add(m.wireUnits);
        countSend(m.bytes);
        world_->isend(m.id, m.src, m.dst, std::move(payloads[s]),
                      m.bytes);
    }
}

void
GhostExchange::sendBoundBufsFused()
{
    sendFusedPhase(PlanPhase::Bounds);
}

void
GhostExchange::sendFluxCorrectionsFused()
{
    sendFusedPhase(PlanPhase::Flux);
}

bool
GhostExchange::pollFusedMessage(const PlanMessage& msg)
{
    if (!world_->iprobe(msg.id))
        return false;
    // One probe per rank pair, recorded on completion like the
    // per-block poll tasks.
    recordSerialAt(mesh_->ctx(), "ReceiveBoundBufs", msg.dst,
                   "recv_poll", 1.0);
    return true;
}

void
GhostExchange::receiveFusedPhase(PlanPhase phase)
{
    const auto& msgs = plan_.messages(phase);
    const std::vector<int> ids = fusedRecvIds(phase);
    if (mesh_->sharded()) {
        // Concurrent peers: poll with a deadline, as the per-face
        // sharded receive loop does.
        // vibe-lint: allow(obs-isolation) peer-wait deadline bounding
        // the Iprobe progress loop, not timing instrumentation.
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration<double>(kPeerWaitSeconds);
        for (int id : ids) {
            const PlanMessage& m = msgs[static_cast<std::size_t>(id)];
            while (!world_->iprobe(m.id)) {
                require(!world_->failed(),
                        "fused ghost exchange aborted: a peer rank "
                        "failed");
                require(std::chrono::steady_clock::now() < deadline,
                        "fused ghost exchange timed out waiting for "
                        "the coalesced ",
                        planPhaseName(phase), " message from rank ",
                        m.src, " on rank ", m.dst);
                std::this_thread::yield();
            }
        }
    } else {
        for (int id : ids)
            require(world_->iprobe(
                        msgs[static_cast<std::size_t>(id)].id),
                    "fused ghost exchange lost a coalesced ",
                    planPhaseName(phase), " message");
    }
    recordSerialAt(mesh_->ctx(), "ReceiveBoundBufs",
                   mesh_->collectiveRank(), "recv_poll",
                   static_cast<double>(ids.size()));
}

void
GhostExchange::receiveBoundBufsFused()
{
    receiveFusedPhase(PlanPhase::Bounds);
}

void
GhostExchange::receiveFluxCorrectionsFused()
{
    receiveFusedPhase(PlanPhase::Flux);
}

void
GhostExchange::setFusedPhase(PlanPhase phase)
{
    const ExecContext& ctx = mesh_->ctx();
    const bool bounds = phase == PlanPhase::Bounds;
    const int ncomp = mesh_->registry().ncompConserved();
    const auto& msgs = plan_.messages(phase);
    const std::vector<int> ids = fusedRecvIds(phase);
    if (ids.empty())
        return;

    struct Row
    {
        int channel;
        const double* payload;
        std::size_t count;
    };
    // Reserve up front: rows hold pointers into received payloads, and
    // a Message move keeps its payload's heap buffer stable.
    std::vector<Message> received;
    received.reserve(ids.size());
    std::vector<Row> rows;
    std::vector<int> ranks;
    std::vector<double> items;
    double innermost = 0;
    for (int id : ids) {
        const PlanMessage& m = msgs[static_cast<std::size_t>(id)];
        auto msg = world_->receive(m.id);
        require(msg.has_value(), "missing coalesced ",
                planPhaseName(phase), " message ", m.src, " -> ",
                m.dst);
        require(msg->src == m.src && msg->dst == m.dst,
                "coalesced ", planPhaseName(phase),
                " message rank mismatch: carried ", msg->src, " -> ",
                msg->dst, ", expected ", m.src, " -> ", m.dst);
        require(!ctx.executing() || msg->payload.size() == m.doubles,
                "coalesced ", planPhaseName(phase),
                " payload size mismatch: ", msg->payload.size(),
                " doubles, directory says ", m.doubles);
        received.push_back(std::move(*msg));
        const Message& stored = received.back();
        for (const PlanEntry& e : m.entries) {
            ranks.push_back(m.dst);
            if (bounds) {
                const BoundsChannel& ch = cache_->bounds()[e.channel];
                items.push_back(static_cast<double>(ch.recv.cells()) *
                                ncomp);
                innermost += ch.recv.i.count();
            } else {
                const FluxChannel& ch = cache_->flux()[e.channel];
                items.push_back(static_cast<double>(ch.wireFaces()) *
                                ncomp);
                innermost += ch.recvFaces.i.count();
            }
            if (ctx.executing())
                rows.push_back(
                    {e.channel, stored.payload.data() + e.offset,
                     e.count});
        }
    }

    // ONE fused launch unpacks (and prolongates) every inbound entry.
    // Each entry writes only its receiver's ghost region (or its own
    // flux faces), and prolongation's interior fallback reads cells no
    // unpack writes, so rows are independent.
    parForExecRows(
        ctx, 0, static_cast<int>(rows.size()) - 1, 0, 0,
        [&](int, int row, int) {
            const Row& r = rows[static_cast<std::size_t>(row)];
            if (bounds)
                unpackBoundsChannel(cache_->bounds()[r.channel],
                                    r.payload, r.count);
            else
                unpackFluxChannel(cache_->flux()[r.channel], r.payload,
                                  r.count);
        });
    const KernelCosts costs =
        bounds ? KernelCosts{1.0, 2.0 * sizeof(double)}
               : KernelCosts{0.0, 2.0 * sizeof(double)};
    recordPackKernelItems(ctx, "SetBounds", "SetBounds", costs,
                          ranks.data(), items.data(),
                          static_cast<int>(ranks.size()),
                          innermost /
                              static_cast<double>(ranks.size()));
    if (bounds) {
        for (int id : ids) {
            const PlanMessage& m = msgs[static_cast<std::size_t>(id)];
            recordSerialAt(ctx, "SetBounds", m.dst,
                           "bound_buf_metadata",
                           static_cast<double>(m.entries.size()));
        }
        pending_receives_.fetch_sub(ids.size());
    }
}

void
GhostExchange::setBoundsFused()
{
    setFusedPhase(PlanPhase::Bounds);
}

void
GhostExchange::setFluxCorrectionsFused()
{
    setFusedPhase(PlanPhase::Flux);
}

} // namespace vibe
