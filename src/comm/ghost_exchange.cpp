#include "comm/ghost_exchange.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "exec/par_for.hpp"
#include "mesh/prolong_restrict.hpp"
#include "util/logging.hpp"

namespace vibe {

namespace {

int
rangeStart(const Region3& r, int d)
{
    return d == 0 ? r.i.lo : d == 1 ? r.j.lo : r.k.lo;
}

int
rangeCount(const Region3& r, int d)
{
    return d == 0 ? r.i.count() : d == 1 ? r.j.count() : r.k.count();
}

} // namespace

GhostExchange::GhostExchange(Mesh& mesh, RankWorld& world,
                             BoundaryBufferCache& cache)
    : mesh_(&mesh), world_(&world), cache_(&cache)
{
    const MeshConfig& config = mesh.config();
    if (mesh.ctx().executing() && config.amrLevels > 1) {
        const BlockShape shape = config.blockShape();
        const int min_nx = std::min(
            {shape.nx1, shape.ndim >= 2 ? shape.nx2 : shape.nx1,
             shape.ndim >= 3 ? shape.nx3 : shape.nx1});
        if (min_nx < 2 * shape.ng)
            fatal("numeric AMR runs require MeshBlockSize >= 2*num_ghost "
                  "(got ",
                  min_nx, " < ", 2 * shape.ng,
                  "); use counting mode for smaller blocks");
        if (shape.ng % 2 != 0)
            fatal("AMR requires an even ghost count, got ", shape.ng);
    }
}

void
GhostExchange::exchangeBounds()
{
    startReceiveBoundBufs();
    sendBoundBufs();
    receiveBoundBufs();
    setBounds();
}

void
GhostExchange::startReceiveBoundBufs()
{
    // Per-cycle state reset lives here, at the top of the cycle, so an
    // exchange that threw mid-cycle cannot leak wire counts, pending
    // receives, or stale mailbox deliveries into the next one.
    last_wire_cells_.store(0);
    if (!world_->concurrent()) {
        // Classic single-driver world: any pending delivery at the top
        // of a cycle is stale garbage from an aborted cycle. With
        // concurrent rank drivers this sweep would be wrong: a neighbor
        // rank may legitimately run up to one stage ahead, and its
        // early sends queue in FIFO order until this rank's matching
        // receive — exactly MPI's eager-message semantics.
        std::size_t stale = 0;
        for (const auto& ch : cache_->bounds())
            stale += world_->discardPending(ch.id);
        for (const auto& ch : cache_->flux())
            stale += world_->discardPending(ch.id);
        if (stale > 0)
            warn("ghost exchange discarded ", stale,
                 " stale buffers left by an aborted cycle");
    }
    const std::size_t expected =
        mesh_->sharded()
            ? cache_->recvChannelCountFor(mesh_->shardRank())
            : cache_->bounds().size();
    pending_receives_.store(expected);
    // Buffer preparation is pure serial host work: one item per
    // expected buffer.
    recordSerialAt(mesh_->ctx(), "StartReceiveBoundBufs",
                   mesh_->collectiveRank(), "recv_buf_prepare",
                   static_cast<double>(expected));
}

void
GhostExchange::sendBoundBufs()
{
    // Iterate senders in block order so kernel launches batch per block
    // as Parthenon's packing kernels do. A sharded replica sends only
    // from its owned shard; peers send their own.
    for (MeshBlock* block : mesh_->ownedBlocks())
        sendBlockBounds(*block);
}

void
GhostExchange::sendBlockBounds(const MeshBlock& block)
{
    const ExecContext& ctx = mesh_->ctx();
    const auto& channels = cache_->sendIndex(block.gid());
    if (channels.empty())
        return;
    double packed_values = 0;
    double innermost = 0;
    std::int64_t wire_cells = 0;
    for (int idx : channels) {
        const BoundsChannel& ch = cache_->bounds()[idx];
        packAndSend(ch);
        packed_values += static_cast<double>(ch.wireCells()) *
                         mesh_->registry().ncompConserved();
        innermost +=
            rangeCount(ch.levelDiff == 1 ? ch.recv : ch.send, 0);
        wire_cells += ch.wireCells();
    }
    last_wire_cells_.fetch_add(wire_cells);
    // One batched pack kernel per block: copies + (for fine->coarse)
    // the restriction arithmetic, both GPU-offloaded (§II-D).
    recordKernelAt(ctx, "SendBoundBufs", block.rank(), "SendBoundBufs",
                   packed_values, {1.0, 2.0 * sizeof(double)},
                   innermost / static_cast<double>(channels.size()));
    // Per-buffer metadata management is serial host work.
    recordSerialAt(ctx, "SendBoundBufs", block.rank(),
                   "bound_buf_metadata",
                   static_cast<double>(channels.size()));
}

void
GhostExchange::packAndSend(const BoundsChannel& ch)
{
    const ExecContext& ctx = mesh_->ctx();
    const int ncomp = mesh_->registry().ncompConserved();
    const double bytes =
        static_cast<double>(ch.wireCells()) * ncomp * sizeof(double);

    std::vector<double> payload;
    if (ctx.executing()) {
        require(ch.sender->hasData(),
                "pack from a storage-less block ",
                ch.sender->loc().str(),
                " (sender not owned by this rank?)");
        const BlockShape shape = mesh_->config().blockShape();
        const int ndim = shape.ndim;
        const RealArray4& cons = ch.sender->cons();
        payload.reserve(static_cast<std::size_t>(ch.wireCells()) * ncomp);
        if (ch.levelDiff == 1) {
            // Restrict on send: iterate the receiver's coarse target
            // region; average the covering fine cells.
            const int lo[3] = {shape.is(), shape.js(), shape.ks()};
            const double inv = 1.0 / (1 << ndim);
            for (int n = 0; n < ncomp; ++n)
                for (int K = ch.recv.k.lo; K <= ch.recv.k.hi; ++K)
                    for (int J = ch.recv.j.lo; J <= ch.recv.j.hi; ++J)
                        for (int I = ch.recv.i.lo; I <= ch.recv.i.hi;
                             ++I) {
                            const int fi =
                                lo[0] + 2 * (I - lo[0]) - ch.base2[0];
                            const int fj =
                                ndim >= 2
                                    ? lo[1] + 2 * (J - lo[1]) - ch.base2[1]
                                    : 0;
                            const int fk =
                                ndim >= 3
                                    ? lo[2] + 2 * (K - lo[2]) - ch.base2[2]
                                    : 0;
                            double sum = 0.0;
                            for (int dk = 0; dk <= (ndim >= 3 ? 1 : 0);
                                 ++dk)
                                for (int dj = 0;
                                     dj <= (ndim >= 2 ? 1 : 0); ++dj)
                                    for (int di = 0; di <= 1; ++di)
                                        sum += cons(n, fk + dk, fj + dj,
                                                    fi + di);
                            payload.push_back(sum * inv);
                        }
        } else {
            // Same level or coarse slab: straight copy of the send box.
            for (int n = 0; n < ncomp; ++n)
                for (int k = ch.send.k.lo; k <= ch.send.k.hi; ++k)
                    for (int j = ch.send.j.lo; j <= ch.send.j.hi; ++j)
                        for (int i = ch.send.i.lo; i <= ch.send.i.hi;
                             ++i)
                            payload.push_back(cons(n, k, j, i));
        }
    }
    const bool remote = ch.sender->rank() != ch.receiver->rank();
    recordSerialAt(ctx, "SendBoundBufs", ch.sender->rank(),
                   remote ? "msg_remote" : "msg_local", 1.0);
    recordSerialAt(ctx, "SendBoundBufs", ch.sender->rank(),
                   remote ? "msg_remote_bytes" : "msg_local_bytes",
                   bytes);
    world_->isend(ch.id, ch.sender->rank(), ch.receiver->rank(),
                  std::move(payload), bytes);
}

void
GhostExchange::receiveBoundBufs()
{
    if (mesh_->sharded()) {
        // Sharded replica: only this rank's inbound channels are ours
        // to consume, and remote senders run on their own threads, so
        // poll until every expected buffer arrived (the real code's
        // Iprobe progress loop) instead of asserting instant delivery.
        const int rank = mesh_->shardRank();
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration<double>(kPeerWaitSeconds);
        std::size_t expected = 0;
        for (const auto& ch : cache_->bounds()) {
            if (ch.receiver->rank() != rank)
                continue;
            ++expected;
            while (!world_->iprobe(ch.id)) {
                require(!world_->failed(),
                        "ghost exchange aborted: a peer rank failed");
                require(std::chrono::steady_clock::now() < deadline,
                        "ghost exchange timed out waiting for buffer "
                        "into ",
                        ch.receiver->loc().str(), " on rank ", rank);
                std::this_thread::yield();
            }
        }
        recordSerialAt(mesh_->ctx(), "ReceiveBoundBufs", rank,
                       "recv_poll", static_cast<double>(expected));
        return;
    }
    // Poll until every expected buffer is present, as the real code
    // nudges MPI progress with Iprobe. In the simulated world delivery
    // is immediate, so one probe per channel suffices; the counters
    // still capture the per-buffer polling cost.
    std::uint64_t outstanding = 0;
    for (const auto& ch : cache_->bounds())
        if (!world_->iprobe(ch.id))
            ++outstanding;
    require(outstanding == 0,
            "ghost exchange lost messages: ", outstanding,
            " buffers missing");
    recordSerialAt(mesh_->ctx(), "ReceiveBoundBufs", 0, "recv_poll",
                   static_cast<double>(cache_->bounds().size()));
}

bool
GhostExchange::pollBlockBounds(const MeshBlock& block)
{
    const auto& channels = cache_->recvIndex(block.gid());
    for (int idx : channels)
        if (!world_->iprobe(cache_->bounds()[idx].id))
            return false;
    // Record the polling cost once, when the block's buffers are all
    // present; per-block totals sum to the monolithic recv_poll count.
    if (!channels.empty())
        recordSerialAt(mesh_->ctx(), "ReceiveBoundBufs", block.rank(),
                       "recv_poll",
                       static_cast<double>(channels.size()));
    return true;
}

void
GhostExchange::setBounds()
{
    for (MeshBlock* block : mesh_->ownedBlocks())
        setBlockBounds(*block);
}

void
GhostExchange::setBlockBounds(MeshBlock& block)
{
    const ExecContext& ctx = mesh_->ctx();
    const auto& channels = cache_->recvIndex(block.gid());
    if (channels.empty())
        return;
    double written_values = 0;
    double innermost = 0;
    for (int idx : channels) {
        const BoundsChannel& ch = cache_->bounds()[idx];
        auto msg = world_->receive(ch.id);
        require(msg.has_value(), "missing buffer for channel into ",
                ch.receiver->loc().str());
        // No direct cross-rank memory access on the step path: when the
        // sending block's owner is another rank, the data MUST have
        // traveled through the mailbox (real payload in numeric mode),
        // and on a sharded replica the sender is a storage-less Shadow,
        // making a direct read structurally impossible.
        require(msg->src == ch.sender->rank() &&
                    msg->dst == block.rank(),
                "bounds message rank mismatch: channel ",
                ch.sender->loc().str(), " -> ", ch.receiver->loc().str(),
                " carried ", msg->src, " -> ", msg->dst, ", expected ",
                ch.sender->rank(), " -> ", block.rank());
        require(ch.sender->rank() == block.rank() ||
                    !mesh_->ctx().executing() || !msg->payload.empty(),
                "cross-rank unpack into ", block.loc().str(),
                " without a mailbox payload");
        require(!mesh_->sharded() ||
                    ch.sender->rank() == mesh_->shardRank() ||
                    !ch.sender->hasData(),
                "non-owned sender ", ch.sender->loc().str(),
                " holds data on rank ", mesh_->shardRank());
        unpack(ch, *msg);
        written_values += static_cast<double>(ch.recv.cells()) *
                          mesh_->registry().ncompConserved();
        innermost += ch.recv.i.count();
    }
    // One batched unpack kernel per block; prolongation of coarse
    // slabs happens inside (GPU-offloaded).
    recordKernelAt(ctx, "SetBounds", block.rank(), "SetBounds",
                   written_values, {1.0, 2.0 * sizeof(double)},
                   innermost / static_cast<double>(channels.size()));
    recordSerialAt(ctx, "SetBounds", block.rank(), "bound_buf_metadata",
                   static_cast<double>(channels.size()));
    pending_receives_.fetch_sub(channels.size());
}

void
GhostExchange::unpack(const BoundsChannel& ch, const Message& msg)
{
    const ExecContext& ctx = mesh_->ctx();
    if (!ctx.executing())
        return;
    const int ncomp = mesh_->registry().ncompConserved();
    const BlockShape shape = mesh_->config().blockShape();
    const int ndim = shape.ndim;
    RealArray4& cons = ch.receiver->cons();

    if (ch.levelDiff >= 0) {
        // Same level or pre-restricted: straight copy into recv box.
        // One size check up front, then unchecked indexing in the
        // per-cell loop (matching the slab branch below).
        require(msg.payload.size() ==
                    static_cast<std::size_t>(ch.recv.cells()) * ncomp,
                "bounds payload size mismatch");
        std::size_t idx = 0;
        for (int n = 0; n < ncomp; ++n)
            for (int k = ch.recv.k.lo; k <= ch.recv.k.hi; ++k)
                for (int j = ch.recv.j.lo; j <= ch.recv.j.hi; ++j)
                    for (int i = ch.recv.i.lo; i <= ch.recv.i.hi; ++i)
                        cons(n, k, j, i) = msg.payload[idx++];
        return;
    }

    // Coarse slab -> fine ghosts: slope-limited prolongation. Slope
    // neighbors come from the slab where available; where the missing
    // neighbor lies on the *receiver's* side of the interface (the
    // innermost ghost layer), it is restricted on the fly from the
    // receiver's own fine interior — the role of Parthenon's
    // receiver-side coarse buffer. Elsewhere the slope clamps to zero.
    const int lo[3] = {shape.is(), shape.js(), shape.ks()};
    const int nx[3] = {shape.nx1, ndim >= 2 ? shape.nx2 : 1,
                       ndim >= 3 ? shape.nx3 : 1};
    const int slab_lo[3] = {rangeStart(ch.send, 0), rangeStart(ch.send, 1),
                            rangeStart(ch.send, 2)};
    const int sc[3] = {rangeCount(ch.send, 0), rangeCount(ch.send, 1),
                       rangeCount(ch.send, 2)};
    const std::size_t slab_stride_n =
        static_cast<std::size_t>(sc[2]) * sc[1] * sc[0];
    require(msg.payload.size() == slab_stride_n * ncomp,
            "slab payload size mismatch");
    auto slab_at = [&](int n, int ck, int cj, int ci) {
        return msg.payload[(static_cast<std::size_t>(n) * sc[2] + ck) *
                               sc[1] * sc[0] +
                           static_cast<std::size_t>(cj) * sc[0] + ci];
    };

    // Coarse value at sender-local interior-relative index c_rel[3];
    // returns false if unobtainable from slab or receiver restriction.
    auto coarse_at = [&](int n, const int c_rel[3], double* out) {
        int s_idx[3];
        bool in_slab = true;
        for (int d = 0; d < 3; ++d) {
            s_idx[d] = c_rel[d] + lo[d] - slab_lo[d];
            if (s_idx[d] < 0 || s_idx[d] >= sc[d])
                in_slab = false;
        }
        if (in_slab) {
            *out = slab_at(n, s_idx[2], s_idx[1], s_idx[0]);
            return true;
        }
        // Restrict from the receiver's own interior if the coarse cell
        // maps entirely inside it.
        int f0[3] = {0, 0, 0};
        for (int d = 0; d < ndim; ++d) {
            f0[d] = ch.base[d] + 2 * c_rel[d];
            if (f0[d] < 0 || f0[d] + 1 >= nx[d])
                return false;
        }
        double sum = 0.0;
        for (int dk = 0; dk <= (ndim >= 3 ? 1 : 0); ++dk)
            for (int dj = 0; dj <= (ndim >= 2 ? 1 : 0); ++dj)
                for (int di = 0; di <= 1; ++di)
                    sum += cons(n, lo[2] * (ndim >= 3) + f0[2] + dk,
                                lo[1] * (ndim >= 2) + f0[1] + dj,
                                lo[0] + f0[0] + di);
        *out = sum / (1 << ndim);
        return true;
    };

    for (int n = 0; n < ncomp; ++n) {
        for (int k = ch.recv.k.lo; k <= ch.recv.k.hi; ++k)
            for (int j = ch.recv.j.lo; j <= ch.recv.j.hi; ++j)
                for (int i = ch.recv.i.lo; i <= ch.recv.i.hi; ++i) {
                    const int fidx[3] = {i, j, k};
                    int c_rel[3] = {0, 0, 0}; // interior-relative coarse
                    int p[3] = {0, 0, 0};     // fine parity in cell
                    for (int d = 0; d < ndim; ++d) {
                        const int t = fidx[d] - lo[d] - ch.base[d];
                        require(t >= 0, "negative alignment offset");
                        c_rel[d] = t >> 1;
                        p[d] = t & 1;
                    }
                    double center;
                    require(coarse_at(n, c_rel, &center),
                            "ghost prolongation center missing");
                    double value = center;
                    for (int d = 0; d < ndim; ++d) {
                        int cm[3] = {c_rel[0], c_rel[1], c_rel[2]};
                        int cp[3] = {c_rel[0], c_rel[1], c_rel[2]};
                        cm[d] -= 1;
                        cp[d] += 1;
                        double vm, vp;
                        double slope = 0.0;
                        if (coarse_at(n, cm, &vm) &&
                            coarse_at(n, cp, &vp))
                            slope = minmod(vp - center, center - vm);
                        value += (p[d] == 1 ? 0.25 : -0.25) * slope;
                    }
                    cons(n, k, j, i) = value;
                }
    }
}

void
GhostExchange::exchangeFluxCorrections()
{
    for (MeshBlock* block : mesh_->ownedBlocks())
        sendBlockFluxCorrections(*block);
    for (MeshBlock* block : mesh_->ownedBlocks())
        setBlockFluxCorrections(*block);
}

void
GhostExchange::sendBlockFluxCorrections(const MeshBlock& block)
{
    const auto& channels = cache_->fluxSendIndex(block.gid());
    if (channels.empty())
        return;
    for (int idx : channels)
        packAndSendFlux(cache_->flux()[idx]);
    recordSerialAt(mesh_->ctx(), "SendBoundBufs", block.rank(),
                   "bound_buf_metadata",
                   static_cast<double>(channels.size()));
}

bool
GhostExchange::pollBlockFluxCorrections(const MeshBlock& block)
{
    for (int idx : cache_->fluxRecvIndex(block.gid()))
        if (!world_->iprobe(cache_->flux()[idx].id))
            return false;
    return true;
}

void
GhostExchange::setBlockFluxCorrections(MeshBlock& block)
{
    for (int idx : cache_->fluxRecvIndex(block.gid())) {
        const FluxChannel& ch = cache_->flux()[idx];
        auto msg = world_->receive(ch.id);
        require(msg.has_value(), "missing flux-correction buffer");
        require(msg->src == ch.sender->rank() &&
                    msg->dst == block.rank(),
                "flux message rank mismatch into ", block.loc().str());
        require(ch.sender->rank() == block.rank() ||
                    !mesh_->ctx().executing() || !msg->payload.empty(),
                "cross-rank flux unpack into ", block.loc().str(),
                " without a mailbox payload");
        unpackFlux(ch, *msg);
    }
}

void
GhostExchange::packAndSendFlux(const FluxChannel& ch)
{
    const ExecContext& ctx = mesh_->ctx();
    const int ncomp = mesh_->registry().ncompConserved();
    const BlockShape shape = mesh_->config().blockShape();
    const int ndim = shape.ndim;
    const double faces = static_cast<double>(ch.wireFaces());
    const double bytes = faces * ncomp * sizeof(double);

    std::vector<double> payload;
    if (ctx.executing()) {
        require(ch.sender->hasData(),
                "flux pack from a storage-less block ",
                ch.sender->loc().str());
        const RealArray4& flux = ch.sender->flux(ch.dir);
        const int lo[3] = {shape.is(), shape.js(), shape.ks()};
        const int nfine = 1 << (ndim - 1);
        const double inv = 1.0 / nfine;
        payload.reserve(static_cast<std::size_t>(faces) * ncomp);
        for (int n = 0; n < ncomp; ++n)
            for (int K = ch.recvFaces.k.lo; K <= ch.recvFaces.k.hi; ++K)
                for (int J = ch.recvFaces.j.lo; J <= ch.recvFaces.j.hi;
                     ++J)
                    for (int I = ch.recvFaces.i.lo;
                         I <= ch.recvFaces.i.hi; ++I) {
                        const int cidx[3] = {I, J, K};
                        int f[3];
                        for (int d = 0; d < 3; ++d) {
                            if (d == ch.dir) {
                                f[d] = ch.sendFaceIdx;
                            } else if (d < ndim) {
                                f[d] = lo[d] + 2 * (cidx[d] - lo[d]) -
                                       ch.base2[d];
                            } else {
                                f[d] = 0;
                            }
                        }
                        double sum = 0.0;
                        for (int dk = 0;
                             dk <= (ndim >= 3 && ch.dir != 2 ? 1 : 0);
                             ++dk)
                            for (int dj = 0;
                                 dj <= (ndim >= 2 && ch.dir != 1 ? 1 : 0);
                                 ++dj)
                                for (int di = 0;
                                     di <= (ch.dir != 0 ? 1 : 0); ++di)
                                    sum += flux(n, f[2] + dk, f[1] + dj,
                                                f[0] + di);
                        payload.push_back(sum * inv);
                    }
    }
    // Restriction arithmetic is GPU work inside the pack kernel; the
    // launch is accounted identically in counting mode.
    recordKernelAt(ctx, "SendBoundBufs", ch.sender->rank(),
                   "SendBoundBufs", faces * ncomp,
                   {1.0, 2.0 * sizeof(double)},
                   static_cast<double>(ch.recvFaces.i.count()));
    const bool remote = ch.sender->rank() != ch.receiver->rank();
    recordSerialAt(ctx, "SendBoundBufs", ch.sender->rank(),
                   remote ? "msg_remote" : "msg_local", 1.0);
    recordSerialAt(ctx, "SendBoundBufs", ch.sender->rank(),
                   remote ? "msg_remote_bytes" : "msg_local_bytes",
                   bytes);
    world_->isend(ch.id, ch.sender->rank(), ch.receiver->rank(),
                  std::move(payload), bytes);
}

void
GhostExchange::unpackFlux(const FluxChannel& ch, const Message& msg)
{
    const ExecContext& ctx = mesh_->ctx();
    const int ncomp = mesh_->registry().ncompConserved();
    recordKernelAt(ctx, "SetBounds", ch.receiver->rank(), "SetBounds",
                   static_cast<double>(ch.wireFaces()) * ncomp,
                   {0.0, 2.0 * sizeof(double)},
                   static_cast<double>(ch.recvFaces.i.count()));
    if (!ctx.executing())
        return;
    // One size check up front, then unchecked indexing in the per-face
    // loop — the same hoist the bounds-unpack path received.
    require(msg.payload.size() ==
                static_cast<std::size_t>(ch.wireFaces()) * ncomp,
            "flux-correction payload size mismatch");
    RealArray4& flux = ch.receiver->flux(ch.dir);
    std::size_t idx = 0;
    for (int n = 0; n < ncomp; ++n)
        for (int K = ch.recvFaces.k.lo; K <= ch.recvFaces.k.hi; ++K)
            for (int J = ch.recvFaces.j.lo; J <= ch.recvFaces.j.hi; ++J)
                for (int I = ch.recvFaces.i.lo; I <= ch.recvFaces.i.hi;
                     ++I)
                    flux(n, K, J, I) = msg.payload[idx++];
}

void
GhostExchange::applyPhysicalBoundaries()
{
    for (MeshBlock* block : mesh_->ownedBlocks())
        applyPhysicalBoundariesBlock(*block);
}

void
GhostExchange::applyPhysicalBoundariesBlock(MeshBlock& block)
{
    const ExecContext& ctx = mesh_->ctx();
    if (mesh_->config().periodic || !ctx.executing())
        return;
    const BlockShape shape = mesh_->config().blockShape();
    const int ncomp = mesh_->registry().ncompConserved();
    const BlockTree& tree = mesh_->tree();

    // Outflow (zero-gradient): clamp every ghost index to the
    // interior for directions without a neighbor.
    const auto& loc = block.loc();
    auto at_boundary = [&](int d, int side) {
        LogicalLocation probe = loc;
        std::int64_t* lx = d == 0   ? &probe.lx1
                           : d == 1 ? &probe.lx2
                                    : &probe.lx3;
        *lx += side;
        return !tree.validIndex(probe);
    };
    RealArray4& cons = block.cons();
    const int is = shape.is(), ie = shape.ie();
    const int js = shape.js(), je = shape.je();
    const int ks = shape.ks(), ke = shape.ke();
    auto clamp_fill = [&](int kl, int ku, int jl, int ju, int il,
                          int iu) {
        for (int n = 0; n < ncomp; ++n)
            for (int k = kl; k <= ku; ++k)
                for (int j = jl; j <= ju; ++j)
                    for (int i = il; i <= iu; ++i)
                        cons(n, k, j, i) =
                            cons(n, std::clamp(k, ks, ke),
                                 std::clamp(j, js, je),
                                 std::clamp(i, is, ie));
    };
    const int nk = shape.nk(), nj = shape.nj(), ni = shape.ni();
    if (at_boundary(0, -1))
        clamp_fill(0, nk - 1, 0, nj - 1, 0, is - 1);
    if (at_boundary(0, +1))
        clamp_fill(0, nk - 1, 0, nj - 1, ie + 1, ni - 1);
    if (shape.ndim >= 2 && at_boundary(1, -1))
        clamp_fill(0, nk - 1, 0, js - 1, 0, ni - 1);
    if (shape.ndim >= 2 && at_boundary(1, +1))
        clamp_fill(0, nk - 1, je + 1, nj - 1, 0, ni - 1);
    if (shape.ndim >= 3 && at_boundary(2, -1))
        clamp_fill(0, ks - 1, 0, nj - 1, 0, ni - 1);
    if (shape.ndim >= 3 && at_boundary(2, +1))
        clamp_fill(ke + 1, nk - 1, 0, nj - 1, 0, ni - 1);
}

} // namespace vibe
