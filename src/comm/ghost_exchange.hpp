/**
 * @file ghost_exchange.hpp
 * The four-function ghost-cell communication cycle (paper §II-D) and
 * the flux-correction exchange at fine-coarse faces.
 *
 * - StartReceiveBoundBufs: post/prepare receive bookkeeping.
 * - SendBoundBufs: restrict fine data destined for coarser neighbors
 *   (GPU-offloaded), pack variable data, and start non-blocking sends
 *   or local copies.
 * - ReceiveBoundBufs: poll with Iprobe/Test until every expected buffer
 *   has arrived.
 * - SetBounds: unpack buffers into ghost zones, prolongating coarse
 *   slabs into fine ghosts (GPU-offloaded), and mark buffers stale.
 *
 * Flux correction reuses the same machinery on flux fields only
 * (§II-C), replacing the coarse face flux with the restricted sum of
 * the fine fluxes so conservation holds across levels.
 *
 * Each phase is available in two granularities:
 *
 * - The monolithic phase functions (exchangeBounds() and friends) run
 *   a whole phase over every block, as the seed did. They are used by
 *   driver initialization and by direct tests.
 * - The per-block task factories (sendBlockBounds, pollBlockBounds,
 *   setBlockBounds, and the flux-correction trio) are the graph nodes
 *   the task-graph driver schedules, so boundary polling interleaves
 *   with interior compute (§II-C). They are safe to run concurrently
 *   for distinct blocks: every send reads only the sender's interior,
 *   every unpack writes only the receiver's ghosts (or its own flux
 *   faces), and all profiler records carry explicit phase/rank
 *   attribution instead of touching shared ambient state.
 *
 * Per-cycle state (pending-receive count, wire-cell counter, stale
 * mailbox entries from a cycle that threw) is reset at the top of
 * startReceiveBoundBufs(), so an exchange aborted mid-cycle can never
 * leave the next one waiting on phantom messages.
 *
 * A third granularity sits on top of both (<exec> fused_boundaries,
 * default on): the BoundaryPlan path. All pack (or unpack) work for a
 * phase runs as ONE fused launch over the plan's buffer table, and all
 * traffic per (src rank, dst rank) pair per phase travels as ONE
 * coalesced mailbox message. The per-channel pack/unpack arithmetic is
 * shared verbatim with the per-face path (packBoundsChannel and
 * friends), every channel writes a disjoint payload slice or receiver
 * region, and prolongation's interior fallback reads cells no unpack
 * writes — so the fused path is bitwise identical to the per-face path
 * at any thread or rank count. The plan must be current
 * (BoundaryPlan::ensureBuilt() at a serial point — the driver's graph
 * builders do this) before any fused phase function runs.
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "comm/boundary_buffers.hpp"
#include "comm/boundary_plan.hpp"
#include "comm/rank_world.hpp"
#include "mesh/mesh.hpp"

namespace vibe {

/** Drives ghost and flux-correction exchanges over a RankWorld. */
class GhostExchange
{
  public:
    GhostExchange(Mesh& mesh, RankWorld& world,
                  BoundaryBufferCache& cache);

    /** Run one complete ghost exchange (the four phases, in order). */
    void exchangeBounds();

    void startReceiveBoundBufs();
    void sendBoundBufs();
    void receiveBoundBufs();
    void setBounds();

    // --- Per-block task factories (bounds cycle) ---

    /** Pack and isend every channel whose sender is `block`. */
    void sendBlockBounds(const MeshBlock& block);
    /**
     * Probe the channels into `block`; true when every expected buffer
     * is present (polling cost recorded once, on completion).
     */
    bool pollBlockBounds(const MeshBlock& block);
    /** Receive and unpack every channel into `block`. */
    void setBlockBounds(MeshBlock& block);

    /**
     * Run one flux-correction exchange. Must be called after fluxes are
     * computed and before FluxDivergence consumes them.
     */
    void exchangeFluxCorrections();

    // --- Per-block task factories (flux-correction cycle) ---

    /** Restrict-pack and isend the corrections `block` sends. */
    void sendBlockFluxCorrections(const MeshBlock& block);
    /** Probe the flux channels into `block`; true when all present. */
    bool pollBlockFluxCorrections(const MeshBlock& block);
    /** Receive and apply the corrections destined for `block`. */
    void setBlockFluxCorrections(MeshBlock& block);

    /**
     * Fill ghost zones at non-periodic physical boundaries with
     * zero-gradient (outflow) data. No-op for periodic domains.
     */
    void applyPhysicalBoundaries();
    /** Physical-boundary fill for one block (task-graph node). */
    void applyPhysicalBoundariesBlock(MeshBlock& block);

    // --- Fused BoundaryPlan path (<exec> fused_boundaries) -----------

    /** True when this run routes boundaries through the plan. */
    bool fused() const { return mesh_->config().fusedBoundaries; }

    /** The plan (lazily rebuilt; see BoundaryPlan's lifecycle). */
    BoundaryPlan& plan() { return plan_; }
    const BoundaryPlan& plan() const { return plan_; }

    /**
     * Coalesced messages this replica sends / expects for `phase`:
     * the shard rank's pairs on a sharded replica, every pair on a
     * classic mesh (which steps all blocks). Plan must be current.
     */
    std::vector<int> fusedSendIds(PlanPhase phase) const;
    std::vector<int> fusedRecvIds(PlanPhase phase) const;

    /** Fused counterpart of startReceiveBoundBufs(). */
    void startReceiveBoundBufsFused();
    /** Pack all outbound bounds entries (one launch), send each pair. */
    void sendBoundBufsFused();
    /**
     * Probe one coalesced message (task-graph poll node); records the
     * polling cost on success.
     */
    bool pollFusedMessage(const PlanMessage& msg);
    /** Blocking poll for every inbound bounds message (monolithic). */
    void receiveBoundBufsFused();
    /** Receive + one fused unpack launch over all inbound entries. */
    void setBoundsFused();

    /** Pack all outbound flux entries (one launch), send each pair. */
    void sendFluxCorrectionsFused();
    /** Blocking poll for every inbound flux message (monolithic). */
    void receiveFluxCorrectionsFused();
    /** Receive + one fused unpack launch over the flux entries. */
    void setFluxCorrectionsFused();

    /** Ghost cells moved in the most recent exchange cycle. */
    std::int64_t lastWireCells() const { return last_wire_cells_.load(); }

    /**
     * Boundary messages sent / modeled bytes since the last
     * startReceiveBoundBufs (bounds + flux, both paths). The driver
     * folds these into CycleStats so benches can report the per-face
     * vs fused coalescing win per cycle.
     */
    std::uint64_t lastBoundaryMessages() const
    {
        return last_messages_.load();
    }
    double lastBoundaryBytes() const
    {
        return static_cast<double>(last_send_bytes_.load());
    }

  private:
    void packAndSend(const BoundsChannel& ch);
    void unpack(const BoundsChannel& ch, const Message& msg);
    void packAndSendFlux(const FluxChannel& ch);
    void unpackFlux(const FluxChannel& ch, const Message& msg);

    /** Payload doubles for one bounds / flux channel. */
    std::size_t boundsPayloadCount(const BoundsChannel& ch) const;
    std::size_t fluxPayloadCount(const FluxChannel& ch) const;

    // Shared per-channel payload arithmetic: the per-face and fused
    // paths both call these, so their payloads agree bit for bit.
    void packBoundsChannel(const BoundsChannel& ch, double* out) const;
    void unpackBoundsChannel(const BoundsChannel& ch,
                             const double* payload,
                             std::size_t count) const;
    void packFluxChannel(const FluxChannel& ch, double* out) const;
    void unpackFluxChannel(const FluxChannel& ch, const double* payload,
                           std::size_t count) const;

    /** Shared body of the two fused send phases. */
    void sendFusedPhase(PlanPhase phase);
    /** Shared body of the two fused receive-poll phases. */
    void receiveFusedPhase(PlanPhase phase);
    /** Shared body of the two fused set phases. */
    void setFusedPhase(PlanPhase phase);

    /** Account one boundary send against the per-cycle counters. */
    void countSend(double bytes);

    /**
     * Discard stale mailbox deliveries from an aborted cycle (both
     * per-face and coalesced formats). Classic worlds only — see the
     * body for why the sweep is wrong with concurrent rank drivers.
     */
    void discardStaleDeliveries();

    Mesh* mesh_;
    RankWorld* world_;
    BoundaryBufferCache* cache_;
    BoundaryPlan plan_;
    std::atomic<std::int64_t> last_wire_cells_{0};
    std::atomic<std::uint64_t> pending_receives_{0};
    std::atomic<std::uint64_t> last_messages_{0};
    /** Modeled bytes are integral (cells x components x 8). */
    std::atomic<std::int64_t> last_send_bytes_{0};
};

} // namespace vibe
