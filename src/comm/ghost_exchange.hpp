/**
 * @file ghost_exchange.hpp
 * The four-function ghost-cell communication cycle (paper §II-D) and
 * the flux-correction exchange at fine-coarse faces.
 *
 * - StartReceiveBoundBufs: post/prepare receive bookkeeping.
 * - SendBoundBufs: restrict fine data destined for coarser neighbors
 *   (GPU-offloaded), pack variable data, and start non-blocking sends
 *   or local copies.
 * - ReceiveBoundBufs: poll with Iprobe/Test until every expected buffer
 *   has arrived.
 * - SetBounds: unpack buffers into ghost zones, prolongating coarse
 *   slabs into fine ghosts (GPU-offloaded), and mark buffers stale.
 *
 * Flux correction reuses the same machinery on flux fields only
 * (§II-C), replacing the coarse face flux with the restricted sum of
 * the fine fluxes so conservation holds across levels.
 *
 * Each phase is available in two granularities:
 *
 * - The monolithic phase functions (exchangeBounds() and friends) run
 *   a whole phase over every block, as the seed did. They are used by
 *   driver initialization and by direct tests.
 * - The per-block task factories (sendBlockBounds, pollBlockBounds,
 *   setBlockBounds, and the flux-correction trio) are the graph nodes
 *   the task-graph driver schedules, so boundary polling interleaves
 *   with interior compute (§II-C). They are safe to run concurrently
 *   for distinct blocks: every send reads only the sender's interior,
 *   every unpack writes only the receiver's ghosts (or its own flux
 *   faces), and all profiler records carry explicit phase/rank
 *   attribution instead of touching shared ambient state.
 *
 * Per-cycle state (pending-receive count, wire-cell counter, stale
 * mailbox entries from a cycle that threw) is reset at the top of
 * startReceiveBoundBufs(), so an exchange aborted mid-cycle can never
 * leave the next one waiting on phantom messages.
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "comm/boundary_buffers.hpp"
#include "comm/rank_world.hpp"
#include "mesh/mesh.hpp"

namespace vibe {

/** Drives ghost and flux-correction exchanges over a RankWorld. */
class GhostExchange
{
  public:
    GhostExchange(Mesh& mesh, RankWorld& world,
                  BoundaryBufferCache& cache);

    /** Run one complete ghost exchange (the four phases, in order). */
    void exchangeBounds();

    void startReceiveBoundBufs();
    void sendBoundBufs();
    void receiveBoundBufs();
    void setBounds();

    // --- Per-block task factories (bounds cycle) ---

    /** Pack and isend every channel whose sender is `block`. */
    void sendBlockBounds(const MeshBlock& block);
    /**
     * Probe the channels into `block`; true when every expected buffer
     * is present (polling cost recorded once, on completion).
     */
    bool pollBlockBounds(const MeshBlock& block);
    /** Receive and unpack every channel into `block`. */
    void setBlockBounds(MeshBlock& block);

    /**
     * Run one flux-correction exchange. Must be called after fluxes are
     * computed and before FluxDivergence consumes them.
     */
    void exchangeFluxCorrections();

    // --- Per-block task factories (flux-correction cycle) ---

    /** Restrict-pack and isend the corrections `block` sends. */
    void sendBlockFluxCorrections(const MeshBlock& block);
    /** Probe the flux channels into `block`; true when all present. */
    bool pollBlockFluxCorrections(const MeshBlock& block);
    /** Receive and apply the corrections destined for `block`. */
    void setBlockFluxCorrections(MeshBlock& block);

    /**
     * Fill ghost zones at non-periodic physical boundaries with
     * zero-gradient (outflow) data. No-op for periodic domains.
     */
    void applyPhysicalBoundaries();
    /** Physical-boundary fill for one block (task-graph node). */
    void applyPhysicalBoundariesBlock(MeshBlock& block);

    /** Ghost cells moved in the most recent exchange cycle. */
    std::int64_t lastWireCells() const { return last_wire_cells_.load(); }

  private:
    void packAndSend(const BoundsChannel& ch);
    void unpack(const BoundsChannel& ch, const Message& msg);
    void packAndSendFlux(const FluxChannel& ch);
    void unpackFlux(const FluxChannel& ch, const Message& msg);

    Mesh* mesh_;
    RankWorld* world_;
    BoundaryBufferCache* cache_;
    std::atomic<std::int64_t> last_wire_cells_{0};
    std::atomic<std::uint64_t> pending_receives_{0};
};

} // namespace vibe
