/**
 * @file ghost_exchange.hpp
 * The four-function ghost-cell communication cycle (paper §II-D) and
 * the flux-correction exchange at fine-coarse faces.
 *
 * - StartReceiveBoundBufs: post/prepare receive bookkeeping.
 * - SendBoundBufs: restrict fine data destined for coarser neighbors
 *   (GPU-offloaded), pack variable data, and start non-blocking sends
 *   or local copies.
 * - ReceiveBoundBufs: poll with Iprobe/Test until every expected buffer
 *   has arrived.
 * - SetBounds: unpack buffers into ghost zones, prolongating coarse
 *   slabs into fine ghosts (GPU-offloaded), and mark buffers stale.
 *
 * Flux correction reuses the same machinery on flux fields only
 * (§II-C), replacing the coarse face flux with the restricted sum of
 * the fine fluxes so conservation holds across levels.
 */
#pragma once

#include <cstdint>

#include "comm/boundary_buffers.hpp"
#include "comm/rank_world.hpp"
#include "mesh/mesh.hpp"

namespace vibe {

/** Drives ghost and flux-correction exchanges over a RankWorld. */
class GhostExchange
{
  public:
    GhostExchange(Mesh& mesh, RankWorld& world,
                  BoundaryBufferCache& cache);

    /** Run one complete ghost exchange (the four phases, in order). */
    void exchangeBounds();

    void startReceiveBoundBufs();
    void sendBoundBufs();
    void receiveBoundBufs();
    void setBounds();

    /**
     * Run one flux-correction exchange. Must be called after fluxes are
     * computed and before FluxDivergence consumes them.
     */
    void exchangeFluxCorrections();

    /**
     * Fill ghost zones at non-periodic physical boundaries with
     * zero-gradient (outflow) data. No-op for periodic domains.
     */
    void applyPhysicalBoundaries();

    /** Ghost cells moved in the most recent exchangeBounds(). */
    std::int64_t lastWireCells() const { return last_wire_cells_; }

  private:
    void packAndSend(const BoundsChannel& ch);
    void unpack(const BoundsChannel& ch, const Message& msg);
    void packAndSendFlux(const FluxChannel& ch);
    void unpackFlux(const FluxChannel& ch, const Message& msg);

    Mesh* mesh_;
    RankWorld* world_;
    BoundaryBufferCache* cache_;
    std::int64_t last_wire_cells_ = 0;
    std::uint64_t pending_receives_ = 0;
};

} // namespace vibe
