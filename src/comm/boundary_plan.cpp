#include "comm/boundary_plan.hpp"

#include <algorithm>
#include <tuple>

#include "exec/par_for.hpp"
#include "util/logging.hpp"

namespace vibe {

namespace {

/**
 * Canonical channel ordering: the cache's pre-shuffle sort key. The
 * cache may shuffle its storage order (<comm> randomize_buffer_keys),
 * so directory order must come from the channel identities themselves
 * — independently built sender and receiver replicas then agree on
 * every entry's offset regardless of their caches' storage order.
 */
auto
canonicalKey(const ChannelId& id)
{
    return std::make_tuple(id.receiver.level, id.receiver.lx3,
                           id.receiver.lx2, id.receiver.lx1,
                           id.sender.level, id.sender.lx3, id.sender.lx2,
                           id.sender.lx1, id.o1, id.o2, id.o3);
}

} // namespace

const char*
planPhaseName(PlanPhase phase)
{
    return phase == PlanPhase::Bounds ? "bounds" : "flux";
}

BoundaryPlan::BoundaryPlan(Mesh& mesh, const BoundaryBufferCache& cache,
                           const RankWorld& world)
    : mesh_(&mesh), cache_(&cache), world_(&world)
{
}

void
BoundaryPlan::invalidate()
{
    LockGuard lock(mutex_);
    built_ = false;
    ++invalidate_count_;
}

void
BoundaryPlan::ensureBuilt()
{
    LockGuard lock(mutex_);
    if (built_ && generation_ == cache_->rebuildCount())
        return;
    rebuild();
}

bool
BoundaryPlan::current() const
{
    LockGuard lock(mutex_);
    return built_ && generation_ == cache_->rebuildCount();
}

std::uint64_t
BoundaryPlan::invalidateCount() const
{
    LockGuard lock(mutex_);
    return invalidate_count_;
}

std::uint64_t
BoundaryPlan::buildCount() const
{
    LockGuard lock(mutex_);
    return build_count_;
}

void
BoundaryPlan::requireCurrent() const
{
    LockGuard lock(mutex_);
    require(built_, "BoundaryPlan used before ensureBuilt()");
    require(generation_ == cache_->rebuildCount(),
            "stale BoundaryPlan: built at cache generation ",
            generation_, " but the cache is at ", cache_->rebuildCount(),
            " (was invalidate() chained into the rebuild hook?)");
}

const std::vector<PlanMessage>&
BoundaryPlan::messages(PlanPhase phase) const
{
    requireCurrent();
    return messages_[static_cast<int>(phase)];
}

const std::vector<int>&
BoundaryPlan::sendIds(PlanPhase phase, int rank) const
{
    requireCurrent();
    return send_ids_[static_cast<int>(phase)].at(
        static_cast<std::size_t>(rank));
}

const std::vector<int>&
BoundaryPlan::recvIds(PlanPhase phase, int rank) const
{
    requireCurrent();
    return recv_ids_[static_cast<int>(phase)].at(
        static_cast<std::size_t>(rank));
}

const PlanMessage*
BoundaryPlan::messageFor(PlanPhase phase, int src, int dst) const
{
    requireCurrent();
    const auto& msgs = messages_[static_cast<int>(phase)];
    const auto it = std::lower_bound(
        msgs.begin(), msgs.end(), std::make_pair(src, dst),
        [](const PlanMessage& m, const std::pair<int, int>& key) {
            return std::make_pair(m.src, m.dst) < key;
        });
    if (it == msgs.end() || it->src != src || it->dst != dst)
        return nullptr;
    return &*it;
}

void
BoundaryPlan::rebuild()
{
    const int nranks = world_->nranks();
    const int ncomp = mesh_->registry().ncompConserved();
    const std::size_t npairs =
        static_cast<std::size_t>(nranks) * nranks;

    for (int phase = 0; phase < kNumPlanPhases; ++phase) {
        auto& msgs = messages_[phase];
        msgs.clear();

        // Group channels by directed rank pair. Rank pairs that share
        // no boundary collect no entries and are elided entirely: no
        // PlanMessage, nothing on the wire, nothing to poll.
        std::vector<std::vector<PlanEntry>> pairs(npairs);
        const bool bounds = phase == static_cast<int>(PlanPhase::Bounds);
        const std::size_t nchannels =
            bounds ? cache_->bounds().size() : cache_->flux().size();
        auto endpoints = [&](int c) {
            if (bounds) {
                const BoundsChannel& ch = cache_->bounds()[c];
                return std::make_pair(ch.sender->rank(),
                                      ch.receiver->rank());
            }
            const FluxChannel& ch = cache_->flux()[c];
            return std::make_pair(ch.sender->rank(),
                                  ch.receiver->rank());
        };
        auto wire_units = [&](int c) {
            return bounds ? cache_->bounds()[c].wireCells()
                          : cache_->flux()[c].wireFaces();
        };
        auto id_of = [&](int c) -> const ChannelId& {
            return bounds ? cache_->bounds()[c].id
                          : cache_->flux()[c].id;
        };
        for (std::size_t c = 0; c < nchannels; ++c) {
            const auto [src, dst] = endpoints(static_cast<int>(c));
            require(src >= 0 && src < nranks && dst >= 0 &&
                        dst < nranks,
                    "channel endpoints outside the rank world: ", src,
                    " -> ", dst, " with ", nranks, " ranks");
            PlanEntry entry;
            entry.channel = static_cast<int>(c);
            entry.count = static_cast<std::size_t>(
                              wire_units(static_cast<int>(c))) *
                          ncomp;
            pairs[static_cast<std::size_t>(src) * nranks + dst]
                .push_back(entry);
        }

        const ChannelKind kind = bounds ? ChannelKind::CoalescedBounds
                                        : ChannelKind::CoalescedFlux;
        for (int src = 0; src < nranks; ++src) {
            for (int dst = 0; dst < nranks; ++dst) {
                auto& entries =
                    pairs[static_cast<std::size_t>(src) * nranks + dst];
                if (entries.empty())
                    continue;
                std::sort(entries.begin(), entries.end(),
                          [&](const PlanEntry& a, const PlanEntry& b) {
                              return canonicalKey(id_of(a.channel)) <
                                     canonicalKey(id_of(b.channel));
                          });
                PlanMessage msg;
                msg.src = src;
                msg.dst = dst;
                msg.id = coalescedChannelId(src, dst, kind);
                for (PlanEntry& entry : entries) {
                    entry.offset = msg.doubles;
                    msg.doubles += entry.count;
                    msg.wireUnits += wire_units(entry.channel);
                }
                // One coalesced message carries exactly the bytes the
                // per-face path would have split across its entries.
                msg.bytes = static_cast<double>(msg.doubles) *
                            sizeof(double);
                msg.entries = std::move(entries);
                msgs.push_back(std::move(msg));
            }
        }

        auto& send_ids = send_ids_[phase];
        auto& recv_ids = recv_ids_[phase];
        send_ids.assign(static_cast<std::size_t>(nranks), {});
        recv_ids.assign(static_cast<std::size_t>(nranks), {});
        for (std::size_t m = 0; m < msgs.size(); ++m) {
            send_ids[static_cast<std::size_t>(msgs[m].src)].push_back(
                static_cast<int>(m));
            recv_ids[static_cast<std::size_t>(msgs[m].dst)].push_back(
                static_cast<int>(m));
        }
    }

    generation_ = cache_->rebuildCount();
    built_ = true;
    ++build_count_;

    // Serial cost: the directory walk touches every channel once, the
    // analogue of the cache's metadata-filling term.
    recordSerialAt(mesh_->ctx(), "BuildBoundaryPlan",
                   mesh_->collectiveRank(), "boundary_plan_metadata",
                   static_cast<double>(cache_->bounds().size() +
                                       cache_->flux().size()));
}

} // namespace vibe
