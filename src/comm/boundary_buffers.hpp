/**
 * @file boundary_buffers.hpp
 * Boundary-buffer cache: the directed communication channels between
 * neighboring MeshBlocks, with exact region calculus for same-level,
 * fine-to-coarse (restricted) and coarse-to-fine (prolongated)
 * exchanges, plus flux-correction channels at fine-coarse faces.
 *
 * Channels are enumerated from the receiver's perspective (one channel
 * per neighbor-list entry), mirroring Parthenon's tag map. The cache is
 * rebuilt after every mesh restructure; rebuilding sorts and then
 * (optionally) randomizes the boundary keys, reproducing the serial
 * cost the paper highlights in InitializeBufferCache (§VIII-A).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "comm/rank_world.hpp"
#include "mesh/mesh.hpp"
#include "util/random.hpp"

namespace vibe {

/** Inclusive index range. */
struct IndexRange
{
    int lo = 0;
    int hi = -1;

    int count() const { return hi >= lo ? hi - lo + 1 : 0; }
};

/** Inclusive 3-D index box (array-index space, ghosts included). */
struct Region3
{
    IndexRange i, j, k;

    std::int64_t cells() const
    {
        return std::int64_t{i.count()} * j.count() * k.count();
    }
};

/**
 * A directed ghost-cell channel. Geometry fields describe the
 * receiver-side target region and, where levels differ, the alignment
 * constants mapping receiver indices to sender indices:
 *
 * - levelDiff = 0: `send` and `recv` are congruent boxes.
 * - levelDiff = +1 (sender finer): receiving coarse cell C in dim d
 *   covers sender fine cells [2C - base2[d], 2C - base2[d] + 1]
 *   (interior-relative indices); the sender restricts on pack.
 * - levelDiff = -1 (sender coarser): receiver fine cell F in dim d lies
 *   in sender coarse cell (F - base[d]) >> 1 with intra-cell parity
 *   (F - base[d]) & 1; the wire carries the padded coarse slab `send`
 *   and the receiver prolongates on unpack.
 */
struct BoundsChannel
{
    ChannelId id;
    MeshBlock* sender = nullptr;
    MeshBlock* receiver = nullptr;
    int o1 = 0, o2 = 0, o3 = 0; ///< Direction from the receiver.
    int levelDiff = 0;          ///< sender level - receiver level.
    Region3 recv;               ///< Receiver target cells.
    Region3 send;               ///< Sender source cells (wire content).
    int base[3] = {0, 0, 0};    ///< Coarse->fine alignment (ld = -1).
    int base2[3] = {0, 0, 0};   ///< Fine->coarse alignment (ld = +1).

    /** Cells on the wire (the paper's "communicated cells" unit). */
    std::int64_t wireCells() const
    {
        return levelDiff == 1 ? recv.cells() : send.cells();
    }
};

/** A fine-to-coarse flux-correction channel across one shared face. */
struct FluxChannel
{
    ChannelId id;
    MeshBlock* sender = nullptr;   ///< Fine block.
    MeshBlock* receiver = nullptr; ///< Coarse block.
    int dir = 0;          ///< Face-normal dimension (0 = x1).
    int side = 1;         ///< +1: fine block on receiver's + side.
    int recvFaceIdx = 0;  ///< Receiver flux-array index along `dir`.
    int sendFaceIdx = 0;  ///< Sender flux-array index along `dir`.
    Region3 recvFaces;    ///< Receiver coarse faces (dir range is one).
    int base2[3] = {0, 0, 0}; ///< Transverse fine alignment.

    std::int64_t wireFaces() const { return recvFaces.cells(); }
};

/**
 * The cache of all channels for the current mesh structure, plus
 * per-block send/receive indexes. Owned by the ghost-exchange engine;
 * rebuilt by the driver after every restructure.
 */
class BoundaryBufferCache
{
  public:
    /**
     * @param randomize_keys Shuffle channel order after sorting, as
     *        Parthenon's InitializeBufferCache does (§VIII-A); the
     *        ablation bench toggles this.
     */
    BoundaryBufferCache(Mesh& mesh, bool randomize_keys,
                        std::uint64_t seed = 0x5eed);

    /** Rebuild all channels from the mesh (RebuildBufferCache). */
    void rebuild();

    const std::vector<BoundsChannel>& bounds() const { return bounds_; }
    const std::vector<FluxChannel>& flux() const { return flux_; }

    /** Indices into bounds() sent by / received by block `gid`. */
    const std::vector<int>& sendIndex(int gid) const
    {
        return send_index_.at(gid);
    }
    const std::vector<int>& recvIndex(int gid) const
    {
        return recv_index_.at(gid);
    }

    /** Indices into flux() sent by / received by block `gid`. */
    const std::vector<int>& fluxSendIndex(int gid) const
    {
        return flux_send_index_.at(gid);
    }
    const std::vector<int>& fluxRecvIndex(int gid) const
    {
        return flux_recv_index_.at(gid);
    }

    /** Ghost cells on the wire for one full exchange. */
    std::int64_t totalWireCells() const;
    /** Flux-correction faces on the wire for one full exchange. */
    std::int64_t totalWireFaces() const;
    /**
     * Flux-correction faces sent by blocks owned by `rank` in one
     * exchange (sender-attributed, so per-rank counts sum to
     * totalWireFaces across a team).
     */
    std::int64_t totalWireFacesFor(int rank) const;
    /** Bounds channels whose receiver is owned by `rank`. */
    std::size_t recvChannelCountFor(int rank) const;
    /** Channels whose endpoints live on different ranks. */
    std::size_t remoteChannelCount() const;
    /** Wire bytes crossing ranks in one exchange (all components). */
    double remoteWireBytes() const;

    /** Number of cache rebuilds performed (serial-cost driver). */
    std::uint64_t rebuildCount() const { return rebuild_count_; }

    /**
     * Invoked at the end of every rebuild(). The cache is rebuilt on
     * exactly the events that invalidate per-mesh block tables
     * (restructure, load-balance moves), so dependents — the driver's
     * MeshBlockPack view tables — hook here to invalidate in lockstep
     * instead of tracking remesh events themselves.
     */
    void setRebuildHook(std::function<void()> hook)
    {
        LockGuard lock(hook_mutex_);
        rebuild_hook_ = std::move(hook);
    }

  private:
    BoundsChannel makeBoundsChannel(MeshBlock& receiver,
                                    const NeighborBlock& nb) const;
    FluxChannel makeFluxChannel(MeshBlock& receiver,
                                const NeighborBlock& nb) const;

    Mesh* mesh_;
    bool randomize_keys_;
    Rng rng_;
    std::vector<BoundsChannel> bounds_;
    std::vector<FluxChannel> flux_;
    std::vector<std::vector<int>> send_index_;
    std::vector<std::vector<int>> recv_index_;
    std::vector<std::vector<int>> flux_send_index_;
    std::vector<std::vector<int>> flux_recv_index_;
    std::uint64_t rebuild_count_ = 0;
    /**
     * Guards hook (re)registration against the rebuild path invoking
     * it: the driver installs the pack-invalidation hook after
     * construction, and under rank sharding each replica's cache lives
     * on its own rank thread — the mutex makes installation safe even
     * if a future caller registers from outside that thread. The hook
     * itself runs under the lock; hooks must not call back into the
     * cache.
     */
    Mutex hook_mutex_;
    std::function<void()> rebuild_hook_ VIBE_GUARDED_BY(hook_mutex_);
};

} // namespace vibe
