#include "comm/boundary_buffers.hpp"

#include <algorithm>
#include <cstdlib>
#include <tuple>

#include "exec/par_for.hpp"
#include "util/logging.hpp"

namespace vibe {

namespace {

/** Per-dimension shape accessors in array form. */
struct DimShape
{
    int nx[3];
    int start[3];
    int end[3];
    int ng;
    int ndim;

    explicit DimShape(const BlockShape& s)
        : nx{s.nx1, s.ndim >= 2 ? s.nx2 : 1, s.ndim >= 3 ? s.nx3 : 1},
          start{s.is(), s.js(), s.ks()}, end{s.ie(), s.je(), s.ke()},
          ng(s.ng), ndim(s.ndim)
    {
    }

    bool active(int d) const { return d < ndim; }
};

std::int64_t
locIndex(const LogicalLocation& loc, int d)
{
    return d == 0 ? loc.lx1 : d == 1 ? loc.lx2 : loc.lx3;
}

int
offsetOfDim(const NeighborBlock& nb, int d)
{
    return d == 0 ? nb.ox1 : d == 1 ? nb.ox2 : nb.ox3;
}

IndexRange*
rangeOfDim(Region3& region, int d)
{
    return d == 0 ? &region.i : d == 1 ? &region.j : &region.k;
}

} // namespace

BoundaryBufferCache::BoundaryBufferCache(Mesh& mesh, bool randomize_keys,
                                         std::uint64_t seed)
    : mesh_(&mesh), randomize_keys_(randomize_keys), rng_(seed)
{
    rebuild();
}

BoundsChannel
BoundaryBufferCache::makeBoundsChannel(MeshBlock& receiver,
                                       const NeighborBlock& nb) const
{
    const DimShape s(mesh_->config().blockShape());
    BoundsChannel ch;
    ch.sender = nb.block;
    ch.receiver = &receiver;
    ch.o1 = nb.ox1;
    ch.o2 = nb.ox2;
    ch.o3 = nb.ox3;
    ch.levelDiff = nb.levelDiff;
    ch.id = {nb.block->loc(), receiver.loc(),
             static_cast<std::int8_t>(nb.ox1),
             static_cast<std::int8_t>(nb.ox2),
             static_cast<std::int8_t>(nb.ox3), ChannelKind::Bounds};

    for (int d = 0; d < 3; ++d) {
        IndexRange* recv = rangeOfDim(ch.recv, d);
        IndexRange* send = rangeOfDim(ch.send, d);
        if (!s.active(d)) {
            *recv = {0, 0};
            *send = {0, 0};
            continue;
        }
        const int o = offsetOfDim(nb, d);
        const int nx = s.nx[d];
        const int lo = s.start[d];
        const int hi = s.end[d];

        // --- Receiver target region ---
        if (o == 1) {
            // Fine-to-coarse ghost depth is limited by the fine
            // neighbor's interior (only relevant for nx < 2*ng).
            const int depth =
                ch.levelDiff == 1 ? std::min(s.ng, nx / 2) : s.ng;
            *recv = {hi + 1, hi + depth};
        } else if (o == -1) {
            const int depth =
                ch.levelDiff == 1 ? std::min(s.ng, nx / 2) : s.ng;
            *recv = {lo - depth, lo - 1};
        } else if (ch.levelDiff == 1) {
            // Transverse: the fine sender covers one half of us.
            const int half =
                static_cast<int>(locIndex(ch.sender->loc(), d) & 1);
            *recv = {lo + half * nx / 2, lo + (half + 1) * nx / 2 - 1};
        } else {
            *recv = {lo, hi};
        }

        // --- Sender source region and alignment constants ---
        if (ch.levelDiff == 0) {
            if (o == 1)
                *send = {lo, lo + s.ng - 1};
            else if (o == -1)
                *send = {hi - s.ng + 1, hi};
            else
                *send = {lo, hi};
        } else if (ch.levelDiff == 1) {
            // Fine sender; wire carries restricted (coarse) cells of
            // the recv region. base2 maps recv coarse cell C to fine
            // start 2C - base2 (interior-relative).
            if (o == 1) {
                ch.base2[d] = 2 * nx;
                *send = {lo, lo + 2 * recv->count() - 1};
            } else if (o == -1) {
                ch.base2[d] = -nx;
                *send = {hi - 2 * recv->count() + 1, hi};
            } else {
                const int half =
                    static_cast<int>(locIndex(ch.sender->loc(), d) & 1);
                ch.base2[d] = half * nx;
                *send = {lo, hi};
            }
        } else {
            // Coarse sender; wire carries a padded coarse slab. base
            // maps receiver fine cell F to coarse cell (F - base) >> 1
            // (interior-relative).
            if (o == 1)
                ch.base[d] = nx;
            else if (o == -1)
                ch.base[d] = -2 * nx;
            else
                ch.base[d] = -static_cast<int>(
                                 locIndex(ch.receiver->loc(), d) & 1) *
                             nx;
            const int f_lo = recv->lo - lo;
            const int f_hi = recv->hi - lo;
            const int c_lo = (f_lo - ch.base[d]) >> 1;
            const int c_hi = (f_hi - ch.base[d]) >> 1;
            require(c_lo >= -1 && c_hi <= nx,
                    "coarse slab out of range in dim ", d);
            const int padded_lo = std::max(0, c_lo - 1);
            const int padded_hi = std::min(nx - 1, c_hi + 1);
            *send = {lo + padded_lo, lo + padded_hi};
        }
    }
    return ch;
}

FluxChannel
BoundaryBufferCache::makeFluxChannel(MeshBlock& receiver,
                                     const NeighborBlock& nb) const
{
    const DimShape s(mesh_->config().blockShape());
    FluxChannel ch;
    ch.sender = nb.block;
    ch.receiver = &receiver;
    ch.id = {nb.block->loc(), receiver.loc(),
             static_cast<std::int8_t>(nb.ox1),
             static_cast<std::int8_t>(nb.ox2),
             static_cast<std::int8_t>(nb.ox3), ChannelKind::Flux};
    ch.dir = nb.ox1 != 0 ? 0 : nb.ox2 != 0 ? 1 : 2;
    ch.side = offsetOfDim(nb, ch.dir);

    for (int d = 0; d < 3; ++d) {
        IndexRange* faces = rangeOfDim(ch.recvFaces, d);
        if (!s.active(d)) {
            *faces = {0, 0};
            continue;
        }
        const int nx = s.nx[d];
        const int lo = s.start[d];
        const int hi = s.end[d];
        if (d == ch.dir) {
            ch.recvFaceIdx = ch.side == 1 ? hi + 1 : lo;
            ch.sendFaceIdx = ch.side == 1 ? lo : hi + 1;
            *faces = {ch.recvFaceIdx, ch.recvFaceIdx};
        } else {
            const int half =
                static_cast<int>(locIndex(ch.sender->loc(), d) & 1);
            ch.base2[d] = half * nx;
            *faces = {lo + half * nx / 2, lo + (half + 1) * nx / 2 - 1};
        }
    }
    return ch;
}

void
BoundaryBufferCache::rebuild()
{
    ++rebuild_count_;
    bounds_.clear();
    flux_.clear();

    for (const auto& block : mesh_->blocks()) {
        for (const auto& nb : mesh_->neighbors(block->gid())) {
            bounds_.push_back(makeBoundsChannel(*block, nb));
            const bool is_face =
                std::abs(nb.ox1) + std::abs(nb.ox2) + std::abs(nb.ox3) ==
                1;
            if (nb.levelDiff == 1 && is_face)
                flux_.push_back(makeFluxChannel(*block, nb));
        }
    }

    // InitializeBufferCache: sort boundary keys deterministically,
    // then optionally randomize their order (§VIII-A). Both passes are
    // recorded as serial work for the host-cost model.
    auto key_of = [](const ChannelId& id) {
        return std::make_tuple(id.receiver.level, id.receiver.lx3,
                               id.receiver.lx2, id.receiver.lx1,
                               id.sender.level, id.sender.lx3,
                               id.sender.lx2, id.sender.lx1, id.o1, id.o2,
                               id.o3);
    };
    std::sort(bounds_.begin(), bounds_.end(),
              [&](const BoundsChannel& a, const BoundsChannel& b) {
                  return key_of(a.id) < key_of(b.id);
              });
    std::sort(flux_.begin(), flux_.end(),
              [&](const FluxChannel& a, const FluxChannel& b) {
                  return key_of(a.id) < key_of(b.id);
              });
    if (randomize_keys_) {
        for (std::size_t i = bounds_.size(); i > 1; --i)
            std::swap(bounds_[i - 1], bounds_[rng_.uniformInt(i)]);
    }

    send_index_.assign(mesh_->numBlocks(), {});
    recv_index_.assign(mesh_->numBlocks(), {});
    for (std::size_t c = 0; c < bounds_.size(); ++c) {
        send_index_[bounds_[c].sender->gid()].push_back(
            static_cast<int>(c));
        recv_index_[bounds_[c].receiver->gid()].push_back(
            static_cast<int>(c));
    }
    flux_send_index_.assign(mesh_->numBlocks(), {});
    flux_recv_index_.assign(mesh_->numBlocks(), {});
    for (std::size_t c = 0; c < flux_.size(); ++c) {
        flux_send_index_[flux_[c].sender->gid()].push_back(
            static_cast<int>(c));
        flux_recv_index_[flux_[c].receiver->gid()].push_back(
            static_cast<int>(c));
    }

    // Serial cost drivers: one key per channel for the sort/shuffle,
    // one metadata record per channel for the ViewOfViews fill +
    // host-to-device copy (§VIII-A "Metadata Filling").
    recordSerial(mesh_->ctx(), "buffer_cache_keys",
                 static_cast<double>(bounds_.size()));
    recordSerial(mesh_->ctx(), "buffer_cache_metadata",
                 static_cast<double>(bounds_.size() + flux_.size()));

    LockGuard lock(hook_mutex_);
    if (rebuild_hook_)
        rebuild_hook_();
}

std::int64_t
BoundaryBufferCache::totalWireCells() const
{
    std::int64_t cells = 0;
    for (const auto& ch : bounds_)
        cells += ch.wireCells();
    return cells;
}

std::int64_t
BoundaryBufferCache::totalWireFaces() const
{
    std::int64_t faces = 0;
    for (const auto& ch : flux_)
        faces += ch.wireFaces();
    return faces;
}

std::int64_t
BoundaryBufferCache::totalWireFacesFor(int rank) const
{
    std::int64_t faces = 0;
    for (const auto& ch : flux_)
        if (ch.sender->rank() == rank)
            faces += ch.wireFaces();
    return faces;
}

std::size_t
BoundaryBufferCache::recvChannelCountFor(int rank) const
{
    std::size_t count = 0;
    for (const auto& ch : bounds_)
        if (ch.receiver->rank() == rank)
            ++count;
    return count;
}

std::size_t
BoundaryBufferCache::remoteChannelCount() const
{
    std::size_t count = 0;
    for (const auto& ch : bounds_)
        if (ch.sender->rank() != ch.receiver->rank())
            ++count;
    for (const auto& ch : flux_)
        if (ch.sender->rank() != ch.receiver->rank())
            ++count;
    return count;
}

double
BoundaryBufferCache::remoteWireBytes() const
{
    const int ncomp = mesh_->registry().ncompConserved();
    double bytes = 0;
    for (const auto& ch : bounds_)
        if (ch.sender->rank() != ch.receiver->rank())
            bytes += static_cast<double>(ch.wireCells()) * ncomp *
                     sizeof(double);
    for (const auto& ch : flux_)
        if (ch.sender->rank() != ch.receiver->rank())
            bytes += static_cast<double>(ch.wireFaces()) * ncomp *
                     sizeof(double);
    return bytes;
}

} // namespace vibe
