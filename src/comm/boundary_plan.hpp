/**
 * @file boundary_plan.hpp
 * BoundaryPlan: a persistent, phase-indexed plan of all boundary work
 * for the current mesh structure.
 *
 * The plan is the communication analogue of the MeshBlockPack: where
 * the pack flattens per-block interior kernels into one fused launch,
 * the plan flattens every per-face BoundsChannel/FluxChannel of the
 * BoundaryBufferCache into a buffer table so that
 *
 *  - all pack/unpack (plus restrict-on-pack / prolong-on-unpack) work
 *    for a phase is a single fused launch over table rows, and
 *  - all traffic between one (src rank, dst rank) pair per phase is
 *    coalesced into ONE combined RankWorld mailbox message whose
 *    payload is the offset-directory concatenation of the per-face
 *    payloads (Parthenon's bvals_cc_in_one / AthenaK combined-buffer
 *    strategy).
 *
 * Message format: the payload is a flat array of doubles; entry e of
 * messageFor(phase, src, dst) occupies [offset, offset + count) and
 * carries exactly the doubles the per-face path would have sent on
 * entry e's channel, in the per-face pack order. Entries are sorted by
 * the cache's canonical channel key (not the cache's possibly
 * shuffled storage order), so independently built sender and receiver
 * replicas agree on the directory byte for byte. Rank pairs with no
 * adjacent blocks get no PlanMessage at all — the empty message is
 * elided, never sent.
 *
 * Lifecycle: the plan is generation-stamped against
 * BoundaryBufferCache::rebuildCount(). The driver chains invalidate()
 * into the cache's rebuild hook (which fires on every restructure and
 * load-balance move); ensureBuilt() lazily rebuilds at a serial point
 * before graph construction. Every accessor asserts the generation
 * still matches, so a stale plan is structurally unusable rather than
 * quietly wrong.
 *
 * Thread safety: the rebuild state (built_/generation_/counters) is
 * guarded by mutex_ and annotated for clang's thread-safety analysis.
 * The message tables themselves are written only inside
 * ensureBuilt()/invalidate() — called at serial points on the owning
 * rank's driver thread — and are read lock-free by the fused launches.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comm/boundary_buffers.hpp"
#include "comm/rank_world.hpp"
#include "mesh/mesh.hpp"
#include "util/thread_safety.hpp"

namespace vibe {

/** The two boundary phases the plan indexes. */
enum class PlanPhase
{
    Bounds = 0, ///< Ghost-cell exchange.
    Flux = 1,   ///< Flux correction at fine-coarse faces.
};

inline constexpr int kNumPlanPhases = 2;

/** Human-readable phase name (task labels, stall reports). */
const char* planPhaseName(PlanPhase phase);

/** One per-face channel's slice of a coalesced payload. */
struct PlanEntry
{
    /** Index into cache bounds() (Bounds phase) or flux() (Flux). */
    int channel = 0;
    /** First double of this entry within the combined payload. */
    std::size_t offset = 0;
    /** Payload doubles (wire cells/faces x conserved components). */
    std::size_t count = 0;
};

/** One coalesced (src rank -> dst rank) message for one phase. */
struct PlanMessage
{
    int src = 0, dst = 0;
    /** Rank-pair mailbox channel (CoalescedBounds/CoalescedFlux). */
    ChannelId id;
    /** Total payload doubles (sum of entry counts). */
    std::size_t doubles = 0;
    /** Modeled wire bytes — equals the sum over the per-face path. */
    double bytes = 0;
    /** Wire cells (Bounds) or faces (Flux) carried, for accounting. */
    std::int64_t wireUnits = 0;
    /** Offset directory, sorted by canonical channel key. */
    std::vector<PlanEntry> entries;
};

/**
 * The plan. Owned by GhostExchange alongside the BoundaryBufferCache
 * it is derived from; the cache must outlive the plan.
 */
class BoundaryPlan
{
  public:
    /**
     * `world` supplies the rank-pair universe: block owner ranks are
     * assigned by load balancing over the world's rank count, which
     * may exceed the mesh config's (a classic mesh modeling several
     * ranks under one driver). All three must outlive the plan.
     */
    BoundaryPlan(Mesh& mesh, const BoundaryBufferCache& cache,
                 const RankWorld& world);

    /**
     * Mark the plan stale. Chained into the cache's rebuild hook by
     * the driver, so it fires exactly once per cache rebuild
     * (restructure, migration); must not call back into the cache
     * (the hook runs under the cache's hook lock).
     */
    void invalidate();

    /**
     * Rebuild if stale. Must be called from the owning rank's driver
     * thread at a serial point (no fused launch in flight) — the
     * driver does so while constructing each stage's task graph.
     */
    void ensureBuilt();

    /** True when the plan matches the cache's current structure. */
    bool current() const;

    /** invalidate() calls so far (lifecycle tests). */
    std::uint64_t invalidateCount() const;
    /** Rebuilds actually performed (lazy: <= invalidateCount + 1). */
    std::uint64_t buildCount() const;

    /** All messages for `phase`, sorted by (src, dst). */
    const std::vector<PlanMessage>& messages(PlanPhase phase) const;

    /** Indices into messages(phase) with src == rank. */
    const std::vector<int>& sendIds(PlanPhase phase, int rank) const;

    /** Indices into messages(phase) with dst == rank. */
    const std::vector<int>& recvIds(PlanPhase phase, int rank) const;

    /**
     * The coalesced message for a rank pair, or nullptr when the pair
     * shares no boundary (the message is elided, not sent empty).
     */
    const PlanMessage* messageFor(PlanPhase phase, int src,
                                  int dst) const;

  private:
    void rebuild() VIBE_REQUIRES(mutex_);
    /** Panic unless built against the cache's current generation. */
    void requireCurrent() const;

    Mesh* mesh_;
    const BoundaryBufferCache* cache_;
    const RankWorld* world_;

    /** Guards the rebuild state; see file comment for the discipline. */
    mutable Mutex mutex_;
    bool built_ VIBE_GUARDED_BY(mutex_) = false;
    /** cache_->rebuildCount() the tables were built against. */
    std::uint64_t generation_ VIBE_GUARDED_BY(mutex_) = 0;
    std::uint64_t invalidate_count_ VIBE_GUARDED_BY(mutex_) = 0;
    std::uint64_t build_count_ VIBE_GUARDED_BY(mutex_) = 0;

    /** Per-phase tables; written only under mutex_ at serial points. */
    std::vector<PlanMessage> messages_[kNumPlanPhases];
    std::vector<std::vector<int>> send_ids_[kNumPlanPhases];
    std::vector<std::vector<int>> recv_ids_[kNumPlanPhases];
};

} // namespace vibe
