#include "comm/rank_world.hpp"

#include "util/logging.hpp"

namespace vibe {

std::size_t
ChannelIdHash::operator()(const ChannelId& id) const
{
    LogicalLocationHash loc_hash;
    std::size_t h = loc_hash(id.sender);
    h ^= loc_hash(id.receiver) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
    const std::size_t dir =
        static_cast<std::size_t>(id.o1 + 1) * 9 +
        static_cast<std::size_t>(id.o2 + 1) * 3 +
        static_cast<std::size_t>(id.o3 + 1) +
        (static_cast<std::size_t>(id.kind) << 5);
    h ^= dir + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

RankWorld::RankWorld(int nranks) : nranks_(nranks)
{
    require(nranks >= 1, "RankWorld needs at least one rank");
}

void
RankWorld::isend(const ChannelId& channel, int src, int dst,
                 std::vector<double> payload, double bytes)
{
    require(src >= 0 && src < nranks_ && dst >= 0 && dst < nranks_,
            "isend rank out of range: ", src, " -> ", dst);
    std::lock_guard<std::mutex> lock(mutex_);
    if (src == dst) {
        ++traffic_.localMessages;
        traffic_.localBytes += bytes;
    } else {
        ++traffic_.remoteMessages;
        traffic_.remoteBytes += bytes;
    }
    mailboxes_[channel].push_back({src, dst, std::move(payload), bytes});
    ++pending_total_;
}

bool
RankWorld::iprobe(const ChannelId& channel)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++traffic_.probes;
    auto it = mailboxes_.find(channel);
    return it != mailboxes_.end() && !it->second.empty();
}

std::optional<Message>
RankWorld::receive(const ChannelId& channel)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++traffic_.tests;
    auto it = mailboxes_.find(channel);
    if (it == mailboxes_.end() || it->second.empty())
        return std::nullopt;
    Message msg = std::move(it->second.front());
    it->second.pop_front();
    --pending_total_;
    return msg;
}

std::size_t
RankWorld::discardPending(const ChannelId& channel)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = mailboxes_.find(channel);
    if (it == mailboxes_.end())
        return 0;
    const std::size_t dropped = it->second.size();
    it->second.clear();
    pending_total_ -= dropped;
    return dropped;
}

std::size_t
RankWorld::pendingCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_total_;
}

void
RankWorld::allGather(double bytes_per_rank)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++traffic_.allGathers;
    traffic_.collectiveBytes += bytes_per_rank * nranks_;
}

void
RankWorld::allReduce(double bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++traffic_.allReduces;
    traffic_.collectiveBytes += bytes;
}

void
RankWorld::accountTransfer(int src, int dst, double bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (src == dst) {
        ++traffic_.localMessages;
        traffic_.localBytes += bytes;
    } else {
        ++traffic_.remoteMessages;
        traffic_.remoteBytes += bytes;
    }
}

} // namespace vibe
