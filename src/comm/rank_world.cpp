#include "comm/rank_world.hpp"

#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace vibe {

std::size_t
ChannelIdHash::operator()(const ChannelId& id) const
{
    LogicalLocationHash loc_hash;
    std::size_t h = loc_hash(id.sender);
    h ^= loc_hash(id.receiver) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
    const std::size_t dir =
        static_cast<std::size_t>(id.o1 + 1) * 9 +
        static_cast<std::size_t>(id.o2 + 1) * 3 +
        static_cast<std::size_t>(id.o3 + 1) +
        (static_cast<std::size_t>(id.kind) << 5);
    h ^= dir + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

RankWorld::RankWorld(int nranks, bool concurrent)
    : nranks_(nranks), concurrent_(concurrent)
{
    require(nranks >= 1, "RankWorld needs at least one rank");
    coll_slots_.assign(static_cast<std::size_t>(nranks), nullptr);
}

void
RankWorld::isend(const ChannelId& channel, int src, int dst,
                 std::vector<double> payload, double bytes)
{
    require(src >= 0 && src < nranks_ && dst >= 0 && dst < nranks_,
            "isend rank out of range: ", src, " -> ", dst);
    LockGuard lock(mutex_);
    if (src == dst) {
        ++traffic_.localMessages;
        traffic_.localBytes += bytes;
    } else {
        ++traffic_.remoteMessages;
        traffic_.remoteBytes += bytes;
    }
    if (channel.kind != ChannelKind::Block) {
        ++traffic_.boundaryMessages;
        traffic_.boundaryBytes += bytes;
    }
    mailboxes_[channel].push_back({src, dst, std::move(payload), bytes});
    ++pending_total_;
}

bool
RankWorld::iprobe(const ChannelId& channel)
{
    LockGuard lock(mutex_);
    ++traffic_.probes;
    auto it = mailboxes_.find(channel);
    return it != mailboxes_.end() && !it->second.empty();
}

std::optional<Message>
RankWorld::receive(const ChannelId& channel)
{
    LockGuard lock(mutex_);
    ++traffic_.tests;
    auto it = mailboxes_.find(channel);
    if (it == mailboxes_.end() || it->second.empty())
        return std::nullopt;
    Message msg = std::move(it->second.front());
    it->second.pop_front();
    --pending_total_;
    return msg;
}

std::size_t
RankWorld::discardPending(const ChannelId& channel)
{
    LockGuard lock(mutex_);
    auto it = mailboxes_.find(channel);
    if (it == mailboxes_.end())
        return 0;
    const std::size_t dropped = it->second.size();
    it->second.clear();
    pending_total_ -= dropped;
    return dropped;
}

std::size_t
RankWorld::pendingCount() const
{
    LockGuard lock(mutex_);
    return pending_total_;
}

void
RankWorld::allGather(double bytes_per_rank)
{
    LockGuard lock(mutex_);
    ++traffic_.allGathers;
    traffic_.collectiveBytes += bytes_per_rank * nranks_;
}

void
RankWorld::allReduce(double bytes)
{
    LockGuard lock(mutex_);
    ++traffic_.allReduces;
    traffic_.collectiveBytes += bytes;
}

void
RankWorld::accountTransfer(int src, int dst, double bytes)
{
    LockGuard lock(mutex_);
    if (src == dst) {
        ++traffic_.localMessages;
        traffic_.localBytes += bytes;
    } else {
        ++traffic_.remoteMessages;
        traffic_.remoteBytes += bytes;
    }
}

void
RankWorld::accountCollective(double bytes, CollAccount account)
{
    LockGuard lock(mutex_);
    switch (account) {
      case CollAccount::Gather:
        ++traffic_.allGathers;
        traffic_.collectiveBytes += bytes * nranks_;
        break;
      case CollAccount::Reduce:
        ++traffic_.allReduces;
        traffic_.collectiveBytes += bytes;
        break;
      case CollAccount::None:
        break;
    }
}

void
RankWorld::barrier(int rank)
{
    if (!concurrent_)
        return;
    rendezvous(
        rank, nullptr,
        [](const std::vector<const void*>&) -> std::shared_ptr<void> {
            return nullptr;
        },
        0.0, CollAccount::None);
}

double
RankWorld::allReduceValue(int rank, double value, CollOp op,
                          double bytes)
{
    if (!concurrent_) {
        accountCollective(bytes, CollAccount::Reduce);
        return value;
    }
    std::vector<double> mine{value};
    const std::vector<double> all =
        allGatherVec(rank, std::move(mine), bytes, CollAccount::Reduce);
    double result = all.front();
    for (std::size_t r = 1; r < all.size(); ++r) {
        switch (op) {
          case CollOp::Min:
            result = all[r] < result ? all[r] : result;
            break;
          case CollOp::Max:
            result = all[r] > result ? all[r] : result;
            break;
          case CollOp::Sum:
            result += all[r];
            break;
        }
    }
    return result;
}

void
RankWorld::markFailed(const std::string& reason)
{
    // Record the reason before publishing failed_: a waiter that
    // observes failed_ always re-acquires coll_mutex_ (condvar wakeup
    // or the next failureReason() call) before reading the string, so
    // it sees this write.
    {
        LockGuard lock(coll_mutex_);
        if (failure_reason_.empty() && !reason.empty())
            failure_reason_ = reason;
        failed_.store(true);
        coll_cv_.notify_all();
    }
}

std::string
RankWorld::failureReason() const
{
    LockGuard lock(coll_mutex_);
    return failureReasonLocked();
}

std::string
RankWorld::failureReasonLocked() const
{
    return failure_reason_.empty() ? std::string("a peer rank failed")
                                   : failure_reason_;
}

std::shared_ptr<void>
RankWorld::rendezvous(int rank, const void* contribution,
                      Combiner combine, double bytes,
                      CollAccount account)
{
    require(rank >= 0 && rank < nranks_,
            "collective rank out of range: ", rank);
    // The span covers arrival through release: on the last-arriving
    // rank it is nearly instant, on early ranks it IS the rendezvous
    // wait — the per-rank imbalance picture in the timeline.
    TraceSpan span("Rendezvous", TraceCat::Comm, rank);
    UniqueLock lock(coll_mutex_);
    if (failed_.load())
        panic("collective entered after a rank failed: ",
              failureReasonLocked());
    require(coll_slots_[rank] == nullptr,
            "rank ", rank, " entered a collective twice");
    const std::uint64_t my_generation = coll_generation_;
    coll_slots_[rank] = contribution;
    if (++coll_arrived_ == nranks_) {
        coll_result_ = combine(coll_slots_);
        coll_slots_.assign(static_cast<std::size_t>(nranks_), nullptr);
        coll_arrived_ = 0;
        ++coll_generation_;
        accountCollective(bytes, account);
        coll_cv_.notify_all();
    } else {
        // Explicit predicate loop: the analysis treats a predicate
        // lambda as a separate unannotated function, so guarded reads
        // stay in this scope where the capability is visibly held.
        while (coll_generation_ == my_generation && !failed_.load())
            coll_cv_.wait(lock);
        // Abort only if the collective genuinely cannot complete. If
        // the generation advanced, every rank contributed and the
        // result is ready — a failure flag raised by a peer *after* it
        // left this collective must not retroactively void it (that
        // would nondeterministically drop e.g. a checkpoint capture
        // that already gathered). The failure still stops this rank at
        // its next collective entry.
        if (coll_generation_ == my_generation)
            panic("collective aborted: ", failureReasonLocked());
    }
    // Copy the shared handle under the lock; a next-generation
    // collective cannot complete (and overwrite the result) until this
    // rank leaves, because it is one of the required participants.
    return coll_result_;
}

} // namespace vibe
