/**
 * @file rank_world.hpp
 * Simulated MPI world.
 *
 * All ranks live in one process; messages are routed through per-channel
 * mailboxes with non-blocking send / probe / receive semantics matching
 * the subset of MPI Parthenon uses (Isend, Iprobe, Test, AllGather,
 * AllReduce). Local (same-rank) and remote (cross-rank) traffic is
 * accounted separately, as are collective invocations — these counters
 * drive the communication and memory terms of the performance model
 * (paper §IV-E, Fig. 10).
 *
 * Two operating modes share one interface:
 *
 * - Modeled (the default): a single driver steps every block and the
 *   collectives are accounting-only — `allReduceValue` and
 *   `allGatherVec` return their input untouched after bumping the
 *   traffic counters, exactly the pre-sharding behavior.
 * - Concurrent (`concurrent = true`): one driver thread per rank. The
 *   collectives become real rendezvous operations — every rank blocks
 *   until all `nranks` contributions arrived, the contributions are
 *   combined deterministically (rank order), and all ranks receive the
 *   identical result. This is what makes the rank-sharded execution
 *   path a measurement rather than a model (§V).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mesh/logical_location.hpp"
#include "util/logging.hpp"
#include "util/thread_safety.hpp"

namespace vibe {

/** What a point-to-point channel carries. */
enum class ChannelKind : std::uint8_t
{
    Bounds = 0, ///< Ghost-cell boundary buffers.
    Flux = 1,   ///< Flux-correction faces.
    Block = 2,  ///< Whole-block state (migration, remote restriction).
    /** All Bounds payloads between one (src, dst) rank pair, fused
     *  into a single message with an offset directory (BoundaryPlan). */
    CoalescedBounds = 3,
    /** All Flux payloads between one (src, dst) rank pair, fused. */
    CoalescedFlux = 4,
};

/**
 * Stable identity of a directed communication channel: (sender block,
 * receiver block, direction as seen from the receiver, payload kind).
 * Mirrors Parthenon's boundary-buffer tag map keys.
 */
struct ChannelId
{
    LogicalLocation sender;
    LogicalLocation receiver;
    std::int8_t o1 = 0, o2 = 0, o3 = 0;
    ChannelKind kind = ChannelKind::Bounds;

    friend bool operator==(const ChannelId&, const ChannelId&) = default;
};

struct ChannelIdHash
{
    std::size_t operator()(const ChannelId& id) const;
};

/**
 * Mailbox channel for one coalesced (src rank -> dst rank) boundary
 * message. Rank indices are encoded in the location fields at level -1,
 * which no real block can occupy (tree levels are >= 0), so coalesced
 * channels can never collide with per-face or Block channels.
 */
inline ChannelId
coalescedChannelId(int src, int dst, ChannelKind kind)
{
    ChannelId id;
    id.sender.level = -1;
    id.sender.lx1 = src;
    id.receiver.level = -1;
    id.receiver.lx1 = dst;
    id.kind = kind;
    return id;
}

/** One in-flight message. */
struct Message
{
    int src = 0, dst = 0;
    std::vector<double> payload; ///< Real data (empty in counting mode).
    double bytes = 0;            ///< Modeled wire size.
};

/** Cumulative traffic counters consumed by the performance model. */
struct Traffic
{
    std::uint64_t localMessages = 0;
    std::uint64_t remoteMessages = 0;
    double localBytes = 0;
    double remoteBytes = 0;
    std::uint64_t allGathers = 0;
    std::uint64_t allReduces = 0;
    double collectiveBytes = 0;
    std::uint64_t probes = 0;
    std::uint64_t tests = 0;
    /**
     * Boundary-payload messages (Bounds/Flux and their coalesced
     * forms; Block migration traffic excluded) and their modeled
     * bytes. Both are subsets of the local/remote totals above — they
     * isolate the ghost-exchange term the BoundaryPlan coalesces, so
     * benches can report messagesPerCycle / boundaryBytesPerCycle for
     * the per-face and fused paths side by side.
     */
    std::uint64_t boundaryMessages = 0;
    double boundaryBytes = 0;

    std::uint64_t totalMessages() const
    {
        return localMessages + remoteMessages;
    }
    double totalBytes() const { return localBytes + remoteBytes; }
};

/**
 * Wall seconds any wait on peer-rank progress (mailbox polls, stage
 * graphs, migration receives, remote restrictions) tolerates before
 * declaring the team stuck. One shared policy constant so every path
 * that must unwind together on a rank failure aborts consistently.
 */
inline constexpr double kPeerWaitSeconds = 120.0;

/** Combine operation for value-carrying collectives. */
enum class CollOp { Min, Max, Sum };

/** How a collective is charged to the traffic counters. */
enum class CollAccount
{
    Gather, ///< allGathers++, collectiveBytes += bytes * nranks.
    Reduce, ///< allReduces++, collectiveBytes += bytes.
    None,   ///< Pure synchronization (barrier), not charged.
};

/**
 * The simulated communicator. Delivery is immediate (a message becomes
 * probe-able as soon as it is sent); the *cost* of transport is applied
 * later by the performance model, which is the right decomposition for
 * a single-node characterization where MPI progress is driven by
 * polling (§II-D).
 *
 * Point-to-point operations and collectives are internally locked so
 * the task-graph executor can issue sends and probes from concurrent
 * per-block tasks; `traffic()` must only be read at quiescent points
 * (no exchange in flight), as the driver does between phases.
 */
class RankWorld
{
  public:
    /**
     * @param concurrent Real rendezvous collectives (one driver thread
     *        per rank must participate); false keeps the modeled
     *        accounting-only behavior, bit for bit.
     */
    explicit RankWorld(int nranks, bool concurrent = false);

    int nranks() const { return nranks_; }
    /** True when collectives are real rendezvous operations. */
    bool concurrent() const { return concurrent_; }

    /** Non-blocking send on `channel` from rank `src` to rank `dst`. */
    void isend(const ChannelId& channel, int src, int dst,
               std::vector<double> payload, double bytes);

    /** MPI_Iprobe analogue: is a message pending on `channel`? */
    bool iprobe(const ChannelId& channel);

    /** MPI_Test + receive: take the pending message, if any. */
    std::optional<Message> receive(const ChannelId& channel);

    /**
     * Silently drop any messages pending on `channel` (no traffic is
     * accounted). Used to clear stale deliveries left behind by an
     * exchange that threw mid-cycle.
     * @return Number of messages discarded.
     */
    std::size_t discardPending(const ChannelId& channel);

    /** Messages still undelivered (should be 0 between phases). */
    std::size_t pendingCount() const;

    /** AllGather of `bytes_per_rank` contributed by every rank. */
    void allGather(double bytes_per_rank);

    /** AllReduce over a `bytes`-sized payload. */
    void allReduce(double bytes);

    /**
     * Account a bulk point-to-point transfer (block redistribution)
     * without queuing a deliverable message.
     */
    void accountTransfer(int src, int dst, double bytes);

    // --- Real collectives (rendezvous in concurrent mode) ------------

    /**
     * Block until every rank arrived. Accounting-only no-op in modeled
     * mode.
     */
    void barrier(int rank);

    /**
     * AllReduce of one double: every rank contributes `value`; all
     * receive the rank-order fold under `op` (exact for Min/Max,
     * deterministic for Sum). Modeled mode: accounts an allReduce of
     * `bytes` and returns `value` unchanged — the historical behavior.
     */
    double allReduceValue(int rank, double value, CollOp op,
                          double bytes);

    /**
     * AllGather of a per-rank vector; the result is the rank-order
     * concatenation, identical on every rank. Modeled mode: accounts
     * and returns `mine` unchanged. `T` must be trivially copyable.
     */
    template <typename T>
    std::vector<T> allGatherVec(int rank, std::vector<T> mine,
                                double bytes, CollAccount account);

    /**
     * Mark the world failed (a peer rank threw). Wakes every rendezvous
     * waiter with an error so no rank hangs on a dead peer; polling
     * loops should also consult failed(). The first non-empty `reason`
     * (normally the failing rank's original exception message) wins and
     * is echoed by failureReason() and every abort thrown by waiters.
     */
    void markFailed(const std::string& reason);
    void markFailed() { markFailed(std::string()); }
    bool failed() const { return failed_.load(); }

    /**
     * The recorded failure cause, or a generic "a peer rank failed"
     * when none was supplied. Meaningful only after failed() is true.
     */
    std::string failureReason() const;

    /**
     * Snapshot of the cumulative traffic counters, taken under the
     * mailbox mutex so it is consistent even while peer-rank threads
     * are mid-exchange (the counters themselves are only meaningful at
     * quiescent points, but reading them must never be a data race).
     */
    Traffic traffic() const
    {
        LockGuard lock(mutex_);
        return traffic_;
    }
    void resetTraffic()
    {
        LockGuard lock(mutex_);
        traffic_ = Traffic{};
    }

  private:
    using Combiner =
        std::shared_ptr<void> (*)(const std::vector<const void*>&);

    /**
     * Generation rendezvous: deposit `contribution`, wait for all
     * ranks; the last arrival runs `combine` over the rank-ordered
     * contribution slots and publishes the shared result.
     */
    std::shared_ptr<void> rendezvous(int rank, const void* contribution,
                                     Combiner combine, double bytes,
                                     CollAccount account);

    void accountCollective(double bytes, CollAccount account);

    int nranks_;
    bool concurrent_;
    /**
     * Mailbox mutex. Lock order: a thread holding coll_mutex_ may take
     * mutex_ (the last rendezvous arrival accounts its collective);
     * never the reverse.
     */
    mutable Mutex mutex_ VIBE_ACQUIRED_AFTER(coll_mutex_);
    // vibe-lint: allow(ordered-containers) mailboxes_ is never
    // iterated — delivery order comes from the per-channel FIFO deques,
    // so the map's hash order cannot feed message order.
    std::unordered_map<ChannelId, std::deque<Message>, ChannelIdHash>
        mailboxes_ VIBE_GUARDED_BY(mutex_);
    std::size_t pending_total_ VIBE_GUARDED_BY(mutex_) = 0;
    Traffic traffic_ VIBE_GUARDED_BY(mutex_);

    /** failureReason() with coll_mutex_ already held (rendezvous). */
    std::string failureReasonLocked() const VIBE_REQUIRES(coll_mutex_);

    // Rendezvous state (own lock: waiters must not stall the mailbox).
    mutable Mutex coll_mutex_;
    CondVar coll_cv_;
    std::vector<const void*> coll_slots_ VIBE_GUARDED_BY(coll_mutex_);
    std::shared_ptr<void> coll_result_ VIBE_GUARDED_BY(coll_mutex_);
    int coll_arrived_ VIBE_GUARDED_BY(coll_mutex_) = 0;
    std::uint64_t coll_generation_ VIBE_GUARDED_BY(coll_mutex_) = 0;
    std::atomic<bool> failed_{false};
    std::string failure_reason_ VIBE_GUARDED_BY(coll_mutex_);
};

template <typename T>
std::vector<T>
RankWorld::allGatherVec(int rank, std::vector<T> mine, double bytes,
                        CollAccount account)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "allGatherVec payloads must be trivially copyable");
    if (!concurrent_) {
        accountCollective(bytes, account);
        return mine;
    }
    const Combiner combine =
        [](const std::vector<const void*>& slots) -> std::shared_ptr<void> {
        auto out = std::make_shared<std::vector<T>>();
        for (const void* slot : slots) {
            const auto& v = *static_cast<const std::vector<T>*>(slot);
            out->insert(out->end(), v.begin(), v.end());
        }
        return out;
    };
    std::shared_ptr<void> result =
        rendezvous(rank, &mine, combine, bytes, account);
    return std::vector<T>(
        *std::static_pointer_cast<std::vector<T>>(result));
}

} // namespace vibe
