/**
 * @file rank_world.hpp
 * Simulated MPI world.
 *
 * All ranks live in one process; messages are routed through per-channel
 * mailboxes with non-blocking send / probe / receive semantics matching
 * the subset of MPI Parthenon uses (Isend, Iprobe, Test, AllGather,
 * AllReduce). Local (same-rank) and remote (cross-rank) traffic is
 * accounted separately, as are collective invocations — these counters
 * drive the communication and memory terms of the performance model
 * (paper §IV-E, Fig. 10).
 */
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mesh/logical_location.hpp"

namespace vibe {

/** What a point-to-point channel carries. */
enum class ChannelKind : std::uint8_t { Bounds = 0, Flux = 1 };

/**
 * Stable identity of a directed communication channel: (sender block,
 * receiver block, direction as seen from the receiver, payload kind).
 * Mirrors Parthenon's boundary-buffer tag map keys.
 */
struct ChannelId
{
    LogicalLocation sender;
    LogicalLocation receiver;
    std::int8_t o1 = 0, o2 = 0, o3 = 0;
    ChannelKind kind = ChannelKind::Bounds;

    friend bool operator==(const ChannelId&, const ChannelId&) = default;
};

struct ChannelIdHash
{
    std::size_t operator()(const ChannelId& id) const;
};

/** One in-flight message. */
struct Message
{
    int src = 0, dst = 0;
    std::vector<double> payload; ///< Real data (empty in counting mode).
    double bytes = 0;            ///< Modeled wire size.
};

/** Cumulative traffic counters consumed by the performance model. */
struct Traffic
{
    std::uint64_t localMessages = 0;
    std::uint64_t remoteMessages = 0;
    double localBytes = 0;
    double remoteBytes = 0;
    std::uint64_t allGathers = 0;
    std::uint64_t allReduces = 0;
    double collectiveBytes = 0;
    std::uint64_t probes = 0;
    std::uint64_t tests = 0;

    std::uint64_t totalMessages() const
    {
        return localMessages + remoteMessages;
    }
    double totalBytes() const { return localBytes + remoteBytes; }
};

/**
 * The simulated communicator. Delivery is immediate (a message becomes
 * probe-able as soon as it is sent); the *cost* of transport is applied
 * later by the performance model, which is the right decomposition for
 * a single-node characterization where MPI progress is driven by
 * polling (§II-D).
 *
 * Point-to-point operations and collectives are internally locked so
 * the task-graph executor can issue sends and probes from concurrent
 * per-block tasks; `traffic()` must only be read at quiescent points
 * (no exchange in flight), as the driver does between phases.
 */
class RankWorld
{
  public:
    explicit RankWorld(int nranks);

    int nranks() const { return nranks_; }

    /** Non-blocking send on `channel` from rank `src` to rank `dst`. */
    void isend(const ChannelId& channel, int src, int dst,
               std::vector<double> payload, double bytes);

    /** MPI_Iprobe analogue: is a message pending on `channel`? */
    bool iprobe(const ChannelId& channel);

    /** MPI_Test + receive: take the pending message, if any. */
    std::optional<Message> receive(const ChannelId& channel);

    /**
     * Silently drop any messages pending on `channel` (no traffic is
     * accounted). Used to clear stale deliveries left behind by an
     * exchange that threw mid-cycle.
     * @return Number of messages discarded.
     */
    std::size_t discardPending(const ChannelId& channel);

    /** Messages still undelivered (should be 0 between phases). */
    std::size_t pendingCount() const;

    /** AllGather of `bytes_per_rank` contributed by every rank. */
    void allGather(double bytes_per_rank);

    /** AllReduce over a `bytes`-sized payload. */
    void allReduce(double bytes);

    /**
     * Account a bulk point-to-point transfer (block redistribution)
     * without queuing a deliverable message.
     */
    void accountTransfer(int src, int dst, double bytes);

    const Traffic& traffic() const { return traffic_; }
    void resetTraffic() { traffic_ = Traffic{}; }

  private:
    int nranks_;
    mutable std::mutex mutex_;
    std::unordered_map<ChannelId, std::deque<Message>, ChannelIdHash>
        mailboxes_;
    std::size_t pending_total_ = 0;
    Traffic traffic_;
};

} // namespace vibe
