/**
 * @file obs_config.hpp
 * Observability configuration: the `<obs>` deck block and its
 * environment fallbacks. Tracing and metrics are independent — either
 * path may be set alone — and both default to off, which must cost
 * nothing (see trace.hpp).
 */
#pragma once

#include <string>

namespace vibe {

class ParameterInput;

struct ObsConfig
{
    /** Chrome trace-event JSON destination ("" = tracing off). */
    std::string tracePath;
    /** Per-cycle JSONL heartbeat destination ("" = metrics off). */
    std::string metricsPath;

    bool traceEnabled() const { return !tracePath.empty(); }
    bool metricsEnabled() const { return !metricsPath.empty(); }
    bool any() const { return traceEnabled() || metricsEnabled(); }

    /**
     * Read `<obs> trace` / `<obs> metrics`; a knob absent from the
     * deck falls back to the `VIBE_TRACE` / `VIBE_METRICS` environment
     * variables (deck wins, mirroring the `<exec>` env knobs).
     */
    static ObsConfig fromParams(const ParameterInput& pin);

    /** Environment-only configuration (decks bypass the harness). */
    static ObsConfig fromEnv();
};

/**
 * Build identity for the metrics run footer: the `git describe`
 * captured at configure time (CMake's VIBE_GIT_DESCRIBE), or
 * "unknown" outside a git checkout.
 */
const char* buildDescribe();

} // namespace vibe
