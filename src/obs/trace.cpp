/**
 * @file trace.cpp
 * TraceRecorder implementation (see trace.hpp for the design).
 */
#include "obs/trace.hpp"

#include <algorithm>

#include "exec/thread_local_registry.hpp"

namespace vibe {

std::atomic<bool> TraceRecorder::enabled_{false};

const char*
traceCatName(TraceCat cat)
{
    switch (cat) {
    case TraceCat::Compute:
        return "compute";
    case TraceCat::Comm:
        return "comm";
    case TraceCat::Kernel:
        return "kernel";
    case TraceCat::Driver:
        return "driver";
    case TraceCat::Io:
        return "io";
    }
    return "unknown";
}

TraceRecorder&
TraceRecorder::instance()
{
    // Leaked on purpose (~TraceRecorder is deleted): span sites may
    // fire from detached drain threads during process teardown, after
    // static destructors would have run.
    static TraceRecorder* recorder = new TraceRecorder();
    return *recorder;
}

TraceRecorder::TraceRecorder()
    : epoch_(Clock::now()),
      buffers_(new ThreadLocalRegistry<ThreadBuffer>())
{
}

void
TraceRecorder::start()
{
    buffers_->forEach([](ThreadBuffer& buf) {
        buf.events.clear();
        buf.dropped = 0;
    });
    epoch_ = Clock::now();
    enabled_.store(true, std::memory_order_release);
}

void
TraceRecorder::stop()
{
    enabled_.store(false, std::memory_order_release);
}

std::vector<TraceEvent>
TraceRecorder::drain()
{
    stop();
    std::vector<TraceEvent> all;
    buffers_->forEach([&all](ThreadBuffer& buf) {
        all.insert(all.end(), buf.events.begin(), buf.events.end());
        buf.events.clear();
        buf.events.shrink_to_fit();
    });
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         if (a.tsUs != b.tsUs)
                             return a.tsUs < b.tsUs;
                         return a.tid < b.tid;
                     });
    return all;
}

std::uint64_t
TraceRecorder::dropped() const
{
    std::uint64_t total = 0;
    buffers_->forEach(
        [&total](ThreadBuffer& buf) { total += buf.dropped; });
    return total;
}

TraceRecorder::ThreadBuffer&
TraceRecorder::localBuffer()
{
    ThreadBuffer& buf = buffers_->local();
    if (buf.tid < 0) {
        buf.tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
        buf.events.reserve(kReserveEvents);
    }
    return buf;
}

int
TraceRecorder::threadTid()
{
    return localBuffer().tid;
}

void
TraceRecorder::record(TraceEvent event)
{
    ThreadBuffer& buf = localBuffer();
    if (buf.events.size() >= kMaxEvents) {
        ++buf.dropped;
        return;
    }
    // Grow in fixed chunks so steady-state appends never reallocate:
    // reserving ahead of capacity keeps the amortized doubling out of
    // the recording path once warm.
    if (buf.events.size() == buf.events.capacity())
        buf.events.reserve(buf.events.capacity() + kReserveEvents);
    event.tid = buf.tid;
    buf.events.push_back(event);
}

void
TraceRecorder::recordSpan(std::string_view name, TraceCat cat,
                          int rank, std::int64_t cycle,
                          std::string_view phase,
                          Clock::time_point begin, double seconds,
                          std::uint16_t flags, std::int64_t gid)
{
    TraceEvent event;
    event.kind = TraceEvent::Kind::Span;
    event.cat = cat;
    event.flags = flags;
    event.rank = rank;
    event.cycle = cycle;
    event.gid = gid;
    event.tsUs = usAt(begin);
    event.durUs = seconds * 1.0e6;
    detail::copyField(event.name, name);
    detail::copyField(event.phase, phase);
    record(event);
}

} // namespace vibe
