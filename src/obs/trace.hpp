/**
 * @file trace.hpp
 * Timeline tracing: low-overhead span/instant/counter event recording.
 *
 * The aggregated kernel counters (KernelProfiler) answer "how much
 * work ran"; this recorder answers "when, where, and alongside what" —
 * the timeline questions behind task-graph overlap, fused-boundary
 * coalescing and async checkpoint draining that per-phase aggregates
 * cannot show. Events are recorded into per-thread append buffers
 * (same owner-thread + per-thread-buffer discipline as KernelProfiler:
 * the hot path never takes a lock) and drained at a quiescent point
 * into one timestamp-sorted stream that src/io/trace_writer.cpp
 * exports as Chrome trace-event JSON (Perfetto / chrome://tracing):
 * one process row per simulated rank, one thread row per pool thread.
 *
 * Cost when tracing is off: every instrumentation site checks one
 * relaxed atomic load and does nothing else — no clock read, no
 * buffer touch, no allocation — so a tracing-off run is bitwise
 * identical to (and within run-to-run noise of) an uninstrumented
 * build. Cost when on: one steady_clock read per span edge and one
 * fixed-size struct append into a pre-reserved per-thread buffer
 * (no allocation until a buffer chunk fills, which re-reserves in
 * large steps).
 *
 * Event names are copied into fixed-size arrays at record time, so
 * callers may pass transient strings (task names) without lifetime
 * coupling; names longer than the field are truncated, never dropped.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

namespace vibe {

/** Coarse event classification (the Chrome trace "cat" field). */
enum class TraceCat : std::uint8_t
{
    Compute, ///< Interior kernel work executed by a task.
    Comm,    ///< Boundary send/poll/set, collectives, migration.
    Kernel,  ///< A parFor / fused-pack kernel launch.
    Driver,  ///< Cycle structure: step, remesh, load balance, dt.
    Io,      ///< Checkpoint capture/drain, trace/metrics output.
};

/** Chrome trace "cat" string for a category. */
const char* traceCatName(TraceCat cat);

/** One recorded event (POD: fixed-size, no owning pointers). */
struct TraceEvent
{
    enum class Kind : std::uint8_t
    {
        Span,    ///< Complete event ("X"): [ts, ts + dur].
        Instant, ///< Instant event ("i") at ts.
        Counter, ///< Counter sample ("C") at ts with `value`.
    };

    /** A span attempt that returned Iterate (a fruitless poll probe);
     *  retry counts are timing-dependent, so determinism checks on
     *  event counts filter these out. */
    static constexpr std::uint16_t kPollRetry = 1u << 0;

    Kind kind = Kind::Span;
    TraceCat cat = TraceCat::Driver;
    std::uint16_t flags = 0;
    int rank = 0;             ///< Simulated rank (Chrome pid row).
    int tid = 0;              ///< Recording thread (Chrome tid row).
    std::int64_t cycle = -1;  ///< Evolution cycle, -1 outside cycles.
    std::int64_t gid = -1;    ///< Block gid where applicable.
    double tsUs = 0;          ///< Microseconds since recorder start.
    double durUs = 0;         ///< Span duration (0 for non-spans).
    double value = 0;         ///< Counter value.
    char name[48] = {};
    char phase[24] = {};      ///< Graph/phase label ("" = none).

    std::string_view nameView() const { return {name}; }
    std::string_view phaseView() const { return {phase}; }
};

namespace detail {

/** Truncating copy into a fixed char field (always NUL-terminated). */
template <std::size_t N>
inline void
copyField(char (&dst)[N], std::string_view src)
{
    const std::size_t n = src.size() < N - 1 ? src.size() : N - 1;
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
}

} // namespace detail

template <typename T>
class ThreadLocalRegistry;

/**
 * Process-wide event sink. A singleton rather than a plumbed
 * dependency: span sites live in every layer (exec, driver, comm, io)
 * and tracing is a run-scoped mode, not per-component state. start()
 * and drain() must be called from quiescent points (no kernels or
 * rank threads in flight), exactly like KernelProfiler::sync.
 */
class TraceRecorder
{
  public:
    using Clock = std::chrono::steady_clock;

    static TraceRecorder& instance();

    /** The per-site guard: one relaxed atomic load. */
    static bool enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Reset all thread buffers, restart the epoch, and enable
     * recording. Quiescent-point only.
     */
    void start();

    /** Disable recording (buffers keep their events until drain). */
    void stop();

    /**
     * Collect every thread's events into one stream sorted by
     * (tsUs, tid), clearing the buffers. Stops recording first.
     * Quiescent-point only.
     */
    std::vector<TraceEvent> drain();

    /** Events discarded because a thread hit its hard buffer cap. */
    std::uint64_t dropped() const;

    /** Microseconds since the current epoch. */
    double nowUs() const { return usSince(epoch_); }

    double usSince(Clock::time_point t) const
    {
        return std::chrono::duration<double, std::micro>(Clock::now() -
                                                         t)
            .count();
    }

    double usAt(Clock::time_point t) const
    {
        return std::chrono::duration<double, std::micro>(t - epoch_)
            .count();
    }

    /** Append one event (hot path: owner-thread buffer, no lock). */
    void record(TraceEvent event);

    /**
     * Record a completed span from explicit clock points (for call
     * sites that already timed the interval, e.g. task execution).
     */
    void recordSpan(std::string_view name, TraceCat cat, int rank,
                    std::int64_t cycle, std::string_view phase,
                    Clock::time_point begin, double seconds,
                    std::uint16_t flags = 0, std::int64_t gid = -1);

    /** This thread's stable row id (assigned on first record). */
    int threadTid();

    /** Initial per-thread buffer reservation (events). */
    static constexpr std::size_t kReserveEvents = 1u << 14;
    /** Hard per-thread cap; beyond it events are counted as dropped. */
    static constexpr std::size_t kMaxEvents = 1u << 22;

  private:
    TraceRecorder();
    ~TraceRecorder() = delete;

    struct ThreadBuffer
    {
        int tid = -1;
        std::uint64_t dropped = 0;
        std::vector<TraceEvent> events;
    };

    ThreadBuffer& localBuffer();

    static std::atomic<bool> enabled_;
    std::atomic<int> next_tid_{0};
    Clock::time_point epoch_;
    ThreadLocalRegistry<ThreadBuffer>* buffers_;
};

/**
 * RAII span. Constructing with tracing off costs one atomic load;
 * destruction then does nothing. The name/phase views must stay valid
 * until the constructor returns (they are copied immediately).
 */
class TraceSpan
{
  public:
    TraceSpan(std::string_view name, TraceCat cat, int rank,
              std::int64_t cycle = -1, std::string_view phase = {},
              std::int64_t gid = -1)
    {
        if (!TraceRecorder::enabled())
            return;
        active_ = true;
        event_.kind = TraceEvent::Kind::Span;
        event_.cat = cat;
        event_.rank = rank;
        event_.cycle = cycle;
        event_.gid = gid;
        detail::copyField(event_.name, name);
        detail::copyField(event_.phase, phase);
        begin_ = TraceRecorder::Clock::now();
    }

    ~TraceSpan()
    {
        if (!active_)
            return;
        TraceRecorder& recorder = TraceRecorder::instance();
        event_.tsUs = recorder.usAt(begin_);
        event_.durUs = recorder.usSince(begin_);
        recorder.record(event_);
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

  private:
    bool active_ = false;
    TraceRecorder::Clock::time_point begin_;
    TraceEvent event_;
};

/** Record an instant event (a point-in-time marker). */
inline void
traceInstant(std::string_view name, TraceCat cat, int rank,
             std::int64_t cycle = -1, double value = 0,
             std::int64_t gid = -1)
{
    if (!TraceRecorder::enabled())
        return;
    TraceRecorder& recorder = TraceRecorder::instance();
    TraceEvent event;
    event.kind = TraceEvent::Kind::Instant;
    event.cat = cat;
    event.rank = rank;
    event.cycle = cycle;
    event.gid = gid;
    event.value = value;
    detail::copyField(event.name, name);
    event.tsUs = recorder.nowUs();
    recorder.record(event);
}

/** Record a counter sample (its own Chrome track per name). */
inline void
traceCounter(std::string_view name, int rank, std::int64_t cycle,
             double value)
{
    if (!TraceRecorder::enabled())
        return;
    TraceRecorder& recorder = TraceRecorder::instance();
    TraceEvent event;
    event.kind = TraceEvent::Kind::Counter;
    event.cat = TraceCat::Driver;
    event.rank = rank;
    event.cycle = cycle;
    event.value = value;
    detail::copyField(event.name, name);
    event.tsUs = recorder.nowUs();
    recorder.record(event);
}

} // namespace vibe
