/**
 * @file metrics.hpp
 * MetricsRegistry: named counters and gauges with deterministic
 * (lexicographic) emission order.
 *
 * The run facts a heartbeat line needs are today scattered across
 * CycleStats, KernelProfiler, MemoryTracker, RankWorld::traffic() and
 * the checkpoint writer; the registry is the single funnel those all
 * pour into so src/io/metrics_writer.cpp can serialize one JSON
 * object per cycle without knowing any producer. Names use dotted
 * paths ("boundary.messages", "pool.hits") — the JSONL schema table
 * in the README is generated from the same names.
 *
 * Not thread-safe: a registry is filled and emitted at serial points
 * (end of doCycle on the driver thread, end of run on the harness
 * thread), never from kernels.
 */
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace vibe {

class MetricsRegistry
{
  public:
    /** Set a gauge (overwrites). */
    void set(std::string_view name, double value)
    {
        values_[std::string(name)] = value;
    }

    /** Bump a counter (creates at delta). */
    void add(std::string_view name, double delta)
    {
        values_[std::string(name)] += delta;
    }

    /** Current value (0 if never set). */
    double get(std::string_view name) const
    {
        auto it = values_.find(std::string(name));
        return it != values_.end() ? it->second : 0.0;
    }

    bool has(std::string_view name) const
    {
        return values_.count(std::string(name)) > 0;
    }

    void clear() { values_.clear(); }
    std::size_t size() const { return values_.size(); }

    /** Name -> value, lexicographic (the JSONL field order). */
    const std::map<std::string, double>& values() const
    {
        return values_;
    }

  private:
    std::map<std::string, double> values_;
};

} // namespace vibe
