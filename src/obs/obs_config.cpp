/**
 * @file obs_config.cpp
 * ObsConfig readers (deck + environment) and build identity.
 */
#include "obs/obs_config.hpp"

#include <cstdlib>

#include "util/parameter_input.hpp"

namespace vibe {

namespace {

std::string
envString(const char* name)
{
    const char* value = std::getenv(name);
    return value ? std::string(value) : std::string();
}

} // namespace

ObsConfig
ObsConfig::fromParams(const ParameterInput& pin)
{
    ObsConfig config = fromEnv();
    config.tracePath = pin.getString("obs", "trace", config.tracePath);
    config.metricsPath =
        pin.getString("obs", "metrics", config.metricsPath);
    return config;
}

ObsConfig
ObsConfig::fromEnv()
{
    ObsConfig config;
    config.tracePath = envString("VIBE_TRACE");
    config.metricsPath = envString("VIBE_METRICS");
    return config;
}

const char*
buildDescribe()
{
#ifdef VIBE_GIT_DESCRIBE
    return VIBE_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

} // namespace vibe
