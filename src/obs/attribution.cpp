/**
 * @file attribution.cpp
 * Run-total idle/critical-path attribution from cycle histories.
 */
#include "obs/attribution.hpp"

#include "driver/evolution_driver.hpp"

namespace vibe {

IdleSummary
attributeIdle(const std::vector<CycleStats>& history)
{
    IdleSummary summary;
    for (const CycleStats& c : history) {
        summary.taskWallSeconds += c.taskWallSeconds;
        summary.busySeconds += c.busySeconds;
        summary.idleSeconds += c.idleSeconds;
        summary.criticalPathSeconds += c.criticalPathSeconds;
        if (summary.rankIdleSeconds.size() < c.rankIdleSeconds.size())
            summary.rankIdleSeconds.resize(c.rankIdleSeconds.size(),
                                           0.0);
        for (std::size_t r = 0; r < c.rankIdleSeconds.size(); ++r)
            summary.rankIdleSeconds[r] += c.rankIdleSeconds[r];
    }
    return summary;
}

} // namespace vibe
