/**
 * @file attribution.hpp
 * Derived attribution over per-cycle task timings: where did the
 * thread-seconds go, and how much of each cycle was irreducible?
 *
 * The driver records, per cycle, the task-graph wall time, the
 * per-category busy sums, the executor concurrency, and the
 * longest dependency chain (critical path). From those this module
 * derives idle time — thread-seconds the executor had available but
 * no ready task filled — which is exactly the per-rank signal
 * ROADMAP item 4's measured-cost load balancing needs: a rank with
 * high idle share is starved, one with none is the straggler.
 */
#pragma once

#include <vector>

namespace vibe {

struct CycleStats;

/** Run-total attribution derived from a cycle history. */
struct IdleSummary
{
    /** Σ task-graph wall seconds (per-rank view of the run). */
    double taskWallSeconds = 0;
    /** Σ busy task seconds (compute + comm, retries included). */
    double busySeconds = 0;
    /** Σ idle thread-seconds (capacity the graphs left unfilled). */
    double idleSeconds = 0;
    /** Σ per-cycle critical-path seconds (the lower bound on wall). */
    double criticalPathSeconds = 0;
    /** Per-rank idle totals (empty when history has no rank split). */
    std::vector<double> rankIdleSeconds;

    /** Idle share of total capacity (0 when nothing was measured). */
    double idleFraction() const
    {
        const double capacity = busySeconds + idleSeconds;
        return capacity > 0 ? idleSeconds / capacity : 0.0;
    }
};

/** Sum the per-cycle attribution fields over a run history. */
IdleSummary attributeIdle(const std::vector<CycleStats>& history);

} // namespace vibe
