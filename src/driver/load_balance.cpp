#include "driver/load_balance.hpp"

#include <algorithm>

#include "exec/par_for.hpp"

namespace vibe {

LoadBalanceStats
loadBalance(Mesh& mesh, RankWorld& world)
{
    const ExecContext& ctx = mesh.ctx();
    const int nranks = world.nranks();
    const auto& blocks = mesh.blocks();
    LoadBalanceStats stats;
    if (blocks.empty())
        return stats;

    // Costs are exchanged with an AllGather (one entry per block).
    world.allGather(static_cast<double>(sizeof(double)) *
                    static_cast<double>(blocks.size()) / nranks);
    recordSerial(ctx, "collective", 1.0);
    // The partition walk itself is serial host work.
    recordSerial(ctx, "lb_partition", static_cast<double>(blocks.size()));

    double total_cost = 0;
    for (const auto& block : blocks)
        total_cost += block->cost();
    const double target = total_cost / nranks;

    // Greedy prefix partition over the Z-ordered list: rank r takes
    // blocks until the running cost passes (r+1) * target, but never
    // starves trailing ranks of remaining blocks.
    std::vector<int> new_rank(blocks.size(), 0);
    double cum = 0;
    int rank = 0;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const std::size_t remaining = blocks.size() - b;
        const int ranks_left = nranks - rank;
        if (static_cast<std::size_t>(ranks_left) >= remaining) {
            // One block per remaining rank.
            rank = nranks - static_cast<int>(remaining);
        }
        new_rank[b] = rank;
        cum += blocks[b]->cost();
        if (cum >= target * (rank + 1) && rank + 1 < nranks)
            ++rank;
    }

    std::vector<double> rank_cost(nranks, 0.0);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        MeshBlock& block = *blocks[b];
        rank_cost[new_rank[b]] += block.cost();
        if (block.rank() != new_rank[b]) {
            ++stats.movedBlocks;
            const double bytes =
                static_cast<double>(block.dataBytes());
            stats.movedBytes += bytes;
            world.accountTransfer(block.rank(), new_rank[b], bytes);
            block.setRank(new_rank[b]);
        }
    }

    stats.maxRankCost =
        *std::max_element(rank_cost.begin(), rank_cost.end());
    stats.meanRankCost = total_cost / nranks;
    return stats;
}

} // namespace vibe
