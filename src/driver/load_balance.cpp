#include "driver/load_balance.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "exec/par_for.hpp"
#include "obs/trace.hpp"

namespace vibe {

namespace {

/** Migration channel for the block at `loc` (kind = whole-block). */
ChannelId
migrationChannel(const LogicalLocation& loc)
{
    ChannelId id;
    id.sender = loc;
    id.receiver = loc;
    id.kind = ChannelKind::Block;
    return id;
}

/** One rank's cost contribution: (gid, cost) per owned block. */
struct CostEntry
{
    int gid = 0;
    double cost = 0;
};

} // namespace

LoadBalanceStats
loadBalance(Mesh& mesh, RankWorld& world,
            const LoadBalanceOptions& options)
{
    const ExecContext& ctx = mesh.ctx();
    const int nranks = world.nranks();
    // vibe-lint: allow(owned-blocks) the partitioner is replicated
    // structure code: every rank walks the full (identical) block list
    // to compute the same cost split, touching metadata only — never
    // block storage.
    const auto& blocks = mesh.blocks();
    LoadBalanceStats stats;
    if (blocks.empty())
        return stats;

    const int my_rank = mesh.collectiveRank();

    // Costs are exchanged with an AllGather (one entry per block). On
    // the sharded path this is a real rendezvous — each rank
    // contributes its owned blocks' costs and receives the full map —
    // which also synchronizes the team before any storage moves.
    // Uniform mode weighs blocks by interior cells (the historical
    // §II-E estimate); measured mode gathers the EMA estimates the
    // cost model folded onto the blocks.
    const bool measured = options.costMode == LbCostMode::Measured;
    std::vector<CostEntry> local_costs;
    local_costs.reserve(mesh.ownedBlocks().size());
    for (const MeshBlock* block : mesh.ownedBlocks())
        local_costs.push_back(
            {block->gid(),
             measured ? block->cost()
                      : static_cast<double>(
                            block->shape().interiorCells())});
    const std::vector<CostEntry> gathered = world.allGatherVec(
        my_rank, std::move(local_costs),
        static_cast<double>(sizeof(double)) *
            static_cast<double>(blocks.size()) / nranks,
        CollAccount::Gather);
    recordSerial(ctx, "collective", 1.0);
    // The partition walk itself is serial host work.
    recordSerial(ctx, "lb_partition", static_cast<double>(blocks.size()));

    std::vector<double> cost_of(blocks.size(), 0.0);
    for (const CostEntry& entry : gathered)
        cost_of.at(static_cast<std::size_t>(entry.gid)) = entry.cost;

    // Measured mode: sync every replica's block-cost metadata to the
    // gathered values — non-owners carry stale estimates between
    // gathers, and downstream consumers (refinement inheritance,
    // checkpoint restore re-shards) expect one replicated cost map.
    // Uniform mode leaves the metadata alone: the cost a block carries
    // (inherited across remeshes, serialized through migration and
    // checkpoints) must not be clobbered with cell counts just because
    // this run ignores it.
    if (measured)
        for (std::size_t b = 0; b < blocks.size(); ++b)
            blocks[b]->setCost(cost_of[b]);

    double total_cost = 0;
    for (double cost : cost_of)
        total_cost += cost;
    const double target = total_cost / nranks;

    // Greedy prefix partition over the Z-ordered list: rank r takes
    // blocks until the running cost passes (r+1) * target, but never
    // starves trailing ranks of remaining blocks. Inputs are gathered
    // (identical on every replica), so the partition is too.
    std::vector<int> new_rank(blocks.size(), 0);
    double cum = 0;
    int rank = 0;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const std::size_t remaining = blocks.size() - b;
        const int ranks_left = nranks - rank;
        if (static_cast<std::size_t>(ranks_left) >= remaining) {
            // One block per remaining rank.
            rank = nranks - static_cast<int>(remaining);
        }
        new_rank[b] = rank;
        cum += cost_of[b];
        if (cum >= target * (rank + 1) && rank + 1 < nranks)
            ++rank;
    }

    // Price the proposal before moving any storage: per-rank cost
    // under the proposed partition vs. the current assignment.
    std::vector<double> rank_cost(nranks, 0.0);
    std::vector<double> cur_cost(nranks, 0.0);
    bool any_move = false;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        rank_cost[new_rank[b]] += cost_of[b];
        cur_cost.at(static_cast<std::size_t>(blocks[b]->rank())) +=
            cost_of[b];
        any_move = any_move || blocks[b]->rank() != new_rank[b];
    }
    const double mean_cost = total_cost / nranks;

    // Hysteresis: with measured (jittery) costs the greedy split can
    // flip a boundary block every few cycles; each flip ships real
    // storage on the sharded path. Adopt only when the projected
    // max/mean imbalance improvement clears the trigger. Inputs are
    // gathered and ranks replicated, so every replica takes the same
    // branch — no collective is needed for the decision itself.
    if (any_move && options.imbalanceTrigger > 0) {
        const double cur_max =
            *std::max_element(cur_cost.begin(), cur_cost.end());
        const double new_max =
            *std::max_element(rank_cost.begin(), rank_cost.end());
        const double improvement =
            mean_cost > 0 ? (cur_max - new_max) / mean_cost : 0.0;
        if (improvement < options.imbalanceTrigger) {
            stats.adopted = false;
            stats.maxRankCost = cur_max;
            stats.meanRankCost = mean_cost;
            return stats;
        }
    }

    const bool sharded = mesh.sharded();

    // Pass 1 — departures: a sharded replica serializes every block it
    // owns that is leaving and posts the payload before looking at any
    // arrival, so migration cannot deadlock (all sends are
    // non-blocking and precede all receives on every rank).
    if (sharded) {
        for (std::size_t b = 0; b < blocks.size(); ++b) {
            MeshBlock& block = *blocks[b];
            if (block.rank() != my_rank || new_rank[b] == my_rank)
                continue;
            std::vector<double> payload = block.serializeState();
            const double bytes =
                static_cast<double>(payload.size()) * sizeof(double);
            // vibe-lint: allow(coalesced-comm) ChannelKind::Block
            // migration payload, not boundary traffic; one message per
            // moved block at a collectively synchronized point.
            world.isend(migrationChannel(block.loc()), my_rank,
                        new_rank[b], std::move(payload), bytes);
            block.dematerialize();
        }
    }

    // Pass 2 — relabel and account. Every replica applies the full
    // relabeling so owner lookups stay replicated.
    std::vector<std::size_t> arrivals;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        MeshBlock& block = *blocks[b];
        if (block.rank() == new_rank[b])
            continue;
        ++stats.movedBlocks;
        stats.movedBytes += static_cast<double>(block.dataBytes());
        if (sharded) {
            stats.migratedStorageBytes +=
                static_cast<double>(block.serializedStateCount()) *
                sizeof(double);
            if (new_rank[b] == my_rank)
                arrivals.push_back(b);
        } else {
            world.accountTransfer(block.rank(), new_rank[b],
                                  static_cast<double>(block.dataBytes()));
        }
        block.setRank(new_rank[b]);
    }

    // Pass 3 — arrivals: materialize from THIS rank's pool and unpack
    // the serialized state. Peers' sends were posted in their pass 1,
    // so a bounded poll wait suffices.
    if (sharded) {
        TraceSpan span("MigrateBlocks", TraceCat::Comm, my_rank);
        // vibe-lint: allow(obs-isolation) peer-wait deadline bounding
        // the migration receive loop, not timing instrumentation.
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(kPeerWaitSeconds));
        for (std::size_t b : arrivals) {
            MeshBlock& block = *blocks[b];
            const ChannelId channel = migrationChannel(block.loc());
            std::optional<Message> msg;
            while (!(msg = world.receive(channel)).has_value()) {
                // Not require(): its message args are evaluated every
                // iteration, and failureReason() locks.
                if (world.failed())
                    panic("block migration aborted: ",
                          world.failureReason());
                require(std::chrono::steady_clock::now() < deadline,
                        "block migration timed out waiting for ",
                        block.loc().str());
                std::this_thread::yield();
            }
            mesh.realizeBlock(block);
            block.deserializeState(msg->payload);
        }
        if (stats.movedBlocks > 0)
            mesh.refreshOwnership();
    }

    stats.maxRankCost =
        *std::max_element(rank_cost.begin(), rank_cost.end());
    stats.meanRankCost = mean_cost;
    return stats;
}

} // namespace vibe
