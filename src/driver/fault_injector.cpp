/**
 * @file fault_injector.cpp
 * Deterministic rank-failure injection.
 */
#include "driver/fault_injector.hpp"

#include <cstdlib>

#include "util/logging.hpp"
#include "util/parameter_input.hpp"

namespace vibe {

namespace {

std::int64_t
envInt64(const char* name, std::int64_t fallback)
{
    const char* value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    return std::atoll(value);
}

} // namespace

FaultInjector
FaultInjector::fromEnv()
{
    return FaultInjector(
        static_cast<int>(envInt64("VIBE_FAIL_RANK", -1)),
        envInt64("VIBE_FAIL_CYCLE", -1));
}

FaultInjector
FaultInjector::fromParams(const ParameterInput& pin)
{
    FaultInjector injector(pin.getInt("exec", "fail_rank", -1),
                           pin.getInt("exec", "fail_cycle", -1));
    // Env overrides the deck, matching the other <exec> knobs.
    injector.fail_rank_ = static_cast<int>(
        envInt64("VIBE_FAIL_RANK", injector.fail_rank_));
    injector.fail_cycle_ =
        envInt64("VIBE_FAIL_CYCLE", injector.fail_cycle_);
    return injector;
}

void
FaultInjector::maybeFail(int rank, std::int64_t cycle)
{
    if (fired_ || !armed() || rank != fail_rank_ ||
        cycle != fail_cycle_)
        return;
    fired_ = true;
    panic("injected fault: rank ", fail_rank_, " failed at cycle ",
          fail_cycle_);
}

} // namespace vibe
