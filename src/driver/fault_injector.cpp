/**
 * @file fault_injector.cpp
 * Deterministic rank-failure injection.
 */
#include "driver/fault_injector.hpp"

#include <cstdlib>

#include "util/logging.hpp"
#include "util/parameter_input.hpp"

namespace vibe {

namespace {

std::int64_t
envInt64(const char* name, std::int64_t fallback)
{
    const char* value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    return std::atoll(value);
}

} // namespace

FaultInjector
FaultInjector::fromEnv()
{
    return FaultInjector(
        static_cast<int>(envInt64("VIBE_FAIL_RANK", -1)),
        envInt64("VIBE_FAIL_CYCLE", -1));
}

FaultInjector
FaultInjector::fromParams(const ParameterInput& pin)
{
    // fail_cycle keeps full 64-bit width so the deck and the
    // VIBE_FAIL_CYCLE env knob accept the same range.
    FaultInjector injector(pin.getInt("exec", "fail_rank", -1),
                           pin.getInt64("exec", "fail_cycle", -1));
    // Env overrides the deck, matching the other <exec> knobs.
    injector.fail_rank_ = static_cast<int>(
        envInt64("VIBE_FAIL_RANK", injector.fail_rank_));
    injector.fail_cycle_ =
        envInt64("VIBE_FAIL_CYCLE", injector.fail_cycle_);
    return injector;
}

void
FaultInjector::maybeFail(int rank, std::int64_t cycle)
{
    // Immutable config first: every non-matching rank thread bails
    // here without reading the latch. armed() is implied by the match
    // (a disarmed injector has fail_rank_ == -1, never a real rank).
    if (rank != fail_rank_ || cycle != fail_cycle_ || rank < 0)
        return;
    if (fired_.exchange(true, std::memory_order_acq_rel))
        return;
    panic("injected fault: rank ", fail_rank_, " failed at cycle ",
          fail_cycle_);
}

} // namespace vibe
