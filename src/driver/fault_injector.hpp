/**
 * @file fault_injector.hpp
 * Deterministic rank-failure injection for recovery testing.
 *
 * An armed injector throws a PanicError on exactly one (rank, cycle)
 * point: the chosen rank's driver thread dies at the top of the chosen
 * cycle, while its peers are already advancing toward the cycle's
 * first collective (the dt allreduce) — the worst-case shape for the
 * abort path, since every survivor is blocked in a rendezvous when the
 * failure lands. Configured from the `<exec>` block (`fail_rank`,
 * `fail_cycle`) or the `VIBE_FAIL_RANK` / `VIBE_FAIL_CYCLE`
 * environment variables (env wins, matching the other exec knobs).
 *
 * The injector fires once per instance: after a supervised restart the
 * same Experiment-owned injector stays quiet, so a recovery test can
 * assert the rerun completes.
 */
#pragma once

#include <atomic>
#include <cstdint>

namespace vibe {

class ParameterInput;

/** Throws on a chosen rank at a chosen cycle, exactly once. */
class FaultInjector
{
  public:
    FaultInjector() = default;
    FaultInjector(int fail_rank, std::int64_t fail_cycle)
        : fail_rank_(fail_rank), fail_cycle_(fail_cycle)
    {
    }

    // Copies happen only at configuration time (fromEnv/fromParams,
    // before any rank thread exists); spelled out because the atomic
    // latch deletes the defaults.
    FaultInjector(const FaultInjector& other)
        : fail_rank_(other.fail_rank_), fail_cycle_(other.fail_cycle_),
          fired_(other.fired_.load(std::memory_order_relaxed))
    {
    }
    FaultInjector&
    operator=(const FaultInjector& other)
    {
        fail_rank_ = other.fail_rank_;
        fail_cycle_ = other.fail_cycle_;
        fired_.store(other.fired_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        return *this;
    }

    /** From `VIBE_FAIL_RANK` / `VIBE_FAIL_CYCLE` (unset = disarmed). */
    static FaultInjector fromEnv();

    /** From `<exec> fail_rank` / `fail_cycle`; env overrides. */
    static FaultInjector fromParams(const ParameterInput& pin);

    /** True when a (rank, cycle) failure point is configured. */
    bool armed() const { return fail_rank_ >= 0 && fail_cycle_ >= 0; }
    int failRank() const { return fail_rank_; }
    std::int64_t failCycle() const { return fail_cycle_; }
    /** True once the fault has been delivered. */
    bool fired() const { return fired_.load(std::memory_order_acquire); }

    /**
     * Throw iff this is the armed (rank, cycle) and the injector has
     * not fired yet. Called at the top of every cycle by each rank's
     * driver concurrently: the guard checks the immutable (rank, cycle)
     * config first, so peer rank threads return without ever touching
     * the one-shot latch, and the latch itself is atomic — the matching
     * rank's write races with nothing.
     */
    void maybeFail(int rank, std::int64_t cycle);

  private:
    int fail_rank_ = -1;
    std::int64_t fail_cycle_ = -1;
    std::atomic<bool> fired_{false};
};

} // namespace vibe
