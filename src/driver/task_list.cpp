#include "driver/task_list.hpp"

#include "util/logging.hpp"

namespace vibe {

TaskId
TaskList::addTask(std::string name, TaskFn fn, std::vector<TaskId> deps)
{
    for (TaskId dep : deps)
        require(dep >= 0 && dep < static_cast<TaskId>(tasks_.size()),
                "task '", name, "' depends on unknown task id ", dep);
    tasks_.push_back({std::move(name), std::move(fn), std::move(deps),
                      false});
    return static_cast<TaskId>(tasks_.size()) - 1;
}

void
TaskList::execute(int max_passes)
{
    completion_order_.clear();
    for (auto& task : tasks_)
        task.complete = false;

    std::size_t done = 0;
    for (int pass = 0; pass < max_passes && done < tasks_.size();
         ++pass) {
        bool any_ran = false;
        for (auto& task : tasks_) {
            if (task.complete)
                continue;
            bool ready = true;
            for (TaskId dep : task.deps)
                if (!tasks_[dep].complete) {
                    ready = false;
                    break;
                }
            if (!ready)
                continue;
            any_ran = true;
            if (task.fn() == TaskStatus::Complete) {
                task.complete = true;
                completion_order_.push_back(task.name);
                ++done;
            }
        }
        if (!any_ran && done < tasks_.size()) {
            // Nothing is runnable yet incomplete tasks remain: a
            // dependency cycle. (Polling tasks that merely Iterate are
            // handled by the max_passes bound below.)
            panic("task list deadlocked with ", tasks_.size() - done,
                  " incomplete tasks");
        }
    }
    require(done == tasks_.size(), "task list did not complete within ",
            max_passes, " passes");
}

} // namespace vibe
