#include "driver/task_list.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <thread>

#include "exec/execution_space.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/thread_safety.hpp"

namespace vibe {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * One task attempt as an obs span. Called outside any executor lock,
 * on the thread that ran the attempt, with the timing the executor
 * already took — tracing adds no clock reads of its own here.
 */
void
traceAttempt(const std::string& name, TaskCategory category, int rank,
             std::int64_t cycle, const std::string& graph_label,
             Clock::time_point begin, double seconds, bool iterated)
{
    if (!TraceRecorder::enabled())
        return;
    TraceRecorder::instance().recordSpan(
        name,
        category == TaskCategory::Comm ? TraceCat::Comm
                                       : TraceCat::Compute,
        rank, cycle, graph_label, begin, seconds,
        iterated ? TraceEvent::kPollRetry : std::uint16_t{0});
}

} // namespace

TaskId
TaskList::addTask(std::string name, TaskFn fn, std::vector<TaskId> deps,
                  TaskCategory category)
{
    for (TaskId dep : deps)
        require(dep >= 0 && dep < static_cast<TaskId>(tasks_.size()),
                "task '", name, "' depends on unknown task id ", dep);
    tasks_.push_back({std::move(name), std::move(fn), std::move(deps),
                      category, false, 0.0});
    return static_cast<TaskId>(tasks_.size()) - 1;
}

void
TaskList::execute(int max_passes)
{
    TaskExecOptions options;
    options.max_passes = max_passes;
    execute(options);
}

void
TaskList::execute(const TaskExecOptions& options)
{
    resetRunState();
    const auto start = Clock::now();
    if (options.space && options.space->concurrency() > 1 &&
        tasks_.size() > 1)
        executeThreaded(options, *options.space);
    else
        executeSerial(options);
    last_execute_seconds_ = secondsSince(start);
}

double
TaskList::criticalPathSeconds() const
{
    std::vector<double> finish(tasks_.size(), 0.0);
    double longest = 0;
    for (std::size_t id = 0; id < tasks_.size(); ++id) {
        double start = 0;
        for (TaskId dep : tasks_[id].deps)
            start = std::max(start, finish[dep]);
        finish[id] = start + tasks_[id].seconds;
        longest = std::max(longest, finish[id]);
    }
    return longest;
}

double
TaskList::categorySeconds(TaskCategory category) const
{
    double total = 0;
    for (const auto& task : tasks_)
        if (task.category == category)
            total += task.seconds;
    return total;
}

void
TaskList::resetRunState()
{
    completion_order_.clear();
    last_execute_seconds_ = 0;
    for (auto& task : tasks_) {
        task.complete = false;
        task.seconds = 0;
    }
}

std::string
TaskList::incompleteNames() const
{
    std::string names;
    for (const auto& task : tasks_) {
        if (task.complete)
            continue;
        if (!names.empty())
            names += ", ";
        names += task.name;
    }
    // Every stall/deadlock panic routes through here, so the label
    // (e.g. "plan:bounds stage 1") lands in all of their reports.
    if (!label_.empty())
        return "[" + label_ + "] " + names;
    return names;
}

void
TaskList::executeSerial(const TaskExecOptions& options)
{
    std::size_t done = 0;
    int stalled_passes = 0;
    const auto stall_deadline =
        Clock::now() +
        std::chrono::duration<double>(options.external_stall_seconds);
    for (int pass = 0;
         (options.external_progress || pass < options.max_passes) &&
         done < tasks_.size();
         ++pass) {
        bool any_ran = false;
        std::size_t completed_this_pass = 0;
        for (auto& task : tasks_) {
            if (task.complete)
                continue;
            bool ready = true;
            for (TaskId dep : task.deps)
                if (!tasks_[dep].complete) {
                    ready = false;
                    break;
                }
            if (!ready)
                continue;
            any_ran = true;
            const auto start = Clock::now();
            const TaskStatus status = task.fn();
            const double seconds = secondsSince(start);
            task.seconds += seconds;
            traceAttempt(task.name, task.category, trace_rank_,
                         trace_cycle_, label_, start, seconds,
                         status == TaskStatus::Iterate);
            if (status == TaskStatus::Complete) {
                task.complete = true;
                completion_order_.push_back(task.name);
                ++done;
                ++completed_this_pass;
            }
        }
        if (!any_ran && done < tasks_.size()) {
            // Nothing is runnable yet incomplete tasks remain: a
            // dependency cycle.
            panic("task list deadlocked with ", tasks_.size() - done,
                  " incomplete tasks: ", incompleteNames());
        }
        // Progress stall: tasks ran but only ever returned Iterate. A
        // permanently-blocked polling task must be named, not burn
        // every remaining pass into a generic pass-bound failure. When
        // progress can come from a peer rank's thread, pass counts say
        // nothing — yield and fall back to a wall-clock bound.
        if (any_ran && completed_this_pass == 0) {
            if (options.external_progress) {
                if (options.external_abort) {
                    const std::string reason = options.external_abort();
                    if (!reason.empty())
                        panic("task list aborted: ", reason,
                              "; incomplete tasks: ", incompleteNames());
                }
                if (Clock::now() >= stall_deadline)
                    panic("no task completed within ",
                          options.external_stall_seconds,
                          "s while waiting on peer ranks; stuck "
                          "polling tasks: ",
                          incompleteNames());
                std::this_thread::yield();
            } else if (++stalled_passes >= options.stall_passes) {
                panic("no task completed in ", stalled_passes,
                      " consecutive passes; stuck polling tasks: ",
                      incompleteNames());
            }
        } else {
            stalled_passes = 0;
        }
    }
    require(done == tasks_.size(), "task list did not complete within ",
            options.max_passes,
            " passes; incomplete tasks: ", incompleteNames());
}

void
TaskList::executeThreaded(const TaskExecOptions& options,
                          ExecutionSpace& space)
{
    struct State
    {
        TaskList* list = nullptr;
        Mutex mutex;
        CondVar cv;
        std::deque<TaskId> ready VIBE_GUARDED_BY(mutex);
        std::vector<int> waiting VIBE_GUARDED_BY(mutex);
        std::vector<std::vector<TaskId>> dependents;
        /** Tasks that have returned Iterate at least once. */
        std::vector<char> iterated VIBE_GUARDED_BY(mutex);
        std::size_t done VIBE_GUARDED_BY(mutex) = 0;
        std::size_t inflight VIBE_GUARDED_BY(mutex) = 0;
        /** In-flight tasks that have never iterated (can make real
         *  progress: complete, send messages, unblock dependents). */
        std::size_t inflight_fresh VIBE_GUARDED_BY(mutex) = 0;
        std::uint64_t idle_polls VIBE_GUARDED_BY(mutex) = 0;
        std::uint64_t idle_limit = 0;
        bool external_progress = false;
        Clock::time_point stall_deadline;
        const std::function<std::string()>* external_abort = nullptr;
        bool failed VIBE_GUARDED_BY(mutex) = false;
        std::exception_ptr error VIBE_GUARDED_BY(mutex);

        void failLocked(std::exception_ptr err) VIBE_REQUIRES(mutex)
        {
            if (!failed) {
                failed = true;
                error = std::move(err);
            }
            cv.notify_all();
        }
    };

    const std::size_t n = tasks_.size();
    State state;
    state.list = this;
    state.dependents.assign(n, {});
    state.idle_limit =
        static_cast<std::uint64_t>(options.stall_passes) * n + 64;
    state.external_progress = options.external_progress;
    state.stall_deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               options.external_stall_seconds));
    if (options.external_abort)
        state.external_abort = &options.external_abort;
    {
        // No worker is running yet; the lock only makes the guarded
        // initialization visible to the thread-safety analysis.
        LockGuard lock(state.mutex);
        state.waiting.assign(n, 0);
        state.iterated.assign(n, 0);
        for (std::size_t id = 0; id < n; ++id) {
            state.waiting[id] = static_cast<int>(tasks_[id].deps.size());
            for (TaskId dep : tasks_[id].deps)
                state.dependents[dep].push_back(static_cast<TaskId>(id));
            if (state.waiting[id] == 0)
                state.ready.push_back(static_cast<TaskId>(id));
        }
    }

    auto worker = [](void* body, std::int64_t, std::int64_t, int) {
        State& st = *static_cast<State*>(body);
        TaskList& list = *st.list;
        const std::size_t n = list.tasks_.size();
        UniqueLock lock(st.mutex);
        for (;;) {
            if (st.failed || st.done == n)
                return;
            if (st.ready.empty()) {
                if (st.inflight == 0) {
                    // No runnable task, none in flight, incomplete
                    // tasks remain: a dependency cycle.
                    st.failLocked(std::make_exception_ptr(PanicError(
                        detail::concat("task list deadlocked with ",
                                       n - st.done,
                                       " incomplete tasks: ",
                                       list.incompleteNames()))));
                    return;
                }
                st.cv.wait(lock);
                continue;
            }
            const TaskId id = st.ready.front();
            st.ready.pop_front();
            ++st.inflight;
            const bool fresh = !st.iterated[id];
            if (fresh)
                ++st.inflight_fresh;
            lock.unlock();

            TaskStatus status = TaskStatus::Iterate;
            std::exception_ptr err;
            const auto start = Clock::now();
            try {
                status = list.tasks_[id].fn();
            } catch (...) {
                err = std::current_exception();
            }
            const double seconds = secondsSince(start);
            if (!err)
                traceAttempt(list.tasks_[id].name,
                             list.tasks_[id].category, list.trace_rank_,
                             list.trace_cycle_, list.label_, start,
                             seconds, status == TaskStatus::Iterate);
            // Give other pollers and pool peers a chance between
            // fruitless probes of an otherwise idle queue.
            if (!err && status == TaskStatus::Iterate)
                std::this_thread::yield();

            lock.lock();
            --st.inflight;
            if (fresh)
                --st.inflight_fresh;
            list.tasks_[id].seconds += seconds;
            if (err) {
                st.failLocked(std::move(err));
                return;
            }
            if (status == TaskStatus::Complete) {
                list.tasks_[id].complete = true;
                list.completion_order_.push_back(list.tasks_[id].name);
                ++st.done;
                st.idle_polls = 0;
                for (TaskId dep : st.dependents[id])
                    if (--st.waiting[dep] == 0)
                        st.ready.push_back(dep);
                st.cv.notify_all();
                continue;
            }
            // Iterate: re-queue the poller behind other ready work.
            st.iterated[id] = 1;
            st.ready.push_back(id);
            if (st.inflight_fresh == 0) {
                // Every in-flight task is a known repeat-poller. With
                // external progress a peer rank's thread may still
                // deliver what these polls wait for, so only the wall
                // clock can call it stuck; otherwise nothing anywhere
                // can, and a bounded poll count suffices.
                if (st.external_progress) {
                    if (st.external_abort) {
                        const std::string reason = (*st.external_abort)();
                        if (!reason.empty()) {
                            st.failLocked(std::make_exception_ptr(
                                PanicError(detail::concat(
                                    "task list aborted: ", reason,
                                    "; incomplete tasks: ",
                                    list.incompleteNames()))));
                            return;
                        }
                    }
                    if (Clock::now() >= st.stall_deadline) {
                        st.failLocked(std::make_exception_ptr(PanicError(
                            detail::concat(
                                "no task completed before the peer-wait "
                                "deadline; stuck polling tasks: ",
                                list.incompleteNames()))));
                        return;
                    }
                } else if (++st.idle_polls > st.idle_limit) {
                    st.failLocked(std::make_exception_ptr(PanicError(
                        detail::concat(
                            "no task completed in ", st.idle_polls,
                            " consecutive polls; stuck polling tasks: ",
                            list.incompleteNames()))));
                    return;
                }
            } else {
                // A fresh task in flight may still complete and
                // deliver the messages the poller waits for.
                st.idle_polls = 0;
            }
            st.cv.notify_one();
        }
    };

    // Dispatch one worker loop per pool chunk (the calling thread runs
    // chunk 0). Inside a chunk the space's nested-launch rule makes
    // every kernel launched by a task body run in-line on that worker,
    // so tasks are the sole unit of concurrency.
    space.forEachChunk(space.concurrency(), worker, &state);

    // All workers have joined (forEachChunk is a barrier); the lock is
    // for the analysis, not for contention.
    std::exception_ptr error;
    std::size_t done = 0;
    {
        LockGuard lock(state.mutex);
        error = state.error;
        done = state.done;
    }
    if (error)
        std::rethrow_exception(error);
    require(done == n, "threaded task list finished with ", n - done,
            " incomplete tasks: ", incompleteNames());
}

} // namespace vibe
