#include "driver/evolution_driver.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "driver/fault_injector.hpp"
#include "driver/task_list.hpp"
#include "exec/memory_tracker.hpp"
#include "exec/par_for.hpp"
#include "io/checkpoint.hpp"
#include "io/checkpoint_writer.hpp"
#include "io/metrics_writer.hpp"
#include "mesh/block_memory_pool.hpp"
#include "mesh/prolong_restrict.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace vibe {

DriverConfig
DriverConfig::fromParams(const ParameterInput& pin)
{
    DriverConfig config;
    config.ncycles = pin.getInt("driver", "ncycles", 10);
    config.tlim = pin.getReal("driver", "tlim", 1e30);
    config.fixedDt = pin.getReal("driver", "fixed_dt", 2e-3);
    config.derefineGap = pin.getInt("amr", "derefine_gap", 10);
    config.refineEvery = pin.getInt("amr", "refine_every", 1);
    config.lbEvery = pin.getInt("amr", "lb_every", 1);
    // Deck knob wins; otherwise the VIBE_LB_COST environment fallback;
    // otherwise the historical uniform weighting.
    config.lbCost = lbCostModeFromName(pin.getString(
        "amr", "lb_cost",
        lbCostModeName(envLbCostMode(LbCostMode::Uniform))));
    config.lbImbalanceTrigger =
        pin.getReal("amr", "lb_imbalance_trigger", 0.0);
    config.randomizeBufferKeys =
        pin.getBool("comm", "randomize_buffer_keys", true);
    config.checkpointEvery =
        pin.getInt("driver", "checkpoint_every", 0);
    config.checkpointPath =
        pin.getString("driver", "checkpoint_path", "");
    config.checkpointAsync =
        pin.getBool("driver", "checkpoint_async", true);
    return config;
}

EvolutionDriver::EvolutionDriver(Mesh& mesh,
                                 const PackageDescriptor& package,
                                 RankWorld& world,
                                 RefinementTagger& tagger,
                                 const DriverConfig& config)
    : mesh_(&mesh), package_(&package), world_(&world), tagger_(&tagger),
      config_(config), cache_(mesh, config.randomizeBufferKeys),
      exchange_(mesh, world, cache_)
{
    dt_ = config_.fixedDt;
    // The buffer cache is rebuilt on exactly the events that stale the
    // pack's view tables AND the boundary plan's message directory
    // (restructure, load-balance moves); ride that hook instead of
    // tracking remesh events separately. Both invalidations are cheap
    // flag flips — the rebuilds happen lazily at the next serial point.
    cache_.setRebuildHook([this] {
        pack_.invalidate();
        exchange_.plan().invalidate();
    });
}

void
EvolutionDriver::initialize()
{
    const ExecContext& ctx = mesh_->ctx();
    PhaseScope scope(ctx.profiler(), "Initialise");

    if (ctx.executing())
        package_->initialize(*mesh_);

    // Initial refinement: iterate up to the level budget so the mesh
    // conforms to the tagging criterion before evolution starts. Each
    // rank tags only its owned shard; the flags are all-gathered so
    // every replica applies the identical tree update.
    const int max_iters = mesh_->config().amrLevels - 1;
    for (int iter = 0; iter < max_iters; ++iter) {
        tagger_->tagAll(*mesh_, time_, cycle_);
        std::vector<FlagEntry> local;
        for (const MeshBlock* block : mesh_->ownedBlocks())
            if (block->tag() == RefinementFlag::Refine)
                local.push_back(
                    {block->loc(),
                     static_cast<int>(RefinementFlag::Refine)});
        RefinementFlagMap flags =
            gatherFlags(std::move(local), 0.0, CollAccount::None);
        auto update = mesh_->updateTree(flags);
        if (!update.changed())
            break;
        auto restructure = mesh_->applyTreeUpdate(update, cycle_);
        if (ctx.executing()) {
            // At initialization new blocks take exact initial
            // conditions rather than prolongated data (non-owned
            // Shadow blocks skip inside initializeBlock).
            for (auto& refined : restructure.refined)
                for (MeshBlock* child : refined.children)
                    package_->initializeBlock(ctx, *child);
            for (auto& derefined : restructure.derefined)
                package_->initializeBlock(ctx, *derefined.parent);
        }
        cache_.rebuild();
    }

    loadBalance(*mesh_, *world_, lbOptions());
    cache_.rebuild();
    exchange_.exchangeBounds();
    exchange_.applyPhysicalBoundaries();
    if (mesh_->config().packInterior)
        package_->fillDerivedPack(*mesh_, ensurePack());
    else
        package_->fillDerived(*mesh_);
    // The timestep is NOT estimated here: doCycle() computes it once
    // at the top of every step. A second pre-loop estimate would
    // double-count the EstTimeMesh sweep in the profiler (and run a
    // full extra mesh sweep) without changing any dt a cycle uses.
}

void
EvolutionDriver::initializeFromCheckpoint(const CheckpointImage& image)
{
    const ExecContext& ctx = mesh_->ctx();
    PhaseScope scope(ctx.profiler(), "Initialise");
    const MeshConfig& config = mesh_->config();

    require(ctx.executing(),
            "checkpoint restore requires numeric execution");
    if (image.package != package_->name())
        restoreFatal("checkpoint restore: file holds package '", image.package,
              "' but this run uses '", package_->name(), "'");
    if (image.ndim != config.ndim || image.nx1 != config.nx1 ||
        image.nx2 != config.nx2 || image.nx3 != config.nx3)
        restoreFatal("checkpoint restore: mesh mismatch, file has ",
              image.nx1, "x", image.nx2, "x", image.nx3, " (ndim ",
              image.ndim, "), this run ", config.nx1, "x", config.nx2,
              "x", config.nx3, " (ndim ", config.ndim, ")");
    if (image.blockNx1 != config.blockNx1 ||
        image.blockNx2 != config.blockNx2 ||
        image.blockNx3 != config.blockNx3 ||
        image.numGhost != config.numGhost)
        restoreFatal("checkpoint restore: block shape mismatch, file has ",
              image.blockNx1, "x", image.blockNx2, "x", image.blockNx3,
              " (", image.numGhost, " ghosts), this run ",
              config.blockNx1, "x", config.blockNx2, "x",
              config.blockNx3, " (", config.numGhost, " ghosts)");
    if (image.amrLevels != config.amrLevels)
        restoreFatal("checkpoint restore: file was written with ",
              image.amrLevels, " AMR levels, this run allows ",
              config.amrLevels);
    const VariableRegistry& registry = mesh_->registry();
    if (image.ncompConserved != registry.ncompConserved() ||
        image.ncompDerived != registry.ncompDerived())
        restoreFatal("checkpoint restore: variable mismatch, file has ",
              image.ncompConserved, " conserved + ",
              image.ncompDerived, " derived components, this run ",
              registry.ncompConserved(), " + ",
              registry.ncompDerived());
    require(!image.blocks.empty(),
            "checkpoint restore: image holds no blocks");

    // --- Rebuild the tree to the image's leaf set. Every image leaf
    // deeper than level 0 implies its ancestors were refined; flag
    // exactly those interior locations level by level until the
    // current leaves match. The image's tree was 2:1 balanced when
    // written, so these updates never cascade extra refinements.
    RefinementFlagMap ancestors;
    for (const CheckpointBlockRecord& record : image.blocks)
        for (LogicalLocation loc = record.loc; loc.level > 0;) {
            loc = loc.parent();
            ancestors[loc] = RefinementFlag::Refine;
        }
    for (int pass = 0; pass < image.amrLevels; ++pass) {
        RefinementFlagMap flags;
        // vibe-lint: allow(owned-blocks) replicated-structure walk:
        // tree reconstruction reads only block locations (metadata
        // present on every replica), never Shadow storage.
        for (const auto& block : mesh_->blocks())
            if (ancestors.count(block->loc()))
                flags[block->loc()] = RefinementFlag::Refine;
        if (flags.empty())
            break;
        const auto update = mesh_->updateTree(flags);
        require(update.changed(),
                "checkpoint restore: tree reconstruction stalled with ",
                flags.size(), " unrefined ancestors");
        // No data prolongation: every block's state comes from the
        // image below, so only the structure update is applied.
        mesh_->applyTreeUpdate(update, image.cycle);
    }
    if (mesh_->numBlocks() != image.blocks.size())
        restoreFatal("checkpoint restore: reconstructed tree has ",
              mesh_->numBlocks(), " blocks, file records ",
              image.blocks.size());

    // --- Load every block record: same Z/gid order on both sides.
    // Replicated metadata (createdCycle) lands on every replica; state
    // lands only where storage is materialized (hasData) — Shadow
    // replicas receive theirs through the load-balance migration below.
    for (std::size_t gid = 0; gid < mesh_->numBlocks(); ++gid) {
        MeshBlock& block = mesh_->block(static_cast<int>(gid));
        const CheckpointBlockRecord& record = image.blocks[gid];
        if (!(block.loc() == record.loc))
            restoreFatal("checkpoint restore: block ", gid, " is at ",
                  block.loc().str(), " but the file records ",
                  record.loc.str());
        // The derefine-gap policy depends on creation cycles, so they
        // must survive the restart for identical remesh decisions.
        block.setCreatedCycle(record.createdCycle);
        // Warm-start the load balancer: v2 images carry the owner's
        // last cost estimate, so the re-shard below partitions on
        // learned costs instead of re-learning them. Pre-v2 records
        // hold 0 and keep the block's uniform default.
        if (record.cost > 0)
            block.setCost(record.cost);
        if (!block.hasData())
            continue;
        require(record.state.size() == block.serializedStateCount(),
                "checkpoint restore: block ", gid, " state has ",
                record.state.size(), " values, expected ",
                block.serializedStateCount());
        block.deserializeState(record.state);
    }

    cycle_ = image.cycle;
    time_ = image.time;

    // Re-shard through the PR-5 migration path: the partitioner's
    // greedy Z-prefix split depends only on the (replicated) Z-ordered
    // block list, so any rank count lands on its deterministic
    // decomposition and real storage migrates onto the new owners.
    loadBalance(*mesh_, *world_, lbOptions());
    cache_.rebuild();
    // No ghost exchange or fillDerived: the serialized state carries
    // ghosts and derived fields, so memory now matches the
    // uninterrupted run at this cycle boundary bit for bit.
}

void
EvolutionDriver::run()
{
    while (cycle_ < config_.ncycles && time_ < config_.tlim)
        doCycle();
}

void
EvolutionDriver::doCycle()
{
    // vibe-lint: allow(obs-isolation) cycle wall clock: this read IS
    // the heartbeat FOM's denominator — the one timing the obs API
    // cannot supply to itself.
    const auto cycle_start = std::chrono::steady_clock::now();
    const int trace_rank = mesh_->collectiveRank();
    TraceSpan cycle_span("Cycle", TraceCat::Driver, trace_rank, cycle_);
    cycle_task_wall_ = 0;
    cycle_busy_ = 0;
    cycle_idle_ = 0;
    cycle_critical_ = 0;
    if (config_.lbCost == LbCostMode::Measured)
        cost_model_.beginCycle();

    // Fault-injection point: before the cycle's first collective (the
    // dt allreduce), so when the armed rank dies its peers are already
    // blocked in a rendezvous — the worst case the abort path must
    // drain without hanging.
    if (fault_injector_)
        fault_injector_->maybeFail(mesh_->collectiveRank(), cycle_);

    // --- EstimateTimeStep: once per step. The mesh is untouched
    // between the end of the previous cycle and here, so estimating at
    // the top of the cycle yields the identical dt the old
    // end-of-previous-cycle estimate produced, with half the sweeps.
    {
        TraceSpan span("EstimateTimeStep", TraceCat::Driver,
                       trace_rank, cycle_);
        dt_ = mesh_->config().packInterior
                  ? package_->estimateTimestepPack(
                        *mesh_, ensurePack(), *world_, config_.fixedDt)
                  : package_->estimateTimestep(*mesh_, *world_,
                                               config_.fixedDt);
    }

    CycleStats stats;
    stats.cycle = cycle_;
    stats.time = time_;
    stats.dt = dt_;
    stats.nblocks = mesh_->numBlocks();
    stats.interiorCells = mesh_->totalInteriorCells();

    const std::int64_t wire_before = comm_cells_;
    const std::int64_t faces_before = comm_faces_;
    const std::uint64_t msgs_before = boundary_messages_;
    const double bytes_before = boundary_bytes_;

    step();

    // FOM numerator: blocks processed this cycle x cells per block.
    zone_cycles_ += stats.interiorCells;

    // --- LoadBalancingAndAMR ---
    {
        TraceSpan span("LoadBalancingAndAMR", TraceCat::Driver,
                       trace_rank, cycle_);
        loadBalancingAndAmr();
    }

    // --- Per-cycle history output (VIBE's MassHistory) ---
    stats.mass = package_->massHistory(*mesh_, *world_);

    time_ += stats.dt;
    ++cycle_;

    maybeWriteCheckpoint(stats);

    stats.wireCells = comm_cells_ - wire_before;
    stats.wireFaces = comm_faces_ - faces_before;
    stats.boundaryMessages = boundary_messages_ - msgs_before;
    stats.boundaryBytes = boundary_bytes_ - bytes_before;
    stats.refined = last_refined_;
    stats.derefined = last_derefined_;
    stats.movedBlocks = last_moved_;
    stats.migratedStorageBytes = last_migrated_bytes_;
    stats.lbDecision = last_lb_decision_;
    stats.lbImbalance = last_lb_imbalance_;
    stats.lbMaxRankCost = last_lb_max_cost_;
    stats.lbMeanRankCost = last_lb_mean_cost_;
    stats.taskWallSeconds = cycle_task_wall_;
    stats.busySeconds = cycle_busy_;
    stats.idleSeconds = cycle_idle_;
    stats.criticalPathSeconds = cycle_critical_;
    history_.push_back(stats);

    if (TraceRecorder::enabled()) {
        traceCounter("nblocks", trace_rank, stats.cycle,
                     static_cast<double>(stats.nblocks));
        if (stats.refined > 0 || stats.derefined > 0)
            traceInstant("Remesh", TraceCat::Driver, trace_rank,
                         stats.cycle,
                         static_cast<double>(stats.refined +
                                             stats.derefined));
        if (stats.movedBlocks > 0)
            traceInstant("Migration", TraceCat::Comm, trace_rank,
                         stats.cycle,
                         static_cast<double>(stats.movedBlocks));
    }

    // Cycle boundary: all launches have completed, so fold any
    // instrumentation recorded on pool worker threads back into the
    // main tables before the next phase begins.
    const ExecContext& ctx = mesh_->ctx();
    if (ctx.profiler())
        ctx.profiler()->sync();
    if (ctx.tracker())
        ctx.tracker()->sync();

    if (metrics_writer_) {
        // vibe-lint: allow(obs-isolation) heartbeat FOM denominator
        // (see cycle_start above); taken only when metrics are on.
        const double cycle_wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - cycle_start)
                .count();
        emitHeartbeat(stats, cycle_wall);
    }
}

namespace {

/**
 * Parse the ":<gid>" suffix per-block task names carry, or -1. Fused
 * and pairwise tasks use non-numeric suffixes (":plan:bounds",
 * ":r0>r1"), so requiring all digits after the last ':' is exact.
 */
int
taskNameGid(const std::string& name)
{
    const std::size_t pos = name.rfind(':');
    if (pos == std::string::npos || pos + 1 >= name.size())
        return -1;
    int gid = 0;
    for (std::size_t i = pos + 1; i < name.size(); ++i) {
        const char c = name[i];
        if (c < '0' || c > '9')
            return -1;
        gid = gid * 10 + (c - '0');
    }
    return gid;
}

} // namespace

void
EvolutionDriver::runGraph(TaskList& tl, const TaskExecOptions& options)
{
    tl.setTrace(mesh_->collectiveRank(), cycle_);
    tl.execute(options);
    // Measured-cost harvest: fold each per-block task's wall clock
    // onto its block. Comm tasks are included — pack/unpack scale with
    // a block's surface and belong to it; poll attempts are cheap
    // probes that add noise the EMA smooths out.
    if (config_.lbCost == LbCostMode::Measured)
        tl.forEachTask([this](const std::string& name, TaskCategory,
                              double seconds) {
            const int gid = taskNameGid(name);
            if (gid >= 0)
                cost_model_.addSample(gid, seconds);
        });
    const double wall = tl.lastExecuteSeconds();
    const double comm = tl.categorySeconds(TaskCategory::Comm);
    const double compute = tl.categorySeconds(TaskCategory::Compute);
    task_wall_seconds_ += wall;
    task_comm_seconds_ += comm;
    task_compute_seconds_ += compute;
    const int concurrency =
        options.space ? options.space->concurrency() : 1;
    cycle_task_wall_ += wall;
    cycle_busy_ += comm + compute;
    // Idle = capacity the executor offered minus capacity task bodies
    // used. Clamped: timer granularity can make busy exceed wall x
    // threads by epsilon on tiny graphs.
    cycle_idle_ += std::max(
        0.0, wall * concurrency - (comm + compute));
    cycle_critical_ += tl.criticalPathSeconds();
}

void
EvolutionDriver::accountFused(double seconds)
{
    const int concurrency = mesh_->ctx().space().concurrency();
    task_wall_seconds_ += seconds;
    task_compute_seconds_ += seconds;
    cycle_task_wall_ += seconds;
    cycle_busy_ += seconds * concurrency;
    cycle_critical_ += seconds;
    // A fused launch yields no per-block clocks; spread its wall time
    // evenly over the blocks it stepped so pack-mode measured costs
    // stay well-defined (they degrade toward uniform, never to zero).
    if (config_.lbCost == LbCostMode::Measured) {
        const auto& owned = mesh_->ownedBlocks();
        if (!owned.empty()) {
            const double share =
                seconds / static_cast<double>(owned.size());
            for (const MeshBlock* block : owned)
                cost_model_.addSample(block->gid(), share);
        }
    }
}

void
EvolutionDriver::emitHeartbeat(const CycleStats& stats,
                               double cycle_wall)
{
    MetricsRegistry m;
    m.set("cycle", static_cast<double>(stats.cycle));
    m.set("time", stats.time);
    m.set("dt", stats.dt);
    m.set("wall_seconds", cycle_wall);
    m.set("nblocks", static_cast<double>(stats.nblocks));
    m.set("interior_cells", static_cast<double>(stats.interiorCells));
    m.set("fom.zone_cycles_per_s",
          cycle_wall > 0
              ? static_cast<double>(stats.interiorCells) / cycle_wall
              : 0.0);
    m.set("boundary.messages",
          static_cast<double>(stats.boundaryMessages));
    m.set("boundary.bytes", stats.boundaryBytes);
    m.set("wire.cells", static_cast<double>(stats.wireCells));
    m.set("wire.faces", static_cast<double>(stats.wireFaces));
    m.set("amr.refined", static_cast<double>(stats.refined));
    m.set("amr.derefined", static_cast<double>(stats.derefined));
    m.set("lb.moved_blocks", static_cast<double>(stats.movedBlocks));
    m.set("lb.migrated_bytes", stats.migratedStorageBytes);
    m.set("lb.decision", static_cast<double>(stats.lbDecision));
    m.set("lb.imbalance", stats.lbImbalance);
    m.set("lb.max_rank_cost", stats.lbMaxRankCost);
    m.set("lb.mean_rank_cost", stats.lbMeanRankCost);
    m.set("mass", stats.mass);
    m.set("checkpoint.seconds", stats.checkpointSeconds);
    m.set("task.wall_seconds", stats.taskWallSeconds);
    m.set("task.busy_seconds", stats.busySeconds);
    m.set("task.idle_seconds", stats.idleSeconds);
    m.set("task.critical_path_seconds", stats.criticalPathSeconds);
    if (const BlockMemoryPool* pool = mesh_->memoryPool()) {
        m.set("pool.hits", static_cast<double>(pool->poolHits()));
        m.set("pool.fresh_allocs",
              static_cast<double>(pool->freshAllocs()));
        m.set("pool.idle_bytes",
              static_cast<double>(pool->idleBytes()));
    }
    const Traffic traffic = world_->traffic();
    m.set("traffic.remote_messages",
          static_cast<double>(traffic.remoteMessages));
    m.set("traffic.remote_bytes", traffic.remoteBytes);
    m.set("traffic.all_reduces",
          static_cast<double>(traffic.allReduces));
    m.set("traffic.all_gathers",
          static_cast<double>(traffic.allGathers));
    metrics_writer_->writeCycle(m);
}

TaskExecOptions
EvolutionDriver::stageExecOptions() const
{
    TaskExecOptions options;
    options.space = &mesh_->ctx().space();
    // On a rank team, this graph's polls wait on messages produced by
    // OTHER ranks' driver threads: completion counts say nothing about
    // progress, so stalls are judged by wall clock instead — and a
    // peer failure aborts promptly rather than burning the deadline.
    options.external_progress = world_->concurrent();
    options.external_stall_seconds = kPeerWaitSeconds;
    if (options.external_progress) {
        RankWorld* world = world_;
        options.external_abort = [world]() -> std::string {
            // failed() is a lock-free fast path; the reason (one lock)
            // is only fetched on the failure path itself.
            return world->failed() ? world->failureReason()
                                   : std::string();
        };
    }
    return options;
}

void
EvolutionDriver::maybeWriteCheckpoint(CycleStats& stats)
{
    if (config_.checkpointEvery <= 0 ||
        cycle_ % config_.checkpointEvery != 0)
        return;
    // Capture needs real block state; counting mode has none.
    if (!mesh_->ctx().executing())
        return;
    TraceSpan span("CheckpointCapture", TraceCat::Io,
                   mesh_->collectiveRank(), cycle_);
    // vibe-lint: allow(obs-isolation) capture seconds are a CycleStats
    // field of their own (stats.checkpointSeconds), not a log line.
    const auto start = std::chrono::steady_clock::now();
    // The capture runs as a task in the stage graph: the gather is a
    // collective (every rank's poll/abort policy applies), and the
    // graph accounting folds the capture into the comm columns the
    // benches report. One task always executes on the serial backend,
    // so the capture point is deterministic.
    CheckpointImage image;
    TaskList tl;
    tl.setLabel("checkpoint");
    tl.addTask(
        "CheckpointCaptureGather",
        [this, &image] {
            image = captureCheckpoint(*mesh_, *world_,
                                      package_->name(), cycle_, time_);
            return TaskStatus::Complete;
        },
        {}, TaskCategory::Comm);
    runGraph(tl, stageExecOptions());
    // Only the rank holding the writer (rank 0 on a team) touches
    // disk; the image every other rank assembled is identical and is
    // simply dropped.
    if (checkpoint_writer_)
        checkpoint_writer_->write(std::move(image));
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    stats.checkpointSeconds += seconds;
    checkpoint_capture_seconds_ += seconds;
}

void
EvolutionDriver::step()
{
    const bool fc = mesh_->config().amrLevels > 1;

    if (mesh_->config().packInterior) {
        stepPacked(fc);
        return;
    }

    saveState(*mesh_);
    for (int stage = 1; stage <= 2; ++stage) {
        TaskList tl = exchange_.fused()
                          ? buildStageGraphFused(stage, fc)
                          : buildStageGraph(stage, fc);
        runGraph(tl, stageExecOptions());

        comm_cells_ += exchange_.lastWireCells();
        boundary_messages_ += exchange_.lastBoundaryMessages();
        boundary_bytes_ += exchange_.lastBoundaryBytes();
        if (fc)
            comm_faces_ += mesh_->sharded()
                               ? cache_.totalWireFacesFor(
                                     mesh_->shardRank())
                               : cache_.totalWireFaces();
    }
    package_->fillDerived(*mesh_);
}

MeshBlockPack&
EvolutionDriver::ensurePack()
{
    pack_.ensureBuilt(*mesh_);
    return pack_;
}

/**
 * Fused-pack timestep (paper fig05 small-block regime): ghost exchange
 * and flux correction still run as per-block task graphs — those are
 * genuinely irregular — but every interior phase is ONE hierarchical
 * pack launch over all blocks instead of one launch (or task) per
 * block. The chunked (block x cells) domain keeps all workers loaded
 * even when num_blocks < num_threads or blocks are tiny, and the
 * per-launch pool synchronization is paid once per phase rather than
 * once per block. The tradeoff versus the per-block graph is
 * exchange/compute overlap, which the launch-overhead savings dominate
 * exactly where packing is enabled.
 *
 * Fused compute is accounted into the task wall/compute counters so
 * the fig14-style overlap arithmetic stays well-defined in pack mode.
 */
void
EvolutionDriver::stepPacked(bool flux_correction)
{
    // vibe-lint: allow(obs-isolation) fused launches run outside any
    // task graph, so this clock is the only source of the fused
    // compute seconds the overlap/idle accounting folds in.
    using clock = std::chrono::steady_clock;
    MeshBlockPack& pack = ensurePack();
    const TaskExecOptions options = stageExecOptions();

    saveStatePack(*mesh_, pack);
    for (int stage = 1; stage <= 2; ++stage) {
        TaskList bounds = exchange_.fused() ? buildBoundsGraphFused()
                                            : buildBoundsGraph();
        runGraph(bounds, options);

        const auto t_flux = clock::now();
        package_->calculateFluxesPack(*mesh_, pack);
        double fused_seconds =
            std::chrono::duration<double>(clock::now() - t_flux)
                .count();

        if (flux_correction) {
            TaskList fcorr = exchange_.fused()
                                 ? buildFluxCorrGraphFused()
                                 : buildFluxCorrGraph();
            runGraph(fcorr, options);
        }

        const auto t_update = clock::now();
        package_->fluxDivergencePack(*mesh_, pack);
        stageUpdatePack(*mesh_, pack, stage, dt_);
        fused_seconds +=
            std::chrono::duration<double>(clock::now() - t_update)
                .count();
        accountFused(fused_seconds);

        comm_cells_ += exchange_.lastWireCells();
        boundary_messages_ += exchange_.lastBoundaryMessages();
        boundary_bytes_ += exchange_.lastBoundaryBytes();
        if (flux_correction)
            comm_faces_ += mesh_->sharded()
                               ? cache_.totalWireFacesFor(
                                     mesh_->shardRank())
                               : cache_.totalWireFaces();
    }
    package_->fillDerivedPack(*mesh_, pack);
}

TaskList
EvolutionDriver::buildBoundsGraph()
{
    TaskList tl;
    const TaskId t_start = tl.addTask(
        "StartReceiveBoundBufs",
        [this] {
            exchange_.startReceiveBoundBufs();
            return TaskStatus::Complete;
        },
        {}, TaskCategory::Comm);
    for (MeshBlock* block : mesh_->ownedBlocks())
        addBoundsTasks(tl, block, t_start);
    return tl;
}

TaskList
EvolutionDriver::buildFluxCorrGraph()
{
    // All fluxes are already computed when this graph runs, so the
    // send/poll pair needs no dependencies.
    TaskList tl;
    for (MeshBlock* block : mesh_->ownedBlocks())
        addFluxCorrTasks(tl, block, {});
    return tl;
}

EvolutionDriver::FusedBoundsIds
EvolutionDriver::addFusedBoundsTasks(TaskList& tl)
{
    const TaskId t_start = tl.addTask(
        "StartReceiveBoundBufs",
        [this] {
            exchange_.startReceiveBoundBufsFused();
            return TaskStatus::Complete;
        },
        {}, TaskCategory::Comm);
    FusedBoundsIds ids;
    ids.send = tl.addTask(
        "SendBoundBufs:plan:bounds",
        [this] {
            exchange_.sendBoundBufsFused();
            return TaskStatus::Complete;
        },
        {t_start}, TaskCategory::Comm);
    // One poll per inbound coalesced message — O(rank pairs), where
    // the per-face graph polls O(blocks). Self-pair polls depend only
    // on t_start: the send task has no poll dependencies, so the
    // executor always reaches it and the polls then complete.
    std::vector<TaskId> polls;
    const auto& msgs = exchange_.plan().messages(PlanPhase::Bounds);
    for (int id : exchange_.fusedRecvIds(PlanPhase::Bounds)) {
        const PlanMessage* m = &msgs[static_cast<std::size_t>(id)];
        polls.push_back(tl.addTask(
            "ReceiveBoundBufs:plan:bounds:r" + std::to_string(m->src) +
                ">r" + std::to_string(m->dst),
            [this, m] {
                return exchange_.pollFusedMessage(*m)
                           ? TaskStatus::Complete
                           : TaskStatus::Iterate;
            },
            {t_start}, TaskCategory::Comm));
    }
    ids.set = tl.addTask(
        "SetBounds:plan:bounds",
        [this] {
            exchange_.setBoundsFused();
            // Physical fills run after ALL unpacks, preserving each
            // block's per-face order (unpack, then fill).
            for (MeshBlock* block : mesh_->ownedBlocks())
                exchange_.applyPhysicalBoundariesBlock(*block);
            return TaskStatus::Complete;
        },
        std::move(polls), TaskCategory::Comm);
    return ids;
}

TaskId
EvolutionDriver::addFusedFluxCorrTasks(TaskList& tl,
                                       std::vector<TaskId> deps)
{
    const TaskId t_fsend = tl.addTask(
        "FluxCorrSend:plan:flux",
        [this] {
            exchange_.sendFluxCorrectionsFused();
            return TaskStatus::Complete;
        },
        std::move(deps), TaskCategory::Comm);
    std::vector<TaskId> apply_deps{t_fsend};
    const auto& msgs = exchange_.plan().messages(PlanPhase::Flux);
    for (int id : exchange_.fusedRecvIds(PlanPhase::Flux)) {
        const PlanMessage* m = &msgs[static_cast<std::size_t>(id)];
        apply_deps.push_back(tl.addTask(
            "FluxCorrRecv:plan:flux:r" + std::to_string(m->src) +
                ">r" + std::to_string(m->dst),
            [this, m] {
                return exchange_.pollFusedMessage(*m)
                           ? TaskStatus::Complete
                           : TaskStatus::Iterate;
            },
            {t_fsend}, TaskCategory::Comm));
    }
    return tl.addTask(
        "FluxCorrApply:plan:flux",
        [this] {
            exchange_.setFluxCorrectionsFused();
            return TaskStatus::Complete;
        },
        std::move(apply_deps), TaskCategory::Comm);
}

/**
 * One RK stage over the boundary plan: the comm side of the graph
 * collapses from O(blocks x faces) tasks to O(rank pairs) — one fused
 * send, one poll per inbound coalesced message, one fused set — while
 * the per-block compute chain is unchanged. The tradeoff mirrors
 * pack_interior: per-block receive/compute overlap is traded for one
 * launch (and one message) per phase per rank pair.
 */
TaskList
EvolutionDriver::buildStageGraphFused(int stage, bool flux_correction)
{
    // Serial point: if the rebuild hook fired, the plan rebuild
    // happens here, before any task can read the tables.
    exchange_.plan().ensureBuilt();
    TaskList tl;
    tl.setLabel("plan:bounds+flux stage " + std::to_string(stage));
    const FusedBoundsIds bounds = addFusedBoundsTasks(tl);

    const bool serialize_flux =
        mesh_->config().optimizeAuxMemory &&
        mesh_->ctx().space().concurrency() > 1;
    TaskId prev_flux = -1;

    const std::vector<MeshBlock*>& owned = mesh_->ownedBlocks();
    std::vector<TaskId> flux_tasks;
    flux_tasks.reserve(owned.size());
    for (MeshBlock* block : owned) {
        std::vector<TaskId> flux_deps{bounds.set};
        if (serialize_flux && prev_flux >= 0)
            flux_deps.push_back(prev_flux);
        const TaskId t_flux = tl.addTask(
            "CalculateFluxes:" + std::to_string(block->gid()),
            [this, block] {
                package_->calculateFluxesBlock(*mesh_, *block);
                return TaskStatus::Complete;
            },
            std::move(flux_deps));
        prev_flux = t_flux;
        flux_tasks.push_back(t_flux);
    }

    // The fused correction gates every divergence: corrections only
    // flow once all fluxes exist, exactly as the per-face path orders
    // each block's send before its apply.
    TaskId t_fapply = -1;
    if (flux_correction)
        t_fapply = addFusedFluxCorrTasks(tl, flux_tasks);

    for (std::size_t b = 0; b < owned.size(); ++b) {
        MeshBlock* block = owned[b];
        const std::string gid = std::to_string(block->gid());
        const TaskId t_div = tl.addTask(
            "FluxDivergence:" + gid,
            [this, block] {
                package_->fluxDivergenceBlock(*mesh_, *block);
                return TaskStatus::Complete;
            },
            {flux_correction ? t_fapply : flux_tasks[b]});
        // As in the per-face graph: the update rewrites the interior
        // the fused send reads, so it must trail the send task.
        tl.addTask(
            "WeightedSumData:" + gid,
            [this, block, stage] {
                stageUpdateBlock(*mesh_, *block, stage, dt_);
                return TaskStatus::Complete;
            },
            {t_div, bounds.send});
    }
    return tl;
}

TaskList
EvolutionDriver::buildBoundsGraphFused()
{
    exchange_.plan().ensureBuilt();
    TaskList tl;
    tl.setLabel("plan:bounds");
    addFusedBoundsTasks(tl);
    return tl;
}

TaskList
EvolutionDriver::buildFluxCorrGraphFused()
{
    exchange_.plan().ensureBuilt();
    TaskList tl;
    tl.setLabel("plan:flux");
    addFusedFluxCorrTasks(tl, {});
    return tl;
}

/**
 * One RK stage as a per-block task graph (paper §II-C): every block
 * contributes its own send / poll / unpack / flux / divergence /
 * update chain, so boundary-receive polling tasks interleave with the
 * interior compute of blocks whose ghosts already arrived. Tasks for
 * distinct blocks only touch their own block's data (sends read the
 * sender's interior, unpacks write the receiver's ghosts), which is
 * what makes threaded execution bitwise identical to the serial scan.
 */
TaskList
EvolutionDriver::buildStageGraph(int stage, bool flux_correction)
{
    TaskList tl;
    const TaskId t_start = tl.addTask(
        "StartReceiveBoundBufs",
        [this] {
            exchange_.startReceiveBoundBufs();
            return TaskStatus::Complete;
        },
        {}, TaskCategory::Comm);

    // The §VIII-B memory optimization shares reconstruction scratch
    // across blocks; under a threaded executor the flux tasks must
    // then run one at a time.
    const bool serialize_flux =
        mesh_->config().optimizeAuxMemory &&
        mesh_->ctx().space().concurrency() > 1;
    TaskId prev_flux = -1;

    for (MeshBlock* block : mesh_->ownedBlocks()) {
        const std::string gid = std::to_string(block->gid());
        const BoundsTaskIds bounds = addBoundsTasks(tl, block, t_start);

        std::vector<TaskId> flux_deps{bounds.set};
        if (serialize_flux && prev_flux >= 0)
            flux_deps.push_back(prev_flux);
        const TaskId t_flux = tl.addTask(
            "CalculateFluxes:" + gid,
            [this, block] {
                package_->calculateFluxesBlock(*mesh_, *block);
                return TaskStatus::Complete;
            },
            std::move(flux_deps));
        prev_flux = t_flux;

        TaskId t_prev = t_flux;
        if (flux_correction)
            t_prev = addFluxCorrTasks(tl, block, {t_flux});
        const TaskId t_div = tl.addTask(
            "FluxDivergence:" + gid,
            [this, block] {
                package_->fluxDivergenceBlock(*mesh_, *block);
                return TaskStatus::Complete;
            },
            {t_prev});
        // The update rewrites the block's interior, which the block's
        // own send task reads — the t_send edge keeps a slow pack from
        // racing an overtaking update chain.
        tl.addTask(
            "WeightedSumData:" + gid,
            [this, block, stage] {
                stageUpdateBlock(*mesh_, *block, stage, dt_);
                return TaskStatus::Complete;
            },
            {t_div, bounds.send});
    }
    return tl;
}

EvolutionDriver::BoundsTaskIds
EvolutionDriver::addBoundsTasks(TaskList& tl, MeshBlock* block,
                                TaskId t_start)
{
    const std::string gid = std::to_string(block->gid());
    BoundsTaskIds ids;
    // Sends read only the sender's interior and unpacks write only
    // the receiver's ghosts, so SetBounds needs no edge to the
    // block's own send task — the receive poll alone gates it.
    ids.send = tl.addTask(
        "SendBoundBufs:" + gid,
        [this, block] {
            exchange_.sendBlockBounds(*block);
            return TaskStatus::Complete;
        },
        {t_start}, TaskCategory::Comm);
    ids.poll = tl.addTask(
        "ReceiveBoundBufs:" + gid,
        [this, block] {
            return exchange_.pollBlockBounds(*block)
                       ? TaskStatus::Complete
                       : TaskStatus::Iterate;
        },
        {t_start}, TaskCategory::Comm);
    ids.set = tl.addTask(
        "SetBounds:" + gid,
        [this, block] {
            exchange_.setBlockBounds(*block);
            exchange_.applyPhysicalBoundariesBlock(*block);
            return TaskStatus::Complete;
        },
        {ids.poll}, TaskCategory::Comm);
    return ids;
}

TaskId
EvolutionDriver::addFluxCorrTasks(TaskList& tl, MeshBlock* block,
                                  std::vector<TaskId> deps)
{
    const std::string gid = std::to_string(block->gid());
    const TaskId t_fsend = tl.addTask(
        "FluxCorrSend:" + gid,
        [this, block] {
            exchange_.sendBlockFluxCorrections(*block);
            return TaskStatus::Complete;
        },
        deps, TaskCategory::Comm);
    const TaskId t_fpoll = tl.addTask(
        "FluxCorrRecv:" + gid,
        [this, block] {
            return exchange_.pollBlockFluxCorrections(*block)
                       ? TaskStatus::Complete
                       : TaskStatus::Iterate;
        },
        std::move(deps), TaskCategory::Comm);
    return tl.addTask(
        "FluxCorrApply:" + gid,
        [this, block] {
            exchange_.setBlockFluxCorrections(*block);
            return TaskStatus::Complete;
        },
        {t_fsend, t_fpoll}, TaskCategory::Comm);
}

RefinementFlagMap
EvolutionDriver::gatherFlags(std::vector<FlagEntry> local,
                             double bytes_per_rank, CollAccount account)
{
    const std::vector<FlagEntry> all = world_->allGatherVec(
        mesh_->collectiveRank(), std::move(local), bytes_per_rank,
        account);
    RefinementFlagMap flags;
    for (const FlagEntry& entry : all)
        flags[entry.loc] = static_cast<RefinementFlag>(entry.flag);
    return flags;
}

RefinementFlagMap
EvolutionDriver::collectFlags()
{
    // Each rank decides for its owned shard only (tags on non-owned
    // replicas are stale); the union is all-gathered below, and
    // BlockTree::update sorts flagged leaves before processing, so the
    // replicated tree update is order-independent and deterministic.
    std::vector<FlagEntry> local;
    for (const MeshBlock* block : mesh_->ownedBlocks()) {
        RefinementFlag tag = block->tag();
        // Derefinement gap: a block must have existed for at least
        // `derefineGap` cycles before it may be coarsened (§II-G).
        if (tag == RefinementFlag::Derefine &&
            cycle_ - block->createdCycle() < config_.derefineGap)
            tag = RefinementFlag::None;
        if (tag != RefinementFlag::None)
            local.push_back({block->loc(), static_cast<int>(tag)});
    }
    // Flags are aggregated across ranks with an AllGather (one flag
    // per block).
    return gatherFlags(std::move(local),
                       4.0 * static_cast<double>(mesh_->numBlocks()) /
                           world_->nranks(),
                       CollAccount::Gather);
}

void
EvolutionDriver::loadBalancingAndAmr()
{
    const ExecContext& ctx = mesh_->ctx();
    last_refined_ = 0;
    last_derefined_ = 0;
    last_moved_ = 0;
    last_migrated_bytes_ = 0;
    last_lb_decision_ = 0;
    last_lb_imbalance_ = 0;
    last_lb_max_cost_ = 0;
    last_lb_mean_cost_ = 0;

    const bool do_amr = mesh_->config().amrLevels > 1 &&
                        config_.refineEvery > 0 &&
                        cycle_ % config_.refineEvery == 0;
    const bool do_lb =
        config_.lbEvery > 0 && cycle_ % config_.lbEvery == 0;

    // Fold this cycle's measured samples into block costs BEFORE any
    // restructure: samples are keyed by the gids the cycle stepped and
    // applyTreeUpdate renumbers them. The apply is a collective, and
    // cycle_/config_ are identical on every replica, so the team
    // enters it symmetrically. Refined/derefined blocks then inherit
    // the updated estimates through the mesh's cost split/sum.
    if (config_.lbCost == LbCostMode::Measured && do_lb)
        cost_model_.applyMeasuredCosts(*mesh_, *world_);

    BlockTree::UpdateResult update;
    if (do_amr) {
        tagger_->tagAll(*mesh_, time_, cycle_);

        {
            PhaseScope scope(ctx.profiler(), "UpdateMeshBlockTree");
            recordSerial(ctx, "collective", 1.0);
            update = mesh_->updateTree(collectFlags());
        }
    }

    {
        PhaseScope scope(ctx.profiler(), "Redistr.AndRef.MeshBlocks");
        if (update.changed()) {
            auto restructure = mesh_->applyTreeUpdate(update, cycle_);
            applyRestructureData(restructure);
            last_refined_ = static_cast<int>(restructure.refined.size());
            last_derefined_ =
                static_cast<int>(restructure.derefined.size());
        }
        if (do_lb) {
            auto lb = loadBalance(*mesh_, *world_, lbOptions());
            last_moved_ = lb.movedBlocks;
            last_migrated_bytes_ = lb.migratedStorageBytes;
            last_lb_decision_ = lb.adopted ? 1 : 2;
            last_lb_imbalance_ = lb.imbalance();
            last_lb_max_cost_ = lb.maxRankCost;
            last_lb_mean_cost_ = lb.meanRankCost;
        }
        if (update.changed() || last_moved_ > 0) {
            // BuildTagMapAndBoundaryBuffers + SetMeshBlockNeighbors.
            cache_.rebuild();
        }
    }
}

void
EvolutionDriver::applyRestructureData(
    const Mesh::Restructure& restructure)
{
    const ExecContext& ctx = mesh_->ctx();
    const bool sharded = mesh_->sharded();
    const int my_rank = mesh_->collectiveRank();

    // Prolongation is always owner-local: children inherit the
    // parent's rank, so the data and its destination live on one
    // rank. A sharded replica simply skips sets it does not own.
    for (const auto& refined : restructure.refined) {
        if (sharded && refined.parent->rank() != my_rank)
            continue;
        for (MeshBlock* child : refined.children) {
            ctx.setCurrentRank(child->rank());
            if (ctx.executing())
                prolongateParentToChild(ctx, *refined.parent, *child);
            else
                recordKernel(ctx, "ProlongRestrictLoop",
                             static_cast<double>(
                                 child->shape().interiorCells()),
                             {30.0, 8.0 * sizeof(double)},
                             static_cast<double>(child->shape().nx1));
        }
    }

    // Restriction can cross ranks: load balancing may have scattered a
    // sibling set, while the merged parent lands on the first child's
    // rank. Remote children restrict on their owner and ship the
    // coarse octant through a mailbox — send pass first, receive pass
    // second, so migrating sibling sets in both directions between two
    // ranks cannot deadlock.
    if (sharded && ctx.executing()) {
        for (const auto& derefined : restructure.derefined) {
            const int parent_rank = derefined.parent->rank();
            for (const auto& child : derefined.children) {
                if (child->rank() != my_rank ||
                    parent_rank == my_rank)
                    continue;
                ctx.setCurrentRank(my_rank);
                std::vector<double> payload =
                    restrictChildOctant(ctx, *child);
                const double bytes =
                    static_cast<double>(payload.size()) *
                    sizeof(double);
                ChannelId channel;
                channel.sender = child->loc();
                channel.receiver = derefined.parent->loc();
                channel.kind = ChannelKind::Block;
                // vibe-lint: allow(coalesced-comm) ChannelKind::Block
                // derefinement octant, not boundary traffic; sent at a
                // collectively synchronized restructure point.
                world_->isend(channel, my_rank, parent_rank,
                              std::move(payload), bytes);
            }
        }
        // vibe-lint: allow(obs-isolation) peer-wait deadline, not
        // timing instrumentation: bounds how long a parent waits for
        // a remote child's restriction octant.
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(kPeerWaitSeconds));
        for (const auto& derefined : restructure.derefined) {
            if (derefined.parent->rank() != my_rank)
                continue;
            ctx.setCurrentRank(my_rank);
            for (const auto& child : derefined.children) {
                if (child->rank() == my_rank) {
                    restrictChildToParent(ctx, *child,
                                          *derefined.parent);
                    continue;
                }
                ChannelId channel;
                channel.sender = child->loc();
                channel.receiver = derefined.parent->loc();
                channel.kind = ChannelKind::Block;
                std::optional<Message> msg;
                while (!(msg = world_->receive(channel)).has_value()) {
                    // Not require(): its message args are evaluated
                    // every iteration, and failureReason() locks.
                    if (world_->failed())
                        panic("remote restriction aborted: ",
                              world_->failureReason());
                    require(std::chrono::steady_clock::now() < deadline,
                            "remote restriction timed out waiting for ",
                            child->loc().str());
                    std::this_thread::yield();
                }
                applyRestrictedOctant(ctx, *derefined.parent,
                                      child->loc(), msg->payload);
            }
        }
        return;
    }

    for (const auto& derefined : restructure.derefined) {
        for (const auto& child : derefined.children) {
            ctx.setCurrentRank(derefined.parent->rank());
            if (ctx.executing())
                restrictChildToParent(ctx, *child, *derefined.parent);
            else
                recordKernel(ctx, "ProlongRestrictLoop",
                             static_cast<double>(
                                 child->shape().interiorCells() / 8),
                             {10.0, 9.0 * sizeof(double)},
                             static_cast<double>(child->shape().nx1 / 2));
        }
    }
}

} // namespace vibe
