/**
 * @file load_balance.hpp
 * Cost-based block-to-rank assignment (part of
 * RedistributeAndRefineMeshBlocks, paper §II-E).
 *
 * Parthenon assigns contiguous runs of the Z-ordered block list to
 * ranks so per-rank cost is balanced; blocks whose rank changes are
 * shipped over MPI using the ghost-exchange machinery. We reproduce
 * the same greedy prefix partition. On the classic (modeled) path the
 * shipped bytes are accounted only; on the rank-sharded path the move
 * is real — the source rank serializes the block's state through a
 * RankWorld mailbox, the destination rank materializes storage from
 * its own BlockMemoryPool and unpacks, and every replica relabels the
 * block's owner, so the partition stays replicated-deterministic.
 */
#pragma once

#include "comm/rank_world.hpp"
#include "driver/block_cost_model.hpp"
#include "mesh/mesh.hpp"

namespace vibe {

/** Tuning for one loadBalance() call. */
struct LoadBalanceOptions
{
    /**
     * Minimum projected improvement of the max/mean rank-cost
     * imbalance factor required to adopt a partition that moves
     * blocks (the `<amr> lb_imbalance_trigger` knob). 0 adopts every
     * change — the historical behavior. With measured (jittery) costs
     * a positive trigger keeps the SFC split from thrashing block
     * storage through the mailbox migration path for marginal gains.
     */
    double imbalanceTrigger = 0.0;
    /**
     * Cost source (the `<amr> lb_cost` knob). Uniform weighs every
     * block by its interior cell count — the historical behavior,
     * independent of the cost metadata riding the blocks. Measured
     * gathers the blocks' EMA-smoothed cost estimates and also syncs
     * every replica's cost metadata to the gathered map.
     */
    LbCostMode costMode = LbCostMode::Uniform;
};

/** Outcome of one load-balancing pass. */
struct LoadBalanceStats
{
    int movedBlocks = 0;      ///< Blocks whose owner rank changed.
    /** Modeled bytes for those moves (every array a block carries). */
    double movedBytes = 0;
    /**
     * Real payload serialized through RankWorld mailboxes (conserved +
     * derived state of migrated blocks). Zero on the classic path,
     * where moves only relabel; the gap between movedBytes and
     * migratedStorageBytes is exactly the scratch a migration never
     * ships because the receiver rebuilds it.
     */
    double migratedStorageBytes = 0;
    double maxRankCost = 0;   ///< Heaviest rank's total cost.
    double meanRankCost = 0;  ///< Average rank cost.
    /**
     * False when hysteresis rejected the proposed partition: nothing
     * moved and maxRankCost/meanRankCost describe the *kept* current
     * assignment (what the run actually pays), not the rejected one.
     */
    bool adopted = true;

    /** max/mean cost ratio; 1.0 is perfectly balanced. */
    double imbalance() const
    {
        return meanRankCost > 0 ? maxRankCost / meanRankCost : 1.0;
    }
};

/**
 * Greedy Z-order prefix partition of blocks over `world.nranks()`
 * ranks using per-block costs; re-homed blocks are shipped (really,
 * on a sharded replica; accounted, on the classic path) and the
 * serial partitioning work is recorded. In a rank team every rank
 * calls this collectively: the cost gather is the synchronization
 * point and each replica computes the identical partition (and, with
 * hysteresis, the identical adopt/skip decision).
 */
LoadBalanceStats loadBalance(Mesh& mesh, RankWorld& world,
                             const LoadBalanceOptions& options = {});

} // namespace vibe
