/**
 * @file load_balance.hpp
 * Cost-based block-to-rank assignment (part of
 * RedistributeAndRefineMeshBlocks, paper §II-E).
 *
 * Parthenon assigns contiguous runs of the Z-ordered block list to
 * ranks so per-rank cost is balanced; blocks whose rank changes are
 * shipped over MPI using the ghost-exchange machinery. We reproduce
 * the same greedy prefix partition and account the shipped bytes.
 */
#pragma once

#include "comm/rank_world.hpp"
#include "mesh/mesh.hpp"

namespace vibe {

/** Outcome of one load-balancing pass. */
struct LoadBalanceStats
{
    int movedBlocks = 0;      ///< Blocks whose owner rank changed.
    double movedBytes = 0;    ///< Data shipped for those moves.
    double maxRankCost = 0;   ///< Heaviest rank's total cost.
    double meanRankCost = 0;  ///< Average rank cost.

    /** max/mean cost ratio; 1.0 is perfectly balanced. */
    double imbalance() const
    {
        return meanRankCost > 0 ? maxRankCost / meanRankCost : 1.0;
    }
};

/**
 * Greedy Z-order prefix partition of blocks over `world.nranks()`
 * ranks using per-block costs; ships re-homed blocks (accounted as
 * remote traffic) and records the serial partitioning work.
 */
LoadBalanceStats loadBalance(Mesh& mesh, RankWorld& world);

} // namespace vibe
