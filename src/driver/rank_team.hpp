/**
 * @file rank_team.hpp
 * Rank-sharded execution: one EvolutionDriver per simulated rank, each
 * on its own thread with its own thread team, over a disjoint shard of
 * blocks (paper §V, measured rather than modeled).
 *
 * The decomposition mirrors Parthenon/AMReX distributed AMR:
 *
 * - Every rank holds a full *replica* of the mesh structure (the
 *   BlockTree, gids, neighbor lists, channel geometry) but
 *   materializes block storage only for its owned shard; every other
 *   block is a storage-less Shadow, which makes direct cross-rank
 *   memory access structurally impossible.
 * - All cross-rank coupling flows through the shared RankWorld: ghost
 *   and flux-correction buffers as mailbox messages, dt / mass history
 *   as value-carrying AllReduces, refinement flags as AllGathers, and
 *   load-balance moves as serialized whole-block payloads drawn into
 *   the destination rank's BlockMemoryPool.
 * - Remesh is a replicated collective: tags are computed on owned
 *   blocks, all-gathered, and every rank rebuilds the identical tree
 *   deterministically (BlockTree::update sorts its inputs), so no rank
 *   ever needs another rank's structure.
 *
 * Each rank also owns private instrumentation (KernelProfiler,
 * MemoryTracker) so the hot paths stay lock-free; the team merges them
 * into run-wide tables afterwards. N-rank runs are bitwise identical
 * to the 1-rank driver for any package — the rank-equivalence tests
 * enforce this across remesh and migration events.
 */
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "driver/evolution_driver.hpp"
#include "driver/tagger.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "util/thread_safety.hpp"

namespace vibe {

/** Launches and coordinates one driver per rank. */
class RankTeam
{
  public:
    /** Per-rank tagger factory (taggers may hold per-rank state). */
    using TaggerFactory =
        std::function<std::unique_ptr<RefinementTagger>(int rank)>;

    /**
     * @param mesh_config  Shared mesh configuration; numRanks (>= 1)
     *        selects the team size and numThreads the per-rank team.
     * @param registry     Variable declarations (outlives the team).
     * @param package      Physics package (stateless; shared by all
     *        ranks and outlives the team).
     * @param driver_config Loop controls, identical on every rank.
     * @param make_tagger  Builds each rank's refinement tagger.
     */
    RankTeam(const MeshConfig& mesh_config,
             const VariableRegistry& registry,
             const PackageDescriptor& package,
             const DriverConfig& driver_config,
             TaggerFactory make_tagger);
    ~RankTeam();

    RankTeam(const RankTeam&) = delete;
    RankTeam& operator=(const RankTeam&) = delete;

    /**
     * Initialize and evolve every rank concurrently; returns when all
     * rank threads finished. Each rank's state (mesh, driver,
     * instrumentation) is constructed on its own thread, so per-rank
     * profilers and trackers run their owner fast paths. Rethrows the
     * first rank failure after waking any peers blocked on the failed
     * rank. May be called once.
     */
    void run();

    int numRanks() const { return num_ranks_; }
    RankWorld& world() { return world_; }

    /**
     * Restore every rank from `image` instead of initializing fresh
     * (not owned; must outlive run()). The image may have been written
     * at any rank/thread count — each replica rebuilds the identical
     * structure and the restore's load balance re-shards storage.
     */
    void setRestoreImage(const CheckpointImage* image)
    {
        restore_image_ = image;
    }

    /**
     * Writer for periodic checkpoints (not owned; may be null).
     * Installed on rank 0's driver only — every rank still joins each
     * capture gather, keeping the collective symmetric.
     */
    void setCheckpointWriter(CheckpointWriter* writer)
    {
        checkpoint_writer_ = writer;
    }

    /** Fault injector installed on every rank (not owned; may be null). */
    void setFaultInjector(FaultInjector* injector)
    {
        fault_injector_ = injector;
    }

    /**
     * JSONL heartbeat writer (not owned; may be null). Installed on
     * rank 0's driver only, same discipline as the checkpoint writer:
     * one heartbeat stream per run, never one per rank.
     */
    void setMetricsWriter(MetricsWriter* writer)
    {
        metrics_writer_ = writer;
    }

    /** Per-rank state (valid after run()). */
    Mesh& mesh(int rank) { return *states_.at(rank)->mesh; }
    EvolutionDriver& driver(int rank)
    {
        return *states_.at(rank)->driver;
    }
    const KernelProfiler& profiler(int rank) const
    {
        return states_.at(rank)->profiler;
    }

    /**
     * The block at `loc` on its owner's replica (the copy that holds
     * real storage), or nullptr if `loc` is not a current leaf.
     */
    MeshBlock* ownedBlock(const LogicalLocation& loc);

    /** Wall seconds of run() (initialize + evolve, all ranks). */
    double wallSeconds() const { return wall_seconds_; }

    // --- Aggregated run-wide counters (valid after run()) -------------

    /** Zone-cycles of the whole mesh (identical on every rank). */
    std::int64_t zoneCycles() const;
    /** Ghost cells communicated, summed over ranks. */
    std::int64_t commCells() const;
    /** Flux-correction faces communicated, summed over ranks. */
    std::int64_t commFaces() const;
    /** Real state bytes migrated by load balancing over the run. */
    double migratedStorageBytes() const;

    /**
     * Rank 0's cycle history with the per-rank wire counters replaced
     * by team-wide sums (every other field is replicated by
     * construction: dt and mass are collective results, block counts
     * and remesh events are identical on all replicas).
     */
    std::vector<CycleStats> aggregatedHistory() const;

    /** Merge every rank's instrumentation into run-wide sinks. */
    void mergeInstrumentation(KernelProfiler* profiler,
                              MemoryTracker* tracker) const;

  private:
    struct RankState
    {
        KernelProfiler profiler;
        MemoryTracker tracker;
        std::unique_ptr<ExecContext> ctx;
        std::unique_ptr<Mesh> mesh;
        std::unique_ptr<RefinementTagger> tagger;
        std::unique_ptr<EvolutionDriver> driver;
    };

    void runRank(int rank);
    /**
     * Record this rank's failure (first exception wins) and wake every
     * peer blocked in a collective or poll loop, tagging the world
     * with the original error message so peers report the root cause.
     */
    void recordFailure(std::exception_ptr error,
                       const std::string& reason);

    MeshConfig mesh_config_;
    const VariableRegistry* registry_;
    const PackageDescriptor* package_;
    DriverConfig driver_config_;
    TaggerFactory make_tagger_;
    int num_ranks_;
    RankWorld world_;
    std::vector<std::unique_ptr<RankState>> states_;
    const CheckpointImage* restore_image_ = nullptr;
    CheckpointWriter* checkpoint_writer_ = nullptr;
    FaultInjector* fault_injector_ = nullptr;
    MetricsWriter* metrics_writer_ = nullptr;
    double wall_seconds_ = 0;
    bool ran_ = false;

    Mutex error_mutex_;
    std::exception_ptr first_error_ VIBE_GUARDED_BY(error_mutex_);
};

} // namespace vibe
