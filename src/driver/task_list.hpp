/**
 * @file task_list.hpp
 * Hierarchical task-based execution (paper §II-C): Parthenon sequences
 * each timestep stage as a dependency graph of tasks; polling tasks
 * (e.g. ReceiveBoundBufs) may return Iterate to be re-run until their
 * communication completes.
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace vibe {

/** Result of running one task once. */
enum class TaskStatus
{
    Complete, ///< Done; dependents may now run.
    Iterate,  ///< Not finished (e.g. waiting on messages); re-run later.
};

using TaskId = int;
using TaskFn = std::function<TaskStatus()>;

/**
 * A single-threaded task graph executor with Parthenon-style
 * semantics. Execution repeatedly scans for runnable tasks (all
 * dependencies complete) until every task has completed; a cycle or a
 * permanently-Iterate task triggers an error after a bound on passes.
 */
class TaskList
{
  public:
    /**
     * Add a task.
     * @param deps Tasks that must complete before this one runs.
     * @return Id usable as a dependency for later tasks.
     */
    TaskId addTask(std::string name, TaskFn fn,
                   std::vector<TaskId> deps = {});

    /** Number of tasks added. */
    std::size_t size() const { return tasks_.size(); }

    /**
     * Run all tasks to completion.
     * @param max_passes Safety bound on full scans (default generous).
     */
    void execute(int max_passes = 1000);

    /** Names in completion order of the last execute() call. */
    const std::vector<std::string>& completionOrder() const
    {
        return completion_order_;
    }

  private:
    struct Task
    {
        std::string name;
        TaskFn fn;
        std::vector<TaskId> deps;
        bool complete = false;
    };

    std::vector<Task> tasks_;
    std::vector<std::string> completion_order_;
};

} // namespace vibe
