/**
 * @file task_list.hpp
 * Hierarchical task-based execution (paper §II-C): Parthenon sequences
 * each timestep stage as a dependency graph of tasks; polling tasks
 * (e.g. ReceiveBoundBufs) may return Iterate to be re-run until their
 * communication completes.
 *
 * Execution has two backends behind one interface:
 *
 * - A serial scan (the historical behavior, bit for bit): repeatedly
 *   sweep the task vector running every ready task until all complete.
 * - A thread-pool executor: ready tasks are dispatched onto an
 *   ExecutionSpace (the PR-1 ThreadPoolSpace), each worker pulling
 *   from a shared ready queue; Iterate tasks are re-queued as polling
 *   tasks behind other ready work. Kernels launched from inside a task
 *   body degrade to in-line execution on the worker (the space's
 *   nested-launch rule), so a task is a unit of concurrency exactly as
 *   in Parthenon's one-task-per-stream model.
 *
 * Both backends record wall time per task (summed over Iterate
 * retries) and aggregate it by TaskCategory, which is what the
 * fig14 overlap bench uses to report how much exchange time hides
 * behind interior compute.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace vibe {

class ExecutionSpace;

/** Result of running one task once. */
enum class TaskStatus
{
    Complete, ///< Done; dependents may now run.
    Iterate,  ///< Not finished (e.g. waiting on messages); re-run later.
};

/** Coarse task classification for overlap accounting. */
enum class TaskCategory
{
    Compute, ///< Interior kernel work (fluxes, divergence, updates).
    Comm,    ///< Boundary pack/poll/unpack and flux-correction traffic.
};

using TaskId = int;
using TaskFn = std::function<TaskStatus()>;

/** Execution parameters for TaskList::execute. */
struct TaskExecOptions
{
    /** Safety bound on full scans of the serial backend. */
    int max_passes = 1000;
    /**
     * Consecutive zero-completion scans (serial) or idle polls scaled
     * by the task count (threaded) tolerated before the executor
     * panics naming the stuck tasks. Distinguishes a permanently
     * blocked polling task (progress stall) from a plain dependency
     * cycle, which is detected immediately.
     */
    int stall_passes = 100;
    /**
     * Space ready tasks are dispatched on. nullptr or concurrency 1
     * selects the serial scan (bit-exact seed behavior).
     */
    ExecutionSpace* space = nullptr;
    /**
     * Progress may arrive from outside this graph (another rank's
     * driver thread delivering mailbox messages). Zero-completion
     * scans then yield the CPU instead of counting toward the stall
     * panic, the pass bound is lifted, and a genuinely stuck graph is
     * detected by wall clock (`external_stall_seconds`) rather than by
     * pass count — a poll loop cannot know how long a peer needs.
     */
    bool external_progress = false;
    /** Wall-clock stall bound when external_progress is set. */
    double external_stall_seconds = 120.0;
    /**
     * Optional fast-abort probe for external_progress mode: polled on
     * zero-completion scans; returning a non-empty string panics
     * immediately with that string as the cause (a peer rank failed —
     * nothing will ever deliver) instead of burning the full
     * wall-clock stall bound. The string is the failing rank's
     * original error message, so every unwinding peer reports the
     * root cause and not just "a peer failed".
     */
    std::function<std::string()> external_abort;
};

/**
 * A task graph executor with Parthenon-style semantics. Tasks are
 * added with explicit dependencies; execute() runs them to completion
 * on the configured backend. A cycle panics immediately; a polling
 * task that stops making progress panics with the incomplete task
 * names after the stall bound.
 */
class TaskList
{
  public:
    /**
     * Add a task.
     * @param deps Tasks that must complete before this one runs.
     * @param category Overlap-accounting class (Compute by default).
     * @return Id usable as a dependency for later tasks.
     */
    TaskId addTask(std::string name, TaskFn fn,
                   std::vector<TaskId> deps = {},
                   TaskCategory category = TaskCategory::Compute);

    /** Number of tasks added. */
    std::size_t size() const { return tasks_.size(); }

    /**
     * Label this graph for diagnostics: stall/deadlock panics prefix
     * the incomplete-task listing with it, so a report names the graph
     * (e.g. the boundary-plan phase) and not just its task names.
     */
    void setLabel(std::string label) { label_ = std::move(label); }
    const std::string& label() const { return label_; }

    /** Run all tasks to completion on the serial backend. */
    void execute(int max_passes = 1000);

    /** Run all tasks to completion with explicit options. */
    void execute(const TaskExecOptions& options);

    /**
     * Names in completion order of the last execute() call. Serial
     * execution completes tasks in deterministic scan order; the
     * threaded executor records the actual completion sequence, which
     * is always a topological order of the dependency graph.
     */
    const std::vector<std::string>& completionOrder() const
    {
        return completion_order_;
    }

    /** Wall seconds of the last execute() call. */
    double lastExecuteSeconds() const { return last_execute_seconds_; }

    /**
     * Attribute this graph's task spans to (rank, cycle) in the obs
     * timeline. Both backends emit one span per task *attempt*
     * (attempts that return Iterate carry TraceEvent::kPollRetry, so
     * non-retry span counts are deterministic: exactly one completing
     * attempt per task). No-op overhead when tracing is off.
     */
    void setTrace(int rank, std::int64_t cycle)
    {
        trace_rank_ = rank;
        trace_cycle_ = cycle;
    }

    /**
     * Longest dependency chain of the last execute(), in summed task
     * seconds — the wall-clock lower bound no amount of concurrency
     * can beat. A single forward pass suffices because addTask
     * guarantees every dependency has a lower id.
     */
    double criticalPathSeconds() const;

    /**
     * Summed task wall seconds of the last execute() for one category
     * (Iterate retries included). Categories can sum to more than
     * lastExecuteSeconds() when tasks overlap — that surplus is the
     * communication time hidden behind compute.
     */
    double categorySeconds(TaskCategory category) const;

    /**
     * Visit every task's (name, category, measured seconds) after an
     * execute(). Per-block graphs suffix task names with ":<gid>", so
     * a visitor can re-attribute this graph's wall clocks to blocks
     * (the measured-cost load balancer's input).
     */
    template <typename Fn>
    void forEachTask(Fn&& fn) const
    {
        for (const Task& task : tasks_)
            fn(task.name, task.category, task.seconds);
    }

  private:
    struct Task
    {
        std::string name;
        TaskFn fn;
        std::vector<TaskId> deps;
        TaskCategory category = TaskCategory::Compute;
        bool complete = false;
        double seconds = 0;
    };

    void resetRunState();
    void executeSerial(const TaskExecOptions& options);
    void executeThreaded(const TaskExecOptions& options,
                         ExecutionSpace& space);
    std::string incompleteNames() const;

    std::vector<Task> tasks_;
    std::vector<std::string> completion_order_;
    std::string label_;
    double last_execute_seconds_ = 0;
    int trace_rank_ = 0;
    std::int64_t trace_cycle_ = -1;
};

} // namespace vibe
