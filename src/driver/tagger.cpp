#include "driver/tagger.hpp"

#include <algorithm>
#include <cmath>

#include "exec/par_for.hpp"

namespace vibe {

void
GradientTagger::tagAll(Mesh& mesh, double /*time*/,
                       std::int64_t /*cycle*/)
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "Refinement::Tag");
    for (MeshBlock* block : mesh.ownedBlocks()) {
        ctx.setCurrentRank(block->rank());
        block->setTag(package_->tagBlock(*block, ctx));
        // CheckAllRefinement walks every package with scalar heuristics
        // (§VIII-A "Refinement Tagging via Scalar Loops").
        recordSerial(ctx, "refine_check", 1.0);
    }
}

double
SphericalWaveTagger::radiusAt(double time) const
{
    const double span = params_.rMax - params_.rMin;
    if (span <= 0.0)
        return params_.rMin;
    const double phase = std::fmod(params_.speed * time, 2.0 * span);
    const double tri = phase < span ? phase : 2.0 * span - phase;
    return params_.rMin + tri;
}

void
SphericalWaveTagger::tagAll(Mesh& mesh, double time,
                            std::int64_t /*cycle*/)
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "Refinement::Tag");
    const double r = radiusAt(time);
    const BlockShape shape = mesh.config().blockShape();
    // Same kernel work the gradient criterion would launch per block.
    const KernelCosts tag_costs{120.0, 1.0 * sizeof(double)};

    for (MeshBlock* block : mesh.ownedBlocks()) {
        ctx.setCurrentRank(block->rank());
        recordKernel(ctx, "FirstDerivative",
                     static_cast<double>(shape.interiorCells()),
                     tag_costs, static_cast<double>(shape.nx1));
        recordSerial(ctx, "refine_check", 1.0);

        const BlockGeometry& g = block->geom();
        // Distance band from the shell center to the block's AABB.
        const double lo[3] = {g.x1min, g.x2min, g.x3min};
        const double hi[3] = {g.x1max, g.x2max, g.x3max};
        const double c[3] = {params_.cx, params_.cy, params_.cz};
        double dmin2 = 0.0, dmax2 = 0.0;
        const int ndim = shape.ndim;
        for (int d = 0; d < ndim; ++d) {
            const double below = lo[d] - c[d];
            const double above = c[d] - hi[d];
            const double outside = std::max({below, above, 0.0});
            dmin2 += outside * outside;
            const double far =
                std::max(std::fabs(c[d] - lo[d]), std::fabs(hi[d] - c[d]));
            dmax2 += far * far;
        }
        const double dmin = std::sqrt(dmin2);
        const double dmax = std::sqrt(dmax2);

        const double halo = params_.haloCells * g.dx1;
        const double w = params_.width + halo;
        bool intersects, far_away;
        if (params_.solid) {
            intersects = dmin <= r + w;
            far_away = dmin > params_.derefineFactor * (r + w);
        } else {
            intersects = dmin <= r + w && dmax >= r - w;
            far_away = dmin > r + params_.derefineFactor * w ||
                       dmax < r - params_.derefineFactor * w;
        }

        if (intersects)
            block->setTag(RefinementFlag::Refine);
        else if (far_away)
            block->setTag(RefinementFlag::Derefine);
        else
            block->setTag(RefinementFlag::None);
    }
}

} // namespace vibe
