#include "driver/rank_team.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "mesh/ownership_audit.hpp"
#include "util/logging.hpp"

namespace vibe {

RankTeam::RankTeam(const MeshConfig& mesh_config,
                   const VariableRegistry& registry,
                   const PackageDescriptor& package,
                   const DriverConfig& driver_config,
                   TaggerFactory make_tagger)
    : mesh_config_(mesh_config), registry_(&registry),
      package_(&package), driver_config_(driver_config),
      make_tagger_(std::move(make_tagger)),
      num_ranks_(mesh_config.numRanks),
      world_(mesh_config.numRanks,
             /*concurrent=*/mesh_config.numRanks > 1)
{
    require(num_ranks_ >= 1, "RankTeam needs at least one rank");
    require(make_tagger_ != nullptr, "RankTeam needs a tagger factory");
    states_.resize(static_cast<std::size_t>(num_ranks_));
}

RankTeam::~RankTeam() = default;

void
RankTeam::runRank(int rank)
{
    try {
        // In VIBE_AUDIT_OWNERSHIP builds, register this thread as the
        // rank's driver so every MeshBlock storage access it performs
        // is checked against block ownership.
        ownership_audit::ScopedRank audit_rank(rank);
        // Construct everything on this thread: the profiler and
        // tracker take it as their owner (lock-free fast paths), the
        // pool's restructure-path assertions hold, and the execution
        // space's workers belong to this rank alone.
        auto state = std::make_unique<RankState>();
        state->ctx = std::make_unique<ExecContext>(
            ExecMode::Execute, &state->profiler, &state->tracker,
            makeExecutionSpace(mesh_config_.numThreads));
        state->mesh = std::make_unique<Mesh>(mesh_config_, *registry_,
                                             *state->ctx, rank);
        state->tagger = make_tagger_(rank);
        require(state->tagger != nullptr,
                "tagger factory returned null for rank ", rank);
        state->driver = std::make_unique<EvolutionDriver>(
            *state->mesh, *package_, world_, *state->tagger,
            driver_config_);
        states_[static_cast<std::size_t>(rank)] = std::move(state);

        EvolutionDriver& driver =
            *states_[static_cast<std::size_t>(rank)]->driver;
        if (fault_injector_)
            driver.setFaultInjector(fault_injector_);
        // Rank 0 alone touches disk; every rank joins the gathers.
        if (rank == 0 && checkpoint_writer_)
            driver.setCheckpointWriter(checkpoint_writer_);
        if (rank == 0 && metrics_writer_)
            driver.setMetricsWriter(metrics_writer_);
        if (restore_image_)
            driver.initializeFromCheckpoint(*restore_image_);
        else
            driver.initialize();
        driver.run();
    } catch (const std::exception& e) {
        recordFailure(std::current_exception(), e.what());
    } catch (...) {
        recordFailure(std::current_exception(),
                      "rank " + std::to_string(rank) +
                          " threw a non-std exception");
    }
}

void
RankTeam::recordFailure(std::exception_ptr error,
                        const std::string& reason)
{
    {
        LockGuard lock(error_mutex_);
        if (!first_error_)
            first_error_ = std::move(error);
    }
    // Wake peers blocked in collectives or poll loops so the team
    // unwinds instead of hanging on a dead rank. The reason travels
    // with the wakeup: peers aborting on failed() echo the original
    // message, not a generic "a peer rank failed". A peer's own
    // secondary abort arriving here later cannot clobber it —
    // markFailed keeps the first recorded reason.
    world_.markFailed(reason);
}

void
RankTeam::run()
{
    require(!ran_, "RankTeam::run() may only be called once");
    ran_ = true;

    // vibe-lint: allow(obs-isolation) run wall clock is the measured
    // FOM denominator (ExperimentResult::wallSeconds), not logging.
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_ranks_));
    for (int rank = 0; rank < num_ranks_; ++rank)
        threads.emplace_back([this, rank] { runRank(rank); });
    for (std::thread& thread : threads)
        thread.join();
    wall_seconds_ = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();

    // The rank threads have joined; the lock satisfies the analysis.
    std::exception_ptr error;
    {
        LockGuard lock(error_mutex_);
        error = first_error_;
    }
    if (error)
        std::rethrow_exception(error);
    for (int rank = 0; rank < num_ranks_; ++rank)
        require(states_[static_cast<std::size_t>(rank)] != nullptr,
                "rank ", rank, " never constructed its state");
}

MeshBlock*
RankTeam::ownedBlock(const LogicalLocation& loc)
{
    const int owner = mesh(0).ownerOf(loc);
    if (owner < 0)
        return nullptr;
    return mesh(owner).find(loc);
}

std::int64_t
RankTeam::zoneCycles() const
{
    // Every rank's driver counts whole-mesh interior cells per cycle
    // (the replicated structure), so rank 0 already holds the global
    // figure-of-merit numerator.
    return states_.front()->driver->zoneCycles();
}

std::int64_t
RankTeam::commCells() const
{
    std::int64_t cells = 0;
    for (const auto& state : states_)
        cells += state->driver->commCells();
    return cells;
}

std::int64_t
RankTeam::commFaces() const
{
    std::int64_t faces = 0;
    for (const auto& state : states_)
        faces += state->driver->commFaces();
    return faces;
}

double
RankTeam::migratedStorageBytes() const
{
    // Replicated on every rank (each replica computes the global sum
    // over moved blocks); take rank 0's history.
    double bytes = 0;
    for (const CycleStats& stats :
         states_.front()->driver->history())
        bytes += stats.migratedStorageBytes;
    return bytes;
}

std::vector<CycleStats>
RankTeam::aggregatedHistory() const
{
    std::vector<CycleStats> history =
        states_.front()->driver->history();
    for (std::size_t r = 1; r < states_.size(); ++r) {
        const auto& other = states_[r]->driver->history();
        require(other.size() == history.size(),
                "rank ", r, " recorded ", other.size(),
                " cycles, rank 0 recorded ", history.size());
        for (std::size_t c = 0; c < history.size(); ++c) {
            history[c].wireCells += other[c].wireCells;
            history[c].wireFaces += other[c].wireFaces;
            history[c].boundaryMessages += other[c].boundaryMessages;
            history[c].boundaryBytes += other[c].boundaryBytes;
        }
    }
    // Per-rank idle split (ROADMAP item 4's starvation signal), plus
    // team totals for the aggregate attribution fields: wall is the
    // slowest rank (they run concurrently), busy/idle are summed
    // thread-seconds, and the critical path is the longest any rank
    // saw — the team cannot finish a cycle before its slowest chain.
    for (std::size_t c = 0; c < history.size(); ++c) {
        history[c].rankIdleSeconds.assign(states_.size(), 0.0);
        history[c].taskWallSeconds = 0;
        history[c].busySeconds = 0;
        history[c].idleSeconds = 0;
        history[c].criticalPathSeconds = 0;
        for (std::size_t r = 0; r < states_.size(); ++r) {
            const CycleStats& own = states_[r]->driver->history()[c];
            history[c].rankIdleSeconds[r] = own.idleSeconds;
            history[c].taskWallSeconds = std::max(
                history[c].taskWallSeconds, own.taskWallSeconds);
            history[c].busySeconds += own.busySeconds;
            history[c].idleSeconds += own.idleSeconds;
            history[c].criticalPathSeconds =
                std::max(history[c].criticalPathSeconds,
                         own.criticalPathSeconds);
        }
    }
    return history;
}

void
RankTeam::mergeInstrumentation(KernelProfiler* profiler,
                               MemoryTracker* tracker) const
{
    for (const auto& state : states_) {
        if (profiler)
            profiler->merge(state->profiler);
        if (tracker)
            tracker->merge(state->tracker);
    }
}

} // namespace vibe
