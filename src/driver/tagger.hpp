/**
 * @file tagger.hpp
 * Refinement tagging policies (Refinement::Tag in the paper's Fig. 3).
 *
 * Two implementations:
 * - GradientTagger: defers to the physics package's tagBlock callback
 *   (for VIBE, the per-block first-derivative indicator over the
 *   velocity field; numeric mode).
 * - SphericalWaveTagger: an analytic expanding-ripple feature (the
 *   stone-in-water analogy of §II-C) that drives identical mesh
 *   *structure* evolution without touching cell data, so the large
 *   performance studies can run in counting mode. It records the same
 *   "FirstDerivative" kernel work the gradient criterion would launch.
 */
#pragma once

#include <cstdint>

#include "mesh/mesh.hpp"
#include "pkg/package_descriptor.hpp"

namespace vibe {

/** Policy interface: stamp a RefinementFlag on every block. */
class RefinementTagger
{
  public:
    virtual ~RefinementTagger() = default;

    /** Tag all blocks for cycle `cycle` at simulated time `time`. */
    virtual void tagAll(Mesh& mesh, double time, std::int64_t cycle) = 0;
};

/** Gradient-based tagging via the package's tagBlock callback. */
class GradientTagger : public RefinementTagger
{
  public:
    explicit GradientTagger(const PackageDescriptor& package)
        : package_(&package)
    {
    }

    void tagAll(Mesh& mesh, double time, std::int64_t cycle) override;

  private:
    const PackageDescriptor* package_;
};

/**
 * Analytic moving-shell tagging. A spherical wavefront of radius r(t)
 * sweeps the domain (bouncing between rMin and rMax so long runs stay
 * in-domain); blocks intersecting the shell refine, blocks far from it
 * derefine.
 */
class SphericalWaveTagger : public RefinementTagger
{
  public:
    struct Params
    {
        double cx = 0.5, cy = 0.5, cz = 0.5; ///< Shell center.
        double rMin = 0.10;  ///< Radius at t = 0.
        double rMax = 0.42;  ///< Bounce radius.
        double speed = 0.35; ///< Radial front speed.
        double width = 0.02; ///< Intrinsic shell half-thickness.
        /**
         * Extra tagging halo in cells of the block's own resolution:
         * gradient tagging fires when the front is within a few cells
         * of a block, so the effective thickness shrinks with block
         * size — the mechanism behind the paper's Fig. 1(a).
         */
        double haloCells = 2.0;
        /** Derefine when the shell is this many halos away. */
        double derefineFactor = 2.0;
        /**
         * Solid mode: tag the full ball of radius r(t) instead of the
         * thin shell. A compact feature refines a roughly constant
         * *block* count per level regardless of MeshBlockSize — the
         * regime behind the paper's §IV-B anchors (cell updates drop
         * ~5x from B32 to B16 while communicated cells, dominated by
         * the base grid, still grow ~2x).
         */
        bool solid = false;
    };

    SphericalWaveTagger() : params_() {}
    explicit SphericalWaveTagger(const Params& params) : params_(params)
    {
    }

    const Params& params() const { return params_; }

    /** Shell radius at time t (triangle wave between rMin and rMax). */
    double radiusAt(double time) const;

    void tagAll(Mesh& mesh, double time, std::int64_t cycle) override;

  private:
    Params params_;
};

} // namespace vibe
