/**
 * @file evolution_driver.hpp
 * The Parthenon timestep loop (paper Fig. 3): each cycle runs
 * Step (two RK2 stages of ghost exchange -> CalculateFluxes ->
 * flux correction -> FluxDivergence -> WeightedSumData, then
 * FillDerived), LoadBalancingAndAMR (Refinement::Tag ->
 * UpdateMeshBlockTree -> RedistributeAndRefineMeshBlocks), and
 * EstimateTimeStep, plus the per-cycle history reduction.
 *
 * The driver accumulates the workload counters (zone-cycles,
 * communicated cells, block counts) that the performance model and the
 * figure-of-merit computation consume.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/boundary_buffers.hpp"
#include "comm/ghost_exchange.hpp"
#include "comm/rank_world.hpp"
#include "driver/block_cost_model.hpp"
#include "driver/load_balance.hpp"
#include "driver/tagger.hpp"
#include "driver/task_list.hpp"
#include "mesh/block_pack.hpp"
#include "mesh/mesh.hpp"
#include "pkg/package_descriptor.hpp"
#include "solver/rk2.hpp"
#include "util/parameter_input.hpp"

namespace vibe {

class CheckpointWriter;
class FaultInjector;
class MetricsWriter;
struct CheckpointImage;

/** Loop-control parameters (paper §II-G policies as defaults). */
struct DriverConfig
{
    std::int64_t ncycles = 10;
    double tlim = 1e30;
    /** Timestep used in counting mode / before the first estimate. */
    double fixedDt = 2e-3;
    /** Minimum cycles between derefinements of a block (paper: 10). */
    int derefineGap = 10;
    /** Check refinement every N cycles (paper: 1). */
    int refineEvery = 1;
    /** Load balance every N cycles (paper: 1). */
    int lbEvery = 1;
    /**
     * Per-block cost fed to the partitioner (`<amr> lb_cost`, env
     * fallback VIBE_LB_COST): Uniform keeps the historical
     * interiorCells() weighting; Measured folds each cycle's per-task
     * wall clocks into an EMA per block, so spatially varying per-cell
     * work (the reaction package) rebalances.
     */
    LbCostMode lbCost = LbCostMode::Uniform;
    /**
     * Minimum projected max/mean imbalance improvement required to
     * adopt a partition that moves blocks (`<amr>
     * lb_imbalance_trigger`, 0 = always adopt).
     */
    double lbImbalanceTrigger = 0.0;
    /** Shuffle boundary keys in the buffer cache (§VIII-A). */
    bool randomizeBufferKeys = true;
    /**
     * Capture a checkpoint every N cycles (`<driver> checkpoint_every`,
     * 0 = never). The capture itself is collective — every rank frames
     * its shard and joins the gather — so the knob must be identical
     * across ranks; only a rank with an installed CheckpointWriter
     * (rank 0 on a team) also writes the file.
     */
    std::int64_t checkpointEvery = 0;
    /** Destination file (`<driver> checkpoint_path`). */
    std::string checkpointPath;
    /** Drain snapshots off-thread (`<driver> checkpoint_async`). */
    bool checkpointAsync = true;

    static DriverConfig fromParams(const ParameterInput& pin);
};

/** Per-cycle workload record. */
struct CycleStats
{
    std::int64_t cycle = 0;
    double time = 0;
    double dt = 0;
    std::size_t nblocks = 0;
    std::int64_t interiorCells = 0;
    std::int64_t wireCells = 0;     ///< Ghost cells moved this cycle.
    std::int64_t wireFaces = 0;     ///< Flux-correction faces moved.
    int refined = 0;                ///< Blocks split this cycle.
    int derefined = 0;              ///< Sibling sets merged this cycle.
    int movedBlocks = 0;            ///< Blocks re-homed by load balance.
    /**
     * Real state bytes serialized through mailboxes by this cycle's
     * load balance (0 on the classic relabel-only path); the modeled
     * counterpart is LoadBalanceStats::movedBytes.
     */
    double migratedStorageBytes = 0;
    /**
     * Load-balance outcome this cycle: 0 = the partitioner did not
     * run, 1 = partition adopted (possibly with zero moves), 2 =
     * proposal rejected by hysteresis.
     */
    int lbDecision = 0;
    /** max/mean rank-cost imbalance after this cycle's lb (0 = none). */
    double lbImbalance = 0;
    double lbMaxRankCost = 0;  ///< Heaviest rank's cost at last lb.
    double lbMeanRankCost = 0; ///< Mean rank cost at last lb.
    /**
     * Boundary messages sent this cycle (bounds + flux corrections,
     * local and remote; block migration excluded) and their modeled
     * payload bytes. Under the fused boundary plan the message count
     * drops from O(blocks x faces) to O(rank pairs) per phase while
     * the bytes stay identical — the benches report both per cycle.
     */
    std::uint64_t boundaryMessages = 0;
    double boundaryBytes = 0;
    double mass = 0;                ///< History output (numeric mode).
    /**
     * Wall seconds this cycle spent capturing a checkpoint snapshot
     * (the collective gather; the disk drain runs off-thread in async
     * mode and is reported by the writer instead). 0 on cycles with no
     * checkpoint.
     */
    double checkpointSeconds = 0;

    // Task-graph attribution (obs subsystem). Wall quantities are
    // per-rank wall seconds; busy/idle are thread-seconds summed over
    // the executor's concurrency, so busy + idle = wall x threads.
    /** Wall seconds this cycle's task graphs took to execute. */
    double taskWallSeconds = 0;
    /** Thread-seconds spent inside task bodies (compute + comm). */
    double busySeconds = 0;
    /**
     * Thread-seconds the executor had available but no ready task
     * filled — the starvation signal measured-cost load balancing
     * (ROADMAP item 4) attributes per rank.
     */
    double idleSeconds = 0;
    /**
     * Longest dependency chain through this cycle's graphs (summed
     * task seconds): the wall-clock floor no concurrency can beat.
     */
    double criticalPathSeconds = 0;
    /**
     * Per-rank idle thread-seconds. Empty on a plain per-rank history;
     * RankTeam::aggregatedHistory fills one entry per rank.
     */
    std::vector<double> rankIdleSeconds;
};

/** Runs the timestep loop over a Mesh. */
class EvolutionDriver
{
  public:
    /**
     * All dependencies outlive the driver. The driver owns the
     * boundary-buffer cache and ghost-exchange engine. The package is
     * any PackageDescriptor — the driver never names a concrete PDE.
     */
    EvolutionDriver(Mesh& mesh, const PackageDescriptor& package,
                    RankWorld& world, RefinementTagger& tagger,
                    const DriverConfig& config);

    /**
     * Phase "Initialise": initial conditions (numeric mode), initial
     * refinement iterations, initial load balance and ghost fill.
     */
    void initialize();

    /**
     * Restore instead of initialize(): rebuild the tree from the
     * image's leaf set, deserialize every block's state, adopt the
     * image's cycle/time and re-shard through the load-balance
     * migration path. Accepts any `num_ranks`/`num_threads` — the
     * image is decomposition-free — and continuation is bitwise
     * identical to the uninterrupted run. Validates the image against
     * this mesh/package and fatals on any mismatch.
     */
    void initializeFromCheckpoint(const CheckpointImage& image);

    /**
     * Install a checkpoint writer (not owned; may be null). On a rank
     * team only rank 0's driver gets one — every rank still joins the
     * capture gather, which is gated on `DriverConfig::checkpointEvery`
     * alone so the collective stays symmetric.
     */
    void setCheckpointWriter(CheckpointWriter* writer)
    {
        checkpoint_writer_ = writer;
    }

    /** Install a fault injector (not owned; may be null). */
    void setFaultInjector(FaultInjector* injector)
    {
        fault_injector_ = injector;
    }

    /**
     * Install a metrics writer (not owned; may be null). The driver
     * then emits one JSONL heartbeat record at the end of every cycle.
     * On a rank team only rank 0's driver gets one (same idiom as the
     * checkpoint writer), so the heartbeat's wire counters are rank
     * 0's shard view; run totals come from the Experiment footer.
     */
    void setMetricsWriter(MetricsWriter* writer)
    {
        metrics_writer_ = writer;
    }

    /** Wall seconds spent in checkpoint capture gathers so far. */
    double checkpointCaptureSeconds() const
    {
        return checkpoint_capture_seconds_;
    }

    /** Run until ncycles or tlim. */
    void run();

    /** One cycle: Step, LoadBalancingAndAMR, EstimateTimeStep. */
    void doCycle();

    std::int64_t cycle() const { return cycle_; }
    double time() const { return time_; }
    double dt() const { return dt_; }

    /** Total zone-cycles so far (FOM numerator, §III-A). */
    std::int64_t zoneCycles() const { return zone_cycles_; }
    /** Total ghost cells communicated so far. */
    std::int64_t commCells() const { return comm_cells_; }
    /** Total flux-correction faces communicated so far. */
    std::int64_t commFaces() const { return comm_faces_; }

    /**
     * Wall seconds spent executing the stage task graphs so far, and
     * the per-category task-time sums. Comm + compute exceeding wall
     * is exchange time hidden behind interior compute (fig14).
     */
    double taskWallSeconds() const { return task_wall_seconds_; }
    double taskCommSeconds() const { return task_comm_seconds_; }
    double taskComputeSeconds() const { return task_compute_seconds_; }

    const std::vector<CycleStats>& history() const { return history_; }

    BoundaryBufferCache& bufferCache() { return cache_; }
    GhostExchange& exchange() { return exchange_; }

    /**
     * The fused-launch pack over the current block list (used when
     * `MeshConfig::packInterior` is set). Invalidated automatically by
     * the buffer-cache rebuild hook on every restructure/load-balance
     * and rebuilt lazily, so between remeshes the view tables are
     * reused launch after launch.
     */
    const MeshBlockPack& interiorPack() const { return pack_; }

  private:
    void step();
    /** Partitioner tuning from the driver config (every lb call). */
    LoadBalanceOptions lbOptions() const
    {
        LoadBalanceOptions options;
        options.imbalanceTrigger = config_.lbImbalanceTrigger;
        options.costMode = config_.lbCost;
        return options;
    }
    /** Per-stage fused path: comm task graphs + pack launches. */
    void stepPacked(bool flux_correction);
    MeshBlockPack& ensurePack();
    /** Ids of one block's ghost-bounds task trio. */
    struct BoundsTaskIds
    {
        TaskId send = -1, poll = -1, set = -1;
    };
    /**
     * Add one block's send/poll/set ghost-bounds trio gated on
     * `t_start`. Shared by the per-block stage graph and the packed
     * bounds-only graph so the two paths cannot diverge.
     */
    BoundsTaskIds addBoundsTasks(TaskList& tl, MeshBlock* block,
                                 TaskId t_start);
    /**
     * Add one block's flux-correction send/poll/apply trio; send and
     * poll take `deps` (the block's flux task in graph mode, nothing
     * in packed mode). Returns the apply task id.
     */
    TaskId addFluxCorrTasks(TaskList& tl, MeshBlock* block,
                            std::vector<TaskId> deps);
    TaskList buildStageGraph(int stage, bool flux_correction);
    /** Ghost-bounds-only task graph (send/poll/set per block). */
    TaskList buildBoundsGraph();
    /** Flux-correction-only task graph (send/poll/apply per block). */
    TaskList buildFluxCorrGraph();

    /** Ids of the fused (boundary-plan) ghost-bounds task chain. */
    struct FusedBoundsIds
    {
        TaskId send = -1, set = -1;
    };
    /**
     * Add the fused bounds chain: start -> one fused send -> one poll
     * per inbound coalesced message -> one fused set. O(rank pairs)
     * tasks per phase instead of O(blocks). Requires a current plan
     * (the fused builders call ensureBuilt() first, at a serial point).
     */
    FusedBoundsIds addFusedBoundsTasks(TaskList& tl);
    /**
     * Add the fused flux-correction chain gated on `deps`; returns the
     * apply task id.
     */
    TaskId addFusedFluxCorrTasks(TaskList& tl, std::vector<TaskId> deps);
    /** Fused-path counterpart of buildStageGraph. */
    TaskList buildStageGraphFused(int stage, bool flux_correction);
    /** Fused-path counterpart of buildBoundsGraph. */
    TaskList buildBoundsGraphFused();
    /** Fused-path counterpart of buildFluxCorrGraph. */
    TaskList buildFluxCorrGraphFused();
    /** Execution options for stage graphs (space + peer-wait policy). */
    TaskExecOptions stageExecOptions() const;
    /**
     * Execute one task graph and fold its timings into the run totals
     * AND the current cycle's attribution accumulators (wall, busy,
     * idle, critical path) — the single funnel every stage graph,
     * bounds graph and checkpoint capture goes through, so the
     * fig14 overlap columns and the obs idle attribution cannot
     * diverge. Also stamps the graph's (rank, cycle) trace identity.
     */
    void runGraph(TaskList& tl, const TaskExecOptions& options);
    /**
     * Account a fused pack launch (stepPacked's single-launch interior
     * phases): launches keep every worker loaded by construction, so
     * they contribute wall + full-concurrency busy and extend the
     * critical path, but no idle.
     */
    void accountFused(double seconds);
    /** Emit the per-cycle JSONL heartbeat (metrics writer installed). */
    void emitHeartbeat(const CycleStats& stats, double cycle_wall);
    /**
     * Capture-and-enqueue hook at the end of a cycle: when the cycle
     * count hits `checkpointEvery`, run the collective capture as a
     * task in the stage graph and hand the image to the writer (if one
     * is installed on this rank).
     */
    void maybeWriteCheckpoint(CycleStats& stats);
    void loadBalancingAndAmr();
    void applyRestructureData(const Mesh::Restructure& restructure);

    /** One rank's refinement decision for a block (wire format). */
    struct FlagEntry
    {
        LogicalLocation loc;
        int flag = 0;
    };
    /**
     * Aggregate per-rank refinement flags into the replicated flag
     * map: a real AllGather on a sharded team (every rank receives the
     * union and rebuilds the identical tree), a pass-through on the
     * classic path.
     */
    RefinementFlagMap gatherFlags(std::vector<FlagEntry> local,
                                  double bytes_per_rank,
                                  CollAccount account);
    RefinementFlagMap collectFlags();

    Mesh* mesh_;
    const PackageDescriptor* package_;
    RankWorld* world_;
    RefinementTagger* tagger_;
    DriverConfig config_;
    BoundaryBufferCache cache_;
    GhostExchange exchange_;
    MeshBlockPack pack_;

    std::int64_t cycle_ = 0;
    double time_ = 0;
    double dt_ = 0;
    int last_refined_ = 0;
    int last_derefined_ = 0;
    int last_moved_ = 0;
    double last_migrated_bytes_ = 0;
    int last_lb_decision_ = 0;
    double last_lb_imbalance_ = 0;
    double last_lb_max_cost_ = 0;
    double last_lb_mean_cost_ = 0;
    std::int64_t zone_cycles_ = 0;
    std::int64_t comm_cells_ = 0;
    std::int64_t comm_faces_ = 0;
    std::uint64_t boundary_messages_ = 0;
    double boundary_bytes_ = 0;
    double task_wall_seconds_ = 0;
    double task_comm_seconds_ = 0;
    double task_compute_seconds_ = 0;
    double checkpoint_capture_seconds_ = 0;
    // Current-cycle attribution accumulators (reset in doCycle, folded
    // into CycleStats at the end of the cycle).
    double cycle_task_wall_ = 0;
    double cycle_busy_ = 0;
    double cycle_idle_ = 0;
    double cycle_critical_ = 0;
    CheckpointWriter* checkpoint_writer_ = nullptr;
    FaultInjector* fault_injector_ = nullptr;
    MetricsWriter* metrics_writer_ = nullptr;
    /**
     * Measured per-block cost accumulator (lb_cost = measured).
     * Samples are harvested from every executed task graph and fused
     * pack launch, keyed by the ":<gid>" task-name suffix.
     */
    BlockCostModel cost_model_;
    std::vector<CycleStats> history_;
};

} // namespace vibe
