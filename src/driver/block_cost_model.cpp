#include "driver/block_cost_model.hpp"

#include <cstdlib>

#include "comm/rank_world.hpp"
#include "mesh/mesh.hpp"
#include "util/logging.hpp"

namespace vibe {

LbCostMode
lbCostModeFromName(const std::string& name)
{
    if (name == "uniform")
        return LbCostMode::Uniform;
    if (name == "measured")
        return LbCostMode::Measured;
    fatal("unknown lb_cost mode '", name,
          "' (expected 'uniform' or 'measured')");
}

const char*
lbCostModeName(LbCostMode mode)
{
    return mode == LbCostMode::Measured ? "measured" : "uniform";
}

LbCostMode
envLbCostMode(LbCostMode fallback)
{
    const char* value = std::getenv("VIBE_LB_COST");
    if (!value || !*value)
        return fallback;
    return lbCostModeFromName(value);
}

void
BlockCostModel::applyMeasuredCosts(Mesh& mesh, RankWorld& world)
{
    double shard_seconds = 0;
    for (const auto& [gid, seconds] : samples_)
        shard_seconds += seconds;

    // Every replica enters the reduce even with an empty shard — the
    // collective is the synchronization point that makes the global
    // mean identical everywhere.
    const double total_seconds = world.allReduceValue(
        mesh.collectiveRank(), shard_seconds, CollOp::Sum,
        sizeof(double));
    if (!(total_seconds > 0) || mesh.numBlocks() == 0)
        return; // Counting mode: task bodies were skipped, keep costs.

    const double mean_seconds =
        total_seconds / static_cast<double>(mesh.numBlocks());
    for (MeshBlock* block : mesh.ownedBlocks()) {
        auto it = samples_.find(block->gid());
        if (it == samples_.end())
            continue; // Created mid-cycle; keep its inherited cost.
        const double target =
            it->second / mean_seconds *
            static_cast<double>(block->shape().interiorCells());
        block->setCost((1.0 - kAlpha) * block->cost() + kAlpha * target);
    }
}

} // namespace vibe
