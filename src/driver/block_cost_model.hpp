/**
 * @file block_cost_model.hpp
 * Measured per-block cost estimation for load balancing (§V).
 *
 * The task-graph executor already wall-clocks every task and the fused
 * pack path batches per-block item runs; per-block task names carry a
 * ":<gid>" suffix, so the driver can fold one cycle's task seconds
 * back onto blocks. This model accumulates those samples, normalizes
 * them against the *global* mean block seconds (a Sum collective — a
 * per-rank mean would erase exactly the cross-rank imbalance the
 * partitioner needs to see), and folds them into each owned block's
 * cost with an exponential moving average. Costs are expressed on the
 * uniform `interiorCells()` scale, so warm checkpointed estimates,
 * fresh defaults, and measured updates mix consistently and the
 * partitioner never needs to know which mode produced a number.
 */
#pragma once

#include <cstddef>
#include <map>
#include <string>

namespace vibe {

class Mesh;
class RankWorld;

/** Which per-block cost feeds the SFC partitioner (`<amr> lb_cost`). */
enum class LbCostMode
{
    Uniform,  ///< Historical behavior: cost = interiorCells().
    Measured, ///< EMA of per-block measured task seconds.
};

/** Parse "uniform" / "measured"; panics on anything else. */
LbCostMode lbCostModeFromName(const std::string& name);

/** Knob-value name of a mode ("uniform" / "measured"). */
const char* lbCostModeName(LbCostMode mode);

/** VIBE_LB_COST environment knob, or `fallback` when unset/empty. */
LbCostMode envLbCostMode(LbCostMode fallback);

/**
 * Accumulates one cycle's per-block measured seconds and applies them
 * to block costs. One instance per driver (per rank); apply is a
 * collective every replica must enter on the same cycles.
 */
class BlockCostModel
{
  public:
    /**
     * EMA weight of the newest cycle's measurement: converges to ~97%
     * of a shifted workload within ~10 lb intervals while damping the
     * single-cycle timer jitter that would otherwise wobble the SFC
     * split point (the hysteresis trigger is the second line of
     * defense, rejecting the marginal repartitions jitter proposes).
     */
    static constexpr double kAlpha = 0.3;

    /** Drop the previous cycle's samples. Call at the top of a cycle. */
    void beginCycle() { samples_.clear(); }

    /** Add `seconds` of measured work attributed to block `gid`. */
    void addSample(int gid, double seconds)
    {
        if (seconds > 0)
            samples_[gid] += seconds;
    }

    /** Accumulated seconds for `gid` this cycle (0 if none). */
    double sample(int gid) const
    {
        auto it = samples_.find(gid);
        return it == samples_.end() ? 0.0 : it->second;
    }

    /** Distinct blocks sampled this cycle. */
    std::size_t numSamples() const { return samples_.size(); }

    /**
     * Fold this cycle's samples into the owned blocks' costs:
     * cost <- (1-a)*cost + a * (seconds / global_mean_seconds) *
     * interiorCells(). Collective (one Sum allReduce); a no-op when no
     * rank measured any time (counting mode). Must run before any
     * restructure renumbers gids — samples are keyed by the gids the
     * cycle stepped.
     */
    void applyMeasuredCosts(Mesh& mesh, RankWorld& world);

  private:
    // Ordered map: replicated consumers iterate deterministically.
    std::map<int, double> samples_;
};

} // namespace vibe
