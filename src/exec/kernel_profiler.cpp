#include "exec/kernel_profiler.hpp"

namespace vibe {

KernelProfiler::KernelProfiler() : owner_(std::this_thread::get_id()) {}

KernelProfiler::KernelProfiler(const KernelProfiler& other)
    : owner_(std::this_thread::get_id())
{
    other.sync();
    phase_ = other.phase_;
    main_ = other.main_;
}

KernelProfiler&
KernelProfiler::operator=(const KernelProfiler& other)
{
    if (this == &other)
        return *this;
    other.sync();
    sync();
    phase_ = other.phase_;
    main_ = other.main_;
    return *this;
}

void
KernelProfiler::accumulate(Buffers& into, const KernelRecord& record) const
{
    const KernelKeyLess::View key{
        record.phase.empty() ? std::string_view(phase_) : record.phase,
        record.name};
    auto it = into.kernels.find(key);
    if (it == into.kernels.end())
        it = into.kernels
                 .emplace(KernelKey{std::string(key.first),
                                    std::string(key.second)},
                          KernelStats{})
                 .first;
    KernelStats& stats = it->second;
    stats.launches += record.launches;
    stats.items += record.items;
    stats.flops += record.flops;
    stats.bytes += record.bytes;
    stats.innermostSum +=
        record.innermost * static_cast<double>(record.launches);
    stats.itemsByRank[record.rank] += record.items;
}

void
KernelProfiler::accumulateSerial(Buffers& into,
                                 const SerialRecord& record) const
{
    const KernelKeyLess::View key{
        record.phase.empty() ? std::string_view(phase_) : record.phase,
        record.category};
    auto it = into.serial.find(key);
    if (it == into.serial.end())
        it = into.serial
                 .emplace(KernelKey{std::string(key.first),
                                    std::string(key.second)},
                          SerialStats{})
                 .first;
    SerialStats& stats = it->second;
    stats.items += record.items;
    stats.itemsByRank[record.rank] += record.items;
}

void
KernelProfiler::record(const KernelRecord& record)
{
    if (std::this_thread::get_id() == owner_)
        accumulate(main_, record);
    else
        accumulate(thread_buffers_.local(), record);
}

void
KernelProfiler::recordSerial(const SerialRecord& record)
{
    if (std::this_thread::get_id() == owner_)
        accumulateSerial(main_, record);
    else
        accumulateSerial(thread_buffers_.local(), record);
}

void
KernelProfiler::setPhase(std::string phase)
{
    sync();
    phase_ = std::move(phase);
}

void
KernelProfiler::sync() const
{
    thread_buffers_.forEach([this](Buffers& buffers) {
        for (auto& [key, stats] : buffers.kernels) {
            KernelStats& into = main_.kernels[key];
            into.launches += stats.launches;
            into.items += stats.items;
            into.flops += stats.flops;
            into.bytes += stats.bytes;
            into.innermostSum += stats.innermostSum;
            for (const auto& [rank, items] : stats.itemsByRank)
                into.itemsByRank[rank] += items;
        }
        for (auto& [key, stats] : buffers.serial) {
            SerialStats& into = main_.serial[key];
            into.items += stats.items;
            for (const auto& [rank, items] : stats.itemsByRank)
                into.itemsByRank[rank] += items;
        }
        buffers.kernels.clear();
        buffers.serial.clear();
    });
}

double
KernelProfiler::totalItems() const
{
    sync();
    double total = 0;
    for (const auto& [key, stats] : main_.kernels)
        total += stats.items;
    return total;
}

std::uint64_t
KernelProfiler::totalLaunches() const
{
    sync();
    std::uint64_t total = 0;
    for (const auto& [key, stats] : main_.kernels)
        total += stats.launches;
    return total;
}

KernelStats
KernelProfiler::kernelByName(const std::string& name) const
{
    sync();
    KernelStats out;
    for (const auto& [key, stats] : main_.kernels) {
        if (key.second != name)
            continue;
        out.launches += stats.launches;
        out.items += stats.items;
        out.flops += stats.flops;
        out.bytes += stats.bytes;
        out.innermostSum += stats.innermostSum;
        for (const auto& [rank, items] : stats.itemsByRank)
            out.itemsByRank[rank] += items;
    }
    return out;
}

double
KernelProfiler::serialByCategory(const std::string& category) const
{
    sync();
    double total = 0;
    for (const auto& [key, stats] : main_.serial)
        if (key.second == category)
            total += stats.items;
    return total;
}

void
KernelProfiler::merge(const KernelProfiler& other)
{
    other.sync();
    sync();
    for (const auto& [key, stats] : other.main_.kernels) {
        KernelStats& into = main_.kernels[key];
        into.launches += stats.launches;
        into.items += stats.items;
        into.flops += stats.flops;
        into.bytes += stats.bytes;
        into.innermostSum += stats.innermostSum;
        for (const auto& [rank, items] : stats.itemsByRank)
            into.itemsByRank[rank] += items;
    }
    for (const auto& [key, stats] : other.main_.serial) {
        SerialStats& into = main_.serial[key];
        into.items += stats.items;
        for (const auto& [rank, items] : stats.itemsByRank)
            into.itemsByRank[rank] += items;
    }
}

void
KernelProfiler::reset()
{
    sync();
    main_.kernels.clear();
    main_.serial.clear();
    phase_ = "Initialise";
}

} // namespace vibe
