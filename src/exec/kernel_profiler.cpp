#include "exec/kernel_profiler.hpp"

namespace vibe {

void
KernelProfiler::record(const KernelRecord& record)
{
    KernelStats& stats =
        kernels_[{record.phase.empty() ? phase_ : record.phase,
                  record.name}];
    stats.launches += record.launches;
    stats.items += record.items;
    stats.flops += record.flops;
    stats.bytes += record.bytes;
    stats.innermostSum +=
        record.innermost * static_cast<double>(record.launches);
    stats.itemsByRank[record.rank] += record.items;
}

void
KernelProfiler::recordSerial(const SerialRecord& record)
{
    SerialStats& stats =
        serial_[{record.phase.empty() ? phase_ : record.phase,
                 record.category}];
    stats.items += record.items;
    stats.itemsByRank[record.rank] += record.items;
}

double
KernelProfiler::totalItems() const
{
    double total = 0;
    for (const auto& [key, stats] : kernels_)
        total += stats.items;
    return total;
}

std::uint64_t
KernelProfiler::totalLaunches() const
{
    std::uint64_t total = 0;
    for (const auto& [key, stats] : kernels_)
        total += stats.launches;
    return total;
}

KernelStats
KernelProfiler::kernelByName(const std::string& name) const
{
    KernelStats out;
    for (const auto& [key, stats] : kernels_) {
        if (key.second != name)
            continue;
        out.launches += stats.launches;
        out.items += stats.items;
        out.flops += stats.flops;
        out.bytes += stats.bytes;
        out.innermostSum += stats.innermostSum;
        for (const auto& [rank, items] : stats.itemsByRank)
            out.itemsByRank[rank] += items;
    }
    return out;
}

double
KernelProfiler::serialByCategory(const std::string& category) const
{
    double total = 0;
    for (const auto& [key, stats] : serial_)
        if (key.second == category)
            total += stats.items;
    return total;
}

void
KernelProfiler::reset()
{
    kernels_.clear();
    serial_.clear();
    phase_ = "Initialise";
}

} // namespace vibe
