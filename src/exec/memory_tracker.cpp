#include "exec/memory_tracker.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace vibe {

MemoryTracker::MemoryTracker() : owner_(std::this_thread::get_id()) {}

void
MemoryTracker::allocate(const std::string& label, std::size_t bytes)
{
    if (std::this_thread::get_id() != owner_) {
        Pending& pending = pending_.local();
        pending.deltaByLabel[label] += static_cast<std::int64_t>(bytes);
        ++pending.allocationCalls;
        return;
    }
    current_by_label_[label] += bytes;
    current_ += bytes;
    peak_ = std::max(peak_, current_);
    peak_by_label_[label] =
        std::max(peak_by_label_[label], current_by_label_[label]);
    ++allocation_calls_;
}

void
MemoryTracker::deallocate(const std::string& label, std::size_t bytes)
{
    if (std::this_thread::get_id() != owner_) {
        pending_.local().deltaByLabel[label] -=
            static_cast<std::int64_t>(bytes);
        return;
    }
    auto it = current_by_label_.find(label);
    require(it != current_by_label_.end() && it->second >= bytes,
            "MemoryTracker: deallocating ", bytes, " bytes from label '",
            label, "' which holds ",
            it == current_by_label_.end() ? 0 : it->second);
    it->second -= bytes;
    current_ -= bytes;
}

void
MemoryTracker::sync() const
{
    pending_.forEach([this](Pending& pending) {
        for (const auto& [label, delta] : pending.deltaByLabel) {
            const std::int64_t now =
                static_cast<std::int64_t>(current_by_label_[label]) +
                delta;
            require(now >= 0, "MemoryTracker: merged deltas for label '",
                    label, "' underflow to ", now, " bytes");
            current_by_label_[label] = static_cast<std::size_t>(now);
            current_ = static_cast<std::size_t>(
                static_cast<std::int64_t>(current_) + delta);
            peak_by_label_[label] = std::max(peak_by_label_[label],
                                             current_by_label_[label]);
        }
        allocation_calls_ += pending.allocationCalls;
        pending.deltaByLabel.clear();
        pending.allocationCalls = 0;
    });
    peak_ = std::max(peak_, current_);
}

std::size_t
MemoryTracker::labelBytes(const std::string& label) const
{
    sync();
    auto it = current_by_label_.find(label);
    return it == current_by_label_.end() ? 0 : it->second;
}

std::size_t
MemoryTracker::labelPeakBytes(const std::string& label) const
{
    sync();
    auto it = peak_by_label_.find(label);
    return it == peak_by_label_.end() ? 0 : it->second;
}

void
MemoryTracker::notePoolHit(std::size_t bytes)
{
    require(std::this_thread::get_id() == owner_,
            "MemoryTracker: pool accounting must run on the owner "
            "thread (the restructure path is serial)");
    ++pool_hits_;
    pool_hit_bytes_ += bytes;
}

void
MemoryTracker::notePoolMiss(std::size_t bytes)
{
    require(std::this_thread::get_id() == owner_,
            "MemoryTracker: pool accounting must run on the owner "
            "thread (the restructure path is serial)");
    ++pool_misses_;
    pool_miss_bytes_ += bytes;
}

void
MemoryTracker::merge(const MemoryTracker& other)
{
    other.sync();
    sync();
    for (const auto& [label, bytes] : other.current_by_label_) {
        current_by_label_[label] += bytes;
        current_ += bytes;
    }
    for (const auto& [label, bytes] : other.peak_by_label_)
        peak_by_label_[label] += bytes;
    peak_ += other.peak_;
    allocation_calls_ += other.allocation_calls_;
    pool_hits_ += other.pool_hits_;
    pool_misses_ += other.pool_misses_;
    pool_hit_bytes_ += other.pool_hit_bytes_;
    pool_miss_bytes_ += other.pool_miss_bytes_;
}

void
MemoryTracker::reset()
{
    sync();
    current_by_label_.clear();
    peak_by_label_.clear();
    current_ = 0;
    peak_ = 0;
    allocation_calls_ = 0;
    pool_hits_ = 0;
    pool_misses_ = 0;
    pool_hit_bytes_ = 0;
    pool_miss_bytes_ = 0;
}

} // namespace vibe
