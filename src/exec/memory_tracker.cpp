#include "exec/memory_tracker.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace vibe {

void
MemoryTracker::allocate(const std::string& label, std::size_t bytes)
{
    current_by_label_[label] += bytes;
    current_ += bytes;
    peak_ = std::max(peak_, current_);
    peak_by_label_[label] =
        std::max(peak_by_label_[label], current_by_label_[label]);
    ++allocation_calls_;
}

void
MemoryTracker::deallocate(const std::string& label, std::size_t bytes)
{
    auto it = current_by_label_.find(label);
    require(it != current_by_label_.end() && it->second >= bytes,
            "MemoryTracker: deallocating ", bytes, " bytes from label '",
            label, "' which holds ",
            it == current_by_label_.end() ? 0 : it->second);
    it->second -= bytes;
    current_ -= bytes;
}

std::size_t
MemoryTracker::labelBytes(const std::string& label) const
{
    auto it = current_by_label_.find(label);
    return it == current_by_label_.end() ? 0 : it->second;
}

std::size_t
MemoryTracker::labelPeakBytes(const std::string& label) const
{
    auto it = peak_by_label_.find(label);
    return it == peak_by_label_.end() ? 0 : it->second;
}

void
MemoryTracker::reset()
{
    current_by_label_.clear();
    peak_by_label_.clear();
    current_ = 0;
    peak_ = 0;
    allocation_calls_ = 0;
}

} // namespace vibe
