/**
 * @file memory_tracker.hpp
 * Labelled allocation/deallocation tracing.
 *
 * Plays the role of the Kokkos memory-tools + Nsight Systems allocation
 * traces the paper used (§III, §IV-E): every mesh-data allocation is
 * registered with a label; the memory model adds the MPI buffer and
 * Open MPI driver terms on top to reproduce Fig. 10 and the OOM walls.
 * Virtual-mode blocks register the same byte counts without backing
 * storage, so footprint numbers are identical across modes.
 *
 * Concurrency model mirrors KernelProfiler: the constructing (owner)
 * thread updates the tables directly with exact peak tracking; calls
 * from other threads (allocations inside ThreadPoolSpace kernel
 * bodies) buffer signed per-label deltas that are merged at sync
 * points — sync() or any read accessor — so the hot path never locks.
 * Cross-thread peaks are therefore resolved at merge granularity, and
 * underflow (double free) from a worker thread panics at the merge
 * rather than at the deallocate call.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <thread>

#include "exec/thread_local_registry.hpp"

namespace vibe {

/** Tracks current and peak bytes per label and in total. */
class MemoryTracker
{
  public:
    MemoryTracker();
    MemoryTracker(const MemoryTracker&) = delete;
    MemoryTracker& operator=(const MemoryTracker&) = delete;

    /** Register an allocation of `bytes` under `label`. */
    void allocate(const std::string& label, std::size_t bytes);

    /** Register a deallocation. Panics on underflow (double free). */
    void deallocate(const std::string& label, std::size_t bytes);

    /**
     * Merge deltas buffered by non-owner threads. Must be called from
     * a quiescent point (no kernel launch in flight); read accessors
     * call it implicitly.
     */
    void sync() const;

    /** Current total bytes across all labels. */
    std::size_t currentBytes() const
    {
        sync();
        return current_;
    }

    /** High-water mark of currentBytes(). */
    std::size_t peakBytes() const
    {
        sync();
        return peak_;
    }

    /** Current bytes under one label (0 if never used). */
    std::size_t labelBytes(const std::string& label) const;

    /** Peak bytes ever held under one label. */
    std::size_t labelPeakBytes(const std::string& label) const;

    /** Current bytes per label. */
    const std::map<std::string, std::size_t>& byLabel() const
    {
        sync();
        return current_by_label_;
    }

    /** Lifetime allocation-call count (allocation-rate modeling). */
    std::uint64_t allocationCalls() const
    {
        sync();
        return allocation_calls_;
    }

    // --- Block-memory-pool accounting --------------------------------
    //
    // The BlockMemoryPool reports every storage request here so the
    // allocation-churn studies can split remesh traffic into recycled
    // buffers (pool hits) versus fresh allocator pressure. Pool
    // operations happen on the restructure path, which runs on the
    // owner thread, so these counters are direct (not buffered).

    /** Record a storage request served from the pool free list. */
    void notePoolHit(std::size_t bytes);
    /** Record a storage request that fell through to the allocator. */
    void notePoolMiss(std::size_t bytes);

    /** Pool-served storage requests (count / bytes). */
    std::uint64_t poolHits() const { return pool_hits_; }
    std::size_t poolHitBytes() const { return pool_hit_bytes_; }
    /** Allocator-served storage requests (count / bytes). */
    std::uint64_t poolMisses() const { return pool_misses_; }
    std::size_t poolMissBytes() const { return pool_miss_bytes_; }

    void reset();

    /**
     * Fold another tracker's per-label totals and pool counters into
     * this one (a rank team merging per-rank trackers). Currents and
     * allocation counts add exactly; the merged peak is the sum of the
     * per-rank peaks — an upper bound on the true team-wide high-water
     * mark, since rank peaks need not coincide in time.
     */
    void merge(const MemoryTracker& other);

  private:
    /** Deltas pending from one non-owner thread. */
    struct Pending
    {
        std::map<std::string, std::int64_t> deltaByLabel;
        std::uint64_t allocationCalls = 0;
    };

    std::thread::id owner_;
    ThreadLocalRegistry<Pending> pending_;

    mutable std::map<std::string, std::size_t> current_by_label_;
    mutable std::map<std::string, std::size_t> peak_by_label_;
    mutable std::size_t current_ = 0;
    mutable std::size_t peak_ = 0;
    mutable std::uint64_t allocation_calls_ = 0;

    std::uint64_t pool_hits_ = 0;
    std::uint64_t pool_misses_ = 0;
    std::size_t pool_hit_bytes_ = 0;
    std::size_t pool_miss_bytes_ = 0;
};

} // namespace vibe
