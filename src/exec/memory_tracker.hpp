/**
 * @file memory_tracker.hpp
 * Labelled allocation/deallocation tracing.
 *
 * Plays the role of the Kokkos memory-tools + Nsight Systems allocation
 * traces the paper used (§III, §IV-E): every mesh-data allocation is
 * registered with a label; the memory model adds the MPI buffer and
 * Open MPI driver terms on top to reproduce Fig. 10 and the OOM walls.
 * Virtual-mode blocks register the same byte counts without backing
 * storage, so footprint numbers are identical across modes.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace vibe {

/** Tracks current and peak bytes per label and in total. */
class MemoryTracker
{
  public:
    /** Register an allocation of `bytes` under `label`. */
    void allocate(const std::string& label, std::size_t bytes);

    /** Register a deallocation. Panics on underflow (double free). */
    void deallocate(const std::string& label, std::size_t bytes);

    /** Current total bytes across all labels. */
    std::size_t currentBytes() const { return current_; }

    /** High-water mark of currentBytes(). */
    std::size_t peakBytes() const { return peak_; }

    /** Current bytes under one label (0 if never used). */
    std::size_t labelBytes(const std::string& label) const;

    /** Peak bytes ever held under one label. */
    std::size_t labelPeakBytes(const std::string& label) const;

    /** Current bytes per label. */
    const std::map<std::string, std::size_t>& byLabel() const
    {
        return current_by_label_;
    }

    /** Lifetime allocation-call count (allocation-rate modeling). */
    std::uint64_t allocationCalls() const { return allocation_calls_; }

    void reset();

  private:
    std::map<std::string, std::size_t> current_by_label_;
    std::map<std::string, std::size_t> peak_by_label_;
    std::size_t current_ = 0;
    std::size_t peak_ = 0;
    std::uint64_t allocation_calls_ = 0;
};

} // namespace vibe
