/**
 * @file execution_space.hpp
 * Host execution spaces backing the `parFor` loop macros.
 *
 * Mirrors the Kokkos execution-space concept Parthenon builds on: a
 * kernel launch hands a flattened index range to a space, which decides
 * how to run it. `SerialSpace` reproduces the historical in-line loop
 * bit for bit; `ThreadPoolSpace` keeps a persistent worker pool and
 * splits the range into one contiguous chunk per thread (static
 * chunking), so elementwise kernels parallelize and chunk-ordered
 * reductions stay deterministic for a fixed thread count.
 */
#pragma once

#include <cstdint>
#include <memory>

namespace vibe {

/**
 * A host execution space: runs a flattened iteration range, possibly
 * across threads. Launches are synchronous — `forEachChunk` returns
 * only after every chunk completed, which is what lets the profiler
 * and tracker merge their per-thread buffers at phase boundaries
 * without locking the record hot path.
 */
class ExecutionSpace
{
  public:
    virtual ~ExecutionSpace() = default;

    /** Stable backend identifier ("serial", "threadpool"). */
    virtual const char* name() const = 0;

    /**
     * Number of chunks a range is split into (1 for serial). Also the
     * number of deterministic partial accumulators for `parReduce`.
     */
    virtual int concurrency() const = 0;

    /**
     * Chunk callback: process flattened indices [begin, end) as chunk
     * number `chunk` (0-based, < concurrency()). Plain function pointer
     * + context so a launch never allocates.
     */
    using ChunkFn = void (*)(void* body, std::int64_t begin,
                             std::int64_t end, int chunk);

    /**
     * Split [0, n) into concurrency() contiguous chunks and invoke
     * `fn` for each non-empty chunk; blocks until all complete.
     * Chunk boundaries depend only on (n, concurrency()), never on
     * scheduling, so repeated runs partition identically.
     *
     * A space accepts one top-level launch at a time: nested launches
     * from inside a chunk degrade to in-line execution, but two
     * unrelated threads must not launch on the same pool concurrently
     * (ThreadPoolSpace panics on that; give each driving thread its
     * own space instead).
     */
    virtual void forEachChunk(std::int64_t n, ChunkFn fn, void* body) = 0;
};

/** Runs every launch in-line on the calling thread (seed behavior). */
class SerialSpace final : public ExecutionSpace
{
  public:
    const char* name() const override { return "serial"; }
    int concurrency() const override { return 1; }
    void forEachChunk(std::int64_t n, ChunkFn fn, void* body) override
    {
        if (n > 0)
            fn(body, 0, n, 0);
    }
};

/**
 * Persistent worker pool. `num_threads` includes the calling thread:
 * a launch runs chunk 0 on the caller and chunks 1..T-1 on the
 * workers, then waits for all of them. Nested launches from inside a
 * worker fall back to in-line execution rather than deadlocking.
 */
class ThreadPoolSpace final : public ExecutionSpace
{
  public:
    explicit ThreadPoolSpace(int num_threads);
    ~ThreadPoolSpace() override;

    ThreadPoolSpace(const ThreadPoolSpace&) = delete;
    ThreadPoolSpace& operator=(const ThreadPoolSpace&) = delete;

    const char* name() const override { return "threadpool"; }
    int concurrency() const override { return num_threads_; }
    void forEachChunk(std::int64_t n, ChunkFn fn, void* body) override;

  private:
    struct Impl;
    void waitForWorkers();

    int num_threads_;
    std::unique_ptr<Impl> impl_;
};

/**
 * Space factory behind the `exec/num_threads` knob: 1 (or less)
 * returns the shared serial fast path, >1 builds a thread pool.
 */
std::shared_ptr<ExecutionSpace> makeExecutionSpace(int num_threads);

/** The process-wide stateless SerialSpace instance. */
const std::shared_ptr<ExecutionSpace>& sharedSerialSpace();

/**
 * Thread count requested via the VIBE_NUM_THREADS environment variable,
 * or `fallback` when unset/invalid. Lets the test fixtures and the CI
 * matrix exercise the threaded executor paths without per-test knobs.
 */
int envNumThreads(int fallback = 1);

/**
 * Rank count requested via the VIBE_NUM_RANKS environment variable, or
 * `fallback` when unset/invalid. The CI matrix uses it to route the
 * rank-equivalence fixtures through a specific team size.
 */
int envNumRanks(int fallback = 1);

/**
 * Boundary-path selection via the VIBE_FUSED_BOUNDARIES environment
 * variable ("0"/"1"), or `fallback` when unset/invalid. The CI matrix
 * uses it to run the rank-equivalence fixtures through both the fused
 * BoundaryPlan path and the per-face path.
 */
bool envFusedBoundaries(bool fallback = true);

} // namespace vibe
