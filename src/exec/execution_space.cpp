#include "exec/execution_space.hpp"

#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "util/logging.hpp"
#include "util/thread_safety.hpp"

namespace vibe {

namespace {

/**
 * Set while a thread is inside a pool launch — permanently for pool
 * workers, and for the calling thread for the duration of its
 * forEachChunk — so a nested launch from inside a kernel body degrades
 * to in-line execution instead of corrupting the job the pool is
 * already running.
 */
thread_local bool tls_inside_launch = false;

std::int64_t
chunkBound(std::int64_t n, int nchunks, int chunk)
{
    return n * chunk / nchunks;
}

} // namespace

struct ThreadPoolSpace::Impl
{
    std::vector<std::thread> workers;
    Mutex mutex;
    CondVar start_cv;
    CondVar done_cv;

    // Current job, published under `mutex` and identified by
    // `generation` so workers never re-run a launch.
    ChunkFn fn VIBE_GUARDED_BY(mutex) = nullptr;
    void* body VIBE_GUARDED_BY(mutex) = nullptr;
    std::int64_t n VIBE_GUARDED_BY(mutex) = 0;
    std::uint64_t generation VIBE_GUARDED_BY(mutex) = 0;
    int remaining VIBE_GUARDED_BY(mutex) = 0;
    bool stop VIBE_GUARDED_BY(mutex) = false;
    bool launch_in_flight VIBE_GUARDED_BY(mutex) = false;
    /** First exception a worker chunk threw; rethrown on the caller. */
    std::exception_ptr error VIBE_GUARDED_BY(mutex);
};

ThreadPoolSpace::ThreadPoolSpace(int num_threads)
    : num_threads_(num_threads), impl_(std::make_unique<Impl>())
{
    require(num_threads >= 2,
            "ThreadPoolSpace needs >= 2 threads; use makeExecutionSpace "
            "for the serial fast path");
    impl_->workers.reserve(num_threads_ - 1);
    for (int chunk = 1; chunk < num_threads_; ++chunk) {
        impl_->workers.emplace_back([this, chunk] {
            Impl& impl = *impl_;
            std::uint64_t seen = 0;
            tls_inside_launch = true;
            for (;;) {
                ChunkFn fn;
                void* body;
                std::int64_t n;
                {
                    UniqueLock lock(impl.mutex);
                    while (!impl.stop && impl.generation == seen)
                        impl.start_cv.wait(lock);
                    if (impl.stop)
                        return;
                    seen = impl.generation;
                    fn = impl.fn;
                    body = impl.body;
                    n = impl.n;
                }
                const std::int64_t begin =
                    chunkBound(n, num_threads_, chunk);
                const std::int64_t end =
                    chunkBound(n, num_threads_, chunk + 1);
                std::exception_ptr error;
                if (begin < end) {
                    try {
                        fn(body, begin, end, chunk);
                    } catch (...) {
                        error = std::current_exception();
                    }
                }
                {
                    LockGuard lock(impl.mutex);
                    if (error && !impl.error)
                        impl.error = error;
                    if (--impl.remaining == 0)
                        impl.done_cv.notify_one();
                }
            }
        });
    }
}

ThreadPoolSpace::~ThreadPoolSpace()
{
    {
        LockGuard lock(impl_->mutex);
        impl_->stop = true;
    }
    impl_->start_cv.notify_all();
    for (std::thread& worker : impl_->workers)
        worker.join();
}

void
ThreadPoolSpace::forEachChunk(std::int64_t n, ChunkFn fn, void* body)
{
    if (n <= 0)
        return;
    if (tls_inside_launch) {
        // Nested launch: keep the chunk partitioning (reduction
        // determinism) but run every chunk on this thread.
        for (int chunk = 0; chunk < num_threads_; ++chunk) {
            const std::int64_t begin = chunkBound(n, num_threads_, chunk);
            const std::int64_t end =
                chunkBound(n, num_threads_, chunk + 1);
            if (begin < end)
                fn(body, begin, end, chunk);
        }
        return;
    }

    Impl& impl = *impl_;
    {
        LockGuard lock(impl.mutex);
        // One top-level launch at a time: a second launcher would
        // overwrite this job slot mid-flight and silently corrupt
        // both launches.
        require(!impl.launch_in_flight,
                "ThreadPoolSpace: concurrent launch from a second "
                "thread; each driving thread needs its own space");
        impl.launch_in_flight = true;
        impl.fn = fn;
        impl.body = body;
        impl.n = n;
        impl.remaining = num_threads_ - 1;
        impl.error = nullptr;
        ++impl.generation;
    }
    impl.start_cv.notify_all();

    // The calling thread is chunk 0. Even if its body throws, the
    // barrier below must still be reached: workers hold pointers into
    // the caller's frame until the launch drains. A caller-chunk
    // exception wins over any worker-chunk one.
    tls_inside_launch = true;
    const std::int64_t end = chunkBound(n, num_threads_, 1);
    try {
        if (end > 0)
            fn(body, 0, end, 0);
    } catch (...) {
        waitForWorkers();
        tls_inside_launch = false;
        throw;
    }
    waitForWorkers();
    tls_inside_launch = false;
    std::exception_ptr error;
    {
        LockGuard lock(impl.mutex);
        std::swap(error, impl.error);
    }
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPoolSpace::waitForWorkers()
{
    Impl& impl = *impl_;
    UniqueLock lock(impl.mutex);
    while (impl.remaining != 0)
        impl.done_cv.wait(lock);
    impl.launch_in_flight = false;
}

std::shared_ptr<ExecutionSpace>
makeExecutionSpace(int num_threads)
{
    if (num_threads <= 1)
        return sharedSerialSpace();
    return std::make_shared<ThreadPoolSpace>(num_threads);
}

const std::shared_ptr<ExecutionSpace>&
sharedSerialSpace()
{
    static const std::shared_ptr<ExecutionSpace> serial =
        std::make_shared<SerialSpace>();
    return serial;
}

int
envNumThreads(int fallback)
{
    const char* value = std::getenv("VIBE_NUM_THREADS");
    if (!value || !*value)
        return fallback;
    const int threads = std::atoi(value);
    return threads >= 1 ? threads : fallback;
}

int
envNumRanks(int fallback)
{
    const char* value = std::getenv("VIBE_NUM_RANKS");
    if (!value || !*value)
        return fallback;
    const int ranks = std::atoi(value);
    return ranks >= 1 ? ranks : fallback;
}

bool
envFusedBoundaries(bool fallback)
{
    const char* value = std::getenv("VIBE_FUSED_BOUNDARIES");
    if (!value || !*value)
        return fallback;
    return value[0] != '0';
}

} // namespace vibe
