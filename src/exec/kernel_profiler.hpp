/**
 * @file kernel_profiler.hpp
 * Kokkos-Tools-style kernel instrumentation.
 *
 * Every `parFor` launch reports its label, work extents, flop and byte
 * counts; the profiler aggregates them per (phase, kernel) and per rank.
 * The paper's timing analysis (Figs. 9, 11, 12), microarchitecture table
 * (Table III) and opcode model (Fig. 13) are all computed from this
 * event stream by the perfmodel module.
 *
 * Concurrency model: the thread that constructed the profiler (the
 * owner) aggregates straight into the main tables, exactly as before;
 * records arriving from other threads (kernel bodies running on a
 * ThreadPoolSpace) accumulate into per-thread buffers that are merged
 * into the main tables at phase boundaries — setPhase/sync or any read
 * accessor — so the record hot path never takes a lock. Merging and
 * phase changes must happen at quiescent points (no launch in flight),
 * which `parFor`'s synchronous launches guarantee.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "exec/thread_local_registry.hpp"

namespace vibe {

/**
 * One recorded kernel launch (or a batch of identical launches).
 * A transient event: the string fields are views valid only for the
 * duration of the record() call, so launching a kernel never allocates.
 */
struct KernelRecord
{
    std::string_view name;   ///< Kernel label, e.g. "CalculateFluxes".
    std::string_view phase;  ///< Timestep phase ("" = current phase).
    int rank = 0;            ///< Owning MPI rank of the processed block.
    std::uint64_t launches = 1; ///< Number of kernel launches.
    double items = 0;        ///< Total loop iterations (cell updates).
    double flops = 0;        ///< Floating-point operations.
    double bytes = 0;        ///< Ideal bytes moved to/from memory.
    /** Innermost contiguous extent per launch (drives warp modeling). */
    double innermost = 0;
};

/** Aggregated statistics for one (phase, kernel) pair. */
struct KernelStats
{
    std::uint64_t launches = 0;
    double items = 0;
    double flops = 0;
    double bytes = 0;
    /** Sum over launches of the innermost extent (for averaging). */
    double innermostSum = 0;
    /** Work items attributed to each rank. */
    std::map<int, double> itemsByRank;

    double avgInnermost() const
    {
        return launches ? innermostSum / static_cast<double>(launches) : 0;
    }
};

/** Serial (non-kernel) work event, counted rather than timed. */
struct SerialRecord
{
    std::string_view phase;    ///< Timestep phase ("" = current phase).
    std::string_view category; ///< e.g. "string_lookup", "sort_keys".
    int rank = 0;
    double items = 0;          ///< Category-specific unit count.
};

/**
 * Transparent comparator so the hot record path can probe the
 * (phase, name) tables with string_views and only materialize owning
 * strings on the first occurrence of a key.
 */
struct KernelKeyLess
{
    using is_transparent = void;
    using Key = std::pair<std::string, std::string>;
    using View = std::pair<std::string_view, std::string_view>;

    static View view(const Key& key) { return {key.first, key.second}; }

    bool operator()(const Key& a, const Key& b) const { return a < b; }
    bool operator()(const Key& a, const View& b) const
    {
        return view(a) < b;
    }
    bool operator()(const View& a, const Key& b) const
    {
        return a < view(b);
    }
};

/**
 * Aggregating sink for kernel and serial work events.
 *
 * Aggregation keys are (phase, name); per-rank item counts are retained
 * so the rank-scaling model can compute per-rank maxima.
 */
class KernelProfiler
{
  public:
    KernelProfiler();
    KernelProfiler(const KernelProfiler& other);
    KernelProfiler& operator=(const KernelProfiler& other);

    void record(const KernelRecord& record);
    void recordSerial(const SerialRecord& record);

    /**
     * Set the phase label attributed to subsequent records. A phase
     * boundary: merges any per-thread buffers first.
     */
    void setPhase(std::string phase);
    const std::string& phase() const { return phase_; }

    /**
     * Merge per-thread buffers into the main tables. Must be called
     * from a quiescent point (no kernel launch in flight); read
     * accessors and setPhase call it implicitly.
     */
    void sync() const;

    using KernelKey = std::pair<std::string, std::string>; // (phase, name)
    using KernelMap = std::map<KernelKey, KernelStats, KernelKeyLess>;

    const KernelMap& kernels() const
    {
        sync();
        return main_.kernels;
    }

    /** Serial item counts keyed by (phase, category), plus per rank. */
    struct SerialStats
    {
        double items = 0;
        std::map<int, double> itemsByRank;
    };
    using SerialMap = std::map<KernelKey, SerialStats, KernelKeyLess>;

    const SerialMap& serial() const
    {
        sync();
        return main_.serial;
    }

    /** Total kernel work items across all phases. */
    double totalItems() const;
    /** Total kernel launches across all phases. */
    std::uint64_t totalLaunches() const;
    /** Kernel stats summed over phases for a given kernel name. */
    KernelStats kernelByName(const std::string& name) const;
    /** Serial items summed over phases for a given category. */
    double serialByCategory(const std::string& category) const;

    void reset();

    /**
     * Fold another profiler's aggregated tables into this one (a rank
     * team merging per-rank profilers into the run-wide report).
     * Aggregation keys are identical, so merging N per-rank profilers
     * yields the same tables one shared profiler would have produced.
     */
    void merge(const KernelProfiler& other);

  private:
    /** One thread's pending aggregation, merged at phase boundaries. */
    struct Buffers
    {
        KernelMap kernels;
        SerialMap serial;
    };

    void accumulate(Buffers& into, const KernelRecord& record) const;
    void accumulateSerial(Buffers& into, const SerialRecord& record) const;

    std::string phase_ = "Initialise";
    mutable Buffers main_;

    std::thread::id owner_;
    ThreadLocalRegistry<Buffers> thread_buffers_;
};

/** RAII phase scope: restores the previous phase label on destruction. */
class PhaseScope
{
  public:
    PhaseScope(KernelProfiler* profiler, std::string phase)
        : profiler_(profiler)
    {
        if (profiler_) {
            previous_ = profiler_->phase();
            profiler_->setPhase(std::move(phase));
        }
    }
    ~PhaseScope()
    {
        if (profiler_)
            profiler_->setPhase(previous_);
    }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

  private:
    KernelProfiler* profiler_;
    std::string previous_;
};

} // namespace vibe
