/**
 * @file kernel_profiler.hpp
 * Kokkos-Tools-style kernel instrumentation.
 *
 * Every `parFor` launch reports its label, work extents, flop and byte
 * counts; the profiler aggregates them per (phase, kernel) and per rank.
 * The paper's timing analysis (Figs. 9, 11, 12), microarchitecture table
 * (Table III) and opcode model (Fig. 13) are all computed from this
 * event stream by the perfmodel module.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vibe {

/** One recorded kernel launch (or a batch of identical launches). */
struct KernelRecord
{
    std::string name;        ///< Kernel label, e.g. "CalculateFluxes".
    std::string phase;       ///< Timestep phase (Fig. 3 function).
    int rank = 0;            ///< Owning MPI rank of the processed block.
    std::uint64_t launches = 1; ///< Number of kernel launches.
    double items = 0;        ///< Total loop iterations (cell updates).
    double flops = 0;        ///< Floating-point operations.
    double bytes = 0;        ///< Ideal bytes moved to/from memory.
    /** Innermost contiguous extent per launch (drives warp modeling). */
    double innermost = 0;
};

/** Aggregated statistics for one (phase, kernel) pair. */
struct KernelStats
{
    std::uint64_t launches = 0;
    double items = 0;
    double flops = 0;
    double bytes = 0;
    /** Sum over launches of the innermost extent (for averaging). */
    double innermostSum = 0;
    /** Work items attributed to each rank. */
    std::map<int, double> itemsByRank;

    double avgInnermost() const
    {
        return launches ? innermostSum / static_cast<double>(launches) : 0;
    }
};

/** Serial (non-kernel) work event, counted rather than timed. */
struct SerialRecord
{
    std::string phase;      ///< Timestep phase.
    std::string category;   ///< e.g. "string_lookup", "sort_keys".
    int rank = 0;
    double items = 0;       ///< Category-specific unit count.
};

/**
 * Aggregating sink for kernel and serial work events.
 *
 * Aggregation keys are (phase, name); per-rank item counts are retained
 * so the rank-scaling model can compute per-rank maxima.
 */
class KernelProfiler
{
  public:
    void record(const KernelRecord& record);
    void recordSerial(const SerialRecord& record);

    /** Set the phase label attributed to subsequent records. */
    void setPhase(std::string phase) { phase_ = std::move(phase); }
    const std::string& phase() const { return phase_; }

    using KernelKey = std::pair<std::string, std::string>; // (phase, name)

    const std::map<KernelKey, KernelStats>& kernels() const
    {
        return kernels_;
    }

    /** Serial item counts keyed by (phase, category), plus per rank. */
    struct SerialStats
    {
        double items = 0;
        std::map<int, double> itemsByRank;
    };
    const std::map<KernelKey, SerialStats>& serial() const
    {
        return serial_;
    }

    /** Total kernel work items across all phases. */
    double totalItems() const;
    /** Total kernel launches across all phases. */
    std::uint64_t totalLaunches() const;
    /** Kernel stats summed over phases for a given kernel name. */
    KernelStats kernelByName(const std::string& name) const;
    /** Serial items summed over phases for a given category. */
    double serialByCategory(const std::string& category) const;

    void reset();

  private:
    std::string phase_ = "Initialise";
    std::map<KernelKey, KernelStats> kernels_;
    std::map<KernelKey, SerialStats> serial_;
};

/** RAII phase scope: restores the previous phase label on destruction. */
class PhaseScope
{
  public:
    PhaseScope(KernelProfiler* profiler, std::string phase)
        : profiler_(profiler)
    {
        if (profiler_) {
            previous_ = profiler_->phase();
            profiler_->setPhase(std::move(phase));
        }
    }
    ~PhaseScope()
    {
        if (profiler_)
            profiler_->setPhase(previous_);
    }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

  private:
    KernelProfiler* profiler_;
    std::string previous_;
};

} // namespace vibe
