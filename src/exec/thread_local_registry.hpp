/**
 * @file thread_local_registry.hpp
 * Per-thread slot registry shared by the instrumentation sinks.
 *
 * Gives each (instance, thread) pair its own lazily created T so hot
 * paths can accumulate without locking: the registry mutex is taken
 * only on a thread's first touch of an instance (slot registration)
 * and inside forEach. Instances are keyed by a process-unique id that
 * is never reused, so a thread-local slot left behind by a destroyed
 * registry can never be looked up again — it only occupies a map
 * entry until the thread exits.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/thread_safety.hpp"

namespace vibe {

template <typename T>
class ThreadLocalRegistry
{
  public:
    ThreadLocalRegistry() : id_(nextId()) {}
    ThreadLocalRegistry(const ThreadLocalRegistry&) = delete;
    ThreadLocalRegistry& operator=(const ThreadLocalRegistry&) = delete;

    /** This thread's slot, created and registered on first use. */
    T& local() const
    {
        void*& slot = tlsSlots()[id_];
        if (!slot) {
            LockGuard lock(mutex_);
            slots_.push_back(std::make_unique<T>());
            slot = slots_.back().get();
        }
        return *static_cast<T*>(slot);
    }

    /**
     * Visit every registered slot under the registry lock, in
     * registration order. The caller is responsible for quiescence:
     * visiting a slot another thread is concurrently mutating is a
     * race the lock does not prevent.
     */
    template <typename Fn>
    void forEach(Fn&& fn) const
    {
        LockGuard lock(mutex_);
        for (const auto& slot : slots_)
            fn(*slot);
    }

  private:
    static std::uint64_t nextId()
    {
        static std::atomic<std::uint64_t> counter{0};
        return ++counter;
    }

    // vibe-lint: allow(ordered-containers) the TLS slot map is lookup
    // only (keyed by registry id, never iterated), so hash order can
    // not leak into reduction or merge order — merges walk slots_,
    // which preserves registration order.
    static std::unordered_map<std::uint64_t, void*>& tlsSlots()
    {
        static thread_local std::unordered_map<std::uint64_t, void*>
            slots;
        return slots;
    }

    std::uint64_t id_;
    mutable Mutex mutex_;
    /**
     * Registered slots. The pointers handed out by local() are stable
     * (the registry only appends), so a slot's *contents* are not
     * guarded by this mutex — they are single-writer by construction
     * (each slot belongs to one thread) and read by forEach only at
     * quiescent points.
     */
    mutable std::vector<std::unique_ptr<T>> slots_
        VIBE_GUARDED_BY(mutex_);
};

} // namespace vibe
