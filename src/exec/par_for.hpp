/**
 * @file par_for.hpp
 * Kokkos-style named parallel loops with work accounting.
 *
 * Every compute kernel in the solver and comm layers is expressed as a
 * `parFor` over an index range. The caller supplies per-item flop/byte
 * costs (the solver knows its own arithmetic); the launch is recorded in
 * the profiler, and the body is executed only in numeric mode. This is
 * the boundary the paper uses to split "Kokkos kernel" time from the
 * "serial portion" (§II-C).
 *
 * Execution goes through the context's ExecutionSpace: the serial
 * space runs the historical in-line loops bit for bit; a
 * ThreadPoolSpace statically chunks the flattened outer dimensions
 * across a persistent worker pool. Kernel names are `string_view`s and
 * the profiler tables are probed without materializing strings, so a
 * launch allocates nothing on the no-profiler, counting, and
 * steady-state recording paths.
 *
 * Reductions must use `parReduce` rather than accumulating into a
 * capture: it gives each static chunk its own accumulator and combines
 * the partials in chunk order, which is race-free and deterministic
 * for a fixed thread count (and exact for min/max under any chunking).
 */
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "exec/exec_context.hpp"
#include "exec/kernel_profiler.hpp"
#include "obs/trace.hpp"

namespace vibe {

/** Per-work-item cost declaration for a kernel. */
struct KernelCosts
{
    double flopsPerItem = 0;
    double bytesPerItem = 0;
};

/** Combine operation for `parReduce`. */
enum class ReduceOp { Min, Max, Sum };

namespace detail {

inline double
reduceIdentity(ReduceOp op)
{
    switch (op) {
      case ReduceOp::Min:
        return std::numeric_limits<double>::infinity();
      case ReduceOp::Max:
        return -std::numeric_limits<double>::infinity();
      case ReduceOp::Sum:
        return 0.0;
    }
    return 0.0;
}

inline double
reduceCombine(ReduceOp op, double a, double b)
{
    switch (op) {
      case ReduceOp::Min:
        return b < a ? b : a;
      case ReduceOp::Max:
        return b > a ? b : a;
      case ReduceOp::Sum:
        return a + b;
    }
    return a;
}

/** Scratch shared by the trampoline of one 3-D/4-D chunked launch. */
template <typename F>
struct Launch3
{
    F& body;
    std::int64_t nj;
    int kl, jl, il, iu;
};

template <typename F>
struct Launch4
{
    F& body;
    std::int64_t nk, nj;
    int nl, kl, jl, il, iu;
};

} // namespace detail

/**
 * Execute-only 1-D loop over [il, iu] through the context's execution
 * space, without recording a launch. For call sites whose accounting
 * is batched separately via `recordKernel` (irregular pack/unpack and
 * fused multi-pass kernels).
 */
template <typename F>
void
parForExec(const ExecContext& ctx, int il, int iu, F&& body)
{
    if (!ctx.executing() || iu < il)
        return;
    ExecutionSpace& space = ctx.space();
    const std::int64_t n = static_cast<std::int64_t>(iu) - il + 1;
    if (space.concurrency() == 1 || n <= 1) {
        for (int i = il; i <= iu; ++i)
            body(i);
        return;
    }
    struct Launch1
    {
        F& body;
        int il;
    } launch{body, il};
    space.forEachChunk(
        n,
        [](void* p, std::int64_t begin, std::int64_t end, int) {
            auto* launch = static_cast<Launch1*>(p);
            for (std::int64_t idx = begin; idx < end; ++idx)
                launch->body(launch->il + static_cast<int>(idx));
        },
        &launch);
}

/**
 * Execute-only 3-D loop over [kl,ku] x [jl,ju] x [il,iu]; the (k, j)
 * plane is flattened and chunked, the contiguous i loop stays inside
 * the body call. No launch is recorded (see the 1-D overload).
 */
template <typename F>
void
parForExec(const ExecContext& ctx, int kl, int ku, int jl, int ju, int il,
           int iu, F&& body)
{
    if (!ctx.executing() || ku < kl || ju < jl || iu < il)
        return;
    ExecutionSpace& space = ctx.space();
    const std::int64_t nk = static_cast<std::int64_t>(ku) - kl + 1;
    const std::int64_t nj = static_cast<std::int64_t>(ju) - jl + 1;
    if (space.concurrency() == 1 || nk * nj <= 1) {
        for (int k = kl; k <= ku; ++k)
            for (int j = jl; j <= ju; ++j)
                for (int i = il; i <= iu; ++i)
                    body(k, j, i);
        return;
    }
    detail::Launch3<F> launch{body, nj, kl, jl, il, iu};
    space.forEachChunk(
        nk * nj,
        [](void* p, std::int64_t begin, std::int64_t end, int) {
            auto* launch = static_cast<detail::Launch3<F>*>(p);
            for (std::int64_t idx = begin; idx < end; ++idx) {
                const int k =
                    launch->kl + static_cast<int>(idx / launch->nj);
                const int j =
                    launch->jl + static_cast<int>(idx % launch->nj);
                for (int i = launch->il; i <= launch->iu; ++i)
                    launch->body(k, j, i);
            }
        },
        &launch);
}

/**
 * Execute-only 4-D loop with a leading variable index [nl,nu]; the
 * (n, k, j) volume is flattened and chunked.
 */
template <typename F>
void
parForExec(const ExecContext& ctx, int nl, int nu, int kl, int ku, int jl,
           int ju, int il, int iu, F&& body)
{
    if (!ctx.executing() || nu < nl || ku < kl || ju < jl || iu < il)
        return;
    ExecutionSpace& space = ctx.space();
    const std::int64_t nn = static_cast<std::int64_t>(nu) - nl + 1;
    const std::int64_t nk = static_cast<std::int64_t>(ku) - kl + 1;
    const std::int64_t nj = static_cast<std::int64_t>(ju) - jl + 1;
    if (space.concurrency() == 1 || nn * nk * nj <= 1) {
        for (int n = nl; n <= nu; ++n)
            for (int k = kl; k <= ku; ++k)
                for (int j = jl; j <= ju; ++j)
                    for (int i = il; i <= iu; ++i)
                        body(n, k, j, i);
        return;
    }
    detail::Launch4<F> launch{body, nk, nj, nl, kl, jl, il, iu};
    space.forEachChunk(
        nn * nk * nj,
        [](void* p, std::int64_t begin, std::int64_t end, int) {
            auto* launch = static_cast<detail::Launch4<F>*>(p);
            for (std::int64_t idx = begin; idx < end; ++idx) {
                const std::int64_t kj = idx % (launch->nk * launch->nj);
                const int n = launch->nl +
                              static_cast<int>(idx /
                                               (launch->nk * launch->nj));
                const int k =
                    launch->kl + static_cast<int>(kj / launch->nj);
                const int j =
                    launch->jl + static_cast<int>(kj % launch->nj);
                for (int i = launch->il; i <= launch->iu; ++i)
                    launch->body(n, k, j, i);
            }
        },
        &launch);
}

/**
 * 1-D named kernel over [il, iu] inclusive.
 *
 * @param ctx     Execution context (mode + instrumentation + space).
 * @param name    Kernel label (shows up in Table III / Fig. 12).
 * @param costs   Per-item flop/byte costs for the performance model.
 * @param il,iu   Inclusive index bounds.
 * @param body    Callable (int i).
 */
template <typename F>
void
parFor(const ExecContext& ctx, std::string_view name,
       const KernelCosts& costs, int il, int iu, F&& body)
{
    const double items = iu >= il ? static_cast<double>(iu - il + 1) : 0.0;
    if (ctx.profiler()) {
        ctx.profiler()->record({name, {}, ctx.currentRank(), 1, items,
                                items * costs.flopsPerItem,
                                items * costs.bytesPerItem, items});
    }
    // One span per launch: thread-count-independent, so traced event
    // counts are comparable across pool sizes.
    TraceSpan trace(name, TraceCat::Kernel, ctx.currentRank());
    parForExec(ctx, il, iu, static_cast<F&&>(body));
}

/** 3-D named kernel over [kl,ku] x [jl,ju] x [il,iu], innermost i. */
template <typename F>
void
parFor(const ExecContext& ctx, std::string_view name,
       const KernelCosts& costs, int kl, int ku, int jl, int ju, int il,
       int iu, F&& body)
{
    const double nk = ku >= kl ? static_cast<double>(ku - kl + 1) : 0.0;
    const double nj = ju >= jl ? static_cast<double>(ju - jl + 1) : 0.0;
    const double ni = iu >= il ? static_cast<double>(iu - il + 1) : 0.0;
    const double items = nk * nj * ni;
    if (ctx.profiler()) {
        ctx.profiler()->record({name, {}, ctx.currentRank(), 1, items,
                                items * costs.flopsPerItem,
                                items * costs.bytesPerItem, ni});
    }
    TraceSpan trace(name, TraceCat::Kernel, ctx.currentRank());
    parForExec(ctx, kl, ku, jl, ju, il, iu, static_cast<F&&>(body));
}

/** 4-D named kernel with a leading variable index [nl,nu]. */
template <typename F>
void
parFor(const ExecContext& ctx, std::string_view name,
       const KernelCosts& costs, int nl, int nu, int kl, int ku, int jl,
       int ju, int il, int iu, F&& body)
{
    const double nn = nu >= nl ? static_cast<double>(nu - nl + 1) : 0.0;
    const double nk = ku >= kl ? static_cast<double>(ku - kl + 1) : 0.0;
    const double nj = ju >= jl ? static_cast<double>(ju - jl + 1) : 0.0;
    const double ni = iu >= il ? static_cast<double>(iu - il + 1) : 0.0;
    const double items = nn * nk * nj * ni;
    if (ctx.profiler()) {
        ctx.profiler()->record({name, {}, ctx.currentRank(), 1, items,
                                items * costs.flopsPerItem,
                                items * costs.bytesPerItem, ni});
    }
    TraceSpan trace(name, TraceCat::Kernel, ctx.currentRank());
    parForExec(ctx, nl, nu, kl, ku, jl, ju, il, iu, static_cast<F&&>(body));
}

/**
 * 3-D named reduction kernel over [kl,ku] x [jl,ju] x [il,iu].
 *
 * The body receives (k, j, i, double& acc) and must fold the cell's
 * contribution into `acc` with the declared operation. `result` enters
 * as the initial value and leaves combined with every chunk partial in
 * chunk order: min/max results are exact under any chunking, sum
 * results are deterministic for a fixed thread count.
 */
template <typename F>
void
parReduce(const ExecContext& ctx, std::string_view name,
          const KernelCosts& costs, ReduceOp op, double& result, int kl,
          int ku, int jl, int ju, int il, int iu, F&& body)
{
    const double nk = ku >= kl ? static_cast<double>(ku - kl + 1) : 0.0;
    const double nj = ju >= jl ? static_cast<double>(ju - jl + 1) : 0.0;
    const double ni = iu >= il ? static_cast<double>(iu - il + 1) : 0.0;
    const double items = nk * nj * ni;
    if (ctx.profiler()) {
        ctx.profiler()->record({name, {}, ctx.currentRank(), 1, items,
                                items * costs.flopsPerItem,
                                items * costs.bytesPerItem, ni});
    }
    if (!ctx.executing() || ku < kl || ju < jl || iu < il)
        return;

    TraceSpan trace(name, TraceCat::Kernel, ctx.currentRank());
    ExecutionSpace& space = ctx.space();
    const std::int64_t onk = static_cast<std::int64_t>(ku) - kl + 1;
    const std::int64_t onj = static_cast<std::int64_t>(ju) - jl + 1;
    if (space.concurrency() == 1 || onk * onj <= 1) {
        double partial = detail::reduceIdentity(op);
        for (int k = kl; k <= ku; ++k)
            for (int j = jl; j <= ju; ++j)
                for (int i = il; i <= iu; ++i)
                    body(k, j, i, partial);
        result = detail::reduceCombine(op, result, partial);
        return;
    }

    struct ReduceLaunch
    {
        F& body;
        double* partials;
        std::int64_t nj;
        int kl, jl, il, iu;
    };
    // One accumulator per static chunk; combined in chunk order below.
    std::vector<double> partials(
        static_cast<std::size_t>(space.concurrency()),
        detail::reduceIdentity(op));
    ReduceLaunch launch{body, partials.data(), onj, kl, jl, il, iu};
    space.forEachChunk(
        onk * onj,
        [](void* p, std::int64_t begin, std::int64_t end, int chunk) {
            auto* launch = static_cast<ReduceLaunch*>(p);
            double acc = launch->partials[chunk];
            for (std::int64_t idx = begin; idx < end; ++idx) {
                const int k =
                    launch->kl + static_cast<int>(idx / launch->nj);
                const int j =
                    launch->jl + static_cast<int>(idx % launch->nj);
                for (int i = launch->il; i <= launch->iu; ++i)
                    launch->body(k, j, i, acc);
            }
            launch->partials[chunk] = acc;
        },
        &launch);
    for (double partial : partials)
        result = detail::reduceCombine(op, result, partial);
}

/**
 * Record a kernel launch whose body is executed elsewhere (used for
 * batched pack/unpack where the loop structure is irregular).
 */
inline void
recordKernel(const ExecContext& ctx, std::string_view name, double items,
             const KernelCosts& costs, double innermost)
{
    if (ctx.profiler()) {
        ctx.profiler()->record({name, {}, ctx.currentRank(), 1, items,
                                items * costs.flopsPerItem,
                                items * costs.bytesPerItem, innermost});
    }
    // The body runs elsewhere, so mark the launch as an instant; the
    // surrounding task span carries the timing.
    traceInstant(name, TraceCat::Kernel, ctx.currentRank(), -1, items);
}

/** Record serial (non-kernel) work items of a named category. */
inline void
recordSerial(const ExecContext& ctx, std::string_view category,
             double items)
{
    if (ctx.profiler())
        ctx.profiler()->recordSerial(
            {{}, category, ctx.currentRank(), items});
}

// ---------------------------------------------------------------------
// Explicit-attribution variants for task-graph bodies.
//
// Tasks run concurrently on executor workers, so they must not depend
// on the profiler's ambient phase (PhaseScope/setPhase is a merge
// point that requires quiescence) nor on the context's ambient
// current-rank (a shared mutable slot). These variants carry the phase
// and rank in the record itself; the aggregation keys are identical to
// the PhaseScope-based path, so serial and threaded runs produce the
// same tables.
// ---------------------------------------------------------------------

/** recordKernel with explicit phase and rank attribution. */
inline void
recordKernelAt(const ExecContext& ctx, std::string_view phase, int rank,
               std::string_view name, double items,
               const KernelCosts& costs, double innermost)
{
    if (ctx.profiler()) {
        ctx.profiler()->record({name, phase, rank, 1, items,
                                items * costs.flopsPerItem,
                                items * costs.bytesPerItem, innermost});
    }
    traceInstant(name, TraceCat::Kernel, rank, -1, items);
}

/** recordSerial with explicit phase and rank attribution. */
inline void
recordSerialAt(const ExecContext& ctx, std::string_view phase, int rank,
               std::string_view category, double items)
{
    if (ctx.profiler())
        ctx.profiler()->recordSerial({phase, category, rank, items});
}

/** 3-D named kernel with explicit phase and rank attribution. */
template <typename F>
void
parForAt(const ExecContext& ctx, std::string_view phase, int rank,
         std::string_view name, const KernelCosts& costs, int kl, int ku,
         int jl, int ju, int il, int iu, F&& body)
{
    const double nk = ku >= kl ? static_cast<double>(ku - kl + 1) : 0.0;
    const double nj = ju >= jl ? static_cast<double>(ju - jl + 1) : 0.0;
    const double ni = iu >= il ? static_cast<double>(iu - il + 1) : 0.0;
    const double items = nk * nj * ni;
    if (ctx.profiler()) {
        ctx.profiler()->record({name, phase, rank, 1, items,
                                items * costs.flopsPerItem,
                                items * costs.bytesPerItem, ni});
    }
    TraceSpan trace(name, TraceCat::Kernel, rank, -1, phase);
    parForExec(ctx, kl, ku, jl, ju, il, iu, static_cast<F&&>(body));
}

// ---------------------------------------------------------------------
// Fused MeshBlockPack launches.
//
// One kernel launch spans the whole packed (block, n, k, j) domain —
// the Parthenon MeshBlockPack strategy (Grete et al. 2022) — instead
// of one launch per block. The flattened row volume is chunked across
// the execution space, so load balance is restored even when
// num_blocks < num_threads or blocks are tiny, and the per-launch
// pool synchronization cost is paid once per phase rather than once
// per block.
//
// Dispatch is hierarchical, mirroring Kokkos team/vector loops: the
// outer chunked domain iterates rows, the body writes the contiguous
// innermost i loop itself and receives the chunk id for per-chunk
// scratch (the serial path and nested launches always pass chunk ids
// within [0, concurrency())). The serial path visits (b, n, k, j)
// rows in exactly the per-block launch order, and elementwise bodies
// compute each cell independently, so pack launches are bit-identical
// to per-block launches on every backend.
// ---------------------------------------------------------------------

/** Chunked rows over one block: body(chunk, k, j) writes the i loop.
 *  Execute-only companion of parForExec for kernels that hoist
 *  per-chunk scratch to launch setup (one resize per launch, not one
 *  size check per cell). */
template <typename F>
void
parForExecRows(const ExecContext& ctx, int kl, int ku, int jl, int ju,
               F&& body)
{
    if (!ctx.executing() || ku < kl || ju < jl)
        return;
    ExecutionSpace& space = ctx.space();
    const std::int64_t nk = static_cast<std::int64_t>(ku) - kl + 1;
    const std::int64_t nj = static_cast<std::int64_t>(ju) - jl + 1;
    if (space.concurrency() == 1 || nk * nj <= 1) {
        for (int k = kl; k <= ku; ++k)
            for (int j = jl; j <= ju; ++j)
                body(0, k, j);
        return;
    }
    detail::Launch3<F> launch{body, nj, kl, jl, 0, 0};
    space.forEachChunk(
        nk * nj,
        [](void* p, std::int64_t begin, std::int64_t end, int chunk) {
            auto* launch = static_cast<detail::Launch3<F>*>(p);
            for (std::int64_t idx = begin; idx < end; ++idx) {
                const int k =
                    launch->kl + static_cast<int>(idx / launch->nj);
                const int j =
                    launch->jl + static_cast<int>(idx % launch->nj);
                launch->body(chunk, k, j);
            }
        },
        &launch);
}

namespace detail {

template <typename F>
struct LaunchPack
{
    F& body;
    std::int64_t nn, nk, nj;
    int nl, kl, jl;
};

} // namespace detail

/**
 * Execute-only fused pack loop: flatten (block, n, k, j) over all
 * `nblocks` blocks and chunk it across the space. The body receives
 * (chunk, b, n, k, j) and writes the contiguous i loop itself; use
 * nl = nu = 0 for kernels without a leading component dimension.
 */
template <typename F>
void
parForPackExec(const ExecContext& ctx, int nblocks, int nl, int nu,
               int kl, int ku, int jl, int ju, F&& body)
{
    if (!ctx.executing() || nblocks <= 0 || nu < nl || ku < kl ||
        ju < jl)
        return;
    ExecutionSpace& space = ctx.space();
    const std::int64_t nn = static_cast<std::int64_t>(nu) - nl + 1;
    const std::int64_t nk = static_cast<std::int64_t>(ku) - kl + 1;
    const std::int64_t nj = static_cast<std::int64_t>(ju) - jl + 1;
    const std::int64_t rows = nblocks * nn * nk * nj;
    if (space.concurrency() == 1 || rows <= 1) {
        for (int b = 0; b < nblocks; ++b)
            for (int n = nl; n <= nu; ++n)
                for (int k = kl; k <= ku; ++k)
                    for (int j = jl; j <= ju; ++j)
                        body(0, b, n, k, j);
        return;
    }
    detail::LaunchPack<F> launch{body, nn, nk, nj, nl, kl, jl};
    space.forEachChunk(
        rows,
        [](void* p, std::int64_t begin, std::int64_t end, int chunk) {
            auto* launch = static_cast<detail::LaunchPack<F>*>(p);
            const std::int64_t per_block =
                launch->nn * launch->nk * launch->nj;
            const std::int64_t kj = launch->nk * launch->nj;
            for (std::int64_t idx = begin; idx < end; ++idx) {
                const int b = static_cast<int>(idx / per_block);
                std::int64_t rem = idx % per_block;
                const int n =
                    launch->nl + static_cast<int>(rem / kj);
                rem %= kj;
                const int k =
                    launch->kl + static_cast<int>(rem / launch->nj);
                const int j =
                    launch->jl + static_cast<int>(rem % launch->nj);
                launch->body(chunk, b, n, k, j);
            }
        },
        &launch);
}

/**
 * Record one fused pack launch. The launch count is 1 (it is one
 * kernel), but items are attributed per rank by runs of equal rank in
 * block order, so per-rank load tables match the per-block launch
 * path. Allocation-free: runs are emitted as partial records instead
 * of building a rank map.
 */
inline void
recordPackKernel(const ExecContext& ctx, std::string_view phase,
                 std::string_view name, const KernelCosts& costs,
                 const int* ranks, int nblocks, double items_per_block,
                 double innermost)
{
    if (nblocks > 0)
        traceInstant(name, TraceCat::Kernel, ctx.currentRank(), -1,
                     nblocks * items_per_block);
    if (!ctx.profiler() || nblocks <= 0)
        return;
    std::uint64_t launches = 1;
    int b = 0;
    while (b < nblocks) {
        const int rank = ranks[b];
        int run = 0;
        while (b < nblocks && ranks[b] == rank) {
            ++run;
            ++b;
        }
        const double items = run * items_per_block;
        ctx.profiler()->record({name, phase, rank, launches, items,
                                items * costs.flopsPerItem,
                                items * costs.bytesPerItem,
                                launches ? innermost : 0.0});
        launches = 0;
    }
}

/**
 * recordPackKernel for irregular fused launches (boundary-plan pack
 * and unpack, where table rows are whole channels of varying volume):
 * per-entry item counts instead of one uniform per-block volume. The
 * launch count is 1 (it is one kernel); items are attributed per rank
 * by runs of equal rank in entry order, so per-rank load tables match
 * the per-face task path.
 */
inline void
recordPackKernelItems(const ExecContext& ctx, std::string_view phase,
                      std::string_view name, const KernelCosts& costs,
                      const int* ranks, const double* items, int n,
                      double innermost)
{
    if (n > 0) {
        double total = 0;
        if (TraceRecorder::enabled())
            for (int e = 0; e < n; ++e)
                total += items[e];
        traceInstant(name, TraceCat::Kernel, ctx.currentRank(), -1,
                     total);
    }
    if (!ctx.profiler() || n <= 0)
        return;
    std::uint64_t launches = 1;
    int e = 0;
    while (e < n) {
        const int rank = ranks[e];
        double run_items = 0;
        while (e < n && ranks[e] == rank) {
            run_items += items[e];
            ++e;
        }
        ctx.profiler()->record({name, phase, rank, launches, run_items,
                                run_items * costs.flopsPerItem,
                                run_items * costs.bytesPerItem,
                                launches ? innermost : 0.0});
        launches = 0;
    }
}

/**
 * Fused pack kernel: records one launch (per-rank item attribution)
 * and dispatches the packed row domain. Body as in parForPackExec;
 * [il, iu] enters the work accounting only — the body owns the loop.
 */
template <typename F>
void
parForPack(const ExecContext& ctx, std::string_view phase,
           std::string_view name, const KernelCosts& costs,
           const int* ranks, int nblocks, int nl, int nu, int kl, int ku,
           int jl, int ju, int il, int iu, F&& body)
{
    const double nn = nu >= nl ? static_cast<double>(nu - nl + 1) : 0.0;
    const double nk = ku >= kl ? static_cast<double>(ku - kl + 1) : 0.0;
    const double nj = ju >= jl ? static_cast<double>(ju - jl + 1) : 0.0;
    const double ni = iu >= il ? static_cast<double>(iu - il + 1) : 0.0;
    recordPackKernel(ctx, phase, name, costs, ranks, nblocks,
                     nn * nk * nj * ni, ni);
    TraceSpan trace(name, TraceCat::Kernel, ctx.currentRank(), -1,
                    phase);
    parForPackExec(ctx, nblocks, nl, nu, kl, ku, jl, ju,
                   static_cast<F&&>(body));
}

/**
 * Fused pack reduction over (block, k, j) rows; the body receives
 * (b, k, j, double& acc) and folds the whole row (its own i loop)
 * into `acc`. Chunk partials are combined in chunk order exactly as
 * parReduce: min/max results are chunking-exact — identical to the
 * per-block reduction sequence bit for bit — and sums are
 * deterministic for a fixed thread count.
 */
template <typename F>
void
parReducePack(const ExecContext& ctx, std::string_view phase,
              std::string_view name, const KernelCosts& costs,
              ReduceOp op, double& result, const int* ranks, int nblocks,
              int kl, int ku, int jl, int ju, int il, int iu, F&& body)
{
    const double nk = ku >= kl ? static_cast<double>(ku - kl + 1) : 0.0;
    const double nj = ju >= jl ? static_cast<double>(ju - jl + 1) : 0.0;
    const double ni = iu >= il ? static_cast<double>(iu - il + 1) : 0.0;
    recordPackKernel(ctx, phase, name, costs, ranks, nblocks,
                     nk * nj * ni, ni);
    if (!ctx.executing() || nblocks <= 0 || ku < kl || ju < jl ||
        iu < il)
        return;

    TraceSpan trace(name, TraceCat::Kernel, ctx.currentRank(), -1,
                    phase);
    ExecutionSpace& space = ctx.space();
    const std::int64_t onk = static_cast<std::int64_t>(ku) - kl + 1;
    const std::int64_t onj = static_cast<std::int64_t>(ju) - jl + 1;
    const std::int64_t rows = nblocks * onk * onj;
    if (space.concurrency() == 1 || rows <= 1) {
        double partial = detail::reduceIdentity(op);
        for (int b = 0; b < nblocks; ++b)
            for (int k = kl; k <= ku; ++k)
                for (int j = jl; j <= ju; ++j)
                    body(b, k, j, partial);
        result = detail::reduceCombine(op, result, partial);
        return;
    }

    struct ReducePackLaunch
    {
        F& body;
        double* partials;
        std::int64_t nk, nj;
        int kl, jl;
    };
    std::vector<double> partials(
        static_cast<std::size_t>(space.concurrency()),
        detail::reduceIdentity(op));
    ReducePackLaunch launch{body, partials.data(), onk, onj, kl, jl};
    space.forEachChunk(
        rows,
        [](void* p, std::int64_t begin, std::int64_t end, int chunk) {
            auto* launch = static_cast<ReducePackLaunch*>(p);
            const std::int64_t per_block = launch->nk * launch->nj;
            double acc = launch->partials[chunk];
            for (std::int64_t idx = begin; idx < end; ++idx) {
                const int b = static_cast<int>(idx / per_block);
                const std::int64_t rem = idx % per_block;
                const int k =
                    launch->kl + static_cast<int>(rem / launch->nj);
                const int j =
                    launch->jl + static_cast<int>(rem % launch->nj);
                launch->body(b, k, j, acc);
            }
            launch->partials[chunk] = acc;
        },
        &launch);
    for (double partial : partials)
        result = detail::reduceCombine(op, result, partial);
}

} // namespace vibe
