/**
 * @file par_for.hpp
 * Kokkos-style named parallel loops with work accounting.
 *
 * Every compute kernel in the solver and comm layers is expressed as a
 * `parFor` over an index range. The caller supplies per-item flop/byte
 * costs (the solver knows its own arithmetic); the launch is recorded in
 * the profiler, and the body is executed only in numeric mode. This is
 * the boundary the paper uses to split "Kokkos kernel" time from the
 * "serial portion" (§II-C).
 */
#pragma once

#include <cstdint>
#include <string>

#include "exec/exec_context.hpp"
#include "exec/kernel_profiler.hpp"

namespace vibe {

/** Per-work-item cost declaration for a kernel. */
struct KernelCosts
{
    double flopsPerItem = 0;
    double bytesPerItem = 0;
};

/**
 * 1-D named kernel over [il, iu] inclusive.
 *
 * @param ctx     Execution context (mode + instrumentation).
 * @param name    Kernel label (shows up in Table III / Fig. 12).
 * @param costs   Per-item flop/byte costs for the performance model.
 * @param il,iu   Inclusive index bounds.
 * @param body    Callable (int i).
 */
template <typename F>
void
parFor(const ExecContext& ctx, const std::string& name,
       const KernelCosts& costs, int il, int iu, F&& body)
{
    const double items = iu >= il ? static_cast<double>(iu - il + 1) : 0.0;
    if (ctx.profiler()) {
        ctx.profiler()->record({name, std::string(), ctx.currentRank(), 1,
                                items, items * costs.flopsPerItem,
                                items * costs.bytesPerItem, items});
    }
    if (ctx.executing())
        for (int i = il; i <= iu; ++i)
            body(i);
}

/** 3-D named kernel over [kl,ku] x [jl,ju] x [il,iu], innermost i. */
template <typename F>
void
parFor(const ExecContext& ctx, const std::string& name,
       const KernelCosts& costs, int kl, int ku, int jl, int ju, int il,
       int iu, F&& body)
{
    const double nk = ku >= kl ? static_cast<double>(ku - kl + 1) : 0.0;
    const double nj = ju >= jl ? static_cast<double>(ju - jl + 1) : 0.0;
    const double ni = iu >= il ? static_cast<double>(iu - il + 1) : 0.0;
    const double items = nk * nj * ni;
    if (ctx.profiler()) {
        ctx.profiler()->record({name, std::string(), ctx.currentRank(), 1,
                                items, items * costs.flopsPerItem,
                                items * costs.bytesPerItem, ni});
    }
    if (ctx.executing())
        for (int k = kl; k <= ku; ++k)
            for (int j = jl; j <= ju; ++j)
                for (int i = il; i <= iu; ++i)
                    body(k, j, i);
}

/** 4-D named kernel with a leading variable index [nl,nu]. */
template <typename F>
void
parFor(const ExecContext& ctx, const std::string& name,
       const KernelCosts& costs, int nl, int nu, int kl, int ku, int jl,
       int ju, int il, int iu, F&& body)
{
    const double nn = nu >= nl ? static_cast<double>(nu - nl + 1) : 0.0;
    const double nk = ku >= kl ? static_cast<double>(ku - kl + 1) : 0.0;
    const double nj = ju >= jl ? static_cast<double>(ju - jl + 1) : 0.0;
    const double ni = iu >= il ? static_cast<double>(iu - il + 1) : 0.0;
    const double items = nn * nk * nj * ni;
    if (ctx.profiler()) {
        ctx.profiler()->record({name, std::string(), ctx.currentRank(), 1,
                                items, items * costs.flopsPerItem,
                                items * costs.bytesPerItem, ni});
    }
    if (ctx.executing())
        for (int n = nl; n <= nu; ++n)
            for (int k = kl; k <= ku; ++k)
                for (int j = jl; j <= ju; ++j)
                    for (int i = il; i <= iu; ++i)
                        body(n, k, j, i);
}

/**
 * Record a kernel launch whose body is executed elsewhere (used for
 * batched pack/unpack where the loop structure is irregular).
 */
inline void
recordKernel(const ExecContext& ctx, const std::string& name, double items,
             const KernelCosts& costs, double innermost)
{
    if (ctx.profiler()) {
        ctx.profiler()->record({name, std::string(), ctx.currentRank(), 1,
                                items, items * costs.flopsPerItem,
                                items * costs.bytesPerItem, innermost});
    }
}

/** Record serial (non-kernel) work items of a named category. */
inline void
recordSerial(const ExecContext& ctx, const std::string& category,
             double items)
{
    if (ctx.profiler())
        ctx.profiler()->recordSerial(
            {std::string(), category, ctx.currentRank(), items});
}

} // namespace vibe
