/**
 * @file par_for.hpp
 * Kokkos-style named parallel loops with work accounting.
 *
 * Every compute kernel in the solver and comm layers is expressed as a
 * `parFor` over an index range. The caller supplies per-item flop/byte
 * costs (the solver knows its own arithmetic); the launch is recorded in
 * the profiler, and the body is executed only in numeric mode. This is
 * the boundary the paper uses to split "Kokkos kernel" time from the
 * "serial portion" (§II-C).
 *
 * Execution goes through the context's ExecutionSpace: the serial
 * space runs the historical in-line loops bit for bit; a
 * ThreadPoolSpace statically chunks the flattened outer dimensions
 * across a persistent worker pool. Kernel names are `string_view`s and
 * the profiler tables are probed without materializing strings, so a
 * launch allocates nothing on the no-profiler, counting, and
 * steady-state recording paths.
 *
 * Reductions must use `parReduce` rather than accumulating into a
 * capture: it gives each static chunk its own accumulator and combines
 * the partials in chunk order, which is race-free and deterministic
 * for a fixed thread count (and exact for min/max under any chunking).
 */
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "exec/exec_context.hpp"
#include "exec/kernel_profiler.hpp"

namespace vibe {

/** Per-work-item cost declaration for a kernel. */
struct KernelCosts
{
    double flopsPerItem = 0;
    double bytesPerItem = 0;
};

/** Combine operation for `parReduce`. */
enum class ReduceOp { Min, Max, Sum };

namespace detail {

inline double
reduceIdentity(ReduceOp op)
{
    switch (op) {
      case ReduceOp::Min:
        return std::numeric_limits<double>::infinity();
      case ReduceOp::Max:
        return -std::numeric_limits<double>::infinity();
      case ReduceOp::Sum:
        return 0.0;
    }
    return 0.0;
}

inline double
reduceCombine(ReduceOp op, double a, double b)
{
    switch (op) {
      case ReduceOp::Min:
        return b < a ? b : a;
      case ReduceOp::Max:
        return b > a ? b : a;
      case ReduceOp::Sum:
        return a + b;
    }
    return a;
}

/** Scratch shared by the trampoline of one 3-D/4-D chunked launch. */
template <typename F>
struct Launch3
{
    F& body;
    std::int64_t nj;
    int kl, jl, il, iu;
};

template <typename F>
struct Launch4
{
    F& body;
    std::int64_t nk, nj;
    int nl, kl, jl, il, iu;
};

} // namespace detail

/**
 * Execute-only 1-D loop over [il, iu] through the context's execution
 * space, without recording a launch. For call sites whose accounting
 * is batched separately via `recordKernel` (irregular pack/unpack and
 * fused multi-pass kernels).
 */
template <typename F>
void
parForExec(const ExecContext& ctx, int il, int iu, F&& body)
{
    if (!ctx.executing() || iu < il)
        return;
    ExecutionSpace& space = ctx.space();
    const std::int64_t n = static_cast<std::int64_t>(iu) - il + 1;
    if (space.concurrency() == 1 || n <= 1) {
        for (int i = il; i <= iu; ++i)
            body(i);
        return;
    }
    struct Launch1
    {
        F& body;
        int il;
    } launch{body, il};
    space.forEachChunk(
        n,
        [](void* p, std::int64_t begin, std::int64_t end, int) {
            auto* launch = static_cast<Launch1*>(p);
            for (std::int64_t idx = begin; idx < end; ++idx)
                launch->body(launch->il + static_cast<int>(idx));
        },
        &launch);
}

/**
 * Execute-only 3-D loop over [kl,ku] x [jl,ju] x [il,iu]; the (k, j)
 * plane is flattened and chunked, the contiguous i loop stays inside
 * the body call. No launch is recorded (see the 1-D overload).
 */
template <typename F>
void
parForExec(const ExecContext& ctx, int kl, int ku, int jl, int ju, int il,
           int iu, F&& body)
{
    if (!ctx.executing() || ku < kl || ju < jl || iu < il)
        return;
    ExecutionSpace& space = ctx.space();
    const std::int64_t nk = static_cast<std::int64_t>(ku) - kl + 1;
    const std::int64_t nj = static_cast<std::int64_t>(ju) - jl + 1;
    if (space.concurrency() == 1 || nk * nj <= 1) {
        for (int k = kl; k <= ku; ++k)
            for (int j = jl; j <= ju; ++j)
                for (int i = il; i <= iu; ++i)
                    body(k, j, i);
        return;
    }
    detail::Launch3<F> launch{body, nj, kl, jl, il, iu};
    space.forEachChunk(
        nk * nj,
        [](void* p, std::int64_t begin, std::int64_t end, int) {
            auto* launch = static_cast<detail::Launch3<F>*>(p);
            for (std::int64_t idx = begin; idx < end; ++idx) {
                const int k =
                    launch->kl + static_cast<int>(idx / launch->nj);
                const int j =
                    launch->jl + static_cast<int>(idx % launch->nj);
                for (int i = launch->il; i <= launch->iu; ++i)
                    launch->body(k, j, i);
            }
        },
        &launch);
}

/**
 * Execute-only 4-D loop with a leading variable index [nl,nu]; the
 * (n, k, j) volume is flattened and chunked.
 */
template <typename F>
void
parForExec(const ExecContext& ctx, int nl, int nu, int kl, int ku, int jl,
           int ju, int il, int iu, F&& body)
{
    if (!ctx.executing() || nu < nl || ku < kl || ju < jl || iu < il)
        return;
    ExecutionSpace& space = ctx.space();
    const std::int64_t nn = static_cast<std::int64_t>(nu) - nl + 1;
    const std::int64_t nk = static_cast<std::int64_t>(ku) - kl + 1;
    const std::int64_t nj = static_cast<std::int64_t>(ju) - jl + 1;
    if (space.concurrency() == 1 || nn * nk * nj <= 1) {
        for (int n = nl; n <= nu; ++n)
            for (int k = kl; k <= ku; ++k)
                for (int j = jl; j <= ju; ++j)
                    for (int i = il; i <= iu; ++i)
                        body(n, k, j, i);
        return;
    }
    detail::Launch4<F> launch{body, nk, nj, nl, kl, jl, il, iu};
    space.forEachChunk(
        nn * nk * nj,
        [](void* p, std::int64_t begin, std::int64_t end, int) {
            auto* launch = static_cast<detail::Launch4<F>*>(p);
            for (std::int64_t idx = begin; idx < end; ++idx) {
                const std::int64_t kj = idx % (launch->nk * launch->nj);
                const int n = launch->nl +
                              static_cast<int>(idx /
                                               (launch->nk * launch->nj));
                const int k =
                    launch->kl + static_cast<int>(kj / launch->nj);
                const int j =
                    launch->jl + static_cast<int>(kj % launch->nj);
                for (int i = launch->il; i <= launch->iu; ++i)
                    launch->body(n, k, j, i);
            }
        },
        &launch);
}

/**
 * 1-D named kernel over [il, iu] inclusive.
 *
 * @param ctx     Execution context (mode + instrumentation + space).
 * @param name    Kernel label (shows up in Table III / Fig. 12).
 * @param costs   Per-item flop/byte costs for the performance model.
 * @param il,iu   Inclusive index bounds.
 * @param body    Callable (int i).
 */
template <typename F>
void
parFor(const ExecContext& ctx, std::string_view name,
       const KernelCosts& costs, int il, int iu, F&& body)
{
    const double items = iu >= il ? static_cast<double>(iu - il + 1) : 0.0;
    if (ctx.profiler()) {
        ctx.profiler()->record({name, {}, ctx.currentRank(), 1, items,
                                items * costs.flopsPerItem,
                                items * costs.bytesPerItem, items});
    }
    parForExec(ctx, il, iu, static_cast<F&&>(body));
}

/** 3-D named kernel over [kl,ku] x [jl,ju] x [il,iu], innermost i. */
template <typename F>
void
parFor(const ExecContext& ctx, std::string_view name,
       const KernelCosts& costs, int kl, int ku, int jl, int ju, int il,
       int iu, F&& body)
{
    const double nk = ku >= kl ? static_cast<double>(ku - kl + 1) : 0.0;
    const double nj = ju >= jl ? static_cast<double>(ju - jl + 1) : 0.0;
    const double ni = iu >= il ? static_cast<double>(iu - il + 1) : 0.0;
    const double items = nk * nj * ni;
    if (ctx.profiler()) {
        ctx.profiler()->record({name, {}, ctx.currentRank(), 1, items,
                                items * costs.flopsPerItem,
                                items * costs.bytesPerItem, ni});
    }
    parForExec(ctx, kl, ku, jl, ju, il, iu, static_cast<F&&>(body));
}

/** 4-D named kernel with a leading variable index [nl,nu]. */
template <typename F>
void
parFor(const ExecContext& ctx, std::string_view name,
       const KernelCosts& costs, int nl, int nu, int kl, int ku, int jl,
       int ju, int il, int iu, F&& body)
{
    const double nn = nu >= nl ? static_cast<double>(nu - nl + 1) : 0.0;
    const double nk = ku >= kl ? static_cast<double>(ku - kl + 1) : 0.0;
    const double nj = ju >= jl ? static_cast<double>(ju - jl + 1) : 0.0;
    const double ni = iu >= il ? static_cast<double>(iu - il + 1) : 0.0;
    const double items = nn * nk * nj * ni;
    if (ctx.profiler()) {
        ctx.profiler()->record({name, {}, ctx.currentRank(), 1, items,
                                items * costs.flopsPerItem,
                                items * costs.bytesPerItem, ni});
    }
    parForExec(ctx, nl, nu, kl, ku, jl, ju, il, iu, static_cast<F&&>(body));
}

/**
 * 3-D named reduction kernel over [kl,ku] x [jl,ju] x [il,iu].
 *
 * The body receives (k, j, i, double& acc) and must fold the cell's
 * contribution into `acc` with the declared operation. `result` enters
 * as the initial value and leaves combined with every chunk partial in
 * chunk order: min/max results are exact under any chunking, sum
 * results are deterministic for a fixed thread count.
 */
template <typename F>
void
parReduce(const ExecContext& ctx, std::string_view name,
          const KernelCosts& costs, ReduceOp op, double& result, int kl,
          int ku, int jl, int ju, int il, int iu, F&& body)
{
    const double nk = ku >= kl ? static_cast<double>(ku - kl + 1) : 0.0;
    const double nj = ju >= jl ? static_cast<double>(ju - jl + 1) : 0.0;
    const double ni = iu >= il ? static_cast<double>(iu - il + 1) : 0.0;
    const double items = nk * nj * ni;
    if (ctx.profiler()) {
        ctx.profiler()->record({name, {}, ctx.currentRank(), 1, items,
                                items * costs.flopsPerItem,
                                items * costs.bytesPerItem, ni});
    }
    if (!ctx.executing() || ku < kl || ju < jl || iu < il)
        return;

    ExecutionSpace& space = ctx.space();
    const std::int64_t onk = static_cast<std::int64_t>(ku) - kl + 1;
    const std::int64_t onj = static_cast<std::int64_t>(ju) - jl + 1;
    if (space.concurrency() == 1 || onk * onj <= 1) {
        double partial = detail::reduceIdentity(op);
        for (int k = kl; k <= ku; ++k)
            for (int j = jl; j <= ju; ++j)
                for (int i = il; i <= iu; ++i)
                    body(k, j, i, partial);
        result = detail::reduceCombine(op, result, partial);
        return;
    }

    struct ReduceLaunch
    {
        F& body;
        double* partials;
        std::int64_t nj;
        int kl, jl, il, iu;
    };
    // One accumulator per static chunk; combined in chunk order below.
    std::vector<double> partials(
        static_cast<std::size_t>(space.concurrency()),
        detail::reduceIdentity(op));
    ReduceLaunch launch{body, partials.data(), onj, kl, jl, il, iu};
    space.forEachChunk(
        onk * onj,
        [](void* p, std::int64_t begin, std::int64_t end, int chunk) {
            auto* launch = static_cast<ReduceLaunch*>(p);
            double acc = launch->partials[chunk];
            for (std::int64_t idx = begin; idx < end; ++idx) {
                const int k =
                    launch->kl + static_cast<int>(idx / launch->nj);
                const int j =
                    launch->jl + static_cast<int>(idx % launch->nj);
                for (int i = launch->il; i <= launch->iu; ++i)
                    launch->body(k, j, i, acc);
            }
            launch->partials[chunk] = acc;
        },
        &launch);
    for (double partial : partials)
        result = detail::reduceCombine(op, result, partial);
}

/**
 * Record a kernel launch whose body is executed elsewhere (used for
 * batched pack/unpack where the loop structure is irregular).
 */
inline void
recordKernel(const ExecContext& ctx, std::string_view name, double items,
             const KernelCosts& costs, double innermost)
{
    if (ctx.profiler()) {
        ctx.profiler()->record({name, {}, ctx.currentRank(), 1, items,
                                items * costs.flopsPerItem,
                                items * costs.bytesPerItem, innermost});
    }
}

/** Record serial (non-kernel) work items of a named category. */
inline void
recordSerial(const ExecContext& ctx, std::string_view category,
             double items)
{
    if (ctx.profiler())
        ctx.profiler()->recordSerial(
            {{}, category, ctx.currentRank(), items});
}

// ---------------------------------------------------------------------
// Explicit-attribution variants for task-graph bodies.
//
// Tasks run concurrently on executor workers, so they must not depend
// on the profiler's ambient phase (PhaseScope/setPhase is a merge
// point that requires quiescence) nor on the context's ambient
// current-rank (a shared mutable slot). These variants carry the phase
// and rank in the record itself; the aggregation keys are identical to
// the PhaseScope-based path, so serial and threaded runs produce the
// same tables.
// ---------------------------------------------------------------------

/** recordKernel with explicit phase and rank attribution. */
inline void
recordKernelAt(const ExecContext& ctx, std::string_view phase, int rank,
               std::string_view name, double items,
               const KernelCosts& costs, double innermost)
{
    if (ctx.profiler()) {
        ctx.profiler()->record({name, phase, rank, 1, items,
                                items * costs.flopsPerItem,
                                items * costs.bytesPerItem, innermost});
    }
}

/** recordSerial with explicit phase and rank attribution. */
inline void
recordSerialAt(const ExecContext& ctx, std::string_view phase, int rank,
               std::string_view category, double items)
{
    if (ctx.profiler())
        ctx.profiler()->recordSerial({phase, category, rank, items});
}

/** 3-D named kernel with explicit phase and rank attribution. */
template <typename F>
void
parForAt(const ExecContext& ctx, std::string_view phase, int rank,
         std::string_view name, const KernelCosts& costs, int kl, int ku,
         int jl, int ju, int il, int iu, F&& body)
{
    const double nk = ku >= kl ? static_cast<double>(ku - kl + 1) : 0.0;
    const double nj = ju >= jl ? static_cast<double>(ju - jl + 1) : 0.0;
    const double ni = iu >= il ? static_cast<double>(iu - il + 1) : 0.0;
    const double items = nk * nj * ni;
    if (ctx.profiler()) {
        ctx.profiler()->record({name, phase, rank, 1, items,
                                items * costs.flopsPerItem,
                                items * costs.bytesPerItem, ni});
    }
    parForExec(ctx, kl, ku, jl, ju, il, iu, static_cast<F&&>(body));
}

} // namespace vibe
