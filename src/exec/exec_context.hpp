/**
 * @file exec_context.hpp
 * Execution-space abstraction and run-wide execution context.
 *
 * Mirrors the role Kokkos plays for Parthenon: compute kernels are
 * expressed as `parFor` loops (exec/par_for.hpp) over index ranges, and
 * everything outside those loops is "serial portion" by the paper's
 * definition (§II-C). The context selects whether kernel bodies actually
 * execute (numeric mode) or are skipped while their work is recorded
 * (counting mode, used by the large performance studies), and carries
 * the profiler/tracker instrumentation.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "exec/execution_space.hpp"

namespace vibe {

class KernelProfiler;
class MemoryTracker;

/** Where a kernel logically executes (for performance-model attribution). */
enum class ExecSpace { Host, Device };

/** Whether kernel bodies run or are only accounted. */
enum class ExecMode { Execute, Count };

/**
 * Run-wide execution context threaded through mesh, comm, solver and
 * driver. Non-owning: profiler and tracker outlive the context.
 */
class ExecContext
{
  public:
    /** Serial execution space (the seed behavior, bit-identical). */
    ExecContext(ExecMode mode, KernelProfiler* profiler,
                MemoryTracker* tracker)
        : ExecContext(mode, profiler, tracker, sharedSerialSpace())
    {
    }

    /**
     * Explicit execution space (see makeExecutionSpace). The context
     * shares ownership so the space outlives every kernel launched
     * through it, even if the caller drops its handle.
     */
    ExecContext(ExecMode mode, KernelProfiler* profiler,
                MemoryTracker* tracker,
                std::shared_ptr<ExecutionSpace> space)
        : mode_(mode), profiler_(profiler), tracker_(tracker),
          space_(std::move(space))
    {
        if (!space_)
            space_ = sharedSerialSpace();
    }

    ExecMode mode() const { return mode_; }
    bool executing() const { return mode_ == ExecMode::Execute; }

    /** Execution space kernel bodies are dispatched on. */
    ExecutionSpace& space() const { return *space_; }
    const std::shared_ptr<ExecutionSpace>& spaceHandle() const
    {
        return space_;
    }

    KernelProfiler* profiler() const { return profiler_; }
    MemoryTracker* tracker() const { return tracker_; }

    /** MPI rank the currently processed block belongs to. */
    int currentRank() const { return current_rank_; }
    /**
     * Set the rank attributed to subsequent records. Const so the
     * context can be shared read-mostly; rank attribution is
     * instrumentation state, not execution state.
     */
    void setCurrentRank(int rank) const { current_rank_ = rank; }

  private:
    ExecMode mode_;
    KernelProfiler* profiler_;
    MemoryTracker* tracker_;
    std::shared_ptr<ExecutionSpace> space_;
    mutable int current_rank_ = 0;
};

} // namespace vibe
