#include "perfmodel/occupancy.hpp"

#include <algorithm>

namespace vibe {

OccupancyResult
computeOccupancy(const OccupancyQuery& query, const GpuSpec& gpu)
{
    require(query.regsPerThread >= 1 && query.threadsPerBlock >= 1,
            "occupancy query requires positive registers and threads");
    OccupancyResult result;

    const int warps_per_block =
        (query.threadsPerBlock + gpu.warpSize - 1) / gpu.warpSize;

    // Registers are allocated per warp in granules.
    const int regs_per_warp_raw = query.regsPerThread * gpu.warpSize;
    const int granule = gpu.regAllocGranularity;
    const int regs_per_warp =
        ((regs_per_warp_raw + granule - 1) / granule) * granule;
    const int regs_per_block = regs_per_warp * warps_per_block;

    int blocks_by_regs =
        regs_per_block > 0 ? gpu.regsPerSm / regs_per_block
                           : gpu.maxBlocksPerSm;
    // Shared memory: H100 228 KB usable per SM.
    int blocks_by_smem =
        query.sharedBytesPerBlock > 0
            ? static_cast<int>(228 * 1024 / query.sharedBytesPerBlock)
            : gpu.maxBlocksPerSm;
    int blocks_by_warps = gpu.maxWarpsPerSm / warps_per_block;

    result.blocksPerSm = std::max(
        0, std::min({blocks_by_regs, blocks_by_smem, blocks_by_warps,
                     gpu.maxBlocksPerSm}));
    result.activeWarpsPerSm = result.blocksPerSm * warps_per_block;
    result.occupancy = static_cast<double>(result.activeWarpsPerSm) /
                       gpu.maxWarpsPerSm;
    return result;
}

} // namespace vibe
