#include "perfmodel/execution_model.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace vibe {

double
TimingReport::phaseTotal(const std::string& phase) const
{
    auto it = phases.find(phase);
    return it == phases.end() ? 0.0 : it->second.total();
}

ExecutionModel::ExecutionModel(const Calibration& calibration,
                               const GpuSpec& gpu, const CpuSpec& cpu)
    : calibration_(calibration), gpu_(gpu), cpu_(cpu),
      kernel_model_(calibration), serial_model_(calibration),
      memory_model_(calibration, gpu, cpu)
{
}

namespace {

/** Scale aggregated kernel stats by 1/n (work split across devices). */
KernelStats
scaleStats(const KernelStats& stats, double inv_n)
{
    KernelStats scaled = stats;
    scaled.launches = static_cast<std::uint64_t>(
        std::max(1.0, stats.launches * inv_n));
    scaled.items *= inv_n;
    scaled.flops *= inv_n;
    scaled.bytes *= inv_n;
    scaled.innermostSum *= inv_n;
    return scaled;
}

} // namespace

TimingReport
ExecutionModel::evaluate(const RunArtifacts& artifacts,
                         const PlatformConfig& config) const
{
    require(artifacts.profiler != nullptr,
            "RunArtifacts must carry a profiler");
    const KernelProfiler& prof = *artifacts.profiler;
    TimingReport report;

    // --- Kernel time per phase ---
    const bool on_gpu = config.target == Target::Gpu;
    const double inv_devices =
        on_gpu ? 1.0 / std::max(1, config.gpus) : 1.0;
    for (const auto& [key, stats] : prof.kernels()) {
        const auto& [phase, name] = key;
        double duration;
        if (on_gpu) {
            // Kernel work from all ranks of one GPU serializes on that
            // device; devices operate concurrently -> evaluate the
            // per-device share.
            duration =
                kernel_model_
                    .evaluateGpu(name, scaleStats(stats, inv_devices),
                                 gpu_)
                    .duration;
        } else {
            const int cores =
                std::min(config.ranks, cpu_.cores * config.nodes);
            duration = kernel_model_.evaluateCpu(stats, cpu_, cores);
        }
        report.phases[phase].kernel += duration;
        report.kernelTime += duration;
    }

    // --- Table III rows: per-kernel aggregates on a single device ---
    if (on_gpu) {
        std::map<std::string, KernelStats> by_name;
        for (const auto& [key, stats] : prof.kernels()) {
            KernelStats& agg = by_name[key.second];
            agg.launches += stats.launches;
            agg.items += stats.items;
            agg.flops += stats.flops;
            agg.bytes += stats.bytes;
            agg.innermostSum += stats.innermostSum;
        }
        for (const auto& [name, stats] : by_name)
            report.kernels[name] = kernel_model_.evaluateGpu(
                name, scaleStats(stats, inv_devices), gpu_);
    }

    // --- Serial time per phase ---
    for (const auto& [key, stats] : prof.serial()) {
        const auto& [phase, category] = key;
        const double seconds =
            serial_model_.evaluate(category, stats.items, config);
        report.phases[phase].serial += seconds;
        report.serialTime += seconds;
    }

    report.totalTime = report.kernelTime + report.serialTime;
    report.fom = report.totalTime > 0
                     ? static_cast<double>(artifacts.zoneCycles) /
                           report.totalTime
                     : 0.0;

    // --- End-to-end SM utilization (Fig. 1c) ---
    if (on_gpu && report.totalTime > 0) {
        double weighted = 0;
        for (const auto& [name, timing] : report.kernels)
            weighted += timing.duration * timing.smUtil;
        report.e2eSmUtil = weighted / report.totalTime;
    }

    // --- Memory ---
    MemoryInputs mem;
    mem.kokkosBytes = artifacts.kokkosBytes;
    mem.remoteWireBytes = artifacts.remoteWireBytes;
    mem.remoteMsgsPerCycle = artifacts.remoteMsgsPerCycle;
    report.memory = memory_model_.evaluate(mem, config);

    return report;
}

} // namespace vibe
