/**
 * @file occupancy.hpp
 * CUDA occupancy calculator.
 *
 * Reproduces the register-pressure arithmetic the paper uses to explain
 * low SM occupancy (§VII-A): with >100 registers per thread,
 * CalculateFluxes sustains only a handful of active warps per SM.
 */
#pragma once

#include "perfmodel/platform.hpp"

namespace vibe {

/** Inputs of one kernel's occupancy computation. */
struct OccupancyQuery
{
    int regsPerThread = 32;
    int threadsPerBlock = 128;
    int sharedBytesPerBlock = 0; ///< Modeled but usually 0 for VIBE.
};

/** Result of the occupancy computation. */
struct OccupancyResult
{
    int blocksPerSm = 0;
    int activeWarpsPerSm = 0;
    double occupancy = 0; ///< activeWarps / maxWarps.
};

/**
 * Compute achievable occupancy on `gpu` for a kernel with the given
 * per-thread register count and block size, applying the register
 * allocation granularity and the blocks/warps-per-SM caps.
 */
OccupancyResult computeOccupancy(const OccupancyQuery& query,
                                 const GpuSpec& gpu);

} // namespace vibe
