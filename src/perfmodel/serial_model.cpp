#include "perfmodel/serial_model.hpp"

#include <algorithm>
#include <cmath>

namespace vibe {

bool
SerialModel::isReplicated(const std::string& category)
{
    return category == "tree_update_flags" ||
           category == "tree_update_changes" ||
           category == "block_list_rebuild" ||
           category == "lb_partition";
}

double
SerialModel::evaluate(const std::string& category, double items,
                      const PlatformConfig& config) const
{
    if (items <= 0)
        return 0.0;
    const SerialCosts& c = cal_.serial;
    const double raw_ranks = std::max(1, config.ranks);
    // Distributed work divides by *effective* ranks: load imbalance and
    // shared-resource contention saturate the division (Fig. 7 serial
    // plateau past ~64 cores).
    const bool gpu = config.target == Target::Gpu;
    const double saturation =
        gpu ? c.gpuRankSaturation : c.rankSaturation;
    const double ranks = raw_ranks / (1.0 + raw_ranks / saturation);

    // Fraction of remote traffic that crosses nodes (Section V): with a
    // Z-order partition, roughly one rank boundary in `ranks` becomes a
    // node boundary per extra node.
    const double inter_node_frac =
        config.nodes > 1
            ? std::min(0.5, static_cast<double>(config.nodes - 1) /
                                std::max(2.0, raw_ranks / 4.0))
            : 0.0;

    if (category == "tree_update_flags")
        return items * c.treeUpdateFlags;
    if (category == "tree_update_changes")
        return items * c.treeUpdateChanges;
    if (category == "block_list_rebuild")
        return items * c.blockListRebuild;
    if (category == "lb_partition")
        return items * c.lbPartition;

    if (category == "neighbor_search")
        return items * c.neighborSearch / ranks;
    if (category == "buffer_cache_keys") {
        const double log_n = std::log2(std::max(2.0, items));
        return items * log_n * c.bufferCacheKeys / ranks;
    }
    if (category == "buffer_cache_metadata") {
        const double per_item =
            c.bufferCacheMetadata + (gpu ? c.gpuMetadataH2d : 0.0);
        return items * per_item / ranks;
    }
    if (category == "recv_buf_prepare")
        return items * c.recvBufPrepare / ranks;
    if (category == "bound_buf_metadata")
        return items * c.boundBufMetadata / ranks;
    if (category == "recv_poll")
        return items * c.recvPoll / ranks;
    if (category == "string_lookup")
        return items * c.stringLookup / ranks;
    if (category == "refine_check")
        return items * c.refineCheck / ranks;
    if (category == "dt_reduce")
        return items * c.dtReduce / ranks;

    if (category == "msg_local")
        return items * c.msgLocalLatency / ranks;
    if (category == "msg_remote") {
        const double latency =
            c.msgRemoteLatency + inter_node_frac * c.interNodeExtraLatency;
        return items * latency / ranks;
    }
    if (category == "msg_local_bytes")
        return items / (c.localCopyGBs * 1e9) / ranks;
    if (category == "msg_remote_bytes") {
        const double per_byte =
            (1.0 - inter_node_frac) / (c.remoteIntraNodeGBs * 1e9) +
            inter_node_frac / (c.remoteInterNodeGBs * 1e9);
        return items * per_byte / ranks;
    }

    if (category == "collective") {
        const double base = gpu ? c.collectiveBaseGpu : c.collectiveBaseCpu;
        const double per_rank =
            gpu ? c.collectivePerRankGpu : c.collectivePerRankCpu;
        const double node_penalty = 1.0 + 0.5 * (config.nodes - 1);
        return items * (base + per_rank * raw_ranks) * node_penalty;
    }

    // Unknown categories get a conservative generic distributed cost.
    return items * 1.0e-6 / ranks;
}

} // namespace vibe
