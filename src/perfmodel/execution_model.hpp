/**
 * @file execution_model.hpp
 * Assembles the per-kernel, serial, communication and memory models
 * into end-to-end timing reports for a platform configuration.
 *
 * The input is a RunArtifacts bundle captured from one instrumented
 * simulation (run with the same rank count being modeled, so the rank
 * attribution, remote/local message split and load balancing are
 * real). The output is the phase/kernel/serial decomposition every
 * figure of the paper is drawn from.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/kernel_profiler.hpp"
#include "perfmodel/calibration.hpp"
#include "perfmodel/kernel_model.hpp"
#include "perfmodel/memory_model.hpp"
#include "perfmodel/platform.hpp"
#include "perfmodel/serial_model.hpp"

namespace vibe {

/** Everything the model needs from one instrumented run. */
struct RunArtifacts
{
    const KernelProfiler* profiler = nullptr;
    std::int64_t ncycles = 0;        ///< Evolution cycles executed.
    std::int64_t zoneCycles = 0;     ///< FOM numerator (§III-A).
    std::int64_t commCells = 0;      ///< Ghost cells on the wire.
    std::size_t kokkosBytes = 0;     ///< Tracker bytes (mesh data).
    double remoteWireBytes = 0;      ///< Remote bytes per exchange.
    double remoteMsgsPerCycle = 0;   ///< Remote messages per cycle.
    std::size_t finalBlocks = 0;     ///< Block count at end of run.
};

/** Kernel vs serial split for one timestep phase (Fig. 12 bars). */
struct PhaseBreakdown
{
    double kernel = 0;
    double serial = 0;

    double total() const { return kernel + serial; }
};

/** Full model output for one (workload, platform) pair. */
struct TimingReport
{
    /** Per-phase decomposition (the Fig. 11 categories). */
    std::map<std::string, PhaseBreakdown> phases;
    double kernelTime = 0; ///< Total Kokkos-kernel seconds.
    double serialTime = 0; ///< Total serial-portion seconds.
    double totalTime = 0;

    /** Per-kernel microarchitecture rows (Table III). */
    std::map<std::string, KernelTiming> kernels;

    MemoryReport memory;

    /** zone-cycles per second over the evaluated run. */
    double fom = 0;
    /** End-to-end SM utilization (Fig. 1c): kernel-busy-weighted. */
    double e2eSmUtil = 0;

    /** Time of one phase (0 if absent). */
    double phaseTotal(const std::string& phase) const;
};

/** The composite model. */
class ExecutionModel
{
  public:
    explicit ExecutionModel(const Calibration& calibration = {},
                            const GpuSpec& gpu = {},
                            const CpuSpec& cpu = {});

    const KernelModel& kernelModel() const { return kernel_model_; }
    const GpuSpec& gpu() const { return gpu_; }
    const CpuSpec& cpu() const { return cpu_; }

    /** Evaluate one run under one platform configuration. */
    TimingReport evaluate(const RunArtifacts& artifacts,
                          const PlatformConfig& config) const;

  private:
    Calibration calibration_;
    GpuSpec gpu_;
    CpuSpec cpu_;
    KernelModel kernel_model_;
    SerialModel serial_model_;
    MemoryModel memory_model_;
};

} // namespace vibe
