#include "perfmodel/kernel_model.hpp"

#include <algorithm>
#include <cmath>

namespace vibe {

KernelModel::KernelModel(const Calibration& calibration)
    : calibration_(calibration)
{
    // Descriptors fitted to Table III (B32 column), §VII-A narrative:
    // - CalculateFluxes: >100 regs/thread -> ~25% occupancy; 128-thread
    //   blocks with one effective warp; divergence at narrow rows.
    // - FirstDerivative / MassHistory / EstTimeMesh: Kokkos
    //   parallel_reduce kernels — tiny effective throughput, low BW.
    // - Pack/unpack (SendBoundBufs/SetBounds): copy kernels, AI ~ 0.
    table_["CalculateFluxes"] =
        {104, 128, 0.030, 0.20, true, 0.95, 1.5};
    table_["FirstDerivative"] =
        {64, 128, 0.0015, 0.02, false, 0.025, 0.0};
    table_["MassHistory"] =
        {104, 128, 0.0012, 0.02, true, 0.056, 0.5};
    table_["WeightedSumData"] =
        {32, 128, 0.20, 0.52, false, 0.69, 0.35};
    table_["SendBoundBufs"] =
        {32, 128, 0.05, 0.30, false, 0.055, 0.0};
    table_["SetBounds"] =
        {64, 128, 0.05, 0.23, false, 0.124, 0.0};
    table_["FluxDivergence"] =
        {32, 128, 0.15, 0.53, false, 0.485, 0.25};
    table_["EstTimeMesh"] =
        {104, 128, 0.0018, 0.03, true, 0.037, 0.4};
    table_["ProlongRestrictLoop"] =
        {64, 128, 0.08, 0.58, false, 0.248, 0.0};
    table_["CalculateDerived"] =
        {80, 128, 0.15, 0.55, false, 0.392, 0.0};
    generic_ = {48, 128, 0.08, 0.40, false, 0.30, 0.0};
}

const KernelDescriptor&
KernelModel::descriptor(const std::string& name) const
{
    auto it = table_.find(name);
    return it == table_.end() ? generic_ : it->second;
}

KernelTiming
KernelModel::evaluateGpu(const std::string& name,
                         const KernelStats& stats,
                         const GpuSpec& gpu) const
{
    const KernelDescriptor& desc = descriptor(name);
    const GpuKernelTuning& tune = calibration_.gpu;
    KernelTiming timing;
    if (stats.launches == 0)
        return timing;

    const OccupancyResult occ = computeOccupancy(
        {desc.regsPerThread, desc.threadsPerBlock, 0}, gpu);
    timing.occupancy = occ.occupancy;

    // Warp utilization: divergence-prone kernels assign one row of the
    // innermost dimension per warp; rows narrower than 32 idle lanes
    // (§VII-A). The sub-linear exponent reflects the partial overlap
    // Nsight measures (B32: ~94%, B16: ~68% for CalculateFluxes).
    const double inner = std::max(1.0, stats.avgInnermost());
    if (desc.divergenceProne) {
        timing.warpUtil =
            0.95 * std::pow(std::min(inner, 32.0) / 32.0, 0.6);
    } else {
        timing.warpUtil = 0.95;
    }

    // Compute bound: effective FP64 rate scaled by the kernel's issue
    // efficiency and divergence losses.
    const double peak_flops = gpu.fp64Tflops * 1e12;
    const double compute_rate =
        peak_flops *
        std::min(desc.computeScale * timing.warpUtil / 0.95,
                 tune.computeEfficiencyCap);
    const double t_comp =
        stats.flops > 0 ? stats.flops / compute_rate : 0.0;

    // Memory bound: bandwidth saturates only with enough occupancy.
    const double sat =
        std::min(1.0, timing.occupancy / tune.bwSaturationOccupancy);
    const double mem_rate =
        gpu.hbmBandwidthGBs * 1e9 * desc.memEfficiency * sat;
    const double t_mem = stats.bytes > 0 ? stats.bytes / mem_rate : 0.0;

    timing.memoryBound = t_mem > t_comp;
    const double t_work =
        std::max({t_comp, t_mem, tune.minKernelTime});
    timing.duration =
        t_work + static_cast<double>(stats.launches) * tune.launchOverhead;

    timing.bwUtil = timing.duration > 0
                        ? stats.bytes /
                              (timing.duration * gpu.hbmBandwidthGBs * 1e9)
                        : 0.0;
    timing.arithIntensity =
        stats.bytes > 0 ? stats.flops / stats.bytes : 0.0;

    // Nsight-style SM pipe utilization: fitted base scaled by row
    // narrowness (see kernel_model.hpp).
    timing.smUtil =
        desc.smUtilBase *
        std::pow(std::min(inner, 32.0) / 32.0, desc.smUtilInnerExponent);
    timing.smUtil = std::clamp(timing.smUtil, 0.0, 1.0);
    return timing;
}

double
KernelModel::evaluateCpu(const KernelStats& stats, const CpuSpec& cpu,
                         int ranks) const
{
    const CpuKernelTuning& tune = calibration_.cpu;
    if (stats.launches == 0 || ranks < 1)
        return 0.0;

    const double inner = std::max(1.0, stats.avgInnermost());
    const double vec_eff =
        tune.vectorEfficiency *
        std::pow(std::min(inner, tune.vectorSaturationWidth) /
                     tune.vectorSaturationWidth,
                 0.3);
    const double flop_rate =
        cpu.peakGflopsPerCore() * 1e9 * vec_eff * ranks;
    const double mem_rate =
        std::min(cpu.memBandwidthGBs,
                 cpu.perCoreBandwidthGBs * tune.perCoreBandwidthShare *
                     ranks) *
        1e9;
    const double t_comp =
        stats.flops > 0 ? stats.flops / flop_rate : 0.0;
    const double t_mem = stats.bytes > 0 ? stats.bytes / mem_rate : 0.0;
    const double t_dispatch = static_cast<double>(stats.launches) *
                              tune.loopOverhead / ranks;
    return std::max(t_comp, t_mem) + t_dispatch;
}

} // namespace vibe
