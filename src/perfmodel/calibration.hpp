/**
 * @file calibration.hpp
 * Calibration constants tying the mechanistic performance model to the
 * paper's measured numbers.
 *
 * The model is mechanistic where mechanism is knowable from public
 * hardware specs (roofline bounds, occupancy arithmetic, message
 * counting) and *calibrated* where the paper measured software
 * inefficiency that cannot be derived from first principles (Kokkos
 * reduction throughput, Open MPI per-probe cost, the IPC leak of
 * open-mpi/ompi#12849). Every constant below names the paper anchor it
 * was fitted against; EXPERIMENTS.md records the resulting
 * paper-vs-model comparison for each figure.
 */
#pragma once

namespace vibe {

/** Host-side serial cost table (seconds per recorded item). */
struct SerialCosts
{
    // Anchor: GPU-1R, mesh 128 / block 8 / 3 levels spends ~2659 s of
    // 2782 s in serial host code (Fig. 9), i.e. ~6.5 s/cycle over the
    // ~400-cycle paper run assumed in kPaperRunCycles.
    double treeUpdateFlags = 0.10e-6;   ///< Per leaf, per tree update.
    double treeUpdateChanges = 30e-6;   ///< Per refined/merged node.
    double blockListRebuild = 0.5e-6;   ///< Per block, per restructure.
    double neighborSearch = 0.8e-6;     ///< Per neighbor link.
    double bufferCacheKeys = 0.40e-6;   ///< Per key x log2(n): sort+shuffle.
    double bufferCacheMetadata = 3.2e-6; ///< Per channel (ViewOfViews fill).
    double recvBufPrepare = 0.6e-6;     ///< Per expected buffer.
    double boundBufMetadata = 1.6e-6;   ///< Per channel, per exchange.
    double recvPoll = 1.1e-6;           ///< Per MPI_Iprobe/Test pair.
    double stringLookup = 0.25e-6;      ///< Per variable string compare.
    double refineCheck = 5.0e-6;        ///< Per block (CheckAllRefinement).
    double dtReduce = 0.5e-6;           ///< Per block-local min fold.
    double lbPartition = 0.3e-6;        ///< Per block, per LB pass.

    // Messaging (§II-D). Anchor: ReceiveBoundBufs grows 3.6x from
    // B16 -> B8 on CPU (§IV-B) — message-count dominated.
    double msgLocalLatency = 1.3e-6;
    double msgRemoteLatency = 2.5e-6;
    double localCopyGBs = 25.0;        ///< Same-rank buffer memcpy.
    double remoteIntraNodeGBs = 18.0;  ///< Shared-memory / IPC transport.
    double remoteInterNodeGBs = 12.5;  ///< NIC bandwidth (Section V).
    double interNodeExtraLatency = 2.0e-6;

    // Collectives. Anchor: single-GPU FOM peaks near 12 ranks/GPU and
    // degrades beyond (Fig. 8); CPU serial time only creeps up at
    // 72-96 ranks (Fig. 7).
    double collectiveBaseCpu = 20e-6;
    double collectivePerRankCpu = 1.5e-6;
    double collectiveBaseGpu = 60e-6;
    double collectivePerRankGpu = 12e-6;

    /**
     * Rank-scaling saturation: distributed serial work divides by
     * effective ranks R/(1 + R/rankSaturation), capturing the load
     * imbalance and shared-resource contention that flatten the Fig. 7
     * serial curve past ~64 cores.
     */
    double rankSaturation = 64.0;
    /** GPU-host processes contend harder (driver serialization, MPS):
     *  saturation is much earlier, putting the Fig. 8 knee near
     *  12 ranks/GPU once collectives start growing. */
    double gpuRankSaturation = 9.0;

    /** Extra host->device copy per metadata item on GPU targets
     *  (RebuildBufferCache anchor: ~13.3% of GPU-1R runtime). */
    double gpuMetadataH2d = 8.0e-6;
};

/** GPU kernel-efficiency calibration (per kernel, see kernel_model). */
struct GpuKernelTuning
{
    /** Fraction of FP64 peak reachable by well-shaped kernels. */
    double computeEfficiencyCap = 0.85;
    /** Occupancy at which HBM bandwidth saturates (streaming). */
    double bwSaturationOccupancy = 0.25;
    /** Per-launch overhead (driver + Kokkos dispatch), amortized by
     *  Parthenon's MeshBlockPack batching (~8 blocks/launch of the
     *  raw 5-6 us CUDA launch cost). */
    double launchOverhead = 0.8e-6;
    /** Minimum kernel duration (tail/teardown). */
    double minKernelTime = 3.0e-6;
};

/** CPU kernel-efficiency calibration. */
struct CpuKernelTuning
{
    /** Achievable fraction of AVX-512 FP64 peak in WENO-like loops.
     *  Anchor: CPU 96R total ~325 s for mesh 128 / B8 / L3 (Fig. 11). */
    double vectorEfficiency = 0.022;
    /** Innermost extent at which vector efficiency saturates. */
    double vectorSaturationWidth = 16.0;
    /** Per-parallel-loop dispatch overhead (OpenMP-ish). */
    double loopOverhead = 1.5e-6;
    /** Per-core share of DRAM bandwidth actually achieved by the
     *  block-sparse access pattern (§VII-A sparsity, CPU side). */
    double perCoreBandwidthShare = 0.45;
};

/** Device/host memory model (Fig. 10, OOM walls). */
struct MemoryModelConstants
{
    // Anchor: 1 GPU x 12 ranks reaches 75.5 GB for mesh 128 / block 8 /
    // 3 levels (§IV-E); 16 ranks OOMs (Fig. 8).
    double gpuDriverBasePerRankGB = 0.45; ///< CUDA ctx + Open MPI SMSC.
    double cpuDriverBasePerRankGB = 0.35;
    /** open-mpi/ompi#12849: IPC cache leak per remote message. */
    double ipcLeakBytesPerRemoteMsg = 1400.0;
    /** Registered send+recv staging per remote wire byte. */
    double bufferRegistrationFactor = 2.0;
    /** Assumed paper production-run length for cumulative terms. */
    double paperRunCycles = 400.0;
};

/** One place to grab all tunables. */
struct Calibration
{
    SerialCosts serial;
    GpuKernelTuning gpu;
    CpuKernelTuning cpu;
    MemoryModelConstants memory;
};

} // namespace vibe
