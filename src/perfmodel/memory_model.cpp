#include "perfmodel/memory_model.hpp"

#include <cmath>

namespace vibe {

MemoryReport
MemoryModel::evaluate(const MemoryInputs& inputs,
                      const PlatformConfig& config) const
{
    const MemoryModelConstants& m = cal_.memory;
    MemoryReport report;
    constexpr double GB = 1024.0 * 1024.0 * 1024.0;

    if (config.target == Target::Gpu) {
        const int devices = std::max(1, config.gpus);
        const double ranks_per_device =
            static_cast<double>(config.ranks) / devices;
        report.kokkosGB =
            static_cast<double>(inputs.kokkosBytes) / devices / GB;
        const double staging = inputs.remoteWireBytes *
                               m.bufferRegistrationFactor / devices / GB;
        const double leak = inputs.remoteMsgsPerCycle *
                            m.ipcLeakBytesPerRemoteMsg *
                            m.paperRunCycles / devices / GB;
        report.mpiGB = ranks_per_device * m.gpuDriverBasePerRankGB +
                       staging + leak;
        report.capacityGB = gpu_.memCapacityGB;
    } else {
        // CPU: all ranks share node DRAM; report per node.
        const int nodes = std::max(1, config.nodes);
        const double ranks_per_node =
            static_cast<double>(config.ranks) / nodes;
        report.kokkosGB =
            static_cast<double>(inputs.kokkosBytes) / nodes / GB;
        const double staging = inputs.remoteWireBytes *
                               m.bufferRegistrationFactor / nodes / GB;
        const double leak = inputs.remoteMsgsPerCycle *
                            m.ipcLeakBytesPerRemoteMsg *
                            m.paperRunCycles / nodes / GB;
        report.mpiGB = ranks_per_node * m.cpuDriverBasePerRankGB +
                       staging + leak;
        report.capacityGB = cpu_.memCapacityGB;
    }

    report.totalGB = report.kokkosGB + report.mpiGB;
    report.oom = report.totalGB > report.capacityGB;
    return report;
}

double
MemoryModel::auxBytesUnoptimized(double mesh_blocks, int nx1, int ng,
                                 int num_scalar)
{
    // #MeshBlocks x B x 6 x (nx1 + 2 ng)^3 x (3 + num_scalar).
    const double extent = nx1 + 2.0 * ng;
    return mesh_blocks * 8.0 * 6.0 * extent * extent * extent *
           (3.0 + num_scalar);
}

double
MemoryModel::auxBytesOptimized(double thread_blocks, int nx1, int ng,
                               int num_scalar, int d)
{
    // #ThreadBlocks x B x 6 x (nx1 + 2 ng)^d x (3 + num_scalar).
    const double extent = nx1 + 2.0 * ng;
    return thread_blocks * 8.0 * 6.0 * std::pow(extent, d) *
           (3.0 + num_scalar);
}

} // namespace vibe
