#include "perfmodel/opcode_model.hpp"

#include <algorithm>

namespace vibe {

void
OpcodeMix::normalize()
{
    const double sum = ldst + vec + fp + intg + reg + ctrl + other;
    if (sum <= 0)
        return;
    ldst /= sum;
    vec /= sum;
    fp /= sum;
    intg /= sum;
    reg /= sum;
    ctrl /= sum;
    other /= sum;
}

OpcodeCounts
OpcodeModel::kernelCounts(double flops, double bytes, double items,
                          double avg_inner) const
{
    OpcodeCounts counts;
    if (items <= 0)
        return counts;
    const double inner = std::max(1.0, avg_inner);

    // AVX-512 FP64: 8 lanes per vector arithmetic instruction. A small
    // share of the arithmetic stays scalar (loop remainders, reductions).
    const double vec_arith = flops / 8.0;
    const double scalar_fp = flops * 0.02;
    // Memory ops move 64-byte lines (vector loads/stores) plus scalar
    // accesses for block/variable indirections.
    const double mem_ops = bytes / 64.0 + items * 0.15;
    // Every innermost row pays a scalar prologue/epilogue: index
    // arithmetic, pointer setup, loop branches. This is the mechanism
    // that erodes the vector share at small mesh blocks.
    const double rows = items / inner;
    const double row_int = rows * 14.0;
    const double row_ctrl = rows * 6.0 + items / inner * 2.0;
    const double row_reg = rows * 6.0 + vec_arith * 0.10;
    const double other = (vec_arith + mem_ops) * 0.02;

    counts.mix.vec = vec_arith;
    counts.mix.fp = scalar_fp;
    counts.mix.ldst = mem_ops;
    counts.mix.intg = row_int + items * 0.10;
    counts.mix.ctrl = row_ctrl;
    counts.mix.reg = row_reg;
    counts.mix.other = other;
    counts.instructions = vec_arith + scalar_fp + mem_ops + row_int +
                          items * 0.10 + row_ctrl + row_reg + other;
    counts.mix.normalize();
    return counts;
}

OpcodeCounts
OpcodeModel::serialCounts(double serial_items) const
{
    // Pointer-heavy bookkeeping: ~80 instructions per recorded item
    // with the LD/ST-dominant mix the paper measures (39-41%).
    OpcodeCounts counts;
    counts.instructions = serial_items * 80.0;
    counts.mix.ldst = 0.40;
    counts.mix.intg = 0.24;
    counts.mix.ctrl = 0.15;
    counts.mix.reg = 0.12;
    counts.mix.fp = 0.02;
    counts.mix.vec = 0.01;
    counts.mix.other = 0.06;
    return counts;
}

OpcodeCounts
OpcodeModel::combine(const OpcodeCounts& kernel,
                     const OpcodeCounts& serial)
{
    OpcodeCounts total;
    total.instructions = kernel.instructions + serial.instructions;
    if (total.instructions <= 0)
        return total;
    const double wk = kernel.instructions / total.instructions;
    const double ws = serial.instructions / total.instructions;
    total.mix.ldst = wk * kernel.mix.ldst + ws * serial.mix.ldst;
    total.mix.vec = wk * kernel.mix.vec + ws * serial.mix.vec;
    total.mix.fp = wk * kernel.mix.fp + ws * serial.mix.fp;
    total.mix.intg = wk * kernel.mix.intg + ws * serial.mix.intg;
    total.mix.reg = wk * kernel.mix.reg + ws * serial.mix.reg;
    total.mix.ctrl = wk * kernel.mix.ctrl + ws * serial.mix.ctrl;
    total.mix.other = wk * kernel.mix.other + ws * serial.mix.other;
    return total;
}

OpcodeCounts
OpcodeModel::kernelCountsFromProfiler(const KernelProfiler& profiler) const
{
    double flops = 0, bytes = 0, items = 0, inner_sum = 0;
    double launches = 0;
    for (const auto& [key, stats] : profiler.kernels()) {
        flops += stats.flops;
        bytes += stats.bytes;
        items += stats.items;
        inner_sum += stats.innermostSum;
        launches += static_cast<double>(stats.launches);
    }
    const double avg_inner = launches > 0 ? inner_sum / launches : 1.0;
    return kernelCounts(flops, bytes, items, avg_inner);
}

OpcodeCounts
OpcodeModel::serialCountsFromProfiler(const KernelProfiler& profiler) const
{
    double items = 0;
    for (const auto& [key, stats] : profiler.serial()) {
        // Byte-valued pseudo-categories are not instruction items.
        if (key.second == "msg_local_bytes" ||
            key.second == "msg_remote_bytes")
            continue;
        items += stats.items;
    }
    return serialCounts(items);
}

} // namespace vibe
