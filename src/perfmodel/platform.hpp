/**
 * @file platform.hpp
 * Hardware descriptions of the paper's platforms (Tables I and II) and
 * the execution configurations studied (ranks, GPUs, nodes).
 *
 * These are the *inputs* to the performance model; the calibration
 * constants that tie modeled seconds to the paper's measured seconds
 * live in calibration.hpp.
 */
#pragma once

#include <string>

#include "util/logging.hpp"

namespace vibe {

/** Table I: Intel Xeon Platinum 8468 (Sapphire Rapids) node. */
struct CpuSpec
{
    std::string name = "Intel Xeon Platinum 8468 (Sapphire Rapids)";
    int cores = 96;
    double clockGhz = 3.1;
    /** AVX-512 FP64: 2 FMA ports x 8 lanes x 2 flops per cycle. */
    double flopsPerCorePerCycle = 32.0;
    double memBandwidthGBs = 614.4;
    double memCapacityGB = 1024.0;
    /** Per-core sustainable share of DRAM bandwidth. */
    double perCoreBandwidthGBs = 22.0;

    double peakGflopsPerCore() const
    {
        return clockGhz * flopsPerCorePerCycle;
    }
};

/** Table II: NVIDIA H100 (SXM). */
struct GpuSpec
{
    std::string name = "NVIDIA H100";
    int sms = 132;
    double clockGhz = 1.98;
    double hbmBandwidthGBs = 3350.0;
    double memCapacityGB = 79.65; // 81559 MiB
    double fp64Tflops = 34.0;
    int maxWarpsPerSm = 64;
    int maxBlocksPerSm = 32;
    int regsPerSm = 65536;
    int regAllocGranularity = 256; ///< Register-file allocation unit.
    int warpSize = 32;

    /** Operational intensity knee of the FP64 roofline (paper: 10.1). */
    double rooflineKnee() const
    {
        return fp64Tflops * 1e12 / (hbmBandwidthGBs * 1e9);
    }
};

/** Which device executes the Kokkos kernels. */
enum class Target { Cpu, Gpu };

/** One execution configuration (a bar/series point in the figures). */
struct PlatformConfig
{
    Target target = Target::Gpu;
    int gpus = 1;        ///< Ignored for CPU runs.
    int ranks = 1;       ///< Total MPI ranks (CPU: one per core used).
    int nodes = 1;       ///< Section V multi-node studies.

    /** Ranks per GPU (GPU targets). */
    double ranksPerGpu() const
    {
        return gpus > 0 ? static_cast<double>(ranks) / gpus : 0.0;
    }

    /** Short label, e.g. "GPU 1R", "CPU 96R". */
    std::string label() const;

    static PlatformConfig cpu(int ranks, int nodes = 1);
    static PlatformConfig gpu(int gpus, int ranks, int nodes = 1);
};

} // namespace vibe
