/**
 * @file kernel_model.hpp
 * Per-kernel GPU/CPU timing and microarchitecture model (paper §VII).
 *
 * Each kernel the workload launches has a descriptor carrying its CUDA
 * launch shape and the efficiency characteristics the paper measured
 * with Nsight Compute (register pressure, effective-warp fraction from
 * PTX inspection, memory-access sparsity). Timing combines a roofline
 * bound with occupancy-limited bandwidth saturation, warp divergence at
 * small innermost extents, and per-launch overhead; Table III columns
 * are produced from the same computation.
 */
#pragma once

#include <map>
#include <string>

#include "exec/kernel_profiler.hpp"
#include "perfmodel/calibration.hpp"
#include "perfmodel/occupancy.hpp"
#include "perfmodel/platform.hpp"

namespace vibe {

/** Static characteristics of one GPU kernel (from §VII-A analysis). */
struct KernelDescriptor
{
    /** Registers per thread (drives occupancy; CalculateFluxes > 100). */
    int regsPerThread = 40;
    /** CUDA block size (VIBE over-provisions 128 threads). */
    int threadsPerBlock = 128;
    /**
     * Fraction of FP64 peak this kernel's instruction stream can
     * sustain at full warps: folds in the 78%-ineffective-warp
     * observation, issue mix and Kokkos reduction serialization.
     * Calibrated against Table III durations.
     */
    double computeScale = 0.05;
    /** Achieved fraction of peak HBM bandwidth once occupancy
     *  saturates (sparse block access, §VII-A). */
    double memEfficiency = 0.5;
    /** Warp lanes follow the innermost extent (control divergence). */
    bool divergenceProne = false;
    /** Baseline SM pipe utilization at 32-wide rows (fitted to the
     *  Nsight "SM %" column of Table III). */
    double smUtilBase = 0.5;
    /** Sensitivity of SM utilization to narrow innermost extents. */
    double smUtilInnerExponent = 0.0;
};

/** Computed microarchitecture row (one Table III line). */
struct KernelTiming
{
    double duration = 0;       ///< Seconds for the evaluated stats.
    double smUtil = 0;         ///< [0,1].
    double occupancy = 0;      ///< [0,1].
    double warpUtil = 0;       ///< [0,1].
    double bwUtil = 0;         ///< [0,1] of peak HBM.
    double arithIntensity = 0; ///< flops/byte.
    bool memoryBound = false;
};

/** Registry of descriptors plus the timing computations. */
class KernelModel
{
  public:
    explicit KernelModel(const Calibration& calibration);

    /** Descriptor for `name` (falls back to a generic kernel). */
    const KernelDescriptor& descriptor(const std::string& name) const;

    /** All registered descriptors. */
    const std::map<std::string, KernelDescriptor>& descriptors() const
    {
        return table_;
    }

    /**
     * GPU timing/microarchitecture for aggregated launch stats of one
     * kernel on one device.
     */
    KernelTiming evaluateGpu(const std::string& name,
                             const KernelStats& stats,
                             const GpuSpec& gpu) const;

    /** CPU execution time for aggregated stats across `ranks` cores. */
    double evaluateCpu(const KernelStats& stats, const CpuSpec& cpu,
                       int ranks) const;

  private:
    Calibration calibration_;
    std::map<std::string, KernelDescriptor> table_;
    KernelDescriptor generic_;
};

} // namespace vibe
