/**
 * @file serial_model.hpp
 * Host-side (non-Kokkos) cost model: the "serial portion" of the
 * paper's §II-C definition.
 *
 * Consumes the serial work items the instrumentation recorded
 * (tree updates, buffer-cache rebuilds, metadata fills, polling,
 * string lookups, messaging, collectives) and prices them for a given
 * platform configuration. Replicated work (every rank walks the global
 * tree) does not shrink with rank count — the irreducible overhead
 * behind the Fig. 7 serial plateau; distributed work divides across
 * ranks — the Amdahl relief behind the Fig. 8 rank-scaling gains;
 * collectives *grow* with rank count — the downturn beyond ~12
 * ranks/GPU.
 */
#pragma once

#include <string>

#include "perfmodel/calibration.hpp"
#include "perfmodel/platform.hpp"

namespace vibe {

/** Prices recorded serial categories for a platform configuration. */
class SerialModel
{
  public:
    explicit SerialModel(const Calibration& calibration)
        : cal_(calibration)
    {
    }

    /**
     * Wall seconds contributed by `items` recorded under `category`
     * when executed under `config`.
     */
    double evaluate(const std::string& category, double items,
                    const PlatformConfig& config) const;

    /** True if every rank repeats this work (global tree walks). */
    static bool isReplicated(const std::string& category);

  private:
    Calibration cal_;
};

} // namespace vibe
