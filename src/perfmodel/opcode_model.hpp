/**
 * @file opcode_model.hpp
 * MICA-style CPU instruction-mix model (paper §VII-B, Fig. 13).
 *
 * Kernel (data-parallel) instruction counts derive from the
 * instrumented flop/byte/row counts: AVX-512 packs 8 FP64 lanes per
 * vector op, memory ops move cache lines, and every innermost row pays
 * a scalar prologue (index arithmetic, bounds checks, branches) —
 * which is why smaller mesh blocks shift the mix away from vector ops
 * (63% at B32 -> 52% at B16 in the paper). Serial-portion mixes use
 * pointer-chasing constants (LD/ST-heavy, 39-41% in the paper).
 */
#pragma once

#include "exec/kernel_profiler.hpp"

namespace vibe {

/** Fractions summing to 1: the Fig. 13 categories. */
struct OpcodeMix
{
    double ldst = 0;
    double vec = 0;
    double fp = 0;
    double intg = 0;
    double reg = 0;
    double ctrl = 0;
    double other = 0;

    /** Normalize in place to sum to 1 (no-op on all-zero). */
    void normalize();
};

/** Instruction counts + mix for one portion of the execution. */
struct OpcodeCounts
{
    double instructions = 0;
    OpcodeMix mix;
};

/** Computes Fig. 13 columns from profiler aggregates. */
class OpcodeModel
{
  public:
    /**
     * Kernel-portion counts from data-parallel work aggregates.
     *
     * @param flops     Total FP operations.
     * @param bytes     Total ideal bytes moved.
     * @param items     Total loop iterations.
     * @param avg_inner Average innermost extent (vectorized width).
     */
    OpcodeCounts kernelCounts(double flops, double bytes, double items,
                              double avg_inner) const;

    /** Serial-portion counts from total recorded serial items. */
    OpcodeCounts serialCounts(double serial_items) const;

    /** Weighted total mix of the two portions. */
    static OpcodeCounts combine(const OpcodeCounts& kernel,
                                const OpcodeCounts& serial);

    /** Aggregate a profiler into (kernel, serial) counts. */
    OpcodeCounts kernelCountsFromProfiler(
        const KernelProfiler& profiler) const;
    OpcodeCounts serialCountsFromProfiler(
        const KernelProfiler& profiler) const;
};

} // namespace vibe
