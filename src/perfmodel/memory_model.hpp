/**
 * @file memory_model.hpp
 * Device/host memory-footprint model (paper §IV-E, Fig. 10).
 *
 * Two contributions, matching the paper's trace analysis:
 * (1) Kokkos/Parthenon mesh allocations — taken *exactly* from the
 *     MemoryTracker of the instrumented run (identical in numeric and
 *     counting modes), nearly constant in rank count;
 * (2) MPI communication buffers and Open MPI driver state — grows with
 *     rank count via per-rank driver baselines, registered staging for
 *     remote wire bytes, and the open-mpi/ompi#12849 IPC cache leak
 *     accumulated over a production-length run.
 * The model flags OOM when a device exceeds its capacity, producing
 * the OOM walls of Figs. 4, 5, 6 and 8.
 */
#pragma once

#include <cstddef>

#include "perfmodel/calibration.hpp"
#include "perfmodel/platform.hpp"

namespace vibe {

/** Workload memory facts captured from an instrumented run. */
struct MemoryInputs
{
    std::size_t kokkosBytes = 0;        ///< Tracker total (all ranks).
    double remoteWireBytes = 0;         ///< Remote bytes per exchange.
    double remoteMsgsPerCycle = 0;      ///< Remote messages per cycle.
};

/** Per-device footprint report (one Fig. 10 bar). */
struct MemoryReport
{
    double kokkosGB = 0;   ///< Mesh data (green segment).
    double mpiGB = 0;      ///< Buffers + driver (pink segment).
    double totalGB = 0;    ///< Per device (GPU) or node (CPU).
    double capacityGB = 0;
    bool oom = false;
};

/** Evaluates MemoryInputs for a platform configuration. */
class MemoryModel
{
  public:
    MemoryModel(const Calibration& calibration, const GpuSpec& gpu,
                const CpuSpec& cpu)
        : cal_(calibration), gpu_(gpu), cpu_(cpu)
    {
    }

    MemoryReport evaluate(const MemoryInputs& inputs,
                          const PlatformConfig& config) const;

    /**
     * §VIII-B closed forms: auxiliary-variable bytes before and after
     * the kernel-restructuring optimization.
     *
     * @param mesh_blocks   #MeshBlocks.
     * @param nx1           MeshBlock size per dimension.
     * @param ng            Ghost cells (4 for WENO5).
     * @param num_scalar    Passive scalar count.
     * @param thread_blocks #ThreadBlocks post-optimization (1024).
     * @param d             Reduced loop dimensionality (2 for 2-D).
     */
    static double auxBytesUnoptimized(double mesh_blocks, int nx1, int ng,
                                      int num_scalar);
    static double auxBytesOptimized(double thread_blocks, int nx1, int ng,
                                    int num_scalar, int d);

  private:
    Calibration cal_;
    GpuSpec gpu_;
    CpuSpec cpu_;
};

} // namespace vibe
