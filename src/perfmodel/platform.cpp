#include "perfmodel/platform.hpp"

#include <sstream>

namespace vibe {

std::string
PlatformConfig::label() const
{
    std::ostringstream oss;
    if (target == Target::Cpu) {
        oss << "CPU " << ranks << "R";
    } else {
        oss << gpus << (gpus == 1 ? " GPU " : " GPUs ") << ranks << "R";
    }
    if (nodes > 1)
        oss << " x" << nodes << "N";
    return oss.str();
}

PlatformConfig
PlatformConfig::cpu(int ranks, int nodes)
{
    require(ranks >= 1, "CPU config needs at least one rank");
    PlatformConfig config;
    config.target = Target::Cpu;
    config.gpus = 0;
    config.ranks = ranks;
    config.nodes = nodes;
    return config;
}

PlatformConfig
PlatformConfig::gpu(int gpus, int ranks, int nodes)
{
    require(gpus >= 1 && ranks >= gpus,
            "GPU config needs >= 1 GPU and >= 1 rank per GPU");
    PlatformConfig config;
    config.target = Target::Gpu;
    config.gpus = gpus;
    config.ranks = ranks;
    config.nodes = nodes;
    return config;
}

} // namespace vibe
