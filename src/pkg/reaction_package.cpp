#include "pkg/reaction_package.hpp"

#include <cmath>

#include "exec/par_for.hpp"
#include "mesh/block_pack.hpp"
#include "pkg/fv_ops.hpp"
#include "util/logging.hpp"

namespace vibe {

namespace {

/**
 * Feature width and quiescent floor. The profile is a quartic
 * super-Gaussian, exp(-r^4 / (2 sigma^4)): near-flat at the peak
 * abundance out to ~sigma, then a fast falloff. A plain Gaussian puts
 * only a handful of cells near the peak where the equilibrium solve
 * is expensive, so the volume-integrated stiff work rounds to noise;
 * the plateau holds hundreds of cells at peak cost, making the stiff
 * source a first-order share of step time — the balance signal this
 * package exists to create.
 */
constexpr double kBlobSigma = 0.22;
constexpr double kBlobFloor = 1e-3;
/**
 * Feature center, deliberately OFF the domain center: a centered blob
 * is shared symmetrically by the Z-order halves/quarters, so uniform
 * partitions would be accidentally balanced. At (0.3)^3 the hotspot
 * sits inside one octant and loads one rank — the imbalance this
 * package exists to create.
 */
constexpr double kBlobCenter = 0.3;

/** x wrapped into [0, 1) (periodic unit domain). */
inline double
wrap01(double x)
{
    x = std::fmod(x, 1.0);
    return x < 0.0 ? x + 1.0 : x;
}

/** Periodic distance from `x` in [0, 1) to the feature center. */
inline double
centerDist(double x)
{
    const double d = std::fabs(x - kBlobCenter);
    return std::min(d, 1.0 - d);
}

/** Exact upwind flux for one (k, j) row of faces [fis, fie]. */
inline void
upwindRow(const RealArray4& rl, const RealArray4& rr, RealArray4& flux,
          double vel, int ncomp, int k, int j, int fis, int fie)
{
    for (int i = fis; i <= fie; ++i)
        for (int n = 0; n < ncomp; ++n)
            flux(n, k, j, i) = vel >= 0.0 ? vel * rl(n, k, j, i)
                                          : vel * rr(n, k, j, i);
}

/** Flops of one upwind flux per component. */
constexpr double kUpwindFlopsPerComp = 2.0;

/**
 * Solve c = a / (1 + stiffness * g(c) * exp(c - 1)), g(c) = c^2 /
 * (1 + c^2), by fixed-point iteration from c = a. At the default
 * stiffness the map contracts over the profile's range, with a
 * contraction factor that grows with a: feature cells (a ~ 1) burn
 * on the order of a hundred iterations (each with an exp, as in a
 * real rate evaluation) while floor cells converge in one or two —
 * the per-cell work contrast this package exists to produce.
 * `max_iters` bounds cells pushed outside the contractive range.
 */
inline double
equilibriumValue(const ReactionConfig& config, double a, int* iters_out)
{
    double c = a;
    int iters = 0;
    for (; iters < config.maxIters; ++iters) {
        const double c2 = c * c;
        const double rate_term =
            config.stiffness * (c2 / (1.0 + c2)) * std::exp(c - 1.0);
        const double next = a / (1.0 + rate_term);
        const double delta = std::fabs(next - c);
        c = next;
        if (delta <= config.stiffTol * (1.0 + std::fabs(c)))
            break;
    }
    if (iters_out)
        *iters_out = iters + 1;
    return c;
}

/**
 * Stiff source for one (k, j) row of interior cells: T = rate *
 * (a - c_eq(a)) moves reservoir into product; antisymmetric, so each
 * cell conserves a + b exactly. Pure function of local state — no
 * cross-cell accumulation — so any loop chunking is bitwise identical.
 * Shared by the per-block and pack launch bodies.
 */
inline void
sourceRow(const ReactionConfig& config, const RealArray4& cons,
          RealArray4& dudt, int k, int j, int is, int ie)
{
    for (int i = is; i <= ie; ++i) {
        const double a = cons(0, k, j, i);
        const double transfer =
            config.rate * (a - equilibriumValue(config, a, nullptr));
        dudt(0, k, j, i) -= transfer;
        dudt(1, k, j, i) += transfer;
    }
}

/**
 * Nominal per-cell source cost for counting mode: the real iteration
 * count is state-dependent (that is the point), so the model charges
 * a representative mid-range count.
 */
constexpr KernelCosts kSourceCosts{120.0, 4.0 * sizeof(double)};

} // namespace

ReactionConfig
ReactionConfig::fromParams(const ParameterInput& pin)
{
    ReactionConfig config;
    config.vx = pin.getReal("reaction", "vx", 1.0);
    config.vy = pin.getReal("reaction", "vy", 0.5);
    config.vz = pin.getReal("reaction", "vz", 0.25);
    config.cfl = pin.getReal("reaction", "cfl", 0.4);
    config.recon =
        reconMethodFromName(pin.getString("reaction", "recon", "plm"));
    config.refineTol = pin.getReal("reaction", "refine_tol", 0.08);
    config.derefineTol = pin.getReal("reaction", "derefine_tol", 0.02);
    config.rate = pin.getReal("reaction", "rate", 1.0);
    config.stiffness = pin.getReal("reaction", "stiffness", 3.0);
    config.stiffTol = pin.getReal("reaction", "stiff_tol", 1e-12);
    config.maxIters = pin.getInt("reaction", "max_iters", 200);
    return config;
}

double
ReactionConfig::maxSpeed(int ndim) const
{
    double speed = std::fabs(vx);
    if (ndim >= 2)
        speed = std::max(speed, std::fabs(vy));
    if (ndim >= 3)
        speed = std::max(speed, std::fabs(vz));
    return speed;
}

const std::string&
ReactionPackage::name() const
{
    static const std::string package_name = "reaction";
    return package_name;
}

VariableRegistry
makeReactionRegistry()
{
    VariableRegistry registry;
    registry.add({"chem", 2, kIndependent | kFillGhost | kWithFluxes});
    registry.add({"chem_rate", 1, kDerived});
    return registry;
}

double
ReactionPackage::equilibrium(double a, int* iters_out) const
{
    return equilibriumValue(config_, a, iters_out);
}

void
ReactionPackage::initializeBlock(const ExecContext& ctx,
                                 MeshBlock& block) const
{
    if (!block.hasData())
        return;
    const BlockShape& s = block.shape();
    const BlockGeometry& g = block.geom();
    RealArray4& cons = block.cons();

    // Reservoir a: super-Gaussian plateau over a quiescent floor (see
    // kBlobSigma). Product b starts at the floor everywhere. Interior
    // AND ghosts are filled so the first exchange starts consistent
    // (package convention).
    parForExec(ctx, 0, s.nk() - 1, 0, s.nj() - 1, 0, s.ni() - 1,
               [&](int k, int j, int i) {
                   const double x = g.x1c(i - s.is());
                   const double y =
                       s.ndim >= 2 ? g.x2c(j - s.js()) : 0.5;
                   const double z =
                       s.ndim >= 3 ? g.x3c(k - s.ks()) : 0.5;
                   const double dx = centerDist(wrap01(x));
                   const double dy = centerDist(wrap01(y));
                   const double dz = centerDist(wrap01(z));
                   const double r2 = dx * dx + dy * dy + dz * dz;
                   const double s2 = kBlobSigma * kBlobSigma;
                   cons(0, k, j, i) =
                       std::exp(-(r2 * r2) / (2 * s2 * s2)) +
                       kBlobFloor;
                   cons(1, k, j, i) = kBlobFloor;
               });
}

void
ReactionPackage::calculateFluxesBlock(Mesh& mesh, MeshBlock& block) const
{
    const ExecContext& ctx = mesh.ctx();
    const BlockShape s = mesh.config().blockShape();
    const int ncomp = mesh.registry().ncompConserved();
    const int ndim = s.ndim;
    const double recon_flops =
        config_.recon == ReconMethod::Weno5 ? kWeno5Flops : kPlmFlops;
    const KernelCosts costs{
        ndim * ncomp * (2 * recon_flops + kUpwindFlopsPerComp),
        ndim * ncomp * 4.0 * sizeof(double)};

    recordKernelAt(ctx, "CalculateFluxes", block.rank(),
                   "CalculateFluxes",
                   static_cast<double>(s.interiorCells()), costs,
                   static_cast<double>(s.nx1));
    if (!ctx.executing())
        return;

    const double vel[3] = {config_.vx, config_.vy, config_.vz};
    RealArray4& cons = block.cons();
    for (int d = 0; d < ndim; ++d) {
        RealArray4* rl = block.reconL(d);
        RealArray4* rr = block.reconR(d);
        require(rl && rr, "reconstruction scratch missing");
        RealArray4& flux = block.flux(d);
        const int di = d == 0 ? 1 : 0;
        const int dj = d == 1 ? 1 : 0;
        const int dk = d == 2 ? 1 : 0;
        const int fis = s.is(), fie = s.ie() + di;
        const int fjs = s.js(), fje = s.je() + dj;
        const int fks = s.ks(), fke = s.ke() + dk;

        parForPackExec(ctx, 1, 0, ncomp - 1, fks, fke, fjs, fje,
                       [&](int, int, int n, int k, int j) {
                           reconRow(cons, *rl, *rr, config_.recon, n, k,
                                    j, fis, fie, di, dj, dk);
                       });

        parForExecRows(ctx, fks, fke, fjs, fje,
                       [&](int, int k, int j) {
                           upwindRow(*rl, *rr, flux, vel[d], ncomp, k,
                                     j, fis, fie);
                       });
    }
}

void
ReactionPackage::calculateFluxesPack(Mesh& mesh, MeshBlockPack& pack) const
{
    // Shared recon scratch (§VIII-B) is lent to every block at once; a
    // cross-block fused launch would race on it, so fall back to the
    // serial per-block sweep.
    if (mesh.config().optimizeAuxMemory) {
        for (int b = 0; b < pack.numBlocks(); ++b)
            calculateFluxesBlock(mesh, pack.meshBlock(b));
        return;
    }

    const ExecContext& ctx = mesh.ctx();
    const BlockShape s = mesh.config().blockShape();
    const int ncomp = mesh.registry().ncompConserved();
    const int ndim = s.ndim;
    const int nb = pack.numBlocks();
    const double recon_flops =
        config_.recon == ReconMethod::Weno5 ? kWeno5Flops : kPlmFlops;
    const KernelCosts costs{
        ndim * ncomp * (2 * recon_flops + kUpwindFlopsPerComp),
        ndim * ncomp * 4.0 * sizeof(double)};

    recordPackKernel(ctx, "CalculateFluxes", "CalculateFluxes", costs,
                     pack.ranks(), nb,
                     static_cast<double>(s.interiorCells()),
                     static_cast<double>(s.nx1));
    if (!ctx.executing())
        return;

    const double vel[3] = {config_.vx, config_.vy, config_.vz};
    for (int d = 0; d < ndim; ++d) {
        const int di = d == 0 ? 1 : 0;
        const int dj = d == 1 ? 1 : 0;
        const int dk = d == 2 ? 1 : 0;
        const int fis = s.is(), fie = s.ie() + di;
        const int fjs = s.js(), fje = s.je() + dj;
        const int fks = s.ks(), fke = s.ke() + dk;

        parForPackExec(
            ctx, nb, 0, ncomp - 1, fks, fke, fjs, fje,
            [&](int, int b, int n, int k, int j) {
                BlockPackView& v = pack.view(b);
                reconRow(*v.cons, *v.reconL[d], *v.reconR[d],
                         config_.recon, n, k, j, fis, fie, di, dj, dk);
            });

        parForPackExec(ctx, nb, 0, 0, fks, fke, fjs, fje,
                       [&](int, int b, int, int k, int j) {
                           BlockPackView& v = pack.view(b);
                           upwindRow(*v.reconL[d], *v.reconR[d],
                                     *v.flux[d], vel[d], ncomp, k, j,
                                     fis, fie);
                       });
    }
}

void
ReactionPackage::fluxDivergenceBlock(Mesh& mesh, MeshBlock& block) const
{
    fvFluxDivergenceBlock(mesh, block);

    const ExecContext& ctx = mesh.ctx();
    const BlockShape s = mesh.config().blockShape();
    recordKernelAt(ctx, "FluxDivergence", block.rank(),
                   "ReactionSource",
                   static_cast<double>(s.interiorCells()), kSourceCosts,
                   static_cast<double>(s.nx1));
    if (!ctx.executing())
        return;

    const RealArray4& cons = block.cons();
    RealArray4& dudt = block.dudt();
    parForExecRows(ctx, s.ks(), s.ke(), s.js(), s.je(),
                   [&](int, int k, int j) {
                       sourceRow(config_, cons, dudt, k, j, s.is(),
                                 s.ie());
                   });
}

void
ReactionPackage::fluxDivergencePack(Mesh& mesh, MeshBlockPack& pack) const
{
    fvFluxDivergencePack(mesh, pack);

    const ExecContext& ctx = mesh.ctx();
    const BlockShape s = mesh.config().blockShape();
    const int nb = pack.numBlocks();
    recordPackKernel(ctx, "FluxDivergence", "ReactionSource",
                     kSourceCosts, pack.ranks(), nb,
                     static_cast<double>(s.interiorCells()),
                     static_cast<double>(s.nx1));
    if (!ctx.executing())
        return;

    parForPackExec(ctx, nb, 0, 0, s.ks(), s.ke(), s.js(), s.je(),
                   [&](int, int b, int, int k, int j) {
                       BlockPackView& v = pack.view(b);
                       sourceRow(config_, *v.cons, *v.dudt, k, j,
                                 s.is(), s.ie());
                   });
}

void
ReactionPackage::fillDerived(Mesh& mesh) const
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "FillDerived");
    const BlockShape s = mesh.config().blockShape();
    // chem_rate = a * b: 2 reads, 1 write, 1 flop per cell.
    const KernelCosts costs{1.0, 3.0 * sizeof(double)};

    for (MeshBlock* block : mesh.ownedBlocks()) {
        ctx.setCurrentRank(block->rank());
        recordSerial(ctx, "string_lookup",
                     static_cast<double>(mesh.registry().all().size()));
        RealArray4& cons = block->cons();
        RealArray4& derived = block->derived();
        parFor(ctx, "CalculateDerived", costs, s.ks(), s.ke(), s.js(),
               s.je(), s.is(), s.ie(), [&](int k, int j, int i) {
                   derived(0, k, j, i) =
                       cons(0, k, j, i) * cons(1, k, j, i);
               });
    }
}

void
ReactionPackage::fillDerivedPack(Mesh& mesh, MeshBlockPack& pack) const
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "FillDerived");
    const BlockShape s = mesh.config().blockShape();
    const KernelCosts costs{1.0, 3.0 * sizeof(double)};
    const int nb = pack.numBlocks();

    const double lookups =
        static_cast<double>(mesh.registry().all().size());
    for (int b = 0; b < nb; ++b)
        recordSerialAt(ctx, "FillDerived", pack.ranks()[b],
                       "string_lookup", lookups);

    parForPack(ctx, "FillDerived", "CalculateDerived", costs,
               pack.ranks(), nb, 0, 0, s.ks(), s.ke(), s.js(), s.je(),
               s.is(), s.ie(), [&](int, int b, int, int k, int j) {
                   BlockPackView& v = pack.view(b);
                   const RealArray4& cons = *v.cons;
                   RealArray4& derived = *v.derived;
                   for (int i = s.is(); i <= s.ie(); ++i)
                       derived(0, k, j, i) =
                           cons(0, k, j, i) * cons(1, k, j, i);
               });
}

double
ReactionPackage::estimateTimestep(Mesh& mesh, RankWorld& world,
                                  double fallback_dt) const
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "EstimateTimestep");
    const BlockShape s = mesh.config().blockShape();
    const KernelCosts costs{10.0, 3.0 * sizeof(double)};

    double dt = fallback_dt / config_.cfl;
    for (MeshBlock* block : mesh.ownedBlocks()) {
        ctx.setCurrentRank(block->rank());
        double block_dt = dt;
        const BlockGeometry& g = block->geom();
        parReduce(ctx, "EstTimeMesh", costs, ReduceOp::Min, block_dt,
                  s.ks(), s.ke(), s.js(), s.je(), s.is(), s.ie(),
                  [&](int, int, int, double& acc) {
                      constexpr double tiny = 1e-12;
                      double cell_dt =
                          g.dx1 / (std::fabs(config_.vx) + tiny);
                      if (s.ndim >= 2)
                          cell_dt = std::min(
                              cell_dt,
                              g.dx2 / (std::fabs(config_.vy) + tiny));
                      if (s.ndim >= 3)
                          cell_dt = std::min(
                              cell_dt,
                              g.dx3 / (std::fabs(config_.vz) + tiny));
                      acc = std::min(acc, cell_dt);
                  });
        dt = std::min(dt, block_dt);
        recordSerial(ctx, "dt_reduce", 1.0);
    }
    dt = world.allReduceValue(mesh.collectiveRank(), dt, CollOp::Min,
                              sizeof(double));
    recordSerial(ctx, "collective", 1.0);
    // Explicit source stability: the relaxation removes at most
    // rate * a per unit time, so keep dt * rate <= 1/2. A constant cap
    // on every rank — no extra collective needed.
    return std::min(config_.cfl * dt,
                    0.5 / std::max(config_.rate, 1e-12));
}

double
ReactionPackage::estimateTimestepPack(Mesh& mesh, MeshBlockPack& pack,
                                      RankWorld& world,
                                      double fallback_dt) const
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "EstimateTimestep");
    const BlockShape s = mesh.config().blockShape();
    const KernelCosts costs{10.0, 3.0 * sizeof(double)};
    const int nb = pack.numBlocks();

    double dt = fallback_dt / config_.cfl;
    parReducePack(
        ctx, "EstimateTimestep", "EstTimeMesh", costs, ReduceOp::Min,
        dt, pack.ranks(), nb, s.ks(), s.ke(), s.js(), s.je(), s.is(),
        s.ie(), [&](int b, int, int, double& acc) {
            BlockPackView& v = pack.view(b);
            for (int i = s.is(); i <= s.ie(); ++i) {
                constexpr double tiny = 1e-12;
                double cell_dt =
                    v.dx1 / (std::fabs(config_.vx) + tiny);
                if (s.ndim >= 2)
                    cell_dt = std::min(
                        cell_dt,
                        v.dx2 / (std::fabs(config_.vy) + tiny));
                if (s.ndim >= 3)
                    cell_dt = std::min(
                        cell_dt,
                        v.dx3 / (std::fabs(config_.vz) + tiny));
                acc = std::min(acc, cell_dt);
            }
        });
    for (int b = 0; b < nb; ++b)
        recordSerialAt(ctx, "EstimateTimestep", pack.ranks()[b],
                       "dt_reduce", 1.0);
    dt = world.allReduceValue(mesh.collectiveRank(), dt, CollOp::Min,
                              sizeof(double));
    recordSerial(ctx, "collective", 1.0);
    return std::min(config_.cfl * dt,
                    0.5 / std::max(config_.rate, 1e-12));
}

double
ReactionPackage::massHistory(Mesh& mesh, RankWorld& world) const
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "other");
    const BlockShape s = mesh.config().blockShape();
    const KernelCosts costs{4.0, 2.0 * sizeof(double)};

    // Gid-ordered per-block fold: bitwise independent of the rank
    // decomposition (see foldBlockPartials).
    std::vector<BlockPartial> partials;
    partials.reserve(mesh.ownedBlocks().size());
    for (MeshBlock* block : mesh.ownedBlocks()) {
        ctx.setCurrentRank(block->rank());
        RealArray4& cons = block->cons();
        const double vol = block->geom().cellVolume();
        double block_mass = 0.0;
        parReduce(ctx, "MassHistory", costs, ReduceOp::Sum, block_mass,
                  s.ks(), s.ke(), s.js(), s.je(), s.is(), s.ie(),
                  [&](int k, int j, int i, double& acc) {
                      acc += (cons(0, k, j, i) + cons(1, k, j, i)) *
                             vol;
                  });
        partials.push_back({block->gid(), block_mass});
    }
    const double mass =
        foldBlockPartials(mesh, world, std::move(partials));
    recordSerial(ctx, "collective", 1.0);
    return mass;
}

RefinementFlag
ReactionPackage::tagBlock(const MeshBlock& block,
                          const ExecContext& ctx) const
{
    require(block.hasData(),
            "gradient tagging requires numeric mode; use an analytic "
            "tagger in counting mode");
    const BlockShape& s = block.shape();
    const KernelCosts costs{120.0, 1.0 * sizeof(double)};
    double max_jump = 0.0;
    const RealArray4& cons = block.cons();
    parReduce(ctx, "FirstDerivative", costs, ReduceOp::Max, max_jump,
              s.ks(), s.ke(), s.js(), s.je(), s.is(), s.ie(),
              [&](int k, int j, int i, double& acc) {
                  const double gx = 0.5 * (cons(0, k, j, i + 1) -
                                           cons(0, k, j, i - 1));
                  double gy = 0.0, gz = 0.0;
                  if (s.ndim >= 2)
                      gy = 0.5 * (cons(0, k, j + 1, i) -
                                  cons(0, k, j - 1, i));
                  if (s.ndim >= 3)
                      gz = 0.5 * (cons(0, k + 1, j, i) -
                                  cons(0, k - 1, j, i));
                  acc = std::max(acc,
                                 std::sqrt(gx * gx + gy * gy + gz * gz));
              });
    const double indicator = config_.maxSpeed(s.ndim) * max_jump;
    if (indicator > config_.refineTol)
        return RefinementFlag::Refine;
    if (indicator < config_.derefineTol)
        return RefinementFlag::Derefine;
    return RefinementFlag::None;
}

} // namespace vibe
