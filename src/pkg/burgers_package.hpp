/**
 * @file burgers_package.hpp
 * The Parthenon-VIBE physics package (paper §II-G): the 3-D vector
 * inviscid Burgers equation with passive scalars and the derived
 * kinetic-energy-like quantity
 *
 *   du/dt + div(0.5 u u) = 0,
 *   dq_i/dt + div(q_i u) = 0,
 *   d = 0.5 q_0 u.u,
 *
 * discretized with a Godunov finite-volume scheme: WENO5 or PLM
 * reconstruction, HLL fluxes and (driver-side) RK2 time integration.
 * Plugged into the driver through the PackageDescriptor seam; selected
 * from the deck with `<job> package = burgers`.
 */
#pragma once

#include <string>

#include "comm/rank_world.hpp"
#include "pkg/package_descriptor.hpp"
#include "solver/reconstruct.hpp"
#include "util/parameter_input.hpp"

namespace vibe {

/** Initial conditions offered by the package. */
enum class InitialCondition
{
    GaussianBlob, ///< Compact velocity/scalar pulse (forms shocks).
    Sine,         ///< Smooth periodic field (convergence studies).
    Ripple,       ///< Expanding spherical ripple (the §II-C analogy).
};

InitialCondition initialConditionFromName(const std::string& name);

/** Physics/numerics parameters for the Burgers package. */
struct BurgersConfig
{
    int numScalars = 8;     ///< Passive scalars (paper §VIII-B example).
    double cfl = 0.4;       ///< CFL safety factor.
    ReconMethod recon = ReconMethod::Weno5;
    /** Refine when the in-block index-space gradient exceeds this. */
    double refineTol = 0.08;
    /** Derefine when the gradient falls below this. */
    double derefineTol = 0.02;
    /** Initial condition (`<burgers> ic`), a package knob — the
     *  driver no longer knows what an initial condition is. */
    InitialCondition ic = InitialCondition::Ripple;

    static BurgersConfig fromParams(const ParameterInput& pin);
};

/**
 * Construct the Parthenon-VIBE registry (§II-G): the velocity vector
 * `u` (3 components), `num_scalars` passive scalars `q`, and the
 * derived kinetic-energy-like quantity `d` = 0.5 q_0 u.u.
 */
VariableRegistry makeBurgersRegistry(int num_scalars);

/**
 * Stateless operator collection over a Mesh. All per-cycle mutable
 * state lives in the MeshBlocks; the package holds configuration only.
 */
class BurgersPackage : public PackageDescriptor
{
  public:
    explicit BurgersPackage(const BurgersConfig& config)
        : config_(config)
    {
    }

    const BurgersConfig& config() const { return config_; }

    const std::string& name() const override;

    VariableRegistry buildRegistry() const override
    {
        return makeBurgersRegistry(config_.numScalars);
    }

    /** Set the configured IC on every block (numeric mode only). */
    void initialize(Mesh& mesh) const override
    {
        initialize(mesh, config_.ic);
    }

    void initializeBlock(const ExecContext& ctx,
                         MeshBlock& block) const override
    {
        initializeBlock(ctx, block, config_.ic);
    }

    /** Explicit-IC overloads (tests and harnesses sweep ICs). */
    void initialize(Mesh& mesh, InitialCondition ic) const;
    void initializeBlock(const ExecContext& ctx, MeshBlock& block,
                         InitialCondition ic) const;

    /**
     * WENO5/PLM reconstruction + HLL fluxes for one block (kernel
     * "CalculateFluxes", task-graph node). Reads only the block's own
     * data — unless the mesh shares reconstruction scratch
     * (optimizeAuxMemory), in which case the driver serializes these
     * tasks.
     */
    void calculateFluxesBlock(Mesh& mesh,
                              MeshBlock& block) const override;

    /**
     * Fused-pack reconstruction + fluxes: one hierarchical launch over
     * the packed (block, n, k, j) face domain per direction instead of
     * one launch per block. Bitwise identical to the per-block path on
     * every backend. With the §VIII-B shared recon scratch the fused
     * launch would race across blocks, so it falls back to the serial
     * per-block loop (matching the graph driver's serialization).
     */
    void calculateFluxesPack(Mesh& mesh,
                             MeshBlockPack& pack) const override;

    /** Flux divergence for one block (kernel "FluxDivergence"). */
    void fluxDivergenceBlock(Mesh& mesh, MeshBlock& block) const override;

    /** Fused-pack flux divergence over all blocks (one launch). */
    void fluxDivergencePack(Mesh& mesh,
                            MeshBlockPack& pack) const override;

    /** d = 0.5 q0 u.u (kernel "CalculateDerived"). */
    void fillDerived(Mesh& mesh) const override;

    /** Fused-pack derived fill over all blocks (one launch). */
    void fillDerivedPack(Mesh& mesh, MeshBlockPack& pack) const override;

    /**
     * CFL timestep: local min reduction (kernel "EstTimeMesh") followed
     * by a rank AllReduce. In counting mode returns `fallback_dt`.
     */
    double estimateTimestep(Mesh& mesh, RankWorld& world,
                            double fallback_dt) const override;

    /**
     * Fused-pack CFL timestep: one chunk-ordered min reduction over
     * the packed cell domain (exact under any chunking, so the dt is
     * bit-identical to the per-block reduction sequence).
     */
    double estimateTimestepPack(Mesh& mesh, MeshBlockPack& pack,
                                RankWorld& world,
                                double fallback_dt) const override;

    /**
     * History reduction: total q0 mass (kernel "MassHistory") plus an
     * AllReduce; the per-cycle history output VIBE performs.
     */
    double massHistory(Mesh& mesh, RankWorld& world) const override;

    /**
     * Gradient-based refinement criterion for one block (kernel
     * "FirstDerivative"): the maximum index-space velocity jump.
     * Numeric mode only.
     */
    RefinementFlag tagBlock(const MeshBlock& block,
                            const ExecContext& ctx) const override;

  private:
    BurgersConfig config_;
};

} // namespace vibe
