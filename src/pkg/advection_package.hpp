/**
 * @file advection_package.hpp
 * Linear advection: the second physics package, proving the
 * PackageDescriptor seam with a workload whose exact solution is
 * known.
 *
 *   dphi/dt + div(v phi) = 0,   v = (vx, vy, vz) constant,
 *   e = 0.5 phi^2               (derived "energy" density),
 *
 * discretized with the same Godunov machinery as Burgers — WENO5/PLM
 * reconstruction through the shared reconRow stencil kernel — but with
 * the exact upwind flux (the Riemann solution of a linear equation).
 * Because v is constant the solution is the initial profile translated
 * rigidly, phi(x, t) = phi0(x - v t) with periodic wrap, so tests can
 * compare a full AMR run (ghost exchange, flux correction, mid-run
 * refine/derefine, packing, pooling) against `analyticValue` directly.
 * Selected from the deck with `<job> package = advection`.
 */
#pragma once

#include <string>

#include "comm/rank_world.hpp"
#include "pkg/package_descriptor.hpp"
#include "solver/reconstruct.hpp"
#include "util/parameter_input.hpp"

namespace vibe {

/** Initial profiles offered by the package. */
enum class AdvectionProfile
{
    GaussianBlob, ///< Compact pulse (drives AMR around the feature).
    Sine,         ///< Smooth periodic field (accuracy studies).
};

AdvectionProfile advectionProfileFromName(const std::string& name);

/** Physics/numerics parameters for the advection package. */
struct AdvectionConfig
{
    /** Constant advection velocity (characteristic speed per dim). */
    double vx = 1.0, vy = 0.5, vz = 0.25;
    double cfl = 0.4; ///< CFL safety factor.
    ReconMethod recon = ReconMethod::Weno5;
    /**
     * Refine when the characteristic-speed-weighted index-space
     * gradient |v|_max * max|grad phi| exceeds this; derefine below
     * `derefineTol`. Weighting by the transport speed makes the
     * criterion track how fast the profile sweeps through a block.
     */
    double refineTol = 0.08;
    double derefineTol = 0.02;
    AdvectionProfile ic = AdvectionProfile::GaussianBlob;

    /** Read the `<advection>` deck block. */
    static AdvectionConfig fromParams(const ParameterInput& pin);

    /** Largest per-dimension speed among the active dimensions. */
    double maxSpeed(int ndim) const;
};

/**
 * Advection registry: one conserved scalar `phi` (ghost-exchanged,
 * flux-corrected) and the derived energy `phi_energy`. Deliberately
 * disjoint from the Burgers names {u, q, d}: the registry test pins
 * down that packages own their variable sets.
 */
VariableRegistry makeAdvectionRegistry();

/** Stateless operator collection over a Mesh (configuration only). */
class AdvectionPackage : public PackageDescriptor
{
  public:
    explicit AdvectionPackage(const AdvectionConfig& config)
        : config_(config)
    {
    }

    const AdvectionConfig& config() const { return config_; }

    const std::string& name() const override;

    VariableRegistry buildRegistry() const override
    {
        return makeAdvectionRegistry();
    }

    /**
     * Exact solution at physical point (x, y, z) and time t: the
     * initial profile translated by v t with periodic wrap on the
     * unit domain. Inactive dimensions (ndim < 3) are pinned to 0.5
     * and do not translate, matching initializeBlock.
     */
    double analyticValue(double x, double y, double z, double t,
                         int ndim) const;

    void initializeBlock(const ExecContext& ctx,
                         MeshBlock& block) const override;

    /**
     * Reconstruction + exact upwind fluxes for one block (kernel
     * "CalculateFluxes", task-graph node).
     */
    void calculateFluxesBlock(Mesh& mesh,
                              MeshBlock& block) const override;

    /**
     * Fused-pack reconstruction + upwind fluxes; falls back to the
     * serial per-block sweep under shared recon scratch, like every
     * package must.
     */
    void calculateFluxesPack(Mesh& mesh,
                             MeshBlockPack& pack) const override;

    void fluxDivergenceBlock(Mesh& mesh, MeshBlock& block) const override;

    void fluxDivergencePack(Mesh& mesh,
                            MeshBlockPack& pack) const override;

    /** e = 0.5 phi^2 (kernel "CalculateDerived"). */
    void fillDerived(Mesh& mesh) const override;

    void fillDerivedPack(Mesh& mesh, MeshBlockPack& pack) const override;

    /**
     * CFL timestep from the constant characteristic speeds (kernel
     * "EstTimeMesh"): the reduction sweep runs like every package's so
     * counting-mode work and fused-launch accounting stay comparable,
     * even though the speeds are uniform.
     */
    double estimateTimestep(Mesh& mesh, RankWorld& world,
                            double fallback_dt) const override;

    double estimateTimestepPack(Mesh& mesh, MeshBlockPack& pack,
                                RankWorld& world,
                                double fallback_dt) const override;

    /** Total phi mass (kernel "MassHistory") — conserved to round-off
     *  by the flux-corrected scheme. */
    double massHistory(Mesh& mesh, RankWorld& world) const override;

    /**
     * Characteristic-speed-weighted gradient criterion (kernel
     * "FirstDerivative"): |v|_max * max index-space jump of phi.
     */
    RefinementFlag tagBlock(const MeshBlock& block,
                            const ExecContext& ctx) const override;

  private:
    AdvectionConfig config_;
};

} // namespace vibe
