#include "pkg/package_registry.hpp"

#include <sstream>

#include "pkg/advection_package.hpp"
#include "pkg/burgers_package.hpp"
#include "pkg/reaction_package.hpp"
#include "util/logging.hpp"

namespace vibe {

PackageRegistry&
PackageRegistry::instance()
{
    // Built-ins are registered here rather than via self-registering
    // translation units: vibe_core is a static library, and a TU whose
    // only purpose is a registration side effect would be dropped by
    // the linker.
    static PackageRegistry registry = [] {
        PackageRegistry r;
        r.registerPackage("burgers", [](const ParameterInput& pin) {
            return std::make_unique<BurgersPackage>(
                BurgersConfig::fromParams(pin));
        });
        r.registerPackage("advection", [](const ParameterInput& pin) {
            return std::make_unique<AdvectionPackage>(
                AdvectionConfig::fromParams(pin));
        });
        r.registerPackage("reaction", [](const ParameterInput& pin) {
            return std::make_unique<ReactionPackage>(
                ReactionConfig::fromParams(pin));
        });
        return r;
    }();
    return registry;
}

void
PackageRegistry::registerPackage(const std::string& name, Factory factory)
{
    require(static_cast<bool>(factory), "package '", name,
            "' registered with an empty factory");
    if (!factories_.emplace(name, std::move(factory)).second)
        fatal("package '", name, "' is already registered");
}

std::unique_ptr<PackageDescriptor>
PackageRegistry::create(const std::string& name,
                        const ParameterInput& pin) const
{
    auto it = factories_.find(name);
    if (it == factories_.end()) {
        std::ostringstream known;
        for (const auto& [registered, factory] : factories_)
            known << (known.tellp() > 0 ? ", " : "") << registered;
        fatal("unknown package '", name, "' (registered packages: ",
              known.str(), ")");
    }
    return it->second(pin);
}

std::vector<std::string>
PackageRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, factory] : factories_)
        out.push_back(name);
    return out;
}

std::unique_ptr<PackageDescriptor>
PackageRegistry::fromDeck(const ParameterInput& pin)
{
    return instance().create(pin.getString("job", "package", "burgers"),
                             pin);
}

} // namespace vibe
