/**
 * @file package_descriptor.hpp
 * The physics-package seam: everything the timestep driver needs from
 * a PDE system, and nothing else.
 *
 * Parthenon applications (VIBE among them) are packages plugged into a
 * framework core through a StateDescriptor: the package declares its
 * variables (names, component counts, metadata flags) and registers
 * callbacks for fluxes, derived fields, timestep estimation, refinement
 * tagging and initial conditions; the driver, mesh, ghost exchange,
 * flux correction, load balancer and pack machinery never mention the
 * PDE. This header is our equivalent. EvolutionDriver, TaskList,
 * GradientTagger, MeshBlockPack and Experiment consume only this
 * interface (plus PackageRegistry for deck selection); concrete
 * physics lives in pkg/burgers_package.* and pkg/advection_package.*.
 *
 * Contract notes, enforced by the equivalence tests:
 * - Block-granularity callbacks (`*Block`) may run concurrently for
 *   distinct blocks and must touch only that block's data, so the
 *   task-graph executor can interleave them with ghost exchange.
 * - `*Pack` variants must be bitwise identical to the per-block loop
 *   on every execution space (fused launches reorder work across
 *   blocks; they must not reorder arithmetic within a cell).
 * - In counting mode (`!ctx.executing()`) callbacks record kernel
 *   costs but skip bodies; results must not be read.
 */
#pragma once

#include "comm/rank_world.hpp"
#include "mesh/mesh.hpp"

namespace vibe {

class MeshBlockPack;

/** One block's contribution to a history reduction (wire format). */
struct BlockPartial
{
    int gid = 0;
    double value = 0;
};

/**
 * Deterministic cross-rank sum for history reductions: per-block
 * partials are all-gathered (a real rendezvous on a rank team, a
 * pass-through on the classic path, both accounted as the AllReduce
 * the real code issues) and folded in global gid order. Because each
 * block's partial is computed identically wherever the block lives,
 * the fold is bitwise independent of the rank decomposition — the
 * property the rank-equivalence tests pin down. Packages share this
 * helper so no package can diverge.
 */
double foldBlockPartials(Mesh& mesh, RankWorld& world,
                         std::vector<BlockPartial> partials);

/**
 * Abstract physics package: variable registrations plus the driver
 * callbacks. Implementations are stateless operator collections over a
 * Mesh — all per-cycle mutable state lives in the MeshBlocks; the
 * package holds configuration only, so one instance may serve many
 * meshes and threads.
 */
class PackageDescriptor
{
  public:
    virtual ~PackageDescriptor() = default;

    /** Deck-facing package name (`<job> package = <name>`). */
    virtual const std::string& name() const = 0;

    /**
     * Variable declarations for this package: conserved (Independent)
     * variables with ghost/flux roles and Derived fields. The mesh
     * sizes every block's storage from this registry, so two packages
     * are interchangeable without touching mesh/ or comm/.
     */
    virtual VariableRegistry buildRegistry() const = 0;

    /** Set initial conditions on every block (numeric mode only). */
    virtual void initialize(Mesh& mesh) const;

    /** Set initial conditions on one block (interior AND ghosts). */
    virtual void initializeBlock(const ExecContext& ctx,
                                 MeshBlock& block) const = 0;

    /** Reconstruction + Riemann fluxes on every block. */
    virtual void calculateFluxes(Mesh& mesh) const;

    /**
     * Reconstruction + fluxes for one block (task-graph node). Reads
     * only the block's own data — unless the mesh shares
     * reconstruction scratch (optimizeAuxMemory), in which case the
     * driver serializes these tasks.
     */
    virtual void calculateFluxesBlock(Mesh& mesh,
                                      MeshBlock& block) const = 0;

    /**
     * Fused-pack reconstruction + fluxes: one hierarchical launch over
     * the packed face domain per direction. Must fall back to the
     * serial per-block sweep under shared recon scratch (a cross-block
     * fused launch would race on it).
     */
    virtual void calculateFluxesPack(Mesh& mesh,
                                     MeshBlockPack& pack) const = 0;

    /** dudt = -div(flux) on every block. */
    virtual void fluxDivergence(Mesh& mesh) const;

    /** Flux divergence for one block (task-graph node). */
    virtual void fluxDivergenceBlock(Mesh& mesh,
                                     MeshBlock& block) const = 0;

    /** Fused-pack flux divergence over all blocks (one launch). */
    virtual void fluxDivergencePack(Mesh& mesh,
                                    MeshBlockPack& pack) const = 0;

    /** Recompute Derived fields from conserved state. */
    virtual void fillDerived(Mesh& mesh) const = 0;

    /** Fused-pack derived fill over all blocks (one launch). */
    virtual void fillDerivedPack(Mesh& mesh,
                                 MeshBlockPack& pack) const = 0;

    /**
     * CFL timestep: local min reduction followed by a rank AllReduce.
     * In counting mode returns `fallback_dt`.
     */
    virtual double estimateTimestep(Mesh& mesh, RankWorld& world,
                                    double fallback_dt) const = 0;

    /**
     * Fused-pack CFL timestep: one chunk-ordered min reduction over
     * the packed cell domain, bit-identical to the per-block sequence.
     */
    virtual double estimateTimestepPack(Mesh& mesh, MeshBlockPack& pack,
                                        RankWorld& world,
                                        double fallback_dt) const = 0;

    /**
     * Per-cycle history reduction (the conserved "mass" the driver
     * logs in CycleStats.mass) plus an AllReduce.
     */
    virtual double massHistory(Mesh& mesh, RankWorld& world) const = 0;

    /**
     * Refinement criterion for one block (numeric mode only);
     * counting-mode studies use an analytic tagger instead.
     */
    virtual RefinementFlag tagBlock(const MeshBlock& block,
                                    const ExecContext& ctx) const = 0;
};

} // namespace vibe
