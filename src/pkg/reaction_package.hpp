/**
 * @file reaction_package.hpp
 * Advection + stiff two-species reaction: the workload that makes
 * per-block cost imbalance real.
 *
 *   da/dt + div(v a) = -T(a),   db/dt + div(v b) = +T(a),
 *   T(a) = rate * (a - c_eq(a)),
 *
 * where the equilibrium product concentration c_eq solves the
 * nonlinear balance c = a / (1 + stiffness * g(c) * exp(c - 1)),
 * g(c) = c^2 / (1 + c^2), by fixed-point iteration to `stiff_tol`
 * *per cell, every stage* — the structure of an equilibrium chemistry
 * network solve (in the spirit of Athena++'s gow17 network, where
 * photo-chemical rates are iterated per zone). Cells inside the
 * advected feature (a ~ 1) contract slowly and burn on the order of
 * a hundred iterations; quiescent floor cells (a ~ 1e-3) converge in
 * one or two. Per-block work therefore varies several-fold across the mesh
 * while the uniform cost model sees identical blocks — exactly the
 * imbalance measured-cost load balancing exists to fix.
 *
 * The source is antisymmetric per cell, so total (a + b) mass is
 * conserved to round-off on top of the flux-corrected transport, and
 * it is a pure function of local state — decomposition- and
 * thread-count-independence of the mesh state carries over unchanged.
 * Selected from the deck with `<job> package = reaction`.
 */
#pragma once

#include <string>

#include "comm/rank_world.hpp"
#include "pkg/package_descriptor.hpp"
#include "solver/reconstruct.hpp"
#include "util/parameter_input.hpp"

namespace vibe {

/** Physics/numerics parameters for the reaction package. */
struct ReactionConfig
{
    /** Constant advection velocity (characteristic speed per dim). */
    double vx = 1.0, vy = 0.5, vz = 0.25;
    double cfl = 0.4; ///< CFL safety factor (advective).
    /**
     * PLM by default (not WENO5): the package exists to make the
     * stiff source a first-order share of per-block work, so the
     * transport stencil is kept cheap.
     */
    ReconMethod recon = ReconMethod::Plm;
    /** Speed-weighted gradient tags, as in the advection package. */
    double refineTol = 0.08;
    double derefineTol = 0.02;
    /** Reservoir->product relaxation rate (also caps dt at 0.5/rate). */
    double rate = 1.0;
    /**
     * Nonlinearity strength: larger = slower contraction = more
     * iterations in feature cells. The fixed-point map contracts for
     * a <~ 1.5 at the default; past ~5 it turns over-steep at a ~ 1
     * (|f'| > 1) and hot cells burn the full `max_iters` cap instead.
     */
    double stiffness = 3.0;
    /** Relative fixed-point convergence tolerance. */
    double stiffTol = 1e-12;
    /** Iteration cap (bounds pathological cells; see `stiffness`). */
    int maxIters = 200;

    /** Read the `<reaction>` deck block. */
    static ReactionConfig fromParams(const ParameterInput& pin);

    /** Largest per-dimension speed among the active dimensions. */
    double maxSpeed(int ndim) const;
};

/**
 * Reaction registry: one conserved two-component species vector
 * `chem` = (a, b) (ghost-exchanged, flux-corrected) and the derived
 * interaction density `chem_rate` = a * b.
 */
VariableRegistry makeReactionRegistry();

/** Stateless operator collection over a Mesh (configuration only). */
class ReactionPackage : public PackageDescriptor
{
  public:
    explicit ReactionPackage(const ReactionConfig& config)
        : config_(config)
    {
    }

    const ReactionConfig& config() const { return config_; }

    const std::string& name() const override;

    VariableRegistry buildRegistry() const override
    {
        return makeReactionRegistry();
    }

    /**
     * Equilibrium product concentration for reservoir value `a`,
     * iterated to config tolerance. Exposed so tests can pin the
     * iteration-count contrast between feature and floor cells.
     * @param iters_out If non-null, receives the iteration count.
     */
    double equilibrium(double a, int* iters_out = nullptr) const;

    void initializeBlock(const ExecContext& ctx,
                         MeshBlock& block) const override;

    /** Reconstruction + exact upwind fluxes (kernel "CalculateFluxes"). */
    void calculateFluxesBlock(Mesh& mesh,
                              MeshBlock& block) const override;

    void calculateFluxesPack(Mesh& mesh,
                             MeshBlockPack& pack) const override;

    /**
     * dudt = -div(flux) plus the stiff source (kernels
     * "FluxDivergence" + "ReactionSource"): the per-cell equilibrium
     * solve runs here, inside the per-block task, so its wall clock is
     * attributed to the block — the signal the measured cost model
     * feeds on.
     */
    void fluxDivergenceBlock(Mesh& mesh, MeshBlock& block) const override;

    void fluxDivergencePack(Mesh& mesh,
                            MeshBlockPack& pack) const override;

    /** chem_rate = a * b (kernel "CalculateDerived"). */
    void fillDerived(Mesh& mesh) const override;

    void fillDerivedPack(Mesh& mesh, MeshBlockPack& pack) const override;

    /**
     * Advective CFL timestep, additionally capped at 0.5/rate so the
     * explicit source relaxation stays stable (kernel "EstTimeMesh").
     */
    double estimateTimestep(Mesh& mesh, RankWorld& world,
                            double fallback_dt) const override;

    double estimateTimestepPack(Mesh& mesh, MeshBlockPack& pack,
                                RankWorld& world,
                                double fallback_dt) const override;

    /** Total (a + b) mass — conserved to round-off: the transport is
     *  flux-corrected and the source is antisymmetric per cell. */
    double massHistory(Mesh& mesh, RankWorld& world) const override;

    /**
     * Speed-weighted gradient of the reservoir species a (kernel
     * "FirstDerivative"): refinement tracks the advected feature, so
     * refined blocks are also the iteration-heavy ones.
     */
    RefinementFlag tagBlock(const MeshBlock& block,
                            const ExecContext& ctx) const override;

  private:
    ReactionConfig config_;
};

} // namespace vibe
