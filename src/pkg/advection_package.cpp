#include "pkg/advection_package.hpp"

#include <cmath>

#include "exec/par_for.hpp"
#include "mesh/block_pack.hpp"
#include "pkg/fv_ops.hpp"
#include "util/logging.hpp"

namespace vibe {

namespace {

constexpr double kTwoPi = 6.283185307179586;
/** Gaussian profile width and additive floor. */
constexpr double kBlobSigma = 0.08;
constexpr double kBlobFloor = 1e-3;

/** x wrapped into [0, 1) (periodic unit domain). */
inline double
wrap01(double x)
{
    x = std::fmod(x, 1.0);
    return x < 0.0 ? x + 1.0 : x;
}

/** Periodic distance from `x` in [0, 1) to the domain center. */
inline double
centerDist(double x)
{
    const double d = std::fabs(x - 0.5);
    return std::min(d, 1.0 - d);
}

/**
 * Exact upwind flux for one (k, j) row of faces [fis, fie]: the
 * Riemann solution of the linear equation selects the upwind
 * reconstructed state, F = v * phi_upwind. Shared by the per-block
 * and pack launch bodies.
 */
inline void
upwindRow(const RealArray4& rl, const RealArray4& rr, RealArray4& flux,
          double vel, int ncomp, int k, int j, int fis, int fie)
{
    for (int i = fis; i <= fie; ++i)
        for (int n = 0; n < ncomp; ++n)
            flux(n, k, j, i) = vel >= 0.0 ? vel * rl(n, k, j, i)
                                          : vel * rr(n, k, j, i);
}

/** Flops of one upwind flux per component (compare kHllFlopsPerComp). */
constexpr double kUpwindFlopsPerComp = 2.0;

} // namespace

AdvectionProfile
advectionProfileFromName(const std::string& name)
{
    if (name == "gaussian_blob")
        return AdvectionProfile::GaussianBlob;
    if (name == "sine")
        return AdvectionProfile::Sine;
    fatal("unknown advection profile '", name, "'");
}

AdvectionConfig
AdvectionConfig::fromParams(const ParameterInput& pin)
{
    AdvectionConfig config;
    config.vx = pin.getReal("advection", "vx", 1.0);
    config.vy = pin.getReal("advection", "vy", 0.5);
    config.vz = pin.getReal("advection", "vz", 0.25);
    config.cfl = pin.getReal("advection", "cfl", 0.4);
    config.recon = reconMethodFromName(
        pin.getString("advection", "recon", "weno5"));
    config.refineTol = pin.getReal("advection", "refine_tol", 0.08);
    config.derefineTol = pin.getReal("advection", "derefine_tol", 0.02);
    config.ic = advectionProfileFromName(
        pin.getString("advection", "ic", "gaussian_blob"));
    return config;
}

double
AdvectionConfig::maxSpeed(int ndim) const
{
    double speed = std::fabs(vx);
    if (ndim >= 2)
        speed = std::max(speed, std::fabs(vy));
    if (ndim >= 3)
        speed = std::max(speed, std::fabs(vz));
    return speed;
}

const std::string&
AdvectionPackage::name() const
{
    static const std::string package_name = "advection";
    return package_name;
}

VariableRegistry
makeAdvectionRegistry()
{
    VariableRegistry registry;
    registry.add({"phi", 1, kIndependent | kFillGhost | kWithFluxes});
    registry.add({"phi_energy", 1, kDerived});
    return registry;
}

double
AdvectionPackage::analyticValue(double x, double y, double z, double t,
                                int ndim) const
{
    // Rigid translation: evaluate the t = 0 profile at x - v t.
    // Inactive dimensions sit at 0.5 and do not move.
    const double xs = wrap01(x - config_.vx * t);
    const double ys = ndim >= 2 ? wrap01(y - config_.vy * t) : 0.5;
    const double zs = ndim >= 3 ? wrap01(z - config_.vz * t) : 0.5;

    switch (config_.ic) {
      case AdvectionProfile::GaussianBlob: {
        const double dx = centerDist(xs);
        const double dy = centerDist(ys);
        const double dz = centerDist(zs);
        const double r2 = dx * dx + dy * dy + dz * dz;
        return std::exp(-r2 / (2 * kBlobSigma * kBlobSigma)) +
               kBlobFloor;
      }
      case AdvectionProfile::Sine:
        return 1.0 + 0.5 * std::sin(kTwoPi * (xs + ys + zs));
    }
    return 0.0; // unreachable
}

void
AdvectionPackage::initializeBlock(const ExecContext& ctx,
                                  MeshBlock& block) const
{
    if (!block.hasData())
        return;
    const BlockShape& s = block.shape();
    const BlockGeometry& g = block.geom();
    RealArray4& cons = block.cons();

    // Fill interior AND ghosts so the first exchange starts consistent
    // (same convention as every package).
    parForExec(ctx, 0, s.nk() - 1, 0, s.nj() - 1, 0, s.ni() - 1,
               [&](int k, int j, int i) {
                   const double x = g.x1c(i - s.is());
                   const double y =
                       s.ndim >= 2 ? g.x2c(j - s.js()) : 0.5;
                   const double z =
                       s.ndim >= 3 ? g.x3c(k - s.ks()) : 0.5;
                   cons(0, k, j, i) =
                       analyticValue(x, y, z, 0.0, s.ndim);
               });
}

void
AdvectionPackage::calculateFluxesBlock(Mesh& mesh, MeshBlock& block) const
{
    const ExecContext& ctx = mesh.ctx();
    const BlockShape s = mesh.config().blockShape();
    const int ncomp = mesh.registry().ncompConserved();
    const int ndim = s.ndim;
    const double recon_flops =
        config_.recon == ReconMethod::Weno5 ? kWeno5Flops : kPlmFlops;
    // Per interior cell and direction: two reconstructed states plus
    // one upwind flux per component (cf. the Burgers HLL accounting).
    const KernelCosts costs{
        ndim * ncomp * (2 * recon_flops + kUpwindFlopsPerComp),
        ndim * ncomp * 4.0 * sizeof(double)};

    recordKernelAt(ctx, "CalculateFluxes", block.rank(),
                   "CalculateFluxes",
                   static_cast<double>(s.interiorCells()), costs,
                   static_cast<double>(s.nx1));
    if (!ctx.executing())
        return;

    const double vel[3] = {config_.vx, config_.vy, config_.vz};
    RealArray4& cons = block.cons();
    for (int d = 0; d < ndim; ++d) {
        RealArray4* rl = block.reconL(d);
        RealArray4* rr = block.reconR(d);
        require(rl && rr, "reconstruction scratch missing");
        RealArray4& flux = block.flux(d);
        const int di = d == 0 ? 1 : 0;
        const int dj = d == 1 ? 1 : 0;
        const int dk = d == 2 ? 1 : 0;
        const int fis = s.is(), fie = s.ie() + di;
        const int fjs = s.js(), fje = s.je() + dj;
        const int fks = s.ks(), fke = s.ke() + dk;

        // Reconstruction through the shared row stencil kernel; a
        // one-block pack launch, exactly like the Burgers path.
        parForPackExec(ctx, 1, 0, ncomp - 1, fks, fke, fjs, fje,
                       [&](int, int, int n, int k, int j) {
                           reconRow(cons, *rl, *rr, config_.recon, n, k,
                                    j, fis, fie, di, dj, dk);
                       });

        // Upwind flux pass over the same faces.
        parForExecRows(ctx, fks, fke, fjs, fje,
                       [&](int, int k, int j) {
                           upwindRow(*rl, *rr, flux, vel[d], ncomp, k,
                                     j, fis, fie);
                       });
    }
}

void
AdvectionPackage::calculateFluxesPack(Mesh& mesh, MeshBlockPack& pack) const
{
    // Shared recon scratch (§VIII-B) is lent to every block at once; a
    // cross-block fused launch would race on it, so fall back to the
    // serial per-block sweep (the task-graph driver serializes the
    // same way).
    if (mesh.config().optimizeAuxMemory) {
        for (int b = 0; b < pack.numBlocks(); ++b)
            calculateFluxesBlock(mesh, pack.meshBlock(b));
        return;
    }

    const ExecContext& ctx = mesh.ctx();
    const BlockShape s = mesh.config().blockShape();
    const int ncomp = mesh.registry().ncompConserved();
    const int ndim = s.ndim;
    const int nb = pack.numBlocks();
    const double recon_flops =
        config_.recon == ReconMethod::Weno5 ? kWeno5Flops : kPlmFlops;
    const KernelCosts costs{
        ndim * ncomp * (2 * recon_flops + kUpwindFlopsPerComp),
        ndim * ncomp * 4.0 * sizeof(double)};

    recordPackKernel(ctx, "CalculateFluxes", "CalculateFluxes", costs,
                     pack.ranks(), nb,
                     static_cast<double>(s.interiorCells()),
                     static_cast<double>(s.nx1));
    if (!ctx.executing())
        return;

    const double vel[3] = {config_.vx, config_.vy, config_.vz};
    for (int d = 0; d < ndim; ++d) {
        const int di = d == 0 ? 1 : 0;
        const int dj = d == 1 ? 1 : 0;
        const int dk = d == 2 ? 1 : 0;
        const int fis = s.is(), fie = s.ie() + di;
        const int fjs = s.js(), fje = s.je() + dj;
        const int fks = s.ks(), fke = s.ke() + dk;

        // Reconstruction: one fused launch over (b, n, k, j) rows.
        parForPackExec(
            ctx, nb, 0, ncomp - 1, fks, fke, fjs, fje,
            [&](int, int b, int n, int k, int j) {
                BlockPackView& v = pack.view(b);
                reconRow(*v.cons, *v.reconL[d], *v.reconR[d],
                         config_.recon, n, k, j, fis, fie, di, dj, dk);
            });

        // Upwind fluxes: one fused launch over (b, k, j) rows.
        parForPackExec(ctx, nb, 0, 0, fks, fke, fjs, fje,
                       [&](int, int b, int, int k, int j) {
                           BlockPackView& v = pack.view(b);
                           upwindRow(*v.reconL[d], *v.reconR[d],
                                     *v.flux[d], vel[d], ncomp, k, j,
                                     fis, fie);
                       });
    }
}

void
AdvectionPackage::fluxDivergenceBlock(Mesh& mesh, MeshBlock& block) const
{
    fvFluxDivergenceBlock(mesh, block);
}

void
AdvectionPackage::fluxDivergencePack(Mesh& mesh, MeshBlockPack& pack) const
{
    fvFluxDivergencePack(mesh, pack);
}

void
AdvectionPackage::fillDerived(Mesh& mesh) const
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "FillDerived");
    const BlockShape s = mesh.config().blockShape();
    // e = 0.5 phi^2: 1 read, 1 write, 2 flops per cell.
    const KernelCosts costs{2.0, 2.0 * sizeof(double)};

    for (MeshBlock* block : mesh.ownedBlocks()) {
        ctx.setCurrentRank(block->rank());
        // String-based variable extraction, the §VIII-A serial
        // overhead every package pays per block.
        recordSerial(ctx, "string_lookup",
                     static_cast<double>(mesh.registry().all().size()));
        RealArray4& cons = block->cons();
        RealArray4& derived = block->derived();
        parFor(ctx, "CalculateDerived", costs, s.ks(), s.ke(), s.js(),
               s.je(), s.is(), s.ie(), [&](int k, int j, int i) {
                   const double phi = cons(0, k, j, i);
                   derived(0, k, j, i) = 0.5 * phi * phi;
               });
    }
}

void
AdvectionPackage::fillDerivedPack(Mesh& mesh, MeshBlockPack& pack) const
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "FillDerived");
    const BlockShape s = mesh.config().blockShape();
    const KernelCosts costs{2.0, 2.0 * sizeof(double)};
    const int nb = pack.numBlocks();

    const double lookups =
        static_cast<double>(mesh.registry().all().size());
    for (int b = 0; b < nb; ++b)
        recordSerialAt(ctx, "FillDerived", pack.ranks()[b],
                       "string_lookup", lookups);

    parForPack(ctx, "FillDerived", "CalculateDerived", costs,
               pack.ranks(), nb, 0, 0, s.ks(), s.ke(), s.js(), s.je(),
               s.is(), s.ie(), [&](int, int b, int, int k, int j) {
                   BlockPackView& v = pack.view(b);
                   const RealArray4& cons = *v.cons;
                   RealArray4& derived = *v.derived;
                   for (int i = s.is(); i <= s.ie(); ++i) {
                       const double phi = cons(0, k, j, i);
                       derived(0, k, j, i) = 0.5 * phi * phi;
                   }
               });
}

double
AdvectionPackage::estimateTimestep(Mesh& mesh, RankWorld& world,
                                   double fallback_dt) const
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "EstimateTimestep");
    const BlockShape s = mesh.config().blockShape();
    const KernelCosts costs{10.0, 3.0 * sizeof(double)};

    double dt = fallback_dt / config_.cfl;
    for (MeshBlock* block : mesh.ownedBlocks()) {
        ctx.setCurrentRank(block->rank());
        double block_dt = dt;
        const BlockGeometry& g = block->geom();
        parReduce(ctx, "EstTimeMesh", costs, ReduceOp::Min, block_dt,
                  s.ks(), s.ke(), s.js(), s.je(), s.is(), s.ie(),
                  [&](int, int, int, double& acc) {
                      constexpr double tiny = 1e-12;
                      double cell_dt =
                          g.dx1 / (std::fabs(config_.vx) + tiny);
                      if (s.ndim >= 2)
                          cell_dt = std::min(
                              cell_dt,
                              g.dx2 / (std::fabs(config_.vy) + tiny));
                      if (s.ndim >= 3)
                          cell_dt = std::min(
                              cell_dt,
                              g.dx3 / (std::fabs(config_.vz) + tiny));
                      acc = std::min(acc, cell_dt);
                  });
        dt = std::min(dt, block_dt);
        recordSerial(ctx, "dt_reduce", 1.0);
    }
    // Global min across ranks: exact under any combination order, so
    // the collective dt is bitwise the 1-rank dt.
    dt = world.allReduceValue(mesh.collectiveRank(), dt, CollOp::Min,
                              sizeof(double));
    recordSerial(ctx, "collective", 1.0);
    return config_.cfl * dt;
}

double
AdvectionPackage::estimateTimestepPack(Mesh& mesh, MeshBlockPack& pack,
                                       RankWorld& world,
                                       double fallback_dt) const
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "EstimateTimestep");
    const BlockShape s = mesh.config().blockShape();
    const KernelCosts costs{10.0, 3.0 * sizeof(double)};
    const int nb = pack.numBlocks();

    double dt = fallback_dt / config_.cfl;
    parReducePack(
        ctx, "EstimateTimestep", "EstTimeMesh", costs, ReduceOp::Min,
        dt, pack.ranks(), nb, s.ks(), s.ke(), s.js(), s.je(), s.is(),
        s.ie(), [&](int b, int, int, double& acc) {
            BlockPackView& v = pack.view(b);
            for (int i = s.is(); i <= s.ie(); ++i) {
                constexpr double tiny = 1e-12;
                double cell_dt =
                    v.dx1 / (std::fabs(config_.vx) + tiny);
                if (s.ndim >= 2)
                    cell_dt = std::min(
                        cell_dt,
                        v.dx2 / (std::fabs(config_.vy) + tiny));
                if (s.ndim >= 3)
                    cell_dt = std::min(
                        cell_dt,
                        v.dx3 / (std::fabs(config_.vz) + tiny));
                acc = std::min(acc, cell_dt);
            }
        });
    for (int b = 0; b < nb; ++b)
        recordSerialAt(ctx, "EstimateTimestep", pack.ranks()[b],
                       "dt_reduce", 1.0);
    dt = world.allReduceValue(mesh.collectiveRank(), dt, CollOp::Min,
                              sizeof(double));
    recordSerial(ctx, "collective", 1.0);
    return config_.cfl * dt;
}

double
AdvectionPackage::massHistory(Mesh& mesh, RankWorld& world) const
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "other");
    const BlockShape s = mesh.config().blockShape();
    const KernelCosts costs{2.0, 1.0 * sizeof(double)};

    // Gid-ordered per-block fold: bitwise independent of the rank
    // decomposition (see foldBlockPartials).
    std::vector<BlockPartial> partials;
    partials.reserve(mesh.ownedBlocks().size());
    for (MeshBlock* block : mesh.ownedBlocks()) {
        ctx.setCurrentRank(block->rank());
        RealArray4& cons = block->cons();
        const double vol = block->geom().cellVolume();
        double block_mass = 0.0;
        parReduce(ctx, "MassHistory", costs, ReduceOp::Sum, block_mass,
                  s.ks(), s.ke(), s.js(), s.je(), s.is(), s.ie(),
                  [&](int k, int j, int i, double& acc) {
                      acc += cons(0, k, j, i) * vol;
                  });
        partials.push_back({block->gid(), block_mass});
    }
    const double mass =
        foldBlockPartials(mesh, world, std::move(partials));
    recordSerial(ctx, "collective", 1.0);
    return mass;
}

RefinementFlag
AdvectionPackage::tagBlock(const MeshBlock& block,
                           const ExecContext& ctx) const
{
    require(block.hasData(),
            "gradient tagging requires numeric mode; use an analytic "
            "tagger in counting mode");
    const BlockShape& s = block.shape();
    const KernelCosts costs{120.0, 1.0 * sizeof(double)};
    double max_jump = 0.0;
    const RealArray4& cons = block.cons();
    parReduce(ctx, "FirstDerivative", costs, ReduceOp::Max, max_jump,
              s.ks(), s.ke(), s.js(), s.je(), s.is(), s.ie(),
              [&](int k, int j, int i, double& acc) {
                  const double gx = 0.5 * (cons(0, k, j, i + 1) -
                                           cons(0, k, j, i - 1));
                  double gy = 0.0, gz = 0.0;
                  if (s.ndim >= 2)
                      gy = 0.5 * (cons(0, k, j + 1, i) -
                                  cons(0, k, j - 1, i));
                  if (s.ndim >= 3)
                      gz = 0.5 * (cons(0, k + 1, j, i) -
                                  cons(0, k - 1, j, i));
                  acc = std::max(acc,
                                 std::sqrt(gx * gx + gy * gy + gz * gz));
              });
    // Weight the gradient by the transport speed: how fast the
    // feature sweeps through this block, the characteristic-speed
    // criterion of this package.
    const double indicator = config_.maxSpeed(s.ndim) * max_jump;
    if (indicator > config_.refineTol)
        return RefinementFlag::Refine;
    if (indicator < config_.derefineTol)
        return RefinementFlag::Derefine;
    return RefinementFlag::None;
}

} // namespace vibe
