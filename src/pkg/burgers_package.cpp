#include "pkg/burgers_package.hpp"

#include <cmath>
#include <vector>

#include "exec/par_for.hpp"
#include "mesh/block_pack.hpp"
#include "pkg/fv_ops.hpp"
#include "solver/riemann.hpp"
#include "util/logging.hpp"

namespace vibe {

namespace {

// reconRow (the shared stencil kernel) lives in solver/reconstruct.hpp
// so every package reconstructs through the same definition.

/**
 * HLL-solve one (k, j) row of faces [fis, fie] into the flux array.
 * ul/ur/f are the caller's ncomp-sized per-chunk scratch slices.
 * Shared by the per-block and pack launch bodies.
 */
inline void
hllRow(const RealArray4& rl, const RealArray4& rr, RealArray4& flux,
       int d, int ncomp, int k, int j, int fis, int fie, double* ul,
       double* ur, double* f)
{
    for (int i = fis; i <= fie; ++i) {
        for (int n = 0; n < ncomp; ++n) {
            ul[n] = rl(n, k, j, i);
            ur[n] = rr(n, k, j, i);
        }
        hllFlux(ul, ur, d, ncomp, f);
        for (int n = 0; n < ncomp; ++n)
            flux(n, k, j, i) = f[n];
    }
}

} // namespace

BurgersConfig
BurgersConfig::fromParams(const ParameterInput& pin)
{
    BurgersConfig config;
    config.numScalars = pin.getInt("burgers", "num_scalars", 8);
    config.cfl = pin.getReal("burgers", "cfl", 0.4);
    config.recon =
        reconMethodFromName(pin.getString("burgers", "recon", "weno5"));
    config.refineTol = pin.getReal("burgers", "refine_tol", 0.08);
    config.derefineTol = pin.getReal("burgers", "derefine_tol", 0.02);
    config.ic =
        initialConditionFromName(pin.getString("burgers", "ic", "ripple"));
    return config;
}

const std::string&
BurgersPackage::name() const
{
    static const std::string package_name = "burgers";
    return package_name;
}

VariableRegistry
makeBurgersRegistry(int num_scalars)
{
    require(num_scalars >= 1,
            "Burgers benchmark requires at least one passive scalar");
    VariableRegistry registry;
    registry.add({"u", 3, kIndependent | kFillGhost | kWithFluxes});
    registry.add({"q", num_scalars, kIndependent | kFillGhost |
                                        kWithFluxes});
    registry.add({"d", 1, kDerived});
    return registry;
}

InitialCondition
initialConditionFromName(const std::string& name)
{
    if (name == "gaussian_blob")
        return InitialCondition::GaussianBlob;
    if (name == "sine")
        return InitialCondition::Sine;
    if (name == "ripple")
        return InitialCondition::Ripple;
    fatal("unknown initial condition '", name, "'");
}

void
BurgersPackage::initialize(Mesh& mesh, InitialCondition ic) const
{
    for (MeshBlock* block : mesh.ownedBlocks())
        initializeBlock(mesh.ctx(), *block, ic);
}

void
BurgersPackage::initializeBlock(const ExecContext& ctx, MeshBlock& block,
                                InitialCondition ic) const
{
    if (!block.hasData())
        return;
    const BlockShape& s = block.shape();
    const BlockGeometry& g = block.geom();
    const int ncomp = block.registry().ncompConserved();
    RealArray4& cons = block.cons();
    constexpr double two_pi = 6.283185307179586;

    // Fill interior AND ghosts so the first exchange starts consistent.
    // Elementwise and unaccounted in the seed, so dispatching on the
    // execution space changes neither results nor profiler totals.
    parForExec(
        ctx, 0, s.nk() - 1, 0, s.nj() - 1, 0, s.ni() - 1,
        [&](int k, int j, int i) {
                const double x = g.x1c(i - s.is());
                const double y = s.ndim >= 2 ? g.x2c(j - s.js()) : 0.5;
                const double z = s.ndim >= 3 ? g.x3c(k - s.ks()) : 0.5;
                const double dx = x - 0.5, dy = y - 0.5, dz = z - 0.5;
                const double r2 = dx * dx + dy * dy + dz * dz;
                const double r = std::sqrt(r2);

                double u1 = 0, u2 = 0, u3 = 0, q = 1e-3;
                switch (ic) {
                  case InitialCondition::GaussianBlob: {
                    const double amp = std::exp(-r2 / (2 * 0.08 * 0.08));
                    u1 = amp;
                    u2 = 0.5 * amp;
                    u3 = 0.25 * amp;
                    q = amp + 1e-3;
                    break;
                  }
                  case InitialCondition::Sine: {
                    u1 = 0.2 * std::sin(two_pi * x);
                    u2 = s.ndim >= 2 ? 0.2 * std::sin(two_pi * y) : 0.0;
                    u3 = s.ndim >= 3 ? 0.2 * std::sin(two_pi * z) : 0.0;
                    q = 1.0 + 0.5 * std::sin(two_pi * (x + y + z));
                    break;
                  }
                  case InitialCondition::Ripple: {
                    // Outward radial pulse centered on a thin shell.
                    const double shell = 0.12;
                    const double amp = std::exp(
                        -(r - shell) * (r - shell) / (2 * 0.03 * 0.03));
                    const double inv_r = r > 1e-12 ? 1.0 / r : 0.0;
                    u1 = amp * dx * inv_r;
                    u2 = s.ndim >= 2 ? amp * dy * inv_r : 0.0;
                    u3 = s.ndim >= 3 ? amp * dz * inv_r : 0.0;
                    q = amp + 1e-3;
                    break;
                  }
                }
                cons(0, k, j, i) = u1;
                cons(1, k, j, i) = u2;
                cons(2, k, j, i) = u3;
                for (int m = 3; m < ncomp; ++m)
                    cons(m, k, j, i) = q / (1.0 + 0.1 * (m - 3));
        });
}

void
BurgersPackage::calculateFluxesBlock(Mesh& mesh, MeshBlock& block) const
{
    const ExecContext& ctx = mesh.ctx();
    const BlockShape s = mesh.config().blockShape();
    const int ncomp = mesh.registry().ncompConserved();
    const int ndim = s.ndim;
    const double recon_flops =
        config_.recon == ReconMethod::Weno5 ? kWeno5Flops : kPlmFlops;
    // Per interior cell: for each direction, ~1 face: two reconstructed
    // states and one HLL flux per component.
    const KernelCosts costs{
        ndim * ncomp * (2 * recon_flops + kHllFlopsPerComp),
        // Effective DRAM traffic: state read + recon write x2 + flux
        // write per direction (stencil reuse hits cache).
        ndim * ncomp * 4.0 * sizeof(double)};

    recordKernelAt(ctx, "CalculateFluxes", block.rank(),
                   "CalculateFluxes",
                   static_cast<double>(s.interiorCells()), costs,
                   static_cast<double>(s.nx1));
    if (!ctx.executing())
        return;

    RealArray4& cons = block.cons();
    // One (ul, ur, f) state triple per execution-space chunk, sized
    // once at launch setup (grow-only, so steady state allocates
    // nothing); the HLL body indexes it by chunk id. The old
    // thread_local scratch re-checked its size inside the innermost
    // flux loop, once per cell. Concurrent per-block flux tasks each
    // run on their own thread and so get their own buffer; chunks of
    // a top-level launch index disjoint slices of the launching
    // thread's buffer, which outlives the synchronous launch.
    static thread_local std::vector<double> hll_scratch;
    const std::size_t scratch_need =
        static_cast<std::size_t>(ctx.space().concurrency()) * 3 * ncomp;
    if (hll_scratch.size() < scratch_need)
        hll_scratch.resize(scratch_need);
    // Captured as a plain pointer: thread_locals are not captured by
    // lambdas, so without this a pool worker running a chunk would
    // resolve `hll_scratch` to its own (unsized) instance.
    double* const scratch_base = hll_scratch.data();
    for (int d = 0; d < ndim; ++d) {
        RealArray4* rl = block.reconL(d);
        RealArray4* rr = block.reconR(d);
        require(rl && rr, "reconstruction scratch missing");
        RealArray4& flux = block.flux(d);
        const int di = d == 0 ? 1 : 0;
        const int dj = d == 1 ? 1 : 0;
        const int dk = d == 2 ? 1 : 0;
        // Face range: interior faces of dim d, interior cells in
        // transverse dims.
        const int fis = s.is(), fie = s.ie() + di;
        const int fjs = s.js(), fje = s.je() + dj;
        const int fks = s.ks(), fke = s.ke() + dk;

        // Both passes are accounted by the per-block recordKernelAt
        // above; the launches only dispatch them on the space. A
        // one-block pack launch flattens the identical (n, k, j) row
        // domain the old 4-D launch chunked, and both passes run the
        // same shared row kernels as the fused pack path.
        parForPackExec(ctx, 1, 0, ncomp - 1, fks, fke, fjs, fje,
                       [&](int, int, int n, int k, int j) {
                           reconRow(cons, *rl, *rr, config_.recon, n, k,
                                    j, fis, fie, di, dj, dk);
                       });

        // HLL pass over the same faces, one row per body call.
        parForExecRows(
            ctx, fks, fke, fjs, fje, [&](int chunk, int k, int j) {
                double* ul = scratch_base +
                             static_cast<std::size_t>(chunk) * 3 * ncomp;
                double* ur = ul + ncomp;
                hllRow(*rl, *rr, flux, d, ncomp, k, j, fis, fie, ul,
                       ur, ur + ncomp);
            });
    }
}

void
BurgersPackage::calculateFluxesPack(Mesh& mesh, MeshBlockPack& pack) const
{
    // Shared recon scratch (§VIII-B) is lent to every block at once; a
    // cross-block fused launch would race on it, so keep the serial
    // per-block sweep there (the task-graph driver serializes the same
    // way).
    if (mesh.config().optimizeAuxMemory) {
        for (int b = 0; b < pack.numBlocks(); ++b)
            calculateFluxesBlock(mesh, pack.meshBlock(b));
        return;
    }

    const ExecContext& ctx = mesh.ctx();
    const BlockShape s = mesh.config().blockShape();
    const int ncomp = mesh.registry().ncompConserved();
    const int ndim = s.ndim;
    const int nb = pack.numBlocks();
    const double recon_flops =
        config_.recon == ReconMethod::Weno5 ? kWeno5Flops : kPlmFlops;
    const KernelCosts costs{
        ndim * ncomp * (2 * recon_flops + kHllFlopsPerComp),
        ndim * ncomp * 4.0 * sizeof(double)};

    recordPackKernel(ctx, "CalculateFluxes", "CalculateFluxes", costs,
                     pack.ranks(), nb,
                     static_cast<double>(s.interiorCells()),
                     static_cast<double>(s.nx1));
    if (!ctx.executing())
        return;

    // Grow-only per-thread scratch, pointer-snapshotted for capture —
    // same pattern (and same rationale) as calculateFluxesBlock.
    static thread_local std::vector<double> hll_scratch;
    const std::size_t scratch_need =
        static_cast<std::size_t>(ctx.space().concurrency()) * 3 * ncomp;
    if (hll_scratch.size() < scratch_need)
        hll_scratch.resize(scratch_need);
    double* const scratch_base = hll_scratch.data();

    for (int d = 0; d < ndim; ++d) {
        const int di = d == 0 ? 1 : 0;
        const int dj = d == 1 ? 1 : 0;
        const int dk = d == 2 ? 1 : 0;
        const int fis = s.is(), fie = s.ie() + di;
        const int fjs = s.js(), fje = s.je() + dj;
        const int fks = s.ks(), fke = s.ke() + dk;

        // Reconstruction: one fused launch over (b, n, k, j) rows,
        // running the same shared row kernel as the per-block path.
        parForPackExec(
            ctx, nb, 0, ncomp - 1, fks, fke, fjs, fje,
            [&](int, int b, int n, int k, int j) {
                BlockPackView& v = pack.view(b);
                reconRow(*v.cons, *v.reconL[d], *v.reconR[d],
                         config_.recon, n, k, j, fis, fie, di, dj, dk);
            });

        // HLL: one fused launch over (b, k, j) rows, per-chunk scratch.
        parForPackExec(
            ctx, nb, 0, 0, fks, fke, fjs, fje,
            [&](int chunk, int b, int, int k, int j) {
                BlockPackView& v = pack.view(b);
                double* ul = scratch_base +
                             static_cast<std::size_t>(chunk) * 3 * ncomp;
                double* ur = ul + ncomp;
                hllRow(*v.reconL[d], *v.reconR[d], *v.flux[d], d,
                       ncomp, k, j, fis, fie, ul, ur, ur + ncomp);
            });
    }
}

void
BurgersPackage::fluxDivergenceBlock(Mesh& mesh, MeshBlock& block) const
{
    fvFluxDivergenceBlock(mesh, block);
}

void
BurgersPackage::fluxDivergencePack(Mesh& mesh, MeshBlockPack& pack) const
{
    fvFluxDivergencePack(mesh, pack);
}

void
BurgersPackage::fillDerived(Mesh& mesh) const
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "FillDerived");
    const BlockShape s = mesh.config().blockShape();
    // d = 0.5 q0 (u.u): 5 reads, 1 write, ~6 flops per cell.
    const KernelCosts costs{6.0, 6.0 * sizeof(double)};

    for (MeshBlock* block : mesh.ownedBlocks()) {
        ctx.setCurrentRank(block->rank());
        // String-based variable extraction (GetVariablesByFlag) is the
        // serial overhead the paper highlights (§VIII-A).
        recordSerial(ctx, "string_lookup",
                     static_cast<double>(mesh.registry().all().size()));
        RealArray4& cons = block->cons();
        RealArray4& derived = block->derived();
        parFor(ctx, "CalculateDerived", costs, s.ks(), s.ke(), s.js(),
               s.je(), s.is(), s.ie(), [&](int k, int j, int i) {
                   const double u1 = cons(0, k, j, i);
                   const double u2 = cons(1, k, j, i);
                   const double u3 = cons(2, k, j, i);
                   const double q0 = cons(3, k, j, i);
                   derived(0, k, j, i) =
                       0.5 * q0 * (u1 * u1 + u2 * u2 + u3 * u3);
               });
    }
}

void
BurgersPackage::fillDerivedPack(Mesh& mesh, MeshBlockPack& pack) const
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "FillDerived");
    const BlockShape s = mesh.config().blockShape();
    const KernelCosts costs{6.0, 6.0 * sizeof(double)};
    const int nb = pack.numBlocks();

    // The string-keyed variable extraction happens once per block
    // regardless of launch fusion (§VIII-A serial overhead).
    const double lookups =
        static_cast<double>(mesh.registry().all().size());
    for (int b = 0; b < nb; ++b)
        recordSerialAt(ctx, "FillDerived", pack.ranks()[b],
                       "string_lookup", lookups);

    parForPack(ctx, "FillDerived", "CalculateDerived", costs,
               pack.ranks(), nb, 0, 0, s.ks(), s.ke(), s.js(), s.je(),
               s.is(), s.ie(), [&](int, int b, int, int k, int j) {
                   BlockPackView& v = pack.view(b);
                   const RealArray4& cons = *v.cons;
                   RealArray4& derived = *v.derived;
                   for (int i = s.is(); i <= s.ie(); ++i) {
                       const double u1 = cons(0, k, j, i);
                       const double u2 = cons(1, k, j, i);
                       const double u3 = cons(2, k, j, i);
                       const double q0 = cons(3, k, j, i);
                       derived(0, k, j, i) =
                           0.5 * q0 * (u1 * u1 + u2 * u2 + u3 * u3);
                   }
               });
}

double
BurgersPackage::estimateTimestep(Mesh& mesh, RankWorld& world,
                                 double fallback_dt) const
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "EstimateTimestep");
    const BlockShape s = mesh.config().blockShape();
    const KernelCosts costs{10.0, 3.0 * sizeof(double)};

    double dt = fallback_dt / config_.cfl;
    for (MeshBlock* block : mesh.ownedBlocks()) {
        ctx.setCurrentRank(block->rank());
        double block_dt = dt;
        RealArray4& cons = block->cons();
        const BlockGeometry& g = block->geom();
        parReduce(ctx, "EstTimeMesh", costs, ReduceOp::Min, block_dt,
                  s.ks(), s.ke(), s.js(), s.je(), s.is(), s.ie(),
                  [&](int k, int j, int i, double& acc) {
                      constexpr double tiny = 1e-12;
                      double cell_dt =
                          g.dx1 / (std::fabs(cons(0, k, j, i)) + tiny);
                      if (s.ndim >= 2)
                          cell_dt = std::min(
                              cell_dt,
                              g.dx2 / (std::fabs(cons(1, k, j, i)) + tiny));
                      if (s.ndim >= 3)
                          cell_dt = std::min(
                              cell_dt,
                              g.dx3 / (std::fabs(cons(2, k, j, i)) + tiny));
                      acc = std::min(acc, cell_dt);
                  });
        dt = std::min(dt, block_dt);
        recordSerial(ctx, "dt_reduce", 1.0);
    }
    // Global min across ranks: a real rendezvous on a rank team (min
    // is exact under any combination order, so the collective dt is
    // bitwise the 1-rank dt), accounting-only on the classic path.
    dt = world.allReduceValue(mesh.collectiveRank(), dt, CollOp::Min,
                              sizeof(double));
    recordSerial(ctx, "collective", 1.0);
    return config_.cfl * dt;
}

double
BurgersPackage::estimateTimestepPack(Mesh& mesh, MeshBlockPack& pack,
                                     RankWorld& world,
                                     double fallback_dt) const
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "EstimateTimestep");
    const BlockShape s = mesh.config().blockShape();
    const KernelCosts costs{10.0, 3.0 * sizeof(double)};
    const int nb = pack.numBlocks();

    // Single chunk-ordered min over the packed cell domain: exact
    // under any chunking, so the dt matches the per-block reduction
    // sequence bit for bit.
    double dt = fallback_dt / config_.cfl;
    parReducePack(
        ctx, "EstimateTimestep", "EstTimeMesh", costs, ReduceOp::Min,
        dt, pack.ranks(), nb, s.ks(), s.ke(), s.js(), s.je(), s.is(),
        s.ie(), [&](int b, int k, int j, double& acc) {
            BlockPackView& v = pack.view(b);
            const RealArray4& cons = *v.cons;
            for (int i = s.is(); i <= s.ie(); ++i) {
                constexpr double tiny = 1e-12;
                double cell_dt =
                    v.dx1 / (std::fabs(cons(0, k, j, i)) + tiny);
                if (s.ndim >= 2)
                    cell_dt = std::min(
                        cell_dt,
                        v.dx2 / (std::fabs(cons(1, k, j, i)) + tiny));
                if (s.ndim >= 3)
                    cell_dt = std::min(
                        cell_dt,
                        v.dx3 / (std::fabs(cons(2, k, j, i)) + tiny));
                acc = std::min(acc, cell_dt);
            }
        });
    for (int b = 0; b < nb; ++b)
        recordSerialAt(ctx, "EstimateTimestep", pack.ranks()[b],
                       "dt_reduce", 1.0);
    // Global min across ranks (exact; see estimateTimestep).
    dt = world.allReduceValue(mesh.collectiveRank(), dt, CollOp::Min,
                              sizeof(double));
    recordSerial(ctx, "collective", 1.0);
    return config_.cfl * dt;
}

double
BurgersPackage::massHistory(Mesh& mesh, RankWorld& world) const
{
    const ExecContext& ctx = mesh.ctx();
    PhaseScope scope(ctx.profiler(), "other");
    const BlockShape s = mesh.config().blockShape();
    const KernelCosts costs{2.0, 1.0 * sizeof(double)};

    // Per-block partials folded in global gid order (foldBlockPartials)
    // so the sum is bitwise independent of how blocks shard over ranks
    // — plain running accumulation would entangle the fold with the
    // decomposition.
    std::vector<BlockPartial> partials;
    partials.reserve(mesh.ownedBlocks().size());
    for (MeshBlock* block : mesh.ownedBlocks()) {
        ctx.setCurrentRank(block->rank());
        RealArray4& cons = block->cons();
        const double vol = block->geom().cellVolume();
        double block_mass = 0.0;
        parReduce(ctx, "MassHistory", costs, ReduceOp::Sum, block_mass,
                  s.ks(), s.ke(), s.js(), s.je(), s.is(), s.ie(),
                  [&](int k, int j, int i, double& acc) {
                      acc += cons(3, k, j, i) * vol;
                  });
        partials.push_back({block->gid(), block_mass});
    }
    const double mass =
        foldBlockPartials(mesh, world, std::move(partials));
    recordSerial(ctx, "collective", 1.0);
    return mass;
}

RefinementFlag
BurgersPackage::tagBlock(const MeshBlock& block,
                         const ExecContext& ctx) const
{
    require(block.hasData(),
            "gradient tagging requires numeric mode; use an analytic "
            "tagger in counting mode");
    const BlockShape& s = block.shape();
    // First-derivative indicator (the VIBE tagging kernel): maximum
    // index-space velocity jump over interior cells.
    const KernelCosts costs{120.0, 1.0 * sizeof(double)};
    double max_jump = 0.0;
    const RealArray4& cons = block.cons();
    parReduce(ctx, "FirstDerivative", costs, ReduceOp::Max, max_jump,
              s.ks(), s.ke(), s.js(), s.je(), s.is(), s.ie(),
              [&](int k, int j, int i, double& acc) {
                  double jump2 = 0.0;
                  for (int m = 0; m < 3; ++m) {
                      const double gx = 0.5 * (cons(m, k, j, i + 1) -
                                               cons(m, k, j, i - 1));
                      double gy = 0.0, gz = 0.0;
                      if (s.ndim >= 2)
                          gy = 0.5 * (cons(m, k, j + 1, i) -
                                      cons(m, k, j - 1, i));
                      if (s.ndim >= 3)
                          gz = 0.5 * (cons(m, k + 1, j, i) -
                                      cons(m, k - 1, j, i));
                      jump2 += gx * gx + gy * gy + gz * gz;
                  }
                  acc = std::max(acc, std::sqrt(jump2));
              });
    if (max_jump > config_.refineTol)
        return RefinementFlag::Refine;
    if (max_jump < config_.derefineTol)
        return RefinementFlag::Derefine;
    return RefinementFlag::None;
}

} // namespace vibe
