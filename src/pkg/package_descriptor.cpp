#include "pkg/package_descriptor.hpp"

namespace vibe {

// Whole-mesh sweeps default to the per-block loop in gid order — the
// exact sequence the pre-package driver ran, so packages only override
// these when they fuse differently.

void
PackageDescriptor::initialize(Mesh& mesh) const
{
    for (const auto& block : mesh.blocks())
        initializeBlock(mesh.ctx(), *block);
}

void
PackageDescriptor::calculateFluxes(Mesh& mesh) const
{
    for (const auto& block : mesh.blocks())
        calculateFluxesBlock(mesh, *block);
}

void
PackageDescriptor::fluxDivergence(Mesh& mesh) const
{
    for (const auto& block : mesh.blocks())
        fluxDivergenceBlock(mesh, *block);
}

} // namespace vibe
