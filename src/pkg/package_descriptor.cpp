#include "pkg/package_descriptor.hpp"

#include <algorithm>

namespace vibe {

double
foldBlockPartials(Mesh& mesh, RankWorld& world,
                  std::vector<BlockPartial> partials)
{
    std::vector<BlockPartial> gathered = world.allGatherVec(
        mesh.collectiveRank(), std::move(partials),
        static_cast<double>(sizeof(double)), CollAccount::Reduce);
    std::sort(gathered.begin(), gathered.end(),
              [](const BlockPartial& a, const BlockPartial& b) {
                  return a.gid < b.gid;
              });
    double total = 0.0;
    for (const BlockPartial& partial : gathered)
        total += partial.value;
    return total;
}

// Whole-mesh sweeps default to the per-block loop in gid order — the
// exact sequence the pre-package driver ran, so packages only override
// these when they fuse differently.

void
PackageDescriptor::initialize(Mesh& mesh) const
{
    for (MeshBlock* block : mesh.ownedBlocks())
        initializeBlock(mesh.ctx(), *block);
}

void
PackageDescriptor::calculateFluxes(Mesh& mesh) const
{
    for (MeshBlock* block : mesh.ownedBlocks())
        calculateFluxesBlock(mesh, *block);
}

void
PackageDescriptor::fluxDivergence(Mesh& mesh) const
{
    for (MeshBlock* block : mesh.ownedBlocks())
        fluxDivergenceBlock(mesh, *block);
}

} // namespace vibe
