/**
 * @file fv_ops.hpp
 * PDE-agnostic finite-volume operators shared by physics packages.
 *
 * The flux-divergence update dudt = -div(flux) depends only on the
 * face fluxes a package already computed — not on the PDE — so both
 * Burgers and advection delegate here. One definition means the
 * per-block task path and the fused pack path can never diverge
 * between packages, and the bitwise-equivalence guarantees proved for
 * one package transfer to the others.
 */
#pragma once

#include "exec/par_for.hpp"
#include "mesh/block_pack.hpp"
#include "mesh/mesh.hpp"

namespace vibe {

/** dudt = -div(flux) for one block (kernel "FluxDivergence"). */
inline void
fvFluxDivergenceBlock(Mesh& mesh, MeshBlock& block)
{
    const ExecContext& ctx = mesh.ctx();
    const BlockShape s = mesh.config().blockShape();
    const int ncomp = mesh.registry().ncompConserved();
    const int ndim = s.ndim;
    const KernelCosts costs{ncomp * ndim * 3.0,
                            ncomp * (2.0 * ndim + 1.0) * sizeof(double)};

    const BlockGeometry& g = block.geom();
    const double inv_dx[3] = {1.0 / g.dx1, 1.0 / g.dx2, 1.0 / g.dx3};
    RealArray4& dudt = block.dudt();
    parForAt(ctx, "FluxDivergence", block.rank(), "FluxDivergence",
             costs, s.ks(), s.ke(), s.js(), s.je(), s.is(), s.ie(),
             [&](int k, int j, int i) {
                 for (int n = 0; n < ncomp; ++n) {
                     double div = (block.flux(0)(n, k, j, i + 1) -
                                   block.flux(0)(n, k, j, i)) *
                                  inv_dx[0];
                     if (ndim >= 2)
                         div += (block.flux(1)(n, k, j + 1, i) -
                                 block.flux(1)(n, k, j, i)) *
                                inv_dx[1];
                     if (ndim >= 3)
                         div += (block.flux(2)(n, k + 1, j, i) -
                                 block.flux(2)(n, k, j, i)) *
                                inv_dx[2];
                     dudt(n, k, j, i) = -div;
                 }
             });
}

/** Fused-pack dudt = -div(flux) over all blocks (one launch). */
inline void
fvFluxDivergencePack(Mesh& mesh, MeshBlockPack& pack)
{
    const ExecContext& ctx = mesh.ctx();
    const BlockShape s = mesh.config().blockShape();
    const int ncomp = mesh.registry().ncompConserved();
    const int ndim = s.ndim;
    const KernelCosts costs{ncomp * ndim * 3.0,
                            ncomp * (2.0 * ndim + 1.0) * sizeof(double)};

    parForPack(
        ctx, "FluxDivergence", "FluxDivergence", costs, pack.ranks(),
        pack.numBlocks(), 0, 0, s.ks(), s.ke(), s.js(), s.je(), s.is(),
        s.ie(), [&](int, int b, int, int k, int j) {
            BlockPackView& v = pack.view(b);
            const double inv_dx[3] = {v.invDx1, v.invDx2, v.invDx3};
            const RealArray4& fx = *v.flux[0];
            const RealArray4& fy = *v.flux[1];
            const RealArray4& fz = *v.flux[2];
            RealArray4& dudt = *v.dudt;
            for (int i = s.is(); i <= s.ie(); ++i) {
                for (int n = 0; n < ncomp; ++n) {
                    double div =
                        (fx(n, k, j, i + 1) - fx(n, k, j, i)) *
                        inv_dx[0];
                    if (ndim >= 2)
                        div += (fy(n, k, j + 1, i) - fy(n, k, j, i)) *
                               inv_dx[1];
                    if (ndim >= 3)
                        div += (fz(n, k + 1, j, i) - fz(n, k, j, i)) *
                               inv_dx[2];
                    dudt(n, k, j, i) = -div;
                }
            }
        });
}

} // namespace vibe
