/**
 * @file package_registry.hpp
 * Name -> physics-package factory map, selected from the input deck.
 *
 * The deck knob is
 *
 *   <job>
 *   package = burgers      # or advection
 *
 * mirroring Parthenon's application selection. Built-in packages
 * (burgers, advection) are registered on first use; applications and
 * tests may register additional factories. The factory receives the
 * full ParameterInput so each package parses its own `<name>` block.
 */
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pkg/package_descriptor.hpp"
#include "util/parameter_input.hpp"

namespace vibe {

class PackageRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<PackageDescriptor>(
        const ParameterInput&)>;

    /** The process-wide registry, with built-ins pre-registered. */
    static PackageRegistry& instance();

    /** Register a package factory. Fatal on duplicate names. */
    void registerPackage(const std::string& name, Factory factory);

    /**
     * Instantiate package `name` from the deck. Fatal on an unknown
     * name, listing the registered packages in the message.
     */
    std::unique_ptr<PackageDescriptor>
    create(const std::string& name, const ParameterInput& pin) const;

    /** Registered package names, sorted. */
    std::vector<std::string> names() const;

    /** Shorthand: instantiate the package `<job> package` selects
     *  (default "burgers"). */
    static std::unique_ptr<PackageDescriptor>
    fromDeck(const ParameterInput& pin);

  private:
    PackageRegistry() = default;

    std::map<std::string, Factory> factories_;
};

} // namespace vibe
