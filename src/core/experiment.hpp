/**
 * @file experiment.hpp
 * The characterization harness: configure a workload (mesh size,
 * MeshBlockSize, #AMR Levels), run the instrumented AMR simulation
 * under a platform configuration's rank count, and evaluate the
 * performance model — one call per bar/point of every paper figure.
 */
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "driver/evolution_driver.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "obs/attribution.hpp"
#include "perfmodel/execution_model.hpp"
#include "perfmodel/platform.hpp"

namespace vibe {

/** One experiment point: workload x platform. */
struct ExperimentSpec
{
    // Workload (§II-F parameters).
    int meshSize = 128;   ///< Cells per dimension at the base level.
    int blockSize = 16;   ///< MeshBlockSize per dimension.
    int amrLevels = 3;    ///< Paper's "#AMR Levels" (1 = uniform).
    int ndim = 3;
    int numScalars = 8;
    int numGhost = 4;
    int ncycles = 10;     ///< Evolution cycles to simulate.
    /**
     * Physics package (PackageRegistry name, the `<job> package`
     * knob): "burgers" (the VIBE workload) or "advection". The
     * harness itself is package-agnostic.
     */
    std::string package = "burgers";
    /**
     * Numeric mode runs the real WENO5/HLL/RK2 solver (small configs,
     * examples, tests); counting mode evolves the identical mesh
     * structure with an analytic ripple tagger and skips kernel bodies
     * (large perf studies).
     */
    bool numeric = false;
    bool optimizeAuxMemory = false; ///< §VIII-B layout ablation.
    bool randomizeBufferKeys = true; ///< §VIII-A ablation.
    /**
     * Host threads for kernel execution (the `exec/num_threads` knob):
     * 1 = the serial fast path, >1 = a persistent ThreadPoolSpace.
     * Only affects wall-clock of numeric runs; recorded work and mesh
     * state are backend-independent.
     */
    int numThreads = 1;
    /**
     * Simulated ranks executing concurrently (the `exec/num_ranks`
     * knob): 1 runs the classic single-driver loop; >1 launches a
     * RankTeam — one driver thread per rank over a disjoint block
     * shard, all coupling through RankWorld — turning the §V rank
     * scaling from a model output into a measurement. Requires
     * `numeric`; results are bitwise identical to numRanks = 1.
     */
    int numRanks = 1;
    /**
     * Route boundary exchanges through the fused BoundaryPlan path
     * (the `exec/fused_boundaries` knob, default on). Off selects the
     * per-face path; results are bitwise identical either way, so the
     * benches sweep both to isolate the coalescing win.
     */
    bool fusedBoundaries = true;
    /**
     * Per-block cost source for load balancing (the `amr/lb_cost`
     * knob): "" defers to VIBE_LB_COST (default "uniform"); "measured"
     * feeds EMA-smoothed per-block wall clocks into the partitioner.
     */
    std::string lbCost;
    /**
     * Partition hysteresis (the `amr/lb_imbalance_trigger` knob): only
     * adopt a new assignment when the projected max/mean rank-cost
     * imbalance improves by at least this much (0 = always adopt).
     */
    double lbImbalanceTrigger = 0.0;
    /**
     * Extra deck parameters handed to the package factory verbatim as
     * {block, key, value} triples — the spec-level equivalent of
     * writing them in an input deck (e.g. {"reaction", "stiffness",
     * "6"} steepens the equilibrium solve for imbalance benches).
     */
    std::vector<std::array<std::string, 3>> packageParams;

    // Checkpoint / restart (numeric mode only).
    /** Capture a checkpoint every N cycles (0 = never). */
    std::int64_t checkpointEvery = 0;
    /** Destination checkpoint file (required when checkpointEvery > 0). */
    std::string checkpointPath;
    /** Drain snapshots to disk off-thread (double buffered). */
    bool checkpointAsync = true;
    /**
     * Supervised recovery: on a failed attempt, retry from the last
     * durable checkpoint up to this many times (0 = fail fast).
     */
    int maxRestarts = 0;
    /** Pause before each retry (real services back off; tests use 0). */
    double restartBackoffSeconds = 0.0;
    /**
     * Deterministic fault injection: rank `failRank` throws at cycle
     * `failCycle` (-1 = disarmed). When disarmed here, the
     * `VIBE_FAIL_RANK` / `VIBE_FAIL_CYCLE` environment knobs apply.
     */
    int failRank = -1;
    std::int64_t failCycle = -1;

    // Observability (the `<obs>` deck block; see obs/obs_config.hpp).
    /**
     * Chrome trace-event JSON destination ("" = tracing off). Empty
     * falls back to the VIBE_TRACE environment knob at construction.
     * The trace covers the final (successful) attempt only.
     */
    std::string tracePath;
    /**
     * Per-cycle JSONL heartbeat destination ("" = metrics off). Empty
     * falls back to VIBE_METRICS. Cycle records stream during the run;
     * a footer record with build/config identity closes the file.
     */
    std::string metricsPath;

    // Platform.
    PlatformConfig platform = PlatformConfig::gpu(1, 1);

    /** CFL-consistent fixed dt for counting mode (u_char = 1). */
    double fixedDt() const;
};

/** Everything measured + modeled for one experiment point. */
struct ExperimentResult
{
    ExperimentSpec spec;
    TimingReport report;

    // Workload facts (exact, from the instrumented run).
    std::int64_t zoneCycles = 0;
    std::int64_t commCells = 0;
    std::int64_t commFaces = 0;
    std::int64_t cellUpdates = 0;  ///< Interior-cell updates (2 stages).
    std::size_t finalBlocks = 0;
    std::size_t kokkosBytes = 0;
    std::vector<CycleStats> history;

    // Measured-run facts (the --measured benches read these).
    /** Wall seconds of initialize + evolve (all ranks). */
    double wallSeconds = 0;
    /** RankWorld traffic counters at the end of the run. */
    Traffic traffic;
    /** Real state bytes migrated by load balancing (sharded runs). */
    double migratedStorageBytes = 0;

    // Checkpoint / recovery facts (the robustness benches read these).
    /** Attempts beyond the first (0 on a clean run). */
    int restarts = 0;
    /** Wall seconds spent reading checkpoints + backing off. */
    double recoverySeconds = 0;
    /** Snapshots durably written by the final attempt. */
    int checkpointsWritten = 0;
    /** Collective capture seconds (on the critical path, all cycles). */
    double checkpointCaptureSeconds = 0;
    /** Encode+disk seconds (off-thread in async mode). */
    double checkpointDrainSeconds = 0;

    /** Run-total idle / critical-path attribution over `history`. */
    IdleSummary idle;

    /** Measured zone-cycles per wall second (0 if wall time is 0). */
    double measuredFom() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(zoneCycles) / wallSeconds
                   : 0.0;
    }

    /**
     * Mean boundary messages per cycle over the run (all ranks,
     * bounds + flux). The fused path coalesces this from
     * O(faces) to O(adjacent rank pairs) per phase.
     */
    double messagesPerCycle() const
    {
        if (history.empty())
            return 0.0;
        std::uint64_t total = 0;
        for (const CycleStats& c : history)
            total += c.boundaryMessages;
        return static_cast<double>(total) /
               static_cast<double>(history.size());
    }

    /** Mean modeled boundary bytes per cycle (invariant across paths). */
    double boundaryBytesPerCycle() const
    {
        if (history.empty())
            return 0.0;
        double total = 0;
        for (const CycleStats& c : history)
            total += c.boundaryBytes;
        return total / static_cast<double>(history.size());
    }

    /** Full profiler copy (opcode model, Table III, breakdowns). */
    KernelProfiler profiler;

    /** zone-cycles/sec under the modeled platform. */
    double fom() const { return report.fom; }
    bool oom() const { return report.memory.oom; }
    /** Serial fraction of total modeled time. */
    double serialFraction() const
    {
        return report.totalTime > 0
                   ? report.serialTime / report.totalTime
                   : 0.0;
    }
    /**
     * Multiplier converting this run's totals to a paper-length
     * production run (the calibration's assumed ~400 cycles).
     */
    double paperScale() const;
};

/** Runs one experiment point end to end. */
class Experiment
{
  public:
    /**
     * Captures the spec; empty trace/metrics paths pick up the
     * VIBE_TRACE / VIBE_METRICS environment knobs here, so every
     * harness entry point honors them uniformly.
     */
    explicit Experiment(const ExperimentSpec& spec);

    /**
     * Build the workload, simulate, and evaluate the platform model.
     * With checkpointing + maxRestarts configured this is a supervised
     * recovery loop: a failed attempt (e.g. an injected rank death)
     * tears the team down, re-reads the last durable checkpoint, and
     * retries until success or the restart budget is exhausted.
     */
    ExperimentResult run() const;

    /**
     * Evaluate `base` across candidate ranks-per-GPU values and return
     * the best non-OOM result (the paper's "BestR" series), or the
     * lowest-rank OOM result if every candidate OOMs.
     *
     * @param best_ranks_per_gpu If non-null, receives the winning R.
     */
    static ExperimentResult
    bestRank(ExperimentSpec base, int gpus,
             const std::vector<int>& ranks_per_gpu_candidates,
             int* best_ranks_per_gpu = nullptr);

  private:
    /**
     * One attempt: fresh initialize, or restore when `restore` set.
     * `writer` (owned by the retry loop in run(), so it outlives an
     * unwinding attempt) receives the periodic snapshots when set.
     */
    ExperimentResult runAttempt(FaultInjector* injector,
                                const CheckpointImage* restore,
                                CheckpointWriter* writer,
                                MetricsWriter* writer_metrics) const;

    ExperimentSpec spec_;
};

} // namespace vibe
