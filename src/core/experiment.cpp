#include "core/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "comm/rank_world.hpp"
#include "driver/fault_injector.hpp"
#include "driver/rank_team.hpp"
#include "driver/tagger.hpp"
#include "io/checkpoint.hpp"
#include "io/checkpoint_writer.hpp"
#include "io/metrics_writer.hpp"
#include "io/trace_writer.hpp"
#include "mesh/variable.hpp"
#include "obs/obs_config.hpp"
#include "obs/trace.hpp"
#include "pkg/package_registry.hpp"
#include "util/logging.hpp"

namespace vibe {

Experiment::Experiment(const ExperimentSpec& spec) : spec_(spec)
{
    const ObsConfig env = ObsConfig::fromEnv();
    if (spec_.tracePath.empty())
        spec_.tracePath = env.tracePath;
    if (spec_.metricsPath.empty())
        spec_.metricsPath = env.metricsPath;
}

double
ExperimentSpec::fixedDt() const
{
    // CFL-consistent dt at the finest resolution with unit
    // characteristic speed.
    const double dx_finest =
        1.0 / (static_cast<double>(meshSize) *
               static_cast<double>(1 << (amrLevels - 1)));
    return 0.4 * dx_finest;
}

double
ExperimentResult::paperScale() const
{
    const MemoryModelConstants memory_defaults{};
    return history.empty()
               ? 1.0
               : memory_defaults.paperRunCycles /
                     static_cast<double>(history.size());
}

namespace {

/**
 * The run footer closes the JSONL stream: build/config identity as
 * strings, run totals as numbers. Written only for a successful
 * attempt, so its presence doubles as a completion marker.
 */
void
writeRunFooter(MetricsWriter& metrics, const ExperimentSpec& spec,
               const ExperimentResult& result)
{
    std::map<std::string, std::string> identity;
    identity["git"] = buildDescribe();
    identity["package"] = spec.package;
    identity["mode"] = spec.numeric ? "numeric" : "counting";

    MetricsRegistry totals;
    totals.set("ranks", spec.numRanks);
    totals.set("threads", spec.numThreads);
    totals.set("cycles", static_cast<double>(result.history.size()));
    totals.set("wall_seconds", result.wallSeconds);
    totals.set("fom.zone_cycles_per_s", result.measuredFom());
    totals.set("zone_cycles", static_cast<double>(result.zoneCycles));
    totals.set("restarts", result.restarts);
    totals.set("checkpoint.snapshots", result.checkpointsWritten);
    totals.set("traffic.remote_messages",
               static_cast<double>(result.traffic.remoteMessages));
    totals.set("traffic.remote_bytes", result.traffic.remoteBytes);
    totals.set("task.wall_seconds", result.idle.taskWallSeconds);
    totals.set("task.busy_seconds", result.idle.busySeconds);
    totals.set("task.idle_seconds", result.idle.idleSeconds);
    totals.set("task.critical_path_seconds",
               result.idle.criticalPathSeconds);
    totals.set("task.idle_fraction", result.idle.idleFraction());
    totals.set("trace.dropped_events",
               static_cast<double>(TraceRecorder::instance().dropped()));
    metrics.writeFooter(identity, totals);
}

} // namespace

ExperimentResult
Experiment::run() const
{
    const ExperimentSpec& spec = spec_;
    require(spec.meshSize % spec.blockSize == 0,
            "mesh size must be a multiple of the block size (§II-F)");
    if (spec.numRanks < 1)
        fatal("numRanks must be at least 1, got ", spec.numRanks);
    if (spec.numRanks > 1 && !spec.numeric)
        fatal("rank-sharded execution (numRanks > 1) requires numeric "
              "mode; counting studies model ranks via the platform");
    if (spec.checkpointEvery > 0 && spec.checkpointPath.empty())
        fatal("checkpointEvery is set but checkpointPath is empty");
    if (spec.checkpointEvery > 0 && !spec.numeric)
        fatal("checkpointing requires numeric mode; counting runs "
              "materialize no block state to capture");
    if (spec.maxRestarts > 0 && spec.checkpointEvery <= 0)
        fatal("maxRestarts needs checkpointEvery > 0: recovery replays "
              "from the last durable checkpoint");

    // One injector spans every attempt: it fires once, so the retried
    // run sails past the (rank, cycle) that killed the first attempt.
    FaultInjector injector(spec.failRank, spec.failCycle);
    if (!injector.armed())
        injector = FaultInjector::fromEnv();

    int restarts = 0;
    double recovery_seconds = 0;
    std::optional<CheckpointImage> restore;
    const bool tracing = !spec.tracePath.empty();
    for (;;) {
        // The writer lives in the retry scope, not the attempt: when an
        // attempt unwinds, the async drain still finishes the last
        // deposited snapshot, and only this scope can then ask whether
        // anything durable actually reached disk before re-reading it.
        std::optional<CheckpointWriter> writer;
        if (spec.checkpointEvery > 0)
            writer.emplace(spec.checkpointPath, spec.checkpointAsync);
        // The metrics stream likewise restarts per attempt (truncating
        // open): the file always describes one coherent run, and a
        // retried run's heartbeat starts over at its restored cycle.
        std::optional<MetricsWriter> metrics;
        if (!spec.metricsPath.empty())
            metrics.emplace(spec.metricsPath);
        // Tracing covers one attempt: start() clears the buffers, so a
        // failed attempt's events never leak into the retry's timeline.
        if (tracing)
            TraceRecorder::instance().start();
        try {
            ExperimentResult result =
                runAttempt(injector.armed() ? &injector : nullptr,
                           restore ? &*restore : nullptr,
                           writer ? &*writer : nullptr,
                           metrics ? &*metrics : nullptr);
            result.restarts = restarts;
            result.recoverySeconds = recovery_seconds;
            result.idle = attributeIdle(result.history);
            if (tracing) {
                const std::vector<TraceEvent> events =
                    TraceRecorder::instance().drain();
                writeChromeTrace(spec.tracePath, events);
            }
            if (metrics)
                writeRunFooter(*metrics, spec, result);
            return result;
        } catch (const RestoreError&) {
            // Restore-validation failures are deterministic: the same
            // image re-fails identically on every retry, so surface the
            // real cause instead of burning the restart budget on it.
            if (tracing)
                TraceRecorder::instance().stop();
            throw;
        } catch (const std::exception& e) {
            // Leave no recorder armed behind a propagating failure:
            // later experiments in this process must start clean.
            if (tracing)
                TraceRecorder::instance().stop();
            if (spec.checkpointEvery <= 0 ||
                restarts >= spec.maxRestarts)
                throw;
            ++restarts;
            const auto recover_start = std::chrono::steady_clock::now();
            // Drain any snapshot the dying attempt deposited; a drain
            // failure is survivable — it only limits what this restart
            // can restore from.
            try {
                writer->finish();
            } catch (const std::exception& drain) {
                warn("checkpoint drain failed during recovery: ",
                     drain.what());
            }
            // Only snapshots THIS run's writer produced are eligible:
            // gating on its count keeps a failure that lands before the
            // first durable snapshot from dying on a missing file (the
            // retry simply starts fresh), and means a stale checkpoint
            // left at the same path by an unrelated earlier run is
            // never restored silently.
            const bool durable = writer->snapshots() > 0;
            if (durable)
                warn("experiment attempt failed (", e.what(),
                     "); restarting from checkpoint '",
                     spec.checkpointPath, "' (restart ", restarts,
                     " of ", spec.maxRestarts, ")");
            else if (restore)
                warn("experiment attempt failed (", e.what(),
                     ") before writing a new checkpoint; reusing the "
                     "last restored image (restart ", restarts, " of ",
                     spec.maxRestarts, ")");
            else
                warn("experiment attempt failed (", e.what(),
                     ") before the first checkpoint was durable; "
                     "retrying from a fresh start (restart ", restarts,
                     " of ", spec.maxRestarts, ")");
            if (spec.restartBackoffSeconds > 0)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(
                        spec.restartBackoffSeconds));
            // The reader validates magic/version/CRC, so a snapshot
            // truncated by the failure is rejected loudly rather than
            // silently restoring garbage (the writer's tmp+rename
            // makes that window atomic anyway).
            if (durable)
                restore = CheckpointReader::read(spec.checkpointPath);
            recovery_seconds +=
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - recover_start)
                    .count();
        }
    }
}

ExperimentResult
Experiment::runAttempt(FaultInjector* injector,
                       const CheckpointImage* restore,
                       CheckpointWriter* writer,
                       MetricsWriter* metrics) const
{
    const ExperimentSpec& spec = spec_;
    ExperimentResult result;
    result.spec = spec;

    // The package is selected by name through the registry, exactly as
    // a deck's `<job> package` knob would; spec fields that belong to
    // the package travel as deck parameters.
    ParameterInput package_params;
    package_params.set("burgers", "num_scalars",
                       std::to_string(spec.numScalars));
    for (const auto& param : spec.packageParams)
        package_params.set(param[0], param[1], param[2]);
    std::unique_ptr<PackageDescriptor> package =
        PackageRegistry::instance().create(spec.package, package_params);
    VariableRegistry registry = package->buildRegistry();

    MeshConfig mesh_config;
    mesh_config.ndim = spec.ndim;
    mesh_config.nx1 = mesh_config.nx2 = mesh_config.nx3 = spec.meshSize;
    mesh_config.blockNx1 = mesh_config.blockNx2 = mesh_config.blockNx3 =
        spec.blockSize;
    mesh_config.numGhost = spec.numGhost;
    mesh_config.amrLevels = spec.amrLevels;
    mesh_config.optimizeAuxMemory = spec.optimizeAuxMemory;
    mesh_config.numThreads = spec.numThreads;
    mesh_config.numRanks = spec.numRanks;
    mesh_config.fusedBoundaries = spec.fusedBoundaries;

    DriverConfig driver_config;
    driver_config.ncycles = spec.ncycles;
    driver_config.fixedDt = spec.fixedDt();
    driver_config.randomizeBufferKeys = spec.randomizeBufferKeys;
    driver_config.checkpointEvery = spec.checkpointEvery;
    driver_config.checkpointPath = spec.checkpointPath;
    driver_config.checkpointAsync = spec.checkpointAsync;
    driver_config.lbCost = spec.lbCost.empty()
                               ? envLbCostMode(LbCostMode::Uniform)
                               : lbCostModeFromName(spec.lbCost);
    driver_config.lbImbalanceTrigger = spec.lbImbalanceTrigger;

    if (spec.numRanks > 1) {
        // Rank-sharded measured path: one driver per rank on its own
        // thread, coupled only through RankWorld. Per-rank
        // instrumentation is merged into the run-wide report after.
        RankTeam team(mesh_config, registry, *package, driver_config,
                      [&package](int) {
                          return std::make_unique<GradientTagger>(
                              *package);
                      });
        if (writer)
            team.setCheckpointWriter(writer);
        if (metrics)
            team.setMetricsWriter(metrics);
        if (injector)
            team.setFaultInjector(injector);
        if (restore)
            team.setRestoreImage(restore);
        team.run();

        if (writer) {
            writer->finish();
            result.checkpointsWritten =
                static_cast<int>(writer->snapshots());
            result.checkpointDrainSeconds = writer->drainSeconds();
            result.checkpointCaptureSeconds =
                team.driver(0).checkpointCaptureSeconds();
        }

        KernelProfiler profiler;
        MemoryTracker tracker;
        team.mergeInstrumentation(&profiler, &tracker);

        result.zoneCycles = team.zoneCycles();
        result.commCells = team.commCells();
        result.commFaces = team.commFaces();
        result.cellUpdates = 2 * team.zoneCycles();
        result.finalBlocks = team.mesh(0).numBlocks();
        result.kokkosBytes = tracker.currentBytes();
        result.history = team.aggregatedHistory();
        result.profiler = profiler;
        result.wallSeconds = team.wallSeconds();
        result.traffic = team.world().traffic();
        result.migratedStorageBytes = team.migratedStorageBytes();

        EvolutionDriver& driver0 = team.driver(0);
        RunArtifacts artifacts;
        artifacts.profiler = &result.profiler;
        artifacts.ncycles = driver0.cycle();
        artifacts.zoneCycles = team.zoneCycles();
        artifacts.commCells = team.commCells();
        artifacts.kokkosBytes = tracker.currentBytes();
        artifacts.remoteWireBytes =
            driver0.bufferCache().remoteWireBytes();
        artifacts.remoteMsgsPerCycle =
            driver0.cycle() > 0
                ? static_cast<double>(
                      team.world().traffic().remoteMessages) /
                      static_cast<double>(driver0.cycle())
                : 0.0;
        artifacts.finalBlocks = team.mesh(0).numBlocks();

        const ExecutionModel model;
        result.report = model.evaluate(artifacts, spec.platform);
        return result;
    }

    KernelProfiler profiler;
    MemoryTracker tracker;
    // The MeshConfig carries the exec/num_threads knob; counting mode
    // never executes kernel bodies, so spawning a pool there would be
    // pure startup/teardown overhead across sweep points.
    ExecContext ctx(spec.numeric ? ExecMode::Execute : ExecMode::Count,
                    &profiler, &tracker,
                    makeExecutionSpace(
                        spec.numeric ? mesh_config.numThreads : 1));

    Mesh mesh(mesh_config, registry, ctx);

    RankWorld world(spec.platform.ranks);

    GradientTagger gradient_tagger(*package);
    // Counting-mode feature: a compact pulsating blob (the Gaussian
    // pulse of the VIBE initial condition). Solid mode keeps the
    // refined-block count roughly independent of MeshBlockSize, the
    // regime the paper's §IV-B ratios exhibit.
    SphericalWaveTagger::Params wave_params;
    wave_params.solid = true;
    wave_params.rMin = 0.06;
    wave_params.rMax = 0.11;
    wave_params.width = 0.005;
    // Tagging halo of one block width: a coarse block "sees" the
    // feature from further away, the over-refinement mechanism that
    // amplifies cell updates at large MeshBlockSize (Fig. 1a).
    wave_params.haloCells = 0.25 * spec.blockSize;
    wave_params.derefineFactor = 1.8;
    SphericalWaveTagger wave_tagger(wave_params);
    RefinementTagger& tagger =
        spec.numeric ? static_cast<RefinementTagger&>(gradient_tagger)
                     : static_cast<RefinementTagger&>(wave_tagger);

    EvolutionDriver driver(mesh, *package, world, tagger, driver_config);
    if (writer)
        driver.setCheckpointWriter(writer);
    if (metrics)
        driver.setMetricsWriter(metrics);
    if (injector)
        driver.setFaultInjector(injector);
    const auto wall_start = std::chrono::steady_clock::now();
    if (restore)
        driver.initializeFromCheckpoint(*restore);
    else
        driver.initialize();
    driver.run();
    result.wallSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             wall_start)
                             .count();
    result.traffic = world.traffic();

    if (writer) {
        writer->finish();
        result.checkpointsWritten =
            static_cast<int>(writer->snapshots());
        result.checkpointDrainSeconds = writer->drainSeconds();
        result.checkpointCaptureSeconds =
            driver.checkpointCaptureSeconds();
    }

    result.zoneCycles = driver.zoneCycles();
    result.commCells = driver.commCells();
    result.commFaces = driver.commFaces();
    result.cellUpdates = 2 * driver.zoneCycles(); // two RK stages
    result.finalBlocks = mesh.numBlocks();
    result.kokkosBytes = tracker.currentBytes();
    result.history = driver.history();
    result.profiler = profiler;

    RunArtifacts artifacts;
    artifacts.profiler = &result.profiler;
    artifacts.ncycles = driver.cycle();
    artifacts.zoneCycles = driver.zoneCycles();
    artifacts.commCells = driver.commCells();
    artifacts.kokkosBytes = tracker.currentBytes();
    artifacts.remoteWireBytes = driver.bufferCache().remoteWireBytes();
    artifacts.remoteMsgsPerCycle =
        driver.cycle() > 0
            ? static_cast<double>(world.traffic().remoteMessages) /
                  static_cast<double>(driver.cycle())
            : 0.0;
    artifacts.finalBlocks = mesh.numBlocks();

    const ExecutionModel model;
    result.report = model.evaluate(artifacts, spec.platform);
    return result;
}

ExperimentResult
Experiment::bestRank(ExperimentSpec base, int gpus,
                     const std::vector<int>& ranks_per_gpu_candidates,
                     int* best_ranks_per_gpu)
{
    require(!ranks_per_gpu_candidates.empty(),
            "bestRank needs at least one candidate");
    std::optional<ExperimentResult> best;
    int best_r = ranks_per_gpu_candidates.front();
    std::optional<ExperimentResult> first_oom;

    for (int r : ranks_per_gpu_candidates) {
        ExperimentSpec spec = base;
        spec.platform = PlatformConfig::gpu(gpus, gpus * r,
                                            base.platform.nodes);
        ExperimentResult result = Experiment(spec).run();
        if (result.oom()) {
            if (!first_oom)
                first_oom = std::move(result);
            continue;
        }
        if (!best || result.fom() > best->fom()) {
            best = std::move(result);
            best_r = r;
        }
    }
    if (best_ranks_per_gpu)
        *best_ranks_per_gpu = best_r;
    if (best)
        return *best;
    require(first_oom.has_value(), "bestRank produced no results");
    return *first_oom;
}

} // namespace vibe
