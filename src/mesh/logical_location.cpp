#include "mesh/logical_location.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace vibe {

LogicalLocation
LogicalLocation::parent() const
{
    require(level > 0, "level-0 block has no parent");
    return {level - 1, lx1 >> 1, lx2 >> 1, lx3 >> 1};
}

LogicalLocation
LogicalLocation::child(int ox1, int ox2, int ox3) const
{
    require(ox1 >= 0 && ox1 <= 1 && ox2 >= 0 && ox2 <= 1 && ox3 >= 0 &&
                ox3 <= 1,
            "child octant selectors must be 0 or 1");
    return {level + 1, 2 * lx1 + ox1, 2 * lx2 + ox2, 2 * lx3 + ox3};
}

int
LogicalLocation::childIndexInParent() const
{
    return static_cast<int>((lx1 & 1) | ((lx2 & 1) << 1) | ((lx3 & 1) << 2));
}

bool
LogicalLocation::contains(const LogicalLocation& other) const
{
    if (other.level < level)
        return false;
    const int shift = other.level - level;
    return (other.lx1 >> shift) == lx1 && (other.lx2 >> shift) == lx2 &&
           (other.lx3 >> shift) == lx3;
}

std::uint64_t
mortonInterleave(std::uint64_t x, std::uint64_t y, std::uint64_t z)
{
    auto spread = [](std::uint64_t v) {
        // Spread the low 21 bits of v so consecutive bits are 3 apart.
        v &= 0x1fffff;
        v = (v | (v << 32)) & 0x1f00000000ffffull;
        v = (v | (v << 16)) & 0x1f0000ff0000ffull;
        v = (v | (v << 8)) & 0x100f00f00f00f00full;
        v = (v | (v << 4)) & 0x10c30c30c30c30c3ull;
        v = (v | (v << 2)) & 0x1249249249249249ull;
        return v;
    };
    return spread(x) | (spread(y) << 1) | (spread(z) << 2);
}

std::uint64_t
LogicalLocation::mortonKey(int reference_level) const
{
    require(reference_level >= level,
            "mortonKey reference level must be >= block level");
    const int shift = reference_level - level;
    return mortonInterleave(static_cast<std::uint64_t>(lx1) << shift,
                            static_cast<std::uint64_t>(lx2) << shift,
                            static_cast<std::uint64_t>(lx3) << shift);
}

std::string
LogicalLocation::str() const
{
    std::ostringstream oss;
    oss << "(L" << level << ": " << lx1 << "," << lx2 << "," << lx3 << ")";
    return oss.str();
}

std::size_t
LogicalLocationHash::operator()(const LogicalLocation& loc) const
{
    // Combine the level with the per-level Morton code; blocks at
    // different levels with the same indices must hash differently.
    std::uint64_t h = mortonInterleave(static_cast<std::uint64_t>(loc.lx1),
                                       static_cast<std::uint64_t>(loc.lx2),
                                       static_cast<std::uint64_t>(loc.lx3));
    h ^= static_cast<std::uint64_t>(loc.level) * 0x9e3779b97f4a7c15ull;
    // Final avalanche (splitmix64 tail).
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(h ^ (h >> 31));
}

} // namespace vibe
