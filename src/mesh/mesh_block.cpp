#include "mesh/mesh_block.hpp"

#include "exec/memory_tracker.hpp"
#include "util/logging.hpp"

namespace vibe {

MeshBlock::MeshBlock(const LogicalLocation& loc, const BlockShape& shape,
                     const BlockGeometry& geom,
                     const VariableRegistry& registry,
                     const ExecContext& ctx, bool own_recon)
    : loc_(loc), shape_(shape), geom_(geom), registry_(&registry),
      tracker_(ctx.tracker()),
      mode_(ctx.executing() ? DataMode::Real : DataMode::Virtual)
{
    cost_ = static_cast<double>(shape_.interiorCells());
    allocateAll(ctx, own_recon);
}

MeshBlock::~MeshBlock()
{
    if (tracker_)
        for (const auto& [label, bytes] : registered_)
            tracker_->deallocate(label, bytes);
}

void
MeshBlock::registerAllocation(const ExecContext& ctx,
                              const std::string& label, std::size_t bytes)
{
    data_bytes_ += bytes;
    if (ctx.tracker()) {
        ctx.tracker()->allocate(label, bytes);
        registered_.emplace_back(label, bytes);
    }
}

void
MeshBlock::allocateAll(const ExecContext& ctx, bool own_recon)
{
    const int ncons = registry_->ncompConserved();
    const int nder = registry_->ncompDerived();
    const int ni = shape_.ni();
    const int nj = shape_.nj();
    const int nk = shape_.nk();
    const auto cell_bytes = [&](int nvar, int dk, int dj, int di) {
        return static_cast<std::size_t>(nvar) * (nk + dk) * (nj + dj) *
               (ni + di) * sizeof(double);
    };

    if (mode_ == DataMode::Real) {
        cons_ = RealArray4(ncons, nk, nj, ni);
        cons0_ = RealArray4(ncons, nk, nj, ni);
        dudt_ = RealArray4(ncons, nk, nj, ni);
        derived_ = RealArray4(nder, nk, nj, ni);
        flux_[0] = RealArray4(ncons, nk, nj, ni + 1);
        if (shape_.ndim >= 2)
            flux_[1] = RealArray4(ncons, nk, nj + 1, ni);
        if (shape_.ndim >= 3)
            flux_[2] = RealArray4(ncons, nk + 1, nj, ni);
        if (own_recon) {
            for (int d = 0; d < shape_.ndim; ++d) {
                recon_l_owned_[d] = RealArray4(ncons, nk, nj, ni);
                recon_r_owned_[d] = RealArray4(ncons, nk, nj, ni);
                recon_l_[d] = &recon_l_owned_[d];
                recon_r_[d] = &recon_r_owned_[d];
            }
        }
    }

    registerAllocation(ctx, "mesh/cons", cell_bytes(ncons, 0, 0, 0));
    registerAllocation(ctx, "mesh/cons0", cell_bytes(ncons, 0, 0, 0));
    registerAllocation(ctx, "mesh/dudt", cell_bytes(ncons, 0, 0, 0));
    registerAllocation(ctx, "mesh/derived", cell_bytes(nder, 0, 0, 0));
    registerAllocation(ctx, "mesh/flux", cell_bytes(ncons, 0, 0, 1));
    if (shape_.ndim >= 2)
        registerAllocation(ctx, "mesh/flux", cell_bytes(ncons, 0, 1, 0));
    if (shape_.ndim >= 3)
        registerAllocation(ctx, "mesh/flux", cell_bytes(ncons, 1, 0, 0));
    if (own_recon) {
        // The paper's auxiliary-variable term (§VIII-B): two face states
        // per direction at full block resolution.
        registerAllocation(
            ctx, "mesh/recon",
            static_cast<std::size_t>(2 * shape_.ndim) *
                cell_bytes(ncons, 0, 0, 0));
    }
}

void
MeshBlock::lendRecon(RealArray4* l[3], RealArray4* r[3])
{
    for (int d = 0; d < 3; ++d) {
        recon_l_[d] = l[d];
        recon_r_[d] = r[d];
    }
}

} // namespace vibe
