#include "mesh/mesh_block.hpp"

#include "exec/memory_tracker.hpp"
#include "mesh/block_memory_pool.hpp"
#include "util/logging.hpp"

namespace vibe {

MeshBlock::MeshBlock(const LogicalLocation& loc, const BlockShape& shape,
                     const BlockGeometry& geom,
                     const VariableRegistry& registry,
                     const ExecContext& ctx, bool own_recon,
                     BlockMemoryPool* pool, bool shadow)
    : loc_(loc), shape_(shape), geom_(geom), registry_(&registry),
      tracker_(ctx.tracker()), pool_(pool),
      mode_(shadow ? DataMode::Shadow
                   : (ctx.executing() ? DataMode::Real
                                      : DataMode::Virtual)),
      own_recon_(own_recon)
{
    cost_ = static_cast<double>(shape_.interiorCells());
    if (mode_ == DataMode::Shadow) {
        // Structure only: compute the canonical byte footprint (load
        // balancing and the memory model need it on every replica) but
        // allocate nothing and register nothing.
        const int ncons = registry_->ncompConserved();
        const int nder = registry_->ncompDerived();
        const int ni = shape_.ni(), nj = shape_.nj(), nk = shape_.nk();
        const auto cell_bytes = [&](int nvar, int dk, int dj, int di) {
            return static_cast<std::size_t>(nvar) * (nk + dk) *
                   (nj + dj) * (ni + di) * sizeof(double);
        };
        data_bytes_ = 3 * cell_bytes(ncons, 0, 0, 0) +
                      cell_bytes(nder, 0, 0, 0) +
                      cell_bytes(ncons, 0, 0, 1);
        if (shape_.ndim >= 2)
            data_bytes_ += cell_bytes(ncons, 0, 1, 0);
        if (shape_.ndim >= 3)
            data_bytes_ += cell_bytes(ncons, 1, 0, 0);
        if (own_recon_)
            data_bytes_ += static_cast<std::size_t>(2 * shape_.ndim) *
                           cell_bytes(ncons, 0, 0, 0);
        return;
    }
    allocateAll(ctx, own_recon);
}

MeshBlock::~MeshBlock()
{
    releaseAll();
}

void
MeshBlock::releaseAll()
{
    if (pool_ && mode_ == DataMode::Real) {
        pool_->release(cons_.releaseStorage());
        pool_->release(cons0_.releaseStorage());
        pool_->release(dudt_.releaseStorage());
        pool_->release(derived_.releaseStorage());
        for (int d = 0; d < 3; ++d) {
            pool_->release(flux_[d].releaseStorage());
            // Only owned recon scratch goes back; lent (shared) scratch
            // belongs to the Mesh.
            pool_->release(recon_l_owned_[d].releaseStorage());
            pool_->release(recon_r_owned_[d].releaseStorage());
        }
    }
    if (tracker_)
        for (const auto& [label, bytes] : registered_)
            tracker_->deallocate(label, bytes);
    registered_.clear();
}

void
MeshBlock::materialize(const ExecContext& ctx, BlockMemoryPool* pool)
{
    require(mode_ == DataMode::Shadow,
            "materialize() requires a Shadow block: ", loc_.str());
    pool_ = pool;
    tracker_ = ctx.tracker();
    mode_ = ctx.executing() ? DataMode::Real : DataMode::Virtual;
    data_bytes_ = 0; // allocateAll re-accumulates the identical total
    allocateAll(ctx, own_recon_);
}

void
MeshBlock::dematerialize()
{
    require(mode_ != DataMode::Shadow,
            "dematerialize() on an already-shadow block: ", loc_.str());
    releaseAll();
    if (mode_ == DataMode::Real) {
        // Unpooled arrays (or a Virtual block's nothing) still need
        // their extents cleared so any stale view faults loudly.
        cons_ = RealArray4();
        cons0_ = RealArray4();
        dudt_ = RealArray4();
        derived_ = RealArray4();
        for (int d = 0; d < 3; ++d) {
            flux_[d] = RealArray4();
            recon_l_owned_[d] = RealArray4();
            recon_r_owned_[d] = RealArray4();
            if (own_recon_) {
                recon_l_[d] = nullptr;
                recon_r_[d] = nullptr;
            }
        }
    }
    mode_ = DataMode::Shadow;
}

std::size_t
MeshBlock::serializedStateCount() const
{
    const std::size_t cells = static_cast<std::size_t>(shape_.ni()) *
                              shape_.nj() * shape_.nk();
    return cells * (static_cast<std::size_t>(
                        registry_->ncompConserved()) +
                    registry_->ncompDerived());
}

std::vector<double>
MeshBlock::serializeState() const
{
    require(mode_ == DataMode::Real,
            "serializeState() requires materialized data: ", loc_.str());
    std::vector<double> payload;
    payload.reserve(serializedStateCount());
    payload.insert(payload.end(), cons_.data(),
                   cons_.data() + cons_.size());
    payload.insert(payload.end(), derived_.data(),
                   derived_.data() + derived_.size());
    return payload;
}

void
MeshBlock::deserializeState(const std::vector<double>& payload)
{
    require(mode_ == DataMode::Real,
            "deserializeState() requires materialized storage: ",
            loc_.str());
    require(payload.size() == cons_.size() + derived_.size(),
            "migrated block payload size mismatch for ", loc_.str(),
            ": got ", payload.size(), ", expected ",
            cons_.size() + derived_.size());
    std::copy(payload.begin(),
              payload.begin() + static_cast<std::ptrdiff_t>(cons_.size()),
              cons_.data());
    std::copy(payload.begin() + static_cast<std::ptrdiff_t>(cons_.size()),
              payload.end(), derived_.data());
}

void
MeshBlock::registerAllocation(const ExecContext& ctx,
                              const std::string& label, std::size_t bytes)
{
    data_bytes_ += bytes;
    if (ctx.tracker()) {
        ctx.tracker()->allocate(label, bytes);
        registered_.emplace_back(label, bytes);
    }
}

void
MeshBlock::allocateAll(const ExecContext& ctx, bool own_recon)
{
    const int ncons = registry_->ncompConserved();
    const int nder = registry_->ncompDerived();
    const int ni = shape_.ni();
    const int nj = shape_.nj();
    const int nk = shape_.nk();
    const auto cell_bytes = [&](int nvar, int dk, int dj, int di) {
        return static_cast<std::size_t>(nvar) * (nk + dk) * (nj + dj) *
               (ni + di) * sizeof(double);
    };

    if (mode_ == DataMode::Real) {
        // Pooled path: recycled storage, and buffers whose every cell
        // is written before it is read (fluxes, recon scratch, dudt)
        // skip the clearing pass — state-carrying arrays are zeroed in
        // a single assign, so results are bit-identical to the
        // allocate-and-zero path.
        const auto make = [&](int nvar, int dk, int dj, int di,
                              bool zero) {
            if (pool_) {
                const std::size_t count = static_cast<std::size_t>(
                                              nvar) *
                                          (nk + dk) * (nj + dj) *
                                          (ni + di);
                return RealArray4(nvar, nk + dk, nj + dj, ni + di,
                                  pool_->acquire(count), zero);
            }
            return RealArray4(nvar, nk + dk, nj + dj, ni + di);
        };
        cons_ = make(ncons, 0, 0, 0, true);
        cons0_ = make(ncons, 0, 0, 0, true);
        dudt_ = make(ncons, 0, 0, 0, false);
        derived_ = make(nder, 0, 0, 0, true);
        flux_[0] = make(ncons, 0, 0, 1, false);
        if (shape_.ndim >= 2)
            flux_[1] = make(ncons, 0, 1, 0, false);
        if (shape_.ndim >= 3)
            flux_[2] = make(ncons, 1, 0, 0, false);
        if (own_recon) {
            for (int d = 0; d < shape_.ndim; ++d) {
                recon_l_owned_[d] = make(ncons, 0, 0, 0, false);
                recon_r_owned_[d] = make(ncons, 0, 0, 0, false);
                recon_l_[d] = &recon_l_owned_[d];
                recon_r_[d] = &recon_r_owned_[d];
            }
        }
    }

    registerAllocation(ctx, "mesh/cons", cell_bytes(ncons, 0, 0, 0));
    registerAllocation(ctx, "mesh/cons0", cell_bytes(ncons, 0, 0, 0));
    registerAllocation(ctx, "mesh/dudt", cell_bytes(ncons, 0, 0, 0));
    registerAllocation(ctx, "mesh/derived", cell_bytes(nder, 0, 0, 0));
    registerAllocation(ctx, "mesh/flux", cell_bytes(ncons, 0, 0, 1));
    if (shape_.ndim >= 2)
        registerAllocation(ctx, "mesh/flux", cell_bytes(ncons, 0, 1, 0));
    if (shape_.ndim >= 3)
        registerAllocation(ctx, "mesh/flux", cell_bytes(ncons, 1, 0, 0));
    if (own_recon) {
        // The paper's auxiliary-variable term (§VIII-B): two face states
        // per direction at full block resolution.
        registerAllocation(
            ctx, "mesh/recon",
            static_cast<std::size_t>(2 * shape_.ndim) *
                cell_bytes(ncons, 0, 0, 0));
    }
}

void
MeshBlock::lendRecon(RealArray4* l[3], RealArray4* r[3])
{
    for (int d = 0; d < 3; ++d) {
        recon_l_[d] = l[d];
        recon_r_[d] = r[d];
    }
}

} // namespace vibe
