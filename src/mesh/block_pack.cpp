#include "mesh/block_pack.hpp"

#include "exec/par_for.hpp"

namespace vibe {

void
MeshBlockPack::rebuild(Mesh& mesh)
{
    // Pack only the blocks this replica steps: every block on the
    // classic mesh, the owned shard on a rank-sharded replica (Shadow
    // blocks have no arrays to view).
    const std::size_t nb = mesh.ownedBlocks().size();
    shape_ = mesh.config().blockShape();
    blocks_.clear();
    views_.clear();
    ranks_.clear();
    blocks_.reserve(nb);
    views_.reserve(nb);
    ranks_.reserve(nb);

    for (MeshBlock* block : mesh.ownedBlocks()) {
        BlockPackView view;
        view.cons = &block->cons();
        view.cons0 = &block->cons0();
        view.dudt = &block->dudt();
        view.derived = &block->derived();
        for (int d = 0; d < 3; ++d) {
            view.flux[d] = &block->flux(d);
            view.reconL[d] = block->reconL(d);
            view.reconR[d] = block->reconR(d);
        }
        const BlockGeometry& geom = block->geom();
        view.dx1 = geom.dx1;
        view.dx2 = geom.dx2;
        view.dx3 = geom.dx3;
        view.invDx1 = 1.0 / geom.dx1;
        view.invDx2 = 1.0 / geom.dx2;
        view.invDx3 = 1.0 / geom.dx3;
        view.cellVolume = geom.cellVolume();
        view.level = block->loc().level;
        view.rank = block->rank();
        view.gid = block->gid();
        blocks_.push_back(block);
        views_.push_back(view);
        ranks_.push_back(block->rank());
    }

    recordSerial(mesh.ctx(), "pack_rebuild", static_cast<double>(nb));
    ++rebuild_count_;
    valid_ = true;
}

} // namespace vibe
