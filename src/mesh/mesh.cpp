#include "mesh/mesh.hpp"

#include <algorithm>

#include "exec/memory_tracker.hpp"
#include "exec/par_for.hpp"
#include "util/logging.hpp"

namespace vibe {

MeshConfig
MeshConfig::fromParams(const ParameterInput& pin)
{
    MeshConfig config;
    config.ndim = pin.getInt("mesh", "ndim", 3);
    config.nx1 = pin.getInt("mesh", "nx1", 64);
    config.nx2 = pin.getInt("mesh", "nx2", config.nx1);
    config.nx3 = pin.getInt("mesh", "nx3", config.nx1);
    config.blockNx1 = pin.getInt("meshblock", "nx1", 16);
    config.blockNx2 = pin.getInt("meshblock", "nx2", config.blockNx1);
    config.blockNx3 = pin.getInt("meshblock", "nx3", config.blockNx1);
    config.numGhost = pin.getInt("mesh", "num_ghost", 4);
    config.amrLevels = pin.getInt("amr", "num_levels", 3);
    config.periodic = pin.getBool("mesh", "periodic", true);
    config.x1min = pin.getReal("mesh", "x1min", 0.0);
    config.x1max = pin.getReal("mesh", "x1max", 1.0);
    config.optimizeAuxMemory =
        pin.getBool("mesh", "optimize_aux_memory", false);
    config.numThreads = pin.getInt("exec", "num_threads", 1);
    config.useMemoryPool = pin.getBool("mesh", "use_memory_pool", true);
    config.packInterior = pin.getBool("exec", "pack_interior", false);
    config.numRanks = pin.getInt("exec", "num_ranks", 1);
    config.fusedBoundaries =
        pin.getBool("exec", "fused_boundaries", true);
    config.validate();
    return config;
}

void
MeshConfig::validate() const
{
    if (ndim < 1 || ndim > 3)
        fatal("mesh ndim must be 1, 2 or 3, got ", ndim);
    if (nx1 <= 0 || blockNx1 <= 0)
        fatal("mesh and block sizes must be positive");
    if (numGhost < 1)
        fatal("at least one ghost layer is required");
    if (amrLevels < 1)
        fatal("#AMR Levels must be at least 1 (1 = uniform mesh)");
    if (numThreads < 1)
        fatal("exec/num_threads must be at least 1, got ", numThreads);
    if (numRanks < 1)
        fatal("exec/num_ranks must be at least 1, got ", numRanks);
    // §II-F: the total mesh size in each dimension must be an exact
    // multiple of the corresponding MeshBlock size.
    if (nx1 % blockNx1 != 0)
        fatal("mesh nx1=", nx1, " is not a multiple of block nx1=",
              blockNx1);
    if (ndim >= 2 && nx2 % blockNx2 != 0)
        fatal("mesh nx2=", nx2, " is not a multiple of block nx2=",
              blockNx2);
    if (ndim >= 3 && nx3 % blockNx3 != 0)
        fatal("mesh nx3=", nx3, " is not a multiple of block nx3=",
              blockNx3);
    if (x1max <= x1min)
        fatal("domain extent must be positive");
    // Periodic ghost exchange requires at least two blocks per active
    // dimension (a block cannot be its own neighbor).
    if (periodic) {
        if (nx1 / blockNx1 < 2)
            fatal("periodic meshes need >= 2 blocks per dimension; "
                  "got nx1/block = ",
                  nx1 / blockNx1);
        if (ndim >= 2 && nx2 / blockNx2 < 2)
            fatal("periodic meshes need >= 2 blocks in x2");
        if (ndim >= 3 && nx3 / blockNx3 < 2)
            fatal("periodic meshes need >= 2 blocks in x3");
    }
}

TreeConfig
MeshConfig::treeConfig() const
{
    TreeConfig tree;
    tree.ndim = ndim;
    tree.nbx1 = nbx1();
    tree.nbx2 = nbx2();
    tree.nbx3 = nbx3();
    tree.maxLevel = amrLevels - 1;
    tree.periodic1 = tree.periodic2 = tree.periodic3 = periodic;
    return tree;
}

BlockShape
MeshConfig::blockShape() const
{
    BlockShape shape;
    shape.ndim = ndim;
    shape.nx1 = blockNx1;
    shape.nx2 = ndim >= 2 ? blockNx2 : 1;
    shape.nx3 = ndim >= 3 ? blockNx3 : 1;
    shape.ng = numGhost;
    return shape;
}

Mesh::Mesh(const MeshConfig& config, const VariableRegistry& registry,
           const ExecContext& ctx, int shard_rank)
    : config_(config), registry_(&registry), ctx_(&ctx),
      shard_rank_(shard_rank), tree_(config.treeConfig())
{
    config_.validate();
    if (shard_rank_ >= 0) {
        require(shard_rank_ < config_.numRanks,
                "shard rank ", shard_rank_, " out of range for ",
                config_.numRanks, " ranks");
        require(ctx_->executing(),
                "rank-sharded execution requires numeric mode; counting "
                "studies model rank counts through the platform config");
    }

    // Storage recycling only matters when arrays are materialized;
    // counting-mode blocks register byte counts without backing stores.
    if (config_.useMemoryPool && ctx_->executing())
        pool_ = std::make_unique<BlockMemoryPool>(ctx_->tracker());

    if (config_.optimizeAuxMemory) {
        // §VIII-B: one shared reconstruction scratch instead of
        // per-block copies. Physically we keep one full-block scratch
        // (blocks are processed one at a time); the modeled device
        // footprint is the per-thread-block slab formula.
        const BlockShape shape = config_.blockShape();
        const int ncons = registry_->ncompConserved();
        if (ctx_->executing()) {
            for (int d = 0; d < config_.ndim; ++d) {
                shared_recon_l_[d] =
                    RealArray4(ncons, shape.nk(), shape.nj(), shape.ni());
                shared_recon_r_[d] =
                    RealArray4(ncons, shape.nk(), shape.nj(), shape.ni());
            }
        }
        // Modeled footprint: #ThreadBlocks x B x 6 x (nx1+2ng)^2 x ncomp
        // (d = 2 post-optimization, paper §VIII-B).
        constexpr std::size_t kThreadBlocks = 1024; // typical for H100
        const std::size_t slab = static_cast<std::size_t>(shape.ni()) *
                                 shape.ni() * sizeof(double);
        recon_pool_bytes_ = kThreadBlocks * 6 * slab *
                            static_cast<std::size_t>(ncons);
        if (ctx_->tracker())
            ctx_->tracker()->allocate("mesh/recon_pool", recon_pool_bytes_);
    }

    for (const auto& loc : tree_.leavesZOrder())
        blocks_.push_back(makeBlock(loc));
    // Sharded replicas create Shadow blocks; every block starts on
    // rank 0 (the classic initial assignment), so replica 0 now
    // materializes the whole base grid and the first load balance
    // migrates the shards onto their owners.
    for (const auto& block : blocks_)
        realizeBlock(*block);
    renumber();
    rebuildNeighbors();
}

std::unique_ptr<MeshBlock>
Mesh::makeBlock(const LogicalLocation& loc)
{
    // In a sharded replica ownership is unknown until the caller
    // assigns a rank, so blocks are born Shadow and realizeBlock()
    // materializes the owned ones.
    auto block = std::make_unique<MeshBlock>(
        loc, config_.blockShape(), geometryFor(loc), *registry_, *ctx_,
        /*own_recon=*/!config_.optimizeAuxMemory, pool_.get(),
        /*shadow=*/sharded());
    if (!sharded() && config_.optimizeAuxMemory && ctx_->executing()) {
        RealArray4* l[3] = {&shared_recon_l_[0], &shared_recon_l_[1],
                            &shared_recon_l_[2]};
        RealArray4* r[3] = {&shared_recon_r_[0], &shared_recon_r_[1],
                            &shared_recon_r_[2]};
        block->lendRecon(l, r);
    }
    return block;
}

void
Mesh::realizeBlock(MeshBlock& block)
{
    if (!sharded() || block.rank() != shard_rank_ ||
        block.mode() != DataMode::Shadow)
        return;
    block.materialize(*ctx_, pool_.get());
    if (config_.optimizeAuxMemory && ctx_->executing()) {
        RealArray4* l[3] = {&shared_recon_l_[0], &shared_recon_l_[1],
                            &shared_recon_l_[2]};
        RealArray4* r[3] = {&shared_recon_r_[0], &shared_recon_r_[1],
                            &shared_recon_r_[2]};
        block.lendRecon(l, r);
    }
}

std::vector<MeshBlock*>
Mesh::ownedBlocks(int rank) const
{
    std::vector<MeshBlock*> owned;
    for (const auto& block : blocks_)
        if (block->rank() == rank)
            owned.push_back(block.get());
    return owned;
}

int
Mesh::ownerOf(const LogicalLocation& loc) const
{
    auto it = loc_to_gid_.find(loc);
    return it == loc_to_gid_.end() ? -1 : blocks_[it->second]->rank();
}

void
Mesh::refreshOwnership()
{
    owned_blocks_.clear();
    for (const auto& block : blocks_)
        if (!sharded() || block->rank() == shard_rank_)
            owned_blocks_.push_back(block.get());
}

MeshBlock*
Mesh::find(const LogicalLocation& loc)
{
    auto it = loc_to_gid_.find(loc);
    return it == loc_to_gid_.end() ? nullptr : blocks_[it->second].get();
}

BlockGeometry
Mesh::geometryFor(const LogicalLocation& loc) const
{
    const double extent = config_.x1max - config_.x1min;
    BlockGeometry geom;
    const std::int64_t n1 = config_.nbx1() << loc.level;
    const double w1 = extent / static_cast<double>(n1);
    geom.x1min = config_.x1min + w1 * static_cast<double>(loc.lx1);
    geom.x1max = geom.x1min + w1;
    geom.dx1 = w1 / config_.blockNx1;
    if (config_.ndim >= 2) {
        const std::int64_t n2 = config_.nbx2() << loc.level;
        const double w2 = extent / static_cast<double>(n2);
        geom.x2min = config_.x1min + w2 * static_cast<double>(loc.lx2);
        geom.x2max = geom.x2min + w2;
        geom.dx2 = w2 / config_.blockNx2;
    }
    if (config_.ndim >= 3) {
        const std::int64_t n3 = config_.nbx3() << loc.level;
        const double w3 = extent / static_cast<double>(n3);
        geom.x3min = config_.x1min + w3 * static_cast<double>(loc.lx3);
        geom.x3max = geom.x3min + w3;
        geom.dx3 = w3 / config_.blockNx3;
    }
    return geom;
}

std::int64_t
Mesh::totalInteriorCells() const
{
    return static_cast<std::int64_t>(blocks_.size()) *
           config_.blockShape().interiorCells();
}

BlockTree::UpdateResult
Mesh::updateTree(const RefinementFlagMap& flags)
{
    // Serial cost of aggregating flags and manipulating the tree
    // (§II-E second task): one item per leaf plus one per change.
    recordSerial(*ctx_, "tree_update_flags",
                 static_cast<double>(blocks_.size()));
    auto result = tree_.update(flags);
    recordSerial(*ctx_, "tree_update_changes",
                 static_cast<double>(result.refined.size() +
                                     result.derefined.size()));
    return result;
}

Mesh::Restructure
Mesh::applyTreeUpdate(const BlockTree::UpdateResult& update,
                      std::int64_t current_cycle)
{
    Restructure restructure;

    for (const auto& parent_loc : update.refined) {
        auto it = loc_to_gid_.find(parent_loc);
        require(it != loc_to_gid_.end(),
                "refined parent has no block: ", parent_loc.str());
        Restructure::Refined entry;
        entry.parent = std::move(blocks_[it->second]);
        // Children exist in the tree already; create their blocks.
        const int o2max = config_.ndim >= 2 ? 1 : 0;
        const int o3max = config_.ndim >= 3 ? 1 : 0;
        const int nchildren = 2 * (o2max + 1) * (o3max + 1);
        for (int o3 = 0; o3 <= o3max; ++o3)
            for (int o2 = 0; o2 <= o2max; ++o2)
                for (int o1 = 0; o1 <= 1; ++o1) {
                    auto child = makeBlock(parent_loc.child(o1, o2, o3));
                    child->setRank(entry.parent->rank());
                    // Split the parent's (possibly measured) cost
                    // evenly so the estimate survives remesh instead
                    // of resetting to the uniform default.
                    child->setCost(entry.parent->cost() / nchildren);
                    child->setCreatedCycle(current_cycle);
                    realizeBlock(*child);
                    entry.children.push_back(child.get());
                    blocks_.push_back(std::move(child));
                }
        restructure.refined.push_back(std::move(entry));
    }

    for (const auto& parent_loc : update.derefined) {
        Restructure::Derefined entry;
        const int o2max = config_.ndim >= 2 ? 1 : 0;
        const int o3max = config_.ndim >= 3 ? 1 : 0;
        for (int o3 = 0; o3 <= o3max; ++o3)
            for (int o2 = 0; o2 <= o2max; ++o2)
                for (int o1 = 0; o1 <= 1; ++o1) {
                    const LogicalLocation kid =
                        parent_loc.child(o1, o2, o3);
                    auto it = loc_to_gid_.find(kid);
                    require(it != loc_to_gid_.end(),
                            "derefined child has no block: ", kid.str());
                    entry.children.push_back(
                        std::move(blocks_[it->second]));
                }
        auto parent = makeBlock(parent_loc);
        parent->setRank(entry.children.front()->rank());
        // The merged block does all its children's work: sum their
        // cost estimates rather than restarting from the default.
        double children_cost = 0;
        for (const auto& child : entry.children)
            children_cost += child->cost();
        parent->setCost(children_cost);
        parent->setCreatedCycle(current_cycle);
        realizeBlock(*parent);
        entry.parent = parent.get();
        blocks_.push_back(std::move(parent));
        restructure.derefined.push_back(std::move(entry));
    }

    // Drop retired slots (moved-from unique_ptrs) and renumber.
    blocks_.erase(std::remove_if(blocks_.begin(), blocks_.end(),
                                 [](const std::unique_ptr<MeshBlock>& b) {
                                     return b == nullptr;
                                 }),
                  blocks_.end());
    renumber();
    rebuildNeighbors();
    return restructure;
}

void
Mesh::renumber()
{
    const auto order = tree_.leavesZOrder();
    require(order.size() == blocks_.size(),
            "mesh block list out of sync with tree: ", blocks_.size(),
            " blocks vs ", order.size(), " leaves");
    std::unordered_map<LogicalLocation, int, LogicalLocationHash> rank_of;
    rank_of.reserve(order.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        rank_of.emplace(order[i], static_cast<int>(i));
    std::sort(blocks_.begin(), blocks_.end(),
              [&](const std::unique_ptr<MeshBlock>& a,
                  const std::unique_ptr<MeshBlock>& b) {
                  return rank_of.at(a->loc()) < rank_of.at(b->loc());
              });
    loc_to_gid_.clear();
    loc_to_gid_.reserve(blocks_.size());
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        blocks_[i]->setGid(static_cast<int>(i));
        loc_to_gid_.emplace(blocks_[i]->loc(), static_cast<int>(i));
    }
    refreshOwnership();
    recordSerial(*ctx_, "block_list_rebuild",
                 static_cast<double>(blocks_.size()));
}

void
Mesh::rebuildNeighbors()
{
    neighbor_lists_.assign(blocks_.size(), {});
    std::size_t links = 0;
    for (std::size_t gid = 0; gid < blocks_.size(); ++gid) {
        const auto tree_neighbors = tree_.neighbors(blocks_[gid]->loc());
        auto& list = neighbor_lists_[gid];
        list.reserve(tree_neighbors.size());
        for (const auto& info : tree_neighbors) {
            auto it = loc_to_gid_.find(info.loc);
            require(it != loc_to_gid_.end(),
                    "neighbor leaf has no block: ", info.loc.str());
            list.push_back({blocks_[it->second].get(), info.ox1, info.ox2,
                            info.ox3,
                            info.loc.level - blocks_[gid]->loc().level});
        }
        links += list.size();
    }
    // SetMeshBlockNeighbors serial cost: one item per link.
    recordSerial(*ctx_, "neighbor_search", static_cast<double>(links));
}

std::size_t
Mesh::totalNeighborLinks() const
{
    std::size_t links = 0;
    for (const auto& list : neighbor_lists_)
        links += list.size();
    return links;
}

} // namespace vibe
