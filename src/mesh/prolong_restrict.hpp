/**
 * @file prolong_restrict.hpp
 * Inter-level data operators: restriction (fine -> coarse volume
 * average) and prolongation (coarse -> fine slope-limited linear
 * interpolation).
 *
 * Used in three places, mirroring Parthenon: (1) when AMR creates or
 * retires blocks (RedistributeAndRefineMeshBlocks), (2) restriction of
 * boundary data before fine->coarse sends (SendBoundBufs), and
 * (3) prolongation of received coarse slabs into fine ghosts
 * (SetBounds). Restriction is exactly conservative; prolongation uses
 * minmod-limited slopes and preserves the coarse mean in each cell.
 */
#pragma once

#include "exec/exec_context.hpp"
#include "mesh/mesh_block.hpp"

namespace vibe {

/** minmod(a, b): 0 on sign disagreement, else the smaller magnitude. */
double minmod(double a, double b);

/**
 * Volume-average the full interior of `child` into the octant of
 * `parent` it covers. Kernel name "ProlongRestrictLoop".
 */
void restrictChildToParent(const ExecContext& ctx, const MeshBlock& child,
                           MeshBlock& parent);

/**
 * Fill the full interior of `child` by limited linear interpolation of
 * the `parent` octant covering it. Parent ghost cells supply edge
 * slopes. Kernel name "ProlongRestrictLoop".
 */
void prolongateParentToChild(const ExecContext& ctx,
                             const MeshBlock& parent, MeshBlock& child);

/**
 * Restrict the full interior of `child` into a flat coarse-octant
 * payload, for shipping to the parent's owner rank when a derefining
 * sibling set spans ranks. Arithmetic and iteration order are exactly
 * restrictChildToParent's, so a remote restriction is bitwise
 * identical to a local one. Layout: (n, kc, jc, ic), ic fastest.
 */
std::vector<double> restrictChildOctant(const ExecContext& ctx,
                                        const MeshBlock& child);

/**
 * Write a received coarse-octant payload into the region of `parent`
 * covered by the child at `child_loc` (the receiving half of a
 * cross-rank restriction).
 */
void applyRestrictedOctant(const ExecContext& ctx, MeshBlock& parent,
                           const LogicalLocation& child_loc,
                           const std::vector<double>& payload);

} // namespace vibe
