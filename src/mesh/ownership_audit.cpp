#include "mesh/ownership_audit.hpp"

#if defined(VIBE_AUDIT_OWNERSHIP)

namespace vibe {
namespace ownership_audit {

int&
declaredRank()
{
    static thread_local int rank = -1;
    return rank;
}

int&
sanctionedDepth()
{
    static thread_local int depth = 0;
    return depth;
}

void
checkAccess(int block_rank)
{
    const int declared = declaredRank();
    if (declared < 0 || declared == block_rank ||
        sanctionedDepth() > 0)
        return;
    panic("ownership audit: thread declared as rank ", declared,
          " touched storage of a block owned by rank ", block_rank,
          " outside any sanctioned materialize/unpack scope");
}

} // namespace ownership_audit
} // namespace vibe

#endif // VIBE_AUDIT_OWNERSHIP
