/**
 * @file variable.hpp
 * Variable metadata, flags and packs.
 *
 * Parthenon identifies simulation variables by name plus metadata flags
 * and extracts them with string-keyed lookups (GetVariablesByFlag); the
 * paper calls this out as a serial hotspot (§VIII-A). We reproduce the
 * same interface — including the string comparisons, which are counted
 * so the performance model can price them — and, like the paper's
 * recommendation, cache resolved packs so our own hot loops use integer
 * offsets.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vibe {

/** Metadata flags (bitmask) attached to each variable. */
enum MetadataFlag : unsigned
{
    kIndependent = 1u << 0, ///< Evolved by the time integrator.
    kFillGhost = 1u << 1,   ///< Participates in ghost-cell exchange.
    kWithFluxes = 1u << 2,  ///< Has face fluxes (and flux correction).
    kDerived = 1u << 3,     ///< Recomputed from independents each stage.
};

/** Declaration of one (possibly multi-component) variable. */
struct VariableMetadata
{
    std::string name;
    int ncomp = 1;
    unsigned flags = 0;

    bool hasAll(unsigned mask) const { return (flags & mask) == mask; }
};

/** A resolved view of one variable inside the packed storage. */
struct PackEntry
{
    std::string name;
    int offset = 0; ///< First component index in the packed array.
    int ncomp = 1;
};

/** Resolved variable pack: contiguous component range(s) by flag. */
struct VariablePack
{
    std::vector<PackEntry> entries;
    int ncompTotal = 0;
};

/**
 * Ordered registry of variable declarations for a simulation.
 *
 * Components of flagged-Independent variables are packed contiguously in
 * declaration order into the conserved array; Derived variables pack
 * into a separate array.
 */
class VariableRegistry
{
  public:
    /** Declare a variable. Fatal on duplicate names. */
    void add(VariableMetadata metadata);

    /** Total components over variables having all bits of `mask`. */
    int ncompWithFlags(unsigned mask) const;

    /** Components in the conserved (Independent) pack. */
    int ncompConserved() const { return ncompWithFlags(kIndependent); }

    /** Components in the derived pack. */
    int ncompDerived() const { return ncompWithFlags(kDerived); }

    /**
     * Resolve a pack of all variables having all bits of `mask`, the
     * GetVariablesByFlag analogue. Performs string scans on first use
     * (counted via stringCompares()); results are memoized.
     */
    const VariablePack& packByFlags(unsigned mask) const;

    /** Find a variable by name (linear string scan, counted). */
    const VariableMetadata& byName(const std::string& name) const;

    /** Offset of named variable within its pack (conserved or derived). */
    int offsetOf(const std::string& name) const;

    const std::vector<VariableMetadata>& all() const { return variables_; }

    /** Cumulative string comparisons performed by lookups. */
    std::uint64_t stringCompares() const { return string_compares_; }
    /** Cumulative lookup calls (cached or not). */
    std::uint64_t lookupCalls() const { return lookup_calls_; }

  private:
    std::vector<VariableMetadata> variables_;
    mutable std::vector<std::pair<unsigned, VariablePack>> pack_cache_;
    mutable std::uint64_t string_compares_ = 0;
    mutable std::uint64_t lookup_calls_ = 0;
};

} // namespace vibe
