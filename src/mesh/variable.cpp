#include "mesh/variable.hpp"

#include "util/logging.hpp"

namespace vibe {

void
VariableRegistry::add(VariableMetadata metadata)
{
    require(metadata.ncomp >= 1, "variable '", metadata.name,
            "' must have at least one component");
    for (const auto& existing : variables_)
        if (existing.name == metadata.name)
            fatal("duplicate variable '", metadata.name, "'");
    const bool independent = (metadata.flags & kIndependent) != 0;
    const bool derived = (metadata.flags & kDerived) != 0;
    require(independent != derived, "variable '", metadata.name,
            "' must be exactly one of Independent or Derived");
    variables_.push_back(std::move(metadata));
    pack_cache_.clear(); // offsets may shift
}

int
VariableRegistry::ncompWithFlags(unsigned mask) const
{
    int total = 0;
    for (const auto& v : variables_)
        if (v.hasAll(mask))
            total += v.ncomp;
    return total;
}

const VariablePack&
VariableRegistry::packByFlags(unsigned mask) const
{
    ++lookup_calls_;
    for (const auto& cached : pack_cache_)
        if (cached.first == mask)
            return cached.second;

    // Cache miss: scan the registry. Offsets are computed within the
    // variable's home pack (conserved for Independent, derived pack for
    // Derived); mixed-flag masks are resolved against the home pack of
    // each matching variable.
    VariablePack pack;
    int cons_offset = 0;
    int derived_offset = 0;
    for (const auto& v : variables_) {
        string_compares_ += 1; // flag check models one metadata compare
        const bool independent = (v.flags & kIndependent) != 0;
        int& home_offset = independent ? cons_offset : derived_offset;
        if (v.hasAll(mask)) {
            pack.entries.push_back({v.name, home_offset, v.ncomp});
            pack.ncompTotal += v.ncomp;
        }
        home_offset += v.ncomp;
    }
    pack_cache_.emplace_back(mask, std::move(pack));
    return pack_cache_.back().second;
}

const VariableMetadata&
VariableRegistry::byName(const std::string& name) const
{
    ++lookup_calls_;
    for (const auto& v : variables_) {
        ++string_compares_;
        if (v.name == name)
            return v;
    }
    fatal("unknown variable '", name, "'");
}

int
VariableRegistry::offsetOf(const std::string& name) const
{
    int cons_offset = 0;
    int derived_offset = 0;
    for (const auto& v : variables_) {
        ++string_compares_;
        const bool independent = (v.flags & kIndependent) != 0;
        if (v.name == name)
            return independent ? cons_offset : derived_offset;
        (independent ? cons_offset : derived_offset) += v.ncomp;
    }
    fatal("unknown variable '", name, "'");
}

} // namespace vibe
