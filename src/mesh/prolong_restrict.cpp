#include "mesh/prolong_restrict.hpp"

#include <cmath>

#include "exec/par_for.hpp"
#include "util/logging.hpp"

namespace vibe {

double
minmod(double a, double b)
{
    if (a * b <= 0.0)
        return 0.0;
    return std::fabs(a) < std::fabs(b) ? a : b;
}

namespace {

/** Child octant offsets (in parent half-block units) for `child`. */
struct Octant
{
    int o1, o2, o3;
};

Octant
octantOf(const MeshBlock& child)
{
    const int idx = child.loc().childIndexInParent();
    return {idx & 1, (idx >> 1) & 1, (idx >> 2) & 1};
}

Octant
octantOf(const LogicalLocation& child_loc)
{
    const int idx = child_loc.childIndexInParent();
    return {idx & 1, (idx >> 1) & 1, (idx >> 2) & 1};
}

} // namespace

void
restrictChildToParent(const ExecContext& ctx, const MeshBlock& child,
                      MeshBlock& parent)
{
    const BlockShape& shape = child.shape();
    const int ndim = shape.ndim;
    const Octant oct = octantOf(child);
    const int ncons = child.registry().ncompConserved();

    // Parent target region: the octant's half-extent per active dim.
    const int pis = shape.is() + oct.o1 * shape.nx1 / 2;
    const int pjs = ndim >= 2 ? shape.js() + oct.o2 * shape.nx2 / 2 : 0;
    const int pks = ndim >= 3 ? shape.ks() + oct.o3 * shape.nx3 / 2 : 0;
    const int cn1 = shape.nx1 / 2;
    const int cn2 = ndim >= 2 ? shape.nx2 / 2 : 1;
    const int cn3 = ndim >= 3 ? shape.nx3 / 2 : 1;
    const double inv = 1.0 / (1 << ndim);

    // ~2^ndim adds + 1 mul per output cell per component; reads 2^ndim
    // doubles and writes one.
    const KernelCosts costs{static_cast<double>((1 << ndim) + 1) * ncons,
                            static_cast<double>((1 << ndim) + 1) * ncons *
                                sizeof(double)};
    parFor(ctx, "ProlongRestrictLoop", costs, 0, cn3 - 1, 0, cn2 - 1, 0,
           cn1 - 1, [&](int kc, int jc, int ic) {
               const int fi = shape.is() + 2 * ic;
               const int fj = ndim >= 2 ? shape.js() + 2 * jc : 0;
               const int fk = ndim >= 3 ? shape.ks() + 2 * kc : 0;
               for (int n = 0; n < ncons; ++n) {
                   double sum = 0.0;
                   for (int dk = 0; dk <= (ndim >= 3 ? 1 : 0); ++dk)
                       for (int dj = 0; dj <= (ndim >= 2 ? 1 : 0); ++dj)
                           for (int di = 0; di <= 1; ++di)
                               sum += child.cons()(n, fk + dk, fj + dj,
                                                   fi + di);
                   parent.cons()(n, pks + kc, pjs + jc, pis + ic) =
                       sum * inv;
               }
           });
}

std::vector<double>
restrictChildOctant(const ExecContext& ctx, const MeshBlock& child)
{
    const BlockShape& shape = child.shape();
    const int ndim = shape.ndim;
    const int ncons = child.registry().ncompConserved();
    const int cn1 = shape.nx1 / 2;
    const int cn2 = ndim >= 2 ? shape.nx2 / 2 : 1;
    const int cn3 = ndim >= 3 ? shape.nx3 / 2 : 1;
    const double inv = 1.0 / (1 << ndim);

    // Same per-cell arithmetic as restrictChildToParent; the kernel is
    // recorded identically (it IS the restriction, running on the
    // child's owner), only the destination is a wire payload.
    const KernelCosts costs{static_cast<double>((1 << ndim) + 1) * ncons,
                            static_cast<double>((1 << ndim) + 1) * ncons *
                                sizeof(double)};
    std::vector<double> payload(
        static_cast<std::size_t>(ncons) * cn3 * cn2 * cn1, 0.0);
    parFor(ctx, "ProlongRestrictLoop", costs, 0, cn3 - 1, 0, cn2 - 1, 0,
           cn1 - 1, [&](int kc, int jc, int ic) {
               const int fi = shape.is() + 2 * ic;
               const int fj = ndim >= 2 ? shape.js() + 2 * jc : 0;
               const int fk = ndim >= 3 ? shape.ks() + 2 * kc : 0;
               for (int n = 0; n < ncons; ++n) {
                   double sum = 0.0;
                   for (int dk = 0; dk <= (ndim >= 3 ? 1 : 0); ++dk)
                       for (int dj = 0; dj <= (ndim >= 2 ? 1 : 0); ++dj)
                           for (int di = 0; di <= 1; ++di)
                               sum += child.cons()(n, fk + dk, fj + dj,
                                                   fi + di);
                   payload[((static_cast<std::size_t>(n) * cn3 + kc) *
                                cn2 +
                            jc) *
                               cn1 +
                           ic] = sum * inv;
               }
           });
    return payload;
}

void
applyRestrictedOctant(const ExecContext& ctx, MeshBlock& parent,
                      const LogicalLocation& child_loc,
                      const std::vector<double>& payload)
{
    const BlockShape& shape = parent.shape();
    const int ndim = shape.ndim;
    const Octant oct = octantOf(child_loc);
    const int ncons = parent.registry().ncompConserved();

    const int pis = shape.is() + oct.o1 * shape.nx1 / 2;
    const int pjs = ndim >= 2 ? shape.js() + oct.o2 * shape.nx2 / 2 : 0;
    const int pks = ndim >= 3 ? shape.ks() + oct.o3 * shape.nx3 / 2 : 0;
    const int cn1 = shape.nx1 / 2;
    const int cn2 = ndim >= 2 ? shape.nx2 / 2 : 1;
    const int cn3 = ndim >= 3 ? shape.nx3 / 2 : 1;
    require(payload.size() ==
                static_cast<std::size_t>(ncons) * cn3 * cn2 * cn1,
            "restricted octant payload size mismatch for ",
            child_loc.str());

    // Pure unpack: one write per coarse cell.
    const KernelCosts costs{0.0,
                            static_cast<double>(ncons) * 2 *
                                sizeof(double)};
    parFor(ctx, "ProlongRestrictLoop", costs, 0, cn3 - 1, 0, cn2 - 1, 0,
           cn1 - 1, [&](int kc, int jc, int ic) {
               for (int n = 0; n < ncons; ++n)
                   parent.cons()(n, pks + kc, pjs + jc, pis + ic) =
                       payload[((static_cast<std::size_t>(n) * cn3 +
                                 kc) *
                                    cn2 +
                                jc) *
                                   cn1 +
                               ic];
           });
}

void
prolongateParentToChild(const ExecContext& ctx, const MeshBlock& parent,
                        MeshBlock& child)
{
    const BlockShape& shape = child.shape();
    const int ndim = shape.ndim;
    const Octant oct = octantOf(child);
    const int ncons = child.registry().ncompConserved();

    const int pis = shape.is() + oct.o1 * shape.nx1 / 2;
    const int pjs = ndim >= 2 ? shape.js() + oct.o2 * shape.nx2 / 2 : 0;
    const int pks = ndim >= 3 ? shape.ks() + oct.o3 * shape.nx3 / 2 : 0;
    const int cn1 = shape.nx1 / 2;
    const int cn2 = ndim >= 2 ? shape.nx2 / 2 : 1;
    const int cn3 = ndim >= 3 ? shape.nx3 / 2 : 1;

    // Per coarse cell: 3 limited slopes (~6 flops each) + 2^ndim
    // weighted writes (~4 flops each), per component.
    const KernelCosts costs{
        static_cast<double>(18 + 4 * (1 << ndim)) * ncons,
        static_cast<double>(7 + (1 << ndim)) * ncons * sizeof(double)};
    parFor(ctx, "ProlongRestrictLoop", costs, 0, cn3 - 1, 0, cn2 - 1, 0,
           cn1 - 1, [&](int kc, int jc, int ic) {
               const int pi = pis + ic;
               const int pj = ndim >= 2 ? pjs + jc : 0;
               const int pk = ndim >= 3 ? pks + kc : 0;
               const int fi = shape.is() + 2 * ic;
               const int fj = ndim >= 2 ? shape.js() + 2 * jc : 0;
               const int fk = ndim >= 3 ? shape.ks() + 2 * kc : 0;
               for (int n = 0; n < ncons; ++n) {
                   const auto& pc = parent.cons();
                   const double c = pc(n, pk, pj, pi);
                   const double sx =
                       0.5 * minmod(pc(n, pk, pj, pi + 1) - c,
                                    c - pc(n, pk, pj, pi - 1));
                   const double sy =
                       ndim >= 2
                           ? 0.5 * minmod(pc(n, pk, pj + 1, pi) - c,
                                          c - pc(n, pk, pj - 1, pi))
                           : 0.0;
                   const double sz =
                       ndim >= 3
                           ? 0.5 * minmod(pc(n, pk + 1, pj, pi) - c,
                                          c - pc(n, pk - 1, pj, pi))
                           : 0.0;
                   for (int dk = 0; dk <= (ndim >= 3 ? 1 : 0); ++dk)
                       for (int dj = 0; dj <= (ndim >= 2 ? 1 : 0); ++dj)
                           for (int di = 0; di <= 1; ++di) {
                               const double wx = di == 0 ? -0.25 : 0.25;
                               const double wy = dj == 0 ? -0.25 : 0.25;
                               const double wz = dk == 0 ? -0.25 : 0.25;
                               child.cons()(n, fk + dk, fj + dj, fi + di) =
                                   c + 2 * wx * sx +
                                   (ndim >= 2 ? 2 * wy * sy : 0.0) +
                                   (ndim >= 3 ? 2 * wz * sz : 0.0);
                           }
               }
           });
}

} // namespace vibe
