/**
 * @file mesh_block.hpp
 * MeshBlock: a regular array of cells representing a subvolume of the
 * computational domain, the fundamental granularity of refinement
 * (paper §II-F).
 *
 * Every block carries `num_ghost` ghost-cell layers per active dimension
 * (4 for WENO5), packed conserved variables, a step-start copy for RK2,
 * face fluxes, derived fields, and the full-block face-reconstruction
 * scratch whose footprint the paper's §VIII-B optimization targets.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/exec_context.hpp"
#include "mesh/block_tree.hpp"
#include "mesh/logical_location.hpp"
#include "mesh/ownership_audit.hpp"
#include "mesh/variable.hpp"
#include "util/array4.hpp"

namespace vibe {

class BlockMemoryPool;

/**
 * Whether block data is materialized, only accounted (counting mode),
 * or absent entirely (a rank-sharded replica's view of a block owned
 * by another rank: structure and metadata are replicated, storage is
 * not — any attempt to read its arrays is a bug, which is what makes
 * direct cross-rank memory access structurally impossible).
 */
enum class DataMode { Real, Virtual, Shadow };

/** Physical extent and cell widths of one block. */
struct BlockGeometry
{
    double x1min = 0, x1max = 1;
    double x2min = 0, x2max = 1;
    double x3min = 0, x3max = 1;
    double dx1 = 1, dx2 = 1, dx3 = 1;

    /** Cell-center coordinate of interior cell index `i` (0-based). */
    double x1c(int i) const { return x1min + (i + 0.5) * dx1; }
    double x2c(int j) const { return x2min + (j + 0.5) * dx2; }
    double x3c(int k) const { return x3min + (k + 0.5) * dx3; }

    double cellVolume() const { return dx1 * dx2 * dx3; }
};

/** Interior/ghost cell-count description shared by all blocks of a mesh. */
struct BlockShape
{
    int ndim = 3;
    int nx1 = 16, nx2 = 16, nx3 = 16; ///< Interior cells per dimension.
    int ng = 4;                       ///< Ghost layers per active dim.

    int ni() const { return nx1 + 2 * ng; }
    int nj() const { return ndim >= 2 ? nx2 + 2 * ng : 1; }
    int nk() const { return ndim >= 3 ? nx3 + 2 * ng : 1; }

    int is() const { return ng; }
    int ie() const { return ng + nx1 - 1; }
    int js() const { return ndim >= 2 ? ng : 0; }
    int je() const { return ndim >= 2 ? ng + nx2 - 1 : 0; }
    int ks() const { return ndim >= 3 ? ng : 0; }
    int ke() const { return ndim >= 3 ? ng + nx3 - 1 : 0; }

    /** Interior cells (the "zones" of the figure of merit). */
    std::int64_t interiorCells() const
    {
        return std::int64_t{nx1} * (ndim >= 2 ? nx2 : 1) *
               (ndim >= 3 ? nx3 : 1);
    }
    /** Cells including ghosts. */
    std::int64_t totalCells() const
    {
        return std::int64_t{ni()} * nj() * nk();
    }
};

/**
 * One mesh block: structure, ownership and (optionally) data.
 *
 * Blocks are created by the Mesh; user code receives references. In
 * DataMode::Virtual no arrays are materialized, but every allocation is
 * registered with the MemoryTracker so footprints match numeric runs.
 */
class MeshBlock
{
  public:
    /**
     * @param loc       Position in the refinement forest.
     * @param shape     Cell counts (shared by all blocks).
     * @param geom      Physical extents of this block.
     * @param registry  Variable declarations (outlives the block).
     * @param ctx       Execution context (mode + memory tracker).
     * @param own_recon Allocate per-block reconstruction scratch (the
     *                  pre-§VIII-B layout); if false the Mesh lends a
     *                  shared scratch instead.
     * @param pool      Optional storage pool: array backing stores are
     *                  drawn from it and returned on destruction, and
     *                  buffers whose every cell is written before it
     *                  is read (fluxes, recon scratch, dudt) skip the
     *                  zero-init pass entirely. Must outlive the block.
     */
    /**
     * @param shadow Create without storage or tracker registration (a
     *               rank-sharded replica's non-owned block); the block
     *               can be materialize()d later when ownership arrives.
     */
    MeshBlock(const LogicalLocation& loc, const BlockShape& shape,
              const BlockGeometry& geom, const VariableRegistry& registry,
              const ExecContext& ctx, bool own_recon,
              BlockMemoryPool* pool = nullptr, bool shadow = false);
    ~MeshBlock();

    MeshBlock(const MeshBlock&) = delete;
    MeshBlock& operator=(const MeshBlock&) = delete;

    const LogicalLocation& loc() const { return loc_; }
    const BlockShape& shape() const { return shape_; }
    const BlockGeometry& geom() const { return geom_; }
    const VariableRegistry& registry() const { return *registry_; }

    int gid() const { return gid_; }
    void setGid(int gid) { gid_ = gid; }

    int rank() const { return rank_; }
    void setRank(int rank) { rank_ = rank; }

    /** Load-balance cost estimate (cells by default, §II-E). */
    double cost() const { return cost_; }
    void setCost(double cost) { cost_ = cost; }

    /** Cycle at which this block came into existence. */
    std::int64_t createdCycle() const { return created_cycle_; }
    void setCreatedCycle(std::int64_t cycle) { created_cycle_ = cycle; }

    RefinementFlag tag() const { return tag_; }
    void setTag(RefinementFlag tag) { tag_ = tag; }

    bool hasData() const { return mode_ == DataMode::Real; }
    DataMode mode() const { return mode_; }

    // Storage accessors. In VIBE_AUDIT_OWNERSHIP builds each access
    // asserts the calling thread owns this block (or is inside a
    // sanctioned materialize/unpack scope) — the runtime backstop for
    // the shadow-data-access lint rule; in normal builds auditAccess()
    // compiles to nothing.

    /** Packed conserved variables (Independent components). */
    RealArray4& cons()
    {
        auditAccess();
        return cons_;
    }
    const RealArray4& cons() const
    {
        auditAccess();
        return cons_;
    }
    /** Step-start copy used by RK averaging. */
    RealArray4& cons0()
    {
        auditAccess();
        return cons0_;
    }
    const RealArray4& cons0() const
    {
        auditAccess();
        return cons0_;
    }
    /** Flux-divergence accumulator. */
    RealArray4& dudt()
    {
        auditAccess();
        return dudt_;
    }
    const RealArray4& dudt() const
    {
        auditAccess();
        return dudt_;
    }
    /** Derived variables. */
    RealArray4& derived()
    {
        auditAccess();
        return derived_;
    }
    const RealArray4& derived() const
    {
        auditAccess();
        return derived_;
    }
    /** Face fluxes in direction `d` (0 = x1, 1 = x2, 2 = x3). */
    RealArray4& flux(int d)
    {
        auditAccess();
        return flux_[d];
    }
    const RealArray4& flux(int d) const
    {
        auditAccess();
        return flux_[d];
    }

    /**
     * Face-reconstruction scratch (left/right states in direction `d`).
     * Either owned (per-block, the unoptimized layout) or lent by the
     * Mesh (the §VIII-B optimized layout). Null in Virtual mode.
     */
    RealArray4* reconL(int d) { return recon_l_[d]; }
    RealArray4* reconR(int d) { return recon_r_[d]; }

    /** Lend shared reconstruction scratch to this block. */
    void lendRecon(RealArray4* l[3], RealArray4* r[3]);

    /** Bytes this block accounts for (identical in all data modes). */
    std::size_t dataBytes() const { return data_bytes_; }

    // --- Rank-sharded storage lifecycle -------------------------------

    /**
     * Allocate storage for a Shadow block (ownership arrived: a
     * migration landed here, or a restructure created it on its owner
     * rank). Draws from `pool` when given — the destination rank's
     * BlockMemoryPool — and registers with the context's tracker.
     * State-carrying arrays are zeroed exactly as at construction.
     */
    void materialize(const ExecContext& ctx, BlockMemoryPool* pool);

    /**
     * Release all storage (back into the pool it came from) and drop
     * the tracker registrations: the block's data now lives on another
     * rank and this replica keeps structure/metadata only.
     */
    void dematerialize();

    /**
     * Serialize the state that must survive a migration — the full
     * conserved and derived arrays, ghosts included — into a flat
     * payload (bitwise copies, so a migrated block is indistinguishable
     * from one that never moved). Scratch (cons0/dudt/flux/recon) is
     * rebuilt every stage and does not travel.
     */
    std::vector<double> serializeState() const;

    /** Inverse of serializeState on a freshly materialized block. */
    void deserializeState(const std::vector<double>& payload);

    /** Elements serializeState produces for this block's shape. */
    std::size_t serializedStateCount() const;

  private:
    void auditAccess() const
    {
        ownership_audit::checkAccess(rank_);
    }

    void allocateAll(const ExecContext& ctx, bool own_recon);
    void releaseAll();
    void registerAllocation(const ExecContext& ctx,
                            const std::string& label, std::size_t bytes);

    LogicalLocation loc_;
    BlockShape shape_;
    BlockGeometry geom_;
    const VariableRegistry* registry_;
    MemoryTracker* tracker_;
    BlockMemoryPool* pool_ = nullptr;
    DataMode mode_;
    bool own_recon_ = true;

    int gid_ = -1;
    int rank_ = 0;
    double cost_ = 1.0;
    std::int64_t created_cycle_ = 0;
    RefinementFlag tag_ = RefinementFlag::None;

    RealArray4 cons_, cons0_, dudt_, derived_;
    RealArray4 flux_[3];
    RealArray4 recon_l_owned_[3], recon_r_owned_[3];
    RealArray4* recon_l_[3] = {nullptr, nullptr, nullptr};
    RealArray4* recon_r_[3] = {nullptr, nullptr, nullptr};

    std::size_t data_bytes_ = 0;
    std::vector<std::pair<std::string, std::size_t>> registered_;
};

} // namespace vibe
