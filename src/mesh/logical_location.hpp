/**
 * @file logical_location.hpp
 * Logical position of a MeshBlock in the refinement forest.
 *
 * A LogicalLocation is (level, lx1, lx2, lx3): at refinement level L the
 * base grid of blocks is subdivided 2^L times per dimension, and lx*
 * index the block within that level's virtual grid. Level 0 is the base
 * ("physical level 0" in the paper's Fig. 2); deeper levels are produced
 * by refinement. Each parent subdivides into 2/4/8 children in 1/2/3-D
 * (binary tree / quadtree / octree).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace vibe {

/** Position of a block in the AMR forest. */
struct LogicalLocation
{
    int level = 0;
    std::int64_t lx1 = 0;
    std::int64_t lx2 = 0;
    std::int64_t lx3 = 0;

    friend bool operator==(const LogicalLocation&,
                           const LogicalLocation&) = default;

    /** Parent location one level up. Requires level > 0. */
    LogicalLocation parent() const;

    /**
     * Child location one level down.
     *
     * @param ox1,ox2,ox3 Child octant selectors in {0, 1}.
     */
    LogicalLocation child(int ox1, int ox2, int ox3) const;

    /** Which octant of its parent this location occupies, in {0,1}^3. */
    int childIndexInParent() const;

    /** True if this location is a (strict or equal) ancestor of `other`. */
    bool contains(const LogicalLocation& other) const;

    /**
     * Morton (Z-order) key at a reference level.
     *
     * Leaves mapped to their fine-level corner produce a total order that
     * follows the Z space-filling curve; Parthenon uses this order for
     * block lists and load balancing. @pre reference_level >= level.
     */
    std::uint64_t mortonKey(int reference_level) const;

    /** Human-readable form "(L2: 3,1,0)" for diagnostics. */
    std::string str() const;
};

/** Hash functor so locations can key unordered containers. */
struct LogicalLocationHash
{
    std::size_t operator()(const LogicalLocation& loc) const;
};

/** Interleave the low 21 bits of x,y,z into a 63-bit Morton code. */
std::uint64_t mortonInterleave(std::uint64_t x, std::uint64_t y,
                               std::uint64_t z);

} // namespace vibe
