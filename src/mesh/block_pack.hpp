/**
 * @file block_pack.hpp
 * MeshBlockPack: stable per-block view tables for fused kernels.
 *
 * Parthenon batches all MeshBlocks of a mesh into packs so one kernel
 * launch iterates a (block, k, j, i) domain instead of launching once
 * per block (Grete et al. 2022) — the fix for the per-block launch
 * overhead that dominates the paper's small-block regime (fig05). The
 * pack caches, per block, pointers to every hot-path array plus the
 * metadata fused kernels need (cell widths, level, rank, interior
 * bounds via the shared BlockShape), and is rebuilt only when the
 * mesh restructures: the driver invalidates it from the boundary-
 * buffer-cache rebuild hook (the same event that already marks every
 * other per-mesh cache stale) and rebuilds lazily before the next
 * fused launch.
 *
 * Array pointers stay valid between rebuilds because the arrays live
 * inside MeshBlocks, which are stable on the heap; block *order* (and
 * rank assignment) is what changes on remesh/load-balance, which is
 * exactly what the rebuild refreshes.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/mesh.hpp"
#include "util/logging.hpp"

namespace vibe {

/** Per-block entry of the pack's device-view table. */
struct BlockPackView
{
    RealArray4* cons = nullptr;
    RealArray4* cons0 = nullptr;
    RealArray4* dudt = nullptr;
    RealArray4* derived = nullptr;
    RealArray4* flux[3] = {nullptr, nullptr, nullptr};
    RealArray4* reconL[3] = {nullptr, nullptr, nullptr};
    RealArray4* reconR[3] = {nullptr, nullptr, nullptr};
    double dx1 = 1, dx2 = 1, dx3 = 1;
    /** 1/dx per dim, precomputed at rebuild exactly as the per-block
     *  divergence kernel computes it (bit-identical divides). */
    double invDx1 = 1, invDx2 = 1, invDx3 = 1;
    double cellVolume = 1;
    int level = 0;
    int rank = 0;
    int gid = -1;
};

/** Packed view of every block in a Mesh, rebuilt on restructure. */
class MeshBlockPack
{
  public:
    MeshBlockPack() = default;

    /**
     * Refresh the view tables from the mesh's current block list
     * (Z-order, matching gids). Counted as serial work
     * ("pack_rebuild", one item per block) like the other
     * restructure-time rebuilds.
     */
    void rebuild(Mesh& mesh);

    /** Mark stale; the next ensureBuilt() call rebuilds. */
    void invalidate() { valid_ = false; }
    bool valid() const { return valid_; }

    /** Rebuild if invalidated (or never built). */
    void ensureBuilt(Mesh& mesh)
    {
        if (!valid_)
            rebuild(mesh);
    }

    /** Rebuilds performed (for rebuild-only-on-remesh tests). */
    std::uint64_t rebuildCount() const { return rebuild_count_; }

    int numBlocks() const { return static_cast<int>(views_.size()); }
    const BlockShape& shape() const { return shape_; }

    // Accessors panic on a stale pack: after a restructure destroys
    // blocks the cached pointers dangle until the next rebuild, so a
    // read through an invalidated pack must fail loudly rather than
    // dereference freed memory.
    BlockPackView& view(int b)
    {
        require(valid_, "MeshBlockPack: view() on an invalidated pack");
        return views_[b];
    }
    const BlockPackView& view(int b) const
    {
        require(valid_, "MeshBlockPack: view() on an invalidated pack");
        return views_[b];
    }

    /** Per-block owning ranks in pack order (profiler attribution). */
    const int* ranks() const
    {
        require(valid_, "MeshBlockPack: ranks() on an invalidated pack");
        return ranks_.data();
    }

    MeshBlock& meshBlock(int b)
    {
        require(valid_,
                "MeshBlockPack: meshBlock() on an invalidated pack");
        return *blocks_[b];
    }

  private:
    bool valid_ = false;
    BlockShape shape_;
    std::vector<MeshBlock*> blocks_;
    std::vector<BlockPackView> views_;
    std::vector<int> ranks_;
    std::uint64_t rebuild_count_ = 0;
};

} // namespace vibe
