/**
 * @file block_memory_pool.hpp
 * Arena-style recycling of MeshBlock array storage.
 *
 * The paper's memory breakdown (Fig. 10) and the block-size sweep
 * (Fig. 5) show that in the small-block regime AMR drives us into,
 * refine/derefine events dominate allocator traffic: every remesh
 * frees 2^ndim blocks' worth of arrays and immediately allocates a
 * comparable amount at the very same handful of sizes. AMReX answers
 * this with an arena allocator (Zhang et al. 2020); we mirror that
 * with a size-bucketed free list of `Array4` backing stores.
 *
 * All blocks of a mesh share one BlockShape, so only a handful of
 * distinct element counts ever occur (cell-centered, per-direction
 * face-centered, derived). `acquire` pops a recycled vector from the
 * exact-size bucket when one is idle — a *pool hit*, costing neither
 * an allocation nor (for fully-overwritten buffers) a clear — and
 * otherwise reserves fresh capacity, a *pool miss*. Blocks return
 * their storage on destruction, so a steady-state refine/derefine
 * cycle runs entirely on recycled buffers after warm-up.
 *
 * Acquisition and release happen on the mesh restructure path, which
 * is serial within a rank (the driver restructures between task-graph
 * executions) — but under rank sharding every rank thread owns a pool,
 * and migration materializes into the *destination* rank's pool, so
 * the buckets are mutex-guarded rather than trusting call-site
 * discipline; the restructure path is cold enough that the uncontended
 * lock is free. Hits and misses are mirrored into the MemoryTracker
 * when one is attached.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "util/thread_safety.hpp"

namespace vibe {

class MemoryTracker;

/** Size-bucketed free list of `double` array backing stores. */
class BlockMemoryPool
{
  public:
    /** @param tracker Optional sink for hit/miss accounting. */
    explicit BlockMemoryPool(MemoryTracker* tracker = nullptr)
        : tracker_(tracker)
    {
    }

    BlockMemoryPool(const BlockMemoryPool&) = delete;
    BlockMemoryPool& operator=(const BlockMemoryPool&) = delete;

    /**
     * Storage for exactly `count` elements.
     *
     * On a hit the returned vector has size `count` and holds the
     * previous owner's data (adopters that need zeroed contents pass
     * `zero_init` to Array4, a single clearing pass). On a miss the
     * vector is empty with `count` elements of reserved capacity, so
     * the adopter's resize/assign initializes each element exactly
     * once — never construct-then-fill.
     */
    std::vector<double> acquire(std::size_t count);

    /**
     * Return storage to the free list. Empty vectors (never-adopted
     * arrays, e.g. unused flux directions) are ignored. The bucket key
     * is the vector's size, which Array4 keeps at the exact element
     * count of the adopting array.
     */
    void release(std::vector<double>&& storage);

    /** Drop every idle buffer (returns memory to the allocator). */
    void trim();

    /** Requests served from the free list. */
    std::uint64_t poolHits() const
    {
        LockGuard lock(mutex_);
        return hits_;
    }
    /** Requests that fell through to the allocator. */
    std::uint64_t freshAllocs() const
    {
        LockGuard lock(mutex_);
        return fresh_;
    }
    /** Bytes currently idle in the free list. */
    std::size_t idleBytes() const
    {
        LockGuard lock(mutex_);
        return idle_bytes_;
    }
    /** High-water mark of idleBytes(). */
    std::size_t peakIdleBytes() const
    {
        LockGuard lock(mutex_);
        return peak_idle_bytes_;
    }
    /** Buffers currently idle in the free list. */
    std::size_t idleBuffers() const
    {
        LockGuard lock(mutex_);
        return idle_buffers_;
    }

  private:
    MemoryTracker* tracker_;
    mutable Mutex mutex_;
    std::map<std::size_t, std::vector<std::vector<double>>>
        free_ VIBE_GUARDED_BY(mutex_);
    std::uint64_t hits_ VIBE_GUARDED_BY(mutex_) = 0;
    std::uint64_t fresh_ VIBE_GUARDED_BY(mutex_) = 0;
    std::size_t idle_bytes_ VIBE_GUARDED_BY(mutex_) = 0;
    std::size_t peak_idle_bytes_ VIBE_GUARDED_BY(mutex_) = 0;
    std::size_t idle_buffers_ VIBE_GUARDED_BY(mutex_) = 0;
};

} // namespace vibe
