/**
 * @file ownership_audit.hpp
 * Debug-mode rank-ownership auditor for MeshBlock storage access.
 *
 * Runtime backstop for the `shadow-data-access` lint rule: when the
 * build enables `VIBE_AUDIT_OWNERSHIP` (CMake option, default OFF),
 * every MeshBlock storage accessor asserts that the calling thread may
 * touch the block's arrays. A thread may touch storage of block B when
 * any of the following holds:
 *
 * - the thread never declared an audit rank (worker threads of a
 *   rank's ExecutionSpace pool, classic single-driver runs, tests that
 *   do not opt in) — the auditor cannot attribute such a thread, so it
 *   stays silent;
 * - the thread declared rank r (RankTeam::runRank does this for every
 *   rank driver thread) and B.rank() == r;
 * - the thread is inside a sanctioned scope: materialize/unpack paths
 *   that legitimately touch blocks mid-relabel (mesh restructure,
 *   migration landing, remote-restriction application).
 *
 * Violations panic (throw PanicError) naming the block's owner and the
 * declared rank, so a cross-rank read that the Shadow mechanism would
 * only catch probabilistically (e.g. on a block that happens to hold
 * real storage because ownership just changed) fails deterministically
 * at the access site.
 *
 * All hooks compile to nothing when VIBE_AUDIT_OWNERSHIP is off; the
 * thread-local bookkeeping only exists in audit builds.
 */
#pragma once

#include "util/logging.hpp"

namespace vibe {
namespace ownership_audit {

#if defined(VIBE_AUDIT_OWNERSHIP)

/** This thread's declared rank; -1 = undeclared (auditor silent). */
int& declaredRank();
/** Nesting depth of sanctioned materialize/unpack scopes. */
int& sanctionedDepth();

/** Panic unless this thread may touch storage of a rank-`block_rank`
 *  block (see file comment for the admission rules). */
void checkAccess(int block_rank);

/** RAII: declare the current thread to be rank `rank`'s driver. */
class ScopedRank
{
  public:
    explicit ScopedRank(int rank) : previous_(declaredRank())
    {
        declaredRank() = rank;
    }
    ~ScopedRank() { declaredRank() = previous_; }
    ScopedRank(const ScopedRank&) = delete;
    ScopedRank& operator=(const ScopedRank&) = delete;

  private:
    int previous_;
};

/** RAII: sanction cross-ownership storage access for this scope. */
class SanctionedScope
{
  public:
    SanctionedScope() { ++sanctionedDepth(); }
    ~SanctionedScope() { --sanctionedDepth(); }
    SanctionedScope(const SanctionedScope&) = delete;
    SanctionedScope& operator=(const SanctionedScope&) = delete;
};

#else // !VIBE_AUDIT_OWNERSHIP

inline void
checkAccess(int)
{
}

class ScopedRank
{
  public:
    explicit ScopedRank(int) {}
};

class SanctionedScope
{
};

#endif // VIBE_AUDIT_OWNERSHIP

} // namespace ownership_audit
} // namespace vibe
