#include "mesh/block_tree.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace vibe {

BlockTree::BlockTree(const TreeConfig& config) : config_(config)
{
    require(config_.ndim >= 1 && config_.ndim <= 3,
            "BlockTree ndim must be 1, 2 or 3");
    require(config_.nbx1 >= 1, "base grid must have at least one block");
    require(config_.ndim >= 2 || config_.nbx2 == 1,
            "nbx2 must be 1 in 1-D");
    require(config_.ndim >= 3 || config_.nbx3 == 1,
            "nbx3 must be 1 below 3-D");
    require(config_.maxLevel >= 0, "maxLevel must be non-negative");

    for (std::int64_t k = 0; k < config_.nbx3; ++k)
        for (std::int64_t j = 0; j < config_.nbx2; ++j)
            for (std::int64_t i = 0; i < config_.nbx1; ++i)
                nodes_.emplace(LogicalLocation{0, i, j, k}, Node::Leaf);
    leaf_count_ = nodes_.size();
}

int
BlockTree::maxPresentLevel() const
{
    int max_level = 0;
    for (const auto& [loc, node] : nodes_)
        if (node == Node::Leaf)
            max_level = std::max(max_level, loc.level);
    return max_level;
}

bool
BlockTree::isLeaf(const LogicalLocation& loc) const
{
    auto it = nodes_.find(loc);
    return it != nodes_.end() && it->second == Node::Leaf;
}

bool
BlockTree::exists(const LogicalLocation& loc) const
{
    return nodes_.count(loc) != 0;
}

std::vector<LogicalLocation>
BlockTree::leavesZOrder() const
{
    std::vector<LogicalLocation> leaves;
    leaves.reserve(leaf_count_);
    for (const auto& [loc, node] : nodes_)
        if (node == Node::Leaf)
            leaves.push_back(loc);
    const int ref = std::max(referenceLevel(), maxPresentLevel());
    std::sort(leaves.begin(), leaves.end(),
              [ref](const LogicalLocation& a, const LogicalLocation& b) {
                  const auto ka = a.mortonKey(ref);
                  const auto kb = b.mortonKey(ref);
                  if (ka != kb)
                      return ka < kb;
                  return a.level < b.level;
              });
    return leaves;
}

void
BlockTree::forEachLeaf(
    const std::function<void(const LogicalLocation&)>& fn) const
{
    for (const auto& [loc, node] : nodes_)
        if (node == Node::Leaf)
            fn(loc);
}

std::int64_t
BlockTree::extentAtLevel(int d, int level) const
{
    const std::int64_t base = d == 1   ? config_.nbx1
                              : d == 2 ? config_.nbx2
                                       : config_.nbx3;
    return base << level;
}

std::optional<LogicalLocation>
BlockTree::displace(const LogicalLocation& loc, int ox1, int ox2,
                    int ox3) const
{
    LogicalLocation out = loc;
    const int ox[3] = {ox1, ox2, ox3};
    std::int64_t* lx[3] = {&out.lx1, &out.lx2, &out.lx3};
    const bool periodic[3] = {config_.periodic1, config_.periodic2,
                              config_.periodic3};
    for (int d = 0; d < 3; ++d) {
        std::int64_t v = *lx[d] + ox[d];
        const std::int64_t n = extentAtLevel(d + 1, loc.level);
        if (v < 0 || v >= n) {
            if (!periodic[d] || d >= config_.ndim)
                return std::nullopt;
            if (n == 1)
                return std::nullopt; // degenerate self-wrap
            v = (v % n + n) % n;
        }
        *lx[d] = v;
    }
    return out;
}

std::vector<LogicalLocation>
BlockTree::children(const LogicalLocation& loc) const
{
    std::vector<LogicalLocation> kids;
    const int o1max = 1;
    const int o2max = config_.ndim >= 2 ? 1 : 0;
    const int o3max = config_.ndim >= 3 ? 1 : 0;
    for (int o3 = 0; o3 <= o3max; ++o3)
        for (int o2 = 0; o2 <= o2max; ++o2)
            for (int o1 = 0; o1 <= o1max; ++o1)
                kids.push_back(loc.child(o1, o2, o3));
    return kids;
}

std::vector<LogicalLocation>
BlockTree::touchingChildren(const LogicalLocation& neighbor_region, int ox1,
                            int ox2, int ox3) const
{
    // The querying block sits in direction (-ox1,-ox2,-ox3) from the
    // neighbor region; a child touches the shared boundary if, in each
    // dimension we moved through, it lies on the facing side.
    std::vector<LogicalLocation> result;
    const int ox[3] = {ox1, ox2, ox3};
    for (const auto& kid : children(neighbor_region)) {
        const std::int64_t lo[3] = {kid.lx1 & 1, kid.lx2 & 1, kid.lx3 & 1};
        bool touches = true;
        for (int d = 0; d < 3; ++d) {
            if (ox[d] == 1 && lo[d] != 0)
                touches = false; // neighbor is to our +side: near children
            if (ox[d] == -1 && lo[d] != 1)
                touches = false; // neighbor is to our -side: far children
        }
        if (touches)
            result.push_back(kid);
    }
    return result;
}

void
BlockTree::forEachDirection(
    const std::function<void(int, int, int)>& fn) const
{
    const int r2 = config_.ndim >= 2 ? 1 : 0;
    const int r3 = config_.ndim >= 3 ? 1 : 0;
    for (int o3 = -r3; o3 <= r3; ++o3)
        for (int o2 = -r2; o2 <= r2; ++o2)
            for (int o1 = -1; o1 <= 1; ++o1)
                if (o1 != 0 || o2 != 0 || o3 != 0)
                    fn(o1, o2, o3);
}

std::vector<BlockTree::NeighborInfo>
BlockTree::neighbors(const LogicalLocation& loc) const
{
    require(isLeaf(loc), "neighbors() requires a leaf, got ", loc.str());
    std::vector<NeighborInfo> result;
    forEachDirection([&](int o1, int o2, int o3) {
        auto target = displace(loc, o1, o2, o3);
        if (!target)
            return;
        auto it = nodes_.find(*target);
        if (it != nodes_.end()) {
            if (it->second == Node::Leaf) {
                result.push_back({*target, o1, o2, o3});
            } else {
                // Finer neighbors: 2:1 guarantees the children touching
                // our shared boundary are leaves.
                for (const auto& kid :
                     touchingChildren(*target, o1, o2, o3)) {
                    require(isLeaf(kid),
                            "2:1 violation: expected leaf child at ",
                            kid.str());
                    result.push_back({kid, o1, o2, o3});
                }
            }
            return;
        }
        // Coarser neighbor: the parent region must be a leaf (2:1 rule
        // forbids anything coarser than one level up).
        if (target->level > 0) {
            const LogicalLocation up = target->parent();
            if (isLeaf(up)) {
                result.push_back({up, o1, o2, o3});
                return;
            }
        }
        panic("no covering leaf for neighbor region ", target->str(),
              " of ", loc.str());
    });
    return result;
}

std::optional<LogicalLocation>
BlockTree::coveringLeaf(const LogicalLocation& target) const
{
    if (!validIndex(target))
        return std::nullopt;
    LogicalLocation probe = target;
    while (true) {
        if (isLeaf(probe))
            return probe;
        if (probe.level == 0)
            break;
        probe = probe.parent();
    }
    // target names a coarser region than the local leaves; descend is
    // ambiguous, so report the first-leaf-on-path failure.
    return std::nullopt;
}

bool
BlockTree::validIndex(const LogicalLocation& loc) const
{
    if (loc.level < 0)
        return false;
    return loc.lx1 >= 0 && loc.lx1 < extentAtLevel(1, loc.level) &&
           loc.lx2 >= 0 && loc.lx2 < extentAtLevel(2, loc.level) &&
           loc.lx3 >= 0 && loc.lx3 < extentAtLevel(3, loc.level);
}

void
BlockTree::refine(const LogicalLocation& loc,
                  std::vector<LogicalLocation>* newly_refined)
{
    if (!isLeaf(loc) || loc.level >= config_.maxLevel)
        return;
    // 2:1 pre-balance: every neighbor region of `loc` must exist at
    // loc.level (as leaf or internal) before we split; a coarser leaf
    // covering it must be refined first.
    forEachDirection([&](int o1, int o2, int o3) {
        auto target = displace(loc, o1, o2, o3);
        if (!target || nodes_.count(*target))
            return;
        if (target->level > 0) {
            const LogicalLocation up = target->parent();
            if (isLeaf(up))
                refine(up, newly_refined);
        }
    });
    auto it = nodes_.find(loc);
    require(it != nodes_.end() && it->second == Node::Leaf,
            "refine: leaf vanished during balancing at ", loc.str());
    it->second = Node::Internal;
    --leaf_count_;
    for (const auto& kid : children(loc)) {
        nodes_.emplace(kid, Node::Leaf);
        ++leaf_count_;
    }
    if (newly_refined)
        newly_refined->push_back(loc);
}

bool
BlockTree::derefine(const LogicalLocation& parent)
{
    auto pit = nodes_.find(parent);
    if (pit == nodes_.end() || pit->second != Node::Internal)
        return false;
    const auto kids = children(parent);
    for (const auto& kid : kids)
        if (!isLeaf(kid))
            return false;
    // 2:1 post-balance: after merging, `parent` (level L) must not touch
    // any leaf deeper than L+1. A deeper leaf exists exactly when some
    // neighbor region at level L has an internal child touching us.
    bool blocked = false;
    forEachDirection([&](int o1, int o2, int o3) {
        if (blocked)
            return;
        auto target = displace(parent, o1, o2, o3);
        if (!target)
            return;
        auto it = nodes_.find(*target);
        if (it == nodes_.end() || it->second == Node::Leaf)
            return;
        for (const auto& kid : touchingChildren(*target, o1, o2, o3)) {
            auto kit = nodes_.find(kid);
            if (kit != nodes_.end() && kit->second == Node::Internal) {
                blocked = true;
                return;
            }
        }
    });
    if (blocked)
        return false;
    for (const auto& kid : kids) {
        nodes_.erase(kid);
        --leaf_count_;
    }
    pit->second = Node::Leaf;
    ++leaf_count_;
    return true;
}

BlockTree::UpdateResult
BlockTree::update(const RefinementFlagMap& flags)
{
    UpdateResult result;

    // Pass 1: refinement (with 2:1 propagation). Deterministic order —
    // process flagged leaves in Z-order so propagation is reproducible.
    std::vector<LogicalLocation> to_refine;
    for (const auto& [loc, flag] : flags)
        if (flag == RefinementFlag::Refine && isLeaf(loc) &&
            loc.level < config_.maxLevel)
            to_refine.push_back(loc);
    const int ref = std::max(referenceLevel(), maxPresentLevel() + 1);
    std::sort(to_refine.begin(), to_refine.end(),
              [ref](const LogicalLocation& a, const LogicalLocation& b) {
                  if (a.level != b.level)
                      return a.level < b.level;
                  return a.mortonKey(ref) < b.mortonKey(ref);
              });
    for (const auto& loc : to_refine)
        refine(loc, &result.refined);

    // Pass 2: derefinement. A sibling set merges only when every child
    // is a leaf flagged Derefine (and none was just created by pass 1).
    std::vector<LogicalLocation> parents;
    for (const auto& [loc, flag] : flags) {
        if (flag != RefinementFlag::Derefine || loc.level == 0)
            continue;
        if (!isLeaf(loc))
            continue; // was refined away or never existed
        if (loc.childIndexInParent() != 0)
            continue; // visit each sibling set once, via child 0
        parents.push_back(loc.parent());
    }
    std::sort(parents.begin(), parents.end(),
              [ref](const LogicalLocation& a, const LogicalLocation& b) {
                  if (a.level != b.level)
                      return a.level > b.level; // deepest first
                  return a.mortonKey(ref) < b.mortonKey(ref);
              });
    for (const auto& parent : parents) {
        bool all_flagged = true;
        for (const auto& kid : children(parent)) {
            auto it = flags.find(kid);
            if (it == flags.end() ||
                it->second != RefinementFlag::Derefine || !isLeaf(kid)) {
                all_flagged = false;
                break;
            }
        }
        if (all_flagged && derefine(parent))
            result.derefined.push_back(parent);
    }
    return result;
}

bool
BlockTree::checkBalance() const
{
    bool ok = true;
    std::size_t leaves_seen = 0;
    for (const auto& [loc, node] : nodes_) {
        if (node != Node::Leaf)
            continue;
        ++leaves_seen;
        // Exact covering: no ancestor of a leaf may itself be a leaf.
        LogicalLocation up = loc;
        while (up.level > 0) {
            up = up.parent();
            auto it = nodes_.find(up);
            if (it != nodes_.end() && it->second == Node::Leaf)
                ok = false;
        }
        // 2:1: every neighbor region resolves to a leaf within 1 level.
        forEachDirection([&](int o1, int o2, int o3) {
            auto target = displace(loc, o1, o2, o3);
            if (!target)
                return;
            if (nodes_.count(*target))
                return; // same level or finer (children are checked below)
            if (target->level == 0 || !isLeaf(target->parent()))
                ok = false;
        });
        // No leaf may touch a region refined 2+ levels deeper.
        forEachDirection([&](int o1, int o2, int o3) {
            auto target = displace(loc, o1, o2, o3);
            if (!target)
                return;
            auto it = nodes_.find(*target);
            if (it == nodes_.end() || it->second == Node::Leaf)
                return;
            for (const auto& kid : touchingChildren(*target, o1, o2, o3)) {
                auto kit = nodes_.find(kid);
                if (kit == nodes_.end() || kit->second != Node::Leaf)
                    ok = false;
            }
        });
    }
    return ok && leaves_seen == leaf_count_;
}

int
BlockTree::logicalLevelOffset() const
{
    const std::int64_t max_extent =
        std::max({config_.nbx1, config_.nbx2, config_.nbx3});
    int offset = 0;
    while ((std::int64_t{1} << offset) < max_extent)
        ++offset;
    return offset;
}

} // namespace vibe
