/**
 * @file mesh.hpp
 * The Mesh: a 2:1-balanced forest of MeshBlocks tiling the domain.
 *
 * Owns the BlockTree, the Z-ordered block list, per-block neighbor
 * lists, and the block lifecycle across AMR updates (creation of
 * children on refinement, merging on derefinement). Data movement
 * between old and new blocks (prolongation/restriction) is performed by
 * the driver through the Restructure record returned from
 * applyTreeUpdate, keeping numerical operators out of the mesh layer.
 */
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "exec/exec_context.hpp"
#include "mesh/block_memory_pool.hpp"
#include "mesh/block_tree.hpp"
#include "mesh/mesh_block.hpp"
#include "mesh/variable.hpp"
#include "util/parameter_input.hpp"

namespace vibe {

/** User-facing mesh configuration (paper §II-F parameters). */
struct MeshConfig
{
    int ndim = 3;
    int nx1 = 64, nx2 = 64, nx3 = 64;    ///< Base-level cells per dim.
    int blockNx1 = 16, blockNx2 = 16, blockNx3 = 16; ///< MeshBlockSize.
    int numGhost = 4;                     ///< 4 for WENO5 (§VIII-B).
    /**
     * The paper's "#AMR Levels": total mesh levels including the base,
     * so 1 means a uniform mesh and L allows L-1 refinement generations.
     */
    int amrLevels = 3;
    bool periodic = true;
    double x1min = 0.0, x1max = 1.0;      ///< Cubic domain extent.
    /** Use the §VIII-B shared reconstruction scratch layout. */
    bool optimizeAuxMemory = false;
    /**
     * Host threads for kernel execution (`<exec> num_threads` in the
     * input deck): 1 selects the serial fast path, >1 a persistent
     * thread pool. The config only carries the knob — whoever builds
     * the ExecContext must honor it by passing
     * makeExecutionSpace(config.numThreads), as Experiment::run does;
     * the Mesh itself runs on whatever space its context supplies.
     */
    int numThreads = 1;
    /**
     * Recycle block array storage through a size-bucketed free list
     * (`<mesh> use_memory_pool`, default on): refine/derefine draws
     * from and returns to the pool instead of hitting the allocator,
     * and fully-overwritten buffers skip zero-init. Numerically
     * invisible — state-carrying arrays are still cleared on adopt.
     */
    bool useMemoryPool = true;
    /**
     * Fuse interior compute into MeshBlockPack launches over all
     * blocks (`<exec> pack_interior`): one hierarchical kernel per
     * phase instead of one launch per block, the Parthenon
     * MeshBlockPack strategy (Grete et al. 2022). Results are bitwise
     * identical to per-block launches; the tradeoff is per-block
     * exchange/compute overlap versus per-block launch overhead, so
     * it wins exactly in the small-block regime of fig05.
     */
    bool packInterior = false;
    /**
     * Simulated MPI ranks executing concurrently (`<exec> num_ranks`):
     * 1 runs the classic single-driver loop; >1 selects rank-sharded
     * execution, where a RankTeam launches one driver per rank over a
     * disjoint shard of blocks and all cross-rank coupling flows
     * through RankWorld mailboxes and collectives (§V measured mode).
     * Requires numeric execution — counting-mode studies model rank
     * counts through the platform configuration instead.
     */
    int numRanks = 1;
    /**
     * Route ghost and flux-correction exchanges through the
     * BoundaryPlan (`<exec> fused_boundaries`, default on): one fused
     * pack/unpack launch per phase over the plan's buffer table, and
     * one coalesced mailbox message per (src rank, dst rank) pair per
     * phase instead of one per face. Bitwise identical to the per-face
     * path at any thread or rank count.
     */
    bool fusedBoundaries = true;

    /** Read <mesh>/<meshblock>/<amr> sections of an input deck. */
    static MeshConfig fromParams(const ParameterInput& pin);

    /** Enforce the §II-F rules (divisibility, positive sizes, ...). */
    void validate() const;

    /** Tree description implied by this configuration. */
    TreeConfig treeConfig() const;

    /** Cell shape shared by every block. */
    BlockShape blockShape() const;

    /** Base-grid block counts per dimension. */
    std::int64_t nbx1() const { return nx1 / blockNx1; }
    std::int64_t nbx2() const { return ndim >= 2 ? nx2 / blockNx2 : 1; }
    std::int64_t nbx3() const { return ndim >= 3 ? nx3 / blockNx3 : 1; }
};

/** A neighbor entry in a block's neighbor list. */
struct NeighborBlock
{
    MeshBlock* block = nullptr;
    int ox1 = 0, ox2 = 0, ox3 = 0; ///< Direction from the owning block.
    int levelDiff = 0;             ///< neighbor level - own level (-1/0/1).
};

/**
 * The mesh. Blocks are stored in Z-order; gids are indices into that
 * order and are renumbered after every restructure, as in Parthenon.
 */
class Mesh
{
  public:
    /**
     * Build the base (level-0) mesh.
     *
     * @param registry Variable declarations; must outlive the mesh.
     * @param ctx      Execution context; must outlive the mesh.
     * @param shard_rank This replica's rank in a rank-sharded team, or
     *        -1 (the default) for the classic single-address-space
     *        mesh. A sharded replica holds the full replicated block
     *        *structure* but materializes storage only for blocks it
     *        owns; every other block is a Shadow. All blocks start on
     *        rank 0 (as in the classic path); the first load balance
     *        migrates real storage onto its owners.
     */
    Mesh(const MeshConfig& config, const VariableRegistry& registry,
         const ExecContext& ctx, int shard_rank = -1);

    const MeshConfig& config() const { return config_; }
    const VariableRegistry& registry() const { return *registry_; }
    const ExecContext& ctx() const { return *ctx_; }

    BlockTree& tree() { return tree_; }
    const BlockTree& tree() const { return tree_; }

    std::size_t numBlocks() const { return blocks_.size(); }
    MeshBlock& block(int gid) { return *blocks_.at(gid); }
    const MeshBlock& block(int gid) const { return *blocks_.at(gid); }
    const std::vector<std::unique_ptr<MeshBlock>>& blocks() const
    {
        return blocks_;
    }

    /** Block at a logical location, or nullptr if not a current leaf. */
    MeshBlock* find(const LogicalLocation& loc);

    // --- Rank-ownership view ------------------------------------------

    /** True when this mesh is one replica of a rank-sharded team. */
    bool sharded() const { return shard_rank_ >= 0; }
    /** This replica's rank (-1 for the classic mesh). */
    int shardRank() const { return shard_rank_; }
    /** Rank used for collective participation (0 on a classic mesh). */
    int collectiveRank() const { return shard_rank_ < 0 ? 0 : shard_rank_; }

    /**
     * Blocks this replica steps, in gid order: the owned shard of a
     * sharded mesh, or every block of a classic mesh. Valid until the
     * next restructure or ownership change.
     */
    const std::vector<MeshBlock*>& ownedBlocks() const
    {
        return owned_blocks_;
    }

    /** Blocks assigned to `rank`, in gid order (any replica's view). */
    std::vector<MeshBlock*> ownedBlocks(int rank) const;

    /**
     * Owner rank of the block at `loc`, or -1 if `loc` is not a
     * current leaf.
     */
    int ownerOf(const LogicalLocation& loc) const;

    /**
     * Rebuild the owned-block view after rank assignments changed
     * (load balance). Called automatically on every renumber.
     */
    void refreshOwnership();

    /** Neighbor list of block `gid` (valid until next restructure). */
    const std::vector<NeighborBlock>& neighbors(int gid) const
    {
        return neighbor_lists_.at(gid);
    }

    /** Physical geometry of a block at `loc`. */
    BlockGeometry geometryFor(const LogicalLocation& loc) const;

    /** Sum of interior cells over all blocks. */
    std::int64_t totalInteriorCells() const;

    /** Deepest level among current blocks. */
    int maxPresentLevel() const { return tree_.maxPresentLevel(); }

    /**
     * Run one tree update from refinement flags (UpdateMeshBlockTree).
     * Structure only; call applyTreeUpdate to realize block changes.
     */
    BlockTree::UpdateResult updateTree(const RefinementFlagMap& flags);

    /** Record of one restructure for data prolongation/restriction. */
    struct Restructure
    {
        struct Refined
        {
            /** The coarse block that was split (data still intact). */
            std::unique_ptr<MeshBlock> parent;
            /** Newly created children, in child-octant order. */
            std::vector<MeshBlock*> children;
        };
        struct Derefined
        {
            /** Newly created coarse block. */
            MeshBlock* parent = nullptr;
            /** The former children (data still intact). */
            std::vector<std::unique_ptr<MeshBlock>> children;
        };
        std::vector<Refined> refined;
        std::vector<Derefined> derefined;
    };

    /**
     * Realize a tree update on the block list: create children/parents,
     * retire old blocks, renumber gids in Z-order and rebuild neighbor
     * lists. Ranks are inherited (children from parent, parent from
     * first child) until the load balancer reassigns them.
     *
     * @param current_cycle Stamped on newly created blocks.
     */
    Restructure applyTreeUpdate(const BlockTree::UpdateResult& update,
                                std::int64_t current_cycle);

    /**
     * Rebuild all neighbor lists from the tree
     * (SetMeshBlockNeighbors); counted as serial work.
     */
    void rebuildNeighbors();

    /** Total neighbor-list entries (comm-graph size). */
    std::size_t totalNeighborLinks() const;

    /**
     * Block-storage recycling pool (null when disabled or in counting
     * mode, where no arrays are materialized).
     */
    BlockMemoryPool* memoryPool() { return pool_.get(); }
    const BlockMemoryPool* memoryPool() const { return pool_.get(); }

    /**
     * Materialize a sharded replica's block if this replica owns it
     * (rank just assigned by applyTreeUpdate or migration). No-op on a
     * classic mesh, whose blocks are born materialized.
     */
    void realizeBlock(MeshBlock& block);

  private:
    std::unique_ptr<MeshBlock> makeBlock(const LogicalLocation& loc);
    /** Sort blocks in Z-order, renumber gids, refresh the index. */
    void renumber();

    MeshConfig config_;
    const VariableRegistry* registry_;
    const ExecContext* ctx_;
    int shard_rank_ = -1;
    BlockTree tree_;
    /** Declared before blocks_ so every block dies before the pool. */
    std::unique_ptr<BlockMemoryPool> pool_;
    std::vector<std::unique_ptr<MeshBlock>> blocks_;
    std::vector<MeshBlock*> owned_blocks_;
    std::unordered_map<LogicalLocation, int, LogicalLocationHash>
        loc_to_gid_;
    std::vector<std::vector<NeighborBlock>> neighbor_lists_;

    /** Shared reconstruction scratch (§VIII-B layout), if enabled. */
    RealArray4 shared_recon_l_[3], shared_recon_r_[3];
    std::size_t recon_pool_bytes_ = 0;
};

} // namespace vibe
