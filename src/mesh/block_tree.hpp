/**
 * @file block_tree.hpp
 * Tree-based AMR forest over a base grid of MeshBlocks.
 *
 * The computational domain is tiled by an `nbx1 x nbx2 x nbx3` base grid
 * of blocks at refinement level 0. Refinement replaces a leaf with its
 * 2/4/8 children (binary tree / quadtree / octree for 1/2/3-D);
 * derefinement merges a complete sibling set back into the parent. Every
 * spatial point is covered by exactly one leaf, and the 2:1 rule —
 * neighboring leaves differ by at most one level, including across edges
 * and corners — is enforced on every mutation (paper §II-B, §II-F).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mesh/logical_location.hpp"

namespace vibe {

/** Per-leaf AMR decision collected from refinement tagging. */
enum class RefinementFlag : int { Derefine = -1, None = 0, Refine = 1 };

/** Static description of the refinement forest. */
struct TreeConfig
{
    int ndim = 3;                 ///< Spatial dimensionality (1, 2 or 3).
    std::int64_t nbx1 = 1;        ///< Base-grid blocks in x1.
    std::int64_t nbx2 = 1;        ///< Base-grid blocks in x2 (1 if ndim < 2).
    std::int64_t nbx3 = 1;        ///< Base-grid blocks in x3 (1 if ndim < 3).
    int maxLevel = 0;             ///< Deepest refinement level allowed.
    bool periodic1 = true;        ///< Periodic domain boundary in x1.
    bool periodic2 = true;
    bool periodic3 = true;
};

/** Map from leaf location to its refinement flag. */
using RefinementFlagMap =
    std::unordered_map<LogicalLocation, RefinementFlag, LogicalLocationHash>;

/**
 * The AMR forest: leaf/internal node set with 2:1-balanced mutations.
 *
 * The tree is purely structural — it knows nothing about variables or
 * ranks. Mesh layers block objects on top of the leaf set.
 */
class BlockTree
{
  public:
    explicit BlockTree(const TreeConfig& config);

    const TreeConfig& config() const { return config_; }

    /** Number of leaf blocks. */
    std::size_t leafCount() const { return leaf_count_; }

    /** Deepest level at which any leaf currently exists. */
    int maxPresentLevel() const;

    /** True if `loc` is a current leaf. */
    bool isLeaf(const LogicalLocation& loc) const;

    /** True if `loc` is present as a leaf or an internal node. */
    bool exists(const LogicalLocation& loc) const;

    /**
     * All leaves in Z-order (Morton order at the finest reference level),
     * the canonical block-list order used for load balancing.
     */
    std::vector<LogicalLocation> leavesZOrder() const;

    /** Visit every leaf (unordered). */
    void forEachLeaf(
        const std::function<void(const LogicalLocation&)>& fn) const;

    /** A neighboring leaf as seen from a particular direction. */
    struct NeighborInfo
    {
        LogicalLocation loc;  ///< Neighboring leaf location.
        int ox1, ox2, ox3;    ///< Direction from the querying leaf, -1/0/1.
    };

    /**
     * Leaf neighbors of `loc` across every face, edge and corner.
     *
     * Finer neighbors appear once per touching child; a coarser neighbor
     * may appear under several directions (once per shared face/edge/
     * corner), matching the per-direction ghost-buffer geometry.
     */
    std::vector<NeighborInfo> neighbors(const LogicalLocation& loc) const;

    /**
     * The leaf covering `target` (which may name a finer or coarser
     * region), or nullopt if the region lies outside the domain.
     */
    std::optional<LogicalLocation>
    coveringLeaf(const LogicalLocation& target) const;

    /** True if `loc` indexes a block inside the domain at its level. */
    bool validIndex(const LogicalLocation& loc) const;

    /**
     * Refine leaf `loc`, recursively refining coarser neighbors first so
     * the 2:1 rule holds afterwards. No-op if `loc` is not a leaf or is
     * already at the maximum level.
     *
     * @param newly_refined If non-null, every leaf that was split (the
     *        requested one plus any 2:1 propagations) is appended.
     */
    void refine(const LogicalLocation& loc,
                std::vector<LogicalLocation>* newly_refined = nullptr);

    /**
     * Merge the children of `parent` back into a single leaf.
     *
     * @return false (leaving the tree unchanged) if any child is missing
     *         or internal, or if the merge would violate the 2:1 rule.
     */
    bool derefine(const LogicalLocation& parent);

    /** Result of one AMR update pass. */
    struct UpdateResult
    {
        /** Former leaves that were split into children. */
        std::vector<LogicalLocation> refined;
        /** Parents whose children were merged away. */
        std::vector<LogicalLocation> derefined;

        bool changed() const { return !refined.empty() ||
                                      !derefined.empty(); }
    };

    /**
     * Apply one cycle of refinement flags (Parthenon's
     * UpdateMeshBlockTree): refine every Refine-flagged leaf (with 2:1
     * propagation), then merge every sibling set whose members are all
     * flagged Derefine and whose merge keeps the tree balanced.
     */
    UpdateResult update(const RefinementFlagMap& flags);

    /**
     * Validate the 2:1 invariant and exact covering across the whole
     * forest. Used by tests and debug assertions.
     */
    bool checkBalance() const;

    /**
     * Logical-level offset of the single-tree view (Fig. 2): the number
     * of doublings needed for one root to cover the base grid.
     */
    int logicalLevelOffset() const;

    /** Reference level used for Z-order keys (maxLevel of the config). */
    int referenceLevel() const { return config_.maxLevel; }

  private:
    enum class Node : std::uint8_t { Leaf, Internal };

    /** Blocks per dimension `d` (1-based) at refinement level `level`. */
    std::int64_t extentAtLevel(int d, int level) const;

    /**
     * Neighbor index of `loc` displaced by (ox1,ox2,ox3) with periodic
     * wrapping; nullopt if outside a non-periodic boundary.
     */
    std::optional<LogicalLocation>
    displace(const LogicalLocation& loc, int ox1, int ox2, int ox3) const;

    /** Children of `loc` restricted to active dimensions. */
    std::vector<LogicalLocation> children(const LogicalLocation& loc) const;

    /**
     * Children of `neighbor_region` (at neighbor_region.level + 1) that
     * touch the boundary shared with a block in direction (-ox1,...).
     */
    std::vector<LogicalLocation>
    touchingChildren(const LogicalLocation& neighbor_region, int ox1,
                     int ox2, int ox3) const;

    void forEachDirection(
        const std::function<void(int, int, int)>& fn) const;

    TreeConfig config_;
    std::unordered_map<LogicalLocation, Node, LogicalLocationHash> nodes_;
    std::size_t leaf_count_ = 0;
};

} // namespace vibe
