#include "mesh/block_memory_pool.hpp"

#include <algorithm>
#include <utility>

#include "exec/memory_tracker.hpp"

namespace vibe {

std::vector<double>
BlockMemoryPool::acquire(std::size_t count)
{
    const std::size_t bytes = count * sizeof(double);
    LockGuard lock(mutex_);
    auto it = free_.find(count);
    if (it != free_.end() && !it->second.empty()) {
        std::vector<double> storage = std::move(it->second.back());
        it->second.pop_back();
        idle_bytes_ -= bytes;
        --idle_buffers_;
        ++hits_;
        if (tracker_)
            tracker_->notePoolHit(bytes);
        return storage;
    }
    ++fresh_;
    if (tracker_)
        tracker_->notePoolMiss(bytes);
    // Reserve only: the adopter's resize/assign performs the single
    // initialization pass (see Array4's storage-adopting constructor).
    std::vector<double> storage;
    storage.reserve(count);
    return storage;
}

void
BlockMemoryPool::release(std::vector<double>&& storage)
{
    if (storage.empty())
        return;
    LockGuard lock(mutex_);
    idle_bytes_ += storage.size() * sizeof(double);
    ++idle_buffers_;
    peak_idle_bytes_ = std::max(peak_idle_bytes_, idle_bytes_);
    free_[storage.size()].push_back(std::move(storage));
}

void
BlockMemoryPool::trim()
{
    LockGuard lock(mutex_);
    free_.clear();
    idle_bytes_ = 0;
    idle_buffers_ = 0;
}

} // namespace vibe
