/**
 * @file test_block_pack.cpp
 * MeshBlockPack fused launches: flattening coverage of the packed row
 * domain, rebuild-only-on-remesh semantics, and the headline
 * guarantee — pack-based interior compute is bitwise identical to
 * per-block launches on SerialSpace and ThreadPoolSpace (1/2/4
 * threads), including immediately after a remesh rebuilds the pack.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "comm/rank_world.hpp"
#include "driver/evolution_driver.hpp"
#include "pkg/burgers_package.hpp"
#include "driver/tagger.hpp"
#include "exec/execution_space.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "exec/par_for.hpp"
#include "mesh/block_pack.hpp"

namespace vibe {
namespace {

// --- parForPack / parReducePack primitives ---------------------------

TEST(ParForPack, CoversPackedDomainExactlyOnce)
{
    for (int threads : {1, 4}) {
        ExecContext ctx(ExecMode::Execute, nullptr, nullptr,
                        makeExecutionSpace(threads));
        const int nb = 5, nn = 3, nk = 4, nj = 6, ni = 7;
        std::vector<std::atomic<int>> hits(nb * nn * nk * nj * ni);
        parForPackExec(ctx, nb, 0, nn - 1, 0, nk - 1, 0, nj - 1,
                       [&](int chunk, int b, int n, int k, int j) {
                           EXPECT_GE(chunk, 0);
                           EXPECT_LT(chunk, ctx.space().concurrency());
                           for (int i = 0; i < ni; ++i)
                               hits[(((b * nn + n) * nk + k) * nj + j) *
                                        ni +
                                    i]
                                   .fetch_add(1);
                       });
        for (const auto& h : hits)
            ASSERT_EQ(h.load(), 1) << threads << " threads";
    }
}

TEST(ParForPack, SerialVisitsPerBlockOrder)
{
    ExecContext ctx(ExecMode::Execute, nullptr, nullptr);
    std::vector<int> order;
    parForPackExec(ctx, 3, 0, 0, 0, 1, 0, 1,
                   [&](int, int b, int, int k, int j) {
                       order.push_back((b * 2 + k) * 2 + j);
                   });
    // Blocks in pack order, rows in (k, j) order within each block —
    // exactly the per-block launch sequence.
    for (std::size_t idx = 0; idx < order.size(); ++idx)
        EXPECT_EQ(order[idx], static_cast<int>(idx));
}

TEST(ParForPack, RecordsOneLaunchWithPerRankItems)
{
    KernelProfiler profiler;
    ExecContext ctx(ExecMode::Count, &profiler, nullptr);
    // Blocks 0-1 on rank 0, 2-4 on rank 1: runs of equal rank.
    const std::vector<int> ranks = {0, 0, 1, 1, 1};
    parForPack(ctx, "Phase", "kern", {2.0, 4.0}, ranks.data(), 5, 0, 0,
               0, 1, 0, 1, 0, 1,
               [](int, int, int, int, int) { FAIL(); });
    const auto stats = profiler.kernelByName("kern");
    EXPECT_EQ(stats.launches, 1u); // one fused launch
    EXPECT_DOUBLE_EQ(stats.items, 5.0 * 8.0);
    EXPECT_DOUBLE_EQ(stats.flops, 5.0 * 8.0 * 2.0);
    EXPECT_DOUBLE_EQ(stats.itemsByRank.at(0), 2.0 * 8.0);
    EXPECT_DOUBLE_EQ(stats.itemsByRank.at(1), 3.0 * 8.0);
}

TEST(ParReducePack, MinMatchesPerBlockSequence)
{
    const int nb = 6, nk = 3, nj = 4, ni = 5;
    auto value = [&](int b, int k, int j, int i) {
        return 1000.0 - static_cast<double>(((b * nk + k) * nj + j) * ni + i);
    };
    const std::vector<int> ranks(nb, 0);
    for (int threads : {1, 2, 4}) {
        ExecContext ctx(ExecMode::Execute, nullptr, nullptr,
                        makeExecutionSpace(threads));
        double fused = 1e30;
        parReducePack(ctx, "P", "min", {}, ReduceOp::Min, fused,
                      ranks.data(), nb, 0, nk - 1, 0, nj - 1, 0, ni - 1,
                      [&](int b, int k, int j, double& acc) {
                          for (int i = 0; i < ni; ++i)
                              acc = std::min(acc, value(b, k, j, i));
                      });
        // Per-block reduction sequence.
        double per_block = 1e30;
        for (int b = 0; b < nb; ++b) {
            double block_min = per_block;
            for (int k = 0; k < nk; ++k)
                for (int j = 0; j < nj; ++j)
                    for (int i = 0; i < ni; ++i)
                        block_min = std::min(block_min, value(b, k, j, i));
            per_block = std::min(per_block, block_min);
        }
        EXPECT_EQ(fused, per_block) << threads << " threads";
    }
}

// --- Pack rebuild semantics ------------------------------------------

struct PackMeshBits
{
    KernelProfiler profiler;
    MemoryTracker tracker;
    VariableRegistry registry = makeBurgersRegistry(4);
};

TEST(MeshBlockPack, ViewsTrackRestructure)
{
    PackMeshBits bits;
    ExecContext ctx(ExecMode::Execute, &bits.profiler, &bits.tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 16;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 2;
    Mesh mesh(config, bits.registry, ctx);

    MeshBlockPack pack;
    pack.ensureBuilt(mesh);
    EXPECT_TRUE(pack.valid());
    EXPECT_EQ(pack.numBlocks(), static_cast<int>(mesh.numBlocks()));
    EXPECT_EQ(pack.rebuildCount(), 1u);
    // ensureBuilt is a no-op while valid.
    pack.ensureBuilt(mesh);
    EXPECT_EQ(pack.rebuildCount(), 1u);

    RefinementFlagMap flags;
    flags[{0, 0, 0, 0}] = RefinementFlag::Refine;
    mesh.applyTreeUpdate(mesh.updateTree(flags), 0);
    pack.invalidate();
    pack.ensureBuilt(mesh);
    EXPECT_EQ(pack.rebuildCount(), 2u);
    ASSERT_EQ(pack.numBlocks(), static_cast<int>(mesh.numBlocks()));
    for (int b = 0; b < pack.numBlocks(); ++b) {
        EXPECT_EQ(pack.view(b).cons, &mesh.block(b).cons());
        EXPECT_EQ(pack.view(b).gid, b);
        EXPECT_EQ(pack.view(b).level, mesh.block(b).loc().level);
    }
}

// --- Headline equivalence: packed vs per-block stage path ------------

struct PackRun
{
    std::vector<std::string> locs;
    std::vector<std::vector<double>> cons;
    std::vector<std::vector<double>> derived;
    std::vector<double> dts;
    std::uint64_t packRebuilds = 0;
    std::int64_t remeshEvents = 0;
};

PackRun
runRipple(int num_threads, bool pack_interior, bool optimize_aux = false)
{
    PackRun out;
    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker,
                    makeExecutionSpace(num_threads));
    auto registry = makeBurgersRegistry(4);

    MeshConfig mesh_config;
    mesh_config.nx1 = mesh_config.nx2 = mesh_config.nx3 = 16;
    mesh_config.blockNx1 = mesh_config.blockNx2 = mesh_config.blockNx3 =
        8;
    mesh_config.amrLevels = 2;
    mesh_config.numThreads = num_threads;
    mesh_config.packInterior = pack_interior;
    mesh_config.optimizeAuxMemory = optimize_aux;
    Mesh mesh(mesh_config, registry, ctx);
    RankWorld world(2);

    BurgersConfig burgers_config;
    burgers_config.numScalars = 4;
    BurgersPackage package(burgers_config);
    // Analytic moving shell, off-center so the sweep refines AND
    // derefines within a few cycles — the run must restructure
    // mid-flight to cover the pack invalidate/rebuild path. (A
    // center at 0.5^3 sits on the corner shared by every block and
    // freezes the structure.)
    SphericalWaveTagger::Params wave;
    wave.cx = wave.cy = wave.cz = 0.28;
    wave.rMin = 0.08;
    wave.rMax = 0.35;
    wave.speed = 40.0;
    SphericalWaveTagger tagger(wave);

    DriverConfig driver_config;
    driver_config.ncycles = 8;
    driver_config.derefineGap = 2;
    EvolutionDriver driver(mesh, package, world, tagger, driver_config);
    driver.initialize();
    driver.run();

    for (const auto& stats : driver.history()) {
        out.dts.push_back(stats.dt);
        out.remeshEvents += stats.refined + stats.derefined;
    }
    out.packRebuilds = driver.interiorPack().rebuildCount();
    for (const auto& block : mesh.blocks()) {
        out.locs.push_back(block->loc().str());
        const RealArray4& cons = block->cons();
        out.cons.emplace_back(cons.data(), cons.data() + cons.size());
        const RealArray4& derived = block->derived();
        out.derived.emplace_back(derived.data(),
                                 derived.data() + derived.size());
    }
    return out;
}

void
expectBitwiseEqual(const PackRun& a, const PackRun& b,
                   const std::string& what)
{
    ASSERT_EQ(a.locs, b.locs) << what;
    ASSERT_EQ(a.dts.size(), b.dts.size()) << what;
    for (std::size_t c = 0; c < a.dts.size(); ++c)
        EXPECT_EQ(a.dts[c], b.dts[c]) << what << ", cycle " << c;
    ASSERT_EQ(a.cons.size(), b.cons.size()) << what;
    for (std::size_t blk = 0; blk < a.cons.size(); ++blk) {
        ASSERT_EQ(a.cons[blk].size(), b.cons[blk].size());
        EXPECT_EQ(std::memcmp(a.cons[blk].data(), b.cons[blk].data(),
                              a.cons[blk].size() * sizeof(double)),
                  0)
            << what << ", block " << a.locs[blk];
        EXPECT_EQ(std::memcmp(a.derived[blk].data(),
                              b.derived[blk].data(),
                              a.derived[blk].size() * sizeof(double)),
                  0)
            << what << " (derived), block " << a.locs[blk];
    }
}

TEST(MeshBlockPack, PackedRunMatchesPerBlockBitwise)
{
    const PackRun per_block = runRipple(1, false);
    // The ripple workload remeshes during these cycles, so the packed
    // runs cover the invalidate-and-rebuild path mid-run.
    for (int threads : {1, 2, 4}) {
        const PackRun packed = runRipple(threads, true);
        EXPECT_GT(packed.remeshEvents, 0);
        expectBitwiseEqual(per_block, packed,
                           "packed @" + std::to_string(threads) +
                               " threads vs per-block serial");
    }
}

TEST(MeshBlockPack, RebuiltOnlyOnRemesh)
{
    const PackRun packed = runRipple(1, true);
    ASSERT_GT(packed.remeshEvents, 0);
    // One build at first use, one per cache rebuild (initialization
    // restructure iterations included) — but never one per launch:
    // far fewer rebuilds than the ~10 fused launches per cycle.
    EXPECT_LE(packed.packRebuilds,
              static_cast<std::uint64_t>(packed.remeshEvents) + 4u);
}

TEST(MeshBlockPack, SharedScratchFallbackMatchesBitwise)
{
    // optimizeAuxMemory lends one recon scratch to all blocks; the
    // pack flux path must fall back to the serial per-block sweep and
    // still match the per-block graph path bitwise.
    const PackRun per_block = runRipple(1, false, true);
    for (int threads : {1, 4}) {
        const PackRun packed = runRipple(threads, true, true);
        expectBitwiseEqual(per_block, packed,
                           "shared-scratch packed @" +
                               std::to_string(threads) + " threads");
    }
}

} // namespace
} // namespace vibe
