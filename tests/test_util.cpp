/**
 * @file test_util.cpp
 * Unit tests for the util module: logging, arrays, RNG, statistics,
 * tables and the input-deck parser.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "util/array4.hpp"
#include "util/logging.hpp"
#include "util/parameter_input.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace vibe {
namespace {

// --- logging ---

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant broken"), PanicError);
}

TEST(Logging, FatalMessageContainsPieces)
{
    try {
        fatal("value=", 7, " name=", "x");
        FAIL() << "fatal did not throw";
    } catch (const FatalError& e) {
        EXPECT_STREQ(e.what(), "value=7 name=x");
    }
}

TEST(Logging, RequirePassesOnTrue)
{
    EXPECT_NO_THROW(require(true, "never"));
}

TEST(Logging, RequireThrowsOnFalse)
{
    EXPECT_THROW(require(false, "boom"), PanicError);
}

// --- Array4 ---

TEST(Array4, ZeroInitialized)
{
    RealArray4 a(2, 3, 4, 5);
    EXPECT_EQ(a.size(), 2u * 3u * 4u * 5u);
    EXPECT_DOUBLE_EQ(a(1, 2, 3, 4), 0.0);
}

TEST(Array4, RoundTripAllIndices)
{
    RealArray4 a(2, 2, 3, 4);
    double v = 0;
    for (int n = 0; n < 2; ++n)
        for (int k = 0; k < 2; ++k)
            for (int j = 0; j < 3; ++j)
                for (int i = 0; i < 4; ++i)
                    a(n, k, j, i) = v++;
    v = 0;
    for (int n = 0; n < 2; ++n)
        for (int k = 0; k < 2; ++k)
            for (int j = 0; j < 3; ++j)
                for (int i = 0; i < 4; ++i)
                    EXPECT_DOUBLE_EQ(a(n, k, j, i), v++);
}

TEST(Array4, InnermostIndexIsContiguous)
{
    RealArray4 a(1, 1, 1, 8);
    for (int i = 0; i < 8; ++i)
        a(0, 0, 0, i) = i;
    const double* p = a.data();
    for (int i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(p[i], i);
}

TEST(Array4, SliceSharesStorage)
{
    RealArray4 a(3, 2, 2, 2);
    auto s = a.slice(1);
    s(1, 1, 1) = 42.0;
    EXPECT_DOUBLE_EQ(a(1, 1, 1, 1), 42.0);
    EXPECT_EQ(s.size(), 8u);
}

TEST(Array4, SizeBytes)
{
    RealArray4 a(2, 2, 2, 2);
    EXPECT_EQ(a.sizeBytes(), 16u * sizeof(double));
}

TEST(Array4, FillSetsEveryElement)
{
    RealArray4 a(1, 2, 2, 2);
    a.fill(3.5);
    for (int k = 0; k < 2; ++k)
        for (int j = 0; j < 2; ++j)
            for (int i = 0; i < 2; ++i)
                EXPECT_DOUBLE_EQ(a(0, k, j, i), 3.5);
}

TEST(Array4, EmptyDefault)
{
    RealArray4 a;
    EXPECT_TRUE(a.empty());
    EXPECT_EQ(a.size(), 0u);
}

// --- Rng ---

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 16; ++i)
        if (a.next() != b.next())
            ++differing;
    EXPECT_GT(differing, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, UniformIntWithinBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(11);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.uniformInt(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const double x = rng.uniform(-2.0, 5.0);
        EXPECT_GE(x, -2.0);
        EXPECT_LT(x, 5.0);
    }
}

// --- Summary ---

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Summary, SingleSample)
{
    Summary s;
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

// --- CounterSet ---

TEST(CounterSet, AddAndQuery)
{
    CounterSet c;
    c.add("cells", 10);
    c.add("cells", 5);
    EXPECT_DOUBLE_EQ(c.value("cells"), 15.0);
    EXPECT_DOUBLE_EQ(c.value("missing"), 0.0);
    EXPECT_TRUE(c.has("cells"));
    EXPECT_FALSE(c.has("missing"));
}

TEST(CounterSet, ResetKeepsNames)
{
    CounterSet c;
    c.add("a", 2);
    c.reset();
    EXPECT_TRUE(c.has("a"));
    EXPECT_DOUBLE_EQ(c.value("a"), 0.0);
}

TEST(CounterSet, MergeSums)
{
    CounterSet a, b;
    a.add("x", 1);
    b.add("x", 2);
    b.add("y", 3);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.value("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.value("y"), 3.0);
}

// --- Histogram ---

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0); // clamps to bin 0
    h.add(0.5);
    h.add(9.5);
    h.add(99.0); // clamps to last bin
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_DOUBLE_EQ(h.binLow(1), 2.0);
    EXPECT_DOUBLE_EQ(h.binHigh(1), 4.0);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(1.0, 0.0, 4), PanicError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), PanicError);
}

// --- Table & formatting ---

TEST(Table, PrintsHeaderAndRows)
{
    Table t("demo");
    t.setHeader({"a", "bb"});
    t.addRow({"1", "2"});
    t.addNote("note");
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("bb"), std::string::npos);
    EXPECT_NE(out.find("note"), std::string::npos);
    EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, RowWidthMismatchPanics)
{
    Table t;
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), PanicError);
}

TEST(Table, CsvOutput)
{
    Table t;
    t.setHeader({"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Format, Helpers)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatRatio(2.9, 1), "2.9x");
    EXPECT_EQ(formatPercent(0.227, 1), "22.7%");
    EXPECT_EQ(formatBytes(75.5 * 1024 * 1024 * 1024), "75.5 GB");
    EXPECT_EQ(formatSeconds(257.21), "257.21 s");
    EXPECT_EQ(formatSeconds(0.0025), "2.50 ms");
    EXPECT_NE(formatSci(2.9e7, 1).find("e+07"), std::string::npos);
}

// --- ParameterInput ---

TEST(ParameterInput, ParsesBlocksAndTypes)
{
    auto pin = ParameterInput::fromString(R"(
<parthenon/mesh>
nx1 = 128     # cells
periodic = true
<parthenon/meshblock>
nx1 = 16
cfl = 0.4
)");
    EXPECT_EQ(pin.getInt("parthenon/mesh", "nx1", 0), 128);
    EXPECT_EQ(pin.getInt("parthenon/meshblock", "nx1", 0), 16);
    EXPECT_TRUE(pin.getBool("parthenon/mesh", "periodic", false));
    EXPECT_DOUBLE_EQ(pin.getReal("parthenon/meshblock", "cfl", 0.0),
                     0.4);
}

TEST(ParameterInput, DefaultsWhenMissing)
{
    auto pin = ParameterInput::fromString("");
    EXPECT_EQ(pin.getInt("a", "b", 7), 7);
    EXPECT_EQ(pin.getString("a", "b", "dflt"), "dflt");
}

TEST(ParameterInput, LaterKeysOverride)
{
    auto pin = ParameterInput::fromString("<m>\nx = 1\nx = 2\n");
    EXPECT_EQ(pin.getInt("m", "x", 0), 2);
}

TEST(ParameterInput, SetOverrides)
{
    auto pin = ParameterInput::fromString("<m>\nx = 1\n");
    pin.set("m", "x", "9");
    EXPECT_EQ(pin.getInt("m", "x", 0), 9);
}

TEST(ParameterInput, Int64KeepsFullWidth)
{
    // 2^32 truncates through getInt but survives getInt64 — the width
    // cycle-valued knobs (e.g. <exec> fail_cycle) depend on.
    auto pin = ParameterInput::fromString("<m>\nx = 4294967296\n");
    EXPECT_EQ(pin.getInt64("m", "x", 0), INT64_C(4294967296));
    EXPECT_EQ(pin.getInt64("m", "missing", -1), -1);
    auto bad = ParameterInput::fromString("<m>\nx = abc\n");
    EXPECT_THROW(bad.getInt64("m", "x", 0), FatalError);
}

TEST(ParameterInput, MalformedLineIsFatal)
{
    EXPECT_THROW(ParameterInput::fromString("<m>\nno equals sign\n"),
                 FatalError);
    EXPECT_THROW(ParameterInput::fromString("<unclosed\n"), FatalError);
    EXPECT_THROW(ParameterInput::fromString("<>\n"), FatalError);
}

TEST(ParameterInput, BadTypesAreFatal)
{
    auto pin = ParameterInput::fromString("<m>\nx = abc\n");
    EXPECT_THROW(pin.getInt("m", "x", 0), FatalError);
    EXPECT_THROW(pin.getReal("m", "x", 0.0), FatalError);
    EXPECT_THROW(pin.getBool("m", "x", false), FatalError);
}

TEST(ParameterInput, RequireVariants)
{
    auto pin = ParameterInput::fromString("<m>\nx = 3\n");
    EXPECT_EQ(pin.requireInt("m", "x"), 3);
    EXPECT_THROW(pin.requireInt("m", "missing"), FatalError);
    EXPECT_THROW(pin.requireReal("m", "missing"), FatalError);
}

TEST(ParameterInput, MissingFileIsFatal)
{
    EXPECT_THROW(ParameterInput::fromFile("/nonexistent/deck.in"),
                 FatalError);
}

TEST(ParameterInput, UnknownKnobInRecognizedBlockIsFatal)
{
    // A typo inside a recognized block must not silently select the
    // default value.
    EXPECT_THROW(
        ParameterInput::fromString("<exec>\npack_interor = true\n"),
        FatalError);
    try {
        ParameterInput::fromString("<mesh>\nnx_1 = 64\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError& err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("nx_1"), std::string::npos) << what;
        EXPECT_NE(what.find("<mesh>"), std::string::npos) << what;
    }
    // Package blocks are validated too.
    EXPECT_THROW(
        ParameterInput::fromString("<advection>\nvelocity_x = 1\n"),
        FatalError);
    // Unrecognized block names pass through untouched.
    auto pin = ParameterInput::fromString("<myapp>\ncustom = 1\n");
    EXPECT_EQ(pin.getInt("myapp", "custom", 0), 1);
}

} // namespace
} // namespace vibe
