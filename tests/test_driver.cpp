/**
 * @file test_driver.cpp
 * Tests for the task list, taggers, load balancer and the evolution
 * driver (cycle bookkeeping, derefinement gap, counting-vs-numeric
 * structural equivalence).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <string>
#include <thread>

#include "driver/evolution_driver.hpp"
#include "pkg/burgers_package.hpp"
#include "driver/load_balance.hpp"
#include "driver/tagger.hpp"
#include "driver/task_list.hpp"
#include "exec/execution_space.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "util/logging.hpp"

namespace vibe {
namespace {

// --- TaskList ---

TEST(TaskList, ExecutesInDependencyOrder)
{
    TaskList tl;
    std::vector<int> order;
    const TaskId a = tl.addTask("a", [&] {
        order.push_back(0);
        return TaskStatus::Complete;
    });
    const TaskId b = tl.addTask(
        "b",
        [&] {
            order.push_back(1);
            return TaskStatus::Complete;
        },
        {a});
    tl.addTask(
        "c",
        [&] {
            order.push_back(2);
            return TaskStatus::Complete;
        },
        {b, a});
    tl.execute();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(tl.completionOrder(),
              (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TaskList, IteratingTaskRetries)
{
    TaskList tl;
    int polls = 0;
    tl.addTask("poll", [&] {
        ++polls;
        return polls < 3 ? TaskStatus::Iterate : TaskStatus::Complete;
    });
    bool ran_after = false;
    tl.addTask(
        "after",
        [&] {
            ran_after = true;
            return TaskStatus::Complete;
        },
        {0});
    tl.execute();
    EXPECT_EQ(polls, 3);
    EXPECT_TRUE(ran_after);
}

TEST(TaskList, UnknownDependencyPanics)
{
    TaskList tl;
    EXPECT_THROW(
        tl.addTask("x", [] { return TaskStatus::Complete; }, {5}),
        PanicError);
}

TEST(TaskList, StuckTaskDetected)
{
    TaskList tl;
    tl.addTask("stuck", [] { return TaskStatus::Iterate; });
    EXPECT_THROW(tl.execute(10), PanicError);
}

TEST(TaskList, StalledPollingNamesStuckTasks)
{
    // Regression: a permanently-blocked polling task used to count as
    // progress every pass ("any_ran"), burning all max_passes and
    // dying with a generic bound message. The stall detector must fire
    // well before the pass bound and name the stuck task.
    TaskList tl;
    tl.addTask("fine", [] { return TaskStatus::Complete; });
    tl.addTask("never-arrives", [] { return TaskStatus::Iterate; });
    try {
        tl.execute();
        FAIL() << "stuck polling task not detected";
    } catch (const PanicError& err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("never-arrives"), std::string::npos) << what;
        EXPECT_NE(what.find("no task completed"), std::string::npos)
            << what;
        // The healthy task must not be blamed.
        EXPECT_EQ(what.find("fine"), std::string::npos) << what;
    }
}

TEST(TaskList, ThreadedExecutorCompletesGraphInTopologicalOrder)
{
    auto space = makeExecutionSpace(4);
    TaskList tl;
    int polls = 0;
    const TaskId a =
        tl.addTask("a", [] { return TaskStatus::Complete; });
    const TaskId poll = tl.addTask(
        "poll",
        [&] {
            // Counter mutated by one task only; completion gates deps.
            ++polls;
            return polls < 5 ? TaskStatus::Iterate
                             : TaskStatus::Complete;
        },
        {a});
    const TaskId b = tl.addTask(
        "b", [] { return TaskStatus::Complete; }, {a});
    tl.addTask("join", [] { return TaskStatus::Complete; }, {poll, b});

    TaskExecOptions options;
    options.space = space.get();
    tl.execute(options);

    EXPECT_EQ(polls, 5);
    const auto& order = tl.completionOrder();
    ASSERT_EQ(order.size(), 4u);
    auto position = [&](const std::string& name) {
        for (std::size_t i = 0; i < order.size(); ++i)
            if (order[i] == name)
                return i;
        ADD_FAILURE() << name << " missing from completion order";
        return order.size();
    };
    // Dependencies must precede dependents, whatever the interleaving.
    EXPECT_LT(position("a"), position("poll"));
    EXPECT_LT(position("a"), position("b"));
    EXPECT_LT(position("poll"), position("join"));
    EXPECT_LT(position("b"), position("join"));
}

TEST(TaskList, ThreadedExecutorOverlapsIndependentTasks)
{
    // A polling task that only completes once an independent task has
    // run proves the two are in flight concurrently — the serial scan
    // would also pass (the poller iterates across passes), so pin the
    // executor by requiring a *blocking* handshake inside one task.
    auto space = makeExecutionSpace(4);
    std::atomic<bool> flag{false};
    TaskList tl;
    tl.addTask("blocker", [&] {
        // Busy-wait inside a single task run: only a concurrently
        // executing "setter" task can release it.
        const auto start = std::chrono::steady_clock::now();
        while (!flag.load()) {
            if (std::chrono::steady_clock::now() - start >
                std::chrono::seconds(30))
                return TaskStatus::Complete; // fail via EXPECT below
            std::this_thread::yield();
        }
        return TaskStatus::Complete;
    });
    tl.addTask("setter", [&] {
        flag.store(true);
        return TaskStatus::Complete;
    });
    TaskExecOptions options;
    options.space = space.get();
    tl.execute(options);
    EXPECT_TRUE(flag.load());
}

TEST(TaskList, ThreadedStuckPollPanicsWithNames)
{
    auto space = makeExecutionSpace(4);
    TaskList tl;
    tl.addTask("done", [] { return TaskStatus::Complete; });
    tl.addTask("wedged", [] { return TaskStatus::Iterate; });
    TaskExecOptions options;
    options.space = space.get();
    options.stall_passes = 10;
    try {
        tl.execute(options);
        FAIL() << "stuck polling task not detected";
    } catch (const PanicError& err) {
        EXPECT_NE(std::string(err.what()).find("wedged"),
                  std::string::npos)
            << err.what();
    }
}

TEST(TaskList, ThreadedMultipleStuckPollsStillPanic)
{
    // Regression: with several permanently-Iterate pollers in flight
    // at once, a naive "anything in flight = progress possible" reset
    // would livelock. Repeat-pollers must not count as progress.
    auto space = makeExecutionSpace(4);
    TaskList tl;
    tl.addTask("done", [] { return TaskStatus::Complete; });
    for (int i = 0; i < 3; ++i)
        tl.addTask("wedged" + std::to_string(i),
                   [] { return TaskStatus::Iterate; });
    TaskExecOptions options;
    options.space = space.get();
    options.stall_passes = 10;
    try {
        tl.execute(options);
        FAIL() << "stuck polling tasks not detected";
    } catch (const PanicError& err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("wedged0"), std::string::npos) << what;
        EXPECT_NE(what.find("wedged2"), std::string::npos) << what;
    }
}

TEST(TaskList, ThreadedTaskExceptionPropagates)
{
    auto space = makeExecutionSpace(4);
    TaskList tl;
    tl.addTask("ok", [] { return TaskStatus::Complete; });
    tl.addTask("boom", []() -> TaskStatus {
        panic("task body failure");
    });
    TaskExecOptions options;
    options.space = space.get();
    EXPECT_THROW(tl.execute(options), PanicError);

    // The same list and pool stay usable for a fresh run.
    TaskList again;
    std::atomic<int> runs{0};
    for (int i = 0; i < 8; ++i)
        again.addTask("t" + std::to_string(i), [&] {
            runs.fetch_add(1);
            return TaskStatus::Complete;
        });
    again.execute(options);
    EXPECT_EQ(runs.load(), 8);
}

// --- SphericalWaveTagger ---

TEST(WaveTagger, RadiusTriangleWave)
{
    SphericalWaveTagger::Params p;
    p.rMin = 0.1;
    p.rMax = 0.3;
    p.speed = 0.1;
    SphericalWaveTagger tagger(p);
    EXPECT_NEAR(tagger.radiusAt(0.0), 0.1, 1e-12);
    EXPECT_NEAR(tagger.radiusAt(1.0), 0.2, 1e-12);
    EXPECT_NEAR(tagger.radiusAt(2.0), 0.3, 1e-12); // peak
    EXPECT_NEAR(tagger.radiusAt(3.0), 0.2, 1e-12); // descending
    EXPECT_NEAR(tagger.radiusAt(4.0), 0.1, 1e-12); // trough
}

struct DriverFixture
{
    KernelProfiler profiler;
    MemoryTracker tracker;
    VariableRegistry registry = makeBurgersRegistry(8);
    std::unique_ptr<ExecContext> ctx;
    std::unique_ptr<Mesh> mesh;
    std::unique_ptr<RankWorld> world;
    BurgersPackage package{BurgersConfig{}};

    DriverFixture(int mesh_nx, int block_nx, int levels, ExecMode mode,
                  int nranks = 1)
    {
        // VIBE_NUM_THREADS (the CI threaded matrix leg) routes these
        // driver runs through the threaded task-graph executor.
        ctx = std::make_unique<ExecContext>(
            mode, &profiler, &tracker,
            makeExecutionSpace(envNumThreads()));
        MeshConfig config;
        config.nx1 = config.nx2 = config.nx3 = mesh_nx;
        config.blockNx1 = config.blockNx2 = config.blockNx3 = block_nx;
        config.amrLevels = levels;
        mesh = std::make_unique<Mesh>(config, registry, *ctx);
        world = std::make_unique<RankWorld>(nranks);
    }
};

TEST(WaveTagger, TagsBlocksOnShell)
{
    DriverFixture f(32, 8, 2, ExecMode::Count);
    SphericalWaveTagger::Params p;
    p.rMin = 0.25;
    p.rMax = 0.4;
    p.width = 0.02;
    SphericalWaveTagger tagger(p);
    tagger.tagAll(*f.mesh, 0.0, 0);
    int refine = 0, derefine = 0;
    for (const auto& block : f.mesh->blocks()) {
        if (block->tag() == RefinementFlag::Refine)
            ++refine;
        if (block->tag() == RefinementFlag::Derefine)
            ++derefine;
    }
    // Shell at r = 0.25 crosses some blocks but not the far corners.
    EXPECT_GT(refine, 0);
    EXPECT_GT(derefine, 0);
    EXPECT_LT(refine, static_cast<int>(f.mesh->numBlocks()));
    // Kernel work recorded for tagging (FirstDerivative).
    EXPECT_GT(f.profiler.kernelByName("FirstDerivative").items, 0.0);
}

// --- Load balancer ---

TEST(LoadBalance, UniformBlocksBalanceEvenly)
{
    DriverFixture f(32, 8, 1, ExecMode::Count, 4);
    auto stats = loadBalance(*f.mesh, *f.world);
    EXPECT_NEAR(stats.imbalance(), 1.0, 1e-9);
    std::vector<int> per_rank(4, 0);
    for (const auto& block : f.mesh->blocks())
        ++per_rank[block->rank()];
    for (int count : per_rank)
        EXPECT_EQ(count, 16);
    // First pass moves blocks off rank 0.
    EXPECT_EQ(stats.movedBlocks, 48);
    EXPECT_GT(stats.movedBytes, 0.0);
    EXPECT_EQ(f.world->traffic().allGathers, 1u);
}

TEST(LoadBalance, SecondPassIsStable)
{
    DriverFixture f(32, 8, 1, ExecMode::Count, 4);
    loadBalance(*f.mesh, *f.world);
    auto stats = loadBalance(*f.mesh, *f.world);
    EXPECT_EQ(stats.movedBlocks, 0);
}

TEST(LoadBalance, MoreRanksThanBlocks)
{
    DriverFixture f(16, 8, 1, ExecMode::Count, 16);
    auto stats = loadBalance(*f.mesh, *f.world);
    // 8 blocks over 16 ranks: every block on its own rank.
    std::vector<int> per_rank(16, 0);
    for (const auto& block : f.mesh->blocks())
        ++per_rank[block->rank()];
    for (const auto& block : f.mesh->blocks())
        EXPECT_EQ(per_rank[block->rank()], 1);
    EXPECT_GT(stats.maxRankCost, 0.0);
}

TEST(LoadBalance, ZOrderContiguity)
{
    DriverFixture f(32, 8, 1, ExecMode::Count, 4);
    loadBalance(*f.mesh, *f.world);
    // Ranks must be non-decreasing along the Z-ordered block list.
    int prev = 0;
    for (const auto& block : f.mesh->blocks()) {
        EXPECT_GE(block->rank(), prev);
        prev = block->rank();
    }
}

// --- EvolutionDriver ---

TEST(Driver, CountingRunAdvancesAndRecords)
{
    DriverFixture f(32, 8, 2, ExecMode::Count);
    SphericalWaveTagger tagger;
    DriverConfig config;
    config.ncycles = 5;
    config.fixedDt = 1e-3;
    EvolutionDriver driver(*f.mesh, f.package, *f.world, tagger, config);
    driver.initialize();
    driver.run();
    EXPECT_EQ(driver.cycle(), 5);
    EXPECT_NEAR(driver.time(), 5e-3, 1e-12);
    EXPECT_EQ(driver.history().size(), 5u);
    EXPECT_GT(driver.zoneCycles(), 0);
    EXPECT_GT(driver.commCells(), 0);
    // Every cycle processed at least the base mesh.
    for (const auto& s : driver.history()) {
        EXPECT_GE(s.nblocks, 64u);
        EXPECT_EQ(s.interiorCells,
                  static_cast<std::int64_t>(s.nblocks) * 512);
        EXPECT_GT(s.wireCells, 0);
    }
}

TEST(Driver, InitialRefinementConformsToTagger)
{
    DriverFixture f(32, 8, 3, ExecMode::Count);
    SphericalWaveTagger tagger;
    DriverConfig config;
    config.ncycles = 0;
    EvolutionDriver driver(*f.mesh, f.package, *f.world, tagger, config);
    driver.initialize();
    // Initial AMR must reach the max level on the shell.
    EXPECT_EQ(f.mesh->maxPresentLevel(), 2);
    EXPECT_GT(f.mesh->numBlocks(), 64u);
}

TEST(Driver, DerefineGapHoldsYoungBlocks)
{
    DriverFixture f(32, 8, 2, ExecMode::Count);
    // A tagger that refines everything on cycle 0 and derefines
    // everything afterwards.
    struct FlipTagger : RefinementTagger
    {
        void tagAll(Mesh& mesh, double, std::int64_t cycle) override
        {
            for (const auto& block : mesh.blocks())
                block->setTag(cycle == 0 ? RefinementFlag::Refine
                                         : RefinementFlag::Derefine);
        }
    } tagger;
    DriverConfig config;
    config.ncycles = 12;
    config.derefineGap = 10;
    EvolutionDriver driver(*f.mesh, f.package, *f.world, tagger, config);
    driver.initialize();
    driver.run();
    const auto& history = driver.history();
    // Cycles 1..9: derefinement suppressed by the gap.
    for (int c = 1; c < 10; ++c)
        EXPECT_EQ(history[c].derefined, 0) << "cycle " << c;
    // Once the gap expires the merges happen.
    int merged = 0;
    for (const auto& s : history)
        merged += s.derefined;
    EXPECT_GT(merged, 0);
}

TEST(Driver, CountingAndNumericProduceIdenticalStructure)
{
    // Same tagger, same config: the mesh evolution (block counts, comm
    // volumes) must be identical whether kernels execute or not.
    DriverFixture numeric(16, 8, 2, ExecMode::Execute);
    DriverFixture counting(16, 8, 2, ExecMode::Count);
    SphericalWaveTagger::Params p;
    p.rMin = 0.2;
    p.rMax = 0.4;
    p.speed = 10.0; // move fast so structure actually changes
    DriverConfig config;
    config.ncycles = 6;
    config.fixedDt = 1e-3;

    SphericalWaveTagger tag_a(p), tag_b(p);
    EvolutionDriver drv_a(*numeric.mesh, numeric.package,
                          *numeric.world, tag_a, config);
    EvolutionDriver drv_b(*counting.mesh, counting.package,
                          *counting.world, tag_b, config);
    drv_a.initialize();
    drv_b.initialize();
    // Numeric dt comes from the CFL estimate; force identical stepping
    // by comparing structure at matching cycles only (dt only affects
    // the tagger clock, which we pinned via fixedDt in counting mode).
    drv_a.run();
    drv_b.run();

    ASSERT_EQ(drv_a.history().size(), drv_b.history().size());
    EXPECT_EQ(drv_a.commCells(), drv_b.commCells());
    EXPECT_EQ(drv_a.zoneCycles(), drv_b.zoneCycles());
    for (std::size_t c = 0; c < drv_a.history().size(); ++c) {
        EXPECT_EQ(drv_a.history()[c].nblocks,
                  drv_b.history()[c].nblocks)
            << "cycle " << c;
        EXPECT_EQ(drv_a.history()[c].wireCells,
                  drv_b.history()[c].wireCells)
            << "cycle " << c;
    }
}

TEST(Driver, MassConservedThroughAmrCycles)
{
    // The headline correctness property: periodic domain + flux
    // correction + conservative prolongation/restriction keep total
    // q0 mass constant to round-off even as blocks refine/derefine.
    DriverFixture f(16, 8, 2, ExecMode::Execute);
    BurgersConfig bc;
    bc.refineTol = 0.05;
    bc.derefineTol = 0.01;
    bc.ic = InitialCondition::GaussianBlob;
    BurgersPackage package(bc);
    GradientTagger tagger(package);
    DriverConfig config;
    config.ncycles = 8;
    config.derefineGap = 3;
    EvolutionDriver driver(*f.mesh, package, *f.world, tagger, config);
    driver.initialize();
    driver.run();
    const auto& history = driver.history();
    ASSERT_GE(history.size(), 2u);
    for (std::size_t c = 1; c < history.size(); ++c)
        EXPECT_NEAR(history[c].mass, history[0].mass,
                    1e-11 * std::max(1.0, std::fabs(history[0].mass)))
            << "cycle " << c;
}

TEST(Driver, PhasesMatchPaperFunctionInventory)
{
    DriverFixture f(32, 8, 2, ExecMode::Count);
    SphericalWaveTagger tagger;
    DriverConfig config;
    config.ncycles = 3;
    EvolutionDriver driver(*f.mesh, f.package, *f.world, tagger, config);
    driver.initialize();
    driver.run();

    std::set<std::string> phases;
    for (const auto& [key, stats] : f.profiler.kernels())
        phases.insert(key.first);
    for (const auto& [key, stats] : f.profiler.serial())
        phases.insert(key.first);
    // The Fig. 11 categories that must appear in any AMR run.
    for (const char* phase :
         {"Initialise", "CalculateFluxes", "FluxDivergence",
          "WeightedSumData", "FillDerived", "SendBoundBufs",
          "SetBounds", "StartReceiveBoundBufs", "ReceiveBoundBufs",
          "EstimateTimestep", "Refinement::Tag", "UpdateMeshBlockTree",
          "Redistr.AndRef.MeshBlocks", "other"})
        EXPECT_TRUE(phases.count(phase)) << phase;
}

TEST(Driver, TimestepEstimatedOncePerCycle)
{
    // Regression: the driver used to run estimateTimestep both in the
    // pre-loop setup and at the end of every cycle, double-counting
    // the EstTimeMesh sweep. With a uniform (no-AMR) mesh the launch
    // count is exact: one per block per cycle, nothing extra.
    DriverFixture f(16, 8, 1, ExecMode::Count);
    SphericalWaveTagger tagger;
    DriverConfig config;
    config.ncycles = 4;
    EvolutionDriver driver(*f.mesh, f.package, *f.world, tagger, config);
    driver.initialize();
    driver.run();
    const auto stats = f.profiler.kernelByName("EstTimeMesh");
    EXPECT_EQ(stats.launches,
              4u * static_cast<std::uint64_t>(f.mesh->numBlocks()));
}

TEST(Driver, OverlapTimersAccumulate)
{
    DriverFixture f(16, 8, 2, ExecMode::Count);
    SphericalWaveTagger tagger;
    DriverConfig config;
    config.ncycles = 2;
    EvolutionDriver driver(*f.mesh, f.package, *f.world, tagger, config);
    driver.initialize();
    driver.run();
    // Every stage graph contributes wall time and both categories.
    EXPECT_GT(driver.taskWallSeconds(), 0.0);
    EXPECT_GT(driver.taskCommSeconds(), 0.0);
    EXPECT_GT(driver.taskComputeSeconds(), 0.0);
}

TEST(Driver, ConfigFromParams)
{
    auto pin = ParameterInput::fromString(R"(
<driver>
ncycles = 25
<amr>
derefine_gap = 7
)");
    auto config = DriverConfig::fromParams(pin);
    EXPECT_EQ(config.ncycles, 25);
    EXPECT_EQ(config.derefineGap, 7);
}

} // namespace
} // namespace vibe
