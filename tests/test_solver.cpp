/**
 * @file test_solver.cpp
 * Tests for reconstruction (WENO5/PLM), the HLL Riemann solver, the
 * Burgers package operators, RK2 stages, and prolongation/restriction
 * operators.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "mesh/mesh.hpp"
#include "mesh/prolong_restrict.hpp"
#include "pkg/burgers_package.hpp"
#include "solver/reconstruct.hpp"
#include "solver/riemann.hpp"
#include "solver/rk2.hpp"

namespace vibe {
namespace {

// --- WENO5 ---

TEST(Weno5, ExactOnConstant)
{
    EXPECT_NEAR(weno5Face(3.0, 3.0, 3.0, 3.0, 3.0), 3.0, 1e-14);
}

TEST(Weno5, ExactOnLinear)
{
    // Cell averages of a linear function are its center values; the
    // interface value is the midpoint.
    EXPECT_NEAR(weno5Face(-2, -1, 0, 1, 2), 0.5, 1e-10);
    EXPECT_NEAR(weno5Face(4, 6, 8, 10, 12), 9.0, 1e-9);
}

TEST(Weno5, HighOrderOnParabola)
{
    // u(x) = x^2 cell averages on unit cells centered at -2..2:
    // avg over [i-1/2, i+1/2] = i^2 + 1/12. Interface value at
    // x = 1/2 is 1/4.
    const double a = 1.0 / 12.0;
    EXPECT_NEAR(weno5Face(4 + a, 1 + a, 0 + a, 1 + a, 4 + a), 0.25,
                1e-3);
}

TEST(Weno5, EssentiallyNonOscillatoryAtJump)
{
    // Step data: reconstruction must not overshoot the data range.
    const double v = weno5Face(0.0, 0.0, 0.0, 1.0, 1.0);
    EXPECT_GE(v, -1e-10);
    EXPECT_LE(v, 1.0 + 1e-10);
    const double w = weno5Face(1.0, 1.0, 1.0, 0.0, 0.0);
    EXPECT_GE(w, -0.2);
    EXPECT_LE(w, 1.2);
}

TEST(Weno5, FifthOrderConvergenceOnSmoothData)
{
    // Interface reconstruction error for sin(x) should shrink ~h^5.
    auto error_at = [](double h) {
        auto avg = [h](double center) {
            // Exact cell average of sin over [center-h/2, center+h/2].
            return (std::cos(center - h / 2) - std::cos(center + h / 2)) /
                   h;
        };
        const double x = 0.3;
        const double recon =
            weno5Face(avg(x - 2 * h), avg(x - h), avg(x), avg(x + h),
                      avg(x + 2 * h));
        return std::fabs(recon - std::sin(x + h / 2));
    };
    const double e1 = error_at(0.1);
    const double e2 = error_at(0.05);
    const double order = std::log2(e1 / e2);
    EXPECT_GT(order, 4.5);
}

// --- PLM ---

TEST(Plm, ExactOnLinear)
{
    EXPECT_NEAR(plmFace(1.0, 2.0, 3.0), 2.5, 1e-14);
}

TEST(Plm, LimitsAtExtrema)
{
    // Local max: slope limited to zero.
    EXPECT_NEAR(plmFace(1.0, 2.0, 1.0), 2.0, 1e-14);
    EXPECT_NEAR(plmFace(2.0, 1.0, 2.0), 1.0, 1e-14);
}

TEST(Plm, PicksSmallerSlope)
{
    // dm = 1, dp = 4 -> slope 1.
    EXPECT_NEAR(plmFace(0.0, 1.0, 5.0), 1.5, 1e-14);
}

// --- minmod ---

TEST(Minmod, Basics)
{
    EXPECT_DOUBLE_EQ(minmod(1.0, 2.0), 1.0);
    EXPECT_DOUBLE_EQ(minmod(-3.0, -2.0), -2.0);
    EXPECT_DOUBLE_EQ(minmod(1.0, -1.0), 0.0);
    EXPECT_DOUBLE_EQ(minmod(0.0, 5.0), 0.0);
}

// --- HLL ---

TEST(Hll, ConsistencyWithEqualStates)
{
    // F(u, u) must equal the physical flux.
    const int ncomp = 5;
    double u[5] = {0.7, -0.3, 0.2, 1.1, 0.4};
    double flux[5];
    hllFlux(u, u, 0, ncomp, flux);
    for (int m = 0; m < 3; ++m)
        EXPECT_NEAR(flux[m], 0.5 * u[0] * u[m], 1e-14);
    for (int m = 3; m < ncomp; ++m)
        EXPECT_NEAR(flux[m], u[0] * u[m], 1e-14);
}

TEST(Hll, UpwindsSupersonicRight)
{
    // Both speeds positive: flux is the left flux.
    double ul[4] = {1.0, 0.2, 0.0, 2.0};
    double ur[4] = {0.5, 0.1, 0.0, 3.0};
    double flux[4];
    hllFlux(ul, ur, 0, 4, flux);
    EXPECT_NEAR(flux[0], 0.5 * 1.0 * 1.0, 1e-14);
    EXPECT_NEAR(flux[3], 1.0 * 2.0, 1e-14);
}

TEST(Hll, UpwindsSupersonicLeft)
{
    double ul[4] = {-0.5, 0.0, 0.0, 2.0};
    double ur[4] = {-1.0, 0.0, 0.0, 3.0};
    double flux[4];
    hllFlux(ul, ur, 0, 4, flux);
    EXPECT_NEAR(flux[0], 0.5 * (-1.0) * (-1.0), 1e-14);
    EXPECT_NEAR(flux[3], (-1.0) * 3.0, 1e-14);
}

TEST(Hll, StagnantInterfaceAveragesFlux)
{
    double ul[4] = {0.0, 1.0, 0.0, 2.0};
    double ur[4] = {0.0, -1.0, 0.0, 4.0};
    double flux[4];
    hllFlux(ul, ur, 0, 4, flux);
    EXPECT_NEAR(flux[0], 0.0, 1e-14);
    EXPECT_NEAR(flux[3], 0.0, 1e-14);
}

TEST(Hll, DirectionSelectsVelocityComponent)
{
    double ul[4] = {0.0, 2.0, 0.0, 1.0};
    double ur[4] = {0.0, 2.0, 0.0, 1.0};
    double flux[4];
    hllFlux(ul, ur, 1, 4, flux); // y-direction: vel = u[1] = 2
    EXPECT_NEAR(flux[1], 0.5 * 2.0 * 2.0, 1e-14);
    EXPECT_NEAR(flux[3], 2.0 * 1.0, 1e-14);
}

// --- Fixture for package-level tests ---

struct SolverFixture
{
    KernelProfiler profiler;
    MemoryTracker tracker;
    VariableRegistry registry = makeBurgersRegistry(8);
    std::unique_ptr<ExecContext> ctx;
    std::unique_ptr<Mesh> mesh;
    std::unique_ptr<RankWorld> world;
    BurgersPackage package{BurgersConfig{}};

    explicit SolverFixture(int mesh_nx = 16, int block_nx = 8,
                           int levels = 1)
    {
        ctx = std::make_unique<ExecContext>(ExecMode::Execute,
                                            &profiler, &tracker);
        MeshConfig config;
        config.nx1 = config.nx2 = config.nx3 = mesh_nx;
        config.blockNx1 = config.blockNx2 = config.blockNx3 = block_nx;
        config.amrLevels = levels;
        mesh = std::make_unique<Mesh>(config, registry, *ctx);
        world = std::make_unique<RankWorld>(1);
    }
};

TEST(Burgers, FillDerivedComputesKineticEnergy)
{
    SolverFixture f;
    for (const auto& block : f.mesh->blocks()) {
        block->cons().fill(0.0);
        const BlockShape s = block->shape();
        for (int k = s.ks(); k <= s.ke(); ++k)
            for (int j = s.js(); j <= s.je(); ++j)
                for (int i = s.is(); i <= s.ie(); ++i) {
                    block->cons()(0, k, j, i) = 2.0;
                    block->cons()(1, k, j, i) = 1.0;
                    block->cons()(2, k, j, i) = 2.0;
                    block->cons()(3, k, j, i) = 0.5; // q0
                }
    }
    f.package.fillDerived(*f.mesh);
    const BlockShape s = f.mesh->config().blockShape();
    // d = 0.5 * 0.5 * (4 + 1 + 4) = 2.25
    EXPECT_NEAR(f.mesh->block(0).derived()(0, s.ks(), s.js(), s.is()),
                2.25, 1e-14);
}

TEST(Burgers, EstimateTimestepCflScaling)
{
    SolverFixture f;
    for (const auto& block : f.mesh->blocks()) {
        block->cons().fill(0.0);
        const BlockShape s = block->shape();
        for (int k = s.ks(); k <= s.ke(); ++k)
            for (int j = s.js(); j <= s.je(); ++j)
                for (int i = s.is(); i <= s.ie(); ++i)
                    block->cons()(0, k, j, i) = 2.0; // |u| = 2
    }
    const double dt = f.package.estimateTimestep(*f.mesh, *f.world, 1.0);
    // dx = 1/16, cfl = 0.4 -> dt = 0.4 * (1/16) / 2 = 0.0125.
    EXPECT_NEAR(dt, 0.0125, 1e-12);
    EXPECT_EQ(f.world->traffic().allReduces, 1u);
}

TEST(Burgers, MassHistorySumsScalar)
{
    SolverFixture f;
    for (const auto& block : f.mesh->blocks()) {
        block->cons().fill(0.0);
        const BlockShape s = block->shape();
        for (int k = s.ks(); k <= s.ke(); ++k)
            for (int j = s.js(); j <= s.je(); ++j)
                for (int i = s.is(); i <= s.ie(); ++i)
                    block->cons()(3, k, j, i) = 2.0;
    }
    const double mass = f.package.massHistory(*f.mesh, *f.world);
    EXPECT_NEAR(mass, 2.0, 1e-12); // unit domain, q0 = 2 everywhere
}

TEST(Burgers, UniformFlowHasZeroDivergence)
{
    // A spatially constant state is a steady solution: after fluxes
    // and divergence, dudt must vanish identically.
    SolverFixture f;
    for (const auto& block : f.mesh->blocks()) {
        const BlockShape s = block->shape();
        for (int n = 0; n < f.registry.ncompConserved(); ++n)
            for (int k = 0; k < s.nk(); ++k)
                for (int j = 0; j < s.nj(); ++j)
                    for (int i = 0; i < s.ni(); ++i)
                        block->cons()(n, k, j, i) = 0.3 + 0.1 * n;
    }
    f.package.calculateFluxes(*f.mesh);
    f.package.fluxDivergence(*f.mesh);
    const BlockShape s = f.mesh->config().blockShape();
    for (const auto& block : f.mesh->blocks())
        for (int n = 0; n < f.registry.ncompConserved(); ++n)
            for (int k = s.ks(); k <= s.ke(); ++k)
                for (int j = s.js(); j <= s.je(); ++j)
                    for (int i = s.is(); i <= s.ie(); ++i)
                        ASSERT_NEAR(block->dudt()(n, k, j, i), 0.0,
                                    1e-12);
}

TEST(Burgers, TagBlockFlagsSteepGradients)
{
    SolverFixture f;
    MeshBlock& block = f.mesh->block(0);
    const BlockShape s = block.shape();
    block.cons().fill(0.0);
    EXPECT_EQ(f.package.tagBlock(block, *f.ctx),
              RefinementFlag::Derefine);
    // Steep jump in u across the middle.
    for (int k = 0; k < s.nk(); ++k)
        for (int j = 0; j < s.nj(); ++j)
            for (int i = 0; i < s.ni(); ++i)
                block.cons()(0, k, j, i) = i > s.ni() / 2 ? 1.0 : 0.0;
    EXPECT_EQ(f.package.tagBlock(block, *f.ctx), RefinementFlag::Refine);
}

TEST(Burgers, ConfigFromParams)
{
    auto pin = ParameterInput::fromString(R"(
<burgers>
num_scalars = 4
cfl = 0.3
recon = plm
)");
    auto config = BurgersConfig::fromParams(pin);
    EXPECT_EQ(config.numScalars, 4);
    EXPECT_DOUBLE_EQ(config.cfl, 0.3);
    EXPECT_EQ(config.recon, ReconMethod::Plm);
    pin.set("burgers", "recon", "bogus");
    EXPECT_THROW(BurgersConfig::fromParams(pin), FatalError);
    EXPECT_THROW(initialConditionFromName("bogus"), FatalError);
}

// --- RK2 algebra ---

TEST(Rk2, StageAlgebra)
{
    SolverFixture f;
    MeshBlock& block = f.mesh->block(0);
    const BlockShape s = block.shape();
    block.cons().fill(2.0);
    saveState(*f.mesh); // cons0 = 2
    block.cons().fill(5.0);
    block.dudt().fill(1.0);
    stage1Update(*f.mesh, 0.1); // u = u0 + dt*dudt = 2.1
    EXPECT_NEAR(block.cons()(0, s.ks(), s.js(), s.is()), 2.1, 1e-14);
    block.dudt().fill(2.0);
    stage2Update(*f.mesh, 0.1); // u = 0.5*2 + 0.5*2.1 + 0.05*2 = 2.15
    EXPECT_NEAR(block.cons()(0, s.ks(), s.js(), s.is()), 2.15, 1e-14);
}

TEST(Rk2, HeunIsSecondOrderOnScalarOde)
{
    // du/dt = -u via the same weights: error ~ dt^2 per step.
    auto step = [](double u, double dt) {
        const double u0 = u;
        double du = -u;
        u = u0 + dt * du;        // stage 1
        du = -u;
        return 0.5 * u0 + 0.5 * u + 0.5 * dt * du; // stage 2
    };
    auto integrate = [&](int n) {
        double u = 1.0;
        const double dt = 1.0 / n;
        for (int i = 0; i < n; ++i)
            u = step(u, dt);
        return std::fabs(u - std::exp(-1.0));
    };
    const double e1 = integrate(50);
    const double e2 = integrate(100);
    EXPECT_GT(std::log2(e1 / e2), 1.8);
}

// --- Prolongation / restriction operators ---

TEST(ProlongRestrict, RestrictionIsExactVolumeAverage)
{
    SolverFixture f(16, 8, 2);
    RefinementFlagMap flags;
    flags[{0, 0, 0, 0}] = RefinementFlag::Refine;
    auto restructure = f.mesh->applyTreeUpdate(f.mesh->updateTree(flags),
                                               0);
    ASSERT_EQ(restructure.refined.size(), 1u);
    MeshBlock* child = restructure.refined[0].children[0];
    MeshBlock& parent = *restructure.refined[0].parent;
    const BlockShape s = child->shape();
    // Distinct values per fine cell.
    for (int k = s.ks(); k <= s.ke(); ++k)
        for (int j = s.js(); j <= s.je(); ++j)
            for (int i = s.is(); i <= s.ie(); ++i)
                child->cons()(0, k, j, i) = i + 10 * j + 100 * k;
    restrictChildToParent(*f.ctx, *child, parent);
    double sum = 0;
    for (int dk = 0; dk < 2; ++dk)
        for (int dj = 0; dj < 2; ++dj)
            for (int di = 0; di < 2; ++di)
                sum += child->cons()(0, s.ks() + dk, s.js() + dj,
                                     s.is() + di);
    EXPECT_NEAR(parent.cons()(0, s.ks(), s.js(), s.is()), sum / 8.0,
                1e-13);
}

TEST(ProlongRestrict, ProlongationPreservesMeans)
{
    SolverFixture f(16, 8, 2);
    RefinementFlagMap flags;
    flags[{0, 0, 0, 0}] = RefinementFlag::Refine;
    auto restructure = f.mesh->applyTreeUpdate(f.mesh->updateTree(flags),
                                               0);
    MeshBlock& parent = *restructure.refined[0].parent;
    const BlockShape s = parent.shape();
    for (int k = 0; k < s.nk(); ++k)
        for (int j = 0; j < s.nj(); ++j)
            for (int i = 0; i < s.ni(); ++i)
                parent.cons()(0, k, j, i) =
                    std::sin(0.3 * i) + std::cos(0.2 * j) + 0.1 * k;

    for (MeshBlock* child : restructure.refined[0].children) {
        prolongateParentToChild(*f.ctx, parent, *child);
        // Every coarse cell's mean is preserved by the limited-slope
        // interpolation: check one covered coarse cell per child.
        double mean = 0;
        for (int dk = 0; dk < 2; ++dk)
            for (int dj = 0; dj < 2; ++dj)
                for (int di = 0; di < 2; ++di)
                    mean += child->cons()(0, s.ks() + dk, s.js() + dj,
                                          s.is() + di);
        mean /= 8.0;
        const int idx = child->loc().childIndexInParent();
        const int pi = s.is() + (idx & 1) * s.nx1 / 2;
        const int pj = s.js() + ((idx >> 1) & 1) * s.nx2 / 2;
        const int pk = s.ks() + ((idx >> 2) & 1) * s.nx3 / 2;
        EXPECT_NEAR(mean, parent.cons()(0, pk, pj, pi), 1e-13);
    }
}

TEST(ProlongRestrict, RoundTripIsIdentityOnMeans)
{
    SolverFixture f(16, 8, 2);
    RefinementFlagMap flags;
    flags[{0, 0, 0, 0}] = RefinementFlag::Refine;
    auto restructure = f.mesh->applyTreeUpdate(f.mesh->updateTree(flags),
                                               0);
    MeshBlock& parent = *restructure.refined[0].parent;
    const BlockShape s = parent.shape();
    for (int k = 0; k < s.nk(); ++k)
        for (int j = 0; j < s.nj(); ++j)
            for (int i = 0; i < s.ni(); ++i)
                parent.cons()(0, k, j, i) = 1.0 + 0.01 * (i + j + k);

    // Prolongate to all children, then restrict back: parent interior
    // must be recovered exactly (conservation round trip).
    RealArray4 original = parent.cons();
    for (MeshBlock* child : restructure.refined[0].children)
        prolongateParentToChild(*f.ctx, parent, *child);
    parent.cons().fill(0.0);
    for (MeshBlock* child : restructure.refined[0].children)
        restrictChildToParent(*f.ctx, *child, parent);
    for (int k = s.ks(); k <= s.ke(); ++k)
        for (int j = s.js(); j <= s.je(); ++j)
            for (int i = s.is(); i <= s.ie(); ++i)
                ASSERT_NEAR(parent.cons()(0, k, j, i),
                            original(0, k, j, i), 1e-13);
}

} // namespace
} // namespace vibe
