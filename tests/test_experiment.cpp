/**
 * @file test_experiment.cpp
 * Integration tests of the experiment harness: end-to-end counting and
 * numeric runs, the paper's directional findings at reduced scale, and
 * the BestR selection helper.
 */
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace vibe {
namespace {

ExperimentSpec
smallSpec()
{
    ExperimentSpec spec;
    spec.meshSize = 32;
    spec.blockSize = 8;
    spec.amrLevels = 2;
    spec.ncycles = 5;
    spec.numeric = false;
    spec.platform = PlatformConfig::gpu(1, 1);
    return spec;
}

TEST(Experiment, CountingRunProducesAllArtifacts)
{
    auto result = Experiment(smallSpec()).run();
    EXPECT_GT(result.zoneCycles, 0);
    EXPECT_GT(result.commCells, 0);
    EXPECT_GT(result.finalBlocks, 0u);
    EXPECT_GT(result.kokkosBytes, 0u);
    EXPECT_EQ(result.history.size(), 5u);
    EXPECT_GT(result.fom(), 0.0);
    EXPECT_GT(result.report.totalTime, 0.0);
    EXPECT_GT(result.report.kernels.size(), 5u);
    EXPECT_GT(result.paperScale(), 1.0);
}

TEST(Experiment, NumericRunMatchesCountingWorkScale)
{
    auto counting = Experiment(smallSpec()).run();
    auto spec = smallSpec();
    spec.numeric = true;
    auto numeric = Experiment(spec).run();
    // Different taggers (gradient vs analytic) mean structures differ
    // in detail, but the workload must be the same order of magnitude.
    EXPECT_GT(numeric.zoneCycles, counting.zoneCycles / 4);
    EXPECT_LT(numeric.zoneCycles, counting.zoneCycles * 4);
}

TEST(Experiment, RejectsIndivisibleBlockSize)
{
    auto spec = smallSpec();
    spec.blockSize = 7;
    EXPECT_THROW(Experiment(spec).run(), PanicError);
}

TEST(Experiment, FixedDtTracksFinestLevel)
{
    auto spec = smallSpec();
    spec.meshSize = 128;
    spec.amrLevels = 3;
    // dx_finest = 1/(128*4); dt = 0.4 * dx.
    EXPECT_NEAR(spec.fixedDt(), 0.4 / 512.0, 1e-12);
}

// --- Directional reproduction of the paper's headline findings, at
// --- reduced scale (the full-scale versions live in bench/). ---

TEST(PaperShape, SmallerBlocksReduceProcessedCells)
{
    // Fig. 1(a): smaller mesh blocks -> fewer processed cells.
    auto b16 = smallSpec();
    b16.meshSize = 64;
    b16.blockSize = 16;
    b16.amrLevels = 3;
    auto b8 = b16;
    b8.blockSize = 8;
    const auto r16 = Experiment(b16).run();
    const auto r8 = Experiment(b8).run();
    EXPECT_LT(r8.zoneCycles, r16.zoneCycles);
}

TEST(PaperShape, SmallerBlocksIncreaseCommToComputeRatio)
{
    // §IV-B: the communication-to-computation ratio grows steeply as
    // blocks shrink.
    auto b16 = smallSpec();
    b16.meshSize = 64;
    b16.blockSize = 16;
    b16.amrLevels = 3;
    auto b8 = b16;
    b8.blockSize = 8;
    const auto r16 = Experiment(b16).run();
    const auto r8 = Experiment(b8).run();
    const double ratio16 = static_cast<double>(r16.commCells) /
                           static_cast<double>(r16.zoneCycles);
    const double ratio8 = static_cast<double>(r8.commCells) /
                          static_cast<double>(r8.zoneCycles);
    EXPECT_GT(ratio8, 2.0 * ratio16);
}

TEST(PaperShape, GpuSerialFractionShrinksWithRanks)
{
    // Fig. 9: GPU-1R is serial-dominated; more ranks relieve it.
    auto spec = smallSpec();
    spec.meshSize = 64;
    spec.amrLevels = 3;
    spec.platform = PlatformConfig::gpu(1, 1);
    const auto r1 = Experiment(spec).run();
    spec.platform = PlatformConfig::gpu(1, 8);
    const auto r8 = Experiment(spec).run();
    EXPECT_GT(r1.serialFraction(), 0.5);
    EXPECT_LT(r8.serialFraction(), r1.serialFraction());
    EXPECT_GT(r8.fom(), r1.fom());
}

TEST(PaperShape, DeeperAmrGrowsCommunication)
{
    // §IV-C: communicated cells grow with #AMR levels.
    auto l1 = smallSpec();
    l1.meshSize = 64;
    l1.blockSize = 8;
    l1.amrLevels = 1;
    auto l3 = l1;
    l3.amrLevels = 3;
    const auto r1 = Experiment(l1).run();
    const auto r3 = Experiment(l3).run();
    EXPECT_GT(static_cast<double>(r3.commCells),
              static_cast<double>(r1.commCells));
}

TEST(PaperShape, CpuKernelFractionHealthierThanGpu1R)
{
    auto spec = smallSpec();
    spec.meshSize = 64;
    spec.amrLevels = 3;
    spec.platform = PlatformConfig::cpu(96);
    const auto cpu = Experiment(spec).run();
    spec.platform = PlatformConfig::gpu(1, 1);
    const auto gpu = Experiment(spec).run();
    EXPECT_LT(cpu.serialFraction(), gpu.serialFraction());
}

TEST(Experiment, BestRankPicksInterior)
{
    // With the serial-vs-collective tradeoff, the best rank count for
    // a serial-heavy workload should exceed 1.
    auto spec = smallSpec();
    spec.meshSize = 64;
    spec.amrLevels = 3;
    int best_r = 0;
    auto result =
        Experiment::bestRank(spec, 1, {1, 2, 4, 8, 12, 16}, &best_r);
    EXPECT_GT(best_r, 1);
    EXPECT_FALSE(result.oom());
    // And it beats the single-rank configuration.
    spec.platform = PlatformConfig::gpu(1, 1);
    const auto r1 = Experiment(spec).run();
    EXPECT_GE(result.fom(), r1.fom());
}

TEST(Experiment, AuxMemoryOptimizationShrinksKokkosBytes)
{
    auto base = smallSpec();
    base.meshSize = 64;
    base.blockSize = 8;
    auto optimized = base;
    optimized.optimizeAuxMemory = true;
    const auto r_base = Experiment(base).run();
    const auto r_opt = Experiment(optimized).run();
    EXPECT_LT(r_opt.kokkosBytes, r_base.kokkosBytes);
}

TEST(Experiment, HistoryTracksRippleRefinement)
{
    // The moving wavefront must keep the fine level populated.
    auto spec = smallSpec();
    spec.meshSize = 64;
    spec.blockSize = 8;
    spec.amrLevels = 3;
    spec.ncycles = 6;
    const auto result = Experiment(spec).run();
    for (const auto& s : result.history)
        EXPECT_GT(s.nblocks, 512u); // more than the uniform base grid
}

} // namespace
} // namespace vibe
