/**
 * @file test_properties.cpp
 * Parameterized property sweeps across dimensionalities, block sizes
 * and seeds: ghost-exchange exactness, conservation, structural
 * invariants, and counting/numeric equivalence — the broad-coverage
 * counterpart to the targeted unit tests.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "comm/boundary_buffers.hpp"
#include "comm/ghost_exchange.hpp"
#include "comm/rank_world.hpp"
#include "driver/evolution_driver.hpp"
#include "pkg/burgers_package.hpp"
#include "driver/tagger.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "util/random.hpp"

namespace vibe {
namespace {

struct World
{
    KernelProfiler profiler;
    MemoryTracker tracker;
    VariableRegistry registry = makeBurgersRegistry(2);
    std::unique_ptr<ExecContext> ctx;
    std::unique_ptr<Mesh> mesh;
    std::unique_ptr<RankWorld> world;
    std::unique_ptr<BoundaryBufferCache> cache;
    std::unique_ptr<GhostExchange> exchange;

    World(int ndim, int mesh_nx, int block_nx, int levels,
          ExecMode mode = ExecMode::Execute)
    {
        ctx = std::make_unique<ExecContext>(mode, &profiler, &tracker);
        MeshConfig config;
        config.ndim = ndim;
        config.nx1 = config.nx2 = config.nx3 = mesh_nx;
        config.blockNx1 = config.blockNx2 = config.blockNx3 = block_nx;
        config.amrLevels = levels;
        mesh = std::make_unique<Mesh>(config, registry, *ctx);
        world = std::make_unique<RankWorld>(1);
        cache = std::make_unique<BoundaryBufferCache>(*mesh, false);
        exchange =
            std::make_unique<GhostExchange>(*mesh, *world, *cache);
    }

    void refineAt(const LogicalLocation& loc)
    {
        RefinementFlagMap flags;
        flags[loc] = RefinementFlag::Refine;
        mesh->applyTreeUpdate(mesh->updateTree(flags), 0);
        cache->rebuild();
    }
};

// --- Ghost exchange across dimensionalities ---

class DimSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DimSweep, UniformGhostExchangeExact)
{
    const int ndim = GetParam();
    World w(ndim, 16, 8, 1);
    const BlockShape s = w.mesh->config().blockShape();
    constexpr double two_pi = 6.283185307179586;

    auto field = [&](const BlockGeometry& g, int k, int j, int i) {
        double v = std::sin(two_pi * g.x1c(i - s.is()));
        if (ndim >= 2)
            v += std::cos(two_pi * g.x2c(j - s.js()));
        if (ndim >= 3)
            v += 0.5 * std::sin(two_pi * g.x3c(k - s.ks()));
        return v;
    };
    for (const auto& block : w.mesh->blocks())
        for (int k = s.ks(); k <= s.ke(); ++k)
            for (int j = s.js(); j <= s.je(); ++j)
                for (int i = s.is(); i <= s.ie(); ++i)
                    block->cons()(0, k, j, i) =
                        field(block->geom(), k, j, i);

    w.exchange->exchangeBounds();

    for (const auto& block : w.mesh->blocks()) {
        const BlockGeometry& g = block->geom();
        for (int k = 0; k < s.nk(); ++k)
            for (int j = 0; j < s.nj(); ++j)
                for (int i = 0; i < s.ni(); ++i) {
                    const bool interior =
                        i >= s.is() && i <= s.ie() && j >= s.js() &&
                        j <= s.je() && k >= s.ks() && k <= s.ke();
                    if (interior)
                        continue;
                    ASSERT_NEAR(block->cons()(0, k, j, i),
                                field(g, k, j, i), 1e-12)
                        << ndim << "D " << block->loc().str();
                }
    }
}

TEST_P(DimSweep, NeighborCountsMatchDimension)
{
    const int ndim = GetParam();
    World w(ndim, 16, 8, 1, ExecMode::Count);
    const std::size_t expected = ndim == 1 ? 2u : ndim == 2 ? 8u : 26u;
    for (const auto& block : w.mesh->blocks())
        EXPECT_EQ(w.mesh->neighbors(block->gid()).size(), expected);
}

TEST_P(DimSweep, RefinedConstantFieldStaysConstant)
{
    const int ndim = GetParam();
    World w(ndim, 16, 8, 2);
    w.refineAt({0, 0, 0, 0});
    for (const auto& block : w.mesh->blocks())
        block->cons().fill(3.5);
    w.exchange->exchangeBounds();
    const BlockShape s = w.mesh->config().blockShape();
    for (const auto& block : w.mesh->blocks())
        for (int k = 0; k < s.nk(); ++k)
            for (int j = 0; j < s.nj(); ++j)
                for (int i = 0; i < s.ni(); ++i)
                    ASSERT_NEAR(block->cons()(0, k, j, i), 3.5, 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Dims, DimSweep, ::testing::Values(1, 2, 3));

// --- Conservation across block-size / level combinations ---

class ConservationSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ConservationSweep, MassConservedWithAmr)
{
    const auto [block_nx, levels] = GetParam();
    KernelProfiler profiler;
    MemoryTracker tracker;
    auto registry = makeBurgersRegistry(2);
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker);
    MeshConfig mesh_config;
    const int mesh_nx = std::max(16, 2 * block_nx);
    mesh_config.nx1 = mesh_config.nx2 = mesh_config.nx3 = mesh_nx;
    mesh_config.blockNx1 = mesh_config.blockNx2 =
        mesh_config.blockNx3 = block_nx;
    mesh_config.amrLevels = levels;
    Mesh mesh(mesh_config, registry, ctx);
    RankWorld world(2);
    BurgersConfig bc;
    bc.numScalars = 2;
    bc.refineTol = 0.05;
    bc.derefineTol = 0.01;
    bc.ic = InitialCondition::GaussianBlob;
    BurgersPackage package(bc);
    GradientTagger tagger(package);
    DriverConfig config;
    config.ncycles = 6;
    config.derefineGap = 2;
    EvolutionDriver driver(mesh, package, world, tagger, config);
    driver.initialize();
    driver.run();
    const auto& history = driver.history();
    EXPECT_NEAR(history.back().mass, history.front().mass,
                1e-11 * std::fabs(history.front().mass) + 1e-14)
        << "block " << block_nx << " levels " << levels;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConservationSweep,
    ::testing::Values(std::tuple{8, 1}, std::tuple{8, 2},
                      std::tuple{16, 1}));

// --- Structural fuzzing: random refinement storms on the mesh ---

class MeshFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(MeshFuzz, RandomRestructuresKeepMeshConsistent)
{
    Rng rng(GetParam());
    KernelProfiler profiler;
    MemoryTracker tracker;
    auto registry = makeBurgersRegistry(2);
    ExecContext ctx(ExecMode::Count, &profiler, &tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 32;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 3;
    Mesh mesh(config, registry, ctx);
    BoundaryBufferCache cache(mesh, true, GetParam());

    const std::size_t bytes_per_block =
        tracker.currentBytes() / mesh.numBlocks();

    for (int round = 0; round < 8; ++round) {
        RefinementFlagMap flags;
        for (const auto& block : mesh.blocks()) {
            const double p = rng.uniform();
            if (p < 0.10)
                flags[block->loc()] = RefinementFlag::Refine;
            else if (p < 0.40)
                flags[block->loc()] = RefinementFlag::Derefine;
        }
        mesh.applyTreeUpdate(mesh.updateTree(flags), round);
        cache.rebuild();

        ASSERT_TRUE(mesh.tree().checkBalance());
        ASSERT_EQ(mesh.numBlocks(), mesh.tree().leafCount());
        // Memory accounting stays exactly proportional to blocks.
        ASSERT_EQ(tracker.currentBytes(),
                  bytes_per_block * mesh.numBlocks());
        // Every channel endpoints at live blocks with sane level diff.
        for (const auto& ch : cache.bounds()) {
            ASSERT_NE(mesh.find(ch.sender->loc()), nullptr);
            ASSERT_NE(mesh.find(ch.receiver->loc()), nullptr);
            ASSERT_LE(std::abs(ch.levelDiff), 1);
            ASSERT_GT(ch.wireCells(), 0);
        }
        // Gid index is a permutation.
        for (std::size_t g = 0; g < mesh.numBlocks(); ++g)
            ASSERT_EQ(mesh.block(static_cast<int>(g)).gid(),
                      static_cast<int>(g));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeshFuzz,
                         ::testing::Values(11, 22, 33, 44, 55));

// --- Counting mode equivalences across configs ---

class ModeEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ModeEquivalence, WireCellsIdenticalAcrossModes)
{
    const auto [block_nx, levels] = GetParam();
    World numeric(3, 16, block_nx, levels, ExecMode::Execute);
    World counting(3, 16, block_nx, levels, ExecMode::Count);
    if (levels > 1) {
        numeric.refineAt({0, 0, 0, 0});
        counting.refineAt({0, 0, 0, 0});
    }
    for (const auto& block : numeric.mesh->blocks())
        block->cons().fill(1.0);
    numeric.exchange->exchangeBounds();
    counting.exchange->exchangeBounds();
    EXPECT_EQ(numeric.exchange->lastWireCells(),
              counting.exchange->lastWireCells());
    EXPECT_EQ(numeric.profiler.kernelByName("SendBoundBufs").items,
              counting.profiler.kernelByName("SendBoundBufs").items);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ModeEquivalence,
    ::testing::Values(std::tuple{8, 1}, std::tuple{8, 2}));

} // namespace
} // namespace vibe
