/**
 * @file test_exec_spaces.cpp
 * Execution-space backends: the serial fast path, ThreadPoolSpace
 * chunking, deterministic parReduce, thread-safe instrumentation, and
 * the headline guarantee — a threaded numeric run produces mesh state
 * identical to a serial run, with identical profiler totals.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "comm/rank_world.hpp"
#include "driver/evolution_driver.hpp"
#include "pkg/burgers_package.hpp"
#include "driver/tagger.hpp"
#include "exec/execution_space.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "exec/par_for.hpp"
#include "util/logging.hpp"
#include "util/parameter_input.hpp"

namespace vibe {
namespace {

TEST(ExecutionSpace, OneThreadUsesSerialFastPath)
{
    auto space = makeExecutionSpace(1);
    EXPECT_STREQ(space->name(), "serial");
    EXPECT_EQ(space->concurrency(), 1);
    // The serial space is the shared process-wide instance; no pool is
    // ever constructed for num_threads=1.
    EXPECT_EQ(space.get(), sharedSerialSpace().get());
    EXPECT_EQ(makeExecutionSpace(0).get(), sharedSerialSpace().get());

    // A default-constructed context runs on the same serial instance.
    ExecContext ctx(ExecMode::Execute, nullptr, nullptr);
    EXPECT_EQ(&ctx.space(), sharedSerialSpace().get());
}

TEST(ExecutionSpace, ThreadPoolCoversRangeExactlyOnce)
{
    auto space = makeExecutionSpace(4);
    EXPECT_STREQ(space->name(), "threadpool");
    EXPECT_EQ(space->concurrency(), 4);

    ExecContext ctx(ExecMode::Execute, nullptr, nullptr, space);
    std::vector<int> hits(10000, 0);
    parFor(ctx, "touch", {}, 0, 9999, [&](int i) { ++hits[i]; });
    for (int i = 0; i < 10000; ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;

    // 3-D and 4-D flattening: every tuple visited exactly once.
    std::vector<std::atomic<int>> cells(5 * 7 * 11);
    parFor(ctx, "touch3", {}, 0, 4, 0, 6, 0, 10, [&](int k, int j, int i) {
        cells[(k * 7 + j) * 11 + i].fetch_add(1);
    });
    for (const auto& c : cells)
        ASSERT_EQ(c.load(), 1);

    std::atomic<int> count{0};
    parFor(ctx, "touch4", {}, 0, 2, 0, 4, 0, 5, 0, 6,
           [&](int, int, int, int) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 3 * 5 * 6 * 7);
}

TEST(ExecutionSpace, EmptyAndTinyRanges)
{
    auto space = makeExecutionSpace(4);
    ExecContext ctx(ExecMode::Execute, nullptr, nullptr, space);
    parFor(ctx, "empty", {}, 5, 4, [](int) { FAIL(); });
    int calls = 0;
    parFor(ctx, "one", {}, 3, 3, [&](int i) {
        EXPECT_EQ(i, 3);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ExecutionSpace, WorkerChunkExceptionPropagatesToCaller)
{
    auto space = makeExecutionSpace(4);
    ExecContext ctx(ExecMode::Execute, nullptr, nullptr, space);
    // Index 9990 lands in the last chunk, i.e. on a pool worker; the
    // panic must surface on the calling thread, not std::terminate.
    EXPECT_THROW(parFor(ctx, "boom", {}, 0, 9999,
                        [&](int i) {
                            require(i != 9990, "worker-chunk failure");
                        }),
                 PanicError);
    // The pool must stay usable after a failed launch.
    std::atomic<int> count{0};
    parFor(ctx, "after", {}, 0, 999, [&](int) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 1000);
}

TEST(ExecutionSpace, NestedLaunchFallsBackInline)
{
    auto space = makeExecutionSpace(3);
    ExecContext ctx(ExecMode::Execute, nullptr, nullptr, space);
    std::atomic<int> total{0};
    parFor(ctx, "outer", {}, 0, 5, [&](int) {
        parFor(ctx, "inner", {}, 0, 9, [&](int) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 60);
}

TEST(ParReduce, MatchesSerialResults)
{
    // Integer-valued doubles: sums are exact, so serial and threaded
    // results must agree bitwise regardless of chunk grouping.
    const int nk = 6, nj = 9, ni = 13;
    auto value = [&](int k, int j, int i) {
        return static_cast<double>((k * nj + j) * ni + i);
    };
    for (int threads : {1, 4}) {
        ExecContext ctx(ExecMode::Execute, nullptr, nullptr,
                        makeExecutionSpace(threads));
        double sum = 0.0, mn = 1e30, mx = -1e30;
        parReduce(ctx, "sum", {}, ReduceOp::Sum, sum, 0, nk - 1, 0,
                  nj - 1, 0, ni - 1,
                  [&](int k, int j, int i, double& acc) {
                      acc += value(k, j, i);
                  });
        parReduce(ctx, "min", {}, ReduceOp::Min, mn, 0, nk - 1, 0, nj - 1,
                  0, ni - 1, [&](int k, int j, int i, double& acc) {
                      acc = std::min(acc, value(k, j, i) + 5.0);
                  });
        parReduce(ctx, "max", {}, ReduceOp::Max, mx, 0, nk - 1, 0, nj - 1,
                  0, ni - 1, [&](int k, int j, int i, double& acc) {
                      acc = std::max(acc, value(k, j, i));
                  });
        const double n = nk * nj * ni;
        EXPECT_DOUBLE_EQ(sum, n * (n - 1) / 2) << threads << " threads";
        EXPECT_DOUBLE_EQ(mn, 5.0) << threads << " threads";
        EXPECT_DOUBLE_EQ(mx, n - 1) << threads << " threads";
    }
}

TEST(ParReduce, CountModeRecordsWithoutExecuting)
{
    KernelProfiler profiler;
    ExecContext ctx(ExecMode::Count, &profiler, nullptr);
    double sum = 42.0;
    parReduce(ctx, "r", {2.0, 8.0}, ReduceOp::Sum, sum, 0, 3, 0, 4, 0, 5,
              [](int, int, int, double& acc) { acc += 1.0; });
    EXPECT_DOUBLE_EQ(sum, 42.0);
    const auto stats = profiler.kernelByName("r");
    EXPECT_DOUBLE_EQ(stats.items, 4.0 * 5.0 * 6.0);
    EXPECT_DOUBLE_EQ(stats.flops, 2.0 * 120.0);
}

TEST(Profiler, ConcurrentRecordsFromPoolWorkers)
{
    KernelProfiler profiler;
    auto space = makeExecutionSpace(4);

    struct Ctx
    {
        KernelProfiler* profiler;
    } rec{&profiler};
    space->forEachChunk(
        1000,
        [](void* p, std::int64_t begin, std::int64_t end, int) {
            auto* rec = static_cast<Ctx*>(p);
            for (std::int64_t i = begin; i < end; ++i)
                rec->profiler->record(
                    {"worker_kernel", "Stress", 2, 1, 1.0, 3.0, 5.0, 1.0});
        },
        &rec);

    // Accessors merge the per-thread buffers (a quiescent point: the
    // launch above has completed).
    EXPECT_EQ(profiler.totalLaunches(), 1000u);
    EXPECT_DOUBLE_EQ(profiler.totalItems(), 1000.0);
    const auto& stats = profiler.kernels().at({"Stress", "worker_kernel"});
    EXPECT_DOUBLE_EQ(stats.flops, 3000.0);
    EXPECT_DOUBLE_EQ(stats.bytes, 5000.0);
    EXPECT_DOUBLE_EQ(stats.itemsByRank.at(2), 1000.0);
}

TEST(MemoryTracker, ConcurrentAllocationsFromPoolWorkers)
{
    MemoryTracker tracker;
    tracker.allocate("main", 100);
    auto space = makeExecutionSpace(4);

    struct Ctx
    {
        MemoryTracker* tracker;
    } rec{&tracker};
    space->forEachChunk(
        100,
        [](void* p, std::int64_t begin, std::int64_t end, int) {
            auto* rec = static_cast<Ctx*>(p);
            for (std::int64_t i = begin; i < end; ++i) {
                rec->tracker->allocate("worker", 10);
                rec->tracker->deallocate("worker", 4);
            }
        },
        &rec);

    EXPECT_EQ(tracker.currentBytes(), 100u + 100u * 6u);
    EXPECT_EQ(tracker.labelBytes("worker"), 600u);
    EXPECT_EQ(tracker.allocationCalls(), 101u);
    EXPECT_GE(tracker.peakBytes(), tracker.currentBytes());
}

TEST(MeshConfig, NumThreadsKnob)
{
    const ParameterInput pin = ParameterInput::fromString(
        "<mesh>\n"
        "nx1 = 32\n"
        "<meshblock>\n"
        "nx1 = 8\n"
        "<exec>\n"
        "num_threads = 4\n");
    const MeshConfig config = MeshConfig::fromParams(pin);
    EXPECT_EQ(config.numThreads, 4);

    MeshConfig bad = config;
    bad.numThreads = 0;
    EXPECT_THROW(bad.validate(), FatalError);
}

// ---------------------------------------------------------------------
// Headline equivalence: a threaded numeric AMR run must reproduce the
// serial run exactly — same block structure, bit-identical conserved
// variables, identical timestep history and profiler totals. Since the
// task-graph driver, this covers the full asynchronous stage graph:
// per-block sends, polling receive tasks, unpacks, flux correction and
// updates all dispatched concurrently on the ThreadPoolSpace.
// ---------------------------------------------------------------------

struct RippleRun
{
    std::vector<std::string> locs;
    std::vector<std::vector<double>> cons;
    std::vector<double> dts;
    std::size_t finalBlocks = 0;
    KernelProfiler profiler;
};

RippleRun
runRipple(int num_threads, bool optimize_aux = false)
{
    RippleRun out;
    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker,
                    makeExecutionSpace(num_threads));
    auto registry = makeBurgersRegistry(4);

    MeshConfig mesh_config;
    mesh_config.nx1 = mesh_config.nx2 = mesh_config.nx3 = 16;
    mesh_config.blockNx1 = mesh_config.blockNx2 = mesh_config.blockNx3 =
        8;
    mesh_config.amrLevels = 2;
    mesh_config.numThreads = num_threads;
    mesh_config.optimizeAuxMemory = optimize_aux;
    Mesh mesh(mesh_config, registry, ctx);
    RankWorld world(2);

    BurgersConfig burgers_config;
    burgers_config.numScalars = 4;
    burgers_config.refineTol = 0.05;
    burgers_config.derefineTol = 0.015;
    BurgersPackage package(burgers_config);
    GradientTagger tagger(package);

    DriverConfig driver_config;
    driver_config.ncycles = 3;
    EvolutionDriver driver(mesh, package, world, tagger, driver_config);
    driver.initialize();
    driver.run();

    for (const auto& stats : driver.history())
        out.dts.push_back(stats.dt);
    out.finalBlocks = mesh.numBlocks();
    for (const auto& block : mesh.blocks()) {
        out.locs.push_back(block->loc().str());
        const RealArray4& cons = block->cons();
        out.cons.emplace_back(cons.data(), cons.data() + cons.size());
    }
    out.profiler = profiler;
    return out;
}

TEST(ExecutionSpace, ThreadedNumericRunMatchesSerialExactly)
{
    const RippleRun serial = runRipple(1);
    for (int threads : {2, 4}) {
        const RippleRun threaded = runRipple(threads);

        ASSERT_EQ(serial.finalBlocks, threaded.finalBlocks);
        ASSERT_EQ(serial.locs, threaded.locs);
        ASSERT_EQ(serial.dts.size(), threaded.dts.size());
        for (std::size_t c = 0; c < serial.dts.size(); ++c)
            EXPECT_EQ(serial.dts[c], threaded.dts[c])
                << threads << " threads, cycle " << c;

        ASSERT_EQ(serial.cons.size(), threaded.cons.size());
        for (std::size_t b = 0; b < serial.cons.size(); ++b) {
            ASSERT_EQ(serial.cons[b].size(), threaded.cons[b].size());
            // Bitwise comparison: elementwise kernels compute each
            // cell identically and min/max reductions are
            // chunking-exact, so the conserved state may not drift by
            // even one ulp — task scheduling order included.
            EXPECT_EQ(
                std::memcmp(serial.cons[b].data(),
                            threaded.cons[b].data(),
                            serial.cons[b].size() * sizeof(double)),
                0)
                << threads << " threads, block " << serial.locs[b];
        }
    }
}

TEST(ExecutionSpace, SharedScratchSerializesFluxTasksCorrectly)
{
    // With the §VIII-B shared reconstruction scratch, per-block flux
    // tasks are chained under the threaded executor; the result must
    // still match the serial run bitwise.
    const RippleRun serial = runRipple(1, true);
    const RippleRun threaded = runRipple(4, true);
    ASSERT_EQ(serial.locs, threaded.locs);
    ASSERT_EQ(serial.cons.size(), threaded.cons.size());
    for (std::size_t b = 0; b < serial.cons.size(); ++b)
        EXPECT_EQ(std::memcmp(serial.cons[b].data(),
                              threaded.cons[b].data(),
                              serial.cons[b].size() * sizeof(double)),
                  0)
            << "block " << serial.locs[b];
}

TEST(ExecutionSpace, ProfilerTotalsIdenticalAcrossBackends)
{
    const RippleRun serial = runRipple(1);
    const RippleRun threaded = runRipple(4);

    EXPECT_EQ(serial.profiler.totalLaunches(),
              threaded.profiler.totalLaunches());
    EXPECT_DOUBLE_EQ(serial.profiler.totalItems(),
                     threaded.profiler.totalItems());

    const auto& a = serial.profiler.kernels();
    const auto& b = threaded.profiler.kernels();
    ASSERT_EQ(a.size(), b.size());
    for (const auto& [key, stats] : a) {
        const auto it = b.find(key);
        ASSERT_NE(it, b.end()) << key.first << "/" << key.second;
        EXPECT_EQ(stats.launches, it->second.launches);
        EXPECT_DOUBLE_EQ(stats.items, it->second.items);
        EXPECT_DOUBLE_EQ(stats.flops, it->second.flops);
        EXPECT_DOUBLE_EQ(stats.bytes, it->second.bytes);
    }
}

} // namespace
} // namespace vibe
