/**
 * @file test_pkg.cpp
 * The physics-package subsystem: PackageRegistry selection and errors,
 * per-package variable ownership, and the advection package's
 * correctness guarantees — analytic-solution accuracy on a uniform
 * mesh, mass conservation to round-off across mid-run
 * refine/derefine, and the same bitwise serial-vs-threaded and
 * packed-vs-per-block equivalence the Burgers package proves.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "comm/rank_world.hpp"
#include "driver/evolution_driver.hpp"
#include "driver/tagger.hpp"
#include "exec/execution_space.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "pkg/advection_package.hpp"
#include "pkg/burgers_package.hpp"
#include "pkg/package_registry.hpp"
#include "util/logging.hpp"

namespace vibe {
namespace {

// --- PackageRegistry --------------------------------------------------

TEST(PackageRegistry, CreatesBothBuiltins)
{
    ParameterInput pin;
    auto burgers = PackageRegistry::instance().create("burgers", pin);
    ASSERT_NE(burgers, nullptr);
    EXPECT_EQ(burgers->name(), "burgers");

    auto advection =
        PackageRegistry::instance().create("advection", pin);
    ASSERT_NE(advection, nullptr);
    EXPECT_EQ(advection->name(), "advection");

    const auto names = PackageRegistry::instance().names();
    EXPECT_NE(std::find(names.begin(), names.end(), "burgers"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "advection"),
              names.end());
}

TEST(PackageRegistry, FromDeckSelectsPackage)
{
    auto deck = ParameterInput::fromString(R"(
<job>
package = advection
<advection>
vx = 2.0
)");
    auto package = PackageRegistry::fromDeck(deck);
    ASSERT_NE(package, nullptr);
    EXPECT_EQ(package->name(), "advection");
    EXPECT_DOUBLE_EQ(
        static_cast<const AdvectionPackage&>(*package).config().vx,
        2.0);

    // Default is the VIBE workload.
    ParameterInput empty;
    EXPECT_EQ(PackageRegistry::fromDeck(empty)->name(), "burgers");
}

TEST(PackageRegistry, UnknownNameIsFatalAndListsPackages)
{
    ParameterInput pin;
    try {
        PackageRegistry::instance().create("kelvin_helmholtz", pin);
        FAIL() << "expected FatalError";
    } catch (const FatalError& err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("kelvin_helmholtz"), std::string::npos)
            << what;
        EXPECT_NE(what.find("burgers"), std::string::npos) << what;
        EXPECT_NE(what.find("advection"), std::string::npos) << what;
    }
}

TEST(PackageRegistry, DuplicateRegistrationIsFatal)
{
    EXPECT_THROW(PackageRegistry::instance().registerPackage(
                     "burgers",
                     [](const ParameterInput&)
                         -> std::unique_ptr<PackageDescriptor> {
                         return nullptr;
                     }),
                 FatalError);
}

TEST(PackageRegistry, PackagesOwnDisjointVariableSets)
{
    const VariableRegistry burgers = makeBurgersRegistry(4);
    const VariableRegistry advection = makeAdvectionRegistry();

    std::set<std::string> burgers_names;
    for (const auto& v : burgers.all())
        burgers_names.insert(v.name);
    for (const auto& v : advection.all())
        EXPECT_EQ(burgers_names.count(v.name), 0u)
            << "variable '" << v.name << "' claimed by both packages";

    // Advection: one ghost-exchanged, flux-corrected conserved scalar
    // plus one derived field.
    EXPECT_EQ(advection.ncompConserved(), 1);
    EXPECT_EQ(advection.ncompDerived(), 1);
    EXPECT_TRUE(advection.byName("phi").hasAll(kIndependent |
                                               kFillGhost |
                                               kWithFluxes));
    EXPECT_TRUE(advection.byName("phi_energy").hasAll(kDerived));
}

// --- Advection config -------------------------------------------------

TEST(Advection, ConfigFromParams)
{
    auto pin = ParameterInput::fromString(R"(
<advection>
vx = -0.5
vy = 0.25
cfl = 0.3
recon = plm
ic = sine
)");
    auto config = AdvectionConfig::fromParams(pin);
    EXPECT_DOUBLE_EQ(config.vx, -0.5);
    EXPECT_DOUBLE_EQ(config.vy, 0.25);
    EXPECT_DOUBLE_EQ(config.vz, 0.25); // default
    EXPECT_DOUBLE_EQ(config.cfl, 0.3);
    EXPECT_EQ(config.recon, ReconMethod::Plm);
    EXPECT_EQ(config.ic, AdvectionProfile::Sine);
    EXPECT_DOUBLE_EQ(config.maxSpeed(3), 0.5);
    EXPECT_DOUBLE_EQ(config.maxSpeed(1), 0.5);

    pin.set("advection", "recon", "bogus");
    EXPECT_THROW(AdvectionConfig::fromParams(pin), FatalError);
    EXPECT_THROW(advectionProfileFromName("bogus"), FatalError);
}

// --- Advection simulation fixtures ------------------------------------

struct AdvSim
{
    KernelProfiler profiler;
    MemoryTracker tracker;
    VariableRegistry registry = makeAdvectionRegistry();
    std::unique_ptr<ExecContext> ctx;
    std::unique_ptr<Mesh> mesh;
    std::unique_ptr<RankWorld> world;
    AdvectionPackage package;

    AdvSim(int mesh_nx, int block_nx, int levels,
           const AdvectionConfig& config, int num_threads,
           bool pack_interior = false)
        : package(config)
    {
        ctx = std::make_unique<ExecContext>(
            ExecMode::Execute, &profiler, &tracker,
            makeExecutionSpace(num_threads));
        MeshConfig mesh_config;
        mesh_config.nx1 = mesh_config.nx2 = mesh_config.nx3 = mesh_nx;
        mesh_config.blockNx1 = mesh_config.blockNx2 =
            mesh_config.blockNx3 = block_nx;
        mesh_config.amrLevels = levels;
        mesh_config.numThreads = num_threads;
        mesh_config.packInterior = pack_interior;
        mesh = std::make_unique<Mesh>(mesh_config, registry, *ctx);
        world = std::make_unique<RankWorld>(2);
    }
};

/**
 * Mean absolute error of the final state against the exact translated
 * profile, over a full driver run on a uniform mesh.
 */
double
analyticError(int mesh_nx, int ncycles)
{
    AdvectionConfig config;
    config.ic = AdvectionProfile::Sine;
    // VIBE_NUM_THREADS (the CI matrix leg) routes the advection
    // integration runs through the threaded executor; results are
    // bitwise identical to serial by design.
    AdvSim sim(mesh_nx, mesh_nx / 2, 1, config, envNumThreads());
    GradientTagger tagger(sim.package);
    DriverConfig driver_config;
    driver_config.ncycles = ncycles;
    EvolutionDriver driver(*sim.mesh, sim.package, *sim.world, tagger,
                           driver_config);
    driver.initialize();
    driver.run();

    const BlockShape s = sim.mesh->config().blockShape();
    const double t = driver.time();
    double err = 0;
    std::int64_t cells = 0;
    for (const auto& block : sim.mesh->blocks()) {
        const BlockGeometry& g = block->geom();
        for (int k = s.ks(); k <= s.ke(); ++k)
            for (int j = s.js(); j <= s.je(); ++j)
                for (int i = s.is(); i <= s.ie(); ++i) {
                    const double exact = sim.package.analyticValue(
                        g.x1c(i - s.is()), g.x2c(j - s.js()),
                        g.x3c(k - s.ks()), t, s.ndim);
                    err += std::fabs(block->cons()(0, k, j, i) - exact);
                    ++cells;
                }
    }
    return err / static_cast<double>(cells);
}

TEST(Advection, MatchesAnalyticTranslationToDiscretizationError)
{
    // The smooth sine profile is translated rigidly; after a fixed
    // physical time the numerical state must match the analytic
    // solution to discretization error, and halving dx (which also
    // halves dt through the CFL) must shrink the error.
    const double coarse = analyticError(8, 4);
    const double fine = analyticError(16, 8); // same physical time
    EXPECT_TRUE(std::isfinite(coarse) && std::isfinite(fine));
    EXPECT_LT(fine, 0.02);
    EXPECT_LT(fine, coarse);
}

TEST(Advection, MassConservedAcrossRefineDerefine)
{
    // An analytic moving shell forces refine AND derefine while the
    // blob advects; flux correction + conservative restriction must
    // keep total phi mass at round-off through every restructure.
    AdvectionConfig config;
    AdvSim sim(16, 8, 2, config, envNumThreads());
    SphericalWaveTagger::Params wave;
    wave.cx = wave.cy = wave.cz = 0.28;
    wave.rMin = 0.08;
    wave.rMax = 0.35;
    wave.speed = 40.0;
    SphericalWaveTagger tagger(wave);
    DriverConfig driver_config;
    driver_config.ncycles = 12;
    driver_config.derefineGap = 2;
    EvolutionDriver driver(*sim.mesh, sim.package, *sim.world, tagger,
                           driver_config);
    driver.initialize();
    driver.run();

    const auto& history = driver.history();
    ASSERT_EQ(history.size(), 12u);
    int remesh = 0;
    for (const auto& stats : history)
        remesh += stats.refined + stats.derefined;
    EXPECT_GT(remesh, 0) << "workload must actually restructure";
    EXPECT_NEAR(history.back().mass, history.front().mass,
                1e-10 * std::fabs(history.front().mass) + 1e-14);
    for (const auto& stats : history) {
        EXPECT_TRUE(std::isfinite(stats.mass));
        EXPECT_GT(stats.dt, 0.0);
    }
}

// --- Bitwise equivalence: the same harness Burgers passes -------------

struct AdvRun
{
    std::vector<std::string> locs;
    std::vector<std::vector<double>> cons;
    std::vector<std::vector<double>> derived;
    std::vector<double> dts;
    std::int64_t remeshEvents = 0;
};

AdvRun
runAdvection(int num_threads, bool pack_interior)
{
    AdvRun out;
    AdvectionConfig config;
    AdvSim sim(16, 8, 2, config, num_threads, pack_interior);

    // Off-center fast shell: refines AND derefines within a few
    // cycles, so packed runs cover the invalidate/rebuild path
    // mid-run (same workload shape as the Burgers pack tests).
    SphericalWaveTagger::Params wave;
    wave.cx = wave.cy = wave.cz = 0.28;
    wave.rMin = 0.08;
    wave.rMax = 0.35;
    wave.speed = 40.0;
    SphericalWaveTagger tagger(wave);

    DriverConfig driver_config;
    driver_config.ncycles = 8;
    driver_config.derefineGap = 2;
    EvolutionDriver driver(*sim.mesh, sim.package, *sim.world, tagger,
                           driver_config);
    driver.initialize();
    driver.run();

    for (const auto& stats : driver.history()) {
        out.dts.push_back(stats.dt);
        out.remeshEvents += stats.refined + stats.derefined;
    }
    for (const auto& block : sim.mesh->blocks()) {
        out.locs.push_back(block->loc().str());
        const RealArray4& cons = block->cons();
        out.cons.emplace_back(cons.data(), cons.data() + cons.size());
        const RealArray4& derived = block->derived();
        out.derived.emplace_back(derived.data(),
                                 derived.data() + derived.size());
    }
    return out;
}

void
expectBitwiseEqual(const AdvRun& a, const AdvRun& b,
                   const std::string& what)
{
    ASSERT_EQ(a.locs, b.locs) << what;
    ASSERT_EQ(a.dts.size(), b.dts.size()) << what;
    for (std::size_t c = 0; c < a.dts.size(); ++c)
        EXPECT_EQ(a.dts[c], b.dts[c]) << what << ", cycle " << c;
    ASSERT_EQ(a.cons.size(), b.cons.size()) << what;
    for (std::size_t blk = 0; blk < a.cons.size(); ++blk) {
        ASSERT_EQ(a.cons[blk].size(), b.cons[blk].size());
        EXPECT_EQ(std::memcmp(a.cons[blk].data(), b.cons[blk].data(),
                              a.cons[blk].size() * sizeof(double)),
                  0)
            << what << ", block " << a.locs[blk];
        EXPECT_EQ(std::memcmp(a.derived[blk].data(),
                              b.derived[blk].data(),
                              a.derived[blk].size() * sizeof(double)),
                  0)
            << what << " (derived), block " << a.locs[blk];
    }
}

TEST(Advection, ThreadedRunsMatchSerialBitwise)
{
    const AdvRun serial = runAdvection(1, false);
    EXPECT_GT(serial.remeshEvents, 0);
    for (int threads : {2, 4})
        expectBitwiseEqual(serial, runAdvection(threads, false),
                           "advection @" + std::to_string(threads) +
                               " threads vs serial");
}

TEST(Advection, PackedRunsMatchPerBlockBitwise)
{
    const AdvRun per_block = runAdvection(1, false);
    for (int threads : {1, 4}) {
        const AdvRun packed = runAdvection(threads, true);
        EXPECT_GT(packed.remeshEvents, 0);
        expectBitwiseEqual(per_block, packed,
                           "advection packed @" +
                               std::to_string(threads) +
                               " threads vs per-block serial");
    }
}

} // namespace
} // namespace vibe
